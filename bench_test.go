package rofl_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rofl"
	"rofl/internal/ident"
	"rofl/internal/wire"
)

// benchConfig sizes the figure drivers for benchmarking: large enough
// that the measured work is the experiment itself, small enough that a
// full -bench=. run completes in minutes.
func benchConfig() rofl.ExperimentConfig {
	cfg := rofl.QuickExperimentConfig()
	cfg.HostsPerISP = 120
	cfg.Pairs = 150
	cfg.InterHosts = 240
	return cfg
}

// runFigure wraps one experiment driver as a benchmark, running trials
// across the default worker pool (Workers = NumCPU).
func runFigure(b *testing.B, id string) {
	runFigureWorkers(b, id, 0)
}

// runFigureWorkers runs one experiment driver with an explicit Workers
// setting. workers == 0 means the default (NumCPU); workers == 1 forces
// the serial path, giving the baseline for the parallel speedup.
func runFigureWorkers(b *testing.B, id string, workers int) {
	r, ok := rofl.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := benchConfig()
	cfg.Workers = workers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := r.Run(cfg)
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- One benchmark per paper table/figure ---------------------------------

// BenchmarkFig5aJoinOverhead regenerates Fig 5a: intradomain cumulative
// join overhead vs IDs, against the CMU-ETHERNET baseline. Trials fan
// out across NumCPU workers; compare with the Serial variant below for
// the parallel speedup on multi-core machines.
func BenchmarkFig5aJoinOverhead(b *testing.B) { runFigure(b, "fig5a") }

// BenchmarkFig5aJoinOverheadSerial is the Workers=1 baseline for
// BenchmarkFig5aJoinOverhead; both produce byte-identical tables.
func BenchmarkFig5aJoinOverheadSerial(b *testing.B) { runFigureWorkers(b, "fig5a", 1) }

// BenchmarkFig5bJoinCDF regenerates Fig 5b: per-host join overhead CDF.
func BenchmarkFig5bJoinCDF(b *testing.B) { runFigure(b, "fig5b") }

// BenchmarkFig5cJoinLatency regenerates Fig 5c: join latency CDF.
func BenchmarkFig5cJoinLatency(b *testing.B) { runFigure(b, "fig5c") }

// BenchmarkFig6aStretch regenerates Fig 6a: stretch vs pointer-cache
// size.
func BenchmarkFig6aStretch(b *testing.B) { runFigure(b, "fig6a") }

// BenchmarkFig6bLoad regenerates Fig 6b: per-router load vs OSPF.
func BenchmarkFig6bLoad(b *testing.B) { runFigure(b, "fig6b") }

// BenchmarkFig6cMemory regenerates Fig 6c: per-router memory vs IDs.
func BenchmarkFig6cMemory(b *testing.B) { runFigure(b, "fig6c") }

// BenchmarkFig7Partition regenerates Fig 7: partition repair overhead.
func BenchmarkFig7Partition(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig8aJoinStrategies regenerates Fig 8a: interdomain join
// overhead by strategy.
func BenchmarkFig8aJoinStrategies(b *testing.B) { runFigure(b, "fig8a") }

// BenchmarkFig8aJoinStrategiesSerial is the Workers=1 baseline for
// BenchmarkFig8aJoinStrategies.
func BenchmarkFig8aJoinStrategiesSerial(b *testing.B) { runFigureWorkers(b, "fig8a", 1) }

// BenchmarkFig8bStretch regenerates Fig 8b: interdomain stretch by
// finger budget against the BGP baseline.
func BenchmarkFig8bStretch(b *testing.B) { runFigure(b, "fig8b") }

// BenchmarkFig8cCaching regenerates Fig 8c: interdomain stretch vs
// per-AS pointer caches.
func BenchmarkFig8cCaching(b *testing.B) { runFigure(b, "fig8c") }

// BenchmarkStubFailure regenerates the §6.3 stub-AS failure experiment.
func BenchmarkStubFailure(b *testing.B) { runFigure(b, "stubfail") }

// BenchmarkBloomPeering regenerates the §6.4 peering-mechanism
// comparison.
func BenchmarkBloomPeering(b *testing.B) { runFigure(b, "bloompeering") }

// BenchmarkAblations runs the design-choice ablations DESIGN.md lists.
func BenchmarkAblations(b *testing.B) { runFigure(b, "ablation") }

// BenchmarkExtensions quantifies the §5 delivery and negotiation
// extensions.
func BenchmarkExtensions(b *testing.B) { runFigure(b, "extensions") }

// BenchmarkChurn measures per-event control cost under sustained churn
// (§6.2).
func BenchmarkChurn(b *testing.B) { runFigure(b, "churn") }

// BenchmarkMsgSizes measures join-message sizes vs finger count (§6.3).
func BenchmarkMsgSizes(b *testing.B) { runFigure(b, "msgsizes") }

// BenchmarkComposite runs the two-level system end to end.
func BenchmarkComposite(b *testing.B) { runFigure(b, "composite") }

// BenchmarkScaling runs the compact sharded-ring scaling sweep at bench
// scale (the full million-host sweep lives behind `roflsim -fig
// scaling`; SCALING.md publishes those curves).
func BenchmarkScaling(b *testing.B) {
	r, ok := rofl.ExperimentByID("scaling")
	if !ok {
		b.Fatal("scaling experiment not registered")
	}
	cfg := benchConfig()
	cfg.ScaleSweep = []int{2000, 10000}
	cfg.Shards = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := r.Run(cfg)
		if len(tab.Rows) != 2 {
			b.Fatal("unexpected table shape")
		}
	}
}

// --- Protocol micro-benchmarks --------------------------------------------

// BenchmarkIntraJoin measures one intradomain host join on the paper's
// AS 1221 topology with warm caches.
func BenchmarkIntraJoin(b *testing.B) {
	isp := rofl.GenISP(rofl.AS1221())
	net := rofl.NewNetwork(isp.Graph, rofl.NewMetrics(), rofl.DefaultNetworkOptions())
	for i := 0; i < 500; i++ {
		if _, err := net.JoinHost(rofl.IDFromString(fmt.Sprintf("warm-%d", i)), isp.Access[i%len(isp.Access)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := rofl.IDFromString(fmt.Sprintf("bench-%d", i))
		if _, err := net.JoinHost(id, isp.Access[i%len(isp.Access)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntraRoute measures one intradomain data-packet route with
// warm caches.
func BenchmarkIntraRoute(b *testing.B) {
	isp := rofl.GenISP(rofl.AS1221())
	net := rofl.NewNetwork(isp.Graph, rofl.NewMetrics(), rofl.DefaultNetworkOptions())
	var ids []rofl.ID
	for i := 0; i < 500; i++ {
		id := rofl.IDFromString(fmt.Sprintf("h-%d", i))
		if _, err := net.JoinHost(id, isp.Access[i%len(isp.Access)]); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Route(isp.Access[rng.Intn(len(isp.Access))], ids[rng.Intn(len(ids))]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterJoinMultihomed measures one recursively multihomed
// interdomain join.
func BenchmarkInterJoinMultihomed(b *testing.B) {
	gen := rofl.DefaultASGen()
	gen.Hosts = 1000
	g := rofl.GenAS(gen)
	in := rofl.NewInternet(g, rofl.NewMetrics(), rofl.DefaultInternetOptions())
	stubs := g.Stubs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := rofl.IDFromString(fmt.Sprintf("bj-%d", i))
		if _, err := in.Join(id, stubs[i%len(stubs)], rofl.Multihomed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterRoute measures one interdomain route over a populated
// hierarchy.
func BenchmarkInterRoute(b *testing.B) {
	gen := rofl.DefaultASGen()
	gen.Hosts = 1000
	g := rofl.GenAS(gen)
	in := rofl.NewInternet(g, rofl.NewMetrics(), rofl.DefaultInternetOptions())
	stubs := g.Stubs()
	var ids []rofl.ID
	for i := 0; i < 400; i++ {
		id := rofl.IDFromString(fmt.Sprintf("br-%d", i))
		if _, err := in.Join(id, stubs[i%len(stubs)], rofl.Multihomed); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if src == dst {
			continue
		}
		if _, err := in.Route(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Forwarding hot-path micro-benchmarks ---------------------------------
//
// These mirror the per-packet costs the live overlay pays on every hop;
// cmd/roflbench records them (with the per-package suites under
// internal/) into the BENCH_*.json perf trajectory.

// BenchmarkWirePacketRoundTrip measures one encode+decode of a typical
// data packet — the serialization work bracketing every forwarded hop.
func BenchmarkWirePacketRoundTrip(b *testing.B) {
	pkt := &wire.Packet{
		Type:    wire.TypeData,
		TTL:     wire.DefaultTTL,
		Dst:     ident.FromString("bench-dst"),
		Src:     ident.FromString("bench-src"),
		ASRoute: []uint32{7018, 1239, 3356},
		Payload: make([]byte, 256),
	}
	buf := make([]byte, 0, pkt.EncodedLen())
	var dec wire.Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := pkt.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := dec.DecodeFromBytes(out); err != nil {
			b.Fatal(err)
		}
	}
}
