package rofl_test

import (
	"fmt"
	"time"

	"rofl"
)

// ExampleNewNetwork shows the minimal intradomain flow: build an ISP,
// join a host by flat label, route to it from another router.
func ExampleNewNetwork() {
	isp := rofl.GenISP(rofl.ISPConfig{
		Name: "example", Routers: 30, PoPs: 5, BackbonePerPoP: 2, PoPDegree: 2,
		IntraPoPDelay: 0.5, InterPoPDelay: 4, Hosts: 60, ZipfS: 1.2, Seed: 1,
	})
	net := rofl.NewNetwork(isp.Graph, rofl.NewMetrics(), rofl.DefaultNetworkOptions())

	id := rofl.IDFromString("example-server")
	if _, err := net.JoinHost(id, isp.Access[0]); err != nil {
		fmt.Println("join failed:", err)
		return
	}
	res, err := net.Route(isp.Access[10], id)
	if err != nil {
		fmt.Println("route failed:", err)
		return
	}
	fmt.Println("delivered:", res.Delivered)
	// Output: delivered: true
}

// ExampleNewInternet shows interdomain joins with the isolation
// property: two hosts under the same provider route without touching the
// rest of the hierarchy.
func ExampleNewInternet() {
	// The paper's Figure 3 hierarchy: 1 on top, 2 and 3 below it, 4 and 5
	// below 2.
	g := rofl.GenAS(rofl.ASGenConfig{
		Tier1: 1, Tier2: 2, Stubs: 2,
		Hosts: 100, ZipfS: 1.1, PeerProb: 0, BackupProb: 0, Seed: 3,
	})
	in := rofl.NewInternet(g, rofl.NewMetrics(), rofl.DefaultInternetOptions())

	stubs := g.Stubs()
	a := rofl.IDFromString("host-a")
	b := rofl.IDFromString("host-b")
	if _, err := in.Join(a, stubs[0], rofl.Multihomed); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := in.Join(b, stubs[1], rofl.Multihomed); err != nil {
		fmt.Println(err)
		return
	}
	res, err := in.Route(a, b)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("delivered:", res.Delivered)
	// Output: delivered: true
}

// ExampleNewOverlayNode shows the live overlay: real UDP nodes built
// from a NodeConfig, a bootstrap plus one join, then a payload routed
// by flat label. The zero NodeConfig is usable as-is (random loopback
// port, maintenance off — right for tests and examples);
// DefaultNodeConfig additionally turns on periodic stabilization and
// BFD liveness for long-running nodes.
func ExampleNewOverlayNode() {
	a, err := rofl.NewOverlayNode(rofl.IDFromString("node-a"), rofl.NodeConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer a.Close()
	a.Bootstrap()

	b, err := rofl.NewOverlayNode(rofl.IDFromString("node-b"), rofl.NodeConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer b.Close()
	if err := b.Join(a.Addr(), 2*time.Second); err != nil {
		fmt.Println(err)
		return
	}

	if err := a.Send(b.ID(), []byte("ping")); err != nil {
		fmt.Println(err)
		return
	}
	d := <-b.Deliveries()
	fmt.Println("delivered:", string(d.Payload))
	// Output: delivered: ping
}

// ExampleGroupFromString shows anycast group labels: members share a
// prefix and differ only in the suffix.
func ExampleGroupFromString() {
	g := rofl.GroupFromString("dns")
	m1 := g.Member(1)
	m2 := g.Member(2)
	fmt.Println(m1 == m2)
	fmt.Println(m1.String()[:24] == m2.String()[:24]) // shared 96-bit prefix
	// Output:
	// false
	// true
}

// ExampleGrantCapability shows the §5.3 capability flow: the destination
// signs an authorization that any verifier can check against the
// destination's label alone.
func ExampleGrantCapability() {
	dst, err := rofl.NewIdentity(zeroReader{})
	if err != nil {
		fmt.Println(err)
		return
	}
	src := rofl.IDFromString("client")
	cap := rofl.GrantCapability(dst, src, 1000)
	fmt.Println("valid at t=500:", cap.Verify(src, dst.ID(), 500) == nil)
	fmt.Println("valid at t=1500:", cap.Verify(src, dst.ID(), 1500) == nil)
	// Output:
	// valid at t=500: true
	// valid at t=1500: false
}

// zeroReader is a deterministic entropy source for the example.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(i)
	}
	return len(p), nil
}
