// Command rofltopo generates and inspects the topologies under the ROFL
// evaluation: the Rocketfuel-like ISP graphs and the Internet-like AS
// hierarchy.
//
// Usage:
//
//	rofltopo -isp AS1221          # summarize one evaluation ISP
//	rofltopo -isp all             # summarize all four
//	rofltopo -as                  # summarize the AS-level topology
//	rofltopo -as -asn 100         # also print one AS's relationships
//	rofltopo -cch file.cch        # summarize a real Rocketfuel map
//	rofltopo -rel file.txt        # summarize a CAIDA as1|as2|rel file
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rofl"
)

func main() {
	var (
		ispName = flag.String("isp", "", "ISP to summarize: AS1221, AS1239, AS3257, AS3967 or all")
		asGraph = flag.Bool("as", false, "summarize the Internet-like AS graph")
		asn     = flag.Int("asn", -1, "with -as: detail one AS")
		seed    = flag.Int64("seed", 0, "override generator seed")
		cch     = flag.String("cch", "", "summarize a real Rocketfuel .cch map from this file")
		rel     = flag.String("rel", "", "summarize a CAIDA as1|as2|rel relationship file")
	)
	flag.Parse()

	switch {
	case *cch != "":
		f, err := os.Open(*cch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rofltopo: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		isp, err := rofl.ParseRocketfuel(f, *cch, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rofltopo: %v\n", err)
			os.Exit(1)
		}
		g := isp.Graph
		fmt.Printf("%s: %d routers (%d backbone, %d access), %d links, diameter ~%d hops\n",
			*cch, g.NumNodes(), len(isp.Backbone), len(isp.Access), g.NumEdges(),
			g.DiameterHops(30, rand.New(rand.NewSource(1))))
	case *rel != "":
		f, err := os.Open(*rel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rofltopo: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		g, index, err := rofl.ParseASRelationships(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rofltopo: %v\n", err)
			os.Exit(1)
		}
		tiers := map[int]int{}
		for _, dense := range index {
			tiers[g.Tier(dense)]++
		}
		fmt.Printf("%s: %d ASes (tier1 %d, tier2 %d, stubs %d)\n",
			*rel, g.NumASes(), tiers[1], tiers[2], tiers[3])
	case *ispName != "":
		for _, cfg := range rofl.EvalISPs() {
			if *ispName != "all" && cfg.Name != *ispName {
				continue
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			summarizeISP(cfg)
		}
	case *asGraph:
		gen := rofl.DefaultASGen()
		if *seed != 0 {
			gen.Seed = *seed
		}
		summarizeAS(gen, *asn)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarizeISP(cfg rofl.ISPConfig) {
	isp := rofl.GenISP(cfg)
	g := isp.Graph
	diam := g.DiameterHops(30, rand.New(rand.NewSource(1)))
	maxHosts := 0
	for _, h := range isp.HostsAt {
		if h > maxHosts {
			maxHosts = h
		}
	}
	fmt.Printf("%s: %d routers (%d backbone, %d access), %d links, %d PoPs, diameter ~%d hops, %d hosts (max %d at one access router)\n",
		cfg.Name, g.NumNodes(), len(isp.Backbone), len(isp.Access), g.NumEdges(), cfg.PoPs, diam, cfg.Hosts, maxHosts)
}

func summarizeAS(gen rofl.ASGenConfig, detail int) {
	g := rofl.GenAS(gen)
	tiers := map[int]int{}
	links := 0
	for a := 0; a < g.NumASes(); a++ {
		tiers[g.Tier(rofl.ASN(a))]++
		links += len(g.Neighbors(rofl.ASN(a)))
	}
	fmt.Printf("AS graph: %d ASes (tier1 %d, tier2 %d, stubs %d), %d adjacencies, %d hosts\n",
		g.NumASes(), tiers[1], tiers[2], tiers[3], links/2, gen.Hosts)
	if detail >= 0 && detail < g.NumASes() {
		a := rofl.ASN(detail)
		fmt.Printf("AS %d (tier %d, %d hosts):\n", detail, g.Tier(a), g.Hosts(a))
		fmt.Printf("  providers: %v\n", g.Providers(a))
		fmt.Printf("  customers: %v\n", g.Customers(a))
		fmt.Printf("  peers:     %v\n", g.Peers(a))
		levels := g.UpHierarchyLevels(a, false)
		fmt.Printf("  up-hierarchy: %d levels, %d ASes\n", len(levels), len(g.UpHierarchy(a, false)))
	}
}
