// Command roflnode runs one ROFL overlay node over UDP, speaking the
// binary wire format of internal/wire. Start a bootstrap node, then join
// others to it and exchange messages by flat label — a tiny live
// deployment of the protocol the simulator measures.
//
// Usage:
//
//	roflnode -name alice -listen 127.0.0.1:7001
//	roflnode -name bob   -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// Observability: -metrics-addr exposes the node's counters over HTTP
// (/metrics in Prometheus text format, /ring for the live ring
// snapshot, /healthz), and -events streams structured JSON-lines events
// (evictions, join splices, request timeouts) to a file or stderr:
//
//	roflnode -name alice -metrics-addr 127.0.0.1:9100 -events -
//
// The node's loss tolerance can be demoed reproducibly by degrading its
// own uplink with the netem fault wrapper:
//
//	roflnode -name mallory -join 127.0.0.1:7001 -loss 0.3 -latency 20ms -seed 7
//
// drops 30% of outbound packets and delays the rest by 20ms, with the
// drop sequence determined by -seed. Joins still succeed because control
// requests are retried with exponential backoff.
//
// Interactive commands on stdin:
//
//	send <name> <message...>   greedy-route a message to the label of <name>
//	ring                       print this node's ring pointers
//	stats                      print all telemetry counters (Prometheus text)
//	id                         print this node's label
//	quit
//
// Cluster mode runs a whole supervised ring in one process — a
// churn drill with per-node metrics endpoints:
//
//	roflnode cluster -n 200 -seed 1 -churn
//
// launches 200 nodes on auto-allocated ports, waits for full
// convergence, routes a traffic pass, applies a seed-reproducible
// kill/restart schedule, waits for reconvergence, then scrapes every
// survivor's /metrics endpoint and verifies the forward and eviction
// counters moved. Exit status 0 means the drill passed.
//
// SIGINT/SIGTERM shut the node down cleanly (Close flushes the ring
// state and unblocks all loops), same as the quit command.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rofl"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "cluster" {
		os.Exit(clusterMain(os.Args[2:]))
	}
	os.Exit(nodeMain())
}

// openEvents resolves the -events flag: "" disables, "-" or "stderr"
// stream to stderr, anything else appends to that file.
func openEvents(path string) (io.Writer, func(), error) {
	switch path {
	case "":
		return nil, func() {}, nil
	case "-", "stderr":
		return os.Stderr, func() {}, nil
	default:
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	}
}

func nodeMain() int {
	var (
		name        = flag.String("name", "", "node name (label = hash of name); required")
		listen      = flag.String("listen", "127.0.0.1:0", "UDP bind address")
		join        = flag.String("join", "", "address of an existing node to join through")
		loss        = flag.Float64("loss", 0, "outbound packet loss probability [0,1] (fault injection)")
		latency     = flag.Duration("latency", 0, "outbound base latency (fault injection)")
		jitter      = flag.Duration("jitter", 0, "outbound latency jitter (fault injection)")
		seed        = flag.Int64("seed", 1, "RNG seed for the fault schedule (reproducible runs)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /ring, /healthz on this address (empty = off)")
		events      = flag.String("events", "", "write JSON-lines events to this file ('-' = stderr, empty = off)")
		stabilize   = flag.Duration("stabilize", 250*time.Millisecond, "stabilization interval (0 = off)")
		bfd         = flag.Bool("bfd", true, "run the BFD-style adaptive failure detector on the successor")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "roflnode: -name is required")
		return 2
	}

	tr, err := rofl.ListenUDPTransport(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roflnode: %v\n", err)
		return 1
	}
	reg := rofl.NewTelemetryRegistry()
	var faults *rofl.FaultTransport
	if *loss > 0 || *latency > 0 || *jitter > 0 {
		faults = rofl.WrapFaultTransport(tr, rofl.FaultParams{
			Loss:    *loss,
			Latency: *latency,
			Jitter:  *jitter,
		}, *seed)
		// Uplink fates land in the same registry as the overlay counters,
		// so `stats` and /metrics show one unified view.
		faults.SetInstruments(rofl.NewFaultInstruments(reg))
		tr = faults
	}

	eventsW, closeEvents, err := openEvents(*events)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roflnode: events: %v\n", err)
		return 1
	}
	defer closeEvents()
	var log *rofl.EventLog
	if eventsW != nil {
		log = rofl.NewEventLog(eventsW, rofl.LevelInfo)
	}

	// One construction carries the whole configuration: transport,
	// telemetry wiring, and the maintenance loops. Without stabilization
	// the pointers learned at join time rot, and without the liveness
	// detector a dead successor lingers for the stabilize-round failure
	// threshold, so both default on.
	id := rofl.IDFromString(*name)
	node, err := rofl.NewOverlayNode(id, rofl.NodeConfig{
		Transport:      tr,
		Registry:       reg,
		Events:         log,
		Stabilize:      *stabilize,
		EnableLiveness: *stabilize > 0 && *bfd,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "roflnode: %v\n", err)
		return 1
	}
	defer node.Close()

	if *metricsAddr != "" {
		srv, err := rofl.NewTelemetryServer(*metricsAddr, reg,
			func() any { return node.Status() },
			func() error {
				if _, _, ok := node.Successor(); !ok {
					return fmt.Errorf("not bootstrapped")
				}
				return nil
			})
		if err != nil {
			fmt.Fprintf(os.Stderr, "roflnode: metrics server: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Printf("metrics at %s/metrics\n", srv.URL())
	}

	if *join == "" {
		node.Bootstrap()
		fmt.Printf("bootstrapped ring; label %s at %s\n", id.Short(), node.Addr())
	} else {
		if err := node.Join(*join, 5*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "roflnode: join: %v\n", err)
			return 1
		}
		fmt.Printf("joined via %s; label %s at %s\n", *join, id.Short(), node.Addr())
	}

	// Print deliveries as they arrive.
	go func() {
		for d := range node.Deliveries() {
			fmt.Printf("\n[recv %s…] %s\n> ", d.Src.String()[:8], d.Payload)
		}
	}()

	// A clean shutdown path for both ^C and kill: Close the node so the
	// socket, read loop, and stabilization timer all stop.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	fmt.Print("> ")
	for {
		select {
		case sig := <-sigs:
			fmt.Printf("\nroflnode: %s — shutting down\n", sig)
			return 0 // deferred Close runs
		case line, ok := <-lines:
			if !ok {
				return 0 // stdin closed
			}
			fields := strings.Fields(line)
			switch {
			case len(fields) == 0:
			case fields[0] == "quit":
				return 0
			case fields[0] == "id":
				fmt.Printf("%s (%s)\n", id, node.Addr())
			case fields[0] == "ring":
				for _, l := range node.Ring() {
					fmt.Println(" ", l)
				}
			case fields[0] == "stats":
				// Every counter — overlay and uplink fates alike — lives in
				// the registry; print the same text /metrics serves.
				if err := reg.WritePrometheus(os.Stdout); err != nil {
					fmt.Printf("stats failed: %v\n", err)
				}
				fmt.Printf("rofl_overlay_dropped_deliveries %d\n", node.DroppedDeliveries())
			case fields[0] == "send" && len(fields) >= 3:
				dst := rofl.IDFromString(fields[1])
				msg := strings.Join(fields[2:], " ")
				if err := node.Send(dst, []byte(msg)); err != nil {
					fmt.Printf("send failed: %v\n", err)
				}
			default:
				fmt.Println("commands: send <name> <msg...> | ring | stats | id | quit")
			}
			fmt.Print("> ")
		}
	}
}

// clusterMain runs the supervised churn drill.
func clusterMain(args []string) int {
	fs := flag.NewFlagSet("roflnode cluster", flag.ExitOnError)
	var (
		n         = fs.Int("n", 200, "number of nodes")
		seed      = fs.Int64("seed", 1, "cluster seed (identities, churn schedule, faults)")
		churn     = fs.Bool("churn", false, "apply a seeded kill/restart schedule after convergence")
		steps     = fs.Int("churn-steps", 0, "churn events to apply (default n/10)")
		settle    = fs.Duration("settle", 100*time.Millisecond, "pause between churn events")
		stabilize = fs.Duration("stabilize", 25*time.Millisecond, "per-node stabilization interval")
		liveness  = fs.Bool("liveness", true, "run the BFD-style adaptive failure detector")
		loss      = fs.Float64("loss", 0, "per-uplink packet loss probability (seeded netem faults)")
		timeout   = fs.Duration("timeout", 120*time.Second, "convergence deadline per phase")
		events    = fs.String("events", "", "write supervisor JSON-lines events to this file ('-' = stderr)")
	)
	fs.Parse(args)
	if *steps <= 0 {
		*steps = *n / 10
	}

	eventsW, closeEvents, err := openEvents(*events)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roflnode cluster: events: %v\n", err)
		return 1
	}
	defer closeEvents()

	cfg := rofl.ClusterConfig{
		N:              *n,
		Seed:           *seed,
		Stabilize:      *stabilize,
		EnableLiveness: *liveness,
		Events:         eventsW,
	}
	if *loss > 0 {
		cfg.FaultsEnabled = true
		cfg.Fault = rofl.FaultParams{Loss: *loss}
	}
	sup := rofl.NewCluster(cfg)
	defer sup.Close()

	fmt.Printf("launching %d nodes (seed %d)...\n", *n, *seed)
	start := time.Now()
	if err := sup.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "roflnode cluster: %v\n", err)
		return 1
	}
	if err := sup.AwaitConverged(*timeout); err != nil {
		fmt.Fprintf(os.Stderr, "roflnode cluster: %v\n", err)
		return 1
	}
	fmt.Printf("converged in %v; sample endpoint %s\n",
		time.Since(start).Round(time.Millisecond), sup.Members()[0].MetricsURL())

	// Traffic pass: every node originates one packet to the member half
	// a ring away, so every node forwards (originating counts) and the
	// transit path crosses the ring.
	members := sup.Members()
	for i, m := range members {
		dst := members[(i+len(members)/2)%len(members)]
		if err := m.Node().Send(dst.ID(), []byte("drill")); err != nil {
			fmt.Fprintf(os.Stderr, "roflnode cluster: traffic: %v\n", err)
			return 1
		}
	}

	if *churn {
		evs := rofl.ClusterSchedule(*seed, *n, *steps)
		fmt.Printf("applying %d churn events...\n", len(evs))
		churnStart := time.Now()
		if err := sup.Run(evs, *settle); err != nil {
			fmt.Fprintf(os.Stderr, "roflnode cluster: churn: %v\n", err)
			return 1
		}
		if err := sup.AwaitConverged(*timeout); err != nil {
			fmt.Fprintf(os.Stderr, "roflnode cluster: post-churn: %v\n", err)
			fmt.Fprint(os.Stderr, sup.Journal())
			return 1
		}
		fmt.Printf("reconverged %v after churn\n", time.Since(churnStart).Round(time.Millisecond))
	}

	// Scrape every survivor's HTTP endpoint and verify the counters the
	// drill must have moved: forwards everywhere, evictions somewhere
	// when churn ran.
	var evictions, forwards uint64
	scraped := 0
	for _, m := range sup.Members() {
		if !m.Alive() {
			continue
		}
		text, err := scrape(m.MetricsURL())
		if err != nil {
			fmt.Fprintf(os.Stderr, "roflnode cluster: scrape node %d: %v\n", m.Index, err)
			return 1
		}
		scraped++
		fwd := seriesSum(text, "rofl_overlay_forward_total")
		if fwd == 0 {
			fmt.Fprintf(os.Stderr, "roflnode cluster: node %d forwarded nothing\n", m.Index)
			return 1
		}
		forwards += fwd
		evictions += seriesSum(text, "rofl_overlay_eviction_total")
	}
	if *churn && evictions == 0 {
		fmt.Fprintln(os.Stderr, "roflnode cluster: churn ran but no evictions were counted")
		return 1
	}
	fmt.Printf("drill passed: %d nodes scraped, %d forwards, %d evictions\n",
		scraped, forwards, evictions)
	return 0
}

// scrape fetches one metrics endpoint.
func scrape(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// seriesSum adds every sample of the named family in a Prometheus text
// scrape, labeled series included.
func seriesSum(text, family string) uint64 {
	var sum uint64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		// Either "name value" or "name{labels} value".
		if strings.HasPrefix(rest, "{") {
			if i := strings.Index(rest, "} "); i >= 0 {
				rest = rest[i+1:]
			} else {
				continue
			}
		}
		if !strings.HasPrefix(rest, " ") {
			continue // a longer family name sharing the prefix
		}
		v, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			continue
		}
		sum += v
	}
	return sum
}
