// Command roflnode runs one ROFL overlay node over UDP, speaking the
// binary wire format of internal/wire. Start a bootstrap node, then join
// others to it and exchange messages by flat label — a tiny live
// deployment of the protocol the simulator measures.
//
// Usage:
//
//	roflnode -name alice -listen 127.0.0.1:7001
//	roflnode -name bob   -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// The node's loss tolerance can be demoed reproducibly by degrading its
// own uplink with the netem fault wrapper:
//
//	roflnode -name mallory -join 127.0.0.1:7001 -loss 0.3 -latency 20ms -seed 7
//
// drops 30% of outbound packets and delays the rest by 20ms, with the
// drop sequence determined by -seed. Joins still succeed because control
// requests are retried with exponential backoff.
//
// Interactive commands on stdin:
//
//	send <name> <message...>   greedy-route a message to the label of <name>
//	ring                       print this node's ring pointers
//	stats                      print fault-injection and delivery-drop counters
//	id                         print this node's label
//	quit
//
// SIGINT/SIGTERM shut the node down cleanly (Close flushes the ring
// state and unblocks all loops), same as the quit command.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rofl"
)

func main() {
	var (
		name    = flag.String("name", "", "node name (label = hash of name); required")
		listen  = flag.String("listen", "127.0.0.1:0", "UDP bind address")
		join    = flag.String("join", "", "address of an existing node to join through")
		loss    = flag.Float64("loss", 0, "outbound packet loss probability [0,1] (fault injection)")
		latency = flag.Duration("latency", 0, "outbound base latency (fault injection)")
		jitter  = flag.Duration("jitter", 0, "outbound latency jitter (fault injection)")
		seed    = flag.Int64("seed", 1, "RNG seed for the fault schedule (reproducible runs)")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "roflnode: -name is required")
		os.Exit(2)
	}

	tr, err := rofl.ListenUDPTransport(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roflnode: %v\n", err)
		os.Exit(1)
	}
	var faults *rofl.FaultTransport
	if *loss > 0 || *latency > 0 || *jitter > 0 {
		faults = rofl.WrapFaultTransport(tr, rofl.FaultParams{
			Loss:    *loss,
			Latency: *latency,
			Jitter:  *jitter,
		}, *seed)
		tr = faults
	}

	id := rofl.IDFromString(*name)
	node := rofl.NewOverlayNodeTransport(id, tr)
	defer node.Close()

	if *join == "" {
		node.Bootstrap()
		fmt.Printf("bootstrapped ring; label %s at %s\n", id.Short(), node.Addr())
	} else {
		if err := node.Join(*join, 5*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "roflnode: join: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("joined via %s; label %s at %s\n", *join, id.Short(), node.Addr())
	}

	// Print deliveries as they arrive.
	go func() {
		for d := range node.Deliveries() {
			fmt.Printf("\n[recv %s…] %s\n> ", d.Src.String()[:8], d.Payload)
		}
	}()

	// A clean shutdown path for both ^C and kill: Close the node so the
	// socket, read loop, and stabilization timer all stop.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	fmt.Print("> ")
	for {
		select {
		case sig := <-sigs:
			fmt.Printf("\nroflnode: %s — shutting down\n", sig)
			return // deferred Close runs
		case line, ok := <-lines:
			if !ok {
				return // stdin closed
			}
			fields := strings.Fields(line)
			switch {
			case len(fields) == 0:
			case fields[0] == "quit":
				return
			case fields[0] == "id":
				fmt.Printf("%s (%s)\n", id, node.Addr())
			case fields[0] == "ring":
				for _, l := range node.Ring() {
					fmt.Println(" ", l)
				}
			case fields[0] == "stats":
				if faults != nil {
					s := faults.Stats()
					fmt.Printf("  uplink: sent=%d lost=%d duplicated=%d delivered=%d\n",
						s.Sent, s.Lost, s.Duplicated, s.Delivered)
				}
				fmt.Printf("  deliveries dropped (slow consumer): %d\n", node.DroppedDeliveries())
			case fields[0] == "send" && len(fields) >= 3:
				dst := rofl.IDFromString(fields[1])
				msg := strings.Join(fields[2:], " ")
				if err := node.Send(dst, []byte(msg)); err != nil {
					fmt.Printf("send failed: %v\n", err)
				}
			default:
				fmt.Println("commands: send <name> <msg...> | ring | stats | id | quit")
			}
			fmt.Print("> ")
		}
	}
}
