// Command roflnode runs one ROFL overlay node over UDP, speaking the
// binary wire format of internal/wire. Start a bootstrap node, then join
// others to it and exchange messages by flat label — a tiny live
// deployment of the protocol the simulator measures.
//
// Usage:
//
//	roflnode -name alice -listen 127.0.0.1:7001
//	roflnode -name bob   -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// Interactive commands on stdin:
//
//	send <name> <message...>   greedy-route a message to the label of <name>
//	ring                       print this node's ring pointers
//	id                         print this node's label
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rofl"
)

func main() {
	var (
		name   = flag.String("name", "", "node name (label = hash of name); required")
		listen = flag.String("listen", "127.0.0.1:0", "UDP bind address")
		join   = flag.String("join", "", "address of an existing node to join through")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "roflnode: -name is required")
		os.Exit(2)
	}

	id := rofl.IDFromString(*name)
	node, err := rofl.NewOverlayNode(id, *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roflnode: %v\n", err)
		os.Exit(1)
	}
	defer node.Close()

	if *join == "" {
		node.Bootstrap()
		fmt.Printf("bootstrapped ring; label %s at %s\n", id.Short(), node.Addr())
	} else {
		if err := node.Join(*join, 5*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "roflnode: join: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("joined via %s; label %s at %s\n", *join, id.Short(), node.Addr())
	}

	// Print deliveries as they arrive.
	go func() {
		for d := range node.Deliveries() {
			fmt.Printf("\n[recv %s…] %s\n> ", d.Src.String()[:8], d.Payload)
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		switch {
		case len(fields) == 0:
		case fields[0] == "quit":
			return
		case fields[0] == "id":
			fmt.Printf("%s (%s)\n", id, node.Addr())
		case fields[0] == "ring":
			for _, line := range node.Ring() {
				fmt.Println(" ", line)
			}
		case fields[0] == "send" && len(fields) >= 3:
			dst := rofl.IDFromString(fields[1])
			msg := strings.Join(fields[2:], " ")
			if err := node.Send(dst, []byte(msg)); err != nil {
				fmt.Printf("send failed: %v\n", err)
			}
		default:
			fmt.Println("commands: send <name> <msg...> | ring | id | quit")
		}
		fmt.Print("> ")
	}
}
