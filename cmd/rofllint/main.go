// Command rofllint runs ROFL's project-specific static-analysis suite
// over the repository: determinism of the seeded packages, lock
// discipline in the protocol packages, wire round-trip completeness,
// circular (never linear) comparison of flat labels, allocation-free
// hot paths (callgraph-aware), metric-catalog discipline, atomic-access
// discipline, and provable goroutine joining.
//
// Usage:
//
//	go run ./cmd/rofllint ./...
//	go run ./cmd/rofllint -json ./...     # SARIF-lite machine output
//	go run ./cmd/rofllint -ignores ./...  # per-analyzer suppression counts
//
// When a DESIGN.md exists in the working directory, every
// //rofllint:metrics catalog constant is additionally cross-checked
// against its §9 metric/event namespace.
//
// Exit status is 1 if any diagnostic survives (suppressions require an
// audited //rofllint:ignore directive with a reason), 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"rofl/internal/lint"
)

func main() {
	list := flag.Bool("l", false, "list analyzers and their scopes, then exit")
	jsonOut := flag.Bool("json", false, "emit findings as SARIF-lite JSON on stdout")
	ignores := flag.Bool("ignores", false, "print per-analyzer suppression counts (the ignore budget), then exit")
	flag.Parse()

	suite := lint.Suite()
	if *list {
		for _, sa := range suite {
			fmt.Printf("%-14s %s\n", sa.Analyzer.Name, sa.Analyzer.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rofllint: %v\n", err)
		os.Exit(2)
	}
	prog := lint.NewProgram(pkgs)

	if *ignores {
		budget := lint.CountIgnores(prog)
		keys := make([]string, 0, len(budget))
		for k := range budget {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%s %d\n", k, budget[k])
		}
		return
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, sa := range suite {
			if !sa.Applies(pkg.ImportPath) {
				continue
			}
			ds, err := lint.RunAnalyzer(sa.Analyzer, prog, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rofllint: %v\n", err)
				os.Exit(2)
			}
			diags = append(diags, ds...)
		}
	}
	if design, err := os.ReadFile("DESIGN.md"); err == nil {
		diags = append(diags, lint.CrossCheckDesign(prog, design)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})

	if *jsonOut {
		if err := writeSARIF(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "rofllint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rofllint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// SARIF-lite: the subset of SARIF 2.1.0 that code-scanning consumers
// actually read — one run, one result per finding, physical locations.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w *os.File, diags []lint.Diagnostic) error {
	rules := map[string]bool{}
	run := sarifRun{Tool: sarifTool{Driver: sarifDriver{Name: "rofllint"}}}
	for _, sa := range lint.Suite() {
		if !rules[sa.Analyzer.Name] {
			rules[sa.Analyzer.Name] = true
			run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
				ID:               sa.Analyzer.Name,
				ShortDescription: sarifText{Text: sa.Analyzer.Doc},
			})
		}
	}
	run.Results = make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{run},
	})
}
