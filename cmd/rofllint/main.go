// Command rofllint runs ROFL's project-specific static-analysis suite
// over the repository: determinism of the seeded packages, lock
// discipline in the protocol packages, wire round-trip completeness,
// and circular (never linear) comparison of flat labels.
//
// Usage:
//
//	go run ./cmd/rofllint ./...
//
// Exit status is 1 if any diagnostic survives (suppressions require an
// audited //rofllint:ignore directive with a reason), 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rofl/internal/lint"
)

func main() {
	list := flag.Bool("l", false, "list analyzers and their scopes, then exit")
	flag.Parse()

	suite := lint.Suite()
	if *list {
		for _, sa := range suite {
			fmt.Printf("%-14s %s\n", sa.Analyzer.Name, sa.Analyzer.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rofllint: %v\n", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, sa := range suite {
			if !sa.Applies(pkg.ImportPath) {
				continue
			}
			ds, err := lint.RunAnalyzer(sa.Analyzer, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rofllint: %v\n", err)
				os.Exit(2)
			}
			diags = append(diags, ds...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rofllint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
