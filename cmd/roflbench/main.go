// Command roflbench records and compares the repository's performance
// trajectory. It wraps `go test -bench` so every speed claim in a PR is
// backed by a committed BENCH_<label>.json file instead of a number in
// a commit message, and so CI can diff each push against the committed
// baseline.
//
// Subcommands:
//
//	roflbench run -label L [-o BENCH_L.json] [-bench RE] [-benchtime 500ms]
//	              [-count 1] [-timeout 20m] [pkg ...]
//	    Run the benchmark suite (default: the hot-path packages — wire,
//	    vring, overlay, ident) and write the parsed trajectory. Pass
//	    explicit package patterns (e.g. `.` for the figure-level suite
//	    in bench_test.go) to measure something else.
//
//	roflbench compare [-threshold 0.15] OLD.json NEW.json
//	    Diff two trajectories; exits 1 when any benchmark's ns/op
//	    regressed beyond the threshold.
//
//	roflbench export FILE.json
//	    Print the trajectory in the canonical Go benchmark text format;
//	    two exported files feed straight into benchstat.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"time"

	"rofl/internal/bench"
)

// hotPathPkgs is the default benchmark surface: the packages on the
// forwarding hot path, all fast enough for CI.
var hotPathPkgs = []string{
	"./internal/wire",
	"./internal/vring",
	"./internal/overlay",
	"./internal/ident",
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "roflbench: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "roflbench: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  roflbench run -label L [-o FILE] [-bench RE] [-benchtime D] [-count N] [-timeout D] [pkg ...]
  roflbench compare [-threshold F] OLD.json NEW.json
  roflbench export FILE.json
`)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	label := fs.String("label", "", "trajectory label (required; output defaults to BENCH_<label>.json)")
	out := fs.String("o", "", "output file (default BENCH_<label>.json)")
	benchRE := fs.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := fs.String("benchtime", "500ms", "go test -benchtime value (fixed for comparable runs)")
	count := fs.Int("count", 1, "go test -count value")
	timeout := fs.Duration("timeout", 20*time.Minute, "go test -timeout value")
	fs.Parse(args)
	if *label == "" {
		return fmt.Errorf("run: -label is required")
	}
	if *out == "" {
		*out = "BENCH_" + *label + ".json"
	}
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = hotPathPkgs
	}

	cmdArgs := []string{
		"test", "-run", "^$",
		"-bench", *benchRE,
		"-benchtime", *benchtime,
		"-count", fmt.Sprint(*count),
		"-timeout", timeout.String(),
	}
	cmdArgs = append(cmdArgs, pkgs...)
	fmt.Fprintf(os.Stderr, "roflbench: go %v\n", cmdArgs)
	cmd := exec.Command("go", cmdArgs...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(stdout.Bytes())
		return fmt.Errorf("run: go test: %w", err)
	}

	results, host, err := bench.Parse(&stdout)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("run: no benchmark results matched %q in %v", *benchRE, pkgs)
	}
	host.GoVersion = runtime.Version()
	host.NumCPU = runtime.NumCPU()
	traj := &bench.Trajectory{
		Label:      *label,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Host:       host,
		Benchmarks: results,
	}
	if err := bench.WriteFile(*out, traj); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "roflbench: wrote %d benchmarks to %s\n", len(results), *out)
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.15, "ns/op regression tolerance (0.15 = +15%)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("compare: want OLD.json NEW.json, got %d args", fs.NArg())
	}
	old, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := bench.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	if old.Host.GOARCH != cur.Host.GOARCH || old.Host.GOOS != cur.Host.GOOS {
		fmt.Fprintf(os.Stderr, "roflbench: warning: comparing %s/%s against %s/%s — numbers are not directly comparable\n",
			old.Host.GOOS, old.Host.GOARCH, cur.Host.GOOS, cur.Host.GOARCH)
	}
	rep := bench.Compare(old, cur, *threshold)
	if err := rep.Format(os.Stdout); err != nil {
		return err
	}
	if regs := rep.Regressions(); len(regs) > 0 {
		return fmt.Errorf("compare: %d benchmark(s) regressed beyond +%.0f%%", len(regs), *threshold*100)
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("export: want FILE.json")
	}
	t, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	return bench.Export(os.Stdout, t)
}
