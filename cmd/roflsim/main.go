// Command roflsim regenerates the tables and figures of the ROFL paper's
// evaluation section (§6) from the simulators in this repository.
//
// Usage:
//
//	roflsim -list                 # list every experiment
//	roflsim -fig fig6a            # run one figure at full scale
//	roflsim -all -quick           # run everything at smoke-test scale
//	roflsim -fig fig8b -csv       # emit CSV instead of an aligned table
//
// Scale knobs (-hosts, -pairs, -interhosts, -seed, -workers) override
// the chosen preset. -workers 1 reproduces the serial run exactly; any
// worker count produces identical tables (trials derive their seeds
// from the trial index, not from execution order).
//
// The scaling experiment has two extra knobs: -scalehosts sets the
// host-count sweep (comma-separated), and -shards sets how many shards
// the single-network sharded simulation uses. Like -workers, -shards
// only changes wall-clock time — sharded runs are byte-identical at any
// shard count:
//
//	roflsim -fig scaling -scalehosts 100000 -shards 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rofl"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		fig        = flag.String("fig", "", "experiment id to run (see -list)")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "smoke-test scale instead of full scale")
		csv        = flag.Bool("csv", false, "emit CSV")
		hosts      = flag.Int("hosts", 0, "override hosts per ISP")
		pairs      = flag.Int("pairs", 0, "override data-plane probe pairs")
		interhosts = flag.Int("interhosts", 0, "override interdomain hosts")
		seed       = flag.Int64("seed", 0, "override RNG seed")
		workers    = flag.Int("workers", 0, "trial workers per experiment (0 = NumCPU, 1 = serial)")
		scalehosts = flag.String("scalehosts", "", "comma-separated host counts for the scaling experiment (e.g. 10000,100000,1000000)")
		shards     = flag.Int("shards", 0, "shard count for the scaling experiment's single-network runs (0 = default 4; results identical at any value)")
	)
	flag.Parse()

	if *list {
		for _, r := range rofl.Experiments() {
			fmt.Printf("%-14s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := rofl.DefaultExperimentConfig()
	if *quick {
		cfg = rofl.QuickExperimentConfig()
	}
	if *hosts > 0 {
		cfg.HostsPerISP = *hosts
	}
	if *pairs > 0 {
		cfg.Pairs = *pairs
	}
	if *interhosts > 0 {
		cfg.InterHosts = *interhosts
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *scalehosts != "" {
		var sweep []int
		for _, f := range strings.Split(*scalehosts, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "roflsim: bad -scalehosts entry %q\n", f)
				os.Exit(2)
			}
			sweep = append(sweep, n)
		}
		cfg.ScaleSweep = sweep
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}

	var runners []rofl.Experiment
	switch {
	case *all:
		runners = rofl.Experiments()
	case *fig != "":
		r, ok := rofl.ExperimentByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "roflsim: unknown experiment %q (try -list)\n", *fig)
			os.Exit(2)
		}
		runners = []rofl.Experiment{r}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, r := range runners {
		start := time.Now()
		tab := r.Run(cfg)
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Print(tab.String())
			fmt.Printf("(%s in %.1fs)\n\n", r.ID, time.Since(start).Seconds())
		}
	}
}
