package rofl

import (
	"io"
	"time"

	"rofl/internal/canon"
	"rofl/internal/cluster"
	"rofl/internal/composite"
	"rofl/internal/delivery"
	"rofl/internal/experiments"
	"rofl/internal/ident"
	"rofl/internal/netem"
	"rofl/internal/overlay"
	"rofl/internal/secure"
	"rofl/internal/sim"
	"rofl/internal/telemetry"
	"rofl/internal/topology"
	"rofl/internal/vring"
)

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

// ID is a flat 128-bit label on the circular routing namespace.
type ID = ident.ID

// Identity is a self-certifying identity: the label is the hash of an
// ed25519 public key.
type Identity = ident.Identity

// Group is the shared prefix of an anycast/multicast group.
type Group = ident.Group

// IDFromString derives a deterministic label by hashing a string.
func IDFromString(s string) ID { return ident.FromString(s) }

// IDFromBytes derives a label by hashing bytes.
func IDFromBytes(b []byte) ID { return ident.FromBytes(b) }

// ParseID decodes a 32-hex-digit label.
func ParseID(s string) (ID, error) { return ident.Parse(s) }

// NewIdentity mints a self-certifying identity from an entropy source
// (use crypto/rand.Reader in production).
func NewIdentity(rng io.Reader) (*Identity, error) { return ident.NewIdentity(rng) }

// GroupFromString derives an anycast/multicast group prefix from a name.
func GroupFromString(name string) Group { return ident.GroupFromString(name) }

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// Metrics accumulates per-category message counts and sample sets.
type Metrics = sim.Metrics

// NewMetrics returns an empty metrics sink.
func NewMetrics() Metrics { return sim.NewMetrics() }

// ---------------------------------------------------------------------------
// Topologies
// ---------------------------------------------------------------------------

// Graph is a weighted router-level topology.
type Graph = topology.Graph

// ISP is a generated intradomain topology with backbone/access split.
type ISP = topology.ISP

// ISPConfig parameterizes the Rocketfuel-like ISP generator.
type ISPConfig = topology.ISPConfig

// ASGraph is an annotated AS-level topology with policy relationships.
type ASGraph = topology.ASGraph

// ASGenConfig parameterizes the Internet-like AS-graph generator.
type ASGenConfig = topology.ASGenConfig

// ASN identifies an autonomous system.
type ASN = topology.ASN

// RouterID indexes a router in a Graph.
type RouterID = topology.NodeID

// GenISP builds a deterministic ISP-like topology.
func GenISP(cfg ISPConfig) *ISP { return topology.GenISP(cfg) }

// GenAS builds a deterministic Internet-like AS graph.
func GenAS(cfg ASGenConfig) *ASGraph { return topology.GenAS(cfg) }

// DefaultASGen returns the reference Internet-like generator config.
func DefaultASGen() ASGenConfig { return topology.DefaultASGen() }

// AS1221 returns the paper's AS 1221 evaluation topology config
// (318 routers); likewise AS1239 (604), AS3257 (240) and AS3967 (201).
func AS1221() ISPConfig { return topology.AS1221 }

// AS1239 returns the paper's largest evaluation ISP config.
func AS1239() ISPConfig { return topology.AS1239 }

// AS3257 returns the paper's AS 3257 evaluation ISP config.
func AS3257() ISPConfig { return topology.AS3257 }

// AS3967 returns the paper's AS 3967 evaluation ISP config.
func AS3967() ISPConfig { return topology.AS3967 }

// EvalISPs returns all four evaluation ISP configs in figure order.
func EvalISPs() []ISPConfig { return topology.EvalISPs() }

// ParseRocketfuel reads a real Rocketfuel .cch router-level map, so the
// evaluation can run on the paper's actual topologies when you have the
// dataset (this repository ships only generated substitutes).
func ParseRocketfuel(r io.Reader, name string, linkWeightMS float64) (*ISP, error) {
	return topology.ParseRocketfuel(r, name, linkWeightMS)
}

// ParseASRelationships reads a CAIDA serial-1 AS-relationship file
// (as1|as2|rel) into an annotated AS graph, with the original AS numbers
// mapped to dense indices.
func ParseASRelationships(r io.Reader) (*ASGraph, map[int]ASN, error) {
	return topology.ParseASRelationships(r)
}

// ---------------------------------------------------------------------------
// Intradomain ROFL (paper §3)
// ---------------------------------------------------------------------------

// Network is one AS running intradomain ROFL: virtual rings over a
// router topology with greedy forwarding and failure repair.
type Network = vring.Network

// NetworkOptions tunes the intradomain protocol knobs.
type NetworkOptions = vring.Options

// JoinResult reports the cost of one host join.
type JoinResult = vring.JoinResult

// RouteResult reports one data packet's fate and stretch.
type RouteResult = vring.RouteResult

// VirtualNode is the routing state for one resident identifier.
type VirtualNode = vring.VirtualNode

// DefaultNetworkOptions mirrors the paper's simulation defaults:
// successor groups of 3, 70k-entry pointer caches (≈9 Mbit of 128-bit
// IDs, §6.2) filled from control traffic only (no data snooping),
// TTL 1024, seed 1. Every Default* constructor in this package follows
// the same convention: the returned struct is the reference
// configuration, and any field may be overridden before use.
func DefaultNetworkOptions() NetworkOptions { return vring.DefaultOptions() }

// NewNetwork builds an intradomain ROFL network over a router graph.
func NewNetwork(g *Graph, m Metrics, opts NetworkOptions) *Network {
	return vring.New(g, m, opts)
}

// ---------------------------------------------------------------------------
// Interdomain ROFL (paper §4)
// ---------------------------------------------------------------------------

// Internet is the interdomain simulation: per-AS rings merged bottom-up
// with policy support and the isolation property.
type Internet = canon.Internet

// InternetOptions tunes the interdomain knobs (fingers, caches, Bloom
// peering).
type InternetOptions = canon.Options

// Strategy selects how much of the up-hierarchy a join covers.
type Strategy = canon.Strategy

// Join strategies, in increasing coverage and cost (paper Fig 8a).
const (
	Ephemeral   = canon.Ephemeral
	SingleHomed = canon.SingleHomed
	Multihomed  = canon.Multihomed
	Peering     = canon.Peering
)

// DefaultInternetOptions mirrors the paper's baseline configuration:
// no finger budget, no pointer caches, Bloom peering off (1% target
// false-positive rate when enabled), seed 1 — the floor the Fig 8
// ablations improve on.
func DefaultInternetOptions() InternetOptions { return canon.DefaultOptions() }

// Negotiation is an endpoint path-negotiation outcome (paper §5.1): the
// AS set both endpoints agreed subsequent packets may traverse, plus the
// cost of the greedy first packet.
type Negotiation = canon.Negotiation

// SuffixJoin reports a multi-suffix traffic-engineering join (§5.1).
type SuffixJoin = canon.SuffixJoin

// NewInternet builds an interdomain ROFL simulation over an AS graph.
func NewInternet(g *ASGraph, m Metrics, opts InternetOptions) *Internet {
	return canon.New(g, m, opts)
}

// ---------------------------------------------------------------------------
// The composed two-level system (Algorithm 1 end to end)
// ---------------------------------------------------------------------------

// GlobalSystem is the paper's full architecture assembled: a virtual-ring
// network inside every AS, border routers relaying external joins, and
// the Canon-merged interdomain layer on top. Intra-AS traffic never
// leaves its AS; cross-AS traffic composes intradomain and interdomain
// legs.
type GlobalSystem = composite.Global

// GlobalOptions configures the composed system.
type GlobalOptions = composite.Options

// GlobalRouteResult reports a composed route's per-layer breakdown.
type GlobalRouteResult = composite.RouteResult

// DefaultGlobalOptions returns a laptop-scale two-level configuration:
// the intradomain and interdomain defaults above, 2 border routers per
// AS, a 24-router ISP template per domain, seed 1.
func DefaultGlobalOptions() GlobalOptions { return composite.DefaultOptions() }

// NewGlobal assembles the two-level system over an AS graph.
func NewGlobal(g *ASGraph, m Metrics, opts GlobalOptions) *GlobalSystem {
	return composite.New(g, m, opts)
}

// ---------------------------------------------------------------------------
// Delivery models (paper §5.2)
// ---------------------------------------------------------------------------

// Anycast delivers to the nearest member of a group.
type Anycast = delivery.Anycast

// Multicast maintains a path-painted distribution tree for a group.
type Multicast = delivery.Multicast

// NewAnycast binds an anycast group to a network.
func NewAnycast(n *Network, g Group) *Anycast { return delivery.NewAnycast(n, g) }

// NewMulticast creates an empty multicast tree for a group.
func NewMulticast(n *Network, g Group, m Metrics) *Multicast {
	return delivery.NewMulticast(n, g, m)
}

// ---------------------------------------------------------------------------
// Security extensions (paper §2.1, §5.3)
// ---------------------------------------------------------------------------

// Authenticator performs join-time proof-of-key-possession checks.
type Authenticator = secure.Authenticator

// Registry tracks provider registration and Sybil quotas.
type Registry = secure.Registry

// Capability is a signed, expiring send-authorization token.
type Capability = secure.Capability

// Gate is the default-off admission filter.
type Gate = secure.Gate

// NewRegistry creates a registry with a per-router identifier quota
// (0 = unlimited).
func NewRegistry(quota int) *Registry { return secure.NewRegistry(quota) }

// NewGate builds a default-off gate over a registry.
func NewGate(reg *Registry) *Gate { return secure.NewGate(reg) }

// GrantCapability issues a capability from the destination's identity.
func GrantCapability(dst *Identity, src ID, expiry uint64) Capability {
	return secure.Grant(dst, src, expiry)
}

// UnmarshalCapability decodes a capability token from a packet header.
func UnmarshalCapability(b []byte) (Capability, error) {
	return secure.UnmarshalCapability(b)
}

// ---------------------------------------------------------------------------
// UDP overlay + network emulation
// ---------------------------------------------------------------------------

// OverlayNode is a ROFL node speaking the wire format over a datagram
// transport (real UDP by default). All protocol logic — ring
// maintenance, greedy forwarding, eviction, quarantine, gossip,
// liveness — lives in the transport-agnostic core of internal/proto;
// the node is the live driver around one core.
type OverlayNode = overlay.Node

// NodeConfig configures an overlay node. Like the other option structs
// (NetworkOptions, InternetOptions, GlobalOptions), the zero value is
// usable: it binds a UDP socket on a random loopback port
// ("127.0.0.1:0"), retries control requests with DefaultRetryPolicy
// (120ms first retry, doubling to a 2s cap), installs no admission
// gate, buffers 64 deliveries, wires no telemetry, and starts neither
// maintenance loop. Set Stabilize and EnableLiveness (or start from
// DefaultNodeConfig) to keep a long-lived ring healthy.
type NodeConfig = overlay.Config

// RetryPolicy shapes the retransmission schedule of overlay control
// requests: first retransmit after Initial, each wait multiplied by
// Multiplier and capped at Max, until the caller's deadline expires.
type RetryPolicy = overlay.RetryPolicy

// DefaultRetryPolicy is tuned for LAN/loopback latencies: 120ms first
// retry, doubling to a 2s cap.
func DefaultRetryPolicy() RetryPolicy { return overlay.DefaultRetryPolicy() }

// DefaultNodeConfig returns the production overlay defaults: a UDP
// socket on a random loopback port, a 250ms stabilization loop, and
// the BFD-style liveness detector with DefaultLivenessParams. The zero
// NodeConfig differs only in leaving both maintenance loops off.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		Stabilize:      250 * time.Millisecond,
		EnableLiveness: true,
	}
}

// NewOverlayNode builds a node from cfg and starts its receive loop,
// plus the stabilize and liveness loops when cfg asks for them. The
// node is ready to Bootstrap a new ring or Join an existing one.
func NewOverlayNode(id ID, cfg NodeConfig) (*OverlayNode, error) {
	return overlay.New(id, cfg)
}

// OverlayTransport is the datagram surface overlay nodes speak through:
// real UDP, an emulated netem fabric, or a fault-injecting wrapper.
type OverlayTransport = netem.Transport

// NewOverlayNodeTransport binds a node to an existing transport; the
// node owns it and closes it on Close.
//
// Deprecated: use NewOverlayNode with NodeConfig{Transport: tr}.
func NewOverlayNodeTransport(id ID, tr OverlayTransport) *OverlayNode {
	return overlay.NewNodeTransport(id, tr)
}

// ListenUDPTransport binds a real-UDP transport ("127.0.0.1:0" picks a
// free port).
func ListenUDPTransport(bind string) (OverlayTransport, error) {
	return netem.ListenUDP(bind)
}

// FaultParams configures injected faults: loss/duplication/reorder
// probabilities, latency, jitter, and bandwidth.
type FaultParams = netem.LinkParams

// FaultTransport degrades another transport's outbound traffic with a
// seeded, reproducible fault schedule.
type FaultTransport = netem.Fault

// WrapFaultTransport applies params to inner's outbound packets, drawing
// decisions from a RNG seeded with seed.
func WrapFaultTransport(inner OverlayTransport, params FaultParams, seed int64) *FaultTransport {
	return netem.WrapFault(inner, params, seed)
}

// EmulatedNetwork is an in-process datagram fabric with deterministic
// fault injection — the harness the overlay's chaos tests run on.
type EmulatedNetwork = netem.Network

// NewEmulatedNetwork creates a fabric whose fault decisions derive from
// seed.
func NewEmulatedNetwork(seed int64) *EmulatedNetwork {
	return netem.NewNetwork(seed)
}

// ---------------------------------------------------------------------------
// Telemetry & observability
// ---------------------------------------------------------------------------

// TelemetryRegistry holds named counters, gauges, and histograms and
// renders them in Prometheus text format.
type TelemetryRegistry = telemetry.Registry

// NewTelemetryRegistry returns an empty metrics registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// EventLog writes structured JSON-lines events with level filtering.
type EventLog = telemetry.EventLog

// EventLevel orders event severities.
type EventLevel = telemetry.Level

// Event severities, least to most severe.
const (
	LevelDebug = telemetry.LevelDebug
	LevelInfo  = telemetry.LevelInfo
	LevelWarn  = telemetry.LevelWarn
	LevelError = telemetry.LevelError
)

// NewEventLog writes events at or above min to w as JSON lines.
func NewEventLog(w io.Writer, min EventLevel) *EventLog { return telemetry.NewEventLog(w, min) }

// TelemetryServer serves /metrics, /ring, and /healthz for one node.
type TelemetryServer = telemetry.Server

// NewTelemetryServer listens on addr ("127.0.0.1:0" picks a free port)
// and serves reg's metrics, ring's snapshot, and health's verdict.
func NewTelemetryServer(addr string, reg *TelemetryRegistry, ring func() any, health func() error) (*TelemetryServer, error) {
	return telemetry.NewServer(addr, reg, ring, health)
}

// OverlayStatus is an overlay node's ring snapshot (the /ring payload).
type OverlayStatus = overlay.Status

// LivenessParams shapes the overlay's BFD-style adaptive failure
// detector: probe intervals are negotiated per-pair and a successor is
// declared dead after Multiplier unanswered probes.
type LivenessParams = overlay.LivenessParams

// DefaultLivenessParams detects a dead successor in roughly 40ms.
func DefaultLivenessParams() LivenessParams { return overlay.DefaultLivenessParams() }

// NewFaultInstruments resolves per-fate packet counters in reg for use
// with FaultTransport.SetInstruments.
func NewFaultInstruments(reg *TelemetryRegistry) *netem.Instruments {
	return netem.NewInstruments(reg)
}

// ---------------------------------------------------------------------------
// Cluster supervision
// ---------------------------------------------------------------------------

// ClusterConfig shapes a supervised in-process cluster.
type ClusterConfig = cluster.Config

// ClusterSupervisor launches, observes, churns, and drains N overlay
// nodes, each with its own metrics registry and HTTP endpoint.
type ClusterSupervisor = cluster.Supervisor

// ClusterMember is one supervised node slot.
type ClusterMember = cluster.Member

// ClusterEvent is one churn action (kill or restart).
type ClusterEvent = cluster.Event

// NewCluster prepares a supervisor; Start launches the nodes.
func NewCluster(cfg ClusterConfig) *ClusterSupervisor { return cluster.New(cfg) }

// ClusterSchedule derives a seed-reproducible churn schedule: kills
// target live nodes, restarts target dead ones, and at least half the
// cluster stays alive at every step.
func ClusterSchedule(seed int64, n, steps int) []ClusterEvent {
	return cluster.Schedule(seed, n, steps)
}

// ---------------------------------------------------------------------------
// Experiments (paper §6)
// ---------------------------------------------------------------------------

// ExperimentConfig scales the evaluation drivers.
type ExperimentConfig = experiments.Config

// ExperimentTable is one reproduced figure.
type ExperimentTable = experiments.Table

// Experiment is a named figure driver.
type Experiment = experiments.Runner

// Experiments lists every reproduced figure in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds a figure driver ("fig5a" ... "ablation").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// DefaultExperimentConfig sizes the full evaluation.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// QuickExperimentConfig sizes a smoke-test run.
func QuickExperimentConfig() ExperimentConfig { return experiments.QuickConfig() }
