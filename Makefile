# Entry points mirroring .github/workflows/ci.yml: what CI gates on,
# a developer can run locally with make.

GO ?= go

.PHONY: all build test race lint chaos fuzz

all: build test lint

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./internal/sim/... ./internal/experiments/... ./internal/vring/...
	$(GO) test -race -shuffle=on ./internal/netem/... ./internal/overlay/...

# Project invariants (internal/lint). staticcheck and govulncheck run
# in CI as well but need network access to install; they are skipped
# here when absent.
lint:
	$(GO) run ./cmd/rofllint ./...
	@command -v staticcheck >/dev/null && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null && govulncheck ./... || echo "govulncheck not installed; skipping"

chaos:
	$(GO) test -race -run 'TestChaos|TestJoinAndSend|TestJoinSurvives' -count=3 -timeout 15m ./internal/overlay/

fuzz:
	$(GO) test -fuzz=FuzzDecodeRoundTrip -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzHandleRequest -fuzztime=10s ./internal/overlay
