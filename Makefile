# Entry points mirroring .github/workflows/ci.yml: what CI gates on,
# a developer can run locally with make.

GO ?= go

.PHONY: all build test race lint chaos fuzz bench bench-compare cluster-smoke scale-smoke

all: build test lint

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./internal/sim/... ./internal/experiments/... ./internal/vring/...
	$(GO) test -race -shuffle=on ./internal/proto/... ./internal/netem/... ./internal/overlay/...
	$(GO) test -race -shuffle=on ./internal/telemetry/... ./internal/cluster/...

# Project invariants (internal/lint): the analyzer suite, then the
# ignore-budget gate — the live per-analyzer suppression counts must
# match the committed lint.budget, so new ignores are reviewed, not
# accumulated. staticcheck and govulncheck run in CI as well but need
# network access to install; they are skipped here when absent.
lint:
	$(GO) run ./cmd/rofllint ./...
	$(GO) run ./cmd/rofllint -ignores ./... | diff -u lint.budget - \
		|| { echo "ignore counts drifted from lint.budget; audit the new suppressions and update the budget"; exit 1; }
	@command -v staticcheck >/dev/null && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null && govulncheck ./... || echo "govulncheck not installed; skipping"

chaos:
	$(GO) test -race -run 'TestChaos|TestJoinAndSend|TestJoinSurvives' -count=3 -timeout 15m ./internal/overlay/

# Live churn drill: 50 real-UDP nodes with per-node metrics endpoints,
# seeded kill/restart churn, reconvergence, and metrics-scrape
# assertions (nonzero forward counters on every survivor, nonzero
# eviction counters after churn). The 200-node acceptance drill is
# `go run ./cmd/roflnode cluster -n 200 -seed 1 -churn`.
cluster-smoke:
	$(GO) run ./cmd/roflnode cluster -n 50 -seed 1 -churn -timeout 60s

fuzz:
	$(GO) test -fuzz=FuzzDecodeRoundTrip -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzHandleRequest -fuzztime=10s ./internal/overlay

# Sharded single-network smoke: converge a 100k-host compact ring
# sharded 8 ways and probe it, under a hard timeout. The full
# million-host sweep is `go run ./cmd/roflsim -fig scaling`
# (SCALING.md documents the published curves).
scale-smoke:
	timeout 300 $(GO) run ./cmd/roflsim -fig scaling -scalehosts 100000 -shards 8 -pairs 500

# Benchmark trajectory (cmd/roflbench). `make bench` records the
# hot-path suite into BENCH_ci.json; `make bench-compare` then diffs it
# against the committed baseline and fails on >15% ns/op regressions.
# Override BENCH_LABEL / BENCH_BASELINE to record against another point.
BENCH_LABEL ?= ci
BENCH_BASELINE ?= BENCH_pr10.json

bench:
	$(GO) run ./cmd/roflbench run -label $(BENCH_LABEL) -benchtime 500ms -o BENCH_$(BENCH_LABEL).json

bench-compare: bench
	$(GO) run ./cmd/roflbench compare -threshold 0.15 $(BENCH_BASELINE) BENCH_$(BENCH_LABEL).json
