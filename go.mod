module rofl

go 1.24
