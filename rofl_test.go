package rofl_test

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"
	"time"

	"rofl"
)

// TestQuickstartFlow exercises the README quick-start end to end through
// the public API only.
func TestQuickstartFlow(t *testing.T) {
	isp := rofl.GenISP(rofl.ISPConfig{
		Name: "quick", Routers: 60, PoPs: 6, BackbonePerPoP: 2, PoPDegree: 2,
		IntraPoPDelay: 0.5, InterPoPDelay: 5, Hosts: 120, ZipfS: 1.2, Seed: 1,
	})
	net := rofl.NewNetwork(isp.Graph, rofl.NewMetrics(), rofl.DefaultNetworkOptions())

	var ids []rofl.ID
	for i := 0; i < 40; i++ {
		id := rofl.IDFromString(fmt.Sprintf("svc-%d", i))
		if _, err := net.JoinHost(id, isp.Access[i%len(isp.Access)]); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := net.CheckRing(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		res, err := net.Route(isp.Access[(i*3+1)%len(isp.Access)], id)
		if err != nil || !res.Delivered {
			t.Fatalf("route: %+v %v", res, err)
		}
		if res.Stretch < 1 {
			t.Fatalf("stretch %v", res.Stretch)
		}
	}
}

func TestPublicInterdomainFlow(t *testing.T) {
	gen := rofl.DefaultASGen()
	gen.Tier1, gen.Tier2, gen.Stubs, gen.Hosts = 4, 12, 50, 500
	g := rofl.GenAS(gen)
	in := rofl.NewInternet(g, rofl.NewMetrics(), rofl.DefaultInternetOptions())
	var ids []rofl.ID
	rng := mrand.New(mrand.NewSource(1))
	stubs := g.Stubs()
	for i := 0; i < 60; i++ {
		id := rofl.IDFromString(fmt.Sprintf("global-%d", i))
		if _, err := in.Join(id, stubs[rng.Intn(len(stubs))], rofl.Multihomed); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := in.CheckRings(); err != nil {
		t.Fatal(err)
	}
	if err := in.CheckIsolationState(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if src == dst {
			continue
		}
		res, err := in.Route(src, dst)
		if err != nil || !res.Delivered {
			t.Fatalf("route: %+v %v", res, err)
		}
	}
}

func TestPublicIdentityAndCapabilities(t *testing.T) {
	server, err := rofl.NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	client := rofl.IDFromString("client")
	reg := rofl.NewRegistry(100)
	gate := rofl.NewGate(reg)
	if err := reg.Register(server.ID(), 1); err != nil {
		t.Fatal(err)
	}
	cap := rofl.GrantCapability(server, client, 5000)
	if err := gate.Admit(client, server.ID(), &cap, 100); err != nil {
		t.Fatalf("capability flow broken: %v", err)
	}
	if err := gate.Admit(client, server.ID(), nil, 100); err == nil {
		t.Fatal("default-off must drop unauthorized traffic")
	}
}

func TestPublicAnycastMulticast(t *testing.T) {
	isp := rofl.GenISP(rofl.ISPConfig{
		Name: "any", Routers: 40, PoPs: 5, BackbonePerPoP: 2, PoPDegree: 2,
		IntraPoPDelay: 0.5, InterPoPDelay: 4, Hosts: 80, ZipfS: 1.2, Seed: 3,
	})
	m := rofl.NewMetrics()
	net := rofl.NewNetwork(isp.Graph, m, rofl.DefaultNetworkOptions())
	for i := 0; i < 15; i++ {
		if _, err := net.JoinHost(rofl.IDFromString(fmt.Sprintf("bg-%d", i)), isp.Access[i%len(isp.Access)]); err != nil {
			t.Fatal(err)
		}
	}
	g := rofl.GroupFromString("cdn")
	any := rofl.NewAnycast(net, g)
	for i := 0; i < 3; i++ {
		if _, err := any.AddMember(uint32(i+1), isp.Access[i*4]); err != nil {
			t.Fatal(err)
		}
	}
	rng := mrand.New(mrand.NewSource(4))
	if _, err := any.Send(isp.Backbone[0], rng); err != nil {
		t.Fatal(err)
	}

	mg := rofl.GroupFromString("stream")
	mc := rofl.NewMulticast(net, mg, m)
	for i := 0; i < 4; i++ {
		if err := mc.Join(uint32(i+1), isp.Access[(i*3+1)%len(isp.Access)]); err != nil {
			t.Fatal(err)
		}
	}
	reached, _, err := mc.Send(mg.Member(1))
	if err != nil || len(reached) != 4 {
		t.Fatalf("multicast reached %d/4: %v", len(reached), err)
	}
}

func TestPublicOverlay(t *testing.T) {
	// The zero NodeConfig binds a random loopback port.
	a, err := rofl.NewOverlayNode(rofl.IDFromString("a"), rofl.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Bootstrap()
	b, err := rofl.NewOverlayNode(rofl.IDFromString("b"), rofl.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Join(a.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.ID(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-b.Deliveries():
		if string(d.Payload) != "ping" {
			t.Fatalf("payload %q", d.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("overlay delivery timed out")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(rofl.Experiments()) < 13 {
		t.Fatalf("experiments = %d, want all figures", len(rofl.Experiments()))
	}
	r, ok := rofl.ExperimentByID("fig6a")
	if !ok {
		t.Fatal("fig6a missing")
	}
	cfg := rofl.QuickExperimentConfig()
	cfg.HostsPerISP, cfg.Pairs, cfg.InterHosts = 40, 40, 80
	tab := r.Run(cfg)
	if len(tab.Rows) == 0 {
		t.Fatal("empty experiment table")
	}
}

func TestIDParseRoundTrip(t *testing.T) {
	id := rofl.IDFromBytes([]byte{1, 2, 3})
	got, err := rofl.ParseID(id.String())
	if err != nil || got != id {
		t.Fatalf("round trip: %v %v", got, err)
	}
}

// TestCapabilityOverUDPOverlay wires the full §5.3 flow over real
// sockets: a self-certifying receiver installs a capability gate, the
// sender carries a marshaled ed25519 capability in the wire header, and
// the overlay drops everything else.
func TestCapabilityOverUDPOverlay(t *testing.T) {
	receiverIdentity, err := rofl.NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Default-off: only packets with a valid, unexpired capability pass.
	// The gate is part of the node's construction-time configuration.
	const now = 100
	recv, err := rofl.NewOverlayNode(receiverIdentity.ID(), rofl.NodeConfig{
		Gate: func(src rofl.ID, capBytes []byte) error {
			cap, err := rofl.UnmarshalCapability(capBytes)
			if err != nil {
				return err
			}
			return cap.Verify(src, receiverIdentity.ID(), now)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.Bootstrap()

	senderID := rofl.IDFromString("sender")
	send, err := rofl.NewOverlayNode(senderID, rofl.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if err := send.Join(recv.Addr(), 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// No capability: dropped.
	if err := send.Send(receiverIdentity.ID(), []byte("nope")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-recv.Deliveries():
		t.Fatalf("unauthorized packet delivered: %q", d.Payload)
	case <-time.After(200 * time.Millisecond):
	}

	// Valid capability: delivered.
	cap := rofl.GrantCapability(receiverIdentity, senderID, 1000)
	if err := send.SendWithCapability(receiverIdentity.ID(), []byte("authorized"), cap.Marshal()); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-recv.Deliveries():
		if string(d.Payload) != "authorized" {
			t.Fatalf("payload %q", d.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("authorized packet not delivered")
	}

	// Expired capability: dropped again.
	expired := rofl.GrantCapability(receiverIdentity, senderID, now-1)
	if err := send.SendWithCapability(receiverIdentity.ID(), []byte("late"), expired.Marshal()); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-recv.Deliveries():
		t.Fatalf("expired capability delivered: %q", d.Payload)
	case <-time.After(200 * time.Millisecond):
	}
}
