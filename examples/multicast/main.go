// Multicast & anycast: ROFL's enhanced delivery models (paper §5.2).
// Anycast needs nothing beyond ordinary joins — group members share an
// identifier prefix and greedy routing finds the nearest one. Multicast
// paints a distribution tree along anycast joins and floods it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rofl"
)

func main() {
	isp := rofl.GenISP(rofl.ISPConfig{
		Name: "cdn-isp", Routers: 80, PoPs: 8, BackbonePerPoP: 2, PoPDegree: 3,
		IntraPoPDelay: 0.4, InterPoPDelay: 6, Hosts: 200, ZipfS: 1.2, Seed: 7,
	})
	metrics := rofl.NewMetrics()
	net := rofl.NewNetwork(isp.Graph, metrics, rofl.DefaultNetworkOptions())

	// Background population so the ring is realistic.
	for i := 0; i < 60; i++ {
		if _, err := net.JoinHost(rofl.IDFromString(fmt.Sprintf("host-%d", i)), isp.Access[i%len(isp.Access)]); err != nil {
			log.Fatal(err)
		}
	}

	// --- Anycast: a replicated DNS service -------------------------------
	dns := rofl.GroupFromString("dns-service")
	any := rofl.NewAnycast(net, dns)
	replicaAt := map[rofl.ID]rofl.RouterID{}
	// Member suffixes spread evenly over the 32-bit suffix space: a
	// member's anycast catchment is the ring interval up to the next
	// member, so even spacing balances load (the paper's i3-style knob).
	for i := 0; i < 4; i++ {
		at := isp.Access[i*7%len(isp.Access)]
		suffix := uint32(i) << 30
		if _, err := any.AddMember(suffix, at); err != nil {
			log.Fatal(err)
		}
		replicaAt[dns.Member(suffix)] = at
		fmt.Printf("dns replica %d (suffix %#x) at router %d\n", i+1, suffix, at)
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[rofl.RouterID]int{}
	for i := 0; i < 200; i++ {
		from := isp.Access[rng.Intn(len(isp.Access))]
		out, err := any.Send(from, rng)
		if err != nil {
			log.Fatal(err)
		}
		counts[out.Final]++
	}
	fmt.Println("\n200 anycast queries spread over replicas:")
	for id, at := range replicaAt {
		fmt.Printf("  replica %s… at router %-3d served %d queries\n", id.String()[:6], at, counts[at])
	}

	// --- Multicast: a video stream ---------------------------------------
	video := rofl.GroupFromString("video-stream")
	mc := rofl.NewMulticast(net, video, metrics)
	for i := 0; i < 8; i++ {
		if err := mc.Join(uint32(i+1), isp.Access[(i*5+2)%len(isp.Access)]); err != nil {
			log.Fatal(err)
		}
	}
	reached, treeMsgs, err := mc.Send(video.Member(1))
	if err != nil {
		log.Fatal(err)
	}

	// Compare against unicasting to every member.
	srcRouter, _ := net.HostingRouter(video.Member(1))
	unicast := 0
	for i := 2; i <= 8; i++ {
		res, err := net.Route(srcRouter, video.Member(uint32(i)))
		if err != nil {
			log.Fatal(err)
		}
		unicast += res.Hops
	}
	fmt.Printf("\nmulticast: %d/8 members reached over a %d-router tree in %d link crossings\n",
		len(reached), mc.TreeRouters(), treeMsgs)
	fmt.Printf("unicast fan-out to the same members would cost %d hops (%.1fx more)\n",
		unicast, float64(unicast)/float64(treeMsgs))
}
