// Failover: ROFL's failure handling (paper §3.2) — host crashes with
// directed-flood teardowns, router failure with deterministic failover,
// and a full network partition that splits the ring in two and merges
// back when the PoP reconnects, verified by the ring consistency
// checker after every event.
package main

import (
	"fmt"
	"log"
	"time"

	"rofl"
)

func main() {
	isp := rofl.GenISP(rofl.AS3967())
	metrics := rofl.NewMetrics()
	net := rofl.NewNetwork(isp.Graph, metrics, rofl.DefaultNetworkOptions())

	var ids []rofl.ID
	for i := 0; i < 120; i++ {
		id := rofl.IDFromString(fmt.Sprintf("srv-%d", i))
		if _, err := net.JoinHost(id, isp.Access[(i*3)%len(isp.Access)]); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	check := func(stage string) {
		if err := net.CheckRing(); err != nil {
			log.Fatalf("%s: ring corrupted: %v", stage, err)
		}
		fmt.Printf("%-28s ring consistent ✓\n", stage)
	}
	check("after 120 joins:")

	// --- Host crash -------------------------------------------------------
	before := metrics.Counter("vring-teardown")
	if err := net.FailHost(ids[10]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host crash: directed teardown flood cost %d msgs\n",
		metrics.Counter("vring-teardown")-before)
	check("after host crash:")

	// --- Router crash -----------------------------------------------------
	victim := isp.Access[3]
	resident := 0
	for _, id := range ids {
		if at, ok := net.HostingRouter(id); ok && at == victim {
			resident++
		}
	}
	if err := net.FailRouter(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router %d crash: %d resident hosts failed over to the next router on the pre-agreed list\n",
		victim, resident)
	check("after router crash:")

	// --- Partition --------------------------------------------------------
	pop := 5
	cut := net.PartitionPoP(pop)
	fmt.Printf("partitioned PoP %d by failing %d links\n", pop, len(cut))
	splitMsgs := net.RepairPartitions()
	check("after split repair:")
	fmt.Printf("split repair: %d msgs — both sides now run separate consistent rings\n", splitMsgs)

	for _, l := range cut {
		net.RestoreLink(l[0], l[1])
	}
	mergeMsgs := net.RepairPartitions()
	check("after merge repair:")
	fmt.Printf("merge repair: %d msgs — the zero-node mechanism rejoined the rings\n", mergeMsgs)

	// Everything still alive is reachable again.
	ok := 0
	for _, id := range ids {
		if _, alive := net.HostingRouter(id); !alive {
			continue
		}
		if _, err := net.Route(isp.Backbone[0], id); err == nil {
			ok++
		}
	}
	fmt.Printf("post-merge reachability: %d/%d surviving hosts routable\n", ok, len(ids)-1)

	// --- Live overlay failover -------------------------------------------
	// The same eviction machinery runs over real UDP. Three nodes with
	// fast maintenance (NodeConfig puts stabilization and BFD liveness
	// into the constructor); crash one and watch the survivors route
	// around the corpse.
	cfg := rofl.NodeConfig{Stabilize: 50 * time.Millisecond, EnableLiveness: true}
	mk := func(name string) *rofl.OverlayNode {
		n, err := rofl.NewOverlayNode(rofl.IDFromString(name), cfg)
		if err != nil {
			log.Fatalf("live node %s: %v", name, err)
		}
		return n
	}
	n0, n1, n2 := mk("live-0"), mk("live-1"), mk("live-2")
	defer n0.Close()
	defer n1.Close()
	n0.Bootstrap()
	for _, n := range []*rofl.OverlayNode{n1, n2} {
		if err := n.Join(n0.Addr(), 2*time.Second); err != nil {
			log.Fatalf("live join: %v", err)
		}
	}
	victim2 := n2.ID()
	n2.Close() // crash: no goodbye, the survivors must detect it

	deadline := time.Now().Add(10 * time.Second)
	for {
		if succ, _, ok := n0.Successor(); ok && succ != victim2 {
			if succ2, _, ok2 := n1.Successor(); ok2 && succ2 != victim2 {
				break
			}
		}
		if time.Now().After(deadline) {
			log.Fatal("live overlay never evicted the crashed node")
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Println("live overlay: crashed node evicted, survivors rerouted ✓")
}
