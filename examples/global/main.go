// Global: the paper's complete two-level architecture in one program —
// every AS runs its own virtual-ring network over its own router
// topology, border routers relay external joins up the provider
// hierarchy, and packets compose intradomain and interdomain legs. The
// isolation corollary is visible directly: intra-AS packets never touch
// the interdomain layer.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rofl"
)

func main() {
	// A small Internet: 2 tier-1s, 4 transits, 10 stubs.
	asGraph := rofl.GenAS(rofl.ASGenConfig{
		Tier1: 2, Tier2: 4, Stubs: 10,
		Hosts: 1000, ZipfS: 1.1, PeerProb: 0.3, BackupProb: 0.2, Seed: 11,
	})
	world := rofl.NewGlobal(asGraph, rofl.NewMetrics(), rofl.DefaultGlobalOptions())
	fmt.Printf("built %d ASes, each with its own %d-router network and border routers\n\n",
		asGraph.NumASes(), rofl.DefaultGlobalOptions().ISPTemplate.Routers)

	// Join hosts across the stub ASes.
	rng := rand.New(rand.NewSource(4))
	stubs := asGraph.Stubs()
	type host struct {
		id rofl.ID
		as rofl.ASN
	}
	var hosts []host
	for i := 0; i < 30; i++ {
		id := rofl.IDFromString(fmt.Sprintf("global-host-%d", i))
		as := stubs[rng.Intn(len(stubs))]
		d, _ := world.Domain(as)
		at := d.ISP.Access[rng.Intn(len(d.ISP.Access))]
		res, err := world.JoinHost(id, as, at, rofl.Multihomed)
		if err != nil {
			log.Fatalf("join: %v", err)
		}
		if i < 3 {
			fmt.Printf("host %d joined AS %d at router %d: %d intra msgs (ring splice + border relay), %d inter msgs (per-level joins)\n",
				i, as, at, res.IntraMsgs, res.InterMsgs)
		}
		hosts = append(hosts, host{id, as})
	}
	if err := world.CheckAll(); err != nil {
		log.Fatalf("invariants: %v", err)
	}
	fmt.Println("\nall internal rings, interdomain rings, and isolation state verified ✓")

	// Route: intra-AS and cross-AS.
	intra, cross := 0, 0
	var intraHops, crossIntra, crossInter float64
	for i := 0; i < 200; i++ {
		a := hosts[rng.Intn(len(hosts))]
		b := hosts[rng.Intn(len(hosts))]
		if a.id == b.id {
			continue
		}
		res, err := world.Route(a.id, b.id)
		if err != nil {
			log.Fatalf("route: %v", err)
		}
		if res.StayedHome {
			intra++
			intraHops += float64(res.IntraHops)
		} else {
			cross++
			crossIntra += float64(res.IntraHops)
			crossInter += float64(res.InterHops)
		}
	}
	fmt.Printf("\n%d intra-AS packets: avg %.1f router hops, ZERO interdomain involvement (isolation corollary)\n",
		intra, intraHops/float64(intra))
	fmt.Printf("%d cross-AS packets: avg %.1f router hops at the edges + %.1f AS-level hops across the hierarchy\n",
		cross, crossIntra/float64(cross), crossInter/float64(cross))

	// One concrete cross-AS path, end to end.
	for _, a := range hosts {
		for _, b := range hosts {
			if a.as == b.as {
				continue
			}
			res, _ := world.Route(a.id, b.id)
			fmt.Printf("\nexample: AS %d → AS %d crossed ASes %v (%d AS hops, %d edge router hops)\n",
				a.as, b.as, res.ASPath, res.InterHops, res.IntraHops)
			return
		}
	}
}
