// Quickstart: build a ROFL network over an ISP-like topology, join a
// handful of hosts by flat label, and route packets between them —
// no addresses anywhere, only identities.
package main

import (
	"fmt"
	"log"
	"time"

	"rofl"
)

func main() {
	// A small ISP: 6 PoPs, ~60 routers, realistic backbone/access split.
	isp := rofl.GenISP(rofl.ISPConfig{
		Name: "demo-isp", Routers: 60, PoPs: 6, BackbonePerPoP: 2, PoPDegree: 2,
		IntraPoPDelay: 0.5, InterPoPDelay: 5, Hosts: 100, ZipfS: 1.2, Seed: 42,
	})
	metrics := rofl.NewMetrics()
	net := rofl.NewNetwork(isp.Graph, metrics, rofl.DefaultNetworkOptions())

	// Join hosts. A host's label is all a sender will ever need — it is
	// derived from (a hash of) the host's key, not from where it sits.
	services := []string{"web-frontend", "database", "cache", "mail", "build-farm"}
	for i, name := range services {
		id := rofl.IDFromString(name)
		res, err := net.JoinHost(id, isp.Access[i*5%len(isp.Access)])
		if err != nil {
			log.Fatalf("joining %s: %v", name, err)
		}
		fmt.Printf("joined %-14s label=%s…  join cost: %d msgs, %.1f ms\n",
			name, id.String()[:8], res.Msgs, res.Latency)
	}
	if err := net.CheckRing(); err != nil {
		log.Fatalf("ring check: %v", err)
	}

	// Route packets by label from an arbitrary ingress router.
	fmt.Println("\nrouting on flat labels:")
	ingress := isp.Access[len(isp.Access)-1]
	for _, name := range services {
		res, err := net.Route(ingress, rofl.IDFromString(name))
		if err != nil {
			log.Fatalf("routing to %s: %v", name, err)
		}
		fmt.Printf("  → %-14s %2d hops (shortest %2d, stretch %.2f)\n",
			name, res.Hops, res.Shortest, res.Stretch)
	}

	// Mobility: the database moves to another rack; its label is stable.
	db := rofl.IDFromString("database")
	if _, err := net.MoveHost(db, isp.Access[2]); err != nil {
		log.Fatalf("moving database: %v", err)
	}
	res, err := net.Route(ingress, db)
	if err != nil {
		log.Fatalf("routing after move: %v", err)
	}
	fmt.Printf("\nafter mobility, same label still routes: database in %d hops\n", res.Hops)

	fmt.Printf("\ntotals: join=%d msgs, data=%d msgs, teardown=%d msgs\n",
		metrics.Counter("vring-join"), metrics.Counter("vring-data"), metrics.Counter("vring-teardown"))

	// --- From simulation to live sockets ---------------------------------
	// The same protocol runs over real UDP: NewOverlayNode takes a
	// NodeConfig whose zero value binds a random loopback port.
	// DefaultNodeConfig() additionally switches on periodic
	// stabilization and BFD liveness, which is what a long-running node
	// wants.
	server, err := rofl.NewOverlayNode(rofl.IDFromString("live-server"), rofl.DefaultNodeConfig())
	if err != nil {
		log.Fatalf("live server: %v", err)
	}
	defer server.Close()
	server.Bootstrap()

	client, err := rofl.NewOverlayNode(rofl.IDFromString("live-client"), rofl.NodeConfig{})
	if err != nil {
		log.Fatalf("live client: %v", err)
	}
	defer client.Close()
	if err := client.Join(server.Addr(), 2*time.Second); err != nil {
		log.Fatalf("live join: %v", err)
	}
	if err := client.Send(server.ID(), []byte("hello over UDP")); err != nil {
		log.Fatalf("live send: %v", err)
	}
	d := <-server.Deliveries()
	fmt.Printf("\nlive overlay: %q routed by label over %s\n", d.Payload, server.Addr())
}
