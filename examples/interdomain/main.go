// Interdomain: multi-AS ROFL with the paper's policy machinery — join
// strategies, the isolation property, multihoming failover, and the
// paper's Figure 3 hierarchy reproduced literally.
package main

import (
	"fmt"
	"log"

	"rofl"
	"rofl/internal/ident"
	"rofl/internal/topology"
)

func main() {
	fmt.Println("== paper Figure 3: the five-AS hierarchy ==")
	figure3()
	fmt.Println("\n== multihoming failover (§2.3) ==")
	multihoming()
	fmt.Println("\n== join strategies (§6.3) ==")
	strategies()
}

// figure3 rebuilds the exact example of the paper's Figure 3 and prints
// the per-level successors of identifier 8.
func figure3() {
	//      1
	//     / \
	//    2   3
	//   / \
	//  4   5
	g := topology.NewASGraph(6)
	g.SetRelation(2, 1, topology.RelProvider)
	g.SetRelation(3, 1, topology.RelProvider)
	g.SetRelation(4, 2, topology.RelProvider)
	g.SetRelation(5, 2, topology.RelProvider)
	for a, tier := range map[rofl.ASN]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3} {
		g.SetTier(a, tier)
	}
	in := rofl.NewInternet(g, rofl.NewMetrics(), rofl.DefaultInternetOptions())
	join := func(v uint64, at rofl.ASN) rofl.ID {
		id := ident.FromUint64(v)
		if _, err := in.Join(id, at, rofl.Multihomed); err != nil {
			log.Fatal(err)
		}
		return id
	}
	id8 := join(8, 4)
	join(20, 4)
	join(16, 5)
	join(14, 3)

	fmt.Println("identifier 8 (hosted in AS 4) keeps one successor per level:")
	vn := in.AS(4).VNs[id8]
	for _, root := range vn.Roots(in) {
		s := vn.SuccAt[root]
		fmt.Printf("  level %-12v → successor %d (in AS %d)\n", root, s.ID.Low64(), s.AS)
	}

	// The isolation property: 8 → 16 (both under AS 2) never touches
	// AS 1 or AS 3.
	res, err := in.Route(id8, ident.FromUint64(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing 8 → 16 traverses ASes %v (stays inside subtree of AS 2: %v)\n",
		res.Traversed, res.StrictlyIsolated)
}

// multihoming shows traffic shifting automatically when a multihomed
// stub loses an access link.
func multihoming() {
	g := topology.NewASGraph(5)
	g.SetRelation(2, 1, topology.RelProvider)
	g.SetRelation(3, 1, topology.RelProvider)
	g.SetRelation(4, 2, topology.RelProvider) // primary
	g.SetRelation(4, 3, topology.RelProvider) // second provider
	for a, tier := range map[rofl.ASN]int{1: 1, 2: 2, 3: 2, 4: 3} {
		g.SetTier(a, tier)
	}
	in := rofl.NewInternet(g, rofl.NewMetrics(), rofl.DefaultInternetOptions())
	server := rofl.IDFromString("multihomed-server")
	client := rofl.IDFromString("remote-client")
	if _, err := in.Join(server, 4, rofl.Multihomed); err != nil {
		log.Fatal(err)
	}
	if _, err := in.Join(client, 3, rofl.Multihomed); err != nil {
		log.Fatal(err)
	}
	res, _ := in.Route(client, server)
	fmt.Printf("before failure: client → server via ASes %v\n", res.Traversed)
	in.FailASLink(4, 3) // the access link the traffic was using
	res, err := in.Route(client, server)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the 4–3 access link fails: via ASes %v (shifted to the other provider, no rejoin needed)\n", res.Traversed)
}

// strategies compares the four join modes on a generated Internet.
func strategies() {
	gen := rofl.DefaultASGen()
	gen.Tier1, gen.Tier2, gen.Stubs, gen.Hosts = 4, 20, 80, 2000
	g := rofl.GenAS(gen)
	stubs := g.Stubs()
	for _, s := range []rofl.Strategy{rofl.Ephemeral, rofl.SingleHomed, rofl.Multihomed, rofl.Peering} {
		in := rofl.NewInternet(g, rofl.NewMetrics(), rofl.DefaultInternetOptions())
		total, levels := 0, 0
		const joins = 25
		for i := 0; i < joins; i++ {
			id := rofl.IDFromString(fmt.Sprintf("%v-%d", s, i))
			res, err := in.Join(id, stubs[(i*7)%len(stubs)], s)
			if err != nil {
				log.Fatal(err)
			}
			total += res.Msgs
			levels += res.Levels
		}
		fmt.Printf("  %-15v avg %3d msgs/join across %2d ring levels\n", s, total/joins, levels/joins)
	}
}
