package cluster

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rofl/internal/netem"
	"rofl/internal/overlay"
)

// TestScheduleDeterministicAndWellFormed checks the schedule is a pure
// function of its inputs and maintains its invariants: kills target
// live nodes, restarts target dead nodes, and at least half the
// cluster stays alive after every step.
func TestScheduleDeterministicAndWellFormed(t *testing.T) {
	const n, steps = 25, 40
	a := Schedule(7, n, steps)
	b := Schedule(7, n, steps)
	if len(a) != steps {
		t.Fatalf("schedule has %d events, want %d", len(a), steps)
	}
	render := func(evs []Event) string {
		var sb strings.Builder
		for _, ev := range evs {
			sb.WriteString(ev.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	if render(a) != render(b) {
		t.Fatal("same seed produced different schedules")
	}
	if render(a) == render(Schedule(8, n, steps)) {
		t.Fatal("different seeds produced identical schedules")
	}

	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	count := n
	for _, ev := range a {
		switch ev.Kind {
		case KindKill:
			if !live[ev.Node] {
				t.Fatalf("%v targets a dead node", ev)
			}
			live[ev.Node] = false
			count--
		case KindRestart:
			if live[ev.Node] {
				t.Fatalf("%v targets a live node", ev)
			}
			live[ev.Node] = true
			count++
		default:
			t.Fatalf("%v has unknown kind", ev)
		}
		if count < (n+1)/2 {
			t.Fatalf("after %v only %d/%d nodes live", ev, count, n)
		}
	}
}

// churnConfig is the 25-node configuration the reconvergence and
// determinism tests share.
func churnConfig(seed int64) Config {
	return Config{
		N:              25,
		Seed:           seed,
		Stabilize:      25 * time.Millisecond,
		EnableLiveness: true,
		Liveness:       overlay.LivenessParams{MinTx: 10 * time.Millisecond, MinRx: 5 * time.Millisecond, Multiplier: 4},
		JoinTimeout:    15 * time.Second,
	}
}

// runChurn boots a 25-node cluster, applies a seeded churn schedule,
// and requires full reconvergence of the survivors. It returns the
// supervisor's journal.
func runChurn(t *testing.T, seed int64) string {
	t.Helper()
	sup := New(churnConfig(seed))
	t.Cleanup(func() { sup.Close() })
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sup.AwaitConverged(30 * time.Second); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	if err := sup.Run(Schedule(seed, 25, 12), 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sup.AwaitConverged(60 * time.Second); err != nil {
		t.Fatalf("post-churn convergence: %v\njournal:\n%s", err, sup.Journal())
	}
	if err := sup.Close(); err != nil {
		t.Fatal(err)
	}
	return sup.Journal()
}

// TestChurnReconvergesAndJournalIsReproducible is the cluster
// acceptance test: a seeded 25-node churn run reconverges to one
// consistent ring, and two runs with the same seed leave byte-identical
// journals.
func TestChurnReconvergesAndJournalIsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second churn drill")
	}
	first := runChurn(t, 4242)
	second := runChurn(t, 4242)
	if first != second {
		t.Fatalf("same-seed journals differ:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "kill node ") || !strings.Contains(first, "restart node ") {
		t.Fatalf("journal shows no churn:\n%s", first)
	}
}

// TestMetricsEndpointsServeLiveCounters scrapes every live member's
// HTTP endpoint after traffic and checks the overlay counters moved.
func TestMetricsEndpointsServeLiveCounters(t *testing.T) {
	sup := New(Config{N: 5, Seed: 99, Stabilize: 20 * time.Millisecond, JoinTimeout: 10 * time.Second})
	t.Cleanup(func() { sup.Close() })
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sup.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	members := sup.Members()
	for _, src := range members {
		for _, dst := range members {
			if src.Index == dst.Index {
				continue
			}
			if err := src.Node().Send(dst.ID(), []byte("scrape-me")); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every delivery is drained by the supervisor; wait for all of them.
	want := uint64(len(members) - 1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, m := range members {
			if m.Drained() < want {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deliveries never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, m := range members {
		resp, err := http.Get(m.MetricsURL())
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		text := string(body)
		for _, series := range []string{"rofl_overlay_forward_total", "rofl_overlay_delivered_total"} {
			val, ok := scrapeValue(text, series)
			if !ok {
				t.Fatalf("node %d scrape lacks %s:\n%s", m.Index, series, text)
			}
			if val == "0" {
				t.Fatalf("node %d has %s = 0 after traffic", m.Index, series)
			}
		}
	}
}

// scrapeValue extracts a series value from Prometheus text format.
func scrapeValue(text, series string) (string, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return rest, true
		}
	}
	return "", false
}

// TestKillRestartAccounting checks supervisor bookkeeping: dead nodes
// cannot be killed twice, live nodes cannot be restarted, restarts keep
// the identifier, and the eviction counters move when a node dies.
func TestKillRestartAccounting(t *testing.T) {
	sup := New(Config{
		N: 4, Seed: 5, Stabilize: 20 * time.Millisecond,
		EnableLiveness: true,
		JoinTimeout:    10 * time.Second,
	})
	t.Cleanup(func() { sup.Close() })
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sup.AwaitConverged(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := sup.Members()[2]
	idBefore := m.ID()
	if err := sup.Kill(2); err != nil {
		t.Fatal(err)
	}
	if err := sup.Kill(2); err == nil {
		t.Fatal("double kill must fail")
	}
	if m.Alive() || m.Node() != nil || m.MetricsURL() != "" {
		t.Fatal("killed member still exposes a node")
	}
	if err := sup.AwaitConverged(30 * time.Second); err != nil {
		t.Fatalf("survivors did not heal: %v", err)
	}
	if err := sup.Restart(2); err != nil {
		t.Fatal(err)
	}
	if err := sup.Restart(2); err == nil {
		t.Fatal("double restart must fail")
	}
	if m.ID() != idBefore || m.Node().ID() != idBefore {
		t.Fatal("restart changed the member identity")
	}
	if err := sup.AwaitConverged(30 * time.Second); err != nil {
		t.Fatalf("rejoin did not converge: %v", err)
	}
	evictions := uint64(0)
	for _, mem := range sup.Members() {
		evictions += mem.Registry().Counter(`rofl_overlay_eviction_total{kind="successor"}`).Value()
	}
	if evictions == 0 {
		t.Fatal("no eviction was counted for the killed node")
	}
}

// TestFaultWrappedClusterConverges runs a small cluster whose uplinks
// drop 5% of packets through seeded netem faults, checks it still
// converges, and checks the fate counters surface in each member's
// registry.
func TestFaultWrappedClusterConverges(t *testing.T) {
	sup := New(Config{
		N: 5, Seed: 31, Stabilize: 25 * time.Millisecond,
		FaultsEnabled: true,
		Fault:         netem.LinkParams{Loss: 0.05, Latency: time.Millisecond},
		JoinTimeout:   15 * time.Second,
	})
	t.Cleanup(func() { sup.Close() })
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sup.AwaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, m := range sup.Members() {
		if m.UplinkStats().Sent == 0 {
			t.Fatalf("node %d uplink saw no traffic", m.Index)
		}
	}
	// Stabilize traffic keeps flowing; at 5% loss the fate counters must
	// record a drop within a few hundred rounds.
	deadline := time.Now().Add(20 * time.Second)
	for {
		lost := uint64(0)
		for _, m := range sup.Members() {
			lost += m.Registry().Counter(`rofl_netem_packet_total{fate="lost"}`).Value()
		}
		if lost > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("a 5%-loss cluster never counted a lost packet")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
