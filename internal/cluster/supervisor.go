package cluster

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rofl/internal/ident"
	"rofl/internal/netem"
	"rofl/internal/overlay"
	"rofl/internal/telemetry"
)

// Config shapes a supervised cluster.
type Config struct {
	// N is the number of overlay nodes to run.
	N int
	// Seed drives node identities and each node's uplink fault RNG; the
	// same seed reproduces the same cluster layout.
	Seed int64
	// Stabilize is each node's stabilization interval (default 50ms).
	Stabilize time.Duration
	// Liveness enables BFD-style successor probing on every node with
	// the given parameters; zero fields take the overlay defaults.
	// Probing starts only when EnableLiveness is set.
	Liveness overlay.LivenessParams
	// EnableLiveness turns the adaptive failure detector on.
	EnableLiveness bool
	// Fault, when FaultsEnabled, wraps every node's uplink in a
	// netem.Fault with these parameters, seeded from Seed and the node
	// index — seed-reproducible chaos on real UDP sockets.
	Fault         netem.LinkParams
	FaultsEnabled bool
	// JoinTimeout bounds each node's join exchange (default 10s).
	JoinTimeout time.Duration
	// Poll is the convergence-check interval (default 25ms).
	Poll time.Duration
	// Events receives the supervisor's structured event log; nil
	// discards it.
	Events io.Writer
}

func (c Config) withDefaults() Config {
	if c.Stabilize <= 0 {
		c.Stabilize = 50 * time.Millisecond
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 10 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = 25 * time.Millisecond
	}
	return c
}

// Member is one supervised node slot. The slot survives kill/restart
// cycles: the identifier and the telemetry registry are permanent (so
// counters accumulate across incarnations), while the overlay node, its
// socket, and its metrics server are per-incarnation.
type Member struct {
	// Index is the slot's position, stable for the cluster's lifetime.
	Index int

	id    ident.ID
	reg   *telemetry.Registry
	alive atomic.Bool

	mu        sync.Mutex
	node      *overlay.Node
	srv       *telemetry.Server
	drained   atomic.Uint64 // data deliveries consumed by the drainer
	faultSeq  int64         // incarnation counter, salts the fault RNG seed
	faultStat *netem.Fault  // current incarnation's uplink, nil without faults
}

// ID returns the member's permanent overlay identifier.
func (m *Member) ID() ident.ID { return m.id }

// Alive reports whether the member currently runs a node.
func (m *Member) Alive() bool { return m.alive.Load() }

// Registry returns the member's cumulative telemetry registry.
func (m *Member) Registry() *telemetry.Registry { return m.reg }

// Drained returns how many data deliveries the supervisor's drainer
// consumed on the member's behalf, across all incarnations.
func (m *Member) Drained() uint64 { return m.drained.Load() }

// Node returns the current overlay node, or nil while killed.
func (m *Member) Node() *overlay.Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.node
}

// MetricsURL returns the current incarnation's metrics endpoint, or ""
// while killed.
func (m *Member) MetricsURL() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.srv == nil {
		return ""
	}
	return m.srv.URL() + "/metrics"
}

// UplinkStats returns the current incarnation's fault-schedule
// counters; zero when faults are disabled or the member is down.
func (m *Member) UplinkStats() netem.LinkStats {
	m.mu.Lock()
	f := m.faultStat
	m.mu.Unlock()
	if f == nil {
		return netem.LinkStats{}
	}
	return f.Stats()
}

// The supervisor's event catalog: every structured event type it emits
// to the cluster journal (documented in DESIGN.md §9).
//
//rofllint:metrics
const (
	eventNodeStarted      = "node_started"
	eventNodeKilled       = "node_killed"
	eventNodeRestarted    = "node_restarted"
	eventClusterConverged = "cluster_converged"
	eventClusterDrained   = "cluster_drained"
)

// Supervisor launches, observes, churns, and drains a cluster of
// in-process overlay nodes.
type Supervisor struct {
	cfg Config
	log *telemetry.EventLog

	mu      sync.Mutex
	members []*Member
	started bool
	closed  bool
	journal strings.Builder
	wg      sync.WaitGroup
}

// New prepares a supervisor; Start launches the nodes.
func New(cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	s := &Supervisor{cfg: cfg}
	if cfg.Events != nil {
		s.log = telemetry.NewEventLog(cfg.Events, telemetry.LevelInfo)
	}
	s.members = make([]*Member, cfg.N)
	for i := range s.members {
		s.members[i] = &Member{
			Index: i,
			id:    memberID(cfg.Seed, i),
			reg:   telemetry.NewRegistry(),
		}
	}
	return s
}

// memberID derives slot i's permanent identifier from the cluster seed.
func memberID(seed int64, i int) ident.ID {
	return ident.FromString(fmt.Sprintf("cluster-%d/%d", seed, i))
}

// Members returns the member slots (a copy of the slice; slots are
// shared).
func (s *Supervisor) Members() []*Member {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Member(nil), s.members...)
}

// journalf appends one line to the deterministic action journal.
// Caller holds s.mu.
func (s *Supervisor) journalf(format string, args ...any) {
	fmt.Fprintf(&s.journal, format+"\n", args...)
}

// Journal returns the action journal: every launch, kill, and restart
// in order, with live counts — a pure function of the configuration and
// the applied schedule, so two same-seed runs produce byte-identical
// journals.
func (s *Supervisor) Journal() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal.String()
}

// liveCountLocked counts members currently running. Caller holds s.mu.
func (s *Supervisor) liveCountLocked() int {
	live := 0
	for _, m := range s.members {
		if m.Alive() {
			live++
		}
	}
	return live
}

// joinTargetLocked returns the lowest-index live member other than
// skip, or nil. Caller holds s.mu.
func (s *Supervisor) joinTargetLocked(skip int) *Member {
	for _, m := range s.members {
		if m.Index != skip && m.Alive() {
			return m
		}
	}
	return nil
}

// launch builds slot i's next incarnation: socket, optional fault
// wrapper, node, telemetry wiring, metrics server, delivery drainer.
// The node is not yet joined to anything. Caller holds s.mu.
func (s *Supervisor) launchLocked(m *Member) error {
	var tr netem.Transport
	udp, err := netem.ListenUDP("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("cluster: node %d socket: %w", m.Index, err)
	}
	tr = udp
	m.faultSeq++
	var fault *netem.Fault
	if s.cfg.FaultsEnabled {
		// Salt the seed with slot and incarnation so every uplink draws
		// an independent—but reproducible—fault sequence.
		fault = netem.WrapFault(udp, s.cfg.Fault, s.cfg.Seed^int64(m.Index)<<20^m.faultSeq)
		fault.SetInstruments(netem.NewInstruments(m.reg))
		tr = fault
	}
	// One construction call carries the whole per-incarnation shape:
	// transport, an aggressive loopback retry policy, telemetry wiring,
	// and both maintenance loops (which tick harmlessly until the join
	// below gives the node a successor).
	node, err := overlay.New(m.id, overlay.Config{
		Transport:      tr,
		Retry:          overlay.RetryPolicy{Initial: 50 * time.Millisecond, Max: 800 * time.Millisecond, Multiplier: 2},
		Registry:       m.reg,
		Events:         s.log,
		Stabilize:      s.cfg.Stabilize,
		EnableLiveness: s.cfg.EnableLiveness,
		Liveness:       s.cfg.Liveness,
	})
	if err != nil {
		tr.Close()
		return fmt.Errorf("cluster: node %d: %w", m.Index, err)
	}
	srv, err := telemetry.NewServer("127.0.0.1:0", m.reg, func() any { return node.Status() }, func() error {
		if _, _, ok := node.Successor(); !ok {
			return errors.New("not bootstrapped")
		}
		return nil
	})
	if err != nil {
		node.Close()
		return fmt.Errorf("cluster: node %d metrics server: %w", m.Index, err)
	}
	m.mu.Lock()
	m.node = node
	m.srv = srv
	m.faultStat = fault
	m.mu.Unlock()
	m.alive.Store(true)
	// Drain deliveries so slow-consumer drops never mask routing
	// results; the loop ends when Close closes the channel.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for range node.Deliveries() {
			m.drained.Add(1)
		}
	}()
	return nil
}

// Start launches all N nodes and joins them into one ring through slot
// 0. Detectors (stabilize timer, and the liveness prober when enabled)
// start on every node before Start returns.
func (s *Supervisor) Start() error {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return errors.New("cluster: already started or closed")
	}
	s.started = true
	s.mu.Unlock()

	for i := range s.members {
		s.mu.Lock()
		m := s.members[i]
		if err := s.launchLocked(m); err != nil {
			s.mu.Unlock()
			return err
		}
		target := s.joinTargetLocked(m.Index)
		s.journalf("launch node %d (live %d/%d)", m.Index, s.liveCountLocked(), len(s.members))
		s.mu.Unlock()

		node := m.Node()
		if target == nil {
			node.Bootstrap()
		} else if err := node.Join(target.Node().Addr(), s.cfg.JoinTimeout); err != nil {
			return fmt.Errorf("cluster: node %d join: %w", m.Index, err)
		}
		s.log.Info(eventNodeStarted, "node", m.Index, "id", m.id.Short(), "addr", node.Addr())
	}
	return nil
}

// Kill terminates slot i's node abruptly: the socket closes mid-flight
// with no teardown message, exactly like a crashed process. The ring
// must notice through its failure detectors.
func (s *Supervisor) Kill(i int) error {
	s.mu.Lock()
	if i < 0 || i >= len(s.members) {
		s.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", i)
	}
	m := s.members[i]
	if !m.Alive() {
		s.mu.Unlock()
		return fmt.Errorf("cluster: node %d already dead", i)
	}
	m.alive.Store(false)
	m.mu.Lock()
	node, srv := m.node, m.srv
	m.node, m.srv, m.faultStat = nil, nil, nil
	m.mu.Unlock()
	s.journalf("kill node %d (live %d/%d)", i, s.liveCountLocked(), len(s.members))
	s.mu.Unlock()

	node.Close()
	srv.Close()
	s.log.Warn(eventNodeKilled, "node", i, "id", m.id.Short())
	return nil
}

// Restart brings a killed slot back: same identifier, fresh port, fresh
// fault sequence, rejoined through the lowest-index live member.
func (s *Supervisor) Restart(i int) error {
	s.mu.Lock()
	if i < 0 || i >= len(s.members) {
		s.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", i)
	}
	m := s.members[i]
	if m.Alive() {
		s.mu.Unlock()
		return fmt.Errorf("cluster: node %d already live", i)
	}
	if err := s.launchLocked(m); err != nil {
		s.mu.Unlock()
		return err
	}
	target := s.joinTargetLocked(i)
	s.journalf("restart node %d (live %d/%d)", i, s.liveCountLocked(), len(s.members))
	s.mu.Unlock()

	node := m.Node()
	if target == nil {
		node.Bootstrap()
	} else if err := node.Join(target.Node().Addr(), s.cfg.JoinTimeout); err != nil {
		return fmt.Errorf("cluster: node %d rejoin: %w", i, err)
	}
	s.log.Info(eventNodeRestarted, "node", i, "id", m.id.Short(), "addr", node.Addr())
	return nil
}

// Apply executes one schedule event.
func (s *Supervisor) Apply(ev Event) error {
	switch ev.Kind {
	case KindKill:
		return s.Kill(ev.Node)
	case KindRestart:
		return s.Restart(ev.Node)
	default:
		return fmt.Errorf("cluster: unknown event %v", ev)
	}
}

// Run applies a schedule, pausing settle between events so failure
// detection and repair overlap the churn rather than queueing behind
// it.
func (s *Supervisor) Run(events []Event, settle time.Duration) error {
	for _, ev := range events {
		if err := s.Apply(ev); err != nil {
			return err
		}
		if settle > 0 {
			t := time.NewTimer(settle)
			<-t.C
		}
	}
	return nil
}

// Converged reports whether the live members form one consistent ring:
// every live node's successor and predecessor pointers trace the sorted
// identifier order over exactly the live membership.
func (s *Supervisor) Converged() bool {
	live := make([]*overlay.Node, 0, len(s.Members()))
	for _, m := range s.Members() {
		if node := m.Node(); node != nil && m.Alive() {
			live = append(live, node)
		}
	}
	if len(live) == 0 {
		return false
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ID().Less(live[j].ID()) })
	if len(live) == 1 {
		succ, _, ok := live[0].Successor()
		return ok && succ == live[0].ID()
	}
	for i, node := range live {
		succ, _, ok := node.Successor()
		if !ok || succ != live[(i+1)%len(live)].ID() {
			return false
		}
		pred, _, ok := node.Predecessor()
		if !ok || pred != live[(i-1+len(live))%len(live)].ID() {
			return false
		}
	}
	return true
}

// AwaitConverged polls until the live ring is consistent or the timeout
// elapses, counted in poll intervals.
func (s *Supervisor) AwaitConverged(timeout time.Duration) error {
	rounds := int(timeout / s.cfg.Poll)
	if rounds < 1 {
		rounds = 1
	}
	for i := 0; i < rounds; i++ {
		if s.Converged() {
			s.log.Info(eventClusterConverged, "live", s.liveCount())
			return nil
		}
		t := time.NewTimer(s.cfg.Poll)
		<-t.C
	}
	return fmt.Errorf("cluster: %d live nodes not converged after %v", s.liveCount(), timeout)
}

// liveCount counts members currently running.
func (s *Supervisor) liveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveCountLocked()
}

// Close drains the cluster: every live node and metrics server shuts
// down, delivery drainers finish, and the supervisor is spent.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	victims := make([]*Member, 0, len(s.members))
	for _, m := range s.members {
		if m.Alive() {
			m.alive.Store(false)
			victims = append(victims, m)
		}
	}
	s.journalf("drain (live 0/%d)", len(s.members))
	s.mu.Unlock()

	for _, m := range victims {
		m.mu.Lock()
		node, srv := m.node, m.srv
		m.node, m.srv, m.faultStat = nil, nil, nil
		m.mu.Unlock()
		if node != nil {
			node.Close()
		}
		if srv != nil {
			srv.Close()
		}
	}
	s.wg.Wait()
	s.log.Info(eventClusterDrained)
	return nil
}
