// Package cluster runs and observes many in-process overlay nodes: a
// supervisor launches N nodes on auto-allocated local ports, wires each
// one's counters into its own telemetry registry behind an HTTP
// endpoint, and drives seed-reproducible churn — kill and restart
// events drawn from a pure schedule — while a deterministic journal
// records every action for byte-identical replay comparison.
package cluster

import (
	"fmt"
	"math/rand"
)

// EventKind discriminates churn actions.
type EventKind uint8

const (
	// KindKill terminates a live node abruptly (no teardown message —
	// the failure detectors must notice on their own).
	KindKill EventKind = iota + 1
	// KindRestart brings a previously killed node back with the same
	// identifier on a fresh port, rejoining through a live member.
	KindRestart
)

// String names the action.
func (k EventKind) String() string {
	switch k {
	case KindKill:
		return "kill"
	case KindRestart:
		return "restart"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one churn action in a schedule.
type Event struct {
	// Step is the event's position in the schedule.
	Step int
	// Kind is the action.
	Kind EventKind
	// Node is the target's index in the supervisor's member list.
	Node int
}

// String renders the event the way the journal records it.
func (e Event) String() string {
	return fmt.Sprintf("step %d: %s node %d", e.Step, e.Kind, e.Node)
}

// Schedule derives a churn schedule of exactly steps events for an
// n-node cluster from seed. It is a pure function — same inputs, same
// schedule, no clock, no global randomness — and maintains two
// invariants the supervisor relies on: only live nodes are killed, only
// dead nodes are restarted, and at least half the cluster (rounded up)
// stays alive at every step so the surviving ring always has a quorum
// to reconverge around.
func Schedule(seed int64, n, steps int) []Event {
	if n < 2 || steps <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	liveCount := n
	minLive := (n + 1) / 2

	pick := func(want bool) int {
		// Choose uniformly among indices whose liveness matches want,
		// scanning in index order so the draw is order-deterministic.
		count := 0
		for _, l := range live {
			if l == want {
				count++
			}
		}
		k := rng.Intn(count)
		for i, l := range live {
			if l == want {
				if k == 0 {
					return i
				}
				k--
			}
		}
		panic("cluster: schedule bookkeeping out of sync")
	}

	events := make([]Event, 0, steps)
	for step := 0; step < steps; step++ {
		canKill := liveCount > minLive
		canRestart := liveCount < n
		kill := canKill
		if canKill && canRestart {
			kill = rng.Intn(2) == 0
		}
		ev := Event{Step: step}
		if kill {
			ev.Kind = KindKill
			ev.Node = pick(true)
			live[ev.Node] = false
			liveCount--
		} else {
			ev.Kind = KindRestart
			ev.Node = pick(false)
			live[ev.Node] = true
			liveCount++
		}
		events = append(events, ev)
	}
	return events
}
