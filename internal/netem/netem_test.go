package netem

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// collect drains up to want datagrams from e, giving up after timeout.
func collect(t *testing.T, e *Endpoint, want int, timeout time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	deadline := time.After(timeout)
	for len(out) < want {
		got := make(chan []byte, 1)
		go func() {
			if p, _, err := e.Recv(); err == nil {
				got <- p
			} else {
				close(got)
			}
		}()
		select {
		case p, ok := <-got:
			if !ok {
				return out
			}
			out = append(out, p)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestPerfectLinkDeliversInOrder(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, b, 10, 2*time.Second)
	if len(got) != 10 {
		t.Fatalf("delivered %d/10", len(got))
	}
	for i, p := range got {
		if len(p) != 1 || p[0] != byte(i) {
			t.Fatalf("packet %d = %v (out of order on a perfect link)", i, p)
		}
	}
	s := net.Stats("a", "b")
	if s.Sent != 10 || s.Delivered != 10 || s.Lost != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRecvReportsSender(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("alpha")
	b, _ := net.Endpoint("beta")
	if err := a.Send("beta", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	p, from, err := b.Recv()
	if err != nil || string(p) != "hi" || from != "alpha" {
		t.Fatalf("recv = %q from %q err %v", p, from, err)
	}
}

func TestLossIsDeterministicGivenSeed(t *testing.T) {
	run := func() LinkStats {
		net := NewNetwork(42)
		defer net.Close()
		a, _ := net.Endpoint("a")
		if _, err := net.Endpoint("b"); err != nil {
			t.Fatal(err)
		}
		net.SetDefaults(LinkParams{Loss: 0.3, Duplicate: 0.1})
		for i := 0; i < 200; i++ {
			if err := a.Send("b", []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		// Zero-latency deliveries ride timers; give them a moment.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			s := net.Stats("a", "b")
			if s.Delivered+s.InboxDropped == s.Sent-s.Lost+s.Duplicated {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		return net.Stats("a", "b")
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed produced different fates:\n%+v\n%+v", s1, s2)
	}
	if s1.Lost == 0 || s1.Lost == 200 {
		t.Fatalf("loss schedule degenerate: %+v", s1)
	}
	if s1.Duplicated == 0 {
		t.Fatalf("duplication never fired: %+v", s1)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed int64) LinkStats {
		net := NewNetwork(seed)
		defer net.Close()
		a, _ := net.Endpoint("a")
		net.Endpoint("b")
		net.SetDefaults(LinkParams{Loss: 0.5})
		for i := 0; i < 100; i++ {
			a.Send("b", []byte("x"))
		}
		return net.Stats("a", "b")
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical fates (suspicious)")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	net.SetDefaults(LinkParams{Latency: 50 * time.Millisecond})
	start := time.Now()
	a.Send("b", []byte("slow"))
	if _, _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 45*time.Millisecond {
		t.Fatalf("arrived after %v, latency not applied", el)
	}
}

func TestReorderOvertakes(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	// First packet is always reordered (held 50ms); drop reordering
	// before the second so it overtakes.
	net.SetDefaults(LinkParams{Reorder: 1, ReorderDelay: 50 * time.Millisecond})
	a.Send("b", []byte("first"))
	net.SetDefaults(LinkParams{})
	a.Send("b", []byte("second"))
	got := collect(t, b, 2, 2*time.Second)
	if len(got) != 2 || !bytes.Equal(got[0], []byte("second")) {
		t.Fatalf("reordering did not overtake: %q", got)
	}
	if s := net.Stats("a", "b"); s.Reordered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	// 10 KB/s: a 1000-byte packet takes 100ms on the wire; five of them
	// queue FIFO behind each other.
	net.SetDefaults(LinkParams{Bandwidth: 10_000})
	start := time.Now()
	payload := make([]byte, 1000)
	for i := 0; i < 5; i++ {
		a.Send("b", payload)
	}
	got := collect(t, b, 5, 5*time.Second)
	if len(got) != 5 {
		t.Fatalf("delivered %d/5", len(got))
	}
	if el := time.Since(start); el < 400*time.Millisecond {
		t.Fatalf("5×1000B at 10KB/s finished in %v; serialization not applied", el)
	}
}

func TestPartitionSplitsAndHeals(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	c, _ := net.Endpoint("c")

	net.Partition("split", []string{"a"})
	a.Send("b", []byte("blocked"))
	b.Send("a", []byte("blocked"))
	b.Send("c", []byte("same side"))
	if got := collect(t, c, 1, time.Second); len(got) != 1 {
		t.Fatal("same-side traffic must flow during a partition")
	}
	if s := net.Stats("a", "b"); s.PartitionDropped != 1 {
		t.Fatalf("a→b stats = %+v", s)
	}
	if s := net.Stats("b", "a"); s.PartitionDropped != 1 {
		t.Fatalf("b→a stats = %+v", s)
	}

	net.Heal("split")
	a.Send("b", []byte("healed"))
	if got := collect(t, b, 1, time.Second); len(got) != 1 || !bytes.Equal(got[0], []byte("healed")) {
		t.Fatal("traffic must flow after heal")
	}
	// Nothing from the blocked sends leaked through.
	if extra := collect(t, a, 1, 100*time.Millisecond); len(extra) != 0 {
		t.Fatalf("blocked packet delivered after heal: %q", extra)
	}
}

func TestComposedPartitions(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("a")
	net.Endpoint("b")
	net.Partition("p1", []string{"a"})
	net.Partition("p2", []string{"b"})
	a.Send("b", []byte("x"))
	net.Heal("p1")
	a.Send("b", []byte("x"))
	if s := net.Stats("a", "b"); s.PartitionDropped != 2 {
		t.Fatalf("both partitions must block a→b independently: %+v", s)
	}
	net.Heal("p2")
	a.Send("b", []byte("x"))
	waitFor(t, time.Second, func() bool { return net.Stats("a", "b").Delivered == 1 })
}

func TestUnroutedAndClosedEndpoints(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	a.Send("nobody", []byte("x"))
	if s := net.Stats("a", "nobody"); s.Unrouted != 1 {
		t.Fatalf("stats = %+v", s)
	}
	b.Close()
	a.Send("b", []byte("x"))
	if s := net.Stats("a", "b"); s.Unrouted != 1 {
		t.Fatalf("send to closed endpoint must be unrouted: %+v", s)
	}
	if _, _, err := b.Recv(); err != ErrClosed {
		t.Fatalf("recv on closed endpoint = %v", err)
	}
	if err := b.Send("a", nil); err != ErrClosed {
		t.Fatalf("send on closed endpoint = %v", err)
	}
}

func TestInboxOverflowDropsAndCounts(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	for i := 0; i < inboxDepth+50; i++ {
		a.Send("b", []byte("x"))
	}
	waitFor(t, 2*time.Second, func() bool {
		s := net.Stats("a", "b")
		return s.Delivered+s.InboxDropped == uint64(inboxDepth+50)
	})
	s := net.Stats("a", "b")
	if s.InboxDropped != 50 || b.InboxDrops() != 50 {
		t.Fatalf("expected 50 inbox drops: link=%+v endpoint=%d", s, b.InboxDrops())
	}
}

func TestNetworkCloseUnblocksAndRejects(t *testing.T) {
	net := NewNetwork(1)
	a, _ := net.Endpoint("a")
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.Recv()
	}()
	net.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on network close")
	}
	if err := a.Send("a", nil); err != ErrClosed {
		t.Fatalf("send after close = %v", err)
	}
	if _, err := net.Endpoint("late"); err != ErrClosed {
		t.Fatalf("endpoint after close = %v", err)
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	if _, err := net.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("a"); err == nil {
		t.Fatal("duplicate address must be rejected")
	}
	if _, err := net.Endpoint(""); err == nil {
		t.Fatal("empty address must be rejected")
	}
}

func TestPerLinkOverride(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	net.Endpoint("c")
	net.SetLink("a", "b", LinkParams{Loss: 1})
	for i := 0; i < 5; i++ {
		a.Send("b", []byte("x"))
		a.Send("c", []byte("x"))
	}
	if s := net.Stats("a", "b"); s.Lost != 5 {
		t.Fatalf("override not applied: %+v", s)
	}
	waitFor(t, time.Second, func() bool { return net.Stats("a", "c").Delivered == 5 })
	net.ClearLink("a", "b")
	a.Send("b", []byte("x"))
	waitFor(t, time.Second, func() bool { return net.Stats("a", "b").Delivered == 1 })
	_ = b
}

func TestTotalStatsAggregates(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	a.Send("b", []byte("x"))
	b.Send("a", []byte("x"))
	waitFor(t, time.Second, func() bool { return net.TotalStats().Delivered == 2 })
	if s := net.TotalStats(); s.Sent != 2 {
		t.Fatalf("total = %+v", s)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestManyEndpointsAllPairs(t *testing.T) {
	net := NewNetwork(7)
	defer net.Close()
	const n = 8
	eps := make([]*Endpoint, n)
	for i := range eps {
		e, err := net.Endpoint(fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = e
	}
	for i, src := range eps {
		for j := range eps {
			if i == j {
				continue
			}
			src.Send(fmt.Sprintf("n%d", j), []byte{byte(i), byte(j)})
		}
	}
	for j, dst := range eps {
		got := collect(t, dst, n-1, 2*time.Second)
		if len(got) != n-1 {
			t.Fatalf("endpoint %d received %d/%d", j, len(got), n-1)
		}
	}
}
