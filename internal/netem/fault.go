package netem

import (
	"math/rand"
	"sync"
	"time"
)

// Fault wraps any Transport and applies a LinkParams fault schedule to
// every outbound packet, with decisions drawn from a seeded RNG. It is
// how a live UDP node (cmd/roflnode -loss/-latency/-seed) demos the
// protocol's loss tolerance reproducibly: the same seed yields the same
// drop/duplicate/delay sequence for the same sequence of sends.
//
// Unlike Network, Fault models a single shared egress (one RNG, one
// bandwidth clock) rather than per-destination links — the view a host
// has of its own uplink.
type Fault struct {
	inner Transport

	mu        sync.Mutex
	rng       *rand.Rand
	params    LinkParams
	stats     LinkStats
	ins       *Instruments
	busyUntil time.Time
	timers    map[*time.Timer]struct{}
	closed    bool
}

// WrapFault applies params to inner's outbound traffic using a RNG
// seeded with seed.
func WrapFault(inner Transport, params LinkParams, seed int64) *Fault {
	return &Fault{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seed)),
		params: params,
		timers: make(map[*time.Timer]struct{}),
	}
}

// SetInstruments mirrors subsequent per-send fate counts into ins (nil
// detaches). The counters accumulate the same deltas as Stats.
func (f *Fault) SetInstruments(ins *Instruments) {
	f.mu.Lock()
	f.ins = ins
	f.mu.Unlock()
}

// SetParams replaces the fault schedule for subsequent sends.
func (f *Fault) SetParams(p LinkParams) {
	f.mu.Lock()
	f.params = p
	f.mu.Unlock()
}

// Stats returns a snapshot of the outbound counters.
func (f *Fault) Stats() LinkStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Send applies the fault schedule, then forwards surviving copies to the
// inner transport (after their scheduled delay, off the caller's
// goroutine when delayed).
func (f *Fault) Send(addr string, p []byte) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	//rofllint:ignore determinism wall clock is only the delivery base time; every fate draw comes from f.rng
	delays, stats := plan(f.rng, f.params, len(p), time.Now(), &f.busyUntil)
	stats.Delivered = uint64(len(delays)) // no inbox on the far side to drop at
	f.stats.add(stats)
	f.ins.add(stats)
	var buf []byte
	if len(delays) > 0 {
		buf = append([]byte(nil), p...)
	}
	for _, delay := range delays {
		if delay <= 0 {
			f.mu.Unlock()
			err := f.inner.Send(addr, buf)
			f.mu.Lock()
			if err != nil {
				f.mu.Unlock()
				return err
			}
			continue
		}
		var t *time.Timer
		t = time.AfterFunc(delay, func() {
			f.mu.Lock()
			delete(f.timers, t)
			closed := f.closed
			f.mu.Unlock()
			if !closed {
				_ = f.inner.Send(addr, buf)
			}
		})
		f.timers[t] = struct{}{}
	}
	f.mu.Unlock()
	return nil
}

// Recv passes through to the inner transport.
func (f *Fault) Recv() ([]byte, string, error) { return f.inner.Recv() }

// RecvInto implements BufferedTransport when the inner transport does,
// falling back to Recv plus a copy otherwise (faults apply to outbound
// traffic only, so receives pass through either way).
func (f *Fault) RecvInto(buf []byte) (int, string, error) {
	if bt, ok := f.inner.(BufferedTransport); ok {
		return bt.RecvInto(buf)
	}
	p, from, err := f.inner.Recv()
	if err != nil {
		return 0, "", err
	}
	return copy(buf, p), from, nil
}

// LocalAddr passes through to the inner transport.
func (f *Fault) LocalAddr() string { return f.inner.LocalAddr() }

// Close cancels pending delayed sends and closes the inner transport.
func (f *Fault) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	for t := range f.timers {
		t.Stop()
	}
	f.timers = make(map[*time.Timer]struct{})
	f.mu.Unlock()
	return f.inner.Close()
}
