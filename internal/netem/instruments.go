package netem

import "rofl/internal/telemetry"

// Instruments mirrors LinkStats into a telemetry registry: one counter
// per packet fate, resolved once so the send path pays a handful of
// atomic adds and no map lookups. All handles are nil-safe, and a nil
// *Instruments drops every update.
type Instruments struct {
	Sent             *telemetry.Counter
	Delivered        *telemetry.Counter
	Lost             *telemetry.Counter
	Duplicated       *telemetry.Counter
	Reordered        *telemetry.Counter
	PartitionDropped *telemetry.Counter
	Unrouted         *telemetry.Counter
	InboxDropped     *telemetry.Counter
}

// The fabric's metric catalog: the fate counter series registered by
// NewInstruments. A single family split by the fate label, matching the
// LinkStats fields (documented in DESIGN.md §9).
//
//rofllint:metrics
const (
	metricFateSent       = `rofl_netem_packet_total{fate="sent"}`
	metricFateDelivered  = `rofl_netem_packet_total{fate="delivered"}`
	metricFateLost       = `rofl_netem_packet_total{fate="lost"}`
	metricFateDuplicated = `rofl_netem_packet_total{fate="duplicated"}`
	metricFateReordered  = `rofl_netem_packet_total{fate="reordered"}`
	metricFatePartition  = `rofl_netem_packet_total{fate="partition_dropped"}`
	metricFateUnrouted   = `rofl_netem_packet_total{fate="unrouted"}`
	metricFateInboxDrop  = `rofl_netem_packet_total{fate="inbox_dropped"}`
)

// NewInstruments resolves the fate counters in reg.
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		Sent:             reg.Counter(metricFateSent),
		Delivered:        reg.Counter(metricFateDelivered),
		Lost:             reg.Counter(metricFateLost),
		Duplicated:       reg.Counter(metricFateDuplicated),
		Reordered:        reg.Counter(metricFateReordered),
		PartitionDropped: reg.Counter(metricFatePartition),
		Unrouted:         reg.Counter(metricFateUnrouted),
		InboxDropped:     reg.Counter(metricFateInboxDrop),
	}
}

// add publishes one batch of fate deltas.
func (ins *Instruments) add(st LinkStats) {
	if ins == nil {
		return
	}
	ins.Sent.Add(st.Sent)
	ins.Delivered.Add(st.Delivered)
	ins.Lost.Add(st.Lost)
	ins.Duplicated.Add(st.Duplicated)
	ins.Reordered.Add(st.Reordered)
	ins.PartitionDropped.Add(st.PartitionDropped)
	ins.Unrouted.Add(st.Unrouted)
	ins.InboxDropped.Add(st.InboxDropped)
}
