package netem

import (
	"fmt"
	"testing"
	"time"
)

// accounted is the number of packet fates a link has explained; the
// conservation identity is Sent + Duplicated == accounted once the
// fabric has drained.
func accounted(s LinkStats) uint64 {
	return s.Delivered + s.Lost + s.PartitionDropped + s.Unrouted + s.InboxDropped
}

func checkConservation(t *testing.T, label string, s LinkStats) {
	t.Helper()
	if s.Sent+s.Duplicated != accounted(s) {
		t.Errorf("%s: conservation violated: Sent=%d Duplicated=%d but Delivered=%d Lost=%d PartitionDropped=%d Unrouted=%d InboxDropped=%d",
			label, s.Sent, s.Duplicated, s.Delivered, s.Lost, s.PartitionDropped, s.Unrouted, s.InboxDropped)
	}
}

// waitDrained polls until the link's fates all resolve or the deadline
// passes; in-flight packets are the only legal slack in the identity.
func waitDrained(t *testing.T, net *Network, src, dst string, deadline time.Duration) LinkStats {
	t.Helper()
	var s LinkStats
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		s = net.Stats(src, dst)
		if s.Sent+s.Duplicated == accounted(s) {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
	return net.Stats(src, dst)
}

// TestPartitionCountersAccountEveryPacket sends across a named
// partition and verifies that the per-link counters explain the fate of
// every packet: crossing traffic is charged to PartitionDropped packet
// for packet, same-side traffic is unaffected, and healing restores
// delivery without disturbing the partition-era ledger.
func TestPartitionCountersAccountEveryPacket(t *testing.T) {
	net := NewNetwork(7)
	defer net.Close()
	eps := map[string]*Endpoint{}
	for _, addr := range []string{"a1", "a2", "b1"} {
		e, err := net.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		eps[addr] = e
	}

	net.Partition("split", []string{"a1", "a2"})

	const crossing, sameSide = 17, 5
	for i := 0; i < crossing; i++ {
		if err := eps["a1"].Send("b1", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sameSide; i++ {
		if err := eps["a1"].Send("a2", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	cross := waitDrained(t, net, "a1", "b1", 2*time.Second)
	if cross.Sent != crossing {
		t.Fatalf("crossing link: Sent=%d, want %d", cross.Sent, crossing)
	}
	if cross.PartitionDropped != crossing {
		t.Fatalf("crossing link: PartitionDropped=%d, want %d (every crossing packet must be charged)", cross.PartitionDropped, crossing)
	}
	if cross.Delivered != 0 {
		t.Fatalf("crossing link: Delivered=%d across an installed partition", cross.Delivered)
	}
	checkConservation(t, "a1->b1 partitioned", cross)

	if got := collect(t, eps["a2"], sameSide, 2*time.Second); len(got) != sameSide {
		t.Fatalf("same-side delivery: got %d/%d", len(got), sameSide)
	}
	same := waitDrained(t, net, "a1", "a2", 2*time.Second)
	if same.PartitionDropped != 0 {
		t.Fatalf("same-side link: PartitionDropped=%d, want 0", same.PartitionDropped)
	}
	if same.Delivered != sameSide {
		t.Fatalf("same-side link: Delivered=%d, want %d", same.Delivered, sameSide)
	}
	checkConservation(t, "a1->a2 same side", same)

	// Healing restores delivery; the partition-era charges stay put.
	net.Heal("split")
	if err := eps["a1"].Send("b1", []byte("after-heal")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, eps["b1"], 1, 2*time.Second); len(got) != 1 {
		t.Fatal("no delivery after Heal")
	}
	healed := waitDrained(t, net, "a1", "b1", 2*time.Second)
	if healed.PartitionDropped != crossing {
		t.Fatalf("after heal: PartitionDropped=%d, want %d (ledger must not be rewritten)", healed.PartitionDropped, crossing)
	}
	if healed.Delivered != 1 {
		t.Fatalf("after heal: Delivered=%d, want 1", healed.Delivered)
	}
	checkConservation(t, "a1->b1 healed", healed)
}

// TestPartitionCountersUnderLossAndDuplication overlays a lossy,
// duplicating fault schedule on a partitioned fabric: every offered
// packet must still be explained by exactly one fate counter, and
// duplicates must be explained too.
func TestPartitionCountersUnderLossAndDuplication(t *testing.T) {
	net := NewNetwork(11)
	defer net.Close()
	for _, addr := range []string{"a", "b", "c"} {
		if _, err := net.Endpoint(addr); err != nil {
			t.Fatal(err)
		}
	}
	net.SetDefaults(LinkParams{Loss: 0.3, Duplicate: 0.2})
	net.Partition("island", []string{"a"})

	src, err := net.Endpoint("src") // joins outside the island
	if err != nil {
		t.Fatal(err)
	}
	const offered = 200
	for i := 0; i < offered; i++ {
		// Alternate a partitioned destination with a reachable one and an
		// unbound address so all fate counters participate.
		dst := []string{"a", "b", "nowhere"}[i%3]
		if err := src.Send(dst, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, dst := range []string{"a", "b", "nowhere"} {
		s := waitDrained(t, net, "src", dst, 5*time.Second)
		checkConservation(t, fmt.Sprintf("src->%s", dst), s)
	}
	toA := net.Stats("src", "a")
	if toA.PartitionDropped == 0 || toA.Delivered != 0 {
		t.Fatalf("src->a: PartitionDropped=%d Delivered=%d; the island must drop everything", toA.PartitionDropped, toA.Delivered)
	}
	toNowhere := net.Stats("src", "nowhere")
	if toNowhere.Unrouted == 0 {
		t.Fatalf("src->nowhere: Unrouted=%d, want >0", toNowhere.Unrouted)
	}
	total := net.TotalStats()
	checkConservation(t, "total", total)
	if total.Sent != offered {
		t.Fatalf("TotalStats.Sent=%d, want %d", total.Sent, offered)
	}
}
