package netem

import (
	"fmt"
	"net"
)

// UDP is the real-network Transport: a thin wrapper over one UDP socket
// used for both sending and receiving, so the local address peers reply
// to is the listening address.
type UDP struct {
	conn *net.UDPConn
}

// ListenUDP binds a UDP transport ("127.0.0.1:0" picks a free port).
func ListenUDP(bind string) (*UDP, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("netem: resolving %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netem: listening on %q: %w", bind, err)
	}
	return &UDP{conn: conn}, nil
}

// LocalAddr returns the bound host:port.
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// Send transmits one datagram to addr.
func (u *UDP) Send(addr string, p []byte) error {
	udp, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("netem: resolving %q: %w", addr, err)
	}
	if _, err := u.conn.WriteToUDP(p, udp); err != nil {
		return fmt.Errorf("netem: sending to %s: %w", addr, err)
	}
	return nil
}

// Recv blocks for one datagram; it returns ErrClosed once the socket is
// closed.
func (u *UDP) Recv() ([]byte, string, error) {
	buf := make([]byte, 64*1024)
	n, from, err := u.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, "", ErrClosed
	}
	return buf[:n:n], from.String(), nil
}

// RecvInto implements BufferedTransport: the datagram lands in the
// caller's buffer, so a receive loop that reuses one buffer takes no
// per-packet allocation from the socket read.
func (u *UDP) RecvInto(buf []byte) (int, string, error) {
	n, from, err := u.conn.ReadFromUDP(buf)
	if err != nil {
		return 0, "", ErrClosed
	}
	return n, from.String(), nil
}

// Close shuts the socket down, unblocking Recv.
func (u *UDP) Close() error { return u.conn.Close() }
