package netem

import (
	"testing"
	"time"
)

// loopback pairs two UDP transports on localhost for wrapper tests.
func loopback(t *testing.T) (*UDP, *UDP) {
	t.Helper()
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b
}

func TestUDPTransportRoundTrip(t *testing.T) {
	a, b := loopback(t)
	if err := a.Send(b.LocalAddr(), []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	p, from, err := b.Recv()
	if err != nil || string(p) != "over the wire" {
		t.Fatalf("recv = %q err %v", p, err)
	}
	if from != a.LocalAddr() {
		t.Fatalf("from = %s want %s", from, a.LocalAddr())
	}
}

func TestUDPCloseUnblocksRecv(t *testing.T) {
	a, _ := loopback(t)
	done := make(chan error, 1)
	go func() { _, _, err := a.Recv(); done <- err }()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("recv after close = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestFaultLossIsSeeded(t *testing.T) {
	run := func() LinkStats {
		a, b := loopback(t)
		f := WrapFault(a, LinkParams{Loss: 0.4}, 99)
		for i := 0; i < 100; i++ {
			if err := f.Send(b.LocalAddr(), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		return f.Stats()
	}
	s1, s2 := run(), run()
	if s1.Lost != s2.Lost || s1.Lost == 0 || s1.Lost == 100 {
		t.Fatalf("fault schedule not reproducible or degenerate: %+v vs %+v", s1, s2)
	}
	// Survivors actually reach the inner transport's peer.
	if s1.Sent != 100 || s1.Delivered != 100-s1.Lost-0 {
		t.Fatalf("stats = %+v", s1)
	}
}

func TestFaultDelaysOutbound(t *testing.T) {
	a, b := loopback(t)
	f := WrapFault(a, LinkParams{Latency: 50 * time.Millisecond}, 1)
	defer f.Close()
	start := time.Now()
	if err := f.Send(b.LocalAddr(), []byte("late")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 45*time.Millisecond {
		t.Fatalf("arrived after %v; latency not applied", el)
	}
}

func TestFaultPassThroughWhenPerfect(t *testing.T) {
	a, b := loopback(t)
	f := WrapFault(a, LinkParams{}, 1)
	if err := f.Send(b.LocalAddr(), []byte("clean")); err != nil {
		t.Fatal(err)
	}
	if p, _, err := b.Recv(); err != nil || string(p) != "clean" {
		t.Fatalf("recv = %q err %v", p, err)
	}
	if f.LocalAddr() != a.LocalAddr() {
		t.Fatal("LocalAddr must pass through")
	}
}

func TestFaultCloseCancelsPending(t *testing.T) {
	a, b := loopback(t)
	f := WrapFault(a, LinkParams{Latency: 200 * time.Millisecond}, 1)
	f.Send(b.LocalAddr(), []byte("doomed"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if err := f.Send(b.LocalAddr(), []byte("x")); err != ErrClosed {
		t.Fatalf("send after close = %v", err)
	}
	// The delayed packet must not arrive.
	got := make(chan struct{}, 1)
	go func() {
		if _, _, err := b.Recv(); err == nil {
			got <- struct{}{}
		}
	}()
	select {
	case <-got:
		t.Fatal("cancelled packet was delivered")
	case <-time.After(400 * time.Millisecond):
	}
}

func TestFaultSetParams(t *testing.T) {
	a, b := loopback(t)
	f := WrapFault(a, LinkParams{Loss: 1}, 1)
	defer f.Close()
	f.Send(b.LocalAddr(), []byte("x"))
	if s := f.Stats(); s.Lost != 1 {
		t.Fatalf("stats = %+v", s)
	}
	f.SetParams(LinkParams{})
	f.Send(b.LocalAddr(), []byte("y"))
	if p, _, err := b.Recv(); err != nil || string(p) != "y" {
		t.Fatalf("recv = %q err %v", p, err)
	}
}
