// Package netem abstracts the overlay's network and makes it hostile on
// demand. It defines Transport — the minimal datagram surface the
// overlay speaks (send/receive byte slices by address string) — with
// three implementations:
//
//   - UDP: a thin wrapper over a real *net.UDPConn, used by live
//     deployments (cmd/roflnode);
//   - Network/Endpoint: an in-process emulated fabric that injects
//     faults from a seeded RNG — loss, duplication, reordering, latency
//     with jitter, per-link bandwidth, and named partitions that can be
//     split and healed mid-run — with per-link counters for assertions;
//   - Fault: a wrapper applying the same fault model to the outbound
//     side of any Transport, so a real UDP node can demo packet loss
//     reproducibly (roflnode -loss/-latency/-seed).
//
// Fault decisions are drawn from per-link RNGs seeded from the network
// seed and the link's endpoint names, so a given seed plus a given
// per-link send order yields exactly the same drop/duplicate/reorder
// sequence on every run — the property the chaos tests assert against.
// The paper's protocol claims (ring maintenance under churn §3.2,
// partition repair §3.3) are exercised by driving internal/overlay
// through a Network instead of the kernel's loopback.
package netem

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"time"
)

// ErrClosed reports an operation on a closed transport.
var ErrClosed = errors.New("netem: transport closed")

// Transport is the datagram surface an overlay node binds to: fire and
// forget sends, blocking receives. Implementations must make Send and
// Recv safe for concurrent use and must unblock Recv with an error when
// closed.
type Transport interface {
	// Send transmits one datagram to addr. Like UDP, delivery is not
	// guaranteed and no error is reported for an unreachable peer.
	Send(addr string, p []byte) error
	// Recv blocks until a datagram arrives and returns its payload and
	// the sender's address. The returned slice is owned by the caller.
	Recv() (p []byte, from string, err error)
	// LocalAddr returns the address peers should send to.
	LocalAddr() string
	// Close releases the transport and unblocks pending Recv calls.
	Close() error
}

// BufferedTransport is implemented by transports that can receive a
// datagram directly into a caller-provided buffer, sparing the
// per-packet allocation Recv's owned-slice contract forces. Receive
// loops should type-assert for it and fall back to Recv. buf must be
// large enough for the transport's maximum datagram (64 KiB covers
// UDP); like Recv, RecvInto blocks and returns an error once closed.
type BufferedTransport interface {
	RecvInto(buf []byte) (n int, from string, err error)
}

// LinkParams describes the fault schedule of one directed link (or, for
// Fault, of every outbound packet). The zero value is a perfect link.
type LinkParams struct {
	// Loss is the probability in [0,1] that a packet vanishes.
	Loss float64
	// Duplicate is the probability that a packet arrives twice.
	Duplicate float64
	// Reorder is the probability that a packet is held an extra
	// ReorderDelay, letting packets sent after it overtake it.
	Reorder float64
	// ReorderDelay is the extra hold applied to reordered packets; when
	// zero, 4×Latency is used (minimum 2ms).
	ReorderDelay time.Duration
	// Latency is the base one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per packet.
	Jitter time.Duration
	// Bandwidth caps the link in bytes/second (serialization delay,
	// FIFO per link); 0 means unlimited.
	Bandwidth int
}

// reorderDelay resolves the effective extra hold for reordered packets.
func (p LinkParams) reorderDelay() time.Duration {
	if p.ReorderDelay > 0 {
		return p.ReorderDelay
	}
	if d := 4 * p.Latency; d > 2*time.Millisecond {
		return d
	}
	return 2 * time.Millisecond
}

// LinkStats counts what happened to packets offered to a link. All
// counters are cumulative since the link first carried traffic.
type LinkStats struct {
	Sent             uint64 // packets offered by the sender
	Delivered        uint64 // packets placed in the receiver's inbox
	Lost             uint64 // dropped by the loss schedule
	Duplicated       uint64 // extra copies injected
	Reordered        uint64 // packets held back past later ones
	PartitionDropped uint64 // dropped because a named partition separates the ends
	Unrouted         uint64 // dropped because no endpoint owns the address
	InboxDropped     uint64 // dropped because the receiver's inbox was full
}

// add accumulates o into s.
func (s *LinkStats) add(o LinkStats) {
	s.Sent += o.Sent
	s.Delivered += o.Delivered
	s.Lost += o.Lost
	s.Duplicated += o.Duplicated
	s.Reordered += o.Reordered
	s.PartitionDropped += o.PartitionDropped
	s.Unrouted += o.Unrouted
	s.InboxDropped += o.InboxDropped
}

// linkSeed derives a per-link RNG seed from the network seed and the
// directed link's endpoint names, so each link has an independent but
// reproducible fault sequence.
func linkSeed(seed int64, src, dst string) int64 {
	h := fnv.New64a()
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(dst))
	return seed ^ int64(h.Sum64())
}

// plan draws one packet's fate from the link RNG: whether it is lost,
// and otherwise the arrival delay of each copy (one, or two when
// duplicated). busyUntil carries the link's bandwidth clock across
// calls. The draw order is fixed (loss, duplicate, then per-copy jitter
// and reorder) so the decision sequence depends only on the RNG state
// and the sizes sent, never on which parameters happen to be zero.
func plan(rng *rand.Rand, p LinkParams, size int, now time.Time, busyUntil *time.Time) (delays []time.Duration, stats LinkStats) {
	stats.Sent = 1
	if rng.Float64() < p.Loss {
		stats.Lost = 1
		return nil, stats
	}
	copies := 1
	if rng.Float64() < p.Duplicate {
		copies = 2
		stats.Duplicated = 1
	}
	// Serialization: the link transmits FIFO at Bandwidth bytes/sec.
	depart := now
	if p.Bandwidth > 0 {
		clock := now
		if busyUntil != nil && busyUntil.After(clock) {
			clock = *busyUntil
		}
		tx := time.Duration(float64(size) / float64(p.Bandwidth) * float64(time.Second))
		depart = clock.Add(tx)
		if busyUntil != nil {
			*busyUntil = depart
		}
	}
	base := depart.Sub(now) + p.Latency
	for i := 0; i < copies; i++ {
		d := base
		if p.Jitter > 0 {
			d += time.Duration(rng.Float64() * float64(p.Jitter))
		} else {
			rng.Float64() // keep the draw sequence stable
		}
		if rng.Float64() < p.Reorder {
			d += p.reorderDelay()
			stats.Reordered++
		}
		delays = append(delays, d)
	}
	// Delivered is counted when a copy actually lands in an inbox, not
	// here: a scheduled copy can still be dropped on a full inbox.
	return delays, stats
}
