package netem

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Network is an in-process emulated datagram fabric. Endpoints attach by
// name, and every directed pair of endpoints is a link with its own
// fault schedule (LinkParams) and its own RNG derived from the network
// seed — so a fixed seed plus a fixed per-link send order reproduces the
// exact same loss/duplicate/reorder decisions on every run.
//
// Deliveries are sequenced by a single dispatcher goroutine draining a
// (due-time, send-sequence) priority queue: packets scheduled for the
// same instant arrive in send order, so a fault-free link is strictly
// FIFO and reordering happens only when the schedule says so.
//
// All mutating calls (SetDefaults, SetLink, Partition, Heal) take effect
// immediately for packets sent afterwards, which is how chaos tests
// script phases: join under loss, split, heal, assert reconvergence.
type Network struct {
	mu         sync.Mutex
	seed       int64
	defaults   LinkParams
	eps        map[string]*Endpoint
	links      map[linkKey]*link
	partitions map[string]map[string]bool // name → set of addresses on side A
	queue      deliveryHeap
	seq        uint64
	closed     bool

	wake    chan struct{} // nudges the dispatcher after a push
	stopped chan struct{} // closed by Close
	wg      sync.WaitGroup
}

type linkKey struct{ src, dst string }

type link struct {
	rng       *rand.Rand
	override  *LinkParams // nil → network defaults apply
	stats     LinkStats
	busyUntil time.Time // bandwidth serialization clock
}

// delivery is one scheduled arrival.
type delivery struct {
	due  time.Time
	seq  uint64 // tiebreak: FIFO among equal due times
	dst  *Endpoint
	link *link
	d    datagram
}

type deliveryHeap []delivery

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h deliveryHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)    { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() any      { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h deliveryHeap) peek() delivery { return h[0] }

// NewNetwork creates an emulated fabric whose fault decisions derive
// from seed.
func NewNetwork(seed int64) *Network {
	n := &Network{
		seed:       seed,
		eps:        make(map[string]*Endpoint),
		links:      make(map[linkKey]*link),
		partitions: make(map[string]map[string]bool),
		wake:       make(chan struct{}, 1),
		stopped:    make(chan struct{}),
	}
	n.wg.Add(1)
	go n.dispatch()
	return n
}

// dispatch delivers queued packets when they come due, in (due, seq)
// order.
func (n *Network) dispatch() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		if n.queue.Len() == 0 {
			n.mu.Unlock()
			//rofllint:ignore determinism dispatcher wake vs shutdown; packet fates are already drawn from the link seed, only wall-clock delivery jitter varies
			select {
			case <-n.wake:
				continue
			case <-n.stopped:
				return
			}
		}
		//rofllint:ignore determinism delivery runs on the wall clock by design; fates and delays were drawn from the seeded rng at send time
		now := time.Now()
		next := n.queue.peek()
		if next.due.After(now) {
			n.mu.Unlock()
			t := time.NewTimer(next.due.Sub(now))
			//rofllint:ignore determinism timer vs wake vs shutdown; whichever fires first re-checks the seeded queue, no fate depends on the winner
			select {
			case <-t.C:
			case <-n.wake: // an earlier packet may have been scheduled
				t.Stop()
			case <-n.stopped:
				t.Stop()
				return
			}
			continue
		}
		dv := heap.Pop(&n.queue).(delivery)
		select {
		case <-dv.dst.closed:
			dv.link.stats.Unrouted++
		default:
			select {
			case dv.dst.inbox <- dv.d:
				dv.link.stats.Delivered++
			default:
				dv.link.stats.InboxDropped++
				dv.dst.drops.Add(1)
			}
		}
		n.mu.Unlock()
	}
}

// SetDefaults installs the fault schedule used by every link without a
// per-link override. Takes effect immediately on all such links.
func (n *Network) SetDefaults(p LinkParams) {
	n.mu.Lock()
	n.defaults = p
	n.mu.Unlock()
}

// SetLink overrides the fault schedule of the directed link src→dst.
func (n *Network) SetLink(src, dst string, p LinkParams) {
	n.mu.Lock()
	n.linkLocked(src, dst).override = &p
	n.mu.Unlock()
}

// ClearLink removes a per-link override; the link reverts to defaults.
func (n *Network) ClearLink(src, dst string) {
	n.mu.Lock()
	n.linkLocked(src, dst).override = nil
	n.mu.Unlock()
}

// Partition installs a named two-way split: addresses in sideA can only
// reach each other, and everyone else can only reach everyone else.
// Multiple named partitions compose (a packet is dropped if any active
// partition separates its endpoints). Heal removes the split by name.
func (n *Network) Partition(name string, sideA []string) {
	set := make(map[string]bool, len(sideA))
	for _, a := range sideA {
		set[a] = true
	}
	n.mu.Lock()
	n.partitions[name] = set
	n.mu.Unlock()
}

// Heal removes a named partition. Healing an unknown name is a no-op.
func (n *Network) Heal(name string) {
	n.mu.Lock()
	delete(n.partitions, name)
	n.mu.Unlock()
}

// Stats returns a snapshot of the directed link src→dst counters.
func (n *Network) Stats(src, dst string) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[linkKey{src, dst}]; ok {
		return l.stats
	}
	return LinkStats{}
}

// TotalStats aggregates the counters of every link.
func (n *Network) TotalStats() LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out LinkStats
	for _, l := range n.links {
		out.add(l.stats)
	}
	return out
}

// Close tears down the fabric: all endpoints close, pending deliveries
// are cancelled, and subsequent sends fail with ErrClosed.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.queue = nil
	eps := make([]*Endpoint, 0, len(n.eps))
	for _, e := range n.eps {
		//rofllint:ignore determinism teardown closes every endpoint exactly once; close order is unobservable
		eps = append(eps, e)
	}
	n.mu.Unlock()
	close(n.stopped)
	n.wg.Wait()
	for _, e := range eps {
		e.Close()
	}
	return nil
}

// linkLocked returns (creating if needed) the directed link. Caller
// holds n.mu.
func (n *Network) linkLocked(src, dst string) *link {
	k := linkKey{src, dst}
	l, ok := n.links[k]
	if !ok {
		l = &link{rng: rand.New(rand.NewSource(linkSeed(n.seed, src, dst)))}
		n.links[k] = l
	}
	return l
}

// separated reports whether any active partition puts src and dst on
// different sides. Caller holds n.mu.
func (n *Network) separated(src, dst string) bool {
	for _, set := range n.partitions {
		if set[src] != set[dst] {
			return true
		}
	}
	return false
}

// Endpoint attaches a new endpoint at addr. The address is any non-empty
// string; overlay nodes carry it in their ring entries exactly as they
// would a UDP host:port.
func (n *Network) Endpoint(addr string) (*Endpoint, error) {
	if addr == "" {
		return nil, fmt.Errorf("netem: empty endpoint address")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.eps[addr]; dup {
		return nil, fmt.Errorf("netem: address %q already attached", addr)
	}
	e := &Endpoint{
		net:    n,
		addr:   addr,
		inbox:  make(chan datagram, inboxDepth),
		closed: make(chan struct{}),
	}
	n.eps[addr] = e
	return e, nil
}

// inboxDepth bounds each endpoint's receive queue; a full inbox drops
// (and counts) rather than blocking the fabric.
const inboxDepth = 256

type datagram struct {
	payload []byte
	from    string
	// seq is the fabric-wide send sequence number of this delivery
	// (duplicates get distinct numbers). Synchronous drivers use it to
	// replay arrivals in the exact order the dispatcher scheduled them.
	seq uint64
}

// Endpoint is one attachment point on a Network, implementing Transport.
type Endpoint struct {
	net       *Network
	addr      string
	inbox     chan datagram
	closed    chan struct{}
	closeOnce sync.Once
	drops     atomic.Uint64
}

// LocalAddr returns the endpoint's attachment name.
func (e *Endpoint) LocalAddr() string { return e.addr }

// InboxDrops returns how many arrived packets were discarded because
// this endpoint's inbox was full (a stalled consumer).
func (e *Endpoint) InboxDrops() uint64 { return e.drops.Load() }

// Send offers one datagram to the fabric. The fault schedule of the
// directed link decides its fate; like UDP, an unreachable or absent
// destination is not an error.
func (e *Endpoint) Send(addr string, p []byte) error {
	n := e.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	select {
	case <-e.closed:
		n.mu.Unlock()
		return ErrClosed
	default:
	}
	l := n.linkLocked(e.addr, addr)
	if n.separated(e.addr, addr) {
		l.stats.Sent++
		l.stats.PartitionDropped++
		n.mu.Unlock()
		return nil
	}
	dst, ok := n.eps[addr]
	if !ok {
		l.stats.Sent++
		l.stats.Unrouted++
		n.mu.Unlock()
		return nil
	}
	params := n.defaults
	if l.override != nil {
		params = *l.override
	}
	//rofllint:ignore determinism wall clock is only the delivery base time; every fate draw comes from the per-link seeded rng
	now := time.Now()
	delays, stats := plan(l.rng, params, len(p), now, &l.busyUntil)
	l.stats.add(stats)
	if len(delays) > 0 {
		// The sender may reuse p; copy once and share across duplicates.
		buf := append([]byte(nil), p...)
		for _, delay := range delays {
			n.seq++
			heap.Push(&n.queue, delivery{
				due: now.Add(delay), seq: n.seq, dst: dst, link: l,
				d: datagram{payload: buf, from: e.addr, seq: n.seq},
			})
		}
	}
	n.mu.Unlock()
	if len(delays) > 0 {
		select {
		case n.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// Recv blocks until a datagram arrives or the endpoint closes.
func (e *Endpoint) Recv() ([]byte, string, error) {
	//rofllint:ignore determinism arrival vs close is an inherent race of the transport surface; the nested drain keeps delivery lossless either way
	select {
	case d := <-e.inbox:
		return d.payload, d.from, nil
	case <-e.closed:
		// Drain anything already queued before reporting closure, so a
		// consumer never loses packets that beat the close.
		select {
		case d := <-e.inbox:
			return d.payload, d.from, nil
		default:
		}
		return nil, "", ErrClosed
	}
}

// TryRecv returns an already-delivered datagram without blocking, along
// with its fabric-wide send sequence number, or ok=false when the inbox
// is empty. Synchronous drivers (the proto equivalence pump) combine it
// with Network.Idle to process arrivals in deterministic global order
// instead of racing the blocking Recv.
func (e *Endpoint) TryRecv() (payload []byte, from string, seq uint64, ok bool) {
	select {
	case d := <-e.inbox:
		return d.payload, d.from, d.seq, true
	default:
		return nil, "", 0, false
	}
}

// Idle reports whether no scheduled delivery remains in flight: every
// packet the fabric accepted has either reached its destination inbox
// or been dropped. The dispatcher hands a popped delivery to the inbox
// under the same lock hold, so Idle returning true means nothing is
// mid-transfer either.
func (n *Network) Idle() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.queue.Len() == 0
}

// Close detaches the endpoint; subsequent sends to its address count as
// Unrouted, exactly like a crashed UDP host.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		e.net.mu.Lock()
		delete(e.net.eps, e.addr)
		e.net.mu.Unlock()
		close(e.closed)
	})
	return nil
}
