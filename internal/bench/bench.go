// Package bench records the repository's performance trajectory: it
// parses `go test -bench` output into structured results, serializes
// them as a versioned JSON trajectory file (BENCH_<label>.json), emits
// the equivalent benchstat-compatible text, and diffs two trajectories
// with a regression threshold.
//
// The trajectory is the evidence base for every speed claim the
// project makes: a committed BENCH_*.json baseline pins the numbers a
// PR started from, CI regenerates the same benchmarks on every push,
// and Compare turns the pair into an explicit verdict instead of a
// sentence in a commit message. The JSON layout is deliberately flat —
// one record per benchmark with the standard ns/op, B/op, allocs/op
// triple — so Export can reconstruct the canonical Go benchmark text
// format and golang.org/x/perf/cmd/benchstat accepts two exported
// files directly.
package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// FormatVersion is bumped when the trajectory JSON layout changes
// incompatibly; Read rejects files from a different major layout.
const FormatVersion = 1

// Result is one benchmark measurement. Name keeps the full benchmark
// identifier including the GOMAXPROCS suffix (e.g. "BenchmarkMarshal-8")
// so exported text round-trips byte-for-byte into benchstat.
type Result struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the benchmark did not call
	// ReportAllocs (absent is distinct from a measured zero).
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Key identifies a benchmark across trajectories.
func (r Result) Key() string { return r.Pkg + "." + r.Name }

// Host captures the machine a trajectory was recorded on — enough to
// tell whether two files are comparable at all.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	NumCPU    int    `json:"num_cpu"`
}

// Trajectory is one recorded benchmark run.
type Trajectory struct {
	FormatVersion int      `json:"format_version"`
	Label         string   `json:"label"`
	CreatedAt     string   `json:"created_at,omitempty"` // RFC3339
	Host          Host     `json:"host"`
	Benchmarks    []Result `json:"benchmarks"`
}

// sortResults orders benchmarks by (pkg, name) so a trajectory file is
// deterministic for a given set of measurements.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Pkg != rs[j].Pkg {
			return rs[i].Pkg < rs[j].Pkg
		}
		return rs[i].Name < rs[j].Name
	})
}

// --- go test -bench output parsing ----------------------------------------

// Parse consumes `go test -bench` text output (any number of packages)
// and returns the benchmark results plus the goos/goarch/cpu metadata
// lines the test binary printed. Lines that are neither metadata nor
// benchmark results (PASS, ok, test log noise) are skipped.
func Parse(r io.Reader) ([]Result, Host, error) {
	var (
		out  []Result
		host Host
		pkg  string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			host.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			host.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			host.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, host, err
			}
			if ok {
				res.Pkg = pkg
				out = append(out, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, host, fmt.Errorf("bench: reading output: %w", err)
	}
	sortResults(out)
	return out, host, nil
}

// parseBenchLine parses one benchmark result line:
//
//	BenchmarkMarshal-8   12345678   95.2 ns/op   16 B/op   1 allocs/op
//
// ok=false is returned for Benchmark lines that are not results (a
// benchmark name echoed alone by -v, for instance).
func parseBenchLine(line string) (Result, bool, error) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return Result{}, false, nil
	}
	res := Result{Name: f[0], BytesPerOp: -1, AllocsPerOp: -1}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	res.Iterations = iters
	// The remainder is (value, unit) pairs.
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("bench: bad value %q in %q", f[i], line)
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = val
			seenNs = true
		case "B/op":
			res.BytesPerOp = int64(val)
		case "allocs/op":
			res.AllocsPerOp = int64(val)
		case "MB/s":
			res.MBPerSec = val
		}
	}
	if !seenNs {
		return Result{}, false, nil
	}
	return res, true, nil
}

// --- Trajectory files ------------------------------------------------------

// Encode writes t as indented JSON with benchmarks in deterministic
// order.
func Encode(w io.Writer, t *Trajectory) error {
	t.FormatVersion = FormatVersion
	sortResults(t.Benchmarks)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Decode reads a trajectory and validates its format version and label.
func Decode(r io.Reader) (*Trajectory, error) {
	var t Trajectory
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("bench: decoding trajectory: %w", err)
	}
	if t.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("bench: trajectory format v%d, this tool reads v%d", t.FormatVersion, FormatVersion)
	}
	if t.Label == "" {
		return nil, fmt.Errorf("bench: trajectory has no label")
	}
	sortResults(t.Benchmarks)
	return &t, nil
}

// WriteFile writes t to path.
func WriteFile(path string, t *Trajectory) error {
	var buf bytes.Buffer
	if err := Encode(&buf, t); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadFile loads a trajectory from path.
func ReadFile(path string) (*Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return t, nil
}

// --- benchstat export ------------------------------------------------------

// Export renders a trajectory in the canonical Go benchmark text format
// (grouped by package, with goos/goarch/cpu headers), the input
// benchstat and every other x/perf tool accepts.
func Export(w io.Writer, t *Trajectory) error {
	bw := bufio.NewWriter(w)
	lastPkg := ""
	headered := false
	for _, r := range t.Benchmarks {
		if !headered {
			if t.Host.GOOS != "" {
				fmt.Fprintf(bw, "goos: %s\n", t.Host.GOOS)
			}
			if t.Host.GOARCH != "" {
				fmt.Fprintf(bw, "goarch: %s\n", t.Host.GOARCH)
			}
			headered = true
		}
		if r.Pkg != lastPkg {
			if r.Pkg != "" {
				fmt.Fprintf(bw, "pkg: %s\n", r.Pkg)
			}
			if t.Host.CPU != "" {
				fmt.Fprintf(bw, "cpu: %s\n", t.Host.CPU)
			}
			lastPkg = r.Pkg
		}
		fmt.Fprintf(bw, "%s\t%d\t%s ns/op", r.Name, r.Iterations, formatValue(r.NsPerOp))
		if r.MBPerSec > 0 {
			fmt.Fprintf(bw, "\t%s MB/s", formatValue(r.MBPerSec))
		}
		if r.BytesPerOp >= 0 {
			fmt.Fprintf(bw, "\t%d B/op", r.BytesPerOp)
		}
		if r.AllocsPerOp >= 0 {
			fmt.Fprintf(bw, "\t%d allocs/op", r.AllocsPerOp)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// formatValue renders a measurement losslessly: integers without a
// fraction, everything else with the minimal digits that round-trip,
// so Export→Parse is a fixed point.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// --- Comparison ------------------------------------------------------------

// Delta is the change of one benchmark between two trajectories. Ratio
// is new/old ns/op; a Ratio above 1+threshold is a regression.
type Delta struct {
	Pkg, Name      string
	OldNs, NewNs   float64
	Ratio          float64
	OldAllocs      int64
	NewAllocs      int64
	OnlyOld        bool
	OnlyNew        bool
	AllocsRegressed bool
}

// Report is the outcome of comparing two trajectories.
type Report struct {
	OldLabel, NewLabel string
	Threshold          float64
	Deltas             []Delta
}

// Regressions returns the deltas whose ns/op worsened beyond the
// threshold.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if !d.OnlyOld && !d.OnlyNew && d.Ratio > 1+r.Threshold {
			out = append(out, d)
		}
	}
	return out
}

// Improvements returns the deltas whose ns/op improved beyond the
// threshold.
func (r *Report) Improvements() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if !d.OnlyOld && !d.OnlyNew && d.Ratio < 1-r.Threshold {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs two trajectories benchmark by benchmark.
func Compare(old, new *Trajectory, threshold float64) *Report {
	rep := &Report{OldLabel: old.Label, NewLabel: new.Label, Threshold: threshold}
	oldByKey := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		oldByKey[r.Key()] = r
	}
	seen := make(map[string]bool, len(new.Benchmarks))
	for _, nr := range new.Benchmarks {
		seen[nr.Key()] = true
		or, ok := oldByKey[nr.Key()]
		if !ok {
			rep.Deltas = append(rep.Deltas, Delta{Pkg: nr.Pkg, Name: nr.Name, NewNs: nr.NsPerOp, OnlyNew: true})
			continue
		}
		d := Delta{
			Pkg: nr.Pkg, Name: nr.Name,
			OldNs: or.NsPerOp, NewNs: nr.NsPerOp,
			OldAllocs: or.AllocsPerOp, NewAllocs: nr.AllocsPerOp,
		}
		if or.NsPerOp > 0 {
			d.Ratio = nr.NsPerOp / or.NsPerOp
		}
		d.AllocsRegressed = or.AllocsPerOp >= 0 && nr.AllocsPerOp > or.AllocsPerOp
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, or := range old.Benchmarks {
		if !seen[or.Key()] {
			rep.Deltas = append(rep.Deltas, Delta{Pkg: or.Pkg, Name: or.Name, OldNs: or.NsPerOp, OnlyOld: true})
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool {
		if rep.Deltas[i].Pkg != rep.Deltas[j].Pkg {
			return rep.Deltas[i].Pkg < rep.Deltas[j].Pkg
		}
		return rep.Deltas[i].Name < rep.Deltas[j].Name
	})
	return rep
}

// Format renders the report as an aligned table with one verdict per
// benchmark.
func (r *Report) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "benchmark trajectory: %s → %s (threshold ±%.0f%%)\n", r.OldLabel, r.NewLabel, r.Threshold*100)
	fmt.Fprintf(bw, "%-58s %12s %12s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "Δ", "verdict")
	for _, d := range r.Deltas {
		name := shortPkg(d.Pkg) + "." + d.Name
		switch {
		case d.OnlyNew:
			fmt.Fprintf(bw, "%-58s %12s %12.1f %8s  new\n", name, "-", d.NewNs, "-")
		case d.OnlyOld:
			fmt.Fprintf(bw, "%-58s %12.1f %12s %8s  removed\n", name, d.OldNs, "-", "-")
		default:
			verdict := "ok"
			if d.Ratio > 1+r.Threshold {
				verdict = "REGRESSION"
			} else if d.Ratio < 1-r.Threshold {
				verdict = "improved"
			}
			if d.AllocsRegressed {
				verdict += fmt.Sprintf(" (+allocs %d→%d)", d.OldAllocs, d.NewAllocs)
			}
			fmt.Fprintf(bw, "%-58s %12.1f %12.1f %+7.1f%%  %s\n", name, d.OldNs, d.NewNs, (d.Ratio-1)*100, verdict)
		}
	}
	return bw.Flush()
}

// shortPkg trims the module prefix so table rows stay readable.
func shortPkg(pkg string) string {
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		return pkg[i+1:]
	}
	return pkg
}
