package bench

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sampleOutput is verbatim `go test -bench` output across two packages,
// including the noise lines a real run interleaves.
const sampleOutput = `goos: linux
goarch: amd64
pkg: rofl/internal/wire
cpu: AMD EPYC 7B13
BenchmarkMarshal-8   	12581676	        95.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkDecode-8    	 8233341	       145.8 ns/op	      16 B/op	       1 allocs/op
PASS
ok  	rofl/internal/wire	2.513s
pkg: rofl/internal/vring
BenchmarkCacheInsertAtCapacity/cap=1000-8         	 1000000	      1042 ns/op	     151 B/op	       3 allocs/op
BenchmarkThroughput-8	  500000	      2100 ns/op	 476.19 MB/s
PASS
ok  	rofl/internal/vring	3.002s
`

func TestParse(t *testing.T) {
	results, host, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if host.GOOS != "linux" || host.GOARCH != "amd64" || host.CPU != "AMD EPYC 7B13" {
		t.Fatalf("host metadata wrong: %+v", host)
	}
	if len(results) != 4 {
		t.Fatalf("want 4 results, got %d: %+v", len(results), results)
	}
	byKey := map[string]Result{}
	for _, r := range results {
		byKey[r.Key()] = r
	}
	m := byKey["rofl/internal/wire.BenchmarkMarshal-8"]
	if m.Iterations != 12581676 || m.NsPerOp != 95.2 || m.BytesPerOp != 0 || m.AllocsPerOp != 0 {
		t.Fatalf("Marshal parsed wrong: %+v", m)
	}
	d := byKey["rofl/internal/wire.BenchmarkDecode-8"]
	if d.NsPerOp != 145.8 || d.AllocsPerOp != 1 {
		t.Fatalf("Decode parsed wrong: %+v", d)
	}
	c := byKey["rofl/internal/vring.BenchmarkCacheInsertAtCapacity/cap=1000-8"]
	if c.NsPerOp != 1042 {
		t.Fatalf("sub-benchmark parsed wrong: %+v", c)
	}
	tp := byKey["rofl/internal/vring.BenchmarkThroughput-8"]
	if tp.MBPerSec != 476.19 {
		t.Fatalf("MB/s parsed wrong: %+v", tp)
	}
	// No ReportAllocs → absent, not zero.
	if tp.BytesPerOp != -1 || tp.AllocsPerOp != -1 {
		t.Fatalf("absent alloc columns must be -1: %+v", tp)
	}
}

func sampleTrajectory() *Trajectory {
	results, host, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		panic(err)
	}
	host.GoVersion = "go1.24.0"
	host.NumCPU = 8
	return &Trajectory{Label: "test", CreatedAt: "2026-08-07T00:00:00Z", Host: host, Benchmarks: results}
}

// TestJSONRoundTrip is the satellite guarantee: roflbench's JSON output
// round-trips through its own parser without loss.
func TestJSONRoundTrip(t *testing.T) {
	traj := sampleTrajectory()
	var buf bytes.Buffer
	if err := Encode(&buf, traj); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traj, got) {
		t.Fatalf("round trip lost data:\nin:  %+v\nout: %+v", traj, got)
	}
	// And the file layer does the same.
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, traj); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traj, got2) {
		t.Fatal("file round trip lost data")
	}
}

func TestDecodeRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"wrong version": `{"format_version": 99, "label": "x", "benchmarks": []}`,
		"no label":      `{"format_version": 1, "benchmarks": []}`,
		"unknown field": `{"format_version": 1, "label": "x", "surprise": true}`,
		"not json":      `BenchmarkMarshal-8 100 95 ns/op`,
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, in)
		}
	}
}

// TestExportBenchstatFormat checks the exported text against the Go
// benchmark format rules benchstat enforces (proposal #14313): a
// benchmark line is `name<tab-or-spaces>iterations<spaces>value unit
// [value unit ...]` with the name starting in "Benchmark", and
// configuration lines are `key: value`. The export must also re-parse
// through our own reader as a fixed point.
func TestExportBenchstatFormat(t *testing.T) {
	traj := sampleTrajectory()
	var buf bytes.Buffer
	if err := Export(&buf, traj); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatal("export emitted a blank line")
		}
		if strings.HasPrefix(line, "Benchmark") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("benchmark line too short for benchstat: %q", line)
			}
			// iterations must be a positive integer, then (value, unit)
			// pairs — the shape x/perf's benchfmt.Reader requires.
			if strings.ContainsAny(f[1], ".-") {
				t.Fatalf("iterations field %q is not an integer: %q", f[1], line)
			}
			if (len(f)-2)%2 != 0 {
				t.Fatalf("unpaired value/unit fields: %q", line)
			}
			for i := 3; i < len(f); i += 2 {
				if !strings.Contains(f[i], "/") && f[i] != "MB/s" {
					t.Fatalf("field %q is not a unit: %q", f[i], line)
				}
			}
			continue
		}
		if !strings.Contains(line, ": ") {
			t.Fatalf("line is neither a benchmark nor a config line: %q", line)
		}
	}
	// Fixed point: parsing the export reproduces the measurements.
	results, host, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if host.GOOS != traj.Host.GOOS || host.GOARCH != traj.Host.GOARCH || host.CPU != traj.Host.CPU {
		t.Fatalf("export dropped host metadata: %+v", host)
	}
	if !reflect.DeepEqual(results, traj.Benchmarks) {
		t.Fatalf("export is not a parse fixed point:\nin:  %+v\nout: %+v", traj.Benchmarks, results)
	}
}

func trajWith(label string, ns map[string]float64) *Trajectory {
	t := &Trajectory{Label: label}
	for name, v := range ns {
		t.Benchmarks = append(t.Benchmarks, Result{
			Pkg: "rofl/internal/x", Name: name, Iterations: 100,
			NsPerOp: v, BytesPerOp: -1, AllocsPerOp: -1,
		})
	}
	sortResults(t.Benchmarks)
	return t
}

func TestCompareThreshold(t *testing.T) {
	old := trajWith("old", map[string]float64{
		"BenchmarkSame-8": 100, "BenchmarkWorse-8": 100, "BenchmarkBetter-8": 100, "BenchmarkGone-8": 50,
	})
	cur := trajWith("new", map[string]float64{
		"BenchmarkSame-8": 109, "BenchmarkWorse-8": 140, "BenchmarkBetter-8": 60, "BenchmarkFresh-8": 10,
	})
	rep := Compare(old, cur, 0.15)
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkWorse-8" {
		t.Fatalf("want exactly BenchmarkWorse-8 regressed, got %+v", regs)
	}
	imps := rep.Improvements()
	if len(imps) != 1 || imps[0].Name != "BenchmarkBetter-8" {
		t.Fatalf("want exactly BenchmarkBetter-8 improved, got %+v", imps)
	}
	var onlyOld, onlyNew int
	for _, d := range rep.Deltas {
		if d.OnlyOld {
			onlyOld++
		}
		if d.OnlyNew {
			onlyNew++
		}
	}
	if onlyOld != 1 || onlyNew != 1 {
		t.Fatalf("added/removed benchmarks miscounted: %+v", rep.Deltas)
	}
	var buf bytes.Buffer
	if err := rep.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "improved", "new", "removed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareAllocRegression(t *testing.T) {
	old := &Trajectory{Label: "old", Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkX-8", Iterations: 1, NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
	}}
	cur := &Trajectory{Label: "new", Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkX-8", Iterations: 1, NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 2},
	}}
	rep := Compare(old, cur, 0.15)
	if len(rep.Deltas) != 1 || !rep.Deltas[0].AllocsRegressed {
		t.Fatalf("alloc regression not flagged: %+v", rep.Deltas)
	}
}
