package proto

import (
	"rofl/internal/ident"
	"rofl/internal/wire"
)

// Send asks the driver to transmit one packet to one transport
// address. The packet pointer may alias the packet the core was handed
// (transit forwarding reuses the decoded packet after adjusting the
// TTL), so the driver must transmit before decoding the next datagram
// into the same packet — the contract every synchronous read loop
// satisfies for free.
type Send struct {
	Addr string
	Pkt  *wire.Packet
}

// Delivery asks the driver to hand a data payload to the local
// application. Capability and Payload alias the handled packet's
// buffers; a driver that consumes them asynchronously must copy.
type Delivery struct {
	Src        ident.ID
	Capability []byte
	Payload    []byte
}

// JoinResult reports the completion of a join attempt started with
// StartJoin: the reply arrived (Err nil) or was malformed (Err set).
// Timeouts never produce a JoinResult — time belongs to the driver,
// which gives up by calling AbortJoin.
type JoinResult struct {
	ReqID uint64
	Err   error
}

// NoteKind classifies a protocol observation.
type NoteKind uint8

// The note vocabulary: everything the core observes or decides that a
// driver may want to count, log, or journal. Hot-path notes (forward,
// drops, deliver) are emitted per packet; the rest are per control
// event.
const (
	NoteForward NoteKind = iota + 1
	NoteNoRoute
	NoteTTLDrop
	NoteDeliver
	NoteStabRound
	NoteJoinServed
	NoteJoinDone
	NoteSuccEvicted
	NotePredCleared
	NoteLivenessProbe
)

// String names the note kind (stable: the cross-driver equivalence
// journal is built from these strings).
func (k NoteKind) String() string {
	switch k {
	case NoteForward:
		return "forward"
	case NoteNoRoute:
		return "drop-no-route"
	case NoteTTLDrop:
		return "drop-ttl"
	case NoteDeliver:
		return "deliver"
	case NoteStabRound:
		return "stab-round"
	case NoteJoinServed:
		return "join-served"
	case NoteJoinDone:
		return "join-done"
	case NoteSuccEvicted:
		return "succ-evicted"
	case NotePredCleared:
		return "pred-cleared"
	case NoteLivenessProbe:
		return "liveness-probe"
	default:
		return "note"
	}
}

// Eviction reasons carried in Note.Reason, named by the detector that
// reached the verdict.
const (
	ReasonStabilizeTimeout = "stabilize-timeout"
	ReasonStabilizeSilence = "stabilize-silence"
	ReasonLivenessTimeout  = "liveness-timeout"
)

// Note is one protocol observation: the kind, the peer it concerns
// (zero when none), and a constant reason string for evictions.
type Note struct {
	Kind   NoteKind
	Peer   ident.ID
	Addr   string
	Reason string
}

// Actions accumulates everything one core transition asks of its
// driver. The driver executes the actions in slice order after the
// transition returns, then calls Reset; the slices keep their capacity,
// so a reused Actions costs the steady-state hot path no allocations.
type Actions struct {
	Sends    []Send
	Delivers []Delivery
	Joins    []JoinResult
	Notes    []Note
}

// Reset truncates every action list, keeping capacity for reuse.
func (a *Actions) Reset() {
	a.Sends = a.Sends[:0]
	a.Delivers = a.Delivers[:0]
	a.Joins = a.Joins[:0]
	a.Notes = a.Notes[:0]
}

// send queues one transmit action.
func (a *Actions) send(addr string, pkt *wire.Packet) {
	a.Sends = append(a.Sends, Send{Addr: addr, Pkt: pkt})
}

// note records one observation.
func (a *Actions) note(k NoteKind, peer ident.ID, addr, reason string) {
	a.Notes = append(a.Notes, Note{Kind: k, Peer: peer, Addr: addr, Reason: reason})
}
