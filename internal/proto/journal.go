package proto

import (
	"fmt"
	"strings"

	"rofl/internal/ident"
)

// Journal renders a core's note stream as text, one line per note. The
// cross-driver equivalence test runs the same seeded schedule through
// the sim driver and the netem driver and byte-compares the two
// journals — so lines are built only from protocol-determined fields
// (note kind, peer ID, reason) plus caller-supplied step markers, never
// from transport addresses, wall-clock time, or anything else a driver
// could render differently.
type Journal struct {
	b strings.Builder
}

// Markf appends a caller-formatted marker line — step boundaries, churn
// events — so the two journals line up structurally, not just as a
// multiset of notes.
func (j *Journal) Markf(format string, args ...any) {
	fmt.Fprintf(&j.b, format, args...)
	j.b.WriteByte('\n')
}

// Record appends every note in a, in order.
func (j *Journal) Record(a *Actions) {
	for _, n := range a.Notes {
		j.b.WriteString(n.Kind.String())
		if n.Peer != (ident.ID{}) {
			j.b.WriteByte(' ')
			j.b.WriteString(n.Peer.Short())
		}
		if n.Reason != "" {
			j.b.WriteByte(' ')
			j.b.WriteString(n.Reason)
		}
		j.b.WriteByte('\n')
	}
}

// String returns the journal text accumulated so far.
func (j *Journal) String() string { return j.b.String() }
