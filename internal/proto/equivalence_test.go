package proto_test

// Cross-driver equivalence: the same churn schedule, fed once through
// the sim driver (vring.ProtoRing, virtual clock) and once through an
// in-process netem fabric (real goroutine dispatcher, zero-fault
// links), must produce byte-identical protocol event journals. This is
// the contract that makes internal/proto a real extraction: the state
// machine's behavior is a pure function of its event sequence, and both
// drivers deliver the same event sequence for the same schedule.
//
// The netem side is synchronous-pumped: maintenance ticks are fed in
// index order (as the sim does), then arrivals are drained in waves —
// wait for the fabric to go idle, collect every inbox, replay in
// fabric send-sequence order. With zero-fault zero-latency links the
// dispatcher's (due, seq) order equals global send order, which equals
// the sim engine's FIFO schedule order, so the waves line up exactly.

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"rofl/internal/ident"
	"rofl/internal/netem"
	"rofl/internal/proto"
	"rofl/internal/sim"
	"rofl/internal/vring"
	"rofl/internal/wire"
)

// eqDriver is the surface the shared schedule drives. Both
// implementations must emit identical journal marks for identical
// calls.
type eqDriver interface {
	addNode(id ident.ID, addr string)
	bootstrap(i int)
	join(i, via int)
	tickStabilize()
	tickLiveness()
	send(i int, dst ident.ID, payload []byte)
	kill(i int)
	restart(i, via int)
	journal() string
}

const eqNodes = 5

func eqID(i int) ident.ID     { return ident.FromString(fmt.Sprintf("eq-node-%d", i)) }
func eqAddr(i int) string     { return fmt.Sprintf("n%03d", i) }
func eqPayload(s string) []byte { return []byte(s) }

// runEqSchedule is the one churn schedule both drivers replay: build a
// five-node ring, converge it, exchange data, crash a node, let both
// the stabilize-miss and BFD eviction paths fire, quarantine-age the
// corpse, then restart it and reconverge.
func runEqSchedule(d eqDriver) {
	for i := 0; i < eqNodes; i++ {
		d.addNode(eqID(i), eqAddr(i))
	}
	d.bootstrap(0)
	d.join(1, 0)
	d.join(2, 0)
	d.join(3, 1)
	d.join(4, 2)
	for r := 0; r < 6; r++ {
		d.tickStabilize()
	}
	for r := 0; r < 2; r++ {
		d.tickLiveness()
	}
	d.send(0, eqID(3), eqPayload("hello"))
	d.send(3, eqID(1), eqPayload("reply"))

	d.kill(4)
	for r := 0; r < 6; r++ {
		d.tickStabilize()
	}
	for r := 0; r < 4; r++ {
		d.tickLiveness()
	}
	d.send(0, eqID(4), eqPayload("void")) // toward the corpse: dropped or rerouted, identically

	d.restart(4, 1)
	for r := 0; r < 4; r++ {
		d.tickStabilize()
	}
	d.send(1, eqID(4), eqPayload("back"))
}

// --- sim side -------------------------------------------------------

type simDriver struct{ ring *vring.ProtoRing }

func newSimDriver() *simDriver {
	return &simDriver{ring: vring.NewProtoRing(sim.NewEngine(1), 1, nil)}
}

// The sim driver ignores the schedule's transport address: its fabric
// addresses derive from intern handles (proto.HandleAddr). Journals
// never contain addresses, so equivalence is unaffected.
func (d *simDriver) addNode(id ident.ID, addr string) { d.ring.AddNode(id) }
func (d *simDriver) bootstrap(i int)                  { d.ring.Bootstrap(i) }
func (d *simDriver) join(i, via int)                  { d.ring.Join(i, via) }
func (d *simDriver) tickStabilize()                   { d.ring.TickStabilize() }
func (d *simDriver) tickLiveness()                    { d.ring.TickLiveness() }
func (d *simDriver) send(i int, dst ident.ID, p []byte) { d.ring.Send(i, dst, p) }
func (d *simDriver) kill(i int)                       { d.ring.Kill(i) }
func (d *simDriver) restart(i, via int)               { d.ring.Restart(i, via) }
func (d *simDriver) journal() string                  { return d.ring.Journal() }

// --- netem side -----------------------------------------------------

type netemNode struct {
	index int
	id    ident.ID
	addr  string
	ep    *netem.Endpoint
	core  *proto.Core // nil while killed
}

type netemDriver struct {
	t    *testing.T
	net  *netem.Network
	jour proto.Journal
	node []*netemNode
	acts proto.Actions
}

func newNetemDriver(t *testing.T) *netemDriver {
	t.Helper()
	d := &netemDriver{t: t, net: netem.NewNetwork(1)}
	t.Cleanup(func() { d.net.Close() })
	return d
}

func (d *netemDriver) addNode(id ident.ID, addr string) {
	ep, err := d.net.Endpoint(addr)
	if err != nil {
		d.t.Fatalf("endpoint %s: %v", addr, err)
	}
	d.node = append(d.node, &netemNode{
		index: len(d.node),
		id:    id,
		addr:  addr,
		ep:    ep,
		core:  proto.New(proto.Config{ID: id, Addr: addr}),
	})
}

func (d *netemDriver) bootstrap(i int) {
	d.jour.Markf("bootstrap %d", i)
	d.node[i].core.Bootstrap()
}

func (d *netemDriver) join(i, via int) {
	n := d.node[i]
	d.jour.Markf("join %d via %d", i, via)
	n.core.StartJoin(n.core.NextReqID(), d.node[via].addr, &d.acts)
	d.dispatch(n)
	d.pump()
}

func (d *netemDriver) tickStabilize() {
	for _, n := range d.node {
		if n.core == nil {
			continue
		}
		d.jour.Markf("tick %d", n.index)
		n.core.TickStabilize(&d.acts)
		d.dispatch(n)
	}
	d.pump()
}

func (d *netemDriver) tickLiveness() {
	for _, n := range d.node {
		if n.core == nil {
			continue
		}
		d.jour.Markf("bfd %d", n.index)
		n.core.TickLiveness(&d.acts)
		d.dispatch(n)
	}
	d.pump()
}

func (d *netemDriver) send(i int, dst ident.ID, p []byte) {
	n := d.node[i]
	d.jour.Markf("send %d", n.index)
	n.core.Originate(dst, p, nil, &d.acts)
	d.dispatch(n)
	d.pump()
}

// kill closes the node's socket and discards its core. The schedule
// only kills at quiescence, so no packet is mid-flight toward it —
// matching the sim driver, where in-flight packets to a dead slot are
// dropped on arrival.
func (d *netemDriver) kill(i int) {
	n := d.node[i]
	d.jour.Markf("kill %d", i)
	n.ep.Close()
	n.ep = nil
	n.core = nil
}

func (d *netemDriver) restart(i, via int) {
	n := d.node[i]
	d.jour.Markf("restart %d", i)
	ep, err := d.net.Endpoint(n.addr) // Close freed the address
	if err != nil {
		d.t.Fatalf("re-endpoint %s: %v", n.addr, err)
	}
	n.ep = ep
	n.core = proto.New(proto.Config{ID: n.id, Addr: n.addr})
	d.join(i, via)
}

func (d *netemDriver) journal() string { return d.jour.String() }

// dispatch records one transition's notes and pushes its sends onto the
// fabric in emission order.
func (d *netemDriver) dispatch(n *netemNode) {
	d.jour.Record(&d.acts)
	for i := range d.acts.Sends {
		snd := d.acts.Sends[i]
		buf, err := snd.Pkt.Marshal()
		if err != nil {
			continue
		}
		if err := n.ep.Send(snd.Addr, buf); err != nil {
			d.t.Fatalf("send %s→%s: %v", n.addr, snd.Addr, err)
		}
	}
	d.acts.Reset()
}

// staged is one arrived datagram awaiting replay.
type staged struct {
	node *netemNode
	from string
	seq  uint64
	buf  []byte
}

// pump drives the fabric to quiescence in waves: wait until the
// dispatcher queue drains (every scheduled delivery is in an inbox),
// collect all inboxes, replay arrivals in fabric send-sequence order,
// and repeat until a wave comes up empty. Handling a wave produces the
// next wave's sends; nothing is collected mid-handling, so waves never
// interleave.
func (d *netemDriver) pump() {
	for {
		d.waitIdle()
		var wave []staged
		for _, n := range d.node {
			if n.ep == nil {
				continue
			}
			for {
				buf, from, seq, ok := n.ep.TryRecv()
				if !ok {
					break
				}
				wave = append(wave, staged{node: n, from: from, seq: seq, buf: buf})
			}
		}
		if len(wave) == 0 {
			return
		}
		sort.Slice(wave, func(i, j int) bool { return wave[i].seq < wave[j].seq })
		for _, st := range wave {
			if st.node.core == nil {
				continue
			}
			var pkt wire.Packet
			if err := pkt.DecodeFromBytes(st.buf); err != nil {
				continue
			}
			st.node.core.HandlePacket(&pkt, st.from, &d.acts)
			d.dispatch(st.node)
		}
	}
}

// waitIdle spins until the dispatcher queue is empty. With zero-latency
// links every pending delivery comes due immediately, so this converges
// in microseconds; the deadline only guards against a wedged fabric.
func (d *netemDriver) waitIdle() {
	deadline := time.Now().Add(5 * time.Second)
	for !d.net.Idle() {
		if time.Now().After(deadline) {
			d.t.Fatal("netem fabric never went idle")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// --- the test -------------------------------------------------------

func TestCrossDriverJournalEquivalence(t *testing.T) {
	simD := newSimDriver()
	runEqSchedule(simD)

	netD := newNetemDriver(t)
	runEqSchedule(netD)

	simJ, netJ := simD.journal(), netD.journal()
	if simJ != netJ {
		t.Fatalf("journals diverge:\n%s", journalDiff(simJ, netJ))
	}
	if lines := strings.Count(simJ, "\n"); lines < 50 {
		t.Fatalf("journal suspiciously short (%d lines):\n%s", lines, simJ)
	}
	// The schedule must actually exercise the failure machinery: the
	// kill has to surface as at least one eviction before the restart.
	if !strings.Contains(simJ, "succ-evicted") {
		t.Fatalf("schedule never evicted the killed node:\n%s", simJ)
	}
	// And both drivers must agree the restarted node is back: slot 4's
	// core rejoined, so some live core lists it as a successor again.
	if !simD.ring.Alive(4) {
		t.Fatal("sim: node 4 not alive after restart")
	}
}

// TestSimDriverDeterminism re-runs the schedule on a fresh sim driver
// and demands the exact same journal: the core has no hidden clock or
// global RNG left.
func TestSimDriverDeterminism(t *testing.T) {
	a := newSimDriver()
	runEqSchedule(a)
	b := newSimDriver()
	runEqSchedule(b)
	if a.journal() != b.journal() {
		t.Fatalf("sim journal not reproducible:\n%s", journalDiff(a.journal(), b.journal()))
	}
}

// journalDiff renders the first divergent line with context, far more
// readable than two multi-hundred-line dumps.
func journalDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			lo := i - 3
			if lo < 0 {
				lo = 0
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "first divergence at line %d\n", i+1)
			for j := lo; j <= i; j++ {
				fmt.Fprintf(&sb, "  sim  %4d: %s\n", j+1, al[j])
			}
			fmt.Fprintf(&sb, "  netem%4d: %s\n", i+1, bl[i])
			return sb.String()
		}
	}
	return fmt.Sprintf("length mismatch: sim %d lines, netem %d lines", len(al), len(bl))
}
