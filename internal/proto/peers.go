package proto

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"rofl/internal/ident"
)

// Peer pairs a flat label with the transport address hosting it — the
// one piece of location the protocol ever handles, and only as an
// opaque string the driver knows how to dial.
type Peer struct {
	ID   ident.ID
	Addr string
}

// EncodePeers serializes pointer entries into a packet payload:
// count(2) then per entry id(16) addrLen(2) addr. It is the payload
// codec of every ring-maintenance message (join, stabilize, notify).
func EncodePeers(es []Peer) []byte {
	buf := binary.BigEndian.AppendUint16(nil, uint16(len(es)))
	for _, e := range es {
		buf = append(buf, e.ID[:]...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Addr)))
		buf = append(buf, e.Addr...)
	}
	return buf
}

// DecodePeers parses an EncodePeers payload.
func DecodePeers(b []byte) ([]Peer, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("proto: short entry list")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	out := make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < ident.Size+2 {
			return nil, fmt.Errorf("proto: truncated entry %d", i)
		}
		var e Peer
		copy(e.ID[:], b[:ident.Size])
		b = b[ident.Size:]
		alen := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < alen {
			return nil, fmt.Errorf("proto: truncated address %d", i)
		}
		e.Addr = string(b[:alen])
		b = b[alen:]
		out = append(out, e)
	}
	return out, nil
}

func containsID(es []Peer, id ident.ID) bool {
	for _, e := range es {
		if e.ID == id {
			return true
		}
	}
	return false
}

// peerSet is the core's memory of every peer it has heard of, indexed
// two ways: a map for O(1) address lookup and a sorted ID slice for
// O(log n) successor/closest-predecessor queries and for seeded-RNG
// sampling over a stable order. Map iteration order is never used — Go
// randomizes it per run *and* biases it, so gossip fanout, probe
// choice, and eviction all draw from the core's own RNG over the
// sorted slice instead, making every sampling decision a pure function
// of the core's seed and learn history.
//
// All methods assume the caller serializes access (the core is not
// goroutine-safe by design; the driver owns the lock).
type peerSet struct {
	byID map[ident.ID]Peer
	ids  []ident.ID // sorted ascending (linear order; used only for storage, never routing)
}

func newPeerSet() *peerSet {
	return &peerSet{byID: make(map[ident.ID]Peer)}
}

func (s *peerSet) len() int { return len(s.ids) }

func (s *peerSet) contains(id ident.ID) bool {
	_, ok := s.byID[id]
	return ok
}

func (s *peerSet) get(id ident.ID) (Peer, bool) {
	e, ok := s.byID[id]
	return e, ok
}

// at returns the i-th peer in ascending ID order.
func (s *peerSet) at(i int) Peer { return s.byID[s.ids[i]] }

// search returns the position of id in the sorted slice (or where it
// would be inserted).
func (s *peerSet) search(id ident.ID) int {
	return sort.Search(len(s.ids), func(k int) bool { return !s.ids[k].Less(id) })
}

// insert adds a peer or refreshes the address of a known one.
func (s *peerSet) insert(e Peer) {
	if _, ok := s.byID[e.ID]; ok {
		s.byID[e.ID] = e
		return
	}
	i := s.search(e.ID)
	s.ids = append(s.ids, ident.ID{})
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = e.ID
	s.byID[e.ID] = e
}

func (s *peerSet) remove(id ident.ID) {
	if _, ok := s.byID[id]; !ok {
		return
	}
	delete(s.byID, id)
	i := s.search(id)
	s.ids = append(s.ids[:i], s.ids[i+1:]...)
}

// sampleInto appends up to k distinct random peers to out, drawn from
// rng over the sorted slice; peers already in out (by ID) and peers
// rejected by skip are not chosen. With the set no larger than k the
// whole set is appended in sorted order.
func (s *peerSet) sampleInto(out []Peer, k int, rng *rand.Rand, skip func(ident.ID) bool) []Peer {
	m := len(s.ids)
	if m == 0 || k <= 0 {
		return out
	}
	if m <= k {
		for _, id := range s.ids {
			if (skip == nil || !skip(id)) && !containsID(out, id) {
				out = append(out, s.byID[id])
			}
		}
		return out
	}
	// Random draws with a bounded retry budget: duplicates and skipped
	// IDs cost one attempt. The budget makes the loop total while
	// keeping the common case (k << m) two or three draws.
	want := len(out) + k
	for tries := 0; len(out) < want && tries < 8*k; tries++ {
		id := s.ids[rng.Intn(m)]
		if (skip != nil && skip(id)) || containsID(out, id) {
			continue
		}
		out = append(out, s.byID[id])
	}
	return out
}

// pick returns a random peer accepted by skip, scanning clockwise from
// a seeded-random start so a contiguous run of skipped IDs cannot
// starve anyone.
func (s *peerSet) pick(rng *rand.Rand, skip func(ident.ID) bool) (Peer, bool) {
	m := len(s.ids)
	if m == 0 {
		return Peer{}, false
	}
	start := rng.Intn(m)
	for i := 0; i < m; i++ {
		id := s.ids[(start+i)%m]
		if skip != nil && skip(id) {
			continue
		}
		return s.byID[id], true
	}
	return Peer{}, false
}

// bestProgress returns the remembered peer closest to dst that makes
// legal greedy progress from cur (candidate ∈ (cur, dst], Algorithm 2),
// skipping exclude. The sorted slice turns this into one O(log n)
// binary search — the largest ID at or before dst in circular order —
// followed by at most a short counter-clockwise walk past excluded
// entries: the same lookup structure vring's pointer cache uses, here
// over the core's known set.
//
//rofllint:hotpath
func (s *peerSet) bestProgress(cur, dst, exclude ident.ID) (Peer, bool) {
	m := len(s.ids)
	if m == 0 {
		return Peer{}, false
	}
	// First ID linearly greater than dst; its predecessor (circularly)
	// is the closest candidate that does not overshoot.
	i := sort.Search(m, func(k int) bool { return dst.Less(s.ids[k]) })
	idx := i - 1
	if idx < 0 {
		idx = m - 1
	}
	for tries := 0; tries < m; tries++ {
		id := s.ids[idx]
		if !ident.Progress(cur, dst, id) {
			// Walking counter-clockwise only ever shrinks progress; once
			// it fails, no remembered peer qualifies.
			return Peer{}, false
		}
		if id != exclude {
			return s.byID[id], true
		}
		idx--
		if idx < 0 {
			idx = m - 1
		}
	}
	return Peer{}, false
}
