// BFD-style adaptive successor liveness (modeled on RFC 5880's
// asynchronous mode, not its bit layout): the core probes its current
// successor once per liveness tick and declares it dead after
// Multiplier consecutive unanswered probes — millisecond-scale failure
// detection layered under the stabilize-tick eviction, which stays as
// the slow-path fallback (and the only detector when the driver never
// ticks liveness).
//
// Negotiation follows BFD's rule: each side advertises the interval it
// wants to transmit at (MinTx) and the fastest it is willing to be
// probed at (MinRx); the effective transmit interval toward a peer is
// max(local MinTx, remote MinRx), so a loaded node slows its probers
// down by advertising a larger MinRx. The advertisement rides in every
// probe and every reply. The core only negotiates the interval
// (Interval accessor); pacing the ticks by it is the driver's job —
// time never enters the core.
package proto

import (
	"encoding/binary"
	"time"
)

// LivenessParams shapes the adaptive failure detector.
type LivenessParams struct {
	// MinTx is the interval this node wants between its own probes.
	MinTx time.Duration
	// MinRx is the fastest probing this node accepts from a peer; it is
	// advertised in probes and replies, and peers must slow to it.
	MinRx time.Duration
	// Multiplier is how many consecutive unanswered probes declare the
	// successor dead (BFD's detect multiplier; default 3).
	Multiplier int
}

// DefaultLivenessParams detects a dead successor in roughly
// (Multiplier+1)×MinTx ≈ 40ms on a LAN — two orders of magnitude under
// the stabilize-timer epochs it fronts.
func DefaultLivenessParams() LivenessParams {
	return LivenessParams{MinTx: 10 * time.Millisecond, MinRx: 5 * time.Millisecond, Multiplier: 3}
}

// normalize fills zero fields with defaults.
func (p LivenessParams) normalize() LivenessParams {
	d := DefaultLivenessParams()
	if p.MinTx <= 0 {
		p.MinTx = d.MinTx
	}
	if p.MinRx <= 0 {
		p.MinRx = d.MinRx
	}
	if p.Multiplier <= 0 {
		p.Multiplier = d.Multiplier
	}
	return p
}

// livenessAdLen is the probe payload: minTx(4) minRx(4) multiplier(1),
// intervals in microseconds.
const livenessAdLen = 9

// encodeLivenessAd serializes an interval advertisement.
func encodeLivenessAd(p LivenessParams) []byte {
	buf := make([]byte, livenessAdLen)
	binary.BigEndian.PutUint32(buf[0:], uint32(p.MinTx/time.Microsecond))
	binary.BigEndian.PutUint32(buf[4:], uint32(p.MinRx/time.Microsecond))
	buf[8] = uint8(min(p.Multiplier, 255))
	return buf
}

// decodeLivenessAd parses an advertisement; ok is false on a short or
// garbled payload (the probe still proves liveness either way).
func decodeLivenessAd(b []byte) (LivenessParams, bool) {
	if len(b) < livenessAdLen {
		return LivenessParams{}, false
	}
	return LivenessParams{
		MinTx:      time.Duration(binary.BigEndian.Uint32(b[0:])) * time.Microsecond,
		MinRx:      time.Duration(binary.BigEndian.Uint32(b[4:])) * time.Microsecond,
		Multiplier: int(b[8]),
	}, true
}
