package proto

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rofl/internal/ident"
)

func testPeer(v uint64) Peer {
	return Peer{ID: ident.FromUint64(v), Addr: fmt.Sprintf("peer:%d", v)}
}

func TestPeerCodecRoundTrip(t *testing.T) {
	in := []Peer{
		{ID: ident.FromString("a"), Addr: "127.0.0.1:1000"},
		{ID: ident.FromString("b"), Addr: "[::1]:2000"},
	}
	out, err := DecodePeers(EncodePeers(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip: %v", out)
	}
	if _, err := DecodePeers([]byte{0}); err == nil {
		t.Fatal("short buffer must fail")
	}
	if _, err := DecodePeers([]byte{0, 5, 1, 2}); err == nil {
		t.Fatal("truncated entries must fail")
	}
}

func TestPeerSetBasics(t *testing.T) {
	s := newPeerSet()
	for _, v := range []uint64{50, 10, 30, 20, 40} {
		s.insert(testPeer(v))
	}
	if s.len() != 5 {
		t.Fatalf("len=%d, want 5", s.len())
	}
	// Sorted ascending regardless of insertion order.
	for i, want := range []uint64{10, 20, 30, 40, 50} {
		if got := s.at(i).ID; got != ident.FromUint64(want) {
			t.Fatalf("at(%d) = %v, want %d", i, got, want)
		}
	}
	// Re-inserting refreshes the address without duplicating.
	s.insert(Peer{ID: ident.FromUint64(30), Addr: "peer:new"})
	if s.len() != 5 {
		t.Fatalf("duplicate insert grew the set to %d", s.len())
	}
	if e, ok := s.get(ident.FromUint64(30)); !ok || e.Addr != "peer:new" {
		t.Fatalf("address not refreshed: %+v %v", e, ok)
	}
	s.remove(ident.FromUint64(30))
	if s.contains(ident.FromUint64(30)) || s.len() != 4 {
		t.Fatal("remove failed")
	}
	s.remove(ident.FromUint64(30)) // absent remove is a no-op
	if s.len() != 4 {
		t.Fatal("removing an absent ID changed the set")
	}
}

func TestPeerSetBestProgress(t *testing.T) {
	s := newPeerSet()
	for _, v := range []uint64{500, 2500, 2999, 5000} {
		s.insert(testPeer(v))
	}
	cur := ident.FromUint64(1000)
	dst := ident.FromUint64(3000)
	// Closest candidate in (1000, 3000] is 2999.
	if e, ok := s.bestProgress(cur, dst, cur); !ok || e.ID != ident.FromUint64(2999) {
		t.Fatalf("bestProgress = %+v %v, want 2999", e, ok)
	}
	// Excluding 2999 falls back to the next-closest legal hop.
	if e, ok := s.bestProgress(cur, dst, ident.FromUint64(2999)); !ok || e.ID != ident.FromUint64(2500) {
		t.Fatalf("bestProgress excluding 2999 = %+v %v, want 2500", e, ok)
	}
	// No candidate in (5000, 200]-wrap except 500 → wrap-around works.
	if e, ok := s.bestProgress(ident.FromUint64(5000), ident.FromUint64(600), cur); !ok || e.ID != ident.FromUint64(500) {
		t.Fatalf("wrap-around bestProgress = %+v %v, want 500", e, ok)
	}
	// Nothing makes progress inside an empty interval.
	if _, ok := s.bestProgress(ident.FromUint64(2999), dst, cur); ok {
		t.Fatal("bestProgress invented a candidate: only 3000 itself could qualify")
	}
	if _, ok := newPeerSet().bestProgress(cur, dst, cur); ok {
		t.Fatal("empty set returned a candidate")
	}
}

// TestPeerSetSampleSmall: a set no larger than the fanout is returned
// whole, in sorted order.
func TestPeerSetSampleSmall(t *testing.T) {
	s := newPeerSet()
	s.insert(testPeer(30))
	s.insert(testPeer(10))
	rng := rand.New(rand.NewSource(1))
	got := s.sampleInto(nil, 3, rng, nil)
	want := []Peer{testPeer(10), testPeer(30)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("small sample = %+v, want whole set sorted %+v", got, want)
	}
}
