package proto

import (
	"testing"

	"rofl/internal/ident"
)

func TestHandleAddrRoundTrip(t *testing.T) {
	for _, h := range []ident.Handle{0, 1, 7, 1 << 20, ^ident.Handle(0) - 1} {
		addr := HandleAddr(h)
		got, ok := ParseHandleAddr(addr)
		if !ok || got != h {
			t.Fatalf("ParseHandleAddr(%q) = %d,%v want %d,true", addr, got, ok, h)
		}
	}
}

func TestParseHandleAddrRejectsForeignSchemes(t *testing.T) {
	for _, addr := range []string{
		"", "n003", "127.0.0.1:9000", "h:", "h:x", "h:-1",
		"h:4294967295", // the NoHandle sentinel is never a valid address
		"h:99999999999",
	} {
		if h, ok := ParseHandleAddr(addr); ok {
			t.Errorf("ParseHandleAddr(%q) accepted as %d", addr, h)
		}
	}
}
