package proto

import (
	"strconv"
	"strings"

	"rofl/internal/ident"
)

// Handle-derived fabric addresses. Drivers that intern their node
// population (the sharded simulation, vring.ProtoRing) do not have
// transport-assigned addresses the way sockets do; they derive each
// node's address from its dense intern handle instead. The protocol
// core treats addresses as opaque strings either way — journals are
// built only from protocol fields, never from transport addresses, so a
// schedule driven over handle addresses is byte-comparable against the
// same schedule driven over socket addresses (the cross-driver
// equivalence gate).

const handleAddrPrefix = "h:"

// HandleAddr renders an interned handle as a fabric address.
func HandleAddr(h ident.Handle) string {
	return handleAddrPrefix + strconv.FormatUint(uint64(h), 10)
}

// ParseHandleAddr inverts HandleAddr. It reports false for addresses
// minted by any other scheme (socket addresses, test fixtures), for the
// NoHandle sentinel, and for out-of-range values.
func ParseHandleAddr(addr string) (ident.Handle, bool) {
	s, ok := strings.CutPrefix(addr, handleAddrPrefix)
	if !ok {
		return ident.NoHandle, false
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil || ident.Handle(v) == ident.NoHandle {
		return ident.NoHandle, false
	}
	return ident.Handle(v), true
}
