// Package proto is the transport-agnostic core of ROFL's intradomain
// protocol: one deterministic state machine implementing ring
// membership (join, Chord-style stabilization, successor/predecessor
// failure eviction, quarantine against dead-peer resurrection,
// membership gossip and repair probes) and greedy data forwarding over
// ring pointers with a pointer-cache fallback (paper §2.2, §3,
// Algorithm 2), plus BFD-style liveness negotiation.
//
// The core is pure in the systems sense: every transition is an
// explicit event — a decoded packet, a stabilize tick, a liveness tick,
// a join command — applied to in-memory state, emitting its effects as
// Actions the caller executes. There are no clocks (time arrives as
// tick events and leaves as negotiated intervals), no goroutines, no
// I/O, and no global randomness (every sampling decision draws from a
// generator seeded in Config). Two drivers stepping the same core with
// the same event sequence therefore produce byte-identical behavior —
// the property the cross-driver equivalence test pins.
//
// Drivers: internal/overlay wraps a Core in a mutex, a UDP/netem read
// loop, and real timers; internal/vring's ProtoRing steps a set of
// cores under the sim package's virtual clock. The core itself is not
// goroutine-safe — the driver serializes access.
package proto

import (
	"fmt"
	"math/rand"
	"time"

	"rofl/internal/ident"
	"rofl/internal/wire"
)

// SuccessorGroupSize is the number of successors a core keeps (§2.2
// successor-groups).
const SuccessorGroupSize = 3

const (
	// maxKnown bounds the remembered-peer set used for repair probes.
	maxKnown = 128
	// maxRecentStab bounds the window of outstanding stabilize request
	// IDs; replies outside the window are stale and ignored.
	maxRecentStab = 16
	// gossipFanout is how many randomly chosen known peers ride along in
	// each stabilize request. Ring pointers alone spread membership only
	// to ID-adjacent neighbours; gossip disseminates it globally, so that
	// after a partition every side still knows (and can probe) enough of
	// its own members to re-form — and later re-merge — a ring.
	gossipFanout = 3
)

// succFailThreshold is how many missed stabilization replies declare the
// successor dead.
const succFailThreshold = 4

// predFailThreshold is how many stabilization rounds without a stabilize
// request from the predecessor clear the predecessor pointer. It is
// higher than succFailThreshold because the signal is indirect (we rely
// on the predecessor's own timer) and a false clear briefly opens the
// ring to a worse claimant.
const predFailThreshold = 8

// quarantineRounds is how many of this core's stabilize rounds an
// evicted-as-dead peer stays barred from hearsay re-adoption. It must
// outlast the slowest purge on live peers — a predecessor pointer naming
// the corpse survives predFailThreshold+1 of the peer's rounds — with
// margin for drift between timers. Quarantine never delays a live peer's
// return: its own packets lift it immediately.
const quarantineRounds = 3 * (predFailThreshold + 1)

// Config seeds a Core. The zero value is not usable: ID and Addr
// identify the node on the ring and must be set.
type Config struct {
	// ID is the node's flat label.
	ID ident.ID
	// Addr is the node's own transport address, as peers should dial it.
	Addr string
	// Seed drives every sampling decision (gossip fanout, probe choice,
	// eviction victims). Zero derives the seed from ID, so a core's
	// sampling trace is a pure function of its identity and learn
	// history.
	Seed int64
	// Liveness shapes the BFD-style failure detector; zero fields take
	// defaults.
	Liveness LivenessParams
}

// joinAttempt is one outstanding join: the bootstrap address and the
// request packet, kept so retries reuse the same request ID.
type joinAttempt struct {
	via string
	pkt *wire.Packet
}

// Core is the protocol state machine for one node.
type Core struct {
	id   ident.ID
	addr string

	succs []Peer // successor group, ascending from id
	pred  *Peer

	// known remembers every peer this core has heard of — including
	// evicted-as-dead successors — and feeds the stabilization-time
	// repair probes that let two rings separated by a partition find
	// each other again after it heals (the paper's §3.3 ring-merge).
	// Its sorted index also serves as a pointer cache for forwarding:
	// when no ring pointer makes greedy progress, the closest
	// remembered peer is tried before dropping.
	known *peerSet
	rng   *rand.Rand

	reqSeq uint64
	// recentStab is the window of stabilize request IDs awaiting a
	// reply; replies whose ReqID is not in the window are discarded as
	// stale (reordered or duplicated by the network).
	recentStab map[uint64]struct{}
	stabFIFO   []uint64
	// quar holds peers this core itself declared dead, mapped to the
	// number of stabilize rounds the verdict still stands. While
	// quarantined, a peer cannot be re-adopted as successor from hearsay
	// (gossip and stabilize replies from third parties that have not yet
	// purged the corpse from their own pointers) — without this, small
	// rings livelock: the eviction is undone microseconds later by the
	// live peer's reply and the dead successor flaps forever. Direct
	// contact from the peer itself (a stabilize request, join, or
	// liveness packet it sent) is proof of life and lifts the quarantine
	// immediately, so a healed partition or a false positive recovers at
	// network speed.
	quar map[ident.ID]int

	pendingJoins map[uint64]*joinAttempt

	// Liveness detector state: negotiated parameters, the current
	// monitoring target, consecutive unanswered probe windows, and the
	// target's advertised receive-interval floor.
	liveness       LivenessParams
	bfdTarget      Peer
	bfdMisses      int
	bfdRemoteMinRx time.Duration
	// succMisses counts consecutive stabilization rounds without a reply
	// from the current successor; past a threshold the successor is
	// declared dead and the group shifts down (§2.2 successor-groups).
	// lastSucc remembers which successor the count applies to, so
	// adopting a different successor restarts the clock.
	succMisses int
	lastSucc   *ident.ID
	// predMisses counts consecutive stabilization rounds without hearing
	// a stabilize request from the current predecessor.
	predMisses int
}

// New builds a core from cfg. The core starts outside any ring; call
// Bootstrap to found one or StartJoin to enter an existing one.
func New(cfg Config) *Core {
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(cfg.ID.Low64())
	}
	return &Core{
		id:           cfg.ID,
		addr:         cfg.Addr,
		known:        newPeerSet(),
		rng:          rand.New(rand.NewSource(seed)),
		recentStab:   make(map[uint64]struct{}),
		quar:         make(map[ident.ID]int),
		pendingJoins: make(map[uint64]*joinAttempt),
		liveness:     cfg.Liveness.normalize(),
	}
}

// ID returns the core's flat label.
func (c *Core) ID() ident.ID { return c.id }

// Addr returns the core's own transport address.
func (c *Core) Addr() string { return c.addr }

// Bootstrap makes this core the first ring member: it is its own
// successor and predecessor.
func (c *Core) Bootstrap() {
	self := Peer{ID: c.id, Addr: c.addr}
	c.succs = []Peer{self}
	c.pred = &self
}

// Bootstrapped reports whether the core holds any ring state.
func (c *Core) Bootstrapped() bool { return len(c.succs) > 0 }

// Successor returns the immediate successor.
func (c *Core) Successor() (Peer, bool) {
	if len(c.succs) == 0 {
		return Peer{}, false
	}
	return c.succs[0], true
}

// Predecessor returns the predecessor pointer.
func (c *Core) Predecessor() (Peer, bool) {
	if c.pred == nil {
		return Peer{}, false
	}
	return *c.pred, true
}

// Successors returns a copy of the successor group.
func (c *Core) Successors() []Peer {
	return append([]Peer(nil), c.succs...)
}

// KnownPeers returns the size of the remembered-peer set.
func (c *Core) KnownPeers() int { return c.known.len() }

// Ring returns the core's view of the ring, for debugging:
// predecessor, self, then successors.
func (c *Core) Ring() []string {
	var out []string
	if c.pred != nil {
		out = append(out, "pred:"+c.pred.ID.Short())
	}
	out = append(out, "self:"+c.id.Short())
	for _, s := range c.succs {
		out = append(out, "succ:"+s.ID.Short())
	}
	return out
}

// InstallRing seeds ring state directly — the escape hatch drivers and
// benchmarks use to construct a known topology without running the join
// protocol. succs is copied; pred may be nil.
func (c *Core) InstallRing(succs []Peer, pred *Peer) {
	c.succs = append([]Peer(nil), succs...)
	if pred == nil {
		c.pred = nil
	} else {
		p := *pred
		c.pred = &p
	}
	c.succMisses = 0
	c.lastSucc = nil
	c.predMisses = 0
}

// Learn remembers a peer for repair probing and pointer-cache
// forwarding, evicting a random non-ring-neighbor past the capacity
// bound. Drivers use it to inject statically configured peers.
func (c *Core) Learn(p Peer) { c.learn(p) }

// NextReqID allocates a request ID from the core's single sequence,
// shared by joins, stabilizes, and probes.
func (c *Core) NextReqID() uint64 {
	c.reqSeq++
	return c.reqSeq
}

// isRingNeighbor reports whether id is one of the core's live ring
// pointers — a member of the successor group or the predecessor.
func (c *Core) isRingNeighbor(id ident.ID) bool {
	if c.pred != nil && c.pred.ID == id {
		return true
	}
	return containsID(c.succs, id)
}

// learn remembers a peer for repair probing. At the maxKnown bound an
// eviction victim is drawn from the core's seeded RNG — skipping the
// current successors and predecessor, which feed failure detection and
// repair probing and must never be silently forgotten while they are
// live ring neighbors.
func (c *Core) learn(e Peer) {
	if e.ID == c.id || e.Addr == "" {
		return
	}
	if !c.known.contains(e.ID) && c.known.len() >= maxKnown {
		victim, ok := c.known.pick(c.rng, c.isRingNeighbor)
		if !ok {
			return // everyone remembered is a ring neighbor; don't evict any of them
		}
		c.known.remove(victim.ID)
	}
	c.known.insert(e)
}

// gossip returns the stabilize-request payload: the core's own entry
// followed by up to gossipFanout remembered peers sampled by the
// core's seeded RNG over the sorted peer index.
func (c *Core) gossip(self Peer) []Peer {
	out := append(make([]Peer, 0, 1+gossipFanout), self)
	return c.known.sampleInto(out, gossipFanout, c.rng, nil)
}

// pickProbe selects a remembered peer outside the successor head to
// probe this round, drawn from the core's seeded RNG.
func (c *Core) pickProbe() (Peer, bool) {
	return c.known.pick(c.rng, func(id ident.ID) bool {
		return len(c.succs) > 0 && id == c.succs[0].ID
	})
}

// noteStab registers a stabilize request ID in the reply window,
// evicting the oldest entry past maxRecentStab.
func (c *Core) noteStab(id uint64) {
	c.recentStab[id] = struct{}{}
	c.stabFIFO = append(c.stabFIFO, id)
	if len(c.stabFIFO) > maxRecentStab {
		delete(c.recentStab, c.stabFIFO[0])
		c.stabFIFO = c.stabFIFO[1:]
	}
}

// dropSuccessor removes dead from the head of the successor group,
// shifting the group down (collapsing to a self-ring when it empties)
// and clearing a predecessor pointer naming the same peer. The dead
// peer stays in known so a later repair probe can find it again if it
// was only partitioned away. The caller owns reporting: each removal
// is noted exactly once, by whichever detector (stabilize tick or
// liveness tick) declared the death.
func (c *Core) dropSuccessor(dead Peer) {
	if len(c.succs) == 0 || c.succs[0].ID != dead.ID {
		return
	}
	c.succs = c.succs[1:]
	if len(c.succs) == 0 {
		c.succs = []Peer{{ID: c.id, Addr: c.addr}}
	}
	if c.pred != nil && c.pred.ID == dead.ID {
		c.pred = nil
	}
	c.succMisses = 0
	c.lastSucc = nil
	c.quar[dead.ID] = quarantineRounds
}

// TickStabilize runs one Chord-style stabilization round: age the
// quarantine, account predecessor and successor silence (clearing or
// evicting past their thresholds), ask the successor for its current
// predecessor with gossip riding along, and probe one remembered peer
// outside the successor group so rings that diverged — most importantly
// the two sides of a healed partition — rediscover each other and merge
// (§3.3's repair, driven by probes instead of zero-ID floods). The
// paper's virtual nodes "piggyback probes on data packets to ensure
// this state is maintained correctly" (§4.1); the driver's tick plays
// that role here.
func (c *Core) TickStabilize(a *Actions) {
	a.note(NoteStabRound, ident.ID{}, "", "")
	if len(c.succs) == 0 {
		return
	}
	self := Peer{ID: c.id, Addr: c.addr}
	// Age the quarantine: a verdict this core reached expires after
	// enough rounds for every live peer to have purged the corpse too.
	for id, left := range c.quar {
		if left <= 1 {
			delete(c.quar, id)
		} else {
			c.quar[id] = left - 1
		}
	}
	// A predecessor that has not sent us a stabilize request in many
	// rounds is dead or unreachable; clear it so a live claimant can be
	// adopted (a stale pointer would otherwise block better askers
	// forever — the Between test only admits improvements).
	if c.pred != nil && c.pred.ID != c.id {
		c.predMisses++
		if c.predMisses > predFailThreshold {
			p := *c.pred
			c.pred = nil
			c.predMisses = 0
			a.note(NotePredCleared, p.ID, p.Addr, ReasonStabilizeSilence)
		}
	}
	if c.succs[0].ID != c.id {
		// A successor that stays silent across several rounds is dead:
		// shift the group down.
		if c.lastSucc == nil || *c.lastSucc != c.succs[0].ID {
			cur := c.succs[0].ID
			c.lastSucc = &cur
			c.succMisses = 0
		}
		c.succMisses++
		if c.succMisses > succFailThreshold {
			dead := c.succs[0]
			c.dropSuccessor(dead)
			a.note(NoteSuccEvicted, dead.ID, dead.Addr, ReasonStabilizeTimeout)
		}
		if succ := c.succs[0]; succ.ID != c.id {
			id := c.NextReqID()
			c.noteStab(id)
			a.send(succ.Addr, &wire.Packet{
				Type: wire.TypeStabilize, TTL: wire.DefaultTTL,
				Dst: succ.ID, Src: c.id, ReqID: id,
				Payload: EncodePeers(c.gossip(self)),
			})
		}
	}
	if probe, ok := c.pickProbe(); ok {
		id := c.NextReqID()
		c.noteStab(id)
		a.send(probe.Addr, &wire.Packet{
			Type: wire.TypeStabilize, TTL: wire.DefaultTTL,
			Dst: probe.ID, Src: c.id, ReqID: id,
			Payload: EncodePeers(c.gossip(self)),
		})
	}
}

// SetLiveness replaces the liveness parameters (zero fields take
// defaults) — the knob behind the overlay's StartLiveness.
func (c *Core) SetLiveness(p LivenessParams) {
	c.liveness = p.normalize()
}

// LivenessInterval is the negotiated transmit interval toward the
// current monitoring target: max(local MinTx, remote advertised MinRx).
// The driver paces its liveness ticks by it.
func (c *Core) LivenessInterval() time.Duration {
	iv := c.liveness.MinTx
	if c.bfdRemoteMinRx > iv {
		iv = c.bfdRemoteMinRx
	}
	return iv
}

// TickLiveness runs one BFD detector round: account a miss window for
// the previous probe, fail the successor over once Multiplier windows
// elapsed unanswered, otherwise transmit the next probe.
func (c *Core) TickLiveness(a *Actions) {
	if len(c.succs) == 0 || c.succs[0].ID == c.id {
		c.bfdTarget = Peer{}
		c.bfdMisses = 0
		return
	}
	succ := c.succs[0]
	if c.bfdTarget.ID != succ.ID {
		// New monitoring target (join, eviction, ring repair): re-arm.
		c.bfdTarget = succ
		c.bfdMisses = 0
		c.bfdRemoteMinRx = 0
	}
	if c.bfdMisses >= c.liveness.Multiplier {
		c.dropSuccessor(succ)
		c.bfdTarget = Peer{}
		c.bfdMisses = 0
		c.bfdRemoteMinRx = 0
		a.note(NoteSuccEvicted, succ.ID, succ.Addr, ReasonLivenessTimeout)
		return
	}
	c.bfdMisses++
	a.note(NoteLivenessProbe, succ.ID, succ.Addr, "")
	a.send(succ.Addr, &wire.Packet{
		Type: wire.TypeLiveness, TTL: wire.DefaultTTL,
		Dst: succ.ID, Src: c.id, ReqID: c.NextReqID(),
		Payload: encodeLivenessAd(c.liveness),
	})
}

// StartJoin begins a join attempt under a request ID the driver
// allocated with NextReqID: the request is greedy-routed toward the
// core's own identifier through via; the predecessor that receives it
// replies with the successor set (§3.1). The attempt stays pending —
// and RetryJoin keeps retransmitting the identical packet — until the
// reply arrives (JoinResult action) or the driver gives up
// (AbortJoin). Retries reuse the request ID, so the far side may
// process the request more than once; handleJoin is idempotent.
func (c *Core) StartJoin(reqID uint64, via string, a *Actions) {
	pkt := &wire.Packet{
		Type: wire.TypeJoinRequest,
		TTL:  wire.DefaultTTL,
		Dst:  c.id,
		Src:  c.id,
		// ReqID correlates the reply; the payload carries our address so
		// the predecessor can answer and the ring can point at us.
		ReqID:   reqID,
		Payload: EncodePeers([]Peer{{ID: c.id, Addr: c.addr}}),
	}
	c.pendingJoins[reqID] = &joinAttempt{via: via, pkt: pkt}
	a.send(via, pkt)
}

// RetryJoin retransmits a pending join attempt; it reports false when
// the attempt already completed or was aborted.
func (c *Core) RetryJoin(reqID uint64, a *Actions) bool {
	at, ok := c.pendingJoins[reqID]
	if !ok {
		return false
	}
	a.send(at.via, at.pkt)
	return true
}

// AbortJoin abandons a pending join attempt (driver timeout or
// shutdown). A later reply for the same request ID is ignored as
// stale.
func (c *Core) AbortJoin(reqID uint64) {
	delete(c.pendingJoins, reqID)
}

// Originate builds a data packet for dst, carrying an optional
// capability token (§5.3), and forwards it greedily. Origination never
// delivers locally — a node does not route to itself.
func (c *Core) Originate(dst ident.ID, payload, capability []byte, a *Actions) {
	c.ForwardData(&wire.Packet{
		Type:       wire.TypeData,
		TTL:        wire.DefaultTTL,
		Dst:        dst,
		Src:        c.id,
		Capability: capability,
		Payload:    payload,
	}, a)
}

// HandlePacket applies one decoded packet to the core. The from
// address is the transport-level sender, used where the protocol
// answers the socket it heard from. Emitted Sends may alias pkt; the
// driver transmits them before reusing pkt for the next datagram.
//
//rofllint:hotpath
func (c *Core) HandlePacket(pkt *wire.Packet, from string, a *Actions) {
	switch pkt.Type {
	case wire.TypeData:
		if pkt.Dst == c.id {
			a.note(NoteDeliver, pkt.Src, from, "")
			a.Delivers = append(a.Delivers, Delivery{Src: pkt.Src, Capability: pkt.Capability, Payload: pkt.Payload})
			return
		}
		if pkt.TTL == 0 {
			a.note(NoteTTLDrop, pkt.Dst, "", "")
			return
		}
		pkt.TTL--
		c.ForwardData(pkt, a)
	case wire.TypeJoinRequest:
		c.handleJoin(pkt, a)
	case wire.TypeJoinReply:
		c.handleJoinReply(pkt, a)
	case wire.TypeAck:
		c.handleNotify(pkt)
	case wire.TypeStabilize:
		c.handleStabilize(pkt, a)
	case wire.TypeStabilizeReply:
		c.handleStabilizeReply(pkt, from)
	case wire.TypeLiveness:
		c.handleLivenessProbe(pkt, from, a)
	case wire.TypeLivenessReply:
		c.handleLivenessReply(pkt, from)
	}
}

// ForwardData implements greedy next-hop choice over the core's ring
// pointers: closest to pkt.Dst without overshooting our own position
// (Algorithm 2).
func (c *Core) ForwardData(pkt *wire.Packet, a *Actions) {
	c.forwardExcept(pkt, c.id, a)
}

// forwardExcept is ForwardData with one identifier barred as next hop
// (the core's own ID bars nothing extra). Join requests exclude the
// joiner itself: once the ring already points at a joiner whose join
// reply was lost, a retried request must reach the joiner's
// predecessor — which can answer — rather than short-circuiting to the
// joiner, which cannot.
func (c *Core) forwardExcept(pkt *wire.Packet, exclude ident.ID, a *Actions) {
	var best *Peer
	var bestDist ident.ID
	consider := func(e *Peer) {
		if e.ID == c.id || e.ID == exclude || !ident.Progress(c.id, pkt.Dst, e.ID) {
			return
		}
		d := e.ID.Distance(pkt.Dst)
		if best == nil || d.Cmp(bestDist) < 0 {
			best, bestDist = e, d
		}
	}
	for i := range c.succs {
		consider(&c.succs[i])
	}
	if c.pred != nil {
		consider(c.pred)
	}
	if best == nil {
		if e, ok := c.known.bestProgress(c.id, pkt.Dst, exclude); ok {
			// No ring pointer makes progress — before dropping, consult the
			// sorted known index for the closest remembered peer that does
			// (an O(log n) lookup). This is the pointer-cache role §2.2
			// assigns to opportunistically learned state: at worst the peer
			// is dead and the packet is lost exactly as it would have been
			// dropped here; at best it short-cuts to the destination's ring
			// segment during churn.
			a.note(NoteForward, e.ID, e.Addr, "")
			a.send(e.Addr, pkt)
			return
		}
		// We are the destination's predecessor and it is not present:
		// drop (the overlay has no parked ephemerals).
		a.note(NoteNoRoute, pkt.Dst, "", "")
		return
	}
	a.note(NoteForward, best.ID, best.Addr, "")
	a.send(best.Addr, pkt)
}

// handleJoin runs at every node a join request traverses. If the joining
// identifier falls between us and our successor, we are its predecessor:
// reply with the successor set, adopt the joiner as our new successor,
// and notify the old successor to update its predecessor. Otherwise
// forward greedily (never to the joiner itself). The splice is
// idempotent: a retransmitted request from a joiner we already adopted
// produces the same reply again and mutates nothing.
//
//rofllint:coldpath join control message, one per membership change; the splice and reply marshal are not per-packet work
func (c *Core) handleJoin(pkt *wire.Packet, a *Actions) {
	src, err := DecodePeers(pkt.Payload)
	if err != nil || len(src) != 1 {
		return
	}
	joiner := src[0]
	if joiner.ID == c.id {
		return // our own retried join found its way back; only the predecessor can answer
	}
	if len(c.succs) == 0 {
		return // not bootstrapped yet
	}
	delete(c.quar, joiner.ID) // a joiner is alive by definition
	c.learn(joiner)
	succ := c.succs[0]
	isPred := succ.ID == c.id || ident.Between(joiner.ID, c.id, succ.ID)
	if !isPred {
		if pkt.TTL == 0 {
			return
		}
		pkt.TTL--
		c.forwardExcept(pkt, joiner.ID, a)
		return
	}
	// Splice: joiner inherits our successor set; we adopt the joiner.
	reply := make([]Peer, 0, SuccessorGroupSize+1)
	reply = append(reply, Peer{ID: c.id, Addr: c.addr}) // predecessor first
	reply = append(reply, c.succs...)
	newSuccs := make([]Peer, 0, SuccessorGroupSize)
	newSuccs = append(newSuccs, joiner)
	for _, e := range c.succs {
		if len(newSuccs) >= SuccessorGroupSize {
			break
		}
		if e.ID != joiner.ID && e.ID != c.id {
			newSuccs = append(newSuccs, e)
		}
	}
	c.succs = newSuccs
	if succ.ID == c.id {
		// We were alone; in a two-node ring the joiner is also our
		// predecessor.
		c.pred = &joiner
		c.predMisses = 0
	}
	a.note(NoteJoinServed, joiner.ID, joiner.Addr, "")
	a.send(joiner.Addr, &wire.Packet{
		Type: wire.TypeJoinReply, TTL: wire.DefaultTTL,
		Dst: joiner.ID, Src: c.id, ReqID: pkt.ReqID,
		Payload: EncodePeers(reply),
	})
	// Tell the old successor its predecessor changed. On a retransmitted
	// request the old successor is the joiner itself — nothing to notify.
	if succ.ID != c.id && succ.ID != joiner.ID {
		a.send(succ.Addr, &wire.Packet{
			Type: wire.TypeAck, TTL: wire.DefaultTTL,
			Dst: succ.ID, Src: c.id,
			Payload: EncodePeers([]Peer{joiner}),
		})
	}
}

// handleJoinReply completes a pending join attempt: the first reply
// carrying a pending request ID installs the ring pointers; stale,
// duplicated, or aborted replies are ignored.
//
//rofllint:coldpath join control message, one per membership change, not per forwarded packet
func (c *Core) handleJoinReply(pkt *wire.Packet, a *Actions) {
	if _, ok := c.pendingJoins[pkt.ReqID]; !ok {
		return // stale, duplicated, or unsolicited reply
	}
	delete(c.pendingJoins, pkt.ReqID)
	err := c.applyJoinReply(pkt)
	if err == nil {
		a.note(NoteJoinDone, pkt.Src, "", "")
	}
	a.Joins = append(a.Joins, JoinResult{ReqID: pkt.ReqID, Err: err})
}

// applyJoinReply installs the predecessor and successor set from a join
// reply: predecessor first, then successors (§3.1's splice answer).
func (c *Core) applyJoinReply(pkt *wire.Packet) error {
	es, err := DecodePeers(pkt.Payload)
	if err != nil || len(es) < 1 {
		return fmt.Errorf("proto: malformed join reply")
	}
	pred := es[0]
	for _, e := range es {
		c.learn(e)
	}
	if pred.ID != c.id {
		c.pred = &pred
		c.predMisses = 0
	}
	succs := make([]Peer, 0, SuccessorGroupSize)
	for _, e := range es[1:] {
		if e.ID == c.id {
			continue
		}
		succs = append(succs, e)
		if len(succs) >= SuccessorGroupSize {
			break
		}
	}
	if len(succs) == 0 {
		// Two-node ring: our predecessor is also our successor.
		succs = append(succs, pred)
	}
	c.succs = succs
	return nil
}

// handleNotify processes the ring-splice notification a predecessor
// sends its old successor after adopting a joiner.
//
//rofllint:coldpath ring-splice notification, one per membership change, not per forwarded packet
func (c *Core) handleNotify(pkt *wire.Packet) {
	es, err := DecodePeers(pkt.Payload)
	if err != nil || len(es) != 1 {
		return
	}
	p := es[0]
	if p.ID == c.id {
		return // a stale notification must never make us our own predecessor
	}
	c.learn(p)
	// Adopt the notified predecessor only when it improves on the
	// current one — unconditional adoption would let stale notifications
	// from concurrent joins regress the ring.
	if c.pred == nil || c.pred.ID == c.id || ident.Between(p.ID, c.pred.ID, c.id) {
		c.pred = &p
		c.predMisses = 0
	}
}

// handleStabilize answers a stabilize request: learn the asker and its
// gossip, adopt the asker as predecessor or successor where it
// improves the ring, and reply with our predecessor and successor set.
//
//rofllint:coldpath stabilize control message, one per ring-maintenance round, not per forwarded packet
func (c *Core) handleStabilize(pkt *wire.Packet, a *Actions) {
	es, err := DecodePeers(pkt.Payload)
	if err != nil || len(es) < 1 {
		return
	}
	// The request carries the asker first, then gossiped peers.
	asker := es[0]
	delete(c.quar, asker.ID) // the asker spoke for itself: proof of life
	for _, e := range es {
		c.learn(e)
	}
	// The asker believes we are its successor; adopt it as predecessor
	// when it falls between our current predecessor and us. Hearing from
	// the current predecessor proves it alive.
	if asker.ID != c.id && (c.pred == nil || ident.Between(asker.ID, c.pred.ID, c.id)) {
		p := asker
		c.pred = &p
		c.predMisses = 0
	} else if c.pred != nil && asker.ID == c.pred.ID {
		c.predMisses = 0
	}
	// Symmetric repair: an asker that falls between us and our current
	// successor is a better successor — adopt it. This is how the
	// responder side of a repair probe re-links a merged ring.
	if len(c.succs) > 0 && asker.ID != c.id &&
		ident.Between(asker.ID, c.id, c.succs[0].ID) && asker.ID != c.succs[0].ID {
		c.succs = append([]Peer{asker}, c.succs...)
		if len(c.succs) > SuccessorGroupSize {
			c.succs = c.succs[:SuccessorGroupSize]
		}
	}
	reply := make([]Peer, 0, 1+len(c.succs))
	if c.pred != nil {
		reply = append(reply, *c.pred)
	} else {
		reply = append(reply, Peer{ID: c.id, Addr: c.addr})
	}
	reply = append(reply, c.succs...)
	a.send(asker.Addr, &wire.Packet{
		Type: wire.TypeStabilizeReply, TTL: wire.DefaultTTL,
		Dst: asker.ID, Src: c.id, ReqID: pkt.ReqID,
		Payload: EncodePeers(reply),
	})
}

// handleStabilizeReply folds a stabilize answer into the ring: splice
// in better successors the responder reported, and refresh the
// successor group. Replies outside the recent-request window are
// stale and ignored; quarantined peers cannot be resurrected by
// hearsay.
//
//rofllint:coldpath stabilize control message, one per ring-maintenance round, not per forwarded packet
func (c *Core) handleStabilizeReply(pkt *wire.Packet, from string) {
	es, err := DecodePeers(pkt.Payload)
	if err != nil || len(es) < 1 {
		return
	}
	responder := Peer{ID: pkt.Src, Addr: from}
	if _, ok := c.recentStab[pkt.ReqID]; !ok {
		return // stale, duplicated, or unsolicited reply
	}
	delete(c.recentStab, pkt.ReqID)
	delete(c.quar, pkt.Src) // the responder spoke for itself: proof of life
	c.learn(responder)
	for _, e := range es {
		c.learn(e)
	}
	if len(c.succs) == 0 {
		return
	}
	if pkt.Src == c.succs[0].ID {
		c.succMisses = 0 // the successor is alive
	}
	// Adopt any candidate — the responder itself or anyone it reported —
	// that falls between us and our current successor: the reply to a
	// normal stabilize tightens the ring exactly as before, and the
	// reply to a repair probe splices a foreign ring's nodes in.
	candidates := append([]Peer{responder}, es...)
	for _, cand := range candidates {
		if cand.ID == c.id {
			continue
		}
		if _, dead := c.quar[cand.ID]; dead {
			continue // hearsay cannot resurrect a peer this core saw die
		}
		if ident.Between(cand.ID, c.id, c.succs[0].ID) && cand.ID != c.succs[0].ID {
			c.succs = append([]Peer{cand}, c.succs...)
		}
	}
	// Refresh the successor group: head, then the responder and its own
	// successor list in order. Built in a fresh slice — appending into
	// c.succs' backing array would alias state a driver may have handed
	// out.
	group := append(make([]Peer, 0, SuccessorGroupSize), c.succs[0])
	for _, e := range append([]Peer{responder}, es[1:]...) {
		if len(group) >= SuccessorGroupSize {
			break
		}
		if e.ID == c.id || containsID(group, e.ID) {
			continue
		}
		if _, dead := c.quar[e.ID]; dead {
			continue // keep quarantined corpses out of the fallback group too
		}
		group = append(group, e)
	}
	c.succs = group
}

// handleLivenessProbe answers a probe immediately with this core's own
// advertisement — the responder side never times anything, it only
// proves it is alive (BFD asynchronous mode with the passive role). A
// probe from the current predecessor also refreshes the predecessor
// liveness signal the stabilize detector reads.
//
//rofllint:coldpath liveness control message, paced by the BFD interval, not per forwarded packet
func (c *Core) handleLivenessProbe(pkt *wire.Packet, from string, a *Actions) {
	delete(c.quar, pkt.Src) // a probing peer is alive by definition
	if c.pred != nil && pkt.Src == c.pred.ID {
		c.predMisses = 0
	}
	a.send(from, &wire.Packet{
		Type: wire.TypeLivenessReply, TTL: wire.DefaultTTL,
		Dst: pkt.Src, Src: c.id, ReqID: pkt.ReqID,
		Payload: encodeLivenessAd(c.liveness),
	})
}

// handleLivenessReply clears the miss window when the answer comes from
// the successor currently being monitored, and adopts the successor's
// advertised MinRx as the negotiation floor. A liveness reply is also
// proof enough for the stabilize-tick detector: a successor that
// answers probes must not be evicted for losing stabilize replies.
//
//rofllint:coldpath liveness control message, paced by the BFD interval, not per forwarded packet
func (c *Core) handleLivenessReply(pkt *wire.Packet, from string) {
	delete(c.quar, pkt.Src) // an answering peer is alive by definition
	if c.bfdTarget.ID != pkt.Src {
		return // stale reply from a previous target
	}
	c.bfdMisses = 0
	if ad, ok := decodeLivenessAd(pkt.Payload); ok {
		c.bfdRemoteMinRx = ad.MinRx
	}
	if len(c.succs) > 0 && c.succs[0].ID == pkt.Src {
		c.succMisses = 0
	}
	c.learn(Peer{ID: pkt.Src, Addr: from})
}
