package proto

import (
	"reflect"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/wire"
)

func testCore(v uint64) *Core {
	c := New(Config{ID: ident.FromUint64(v), Addr: testPeer(v).Addr})
	return c
}

// TestLearnEvictionSparesRingNeighbors is the regression test for the
// maxKnown eviction bug: choosing an arbitrary victim could silently
// forget the core's own successors or predecessor, removing live ring
// neighbors from repair probing. Eviction must skip them.
func TestLearnEvictionSparesRingNeighbors(t *testing.T) {
	c := testCore(1000)
	succs := []Peer{testPeer(2000), testPeer(3000), testPeer(4000)}
	pred := testPeer(500)
	c.InstallRing(succs, &pred)
	// Ring neighbors are remembered first, then enough strangers to
	// force evictions far past the bound.
	for _, e := range succs {
		c.Learn(e)
	}
	c.Learn(pred)
	for i := 0; i < 4*maxKnown; i++ {
		c.Learn(testPeer(uint64(100000 + i)))
	}
	if c.KnownPeers() > maxKnown {
		t.Fatalf("known grew to %d, bound is %d", c.KnownPeers(), maxKnown)
	}
	for _, e := range succs {
		if !c.known.contains(e.ID) {
			t.Fatalf("successor %v was evicted from known", e.ID)
		}
	}
	if !c.known.contains(pred.ID) {
		t.Fatalf("predecessor %v was evicted from known", pred.ID)
	}
}

// TestSamplingDeterministic pins the determinism contract: gossip
// fanout and probe choice are a pure function of the core's seeded RNG
// and its learn history, so two cores with the same identity and
// history sample identically.
func TestSamplingDeterministic(t *testing.T) {
	build := func() *Core {
		c := testCore(42)
		c.InstallRing([]Peer{testPeer(2000)}, nil)
		for i := 0; i < 64; i++ {
			c.Learn(testPeer(uint64(5000 + i*13)))
		}
		return c
	}
	a, b := build(), build()
	self := testPeer(42)
	for round := 0; round < 50; round++ {
		ga, gb := a.gossip(self), b.gossip(self)
		if !reflect.DeepEqual(ga, gb) {
			t.Fatalf("round %d: gossip samples diverged:\na: %+v\nb: %+v", round, ga, gb)
		}
		pa, oka := a.pickProbe()
		pb, okb := b.pickProbe()
		if oka != okb || pa != pb {
			t.Fatalf("round %d: probe picks diverged: %+v/%v vs %+v/%v", round, pa, oka, pb, okb)
		}
	}
}

// TestGossipSamplesAreDistinct checks the sampler never packs the same
// peer twice into one gossip payload and never includes more than the
// fanout.
func TestGossipSamplesAreDistinct(t *testing.T) {
	c := testCore(7)
	for i := 0; i < 16; i++ {
		c.Learn(testPeer(uint64(1000 + i)))
	}
	self := testPeer(7)
	for round := 0; round < 200; round++ {
		g := c.gossip(self)
		if len(g) > 1+gossipFanout {
			t.Fatalf("gossip payload too large: %d entries", len(g))
		}
		if g[0] != self {
			t.Fatal("gossip must lead with the core's own entry")
		}
		seen := map[ident.ID]bool{}
		for _, e := range g {
			if seen[e.ID] {
				t.Fatalf("duplicate %v in gossip payload", e.ID)
			}
			seen[e.ID] = true
		}
	}
}

// sendAddrs extracts the target addresses of the emitted sends.
func sendAddrs(a *Actions) []string {
	out := make([]string, 0, len(a.Sends))
	for _, s := range a.Sends {
		out = append(out, s.Addr)
	}
	return out
}

// TestForwardFallsBackToKnownIndex: when no ring pointer makes greedy
// progress, the forwarder consults the sorted known index instead of
// dropping, and respects the exclusion.
func TestForwardFallsBackToKnownIndex(t *testing.T) {
	c := testCore(1000)
	c.InstallRing([]Peer{testPeer(5000)}, nil) // overshoots dst: no ring progress
	c.Learn(testPeer(500))
	c.Learn(testPeer(2500))
	c.Learn(testPeer(2999))

	pkt := &wire.Packet{
		Type: wire.TypeData, TTL: wire.DefaultTTL,
		Dst: ident.FromUint64(3000), Src: ident.FromUint64(1),
	}
	var a Actions
	c.ForwardData(pkt, &a)
	if got := sendAddrs(&a); len(got) != 1 || got[0] != "peer:2999" {
		t.Fatalf("forwarded to %v, want known-index hop peer:2999", got)
	}
	a.Reset()
	c.forwardExcept(pkt, ident.FromUint64(2999), &a)
	if got := sendAddrs(&a); len(got) != 1 || got[0] != "peer:2500" {
		t.Fatalf("excluded forward went to %v, want peer:2500", got)
	}
	// With the destination's whole arc unknown, the packet still drops —
	// and says so in a note.
	a.Reset()
	drop := &wire.Packet{Type: wire.TypeData, TTL: wire.DefaultTTL,
		Dst: ident.FromUint64(1100), Src: ident.FromUint64(1)}
	c.ForwardData(drop, &a)
	if len(a.Sends) != 0 {
		t.Fatal("packet with no legal hop anywhere must be dropped")
	}
	if len(a.Notes) != 1 || a.Notes[0].Kind != NoteNoRoute {
		t.Fatalf("drop must emit a no-route note, got %+v", a.Notes)
	}
}

// TestStabilizeTickEvictsSilentSuccessor drives the stabilize detector
// to its threshold with no replies and checks the eviction is emitted
// exactly once, with the stabilize-timeout reason, and that the group
// shifts down.
func TestStabilizeTickEvictsSilentSuccessor(t *testing.T) {
	c := testCore(1000)
	c.InstallRing([]Peer{testPeer(2000), testPeer(3000)}, nil)
	var a Actions
	evictions := 0
	for round := 0; round < succFailThreshold+2; round++ {
		a.Reset()
		c.TickStabilize(&a)
		for _, n := range a.Notes {
			if n.Kind == NoteSuccEvicted {
				evictions++
				if n.Reason != ReasonStabilizeTimeout {
					t.Fatalf("eviction reason = %q, want %q", n.Reason, ReasonStabilizeTimeout)
				}
				if n.Peer != ident.FromUint64(2000) {
					t.Fatalf("evicted %v, want 2000", n.Peer)
				}
			}
		}
	}
	if evictions != 1 {
		t.Fatalf("evictions = %d, want exactly 1", evictions)
	}
	if s, ok := c.Successor(); !ok || s.ID != ident.FromUint64(3000) {
		t.Fatalf("successor after eviction = %+v %v, want 3000", s, ok)
	}
	if _, dead := c.quar[ident.FromUint64(2000)]; !dead {
		t.Fatal("evicted successor must be quarantined")
	}
}

// TestJoinSpliceAcrossTwoCores runs the join handshake core-to-core by
// hand: the bootstrap serves the join, the joiner applies the reply,
// and both ends point at each other (the two-node ring).
func TestJoinSpliceAcrossTwoCores(t *testing.T) {
	boot := testCore(100)
	boot.Bootstrap()
	joiner := testCore(200)

	var a Actions
	id := joiner.NextReqID()
	joiner.StartJoin(id, boot.Addr(), &a)
	if len(a.Sends) != 1 || a.Sends[0].Addr != boot.Addr() {
		t.Fatalf("join must send one request to the bootstrap, got %+v", a.Sends)
	}
	req := a.Sends[0].Pkt

	var b Actions
	boot.HandlePacket(req, joiner.Addr(), &b)
	var reply *wire.Packet
	for _, s := range b.Sends {
		if s.Pkt.Type == wire.TypeJoinReply {
			reply = s.Pkt
		}
	}
	if reply == nil {
		t.Fatalf("bootstrap did not reply to the join: %+v", b.Sends)
	}
	served := false
	for _, n := range b.Notes {
		if n.Kind == NoteJoinServed {
			served = true
		}
	}
	if !served {
		t.Fatal("bootstrap must note the served join")
	}

	a.Reset()
	joiner.HandlePacket(reply, boot.Addr(), &a)
	if len(a.Joins) != 1 || a.Joins[0].ReqID != id || a.Joins[0].Err != nil {
		t.Fatalf("join completion = %+v, want ReqID %d with nil error", a.Joins, id)
	}
	if s, ok := joiner.Successor(); !ok || s.ID != boot.ID() {
		t.Fatal("joiner did not adopt the bootstrap as successor")
	}
	if p, ok := joiner.Predecessor(); !ok || p.ID != boot.ID() {
		t.Fatal("joiner did not adopt the bootstrap as predecessor")
	}
	if s, ok := boot.Successor(); !ok || s.ID != joiner.ID() {
		t.Fatal("bootstrap did not adopt the joiner as successor")
	}
	if p, ok := boot.Predecessor(); !ok || p.ID != joiner.ID() {
		t.Fatal("bootstrap did not adopt the joiner as predecessor")
	}

	// A duplicate (retransmitted) reply for the completed request is
	// ignored: the attempt is no longer pending.
	a.Reset()
	joiner.HandlePacket(reply, boot.Addr(), &a)
	if len(a.Joins) != 0 {
		t.Fatalf("stale join reply re-completed the attempt: %+v", a.Joins)
	}
}

// TestStaleStabilizeReplyIgnoredByCore pins the reply window at the
// core level: a reply whose request ID was never issued must not mutate
// ring state.
func TestStaleStabilizeReplyIgnoredByCore(t *testing.T) {
	c := testCore(1000)
	c.InstallRing([]Peer{testPeer(2000)}, nil)
	tempting := ident.FromUint64(1001) // would win adoption if accepted
	forged := &wire.Packet{
		Type: wire.TypeStabilizeReply, TTL: wire.DefaultTTL,
		Dst: c.ID(), Src: tempting, ReqID: 0xdead,
		Payload: EncodePeers([]Peer{{ID: tempting, Addr: "peer:evil"}}),
	}
	var a Actions
	c.HandlePacket(forged, "peer:evil", &a)
	if s, _ := c.Successor(); s.ID != ident.FromUint64(2000) {
		t.Fatalf("stale reply mutated successor to %v", s.ID)
	}
}
