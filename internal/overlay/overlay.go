// Package overlay runs the intradomain ROFL protocol over a datagram
// transport: nodes carry flat labels, splice themselves into a successor
// ring by greedy-routing join requests (paper §3.1), and forward data
// packets to the closest identifier that does not overshoot the
// destination (Algorithm 2). It demonstrates that the state machines the
// simulator measures also run outside it, using the binary wire format
// of package wire on the wire.
//
// The transport is abstracted behind netem.Transport: live deployments
// bind real UDP sockets, while tests drive the same node code through
// netem's deterministic fault-injecting fabric. The protocol is hardened
// accordingly: control requests (join, stabilize) carry request IDs and
// are retried with exponential backoff, handlers are idempotent under
// retransmission, stale replies are discarded, evicted peers are
// remembered and probed so rings split by a partition re-merge after it
// heals, and delivery to the application never blocks the read loop.
//
// The overlay is deliberately one level (no physical-topology source
// routes — every node can reach every other over the transport, playing
// the role the OSPF substrate plays inside an ISP).
package overlay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rofl/internal/ident"
	"rofl/internal/netem"
	"rofl/internal/wire"
)

// ErrTimeout reports a request that received no answer in time.
var ErrTimeout = errors.New("overlay: request timed out")

// ErrClosed reports an operation on a closed node.
var ErrClosed = errors.New("overlay: node closed")

// ErrBusy reports that the in-flight request table is full.
var ErrBusy = errors.New("overlay: too many in-flight requests")

// entry pairs an identifier with the transport address hosting it.
type entry struct {
	ID   ident.ID
	Addr string
}

// encodeEntries serializes pointer entries into a packet payload:
// count(2) then per entry id(16) addrLen(2) addr.
func encodeEntries(es []entry) []byte {
	buf := binary.BigEndian.AppendUint16(nil, uint16(len(es)))
	for _, e := range es {
		buf = append(buf, e.ID[:]...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Addr)))
		buf = append(buf, e.Addr...)
	}
	return buf
}

func decodeEntries(b []byte) ([]entry, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("overlay: short entry list")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	out := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < ident.Size+2 {
			return nil, fmt.Errorf("overlay: truncated entry %d", i)
		}
		var e entry
		copy(e.ID[:], b[:ident.Size])
		b = b[ident.Size:]
		alen := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < alen {
			return nil, fmt.Errorf("overlay: truncated address %d", i)
		}
		e.Addr = string(b[:alen])
		b = b[alen:]
		out = append(out, e)
	}
	return out, nil
}

// Delivery is handed to the application when a data packet arrives.
type Delivery struct {
	Src     ident.ID
	Payload []byte
}

// Gate decides whether a data packet may be delivered to the local
// application — the hook ROFL's default-off / capability admission
// (paper §5.3) plugs into. The capability bytes come straight from the
// packet's wire header.
type Gate func(src ident.ID, capability []byte) error

// RetryPolicy shapes the retransmission schedule of control requests:
// the first retransmit fires after Initial, each subsequent wait is
// multiplied by Multiplier and capped at Max, until the caller's
// deadline expires.
type RetryPolicy struct {
	Initial    time.Duration
	Max        time.Duration
	Multiplier float64
}

// DefaultRetryPolicy is tuned for LAN/loopback latencies: fast first
// retry, doubling to a 2s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Initial: 120 * time.Millisecond, Max: 2 * time.Second, Multiplier: 2}
}

const (
	// maxInFlight bounds the request table; register past this fails
	// with ErrBusy instead of growing without limit.
	maxInFlight = 64
	// maxKnown bounds the remembered-peer set used for repair probes.
	maxKnown = 128
	// maxRecentStab bounds the window of outstanding stabilize request
	// IDs; replies outside the window are stale and ignored.
	maxRecentStab = 16
	// gossipFanout is how many randomly chosen known peers ride along in
	// each stabilize request. Ring pointers alone spread membership only
	// to ID-adjacent neighbours; gossip disseminates it globally, so that
	// after a partition every side still knows (and can probe) enough of
	// its own members to re-form — and later re-merge — a ring.
	gossipFanout = 3
)

// Node is one overlay participant: a flat label bound to a transport.
type Node struct {
	id ident.ID
	tr netem.Transport

	mu     sync.Mutex
	succs  []entry // successor group, ascending from id
	pred   *entry
	closed bool
	retry  RetryPolicy

	// pending maps an outstanding request ID to the waiter's channel;
	// bounded by maxInFlight.
	pending map[uint64]chan *wire.Packet
	reqSeq  uint64
	// known remembers every peer this node has heard of — including
	// evicted-as-dead successors — and feeds the stabilization-time
	// repair probes that let two rings separated by a partition find
	// each other again after it heals (the overlay's analogue of the
	// paper's §3.3 ring-merge). Its sorted index also serves as a
	// pointer cache for forwarding: when no ring pointer makes greedy
	// progress, the closest remembered peer is tried before dropping.
	known *peerSet
	// rng drives every sampling decision (gossip fanout, probe choice,
	// eviction victims). It is seeded from the node's own identifier, so
	// a node's sampling trace is a pure function of its ID and learn
	// history — never of Go's randomized map iteration order. Guarded by
	// mu.
	rng *rand.Rand
	// recentStab is the window of stabilize request IDs awaiting a
	// reply; replies whose ReqID is not in the window are discarded as
	// stale (reordered or duplicated by the network).
	recentStab map[uint64]struct{}
	stabFIFO   []uint64
	// quar holds peers this node itself declared dead, mapped to the
	// number of stabilize rounds the verdict still stands. While
	// quarantined, a peer cannot be re-adopted as successor from hearsay
	// (gossip and stabilize replies from third parties that have not yet
	// purged the corpse from their own pointers) — without this, small
	// rings livelock: the eviction is undone microseconds later by the
	// live peer's reply and the dead successor flaps forever. Direct
	// contact from the peer itself (a stabilize request, join, or
	// liveness packet it sent) is proof of life and lifts the quarantine
	// immediately, so a healed partition or a false positive recovers at
	// network speed.
	quar map[ident.ID]int

	deliveries chan Delivery
	dropCount  atomic.Uint64 // deliveries dropped on a full channel
	gate       Gate

	// ins is the telemetry wiring, swapped atomically so SetTelemetry
	// is safe against a running read loop. Never nil: an unwired node
	// carries a zero Instruments (all handles nil and nil-safe), which
	// keeps the hot path branch-free and allocation-free.
	ins atomic.Pointer[Instruments]

	stabilizeStop chan struct{}
	stabilizeOnce sync.Once
	// Liveness detector state (see liveness.go): the BFD-style probe
	// loop, its current monitoring target, consecutive unanswered probe
	// windows, and the target's advertised receive-interval floor.
	livenessStop   chan struct{}
	livenessOnce   sync.Once
	liveness       LivenessParams
	bfdTarget      entry
	bfdMisses      int
	bfdRemoteMinRx time.Duration
	// succMisses counts consecutive stabilization rounds without a reply
	// from the current successor; past a threshold the successor is
	// declared dead and the group shifts down (§2.2 successor-groups).
	// lastSucc remembers which successor the count applies to, so
	// adopting a different successor restarts the clock.
	succMisses int
	lastSucc   *ident.ID
	// predMisses counts consecutive stabilization rounds without hearing
	// a stabilize request from the current predecessor. A live
	// predecessor contacts its successor every round, so silence past a
	// threshold means the predecessor is dead or partitioned away — the
	// pointer is cleared so a live claimant can take its place.
	predMisses int

	done chan struct{} // closed by Close; unblocks pending requests
	wg   sync.WaitGroup
}

// SuccessorGroupSize is the number of successors an overlay node keeps.
const SuccessorGroupSize = 3

// NewNode binds a node to a UDP address ("127.0.0.1:0" picks a free
// port) and starts its receive loop.
func NewNode(id ident.ID, bind string) (*Node, error) {
	tr, err := netem.ListenUDP(bind)
	if err != nil {
		return nil, fmt.Errorf("overlay: %w", err)
	}
	return NewNodeTransport(id, tr), nil
}

// NewNodeTransport binds a node to an existing transport (a netem
// endpoint, a fault-wrapped socket, …) and starts its receive loop. The
// node owns the transport and closes it on Close.
func NewNodeTransport(id ident.ID, tr netem.Transport) *Node {
	n := &Node{
		id:         id,
		tr:         tr,
		retry:      DefaultRetryPolicy(),
		pending:    make(map[uint64]chan *wire.Packet),
		known:      newPeerSet(),
		rng:        rand.New(rand.NewSource(int64(id.Low64()))),
		recentStab: make(map[uint64]struct{}),
		quar:       make(map[ident.ID]int),
		deliveries: make(chan Delivery, 64),
		done:       make(chan struct{}),
	}
	n.ins.Store(&Instruments{})
	n.wg.Add(1)
	go n.readLoop()
	return n
}

// ID returns the node's flat label.
func (n *Node) ID() ident.ID { return n.id }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.tr.LocalAddr() }

// Deliveries returns the channel of received data packets.
func (n *Node) Deliveries() <-chan Delivery { return n.deliveries }

// DroppedDeliveries returns how many data packets were discarded because
// the application was not draining Deliveries — the read loop never
// blocks on a slow consumer.
func (n *Node) DroppedDeliveries() uint64 { return n.dropCount.Load() }

// SetGate installs an admission gate consulted before any data packet is
// delivered locally; packets the gate rejects are dropped silently, as a
// default-off router would drop them (§5.3). Call before traffic starts.
func (n *Node) SetGate(g Gate) {
	n.mu.Lock()
	n.gate = g
	n.mu.Unlock()
}

// SetRetryPolicy replaces the retransmission schedule for subsequent
// control requests. Call before Join/StartStabilize.
func (n *Node) SetRetryPolicy(p RetryPolicy) {
	n.mu.Lock()
	n.retry = p
	n.mu.Unlock()
}

// Close shuts the node down.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	stop := n.stabilizeStop
	lstop := n.livenessStop
	n.mu.Unlock()
	close(n.done)
	if stop != nil {
		n.stabilizeOnce.Do(func() { close(stop) })
	}
	if lstop != nil {
		n.livenessOnce.Do(func() { close(lstop) })
	}
	err := n.tr.Close()
	n.wg.Wait()
	close(n.deliveries)
	return err
}

// succFailThreshold is how many missed stabilization replies declare the
// successor dead.
const succFailThreshold = 4

// predFailThreshold is how many stabilization rounds without a stabilize
// request from the predecessor clear the predecessor pointer. It is
// higher than succFailThreshold because the signal is indirect (we rely
// on the predecessor's own timer) and a false clear briefly opens the
// ring to a worse claimant.
const predFailThreshold = 8

// quarantineRounds is how many of this node's stabilize rounds an
// evicted-as-dead peer stays barred from hearsay re-adoption. It must
// outlast the slowest purge on live peers — a predecessor pointer naming
// the corpse survives predFailThreshold+1 of the peer's rounds — with
// margin for drift between timers. Quarantine never delays a live peer's
// return: its own packets lift it immediately.
const quarantineRounds = 3 * (predFailThreshold + 1)

// StartStabilize runs Chord-style stabilization every interval: the node
// asks its successor for the successor's current predecessor and adopts
// it when it falls between them, repairing rings assembled by concurrent
// joins; a successor that misses several consecutive rounds is declared
// dead and the successor group shifts down, exactly the failover role
// the paper assigns to successor-groups (§2.2). Each round also probes
// one remembered peer outside the successor group, so rings that
// diverged — most importantly the two sides of a healed partition —
// rediscover each other and merge (§3.3's repair, driven by probes
// instead of zero-ID floods). The paper's virtual nodes "piggyback
// probes on data packets to ensure this state is maintained correctly"
// (§4.1); a timer plays that role in the overlay.
func (n *Node) StartStabilize(interval time.Duration) {
	n.mu.Lock()
	if n.closed || n.stabilizeStop != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.stabilizeStop = stop
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				n.stabilizeOnceRound()
			}
		}
	}()
}

// noteStabLocked registers a stabilize request ID in the reply window,
// evicting the oldest entry past maxRecentStab. Caller holds n.mu.
func (n *Node) noteStabLocked(id uint64) {
	n.recentStab[id] = struct{}{}
	n.stabFIFO = append(n.stabFIFO, id)
	if len(n.stabFIFO) > maxRecentStab {
		delete(n.recentStab, n.stabFIFO[0])
		n.stabFIFO = n.stabFIFO[1:]
	}
}

// isRingNeighborLocked reports whether id is one of the node's live
// ring pointers — a member of the successor group or the predecessor.
// Caller holds n.mu.
func (n *Node) isRingNeighborLocked(id ident.ID) bool {
	if n.pred != nil && n.pred.ID == id {
		return true
	}
	return containsID(n.succs, id)
}

// learnLocked remembers a peer for repair probing. At the maxKnown
// bound an eviction victim is drawn from the node's seeded RNG —
// skipping the current successors and predecessor, which feed failure
// detection and repair probing and must never be silently forgotten
// while they are live ring neighbors. Caller holds n.mu.
func (n *Node) learnLocked(e entry) {
	if e.ID == n.id || e.Addr == "" {
		return
	}
	if !n.known.contains(e.ID) && n.known.len() >= maxKnown {
		victim, ok := n.known.pick(n.rng, n.isRingNeighborLocked)
		if !ok {
			return // everyone remembered is a ring neighbor; don't evict any of them
		}
		n.known.remove(victim.ID)
	}
	n.known.insert(e)
}

// gossipLocked returns the stabilize-request payload: the node's own
// entry followed by up to gossipFanout remembered peers sampled by the
// node's seeded RNG over the sorted peer index. Caller holds n.mu.
func (n *Node) gossipLocked(self entry) []entry {
	out := append(make([]entry, 0, 1+gossipFanout), self)
	return n.known.sampleInto(out, gossipFanout, n.rng, nil)
}

// pickProbeLocked selects a remembered peer outside the successor head
// to probe this round, drawn from the node's seeded RNG. Caller holds
// n.mu.
func (n *Node) pickProbeLocked() (entry, bool) {
	return n.known.pick(n.rng, func(id ident.ID) bool {
		return len(n.succs) > 0 && id == n.succs[0].ID
	})
}

// dropSuccessorLocked removes dead from the head of the successor
// group, shifting the group down (collapsing to a self-ring when it
// empties) and clearing a predecessor pointer naming the same peer. The
// dead peer stays in known so a later repair probe can find it again if
// it was only partitioned away. Caller holds n.mu and owns reporting:
// each removal is counted and logged exactly once, by whichever
// detector (stabilize timer or liveness probes) declared the death.
func (n *Node) dropSuccessorLocked(dead entry) {
	if len(n.succs) == 0 || n.succs[0].ID != dead.ID {
		return
	}
	n.succs = n.succs[1:]
	if len(n.succs) == 0 {
		n.succs = []entry{{ID: n.id, Addr: n.tr.LocalAddr()}}
	}
	if n.pred != nil && n.pred.ID == dead.ID {
		n.pred = nil
	}
	n.succMisses = 0
	n.lastSucc = nil
	n.quar[dead.ID] = quarantineRounds
}

func (n *Node) stabilizeOnceRound() {
	ins := n.ins.Load()
	ins.StabilizeRounds.Inc()
	n.mu.Lock()
	if n.closed || len(n.succs) == 0 {
		n.mu.Unlock()
		return
	}
	self := entry{ID: n.id, Addr: n.tr.LocalAddr()}
	// Age the quarantine: a verdict this node reached expires after
	// enough rounds for every live peer to have purged the corpse too.
	for id, left := range n.quar {
		if left <= 1 {
			delete(n.quar, id)
		} else {
			n.quar[id] = left - 1
		}
	}
	// A predecessor that has not sent us a stabilize request in many
	// rounds is dead or unreachable; clear it so a live claimant can be
	// adopted (a stale pointer would otherwise block better askers
	// forever — the Between test only admits improvements).
	var predCleared *entry
	if n.pred != nil && n.pred.ID != n.id {
		n.predMisses++
		if n.predMisses > predFailThreshold {
			p := *n.pred
			predCleared = &p
			n.pred = nil
			n.predMisses = 0
		}
	}
	var evicted *entry
	var succPkt *wire.Packet
	var succAddr string
	if n.succs[0].ID != n.id {
		// A successor that stays silent across several rounds is dead:
		// shift the group down (dropSuccessorLocked).
		if n.lastSucc == nil || *n.lastSucc != n.succs[0].ID {
			cur := n.succs[0].ID
			n.lastSucc = &cur
			n.succMisses = 0
		}
		n.succMisses++
		if n.succMisses > succFailThreshold {
			dead := n.succs[0]
			n.dropSuccessorLocked(dead)
			evicted = &dead
		}
		if succ := n.succs[0]; succ.ID != n.id {
			n.reqSeq++
			id := n.reqSeq
			n.noteStabLocked(id)
			succPkt = &wire.Packet{
				Type: wire.TypeStabilize, TTL: wire.DefaultTTL,
				Dst: succ.ID, Src: n.id, ReqID: id,
				Payload: encodeEntries(n.gossipLocked(self)),
			}
			succAddr = succ.Addr
		}
	}
	var probePkt *wire.Packet
	var probeAddr string
	if probe, ok := n.pickProbeLocked(); ok {
		n.reqSeq++
		id := n.reqSeq
		n.noteStabLocked(id)
		probePkt = &wire.Packet{
			Type: wire.TypeStabilize, TTL: wire.DefaultTTL,
			Dst: probe.ID, Src: n.id, ReqID: id,
			Payload: encodeEntries(n.gossipLocked(self)),
		}
		probeAddr = probe.Addr
	}
	n.mu.Unlock()
	if predCleared != nil {
		ins.PredClears.Inc()
		ins.Events.Info(eventPredCleared,
			"peer", predCleared.ID.Short(), "addr", predCleared.Addr, "reason", "stabilize-silence")
	}
	if evicted != nil {
		ins.SuccEvictions.Inc()
		ins.Events.Warn(eventSuccEvicted,
			"peer", evicted.ID.Short(), "addr", evicted.Addr, "reason", "stabilize-timeout")
	}
	if succPkt != nil {
		_ = n.send(succAddr, succPkt)
	}
	if probePkt != nil {
		_ = n.send(probeAddr, probePkt)
	}
}

//rofllint:coldpath stabilize control message, one per ring-maintenance round, not per forwarded packet
func (n *Node) handleStabilize(pkt *wire.Packet) {
	es, err := decodeEntries(pkt.Payload)
	if err != nil || len(es) < 1 {
		return
	}
	// The request carries the asker first, then gossiped peers.
	asker := es[0]
	n.mu.Lock()
	delete(n.quar, asker.ID) // the asker spoke for itself: proof of life
	for _, e := range es {
		n.learnLocked(e)
	}
	// The asker believes we are its successor; adopt it as predecessor
	// when it falls between our current predecessor and us. Hearing from
	// the current predecessor proves it alive.
	if asker.ID != n.id && (n.pred == nil || ident.Between(asker.ID, n.pred.ID, n.id)) {
		p := asker
		n.pred = &p
		n.predMisses = 0
	} else if n.pred != nil && asker.ID == n.pred.ID {
		n.predMisses = 0
	}
	// Symmetric repair: an asker that falls between us and our current
	// successor is a better successor — adopt it. This is how the
	// responder side of a repair probe re-links a merged ring.
	if len(n.succs) > 0 && asker.ID != n.id &&
		ident.Between(asker.ID, n.id, n.succs[0].ID) && asker.ID != n.succs[0].ID {
		n.succs = append([]entry{asker}, n.succs...)
		if len(n.succs) > SuccessorGroupSize {
			n.succs = n.succs[:SuccessorGroupSize]
		}
	}
	reply := make([]entry, 0, 1+len(n.succs))
	if n.pred != nil {
		reply = append(reply, *n.pred)
	} else {
		reply = append(reply, entry{ID: n.id, Addr: n.tr.LocalAddr()})
	}
	reply = append(reply, n.succs...)
	n.mu.Unlock()
	out := &wire.Packet{
		Type: wire.TypeStabilizeReply, TTL: wire.DefaultTTL,
		Dst: asker.ID, Src: n.id, ReqID: pkt.ReqID,
		Payload: encodeEntries(reply),
	}
	_ = n.send(asker.Addr, out)
}

//rofllint:coldpath stabilize control message, one per ring-maintenance round, not per forwarded packet
func (n *Node) handleStabilizeReply(pkt *wire.Packet, from string) {
	es, err := decodeEntries(pkt.Payload)
	if err != nil || len(es) < 1 {
		return
	}
	responder := entry{ID: pkt.Src, Addr: from}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.recentStab[pkt.ReqID]; !ok {
		return // stale, duplicated, or unsolicited reply
	}
	delete(n.recentStab, pkt.ReqID)
	delete(n.quar, pkt.Src) // the responder spoke for itself: proof of life
	n.learnLocked(responder)
	for _, e := range es {
		n.learnLocked(e)
	}
	if len(n.succs) == 0 {
		return
	}
	if pkt.Src == n.succs[0].ID {
		n.succMisses = 0 // the successor is alive
	}
	// Adopt any candidate — the responder itself or anyone it reported —
	// that falls between us and our current successor: the reply to a
	// normal stabilize tightens the ring exactly as before, and the
	// reply to a repair probe splices a foreign ring's nodes in.
	candidates := append([]entry{responder}, es...)
	for _, c := range candidates {
		if c.ID == n.id {
			continue
		}
		if _, dead := n.quar[c.ID]; dead {
			continue // hearsay cannot resurrect a peer this node saw die
		}
		if ident.Between(c.ID, n.id, n.succs[0].ID) && c.ID != n.succs[0].ID {
			n.succs = append([]entry{c}, n.succs...)
		}
	}
	// Refresh the successor group: head, then the responder and its own
	// successor list in order. Built in a fresh slice — appending into
	// n.succs' backing array would race with readers holding pointers
	// into it.
	group := append(make([]entry, 0, SuccessorGroupSize), n.succs[0])
	for _, e := range append([]entry{responder}, es[1:]...) {
		if len(group) >= SuccessorGroupSize {
			break
		}
		if e.ID == n.id || containsID(group, e.ID) {
			continue
		}
		if _, dead := n.quar[e.ID]; dead {
			continue // keep quarantined corpses out of the fallback group too
		}
		group = append(group, e)
	}
	n.succs = group
}

func containsID(es []entry, id ident.ID) bool {
	for _, e := range es {
		if e.ID == id {
			return true
		}
	}
	return false
}

// SuccessorGroup returns a snapshot of the successor group's
// identifiers.
func (n *Node) SuccessorGroup() []ident.ID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ident.ID, len(n.succs))
	for i, e := range n.succs {
		out[i] = e.ID
	}
	return out
}

// Successor returns the immediate successor (for tests and ring
// inspection).
func (n *Node) Successor() (ident.ID, string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		return ident.ID{}, "", false
	}
	return n.succs[0].ID, n.succs[0].Addr, true
}

// Predecessor returns the predecessor pointer.
func (n *Node) Predecessor() (ident.ID, string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred == nil {
		return ident.ID{}, "", false
	}
	return n.pred.ID, n.pred.Addr, true
}

// Bootstrap makes this node the first ring member: it is its own
// successor and predecessor.
func (n *Node) Bootstrap() {
	n.mu.Lock()
	defer n.mu.Unlock()
	self := entry{ID: n.id, Addr: n.tr.LocalAddr()}
	n.succs = []entry{self}
	n.pred = &self
}

// register allocates a request ID and its reply channel in the bounded
// in-flight table.
func (n *Node) register() (uint64, chan *wire.Packet, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, nil, ErrClosed
	}
	if len(n.pending) >= maxInFlight {
		return 0, nil, ErrBusy
	}
	n.reqSeq++
	id := n.reqSeq
	ch := make(chan *wire.Packet, 1)
	n.pending[id] = ch
	return id, ch, nil
}

func (n *Node) unregister(id uint64) {
	n.mu.Lock()
	delete(n.pending, id)
	n.mu.Unlock()
}

// resolve hands a reply to the matching in-flight request, if any. The
// packet is cloned before it crosses the channel: the read loop reuses
// its decode packet for the next datagram, but the waiting requester
// consumes the reply asynchronously.
//
//rofllint:coldpath request/reply resolution runs once per control round trip; the clone is the asynchronous-consumer contract
func (n *Node) resolve(pkt *wire.Packet) {
	n.mu.Lock()
	ch, ok := n.pending[pkt.ReqID]
	if ok {
		delete(n.pending, pkt.ReqID)
	}
	n.mu.Unlock()
	if ok {
		select {
		case ch <- pkt.Clone():
		default:
		}
	}
}

// request sends pkt to addr and waits for the reply carrying the same
// request ID, retransmitting with exponential backoff until the timeout
// expires. Retransmissions reuse the request ID, so the far side may
// process the request more than once — handlers are idempotent — and any
// one reply completes the exchange.
func (n *Node) request(addr string, pkt *wire.Packet, timeout time.Duration) (*wire.Packet, error) {
	ins := n.ins.Load()
	id, ch, err := n.register()
	if err != nil {
		return nil, err
	}
	defer n.unregister(id)
	pkt.ReqID = id
	n.mu.Lock()
	retry := n.retry
	n.mu.Unlock()
	deadline := time.Now().Add(timeout)
	backoff := retry.Initial
	if backoff <= 0 {
		backoff = timeout
	}
	// exhausted reports the retry budget running dry: the structured
	// event and counter every operator-facing timeout goes through.
	exhausted := func(attempt int) error {
		ins.RequestTimeouts.Inc()
		ins.Events.Warn(eventRequestTimeout,
			"type", pkt.Type.String(), "to", addr, "attempts", attempt, "timeout", timeout)
		return fmt.Errorf("%w after %d attempts", ErrTimeout, attempt)
	}
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			ins.Retransmits.Inc()
		}
		if err := n.send(addr, pkt); err != nil {
			return nil, err
		}
		wait := backoff
		if rem := time.Until(deadline); rem < wait {
			wait = rem
		}
		if wait <= 0 {
			return nil, exhausted(attempt)
		}
		t := time.NewTimer(wait)
		select {
		case reply := <-ch:
			t.Stop()
			return reply, nil
		case <-n.done:
			t.Stop()
			return nil, ErrClosed
		case <-t.C:
			if !time.Now().Before(deadline) {
				return nil, exhausted(attempt)
			}
			backoff = time.Duration(float64(backoff) * retry.Multiplier)
			if retry.Max > 0 && backoff > retry.Max {
				backoff = retry.Max
			}
		}
	}
}

// Join splices the node into the ring through any existing member: a
// join request is greedy-routed toward the node's own identifier; the
// predecessor that receives it replies with the successor set and
// notifies its old successor (§3.1). The request is retried with
// backoff until timeout — a single lost datagram no longer fails the
// join — and retries are idempotent at the predecessor.
func (n *Node) Join(via string, timeout time.Duration) error {
	pkt := &wire.Packet{
		Type: wire.TypeJoinRequest,
		TTL:  wire.DefaultTTL,
		Dst:  n.id,
		Src:  n.id,
		// Payload carries our address so the predecessor can answer and
		// the ring can point at us.
		Payload: encodeEntries([]entry{{ID: n.id, Addr: n.tr.LocalAddr()}}),
	}
	reply, err := n.request(via, pkt, timeout)
	if err != nil {
		return fmt.Errorf("overlay: join via %s: %w", via, err)
	}
	return n.applyJoinReply(reply)
}

func (n *Node) applyJoinReply(pkt *wire.Packet) error {
	es, err := decodeEntries(pkt.Payload)
	if err != nil || len(es) < 1 {
		return fmt.Errorf("overlay: malformed join reply")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	pred := es[0]
	for _, e := range es {
		n.learnLocked(e)
	}
	if pred.ID != n.id {
		n.pred = &pred
		n.predMisses = 0
	}
	succs := make([]entry, 0, SuccessorGroupSize)
	for _, e := range es[1:] {
		if e.ID == n.id {
			continue
		}
		succs = append(succs, e)
		if len(succs) >= SuccessorGroupSize {
			break
		}
	}
	if len(succs) == 0 {
		// Two-node ring: our predecessor is also our successor.
		succs = append(succs, pred)
	}
	n.succs = succs
	return nil
}

// Send greedy-routes a data payload toward dst.
func (n *Node) Send(dst ident.ID, payload []byte) error {
	return n.SendWithCapability(dst, payload, nil)
}

// SendWithCapability greedy-routes a data payload carrying a capability
// token in the wire header (§5.3): the destination's gate verifies it
// before delivering.
func (n *Node) SendWithCapability(dst ident.ID, payload, capability []byte) error {
	pkt := &wire.Packet{
		Type:       wire.TypeData,
		TTL:        wire.DefaultTTL,
		Dst:        dst,
		Src:        n.id,
		Capability: capability,
		Payload:    payload,
	}
	return n.forward(pkt)
}

// sendBufs pools marshal buffers across sends: every Transport
// implementation treats the payload as caller-owned once Send returns
// (UDP writes synchronously, the netem fabric and Fault wrapper copy),
// so the buffer can go straight back to the pool. This keeps the
// per-hop forward path allocation-free.
var sendBufs = sync.Pool{New: func() any { return new([]byte) }}

func (n *Node) send(addr string, pkt *wire.Packet) error {
	bp := sendBufs.Get().(*[]byte)
	buf, err := pkt.AppendTo((*bp)[:0])
	if err != nil {
		sendBufs.Put(bp)
		return fmt.Errorf("overlay: marshal: %w", err)
	}
	*bp = buf
	err = n.tr.Send(addr, buf) //rofllint:ignore hotpath transport boundary; Send is contractually synchronous or copying, and the UDP/netem implementations do not allocate per send
	sendBufs.Put(bp)
	if err != nil {
		return fmt.Errorf("overlay: sending to %s: %w", addr, err)
	}
	return nil
}

//rofllint:hotpath
func (n *Node) readLoop() {
	defer n.wg.Done()
	// The loop owns one receive buffer (when the transport can fill a
	// caller-provided one) and one decode packet, reused across
	// datagrams: handlers run synchronously and copy what they keep
	// (resolve clones, deliver copies the payload), so steady-state
	// receive costs no allocation.
	recvInto, buffered := n.tr.(netem.BufferedTransport)
	var recvBuf []byte
	if buffered {
		recvBuf = make([]byte, 64*1024) //rofllint:ignore hotpath one-time buffer allocated before the loop, reused for every datagram
	}
	var pkt wire.Packet
	for {
		var buf []byte
		var from string
		var err error
		if buffered {
			var ln int
			ln, from, err = recvInto.RecvInto(recvBuf) //rofllint:ignore hotpath transport boundary; RecvInto exists precisely so the loop's buffer is reused instead of allocated per datagram
			buf = recvBuf[:ln]
		} else {
			buf, from, err = n.tr.Recv() //rofllint:ignore hotpath transport boundary; the unbuffered Recv contract hands over a transport-owned slice
		}
		if err != nil {
			return // closed
		}
		if err := pkt.DecodeFromBytes(buf); err != nil {
			continue // drop malformed datagrams
		}
		n.handle(&pkt, from)
	}
}

//rofllint:hotpath
func (n *Node) handle(pkt *wire.Packet, from string) {
	switch pkt.Type {
	case wire.TypeData:
		if pkt.Dst == n.id {
			n.deliverLocal(pkt)
			return
		}
		if pkt.TTL == 0 {
			n.ins.Load().TTLDrops.Inc()
			return
		}
		pkt.TTL--
		_ = n.forward(pkt)
	case wire.TypeJoinRequest:
		n.handleJoin(pkt)
	case wire.TypeJoinReply:
		n.resolve(pkt)
	case wire.TypeAck:
		n.handleNotify(pkt)
	case wire.TypeStabilize:
		n.handleStabilize(pkt)
	case wire.TypeStabilizeReply:
		n.handleStabilizeReply(pkt, from)
	case wire.TypeLiveness:
		n.handleLivenessProbe(pkt, from)
	case wire.TypeLivenessReply:
		n.handleLivenessReply(pkt, from)
	}
}

// deliverLocal terminates a data packet at its destination: it runs the
// capability gate and hands the payload to the application. Ownership
// of the payload transfers to the consumer, so the copy here is the
// delivery contract, not forwarding overhead — the per-hop fast path
// never reaches this function.
//
//rofllint:coldpath delivery at the destination; the payload copy and gate callback are the ownership-transfer contract, off the per-hop forwarding path
func (n *Node) deliverLocal(pkt *wire.Packet) {
	n.mu.Lock()
	gate := n.gate
	n.mu.Unlock()
	if gate != nil {
		if err := gate(pkt.Src, pkt.Capability); err != nil {
			n.ins.Load().GateDrops.Inc()
			return // default-off: drop unauthorized traffic
		}
	}
	n.deliver(Delivery{Src: pkt.Src, Payload: append([]byte(nil), pkt.Payload...)})
}

// deliver hands a packet to the application without ever blocking the
// read loop: when the consumer is not draining, the packet is dropped
// and counted instead.
func (n *Node) deliver(d Delivery) {
	ins := n.ins.Load()
	select {
	case n.deliveries <- d:
		ins.Delivered.Inc()
	default:
		n.dropCount.Add(1)
		ins.DeliveryDrops.Inc()
	}
}

// forward implements greedy next-hop choice over the node's ring
// pointers: closest to pkt.Dst without overshooting our own position.
func (n *Node) forward(pkt *wire.Packet) error {
	return n.forwardExcept(pkt, n.id)
}

// forwardExcept is forward with one identifier barred as next hop (the
// node's own ID bars nothing extra). Join requests exclude the joiner
// itself: once the ring already points at a joiner whose join reply was
// lost, a retried request must reach the joiner's predecessor — which
// can answer — rather than short-circuiting to the joiner, which cannot.
func (n *Node) forwardExcept(pkt *wire.Packet, exclude ident.ID) error {
	n.mu.Lock()
	var best *entry
	var bestDist ident.ID
	consider := func(e *entry) {
		if e.ID == n.id || e.ID == exclude || !ident.Progress(n.id, pkt.Dst, e.ID) {
			return
		}
		d := e.ID.Distance(pkt.Dst)
		if best == nil || d.Cmp(bestDist) < 0 {
			best, bestDist = e, d
		}
	}
	for i := range n.succs {
		consider(&n.succs[i])
	}
	if n.pred != nil {
		consider(n.pred)
	}
	var bestAddr string
	if best != nil {
		bestAddr = best.Addr // copy before unlock: best aliases n.succs
	} else if e, ok := n.known.bestProgress(n.id, pkt.Dst, exclude); ok {
		// No ring pointer makes progress — before dropping, consult the
		// sorted known index for the closest remembered peer that does
		// (an O(log n) lookup). This is the pointer-cache role §2.2
		// assigns to opportunistically learned state: at worst the peer
		// is dead and the packet is lost exactly as it would have been
		// dropped here; at best it short-cuts to the destination's ring
		// segment during churn.
		bestAddr = e.Addr
	}
	n.mu.Unlock()
	ins := n.ins.Load()
	if bestAddr == "" {
		// We are the destination's predecessor and it is not present:
		// drop (the overlay has no parked ephemerals).
		ins.NoRouteDrops.Inc()
		return nil
	}
	ins.Forwards.Inc()
	return n.send(bestAddr, pkt)
}

// handleJoin runs at every node a join request traverses. If the joining
// identifier falls between us and our successor, we are its predecessor:
// reply with the successor set, adopt the joiner as our new successor,
// and notify the old successor to update its predecessor. Otherwise
// forward greedily (never to the joiner itself). The splice is
// idempotent: a retransmitted request from a joiner we already adopted
// produces the same reply again and mutates nothing.
//
//rofllint:coldpath join control message, one per membership change; the splice, reply marshal, and journal entry are not per-packet work
func (n *Node) handleJoin(pkt *wire.Packet) {
	src, err := decodeEntries(pkt.Payload)
	if err != nil || len(src) != 1 {
		return
	}
	joiner := src[0]
	if joiner.ID == n.id {
		return // our own retried join found its way back; only the predecessor can answer
	}
	n.mu.Lock()
	if len(n.succs) == 0 {
		n.mu.Unlock()
		return // not bootstrapped yet
	}
	delete(n.quar, joiner.ID) // a joiner is alive by definition
	n.learnLocked(joiner)
	succ := n.succs[0]
	isPred := succ.ID == n.id || ident.Between(joiner.ID, n.id, succ.ID)
	if !isPred {
		n.mu.Unlock()
		if pkt.TTL == 0 {
			return
		}
		pkt.TTL--
		_ = n.forwardExcept(pkt, joiner.ID)
		return
	}
	// Splice: joiner inherits our successor set; we adopt the joiner.
	reply := make([]entry, 0, SuccessorGroupSize+1)
	reply = append(reply, entry{ID: n.id, Addr: n.tr.LocalAddr()}) // predecessor first
	reply = append(reply, n.succs...)
	newSuccs := make([]entry, 0, SuccessorGroupSize)
	newSuccs = append(newSuccs, joiner)
	for _, e := range n.succs {
		if len(newSuccs) >= SuccessorGroupSize {
			break
		}
		if e.ID != joiner.ID && e.ID != n.id {
			newSuccs = append(newSuccs, e)
		}
	}
	n.succs = newSuccs
	if succ.ID == n.id {
		// We were alone; in a two-node ring the joiner is also our
		// predecessor.
		n.pred = &joiner
		n.predMisses = 0
	}
	oldSucc := succ
	n.mu.Unlock()

	ins := n.ins.Load()
	ins.JoinsServed.Inc()
	ins.Events.Info(eventJoinServed, "joiner", joiner.ID.Short(), "addr", joiner.Addr)
	out := &wire.Packet{
		Type: wire.TypeJoinReply, TTL: wire.DefaultTTL,
		Dst: joiner.ID, Src: n.id, ReqID: pkt.ReqID,
		Payload: encodeEntries(reply),
	}
	_ = n.send(joiner.Addr, out)
	// Tell the old successor its predecessor changed. On a retransmitted
	// request the old successor is the joiner itself — nothing to notify.
	if oldSucc.ID != n.id && oldSucc.ID != joiner.ID {
		notify := &wire.Packet{
			Type: wire.TypeAck, TTL: wire.DefaultTTL,
			Dst: oldSucc.ID, Src: n.id,
			Payload: encodeEntries([]entry{joiner}),
		}
		_ = n.send(oldSucc.Addr, notify)
	}
}

//rofllint:coldpath ring-splice notification, one per membership change, not per forwarded packet
func (n *Node) handleNotify(pkt *wire.Packet) {
	es, err := decodeEntries(pkt.Payload)
	if err != nil || len(es) != 1 {
		return
	}
	p := es[0]
	if p.ID == n.id {
		return // a stale notification must never make us our own predecessor
	}
	n.mu.Lock()
	n.learnLocked(p)
	// Adopt the notified predecessor only when it improves on the
	// current one — unconditional adoption would let stale notifications
	// from concurrent joins regress the ring.
	if n.pred == nil || n.pred.ID == n.id || ident.Between(p.ID, n.pred.ID, n.id) {
		n.pred = &p
		n.predMisses = 0
	}
	n.mu.Unlock()
}

// Ring returns the node's view of the ring, for debugging: predecessor,
// self, then successors.
func (n *Node) Ring() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	if n.pred != nil {
		out = append(out, "pred:"+n.pred.ID.Short())
	}
	out = append(out, "self:"+n.id.Short())
	for _, s := range n.succs {
		out = append(out, "succ:"+s.ID.Short())
	}
	return out
}
