// Package overlay runs the intradomain ROFL protocol over real UDP
// sockets: nodes carry flat labels, splice themselves into a successor
// ring by greedy-routing join requests (paper §3.1), and forward data
// packets to the closest identifier that does not overshoot the
// destination (Algorithm 2). It demonstrates that the state machines the
// simulator measures also run outside it, using the binary wire format
// of package wire on the wire.
//
// The overlay is deliberately one level (no physical-topology source
// routes — every node can reach every other over UDP, playing the role
// the OSPF substrate plays inside an ISP).
package overlay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rofl/internal/ident"
	"rofl/internal/wire"
)

// ErrTimeout reports a request that received no answer in time.
var ErrTimeout = errors.New("overlay: request timed out")

// entry pairs an identifier with the UDP address hosting it.
type entry struct {
	ID   ident.ID
	Addr string
}

// encodeEntries serializes pointer entries into a packet payload:
// count(2) then per entry id(16) addrLen(2) addr.
func encodeEntries(es []entry) []byte {
	buf := binary.BigEndian.AppendUint16(nil, uint16(len(es)))
	for _, e := range es {
		buf = append(buf, e.ID[:]...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Addr)))
		buf = append(buf, e.Addr...)
	}
	return buf
}

func decodeEntries(b []byte) ([]entry, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("overlay: short entry list")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	out := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < ident.Size+2 {
			return nil, fmt.Errorf("overlay: truncated entry %d", i)
		}
		var e entry
		copy(e.ID[:], b[:ident.Size])
		b = b[ident.Size:]
		alen := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < alen {
			return nil, fmt.Errorf("overlay: truncated address %d", i)
		}
		e.Addr = string(b[:alen])
		b = b[alen:]
		out = append(out, e)
	}
	return out, nil
}

// Delivery is handed to the application when a data packet arrives.
type Delivery struct {
	Src     ident.ID
	Payload []byte
}

// Gate decides whether a data packet may be delivered to the local
// application — the hook ROFL's default-off / capability admission
// (paper §5.3) plugs into. The capability bytes come straight from the
// packet's wire header.
type Gate func(src ident.ID, capability []byte) error

// Node is one overlay participant: a flat label bound to a UDP socket.
type Node struct {
	id   ident.ID
	conn *net.UDPConn

	mu     sync.Mutex
	succs  []entry // successor group, ascending from id
	pred   *entry
	closed bool

	deliveries chan Delivery
	joined     chan struct{} // closed when a join reply arrives
	joinOnce   sync.Once
	gate       Gate

	stabilizeStop chan struct{}
	stabilizeOnce sync.Once
	// succMisses counts consecutive stabilization rounds without a reply
	// from the current successor; past a threshold the successor is
	// declared dead and the group shifts down (§2.2 successor-groups).
	succMisses int

	wg sync.WaitGroup
}

// SuccessorGroupSize is the number of successors an overlay node keeps.
const SuccessorGroupSize = 3

// NewNode binds a node to a UDP address ("127.0.0.1:0" picks a free
// port) and starts its receive loop.
func NewNode(id ident.ID, bind string) (*Node, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("overlay: resolving %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("overlay: listening: %w", err)
	}
	n := &Node{
		id:         id,
		conn:       conn,
		deliveries: make(chan Delivery, 64),
		joined:     make(chan struct{}),
	}
	n.wg.Add(1)
	go n.readLoop()
	return n, nil
}

// ID returns the node's flat label.
func (n *Node) ID() ident.ID { return n.id }

// Addr returns the node's UDP address string.
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// Deliveries returns the channel of received data packets.
func (n *Node) Deliveries() <-chan Delivery { return n.deliveries }

// SetGate installs an admission gate consulted before any data packet is
// delivered locally; packets the gate rejects are dropped silently, as a
// default-off router would drop them (§5.3). Call before traffic starts.
func (n *Node) SetGate(g Gate) {
	n.mu.Lock()
	n.gate = g
	n.mu.Unlock()
}

// Close shuts the node down.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	stop := n.stabilizeStop
	n.mu.Unlock()
	if stop != nil {
		n.stabilizeOnce.Do(func() { close(stop) })
	}
	err := n.conn.Close()
	n.wg.Wait()
	close(n.deliveries)
	return err
}

// succFailThreshold is how many missed stabilization replies declare the
// successor dead.
const succFailThreshold = 4

// StartStabilize runs Chord-style stabilization every interval: the node
// asks its successor for the successor's current predecessor and adopts
// it when it falls between them, repairing rings assembled by concurrent
// joins; a successor that misses several consecutive rounds is declared
// dead and the successor group shifts down, exactly the failover role
// the paper assigns to successor-groups (§2.2). The paper's virtual
// nodes "piggyback probes on data packets to ensure this state is
// maintained correctly" (§4.1); a timer plays that role in the overlay.
func (n *Node) StartStabilize(interval time.Duration) {
	n.mu.Lock()
	if n.closed || n.stabilizeStop != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.stabilizeStop = stop
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				n.stabilizeOnceRound()
			}
		}
	}()
}

func (n *Node) stabilizeOnceRound() {
	n.mu.Lock()
	if len(n.succs) == 0 || n.succs[0].ID == n.id {
		n.mu.Unlock()
		return
	}
	// A successor that stays silent across several rounds is dead: shift
	// the group down. If the group empties, collapse to a self-ring and
	// wait for someone to find us.
	n.succMisses++
	if n.succMisses > succFailThreshold {
		dead := n.succs[0]
		n.succs = n.succs[1:]
		if len(n.succs) == 0 {
			self := entry{ID: n.id, Addr: n.Addr()}
			n.succs = []entry{self}
		}
		if n.pred != nil && n.pred.ID == dead.ID {
			n.pred = nil
		}
		n.succMisses = 0
	}
	succ := n.succs[0]
	self := entry{ID: n.id, Addr: n.Addr()}
	n.mu.Unlock()
	if succ.ID == n.id {
		return
	}
	pkt := &wire.Packet{
		Type: wire.TypeStabilize, TTL: wire.DefaultTTL,
		Dst: succ.ID, Src: n.id,
		Payload: encodeEntries([]entry{self}),
	}
	_ = n.send(succ.Addr, pkt)
}

func (n *Node) handleStabilize(pkt *wire.Packet) {
	es, err := decodeEntries(pkt.Payload)
	if err != nil || len(es) != 1 {
		return
	}
	asker := es[0]
	n.mu.Lock()
	// The asker believes we are its successor; adopt it as predecessor
	// when it falls between our current predecessor and us.
	if n.pred == nil || ident.Between(asker.ID, n.pred.ID, n.id) {
		p := asker
		n.pred = &p
	}
	reply := make([]entry, 0, 1+len(n.succs))
	if n.pred != nil {
		reply = append(reply, *n.pred)
	} else {
		reply = append(reply, entry{ID: n.id, Addr: n.Addr()})
	}
	reply = append(reply, n.succs...)
	n.mu.Unlock()
	out := &wire.Packet{
		Type: wire.TypeStabilizeReply, TTL: wire.DefaultTTL,
		Dst: asker.ID, Src: n.id,
		Payload: encodeEntries(reply),
	}
	_ = n.send(asker.Addr, out)
}

func (n *Node) handleStabilizeReply(pkt *wire.Packet) {
	es, err := decodeEntries(pkt.Payload)
	if err != nil || len(es) < 1 {
		return
	}
	succPred := es[0]
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		return
	}
	if pkt.Src == n.succs[0].ID {
		n.succMisses = 0 // the successor is alive
	}
	// If our successor knows a predecessor between us and it, that node
	// is our true successor.
	if succPred.ID != n.id && ident.BetweenOpen(succPred.ID, n.id, n.succs[0].ID) {
		n.succs = append([]entry{succPred}, n.succs...)
	}
	// Refresh the successor group from the successor's own list.
	group := n.succs[:1]
	for _, e := range es[1:] {
		if len(group) >= SuccessorGroupSize {
			break
		}
		if e.ID != n.id && e.ID != group[len(group)-1].ID {
			group = append(group, e)
		}
	}
	n.succs = group
}

// SuccessorGroup returns a snapshot of the successor group's
// identifiers.
func (n *Node) SuccessorGroup() []ident.ID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ident.ID, len(n.succs))
	for i, e := range n.succs {
		out[i] = e.ID
	}
	return out
}

// Successor returns the immediate successor (for tests and ring
// inspection).
func (n *Node) Successor() (ident.ID, string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		return ident.ID{}, "", false
	}
	return n.succs[0].ID, n.succs[0].Addr, true
}

// Predecessor returns the predecessor pointer.
func (n *Node) Predecessor() (ident.ID, string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred == nil {
		return ident.ID{}, "", false
	}
	return n.pred.ID, n.pred.Addr, true
}

// Bootstrap makes this node the first ring member: it is its own
// successor and predecessor.
func (n *Node) Bootstrap() {
	n.mu.Lock()
	defer n.mu.Unlock()
	self := entry{ID: n.id, Addr: n.Addr()}
	n.succs = []entry{self}
	n.pred = &self
}

// Join splices the node into the ring through any existing member: a
// join request is greedy-routed toward the node's own identifier; the
// predecessor that receives it replies with the successor set and
// notifies its old successor (§3.1).
func (n *Node) Join(via string, timeout time.Duration) error {
	pkt := &wire.Packet{
		Type: wire.TypeJoinRequest,
		TTL:  wire.DefaultTTL,
		Dst:  n.id,
		Src:  n.id,
		// Payload carries our address so the predecessor can answer and
		// the ring can point at us.
		Payload: encodeEntries([]entry{{ID: n.id, Addr: n.Addr()}}),
	}
	if err := n.send(via, pkt); err != nil {
		return err
	}
	select {
	case <-n.joined:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("%w: join via %s", ErrTimeout, via)
	}
}

// Send greedy-routes a data payload toward dst.
func (n *Node) Send(dst ident.ID, payload []byte) error {
	return n.SendWithCapability(dst, payload, nil)
}

// SendWithCapability greedy-routes a data payload carrying a capability
// token in the wire header (§5.3): the destination's gate verifies it
// before delivering.
func (n *Node) SendWithCapability(dst ident.ID, payload, capability []byte) error {
	pkt := &wire.Packet{
		Type:       wire.TypeData,
		TTL:        wire.DefaultTTL,
		Dst:        dst,
		Src:        n.id,
		Capability: capability,
		Payload:    payload,
	}
	return n.forward(pkt)
}

func (n *Node) send(addr string, pkt *wire.Packet) error {
	buf, err := pkt.Marshal()
	if err != nil {
		return fmt.Errorf("overlay: marshal: %w", err)
	}
	udp, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("overlay: resolving %q: %w", addr, err)
	}
	if _, err := n.conn.WriteToUDP(buf, udp); err != nil {
		return fmt.Errorf("overlay: sending to %s: %w", addr, err)
	}
	return nil
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		var pkt wire.Packet
		if err := pkt.DecodeFromBytes(buf[:sz]); err != nil {
			continue // drop malformed datagrams
		}
		n.handle(&pkt)
	}
}

func (n *Node) handle(pkt *wire.Packet) {
	switch pkt.Type {
	case wire.TypeData:
		if pkt.Dst == n.id {
			n.mu.Lock()
			gate := n.gate
			n.mu.Unlock()
			if gate != nil {
				if err := gate(pkt.Src, pkt.Capability); err != nil {
					return // default-off: drop unauthorized traffic
				}
			}
			n.deliver(Delivery{Src: pkt.Src, Payload: append([]byte(nil), pkt.Payload...)})
			return
		}
		if pkt.TTL == 0 {
			return
		}
		pkt.TTL--
		_ = n.forward(pkt)
	case wire.TypeJoinRequest:
		n.handleJoin(pkt)
	case wire.TypeJoinReply:
		n.handleJoinReply(pkt)
	case wire.TypeAck:
		n.handleNotify(pkt)
	case wire.TypeStabilize:
		n.handleStabilize(pkt)
	case wire.TypeStabilizeReply:
		n.handleStabilizeReply(pkt)
	}
}

func (n *Node) deliver(d Delivery) {
	select {
	case n.deliveries <- d:
	default:
		// Application is not draining; drop rather than block the loop.
	}
}

// forward implements greedy next-hop choice over the node's ring
// pointers: closest to pkt.Dst without overshooting our own position.
func (n *Node) forward(pkt *wire.Packet) error {
	n.mu.Lock()
	var best *entry
	var bestDist ident.ID
	consider := func(e *entry) {
		if e.ID == n.id || !ident.Progress(n.id, pkt.Dst, e.ID) {
			return
		}
		d := e.ID.Distance(pkt.Dst)
		if best == nil || d.Cmp(bestDist) < 0 {
			best, bestDist = e, d
		}
	}
	for i := range n.succs {
		consider(&n.succs[i])
	}
	if n.pred != nil {
		consider(n.pred)
	}
	n.mu.Unlock()
	if best == nil {
		// We are the destination's predecessor and it is not present:
		// drop (the overlay has no parked ephemerals).
		return nil
	}
	return n.send(best.Addr, pkt)
}

// handleJoin runs at every node a join request traverses. If the joining
// identifier falls between us and our successor, we are its predecessor:
// reply with the successor set, adopt the joiner as our new successor,
// and notify the old successor to update its predecessor. Otherwise
// forward greedily.
func (n *Node) handleJoin(pkt *wire.Packet) {
	src, err := decodeEntries(pkt.Payload)
	if err != nil || len(src) != 1 {
		return
	}
	joiner := src[0]
	n.mu.Lock()
	if len(n.succs) == 0 {
		n.mu.Unlock()
		return // not bootstrapped yet
	}
	succ := n.succs[0]
	isPred := succ.ID == n.id || ident.Between(joiner.ID, n.id, succ.ID)
	if !isPred {
		n.mu.Unlock()
		if pkt.TTL == 0 {
			return
		}
		pkt.TTL--
		_ = n.forward(pkt)
		return
	}
	// Splice: joiner inherits our successor set; we adopt the joiner.
	reply := make([]entry, 0, SuccessorGroupSize+1)
	reply = append(reply, entry{ID: n.id, Addr: n.Addr()}) // predecessor first
	reply = append(reply, n.succs...)
	newSuccs := make([]entry, 0, SuccessorGroupSize)
	newSuccs = append(newSuccs, joiner)
	for _, e := range n.succs {
		if len(newSuccs) >= SuccessorGroupSize {
			break
		}
		if e.ID != joiner.ID && e.ID != n.id {
			newSuccs = append(newSuccs, e)
		}
	}
	n.succs = newSuccs
	if succ.ID == n.id {
		// We were alone; in a two-node ring the joiner is also our
		// predecessor.
		n.pred = &joiner
	}
	oldSucc := succ
	n.mu.Unlock()

	out := &wire.Packet{
		Type: wire.TypeJoinReply, TTL: wire.DefaultTTL,
		Dst: joiner.ID, Src: n.id,
		Payload: encodeEntries(reply),
	}
	_ = n.send(joiner.Addr, out)
	// Tell the old successor its predecessor changed.
	if oldSucc.ID != n.id {
		notify := &wire.Packet{
			Type: wire.TypeAck, TTL: wire.DefaultTTL,
			Dst: oldSucc.ID, Src: n.id,
			Payload: encodeEntries([]entry{joiner}),
		}
		_ = n.send(oldSucc.Addr, notify)
	}
}

func (n *Node) handleJoinReply(pkt *wire.Packet) {
	es, err := decodeEntries(pkt.Payload)
	if err != nil || len(es) < 1 {
		return
	}
	n.mu.Lock()
	pred := es[0]
	n.pred = &pred
	succs := make([]entry, 0, SuccessorGroupSize)
	for _, e := range es[1:] {
		if e.ID == n.id {
			continue
		}
		succs = append(succs, e)
		if len(succs) >= SuccessorGroupSize {
			break
		}
	}
	if len(succs) == 0 {
		// Two-node ring: our predecessor is also our successor.
		succs = append(succs, pred)
	}
	n.succs = succs
	n.mu.Unlock()
	n.joinOnce.Do(func() { close(n.joined) })
}

func (n *Node) handleNotify(pkt *wire.Packet) {
	es, err := decodeEntries(pkt.Payload)
	if err != nil || len(es) != 1 {
		return
	}
	p := es[0]
	n.mu.Lock()
	// Adopt the notified predecessor only when it improves on the
	// current one — unconditional adoption would let stale notifications
	// from concurrent joins regress the ring.
	if n.pred == nil || n.pred.ID == n.id || ident.Between(p.ID, n.pred.ID, n.id) {
		n.pred = &p
	}
	n.mu.Unlock()
}

// Ring returns the node's view of the ring, for debugging: predecessor,
// self, then successors.
func (n *Node) Ring() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	if n.pred != nil {
		out = append(out, "pred:"+n.pred.ID.Short())
	}
	out = append(out, "self:"+n.id.Short())
	for _, s := range n.succs {
		out = append(out, "succ:"+s.ID.Short())
	}
	return out
}
