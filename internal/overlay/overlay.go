// Package overlay runs the intradomain ROFL protocol over a datagram
// transport. All protocol logic — ring maintenance, greedy forwarding,
// failure eviction, quarantine, gossip, liveness — lives in the pure
// state machine of internal/proto; this package is the live driver
// around one proto.Core: it owns the lock, the UDP/netem read loop, the
// retry and stabilization timers, the application delivery channel, and
// the telemetry wiring, feeding decoded packets and timer ticks into
// the core and executing the actions it emits on a netem.Transport.
//
// The transport is abstracted behind netem.Transport: live deployments
// bind real UDP sockets, while tests drive the same node code through
// netem's deterministic fault-injecting fabric. The protocol is hardened
// accordingly: control requests (join, stabilize) carry request IDs and
// are retried with exponential backoff, handlers are idempotent under
// retransmission, stale replies are discarded, evicted peers are
// remembered and probed so rings split by a partition re-merge after it
// heals, and delivery to the application never blocks the read loop.
//
// The overlay is deliberately one level (no physical-topology source
// routes — every node can reach every other over the transport, playing
// the role the OSPF substrate plays inside an ISP).
package overlay

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rofl/internal/ident"
	"rofl/internal/netem"
	"rofl/internal/proto"
	"rofl/internal/telemetry"
	"rofl/internal/wire"
)

// ErrTimeout reports a request that received no answer in time.
var ErrTimeout = errors.New("overlay: request timed out")

// ErrClosed reports an operation on a closed node.
var ErrClosed = errors.New("overlay: node closed")

// ErrBusy reports that the in-flight request table is full.
var ErrBusy = errors.New("overlay: too many in-flight requests")

// Delivery is handed to the application when a data packet arrives.
type Delivery struct {
	Src     ident.ID
	Payload []byte
}

// Gate decides whether a data packet may be delivered to the local
// application — the hook ROFL's default-off / capability admission
// (paper §5.3) plugs into. The capability bytes come straight from the
// packet's wire header.
type Gate func(src ident.ID, capability []byte) error

// RetryPolicy shapes the retransmission schedule of control requests:
// the first retransmit fires after Initial, each subsequent wait is
// multiplied by Multiplier and capped at Max, until the caller's
// deadline expires.
type RetryPolicy struct {
	Initial    time.Duration
	Max        time.Duration
	Multiplier float64
}

// DefaultRetryPolicy is tuned for LAN/loopback latencies: fast first
// retry, doubling to a 2s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Initial: 120 * time.Millisecond, Max: 2 * time.Second, Multiplier: 2}
}

// maxInFlight bounds the request table; register past this fails with
// ErrBusy instead of growing without limit.
const maxInFlight = 64

// SuccessorGroupSize is the number of successors an overlay node keeps.
const SuccessorGroupSize = proto.SuccessorGroupSize

// Config configures a Node. The zero value is usable: it binds a UDP
// socket on a random loopback port, uses the default retry policy, no
// gate, a 64-entry delivery buffer, no telemetry, and starts neither
// maintenance loop (call Bootstrap or Join, then rely on Stabilize
// having been set, or start loops explicitly).
type Config struct {
	// Bind is the UDP listen address ("127.0.0.1:0" picks a free port).
	// Mutually exclusive with Transport; when both are empty, Bind
	// defaults to "127.0.0.1:0".
	Bind string
	// Transport attaches the node to an existing transport (a netem
	// endpoint, a fault-wrapped socket, …). The node owns it and closes
	// it on Close.
	Transport netem.Transport
	// Retry shapes control-request retransmission; the zero value means
	// DefaultRetryPolicy().
	Retry RetryPolicy
	// Gate, when set, is consulted before any data packet is delivered
	// locally; packets it rejects are dropped silently, as a default-off
	// router would drop them (§5.3).
	Gate Gate
	// Stabilize, when positive, starts the ring-maintenance loop at that
	// interval as soon as the node is constructed. Zero leaves it off
	// (StartStabilize can start it later).
	Stabilize time.Duration
	// EnableLiveness starts the BFD-style successor prober with the
	// Liveness parameters (zero fields take defaults).
	EnableLiveness bool
	// Liveness shapes the failure detector; only consulted when
	// EnableLiveness is set (StartLiveness can still start it later).
	Liveness LivenessParams
	// DeliveryBuffer is the application channel depth; zero means 64.
	DeliveryBuffer int
	// Registry, when set, wires the node's counters into it at
	// construction (SetTelemetry can rewire later).
	Registry *telemetry.Registry
	// Events, when set, receives the node's structured events.
	Events *telemetry.EventLog
}

// Node is one overlay participant: a flat label bound to a transport,
// driving a proto.Core.
type Node struct {
	id ident.ID
	tr netem.Transport

	// mu serializes access to the core (which is not goroutine-safe by
	// design) and the driver state next to it.
	mu     sync.Mutex
	core   *proto.Core
	closed bool
	retry  RetryPolicy
	// gate is read on every local delivery; it lives outside mu (like
	// ins) so the delivery path never takes a second lock.
	gate atomic.Pointer[Gate]
	// pending maps an outstanding join request ID to the waiter's
	// completion channel; bounded by maxInFlight.
	pending map[uint64]chan error

	deliveries chan Delivery
	dropCount  atomic.Uint64 // deliveries dropped on a full channel

	// ins is the telemetry wiring, swapped atomically so SetTelemetry
	// is safe against a running read loop. Never nil: an unwired node
	// carries a zero Instruments (all handles nil and nil-safe), which
	// keeps the hot path branch-free and allocation-free.
	ins atomic.Pointer[Instruments]

	stabilizeStop chan struct{}
	stabilizeOnce sync.Once
	livenessStop  chan struct{}
	livenessOnce  sync.Once

	done chan struct{} // closed by Close; unblocks pending requests
	wg   sync.WaitGroup
}

// New builds a node from cfg and starts its receive loop (plus the
// stabilize and liveness loops when the config asks for them).
func New(id ident.ID, cfg Config) (*Node, error) {
	tr := cfg.Transport
	if tr != nil && cfg.Bind != "" {
		return nil, fmt.Errorf("overlay: config sets both Bind and Transport")
	}
	if tr == nil {
		bind := cfg.Bind
		if bind == "" {
			bind = "127.0.0.1:0"
		}
		var err error
		tr, err = netem.ListenUDP(bind)
		if err != nil {
			return nil, fmt.Errorf("overlay: %w", err)
		}
	}
	retry := cfg.Retry
	if retry == (RetryPolicy{}) {
		retry = DefaultRetryPolicy()
	}
	depth := cfg.DeliveryBuffer
	if depth <= 0 {
		depth = 64
	}
	n := &Node{
		id:         id,
		tr:         tr,
		core:       proto.New(proto.Config{ID: id, Addr: tr.LocalAddr(), Liveness: cfg.Liveness}),
		retry:      retry,
		pending:    make(map[uint64]chan error),
		deliveries: make(chan Delivery, depth),
		done:       make(chan struct{}),
	}
	if cfg.Gate != nil {
		g := cfg.Gate
		n.gate.Store(&g)
	}
	n.ins.Store(&Instruments{})
	if cfg.Registry != nil || cfg.Events != nil {
		n.SetTelemetry(cfg.Registry, cfg.Events)
	}
	n.wg.Add(1)
	go n.readLoop()
	if cfg.Stabilize > 0 {
		n.StartStabilize(cfg.Stabilize)
	}
	if cfg.EnableLiveness {
		n.StartLiveness(cfg.Liveness)
	}
	return n, nil
}

// NewNode binds a node to a UDP address ("127.0.0.1:0" picks a free
// port) and starts its receive loop.
//
// Deprecated: use New with Config{Bind: bind}.
func NewNode(id ident.ID, bind string) (*Node, error) {
	return New(id, Config{Bind: bind})
}

// NewNodeTransport binds a node to an existing transport (a netem
// endpoint, a fault-wrapped socket, …) and starts its receive loop. The
// node owns the transport and closes it on Close.
//
// Deprecated: use New with Config{Transport: tr}.
func NewNodeTransport(id ident.ID, tr netem.Transport) *Node {
	n, err := New(id, Config{Transport: tr})
	if err != nil {
		// Unreachable: with a non-nil transport New never fails.
		panic(err)
	}
	return n
}

// ID returns the node's flat label.
func (n *Node) ID() ident.ID { return n.id }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.tr.LocalAddr() }

// Deliveries returns the channel of received data packets.
func (n *Node) Deliveries() <-chan Delivery { return n.deliveries }

// DroppedDeliveries returns how many data packets were discarded because
// the application was not draining Deliveries — the read loop never
// blocks on a slow consumer.
func (n *Node) DroppedDeliveries() uint64 { return n.dropCount.Load() }

// SetGate installs an admission gate consulted before any data packet is
// delivered locally. Call before traffic starts.
//
// Deprecated: set Config.Gate at construction.
func (n *Node) SetGate(g Gate) {
	if g == nil {
		n.gate.Store(nil)
		return
	}
	n.gate.Store(&g)
}

// SetRetryPolicy replaces the retransmission schedule for subsequent
// control requests. Call before Join.
//
// Deprecated: set Config.Retry at construction.
func (n *Node) SetRetryPolicy(p RetryPolicy) {
	n.mu.Lock()
	n.retry = p
	n.mu.Unlock()
}

// Close shuts the node down: stops the maintenance loops, closes the
// transport (unblocking the read loop), waits for every driver
// goroutine, then closes the delivery channel. Idempotent; any timer or
// liveness event that fires after Close is a no-op.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	stop := n.stabilizeStop
	lstop := n.livenessStop
	n.mu.Unlock()
	close(n.done)
	if stop != nil {
		n.stabilizeOnce.Do(func() { close(stop) })
	}
	if lstop != nil {
		n.livenessOnce.Do(func() { close(lstop) })
	}
	err := n.tr.Close()
	n.wg.Wait()
	close(n.deliveries)
	return err
}

// StartStabilize runs the core's stabilization round every interval
// (see proto.Core.TickStabilize for the protocol). Idempotent; stops at
// Close.
//
// Deprecated: set Config.Stabilize at construction.
func (n *Node) StartStabilize(interval time.Duration) {
	n.mu.Lock()
	if n.closed || n.stabilizeStop != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.stabilizeStop = stop
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				n.stabilizeOnceRound()
			}
		}
	}()
}

// actsPool recycles Actions buffers across driver entry points (sends,
// ticks, joins); a recycled buffer keeps its slice capacity, so the
// steady-state data path allocates nothing.
var actsPool = sync.Pool{New: func() any { return new(proto.Actions) }}

func getActs() *proto.Actions  { return actsPool.Get().(*proto.Actions) }
func putActs(a *proto.Actions) { a.Reset(); actsPool.Put(a) }

// stabilizeOnceRound feeds one stabilize tick into the core and
// executes what it emits. A tick that fires after Close is a no-op.
func (n *Node) stabilizeOnceRound() {
	a := getActs()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		putActs(a)
		return
	}
	n.core.TickStabilize(a)
	n.mu.Unlock()
	_ = n.run(a)
	putActs(a)
}

// run executes the actions one core transition emitted: transmit the
// sends, fold the hot-path notes into counters, and divert to runCold
// for anything heavier (deliveries, join completions, failure events).
// It returns the first transmit error and resets a for reuse.
func (n *Node) run(a *proto.Actions) error {
	ins := n.ins.Load()
	var firstErr error
	for i := range a.Sends {
		if err := n.send(a.Sends[i].Addr, a.Sends[i].Pkt); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	cold := len(a.Delivers) > 0 || len(a.Joins) > 0
	for i := range a.Notes {
		switch a.Notes[i].Kind {
		case proto.NoteForward:
			ins.Forwards.Inc()
		case proto.NoteNoRoute:
			ins.NoRouteDrops.Inc()
		case proto.NoteTTLDrop:
			ins.TTLDrops.Inc()
		case proto.NoteStabRound:
			ins.StabilizeRounds.Inc()
		case proto.NoteLivenessProbe:
			ins.LivenessProbes.Inc()
		case proto.NoteDeliver:
			// Counted as Delivered only after the gate admits it (runCold).
		default:
			cold = true
		}
	}
	if cold {
		n.runCold(a, ins)
	}
	a.Reset()
	return firstErr
}

// runCold executes the control-plane actions of a transition: local
// deliveries (gate check, payload copy, non-blocking channel hand-off),
// join completions, and the counters and structured events behind
// evictions, predecessor clears, and served joins.
//
//rofllint:coldpath deliveries, join completions, and failure-event reporting run per delivered packet or per control event, not per forwarded packet
func (n *Node) runCold(a *proto.Actions, ins *Instruments) {
	var gate Gate
	if gp := n.gate.Load(); gp != nil {
		gate = *gp
	}
	for i := range a.Delivers {
		d := a.Delivers[i]
		if gate != nil {
			if err := gate(d.Src, d.Capability); err != nil {
				ins.GateDrops.Inc()
				continue // default-off: drop unauthorized traffic
			}
		}
		// The payload aliases the read loop's decode buffer; the copy is
		// the ownership-transfer contract with the asynchronous consumer.
		n.deliver(Delivery{Src: d.Src, Payload: append([]byte(nil), d.Payload...)}, ins)
	}
	for _, jr := range a.Joins {
		n.mu.Lock()
		ch, ok := n.pending[jr.ReqID]
		if ok {
			delete(n.pending, jr.ReqID)
		}
		n.mu.Unlock()
		if ok {
			select {
			case ch <- jr.Err:
			default:
			}
		}
	}
	for _, nt := range a.Notes {
		switch nt.Kind {
		case proto.NoteSuccEvicted:
			ins.SuccEvictions.Inc()
			if nt.Reason == proto.ReasonLivenessTimeout {
				ins.LivenessFailovers.Inc()
			}
			ins.Events.Warn(eventSuccEvicted,
				"peer", nt.Peer.Short(), "addr", nt.Addr, "reason", nt.Reason)
		case proto.NotePredCleared:
			ins.PredClears.Inc()
			ins.Events.Info(eventPredCleared,
				"peer", nt.Peer.Short(), "addr", nt.Addr, "reason", nt.Reason)
		case proto.NoteJoinServed:
			ins.JoinsServed.Inc()
			ins.Events.Info(eventJoinServed, "joiner", nt.Peer.Short(), "addr", nt.Addr)
		}
	}
}

// deliver hands a packet to the application without ever blocking the
// read loop: when the consumer is not draining, the packet is dropped
// and counted instead.
func (n *Node) deliver(d Delivery, ins *Instruments) {
	select {
	case n.deliveries <- d:
		ins.Delivered.Inc()
	default:
		n.dropCount.Add(1)
		ins.DeliveryDrops.Inc()
	}
}

// SuccessorGroup returns a snapshot of the successor group's
// identifiers.
func (n *Node) SuccessorGroup() []ident.ID {
	n.mu.Lock()
	defer n.mu.Unlock()
	succs := n.core.Successors()
	out := make([]ident.ID, len(succs))
	for i, e := range succs {
		out[i] = e.ID
	}
	return out
}

// Successor returns the immediate successor (for tests and ring
// inspection).
func (n *Node) Successor() (ident.ID, string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.core.Successor()
	return s.ID, s.Addr, ok
}

// Predecessor returns the predecessor pointer.
func (n *Node) Predecessor() (ident.ID, string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.core.Predecessor()
	return p.ID, p.Addr, ok
}

// Bootstrap makes this node the first ring member: it is its own
// successor and predecessor.
func (n *Node) Bootstrap() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.core.Bootstrap()
}

// register allocates a request ID and its completion channel in the
// bounded in-flight table.
func (n *Node) register() (uint64, chan error, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, nil, ErrClosed
	}
	if len(n.pending) >= maxInFlight {
		return 0, nil, ErrBusy
	}
	id := n.core.NextReqID()
	ch := make(chan error, 1)
	n.pending[id] = ch
	return id, ch, nil
}

func (n *Node) unregister(id uint64) {
	n.mu.Lock()
	delete(n.pending, id)
	n.core.AbortJoin(id)
	n.mu.Unlock()
}

// Join splices the node into the ring through any existing member: a
// join request is greedy-routed toward the node's own identifier; the
// predecessor that receives it replies with the successor set and
// notifies its old successor (§3.1). The request is retried with
// backoff until timeout — a single lost datagram does not fail the
// join — and retries are idempotent at the predecessor.
func (n *Node) Join(via string, timeout time.Duration) error {
	ins := n.ins.Load()
	id, ch, err := n.register()
	if err != nil {
		return fmt.Errorf("overlay: join via %s: %w", via, err)
	}
	defer n.unregister(id)
	a := getActs()
	defer putActs(a)
	n.mu.Lock()
	retry := n.retry
	n.core.StartJoin(id, via, a)
	n.mu.Unlock()
	deadline := time.Now().Add(timeout)
	backoff := retry.Initial
	if backoff <= 0 {
		backoff = timeout
	}
	// exhausted reports the retry budget running dry: the structured
	// event and counter every operator-facing timeout goes through.
	exhausted := func(attempt int) error {
		ins.RequestTimeouts.Inc()
		ins.Events.Warn(eventRequestTimeout,
			"type", wire.TypeJoinRequest.String(), "to", via, "attempts", attempt, "timeout", timeout)
		return fmt.Errorf("overlay: join via %s: %w after %d attempts", via, ErrTimeout, attempt)
	}
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			ins.Retransmits.Inc()
			n.mu.Lock()
			if !n.closed {
				n.core.RetryJoin(id, a)
			}
			n.mu.Unlock()
		}
		if err := n.run(a); err != nil {
			return fmt.Errorf("overlay: join via %s: %w", via, err)
		}
		wait := backoff
		if rem := time.Until(deadline); rem < wait {
			wait = rem
		}
		if wait <= 0 {
			return exhausted(attempt)
		}
		t := time.NewTimer(wait)
		select {
		case err := <-ch:
			t.Stop()
			return err // nil on success; the core's decode error otherwise
		case <-n.done:
			t.Stop()
			return fmt.Errorf("overlay: join via %s: %w", via, ErrClosed)
		case <-t.C:
			if !time.Now().Before(deadline) {
				return exhausted(attempt)
			}
			backoff = time.Duration(float64(backoff) * retry.Multiplier)
			if retry.Max > 0 && backoff > retry.Max {
				backoff = retry.Max
			}
		}
	}
}

// Send greedy-routes a data payload toward dst.
func (n *Node) Send(dst ident.ID, payload []byte) error {
	return n.SendWithCapability(dst, payload, nil)
}

// SendWithCapability greedy-routes a data payload carrying a capability
// token in the wire header (§5.3): the destination's gate verifies it
// before delivering.
func (n *Node) SendWithCapability(dst ident.ID, payload, capability []byte) error {
	a := getActs()
	defer putActs(a)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.core.Originate(dst, payload, capability, a)
	n.mu.Unlock()
	return n.run(a)
}

// forward routes an already-built packet through the core — the
// benchmark entry point for one greedy next-hop decision plus marshal
// and send.
func (n *Node) forward(pkt *wire.Packet) error {
	a := getActs()
	defer putActs(a)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.core.ForwardData(pkt, a)
	n.mu.Unlock()
	return n.run(a)
}

// sendBufs pools marshal buffers across sends: every Transport
// implementation treats the payload as caller-owned once Send returns
// (UDP writes synchronously, the netem fabric and Fault wrapper copy),
// so the buffer can go straight back to the pool. This keeps the
// per-hop forward path allocation-free.
var sendBufs = sync.Pool{New: func() any { return new([]byte) }}

func (n *Node) send(addr string, pkt *wire.Packet) error {
	bp := sendBufs.Get().(*[]byte)
	buf, err := pkt.AppendTo((*bp)[:0])
	if err != nil {
		sendBufs.Put(bp)
		return fmt.Errorf("overlay: marshal: %w", err)
	}
	*bp = buf
	err = n.tr.Send(addr, buf) //rofllint:ignore hotpath transport boundary; Send is contractually synchronous or copying, and the UDP/netem implementations do not allocate per send
	sendBufs.Put(bp)
	if err != nil {
		return fmt.Errorf("overlay: sending to %s: %w", addr, err)
	}
	return nil
}

//rofllint:hotpath
func (n *Node) readLoop() {
	defer n.wg.Done()
	// The loop owns one receive buffer (when the transport can fill a
	// caller-provided one) and one decode packet, reused across
	// datagrams: handlers run synchronously and copy what they keep
	// (runCold copies delivered payloads), so steady-state receive costs
	// no allocation.
	recvInto, buffered := n.tr.(netem.BufferedTransport)
	var recvBuf []byte
	if buffered {
		recvBuf = make([]byte, 64*1024) //rofllint:ignore hotpath one-time buffer allocated before the loop, reused for every datagram
	}
	var pkt wire.Packet
	a := getActs()
	defer putActs(a)
	for {
		var buf []byte
		var from string
		var err error
		if buffered {
			var ln int
			ln, from, err = recvInto.RecvInto(recvBuf) //rofllint:ignore hotpath transport boundary; RecvInto exists precisely so the loop's buffer is reused instead of allocated per datagram
			buf = recvBuf[:ln]
		} else {
			buf, from, err = n.tr.Recv() //rofllint:ignore hotpath transport boundary; the unbuffered Recv contract hands over a transport-owned slice
		}
		if err != nil {
			return // closed
		}
		if err := pkt.DecodeFromBytes(buf); err != nil {
			continue // drop malformed datagrams
		}
		n.handle(&pkt, from, a)
	}
}

// handle feeds one decoded packet into the core under the lock, then
// executes the emitted actions outside it. Emitted sends may alias pkt,
// and run transmits them before handle returns — satisfying the core's
// contract that the driver not reuse pkt until the sends are out. A
// packet arriving after Close is dropped.
//
// The caller owns a: the read loop holds one Actions buffer for its
// whole life, so the per-datagram path never touches the pool.
//
//rofllint:hotpath
func (n *Node) handle(pkt *wire.Packet, from string, a *proto.Actions) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		a.Reset()
		return
	}
	n.core.HandlePacket(pkt, from, a)
	n.mu.Unlock()
	_ = n.run(a)
}

// Ring returns the node's view of the ring, for debugging: predecessor,
// self, then successors.
func (n *Node) Ring() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.Ring()
}
