package overlay

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/wire"
)

func peerEntry(v uint64) entry {
	return entry{ID: ident.FromUint64(v), Addr: fmt.Sprintf("peer:%d", v)}
}

func TestPeerSetBasics(t *testing.T) {
	s := newPeerSet()
	for _, v := range []uint64{50, 10, 30, 20, 40} {
		s.insert(peerEntry(v))
	}
	if s.len() != 5 {
		t.Fatalf("len=%d, want 5", s.len())
	}
	// Sorted ascending regardless of insertion order.
	for i, want := range []uint64{10, 20, 30, 40, 50} {
		if got := s.at(i).ID; got != ident.FromUint64(want) {
			t.Fatalf("at(%d) = %v, want %d", i, got, want)
		}
	}
	// Re-inserting refreshes the address without duplicating.
	s.insert(entry{ID: ident.FromUint64(30), Addr: "peer:new"})
	if s.len() != 5 {
		t.Fatalf("duplicate insert grew the set to %d", s.len())
	}
	if e, ok := s.get(ident.FromUint64(30)); !ok || e.Addr != "peer:new" {
		t.Fatalf("address not refreshed: %+v %v", e, ok)
	}
	s.remove(ident.FromUint64(30))
	if s.contains(ident.FromUint64(30)) || s.len() != 4 {
		t.Fatal("remove failed")
	}
	s.remove(ident.FromUint64(30)) // absent remove is a no-op
	if s.len() != 4 {
		t.Fatal("removing an absent ID changed the set")
	}
}

func TestPeerSetBestProgress(t *testing.T) {
	s := newPeerSet()
	for _, v := range []uint64{500, 2500, 2999, 5000} {
		s.insert(peerEntry(v))
	}
	cur := ident.FromUint64(1000)
	dst := ident.FromUint64(3000)
	// Closest candidate in (1000, 3000] is 2999.
	if e, ok := s.bestProgress(cur, dst, cur); !ok || e.ID != ident.FromUint64(2999) {
		t.Fatalf("bestProgress = %+v %v, want 2999", e, ok)
	}
	// Excluding 2999 falls back to the next-closest legal hop.
	if e, ok := s.bestProgress(cur, dst, ident.FromUint64(2999)); !ok || e.ID != ident.FromUint64(2500) {
		t.Fatalf("bestProgress excluding 2999 = %+v %v, want 2500", e, ok)
	}
	// No candidate in (5000, 200]-wrap except 500 → wrap-around works.
	if e, ok := s.bestProgress(ident.FromUint64(5000), ident.FromUint64(600), cur); !ok || e.ID != ident.FromUint64(500) {
		t.Fatalf("wrap-around bestProgress = %+v %v, want 500", e, ok)
	}
	// Nothing makes progress inside an empty interval.
	if _, ok := s.bestProgress(ident.FromUint64(2999), dst, cur); ok {
		t.Fatal("bestProgress invented a candidate: only 3000 itself could qualify")
	}
	if _, ok := newPeerSet().bestProgress(cur, dst, cur); ok {
		t.Fatal("empty set returned a candidate")
	}
}

// TestLearnEvictionSparesRingNeighbors is the regression test for the
// maxKnown eviction bug: choosing an arbitrary victim could silently
// forget the node's own successors or predecessor, removing live ring
// neighbors from repair probing. Eviction must skip them.
func TestLearnEvictionSparesRingNeighbors(t *testing.T) {
	n := NewNodeTransport(ident.FromUint64(1000), newBenchTransport())
	defer n.Close()
	n.mu.Lock()
	n.succs = []entry{peerEntry(2000), peerEntry(3000), peerEntry(4000)}
	pred := peerEntry(500)
	n.pred = &pred
	// Ring neighbors are remembered first, then enough strangers to
	// force evictions far past the bound.
	for _, e := range n.succs {
		n.learnLocked(e)
	}
	n.learnLocked(pred)
	for i := 0; i < 4*maxKnown; i++ {
		n.learnLocked(peerEntry(uint64(100000 + i)))
	}
	defer n.mu.Unlock()
	if n.known.len() > maxKnown {
		t.Fatalf("known grew to %d, bound is %d", n.known.len(), maxKnown)
	}
	for _, e := range n.succs {
		if !n.known.contains(e.ID) {
			t.Fatalf("successor %v was evicted from known", e.ID)
		}
	}
	if !n.known.contains(pred.ID) {
		t.Fatalf("predecessor %v was evicted from known", pred.ID)
	}
}

// TestSamplingDeterministic pins the satellite fix for map-order
// sampling: gossip fanout and probe choice must be a pure function of
// the node's ID-seeded RNG and its learn history, so two nodes with the
// same ID and history sample identically.
func TestSamplingDeterministic(t *testing.T) {
	build := func() *Node {
		n := NewNodeTransport(ident.FromUint64(42), newBenchTransport())
		n.mu.Lock()
		n.succs = []entry{peerEntry(2000)}
		for i := 0; i < 64; i++ {
			n.learnLocked(peerEntry(uint64(5000 + i*13)))
		}
		n.mu.Unlock()
		return n
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	self := peerEntry(42)
	a.mu.Lock()
	b.mu.Lock()
	for round := 0; round < 50; round++ {
		ga, gb := a.gossipLocked(self), b.gossipLocked(self)
		if !reflect.DeepEqual(ga, gb) {
			t.Fatalf("round %d: gossip samples diverged:\na: %+v\nb: %+v", round, ga, gb)
		}
		pa, oka := a.pickProbeLocked()
		pb, okb := b.pickProbeLocked()
		if oka != okb || pa != pb {
			t.Fatalf("round %d: probe picks diverged: %+v/%v vs %+v/%v", round, pa, oka, pb, okb)
		}
	}
	a.mu.Unlock()
	b.mu.Unlock()
}

// TestGossipSamplesAreDistinct checks the sampler never packs the same
// peer twice into one gossip payload and never includes more than the
// fanout.
func TestGossipSamplesAreDistinct(t *testing.T) {
	n := NewNodeTransport(ident.FromUint64(7), newBenchTransport())
	defer n.Close()
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < 16; i++ {
		n.learnLocked(peerEntry(uint64(1000 + i)))
	}
	self := peerEntry(7)
	for round := 0; round < 200; round++ {
		g := n.gossipLocked(self)
		if len(g) > 1+gossipFanout {
			t.Fatalf("gossip payload too large: %d entries", len(g))
		}
		if g[0] != self {
			t.Fatal("gossip must lead with the node's own entry")
		}
		seen := map[ident.ID]bool{}
		for _, e := range g {
			if seen[e.ID] {
				t.Fatalf("duplicate %v in gossip payload", e.ID)
			}
			seen[e.ID] = true
		}
	}
}

// TestPeerSetSampleSmall: a set no larger than the fanout is returned
// whole, in sorted order.
func TestPeerSetSampleSmall(t *testing.T) {
	s := newPeerSet()
	s.insert(peerEntry(30))
	s.insert(peerEntry(10))
	rng := rand.New(rand.NewSource(1))
	got := s.sampleInto(nil, 3, rng, nil)
	want := []entry{peerEntry(10), peerEntry(30)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("small sample = %+v, want whole set sorted %+v", got, want)
	}
}

// captureTransport records where packets were sent.
type captureTransport struct {
	*benchTransport
	mu   sync.Mutex
	sent []string
}

func (c *captureTransport) Send(addr string, p []byte) error {
	c.mu.Lock()
	c.sent = append(c.sent, addr)
	c.mu.Unlock()
	return nil
}

func (c *captureTransport) lastSent() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.sent) == 0 {
		return "", false
	}
	return c.sent[len(c.sent)-1], true
}

// TestForwardFallsBackToKnownIndex: when no ring pointer makes greedy
// progress, the forwarder consults the sorted known index instead of
// dropping, and respects the exclusion.
func TestForwardFallsBackToKnownIndex(t *testing.T) {
	tr := &captureTransport{benchTransport: newBenchTransport()}
	n := NewNodeTransport(ident.FromUint64(1000), tr)
	defer n.Close()
	n.mu.Lock()
	n.succs = []entry{peerEntry(5000)} // overshoots dst: no ring progress
	n.learnLocked(peerEntry(500))
	n.learnLocked(peerEntry(2500))
	n.learnLocked(peerEntry(2999))
	n.mu.Unlock()

	pkt := &wire.Packet{
		Type: wire.TypeData, TTL: wire.DefaultTTL,
		Dst: ident.FromUint64(3000), Src: ident.FromUint64(1),
	}
	if err := n.forward(pkt); err != nil {
		t.Fatal(err)
	}
	if addr, ok := tr.lastSent(); !ok || addr != "peer:2999" {
		t.Fatalf("forwarded to %q (%v), want known-index hop peer:2999", addr, ok)
	}
	if err := n.forwardExcept(pkt, ident.FromUint64(2999)); err != nil {
		t.Fatal(err)
	}
	if addr, _ := tr.lastSent(); addr != "peer:2500" {
		t.Fatalf("excluded forward went to %q, want peer:2500", addr)
	}
	// With the destination's whole arc unknown, the packet still drops.
	drop := &wire.Packet{Type: wire.TypeData, TTL: wire.DefaultTTL,
		Dst: ident.FromUint64(1100), Src: ident.FromUint64(1)}
	before := len(tr.sent)
	if err := n.forward(drop); err != nil {
		t.Fatal(err)
	}
	if len(tr.sent) != before {
		t.Fatal("packet with no legal hop anywhere must be dropped")
	}
}
