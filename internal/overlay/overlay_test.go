package overlay

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"rofl/internal/ident"
	"rofl/internal/wire"
)

const joinTimeout = 2 * time.Second

// startRing boots n nodes on localhost and joins them sequentially.
func startRing(t *testing.T, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		id := ident.FromString(fmt.Sprintf("overlay-node-%d", i))
		node, err := NewNode(id, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		if i == 0 {
			node.Bootstrap()
		} else {
			if err := node.Join(nodes[0].Addr(), joinTimeout); err != nil {
				t.Fatalf("join node %d: %v", i, err)
			}
		}
		nodes = append(nodes, node)
	}
	return nodes
}

// ringConsistent verifies that successor pointers trace the sorted order.
func ringConsistent(t *testing.T, nodes []*Node) {
	t.Helper()
	sorted := append([]*Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID().Less(sorted[j].ID()) })
	for i, node := range sorted {
		want := sorted[(i+1)%len(sorted)].ID()
		got, _, ok := node.Successor()
		if !ok {
			t.Fatalf("node %s has no successor", node.ID().Short())
		}
		if got != want {
			t.Fatalf("node %s successor = %s want %s", node.ID().Short(), got.Short(), want.Short())
		}
		wantPred := sorted[(i-1+len(sorted))%len(sorted)].ID()
		gotPred, _, ok := node.Predecessor()
		if !ok || gotPred != wantPred {
			t.Fatalf("node %s predecessor = %s want %s", node.ID().Short(), gotPred.Short(), wantPred.Short())
		}
	}
}

func TestTwoNodeRing(t *testing.T) {
	nodes := startRing(t, 2)
	ringConsistent(t, nodes)
}

func TestEightNodeRingConsistent(t *testing.T) {
	nodes := startRing(t, 8)
	ringConsistent(t, nodes)
}

func TestDataDeliveryAllPairs(t *testing.T) {
	nodes := startRing(t, 6)
	for i, src := range nodes {
		for j, dst := range nodes {
			if i == j {
				continue
			}
			msg := []byte(fmt.Sprintf("hello %d->%d", i, j))
			if err := src.Send(dst.ID(), msg); err != nil {
				t.Fatal(err)
			}
			select {
			case d := <-dst.Deliveries():
				if string(d.Payload) != string(msg) {
					t.Fatalf("payload = %q want %q", d.Payload, msg)
				}
				if d.Src != src.ID() {
					t.Fatalf("src = %s want %s", d.Src.Short(), src.ID().Short())
				}
			case <-time.After(2 * time.Second):
				t.Fatalf("packet %d->%d not delivered", i, j)
			}
		}
	}
}

func TestSendToAbsentIDIsDropped(t *testing.T) {
	nodes := startRing(t, 3)
	if err := nodes[0].Send(ident.FromString("ghost"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Nothing should arrive anywhere.
	for _, n := range nodes {
		select {
		case d := <-n.Deliveries():
			t.Fatalf("ghost packet delivered to %s: %q", n.ID().Short(), d.Payload)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func TestJoinViaNonBootstrapMember(t *testing.T) {
	nodes := startRing(t, 4)
	id := ident.FromString("late-joiner")
	late, err := NewNode(id, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { late.Close() })
	// Join through the last node, not the bootstrap.
	if err := late.Join(nodes[3].Addr(), joinTimeout); err != nil {
		t.Fatal(err)
	}
	ringConsistent(t, append(nodes, late))
	// And the late joiner is reachable.
	if err := nodes[1].Send(id, []byte("welcome")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-late.Deliveries():
		if string(d.Payload) != "welcome" {
			t.Fatalf("payload = %q", d.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("late joiner unreachable")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	n, err := NewNode(ident.FromString("solo"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.Bootstrap()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseThenLateEventsAreNoOps pins the teardown contract: once
// Close returns, every late event a racing timer or reader could still
// fire — a maintenance tick, a liveness tick, an arriving datagram, an
// API call — must be a silent no-op. Before the core extraction a late
// stabilize tick could race node teardown; now every entry point checks
// the closed flag under the same lock that guards the core.
func TestCloseThenLateEventsAreNoOps(t *testing.T) {
	a, err := New(ident.FromString("late-a"), Config{Stabilize: 5 * time.Millisecond, EnableLiveness: true})
	if err != nil {
		t.Fatal(err)
	}
	a.Bootstrap()
	b, err := New(ident.FromString("late-b"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := b.Join(a.Addr(), joinTimeout); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Late internal events, exactly as the maintenance goroutines would
	// fire them after losing the race with Close.
	a.stabilizeOnceRound()
	a.livenessTick()

	// A datagram that arrives after Close is dropped, even one addressed
	// to the node itself (which would otherwise deliver).
	pkt := &wire.Packet{
		Type: wire.TypeData, TTL: wire.DefaultTTL,
		Src: b.ID(), Dst: a.ID(), Payload: []byte("late"),
	}
	acts := getActs()
	a.handle(pkt, b.Addr(), acts)
	putActs(acts)
	select {
	case d, ok := <-a.Deliveries():
		if ok {
			t.Fatalf("post-Close delivery of %q", d.Payload)
		}
		// Channel closed by Close: correct.
	default:
	}

	// Public API surfaces report ErrClosed instead of acting.
	if err := a.Send(b.ID(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	if err := a.Join(b.Addr(), 100*time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("Join after Close = %v, want ErrClosed", err)
	}
	// Restarting maintenance on a closed node must not spawn goroutines.
	a.StartStabilize(time.Millisecond)
	a.StartLiveness(DefaultLivenessParams())
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// The peer stays healthy: late events on the corpse never wedged a
	// lock or crashed a goroutine. Sending toward the dead node is a
	// silent drop, like UDP — not an error, not a hang.
	if len(b.Ring()) == 0 {
		t.Fatal("survivor lost its ring state")
	}
	if err := b.Send(a.ID(), []byte("into the void")); err != nil {
		t.Fatal(err)
	}
}

func TestJoinTimeoutAgainstDeadAddress(t *testing.T) {
	n, err := NewNode(ident.FromString("lost"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	// 127.0.0.1:1 is almost certainly not listening; the join must time
	// out rather than hang.
	err = n.Join("127.0.0.1:1", 200*time.Millisecond)
	if err == nil {
		t.Fatal("join against dead address should fail")
	}
}

func TestRingDebugString(t *testing.T) {
	nodes := startRing(t, 2)
	if len(nodes[0].Ring()) == 0 {
		t.Fatal("Ring() must render")
	}
}

func TestGateDropsUnauthorized(t *testing.T) {
	nodes := startRing(t, 3)
	dst := nodes[2]
	authorized := ident.FromString("overlay-node-0") // nodes[0]'s label
	dst.SetGate(func(src ident.ID, capability []byte) error {
		if src == authorized && string(capability) == "token" {
			return nil
		}
		return fmt.Errorf("denied")
	})
	// Unauthorized sender: dropped.
	if err := nodes[1].Send(dst.ID(), []byte("sneaky")); err != nil {
		t.Fatal(err)
	}
	// Right sender, no token: dropped.
	if err := nodes[0].Send(dst.ID(), []byte("no token")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-dst.Deliveries():
		t.Fatalf("unauthorized packet delivered: %q", d.Payload)
	case <-time.After(200 * time.Millisecond):
	}
	// Right sender with the token: delivered.
	if err := nodes[0].SendWithCapability(dst.ID(), []byte("hello"), []byte("token")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-dst.Deliveries():
		if string(d.Payload) != "hello" {
			t.Fatalf("payload %q", d.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("authorized packet not delivered")
	}
}

func TestConcurrentJoinsConvergeWithStabilization(t *testing.T) {
	// Join 7 nodes through the bootstrap CONCURRENTLY — splices race —
	// then let stabilization repair the ring.
	boot, err := NewNode(ident.FromString("concurrent-boot"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { boot.Close() })
	boot.Bootstrap()

	const n = 7
	nodes := []*Node{boot}
	errs := make(chan error, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node, err := NewNode(ident.FromString(fmt.Sprintf("concurrent-%d", i)), "127.0.0.1:0")
			if err != nil {
				errs <- err
				return
			}
			t.Cleanup(func() { node.Close() })
			if err := node.Join(boot.Addr(), 3*time.Second); err != nil {
				errs <- err
				return
			}
			mu.Lock()
			nodes = append(nodes, node)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, node := range nodes {
		node.StartStabilize(25 * time.Millisecond)
	}
	// Poll until the ring is consistent (or time out).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ringIsConsistent(nodes) {
			break
		}
		if time.Now().After(deadline) {
			for _, node := range nodes {
				t.Logf("%s: %v", node.ID().Short(), node.Ring())
			}
			t.Fatal("stabilization did not converge")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// After convergence, all-pairs delivery works.
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			if err := src.Send(dst.ID(), []byte("post-stabilize")); err != nil {
				t.Fatal(err)
			}
			select {
			case <-dst.Deliveries():
			case <-time.After(2 * time.Second):
				t.Fatalf("delivery %s->%s failed after convergence", src.ID().Short(), dst.ID().Short())
			}
		}
	}
}

// ringIsConsistent is the non-fatal variant of ringConsistent.
func ringIsConsistent(nodes []*Node) bool {
	sorted := append([]*Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID().Less(sorted[j].ID()) })
	for i, node := range sorted {
		want := sorted[(i+1)%len(sorted)].ID()
		got, _, ok := node.Successor()
		if !ok || got != want {
			return false
		}
	}
	return true
}

func TestStabilizeIdempotentOnConsistentRing(t *testing.T) {
	nodes := startRing(t, 4)
	for _, n := range nodes {
		n.StartStabilize(20 * time.Millisecond)
		n.StartStabilize(20 * time.Millisecond) // double start is a no-op
	}
	time.Sleep(300 * time.Millisecond)
	ringConsistent(t, nodes)
}

func TestSuccessorFailoverHealsRing(t *testing.T) {
	nodes := startRing(t, 5)
	for _, n := range nodes {
		n.StartStabilize(20 * time.Millisecond)
	}
	// Wait until every node's successor group has fallback entries —
	// failover needs group depth, and group refresh rides on
	// stabilization replies (condition-based to stay robust under CPU
	// starvation).
	warm := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			if len(n.SuccessorGroup()) < 2 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(warm) {
			t.Fatal("successor groups never filled")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Kill one non-bootstrap node.
	victim := nodes[2]
	victim.Close()
	survivors := append(append([]*Node{}, nodes[:2]...), nodes[3:]...)

	deadline := time.Now().Add(15 * time.Second)
	for {
		if ringIsConsistent(survivors) {
			break
		}
		if time.Now().After(deadline) {
			for _, n := range survivors {
				t.Logf("%s: %v", n.ID().Short(), n.Ring())
			}
			t.Fatal("ring did not heal after successor failure")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Survivors can still reach each other.
	for _, src := range survivors {
		for _, dst := range survivors {
			if src == dst {
				continue
			}
			if err := src.Send(dst.ID(), []byte("healed")); err != nil {
				t.Fatal(err)
			}
			select {
			case <-dst.Deliveries():
			case <-time.After(5 * time.Second):
				t.Fatalf("delivery %s->%s failed after heal", src.ID().Short(), dst.ID().Short())
			}
		}
	}
}
