//go:build !race

package overlay

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
