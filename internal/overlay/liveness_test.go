package overlay

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rofl/internal/ident"
	"rofl/internal/netem"
	"rofl/internal/telemetry"
)

// syncBuf is an io.Writer the test can read while the node writes.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// countEvents parses the JSON lines in buf and counts events with the
// given name, checking every line parses.
func countEvents(t *testing.T, buf *syncBuf, event string) int {
	t.Helper()
	count := 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line is not JSON: %v\n%s", err, line)
		}
		if ev["event"] == event {
			count++
		}
	}
	return count
}

// waitSuccessorChange polls until node's successor is no longer dead,
// returning how long detection took.
func waitSuccessorChange(t *testing.T, node *Node, dead ident.ID, timeout time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		if succ, _, ok := node.Successor(); ok && succ != dead {
			return time.Since(start)
		}
		if time.Now().After(deadline) {
			t.Fatalf("successor %s never evicted within %v", dead.Short(), timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLivenessDetectsFailureTenTimesFaster is the BFD acceptance chaos
// test: the same three-node ring loses the same successor twice — once
// detected by the stabilize timer alone, once by the adaptive liveness
// probes — and the probe path must be at least 10× faster.
func TestLivenessDetectsFailureTenTimesFaster(t *testing.T) {
	const stabilizeEvery = 150 * time.Millisecond

	run := func(withLiveness bool) time.Duration {
		fabric := netem.NewNetwork(42)
		defer fabric.Close()
		nodes, _ := startChaosCluster(t, fabric, 3, 10*time.Second)
		for _, node := range nodes {
			node.StartStabilize(stabilizeEvery)
			if withLiveness {
				node.StartLiveness(LivenessParams{MinTx: 5 * time.Millisecond, MinRx: 2 * time.Millisecond, Multiplier: 3})
			}
		}
		waitConverged(t, nodes, 20*time.Second, "pre-failure convergence")
		// Find the node whose successor is nodes[1], then kill nodes[1].
		victim := nodes[1]
		var watcher *Node
		for _, node := range nodes {
			if succ, _, ok := node.Successor(); ok && succ == victim.ID() {
				watcher = node
				break
			}
		}
		if watcher == nil {
			t.Fatal("no node points at the victim")
		}
		victim.Close()
		return waitSuccessorChange(t, watcher, victim.ID(), 30*time.Second)
	}

	slow := run(false)
	fast := run(true)
	t.Logf("stabilize-timer eviction: %v; liveness detection: %v (%.1fx)", slow, fast, float64(slow)/float64(fast))
	if fast*10 > slow {
		t.Fatalf("liveness detection %v is not 10x faster than stabilize eviction %v", fast, slow)
	}
}

// TestDeadSuccessorEmitsOneEvictionEvent pins the regression the
// telemetry refactor fixes: a dead successor must surface as exactly
// one structured eviction event and one counter increment — not zero
// (the old silent path) and not one per stabilize round.
func TestDeadSuccessorEmitsOneEvictionEvent(t *testing.T) {
	fabric := netem.NewNetwork(11)
	defer fabric.Close()
	nodes, _ := startChaosCluster(t, fabric, 2, 5*time.Second)
	a, b := nodes[0], nodes[1]

	reg := telemetry.NewRegistry()
	var buf syncBuf
	a.SetTelemetry(reg, telemetry.NewEventLog(&buf, telemetry.LevelInfo))
	a.StartStabilize(20 * time.Millisecond)
	b.StartStabilize(20 * time.Millisecond)
	waitConverged(t, nodes, 10*time.Second, "two-node convergence")

	b.Close()
	waitSuccessorChange(t, a, b.ID(), 10*time.Second)
	// Keep stabilizing well past the eviction: later rounds must not
	// re-report the same death.
	time.Sleep(300 * time.Millisecond)

	if got := countEvents(t, &buf, "succ_evicted"); got != 1 {
		t.Fatalf("succ_evicted events = %d, want exactly 1\nevents:\n%s", got, buf.String())
	}
	if got := reg.Counter(metricEvictSucc).Value(); got != 1 {
		t.Fatalf("eviction counter = %d, want 1", got)
	}
}

// TestRequestTimeoutEmitsEventAndCounter pins the retry-exhaustion
// path: a join toward a black hole must fail with ErrTimeout AND leave
// a structured trace — the timeout counter, the retransmit counter, and
// a request_timeout event.
func TestRequestTimeoutEmitsEventAndCounter(t *testing.T) {
	fabric := netem.NewNetwork(5)
	defer fabric.Close()
	ep, err := fabric.Endpoint("em://lonely")
	if err != nil {
		t.Fatal(err)
	}
	n := NewNodeTransport(ident.FromString("lonely"), ep)
	t.Cleanup(func() { n.Close() })
	n.SetRetryPolicy(RetryPolicy{Initial: 10 * time.Millisecond, Max: 40 * time.Millisecond, Multiplier: 2})
	reg := telemetry.NewRegistry()
	var buf syncBuf
	n.SetTelemetry(reg, telemetry.NewEventLog(&buf, telemetry.LevelInfo))

	if err := n.Join("em://void", 200*time.Millisecond); err == nil {
		t.Fatal("join to a black hole must time out")
	}
	if got := reg.Counter(metricReqTimeout).Value(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
	if got := reg.Counter(metricRetransmit).Value(); got == 0 {
		t.Fatal("retransmit counter must count the retried attempts")
	}
	if got := countEvents(t, &buf, "request_timeout"); got != 1 {
		t.Fatalf("request_timeout events = %d, want 1\n%s", got, buf.String())
	}
}

// TestLivenessIntervalNegotiation pins the BFD negotiation rule: the
// probe interval toward a successor is max(local MinTx, the
// successor's advertised MinRx), so a peer that advertises a slow
// receive floor slows its prober down.
func TestLivenessIntervalNegotiation(t *testing.T) {
	fabric := netem.NewNetwork(9)
	defer fabric.Close()
	nodes, _ := startChaosCluster(t, fabric, 2, 5*time.Second)
	a, b := nodes[0], nodes[1]
	a.StartStabilize(20 * time.Millisecond)
	b.StartStabilize(20 * time.Millisecond)
	waitConverged(t, nodes, 10*time.Second, "two-node convergence")

	// B refuses probes faster than 80ms; A wants to probe at 5ms.
	b.StartLiveness(LivenessParams{MinTx: 5 * time.Millisecond, MinRx: 80 * time.Millisecond, Multiplier: 3})
	a.StartLiveness(LivenessParams{MinTx: 5 * time.Millisecond, MinRx: 2 * time.Millisecond, Multiplier: 3})

	deadline := time.Now().Add(5 * time.Second)
	for a.livenessInterval() != 80*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatalf("negotiated interval = %v, want 80ms (remote MinRx)", a.livenessInterval())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLivenessSurvivesLossWithoutFalsePositive runs the liveness
// detector over a 10%-lossy link: single lost probes must not evict a
// live successor (the detect multiplier absorbs them).
func TestLivenessSurvivesLossWithoutFalsePositive(t *testing.T) {
	fabric := netem.NewNetwork(77)
	defer fabric.Close()
	fabric.SetDefaults(netem.LinkParams{Loss: 0.10, Latency: time.Millisecond})
	nodes, _ := startChaosCluster(t, fabric, 3, 20*time.Second)
	reg := telemetry.NewRegistry()
	for _, node := range nodes {
		node.SetTelemetry(reg, nil)
		node.StartStabilize(25 * time.Millisecond)
		node.StartLiveness(LivenessParams{MinTx: 10 * time.Millisecond, MinRx: 5 * time.Millisecond, Multiplier: 5})
	}
	waitConverged(t, nodes, 20*time.Second, "convergence at 10% loss")

	// Hold the converged ring under loss for ~40 probe windows; no
	// live successor may be evicted by the liveness path.
	time.Sleep(500 * time.Millisecond)
	if got := reg.Counter(metricLivenessFailover).Value(); got != 0 {
		t.Fatalf("liveness evicted %d live successors under 10%% loss", got)
	}
	if got := reg.Counter(metricLivenessProbe).Value(); got == 0 {
		t.Fatal("no probes were sent")
	}
	if !ringFullyConsistent(nodes) {
		t.Fatal("ring lost consistency under probing")
	}
}

// TestInstrumentedTrafficCounters drives data through a 4-node ring and
// checks the forwarding counters add up: every node that originated or
// relayed traffic shows forwards, and the destination shows deliveries.
func TestInstrumentedTrafficCounters(t *testing.T) {
	fabric := netem.NewNetwork(21)
	defer fabric.Close()
	nodes, _ := startChaosCluster(t, fabric, 4, 10*time.Second)
	regs := make([]*telemetry.Registry, len(nodes))
	for i, node := range nodes {
		regs[i] = telemetry.NewRegistry()
		node.SetTelemetry(regs[i], nil)
		node.StartStabilize(20 * time.Millisecond)
	}
	waitConverged(t, nodes, 10*time.Second, "ring convergence")

	for i, src := range nodes {
		for j, dst := range nodes {
			if i == j {
				continue
			}
			if err := src.Send(dst.ID(), []byte("ping")); err != nil {
				t.Fatal(err)
			}
			select {
			case <-dst.Deliveries():
			case <-time.After(5 * time.Second):
				t.Fatalf("delivery %d->%d timed out", i, j)
			}
		}
	}
	for i := range nodes {
		if got := regs[i].Counter(metricForward).Value(); got == 0 {
			t.Fatalf("node %d forwarded nothing", i)
		}
		if got := regs[i].Counter(metricDelivered).Value(); got != uint64(len(nodes)-1) {
			t.Fatalf("node %d delivered %d, want %d", i, got, len(nodes)-1)
		}
	}
}
