package overlay

import (
	"testing"

	"rofl/internal/ident"
	"rofl/internal/netem"
	"rofl/internal/wire"
)

// FuzzHandleRequest throws arbitrary datagrams at the overlay's control-
// message dispatcher, mirroring the read loop exactly: bytes that decode
// as a wire.Packet are handed to handle. The node must absorb any
// decodable packet — unknown request IDs, zero TTLs, bogus stabilize
// replies, self-addressed joins — without panicking or blocking the
// read path.
func FuzzHandleRequest(f *testing.F) {
	self := ident.FromString("fuzz-node")
	peer := ident.FromString("fuzz-peer")

	// Seed the corpus with one well-formed packet of every control kind
	// the dispatcher handles, plus a data packet for each forwarding arm.
	seed := func(p wire.Packet) {
		b, err := p.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(wire.Packet{Type: wire.TypeData, TTL: 8, Dst: self, Src: peer, Payload: []byte("to-self")})
	seed(wire.Packet{Type: wire.TypeData, TTL: 8, Dst: peer, Src: peer, Payload: []byte("to-forward")})
	seed(wire.Packet{Type: wire.TypeData, TTL: 0, Dst: peer, Src: peer, Payload: []byte("ttl-expired")})
	seed(wire.Packet{Type: wire.TypeJoinRequest, TTL: 8, Dst: self, Src: peer, ReqID: 7})
	seed(wire.Packet{Type: wire.TypeJoinReply, TTL: 8, Dst: peer, Src: self, ReqID: 7})
	seed(wire.Packet{Type: wire.TypeAck, TTL: 8, Dst: self, Src: peer})
	seed(wire.Packet{Type: wire.TypeStabilize, TTL: 8, Dst: self, Src: peer, ReqID: 9})
	seed(wire.Packet{Type: wire.TypeStabilizeReply, TTL: 8, Dst: self, Src: peer, ReqID: 9})
	seed(wire.Packet{Type: wire.TypeCapRequest, TTL: 8, Dst: self, Src: peer, Capability: []byte{1, 2, 3}})
	seed(wire.Packet{Type: wire.TypeData, TTL: 8, Dst: self, Src: peer, ASRoute: []uint32{1, 2, 3}})

	// One long-lived node on an in-memory network: state accumulated
	// across iterations only widens the explored surface.
	net := netem.NewNetwork(1)
	ep, err := net.Endpoint("node")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := net.Endpoint("peer"); err != nil {
		f.Fatal(err)
	}
	n := NewNodeTransport(self, ep)
	n.Bootstrap()
	f.Cleanup(func() {
		n.Close()
		net.Close()
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		var pkt wire.Packet
		if err := pkt.DecodeFromBytes(data); err != nil {
			return // the read loop drops malformed datagrams before handle
		}
		a := getActs()
		n.handle(&pkt, "peer", a)
		putActs(a)
		// Keep the delivery buffer from filling so to-self data packets
		// stay observable rather than counted as drops.
		for {
			select {
			case <-n.Deliveries():
				continue
			default:
			}
			break
		}
	})
}
