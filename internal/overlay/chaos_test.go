package overlay

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"rofl/internal/ident"
	"rofl/internal/netem"
	"rofl/internal/proto"
	"rofl/internal/wire"
)

// chaosRetry is a fast retransmission schedule for emulated-fabric tests
// (real deployments keep the LAN-tuned default).
func chaosRetry() RetryPolicy {
	return RetryPolicy{Initial: 40 * time.Millisecond, Max: 400 * time.Millisecond, Multiplier: 2}
}

// startChaosCluster attaches n overlay nodes to the fabric and joins
// them sequentially through node 0 — every join riding the fabric's
// fault schedule.
func startChaosCluster(t *testing.T, fabric *netem.Network, n int, joinTimeout time.Duration) ([]*Node, []string) {
	t.Helper()
	nodes := make([]*Node, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("em://node-%d", i)
		ep, err := fabric.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		node := NewNodeTransport(ident.FromString(fmt.Sprintf("chaos-%d", i)), ep)
		node.SetRetryPolicy(chaosRetry())
		t.Cleanup(func() { node.Close() })
		if i == 0 {
			node.Bootstrap()
		} else {
			if err := node.Join(addrs[0], joinTimeout); err != nil {
				t.Fatalf("join node %d: %v", i, err)
			}
		}
		nodes = append(nodes, node)
		addrs = append(addrs, addr)
	}
	return nodes, addrs
}

// ringFullyConsistent reports whether successor AND predecessor pointers
// of every node trace the sorted identifier order.
func ringFullyConsistent(nodes []*Node) bool {
	sorted := append([]*Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID().Less(sorted[j].ID()) })
	for i, node := range sorted {
		wantSucc := sorted[(i+1)%len(sorted)].ID()
		got, _, ok := node.Successor()
		if !ok || got != wantSucc {
			return false
		}
		wantPred := sorted[(i-1+len(sorted))%len(sorted)].ID()
		gotPred, _, ok := node.Predecessor()
		if !ok || gotPred != wantPred {
			return false
		}
	}
	return true
}

// waitMembership blocks until every node has heard of every other —
// stabilize-time gossip disseminates membership beyond ring neighbours,
// and partition recovery depends on each side knowing its own members.
func waitMembership(t *testing.T, nodes []*Node, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, n := range nodes {
			if n.Status().KnownPeers < len(nodes)-1 {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("membership did not disseminate to all nodes")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func waitConverged(t *testing.T, nodes []*Node, timeout time.Duration, phase string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ringFullyConsistent(nodes) {
		if time.Now().After(deadline) {
			for _, n := range nodes {
				t.Logf("%s: %v", n.ID().Short(), n.Ring())
			}
			t.Fatalf("%s: ring did not converge within %v", phase, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestChaosClusterLossPartitionHeal is the acceptance chaos run: a
// 9-node in-process cluster at 20% injected loss completes every join,
// converges, survives a 2-way partition (each side reconverges into its
// own ring), and after healing re-merges into one ring over which
// end-to-end delivery succeeds for every pair. The fault schedule —
// which packets drop, duplicate, or arrive late — is fully determined by
// the netem seed.
func TestChaosClusterLossPartitionHeal(t *testing.T) {
	fabric := netem.NewNetwork(0xC0FFEE)
	defer fabric.Close()
	fabric.SetDefaults(netem.LinkParams{
		Loss:    0.20,
		Latency: 2 * time.Millisecond,
		Jitter:  2 * time.Millisecond,
	})

	const n = 9
	// Phase 1: every join must complete despite 20% loss (startChaos
	// fails the test on any join error).
	nodes, addrs := startChaosCluster(t, fabric, n, 30*time.Second)
	for _, node := range nodes {
		node.StartStabilize(20 * time.Millisecond)
	}
	waitConverged(t, nodes, 30*time.Second, "initial convergence at 20% loss")
	waitMembership(t, nodes, 30*time.Second)

	// Phase 2: a backhoe takes out the link between the first four
	// nodes and the rest. Each side must evict the other and settle
	// into its own consistent ring, still under loss.
	fabric.Partition("backhoe", addrs[:4])
	deadline := time.Now().Add(45 * time.Second)
	for !ringFullyConsistent(nodes[:4]) || !ringFullyConsistent(nodes[4:]) {
		if time.Now().After(deadline) {
			for _, node := range nodes {
				t.Logf("%s: %v", node.ID().Short(), node.Ring())
			}
			t.Fatal("sides did not settle into separate rings during partition")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Phase 3: the partition heals and the loss clears; repair probes
	// must re-merge the two rings into one.
	fabric.Heal("backhoe")
	fabric.SetDefaults(netem.LinkParams{Latency: time.Millisecond})
	waitConverged(t, nodes, 60*time.Second, "re-merge after heal")

	// End-to-end delivery works for every ordered pair.
	for i, src := range nodes {
		for j, dst := range nodes {
			if i == j {
				continue
			}
			msg := []byte(fmt.Sprintf("after-heal %d->%d", i, j))
			if err := src.Send(dst.ID(), msg); err != nil {
				t.Fatal(err)
			}
			select {
			case d := <-dst.Deliveries():
				if string(d.Payload) != string(msg) {
					t.Fatalf("payload = %q want %q", d.Payload, msg)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("delivery %d->%d failed after heal", i, j)
			}
		}
	}

	if s := fabric.TotalStats(); s.Lost == 0 || s.PartitionDropped == 0 {
		t.Fatalf("chaos run injected no faults? %+v", s)
	}
}

// TestJoinAndSendUnderThirtyPercentLoss exercises the retry path harder:
// five nodes join through 30% loss, converge, and deliver data with an
// application-level retry loop.
func TestJoinAndSendUnderThirtyPercentLoss(t *testing.T) {
	fabric := netem.NewNetwork(7)
	defer fabric.Close()
	fabric.SetDefaults(netem.LinkParams{Loss: 0.30, Latency: time.Millisecond})

	nodes, _ := startChaosCluster(t, fabric, 5, 30*time.Second)
	for _, node := range nodes {
		node.StartStabilize(20 * time.Millisecond)
	}
	waitConverged(t, nodes, 30*time.Second, "convergence at 30% loss")

	// Data packets are fire-and-forget; under loss the application
	// retries. Every pair must get through within a bounded number of
	// attempts.
	src, dst := nodes[1], nodes[4]
	delivered := false
	for attempt := 0; attempt < 40 && !delivered; attempt++ {
		if err := src.Send(dst.ID(), []byte("persistent")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-dst.Deliveries():
			delivered = true
		case <-time.After(150 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("data never delivered under 30% loss despite 40 attempts")
	}
}

// TestJoinSurvivesLostReply pins the idempotent-retry path: the very
// first join reply is always lost (100% loss on the reply link), so the
// joiner must retransmit and the predecessor must re-splice without
// corrupting the ring.
func TestJoinSurvivesLostReply(t *testing.T) {
	fabric := netem.NewNetwork(3)
	defer fabric.Close()
	boot, err := fabric.Endpoint("em://boot")
	if err != nil {
		t.Fatal(err)
	}
	join, err := fabric.Endpoint("em://joiner")
	if err != nil {
		t.Fatal(err)
	}
	bootNode := NewNodeTransport(ident.FromString("boot"), boot)
	t.Cleanup(func() { bootNode.Close() })
	bootNode.Bootstrap()
	joiner := NewNodeTransport(ident.FromString("late"), join)
	joiner.SetRetryPolicy(chaosRetry())
	t.Cleanup(func() { joiner.Close() })

	// Sever boot→joiner: the join request arrives, the reply vanishes.
	fabric.SetLink("em://boot", "em://joiner", netem.LinkParams{Loss: 1})
	done := make(chan error, 1)
	go func() { done <- joiner.Join("em://boot", 20*time.Second) }()
	time.Sleep(150 * time.Millisecond) // a few doomed attempts
	fabric.ClearLink("em://boot", "em://joiner")
	if err := <-done; err != nil {
		t.Fatalf("join must survive lost replies: %v", err)
	}
	if succ, _, ok := bootNode.Successor(); !ok || succ != joiner.ID() {
		t.Fatal("bootstrap did not adopt the joiner")
	}
	if succ, _, ok := joiner.Successor(); !ok || succ != bootNode.ID() {
		t.Fatal("joiner did not adopt the bootstrap")
	}
	// The replayed splices must not have corrupted the two-node ring.
	if pred, _, ok := bootNode.Predecessor(); !ok || pred != joiner.ID() {
		t.Fatal("bootstrap predecessor wrong after retried join")
	}
}

// TestDroppedDeliveriesCounter pins the non-blocking delivery path: a
// consumer that never drains cannot wedge the read loop, and the drops
// are counted.
func TestDroppedDeliveriesCounter(t *testing.T) {
	fabric := netem.NewNetwork(1)
	defer fabric.Close()
	nodes, _ := startChaosCluster(t, fabric, 2, 5*time.Second)
	a, b := nodes[0], nodes[1]

	const total = 100 // deliveries channel buffers 64
	for i := 0; i < total; i++ {
		if err := a.Send(b.ID(), []byte("flood")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.DroppedDeliveries() < total-64 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped = %d, want %d (read loop stalled?)", b.DroppedDeliveries(), total-64)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The read loop is still alive: one more packet is processed (and
	// counted, since the buffer is still full).
	if err := a.Send(b.ID(), []byte("alive")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for b.DroppedDeliveries() < total-64+1 {
		if time.Now().After(deadline) {
			t.Fatal("read loop did not process traffic after drops")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRequestTableBounded pins the in-flight cap: the 65th concurrent
// request must fail fast with ErrBusy instead of growing the table.
func TestRequestTableBounded(t *testing.T) {
	fabric := netem.NewNetwork(1)
	defer fabric.Close()
	ep, err := fabric.Endpoint("em://solo")
	if err != nil {
		t.Fatal(err)
	}
	n := NewNodeTransport(ident.FromString("solo"), ep)
	t.Cleanup(func() { n.Close() })
	ids := make([]uint64, 0, maxInFlight)
	for i := 0; i < maxInFlight; i++ {
		id, _, err := n.register()
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if _, _, err := n.register(); err != ErrBusy {
		t.Fatalf("table overflow = %v, want ErrBusy", err)
	}
	n.unregister(ids[0])
	if _, _, err := n.register(); err != nil {
		t.Fatalf("register after unregister: %v", err)
	}
}

// TestStaleStabilizeReplyIgnored pins the reply window: a reply whose
// request ID was never issued (or long evicted) must not mutate ring
// state.
func TestStaleStabilizeReplyIgnored(t *testing.T) {
	fabric := netem.NewNetwork(1)
	defer fabric.Close()
	nodes, addrs := startChaosCluster(t, fabric, 3, 5*time.Second)
	// Forge a stabilize reply to node 0 claiming a bogus predecessor,
	// with a request ID node 0 never issued.
	forged, err := fabric.Endpoint("em://forger")
	if err != nil {
		t.Fatal(err)
	}
	defer forged.Close()
	evil := NewNodeTransport(ident.FromString("evil"), forged)
	t.Cleanup(func() { evil.Close() })
	succBefore, _, _ := nodes[0].Successor()
	// An identifier one past node 0's own would win adoption as its new
	// successor — if the reply were accepted.
	tempting := nodes[0].ID()
	tempting[len(tempting)-1]++
	pktReply := &wire.Packet{
		Type: wire.TypeStabilizeReply, TTL: wire.DefaultTTL,
		Dst: nodes[0].ID(), Src: evil.ID(), ReqID: 0xdead,
		Payload: proto.EncodePeers([]proto.Peer{{ID: tempting, Addr: "em://forger"}}),
	}
	if err := evil.send(addrs[0], pktReply); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	succAfter, _, _ := nodes[0].Successor()
	if succBefore != succAfter {
		t.Fatalf("stale reply mutated successor: %s → %s", succBefore.Short(), succAfter.Short())
	}
}
