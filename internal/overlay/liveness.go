// The driver side of the BFD-style successor liveness detector (see
// internal/proto/liveness.go for the protocol): a timer loop that
// re-reads the negotiated interval each round and feeds liveness ticks
// into the core. Time lives entirely here — the core only counts miss
// windows and negotiates intervals.
package overlay

import (
	"time"

	"rofl/internal/proto"
)

// LivenessParams shapes the adaptive failure detector (re-exported from
// the protocol core).
type LivenessParams = proto.LivenessParams

// DefaultLivenessParams detects a dead successor in roughly
// (Multiplier+1)×MinTx ≈ 40ms on a LAN — two orders of magnitude under
// the stabilize-timer epochs it fronts.
func DefaultLivenessParams() LivenessParams { return proto.DefaultLivenessParams() }

// StartLiveness begins probing the node's current successor with the
// given parameters (zero fields take defaults). Idempotent; stops at
// Close. Probing tracks successor changes automatically: whenever the
// successor-group head changes (evictions, joins, repairs), the
// detector re-arms against the new head with a fresh miss count.
//
// Deprecated: set Config.EnableLiveness and Config.Liveness at
// construction.
func (n *Node) StartLiveness(p LivenessParams) {
	n.mu.Lock()
	if n.closed || n.livenessStop != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.livenessStop = stop
	n.core.SetLiveness(p)
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			t := time.NewTimer(n.livenessInterval())
			select {
			case <-stop:
				t.Stop()
				return
			case <-t.C:
			}
			n.livenessTick()
		}
	}()
}

// livenessInterval is the negotiated transmit interval toward the
// current monitoring target: max(local MinTx, remote advertised MinRx).
func (n *Node) livenessInterval() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.LivenessInterval()
}

// livenessTick feeds one detector round into the core and executes what
// it emits. A tick that fires after Close is a no-op.
func (n *Node) livenessTick() {
	a := getActs()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		putActs(a)
		return
	}
	n.core.TickLiveness(a)
	n.mu.Unlock()
	_ = n.run(a)
	putActs(a)
}
