// BFD-style adaptive successor liveness (modeled on RFC 5880's
// asynchronous mode, not its bit layout): the node probes its current
// successor on a negotiated interval and declares it dead after
// Multiplier consecutive unanswered probes — millisecond-scale failure
// detection layered under the stabilize-timer eviction, which stays as
// the slow-path fallback (and the only detector when liveness is not
// started).
//
// Negotiation follows BFD's rule: each side advertises the interval it
// wants to transmit at (MinTx) and the fastest it is willing to be
// probed at (MinRx); the effective transmit interval toward a peer is
// max(local MinTx, remote MinRx), so a loaded node slows its probers
// down by advertising a larger MinRx. The advertisement rides in every
// probe and every reply.
package overlay

import (
	"encoding/binary"
	"time"

	"rofl/internal/wire"
)

// LivenessParams shapes the adaptive failure detector.
type LivenessParams struct {
	// MinTx is the interval this node wants between its own probes.
	MinTx time.Duration
	// MinRx is the fastest probing this node accepts from a peer; it is
	// advertised in probes and replies, and peers must slow to it.
	MinRx time.Duration
	// Multiplier is how many consecutive unanswered probes declare the
	// successor dead (BFD's detect multiplier; default 3).
	Multiplier int
}

// DefaultLivenessParams detects a dead successor in roughly
// (Multiplier+1)×MinTx ≈ 40ms on a LAN — two orders of magnitude under
// the stabilize-timer epochs it fronts.
func DefaultLivenessParams() LivenessParams {
	return LivenessParams{MinTx: 10 * time.Millisecond, MinRx: 5 * time.Millisecond, Multiplier: 3}
}

// normalize fills zero fields with defaults.
func (p LivenessParams) normalize() LivenessParams {
	d := DefaultLivenessParams()
	if p.MinTx <= 0 {
		p.MinTx = d.MinTx
	}
	if p.MinRx <= 0 {
		p.MinRx = d.MinRx
	}
	if p.Multiplier <= 0 {
		p.Multiplier = d.Multiplier
	}
	return p
}

// livenessAdLen is the probe payload: minTx(4) minRx(4) multiplier(1),
// intervals in microseconds.
const livenessAdLen = 9

// encodeLivenessAd serializes an interval advertisement.
func encodeLivenessAd(p LivenessParams) []byte {
	buf := make([]byte, livenessAdLen)
	binary.BigEndian.PutUint32(buf[0:], uint32(p.MinTx/time.Microsecond))
	binary.BigEndian.PutUint32(buf[4:], uint32(p.MinRx/time.Microsecond))
	buf[8] = uint8(min(p.Multiplier, 255))
	return buf
}

// decodeLivenessAd parses an advertisement; ok is false on a short or
// garbled payload (the probe still proves liveness either way).
func decodeLivenessAd(b []byte) (LivenessParams, bool) {
	if len(b) < livenessAdLen {
		return LivenessParams{}, false
	}
	return LivenessParams{
		MinTx:      time.Duration(binary.BigEndian.Uint32(b[0:])) * time.Microsecond,
		MinRx:      time.Duration(binary.BigEndian.Uint32(b[4:])) * time.Microsecond,
		Multiplier: int(b[8]),
	}, true
}

// StartLiveness begins probing the node's current successor with the
// given parameters. Idempotent; stops at Close. Probing tracks
// successor changes automatically: whenever the successor-group head
// changes (evictions, joins, repairs), the detector re-arms against the
// new head with a fresh miss count.
func (n *Node) StartLiveness(p LivenessParams) {
	p = p.normalize()
	n.mu.Lock()
	if n.closed || n.livenessStop != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.livenessStop = stop
	n.liveness = p
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			t := time.NewTimer(n.livenessInterval())
			select {
			case <-stop:
				t.Stop()
				return
			case <-t.C:
			}
			n.livenessTick()
		}
	}()
}

// livenessInterval is the negotiated transmit interval toward the
// current monitoring target: max(local MinTx, remote advertised MinRx).
func (n *Node) livenessInterval() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	iv := n.liveness.MinTx
	if n.bfdRemoteMinRx > iv {
		iv = n.bfdRemoteMinRx
	}
	return iv
}

// livenessTick runs one detector round: account a miss window for the
// previous probe, fail the successor over once Multiplier windows
// elapsed unanswered, otherwise transmit the next probe.
func (n *Node) livenessTick() {
	ins := n.ins.Load()
	n.mu.Lock()
	if n.closed || len(n.succs) == 0 || n.succs[0].ID == n.id {
		n.bfdTarget = entry{}
		n.bfdMisses = 0
		n.mu.Unlock()
		return
	}
	succ := n.succs[0]
	if n.bfdTarget.ID != succ.ID {
		// New monitoring target (join, eviction, ring repair): re-arm.
		n.bfdTarget = succ
		n.bfdMisses = 0
		n.bfdRemoteMinRx = 0
	}
	var dead entry
	failed := false
	if n.bfdMisses >= n.liveness.Multiplier {
		dead = succ
		n.dropSuccessorLocked(dead)
		n.bfdTarget = entry{}
		n.bfdMisses = 0
		n.bfdRemoteMinRx = 0
		failed = true
	}
	var pkt *wire.Packet
	var addr string
	if !failed {
		n.bfdMisses++
		n.reqSeq++
		pkt = &wire.Packet{
			Type: wire.TypeLiveness, TTL: wire.DefaultTTL,
			Dst: succ.ID, Src: n.id, ReqID: n.reqSeq,
			Payload: encodeLivenessAd(n.liveness),
		}
		addr = succ.Addr
	}
	n.mu.Unlock()
	if failed {
		ins.LivenessFailovers.Inc()
		ins.SuccEvictions.Inc()
		ins.Events.Warn(eventSuccEvicted,
			"peer", dead.ID.Short(), "addr", dead.Addr, "reason", "liveness-timeout")
		return
	}
	ins.LivenessProbes.Inc()
	_ = n.send(addr, pkt)
}

// handleLivenessProbe answers a probe immediately with this node's own
// advertisement — the responder side never times anything, it only
// proves it is alive (BFD asynchronous mode with the passive role). A
// probe from the current predecessor also refreshes the predecessor
// liveness signal the stabilize detector reads.
//
//rofllint:coldpath liveness control message, paced by the BFD interval, not per forwarded packet
func (n *Node) handleLivenessProbe(pkt *wire.Packet, from string) {
	n.mu.Lock()
	delete(n.quar, pkt.Src) // a probing peer is alive by definition
	if n.pred != nil && pkt.Src == n.pred.ID {
		n.predMisses = 0
	}
	ad := n.liveness.normalize() // zero (liveness not started) advertises defaults
	self := n.id
	n.mu.Unlock()
	out := &wire.Packet{
		Type: wire.TypeLivenessReply, TTL: wire.DefaultTTL,
		Dst: pkt.Src, Src: self, ReqID: pkt.ReqID,
		Payload: encodeLivenessAd(ad),
	}
	_ = n.send(from, out)
}

// handleLivenessReply clears the miss window when the answer comes from
// the successor currently being monitored, and adopts the successor's
// advertised MinRx as the negotiation floor. A liveness reply is also
// proof enough for the stabilize-timer detector: a successor that
// answers probes must not be evicted for losing stabilize replies.
//
//rofllint:coldpath liveness control message, paced by the BFD interval, not per forwarded packet
func (n *Node) handleLivenessReply(pkt *wire.Packet, from string) {
	n.mu.Lock()
	delete(n.quar, pkt.Src) // an answering peer is alive by definition
	if n.bfdTarget.ID != pkt.Src {
		n.mu.Unlock()
		return // stale reply from a previous target
	}
	n.bfdMisses = 0
	if ad, ok := decodeLivenessAd(pkt.Payload); ok {
		n.bfdRemoteMinRx = ad.MinRx
	}
	if len(n.succs) > 0 && n.succs[0].ID == pkt.Src {
		n.succMisses = 0
	}
	n.learnLocked(entry{ID: pkt.Src, Addr: from})
	n.mu.Unlock()
}
