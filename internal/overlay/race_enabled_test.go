//go:build race

package overlay

// raceEnabled reports whether the race detector is compiled in. Under
// race, sync.Pool deliberately discards a fraction of puts to widen
// the schedules it can observe, so pooled buffers show up as
// allocations and AllocsPerRun pins are meaningless.
const raceEnabled = true
