package overlay

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/proto"
	"rofl/internal/telemetry"
	"rofl/internal/wire"
)

// benchTransport is a sink: sends vanish, Recv blocks until Close. It
// isolates the node's own forwarding cost (lock, next-hop selection,
// marshal) from socket and fabric latency.
type benchTransport struct {
	closed chan struct{}
	once   sync.Once
}

func newBenchTransport() *benchTransport { return &benchTransport{closed: make(chan struct{})} }

func (s *benchTransport) Send(addr string, p []byte) error { return nil }
func (s *benchTransport) Recv() ([]byte, string, error) {
	<-s.closed
	return nil, "", errors.New("benchTransport closed")
}
func (s *benchTransport) LocalAddr() string { return "bench:0" }
func (s *benchTransport) Close() error {
	s.once.Do(func() { close(s.closed) })
	return nil
}

// benchKnown fills the remembered-peer set to the core's capacity
// bound (proto's maxKnown), the steady-state shape of a long-lived
// node.
const benchKnown = 128

// benchNode builds a node with a full successor group, a predecessor,
// and nKnown remembered peers — the steady-state shape of a member of a
// large ring.
func benchNode(tb testing.TB, nKnown int) *Node {
	tb.Helper()
	n := NewNodeTransport(ident.FromUint64(1000), newBenchTransport())
	tb.Cleanup(func() { n.Close() })
	pred := proto.Peer{ID: ident.FromUint64(500), Addr: "peer:500"}
	n.mu.Lock()
	n.core.InstallRing([]proto.Peer{
		{ID: ident.FromUint64(2000), Addr: "peer:2000"},
		{ID: ident.FromUint64(3000), Addr: "peer:3000"},
		{ID: ident.FromUint64(4000), Addr: "peer:4000"},
	}, &pred)
	for i := 0; i < nKnown; i++ {
		n.core.Learn(proto.Peer{ID: ident.FromUint64(uint64(10000 + i)), Addr: fmt.Sprintf("peer:%d", 10000+i)})
	}
	n.mu.Unlock()
	return n
}

// BenchmarkForwardData measures one greedy next-hop decision plus
// marshal and (sunk) send — the per-hop cost of the data path.
func BenchmarkForwardData(b *testing.B) {
	n := benchNode(b, benchKnown)
	pkt := &wire.Packet{
		Type: wire.TypeData, TTL: wire.DefaultTTL,
		Dst: ident.FromUint64(3500), Src: ident.FromUint64(77),
		Payload: make([]byte, 64),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.forward(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardDataInstrumented is BenchmarkForwardData with a
// telemetry registry and counters attached — the delta against the
// uninstrumented run is the whole observability tax on the hot path
// (expected: a couple of atomic adds, zero allocations).
func BenchmarkForwardDataInstrumented(b *testing.B) {
	n := benchNode(b, benchKnown)
	n.SetTelemetry(telemetry.NewRegistry(), nil)
	pkt := &wire.Packet{
		Type: wire.TypeData, TTL: wire.DefaultTTL,
		Dst: ident.FromUint64(3500), Src: ident.FromUint64(77),
		Payload: make([]byte, 64),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.forward(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestForwardInstrumentedZeroAllocs pins the observability tax at zero
// allocations per forwarded packet: counters are pre-resolved atomic
// handles, not map lookups, so attaching a registry must not put the
// data path on the heap.
func TestForwardInstrumentedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode defeats sync.Pool reuse, so alloc counts are meaningless")
	}
	n := benchNode(t, benchKnown)
	reg := telemetry.NewRegistry()
	n.SetTelemetry(reg, nil)
	pkt := &wire.Packet{
		Type: wire.TypeData, TTL: wire.DefaultTTL,
		Dst: ident.FromUint64(3500), Src: ident.FromUint64(77),
		Payload: make([]byte, 64),
	}
	// Warm the send-buffer pool before measuring.
	if err := n.forward(pkt); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := n.forward(pkt); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("instrumented forward allocates %.2f per op, want 0", allocs)
	}
	if got := reg.Counter(metricForward).Value(); got == 0 {
		t.Fatal("forward counter did not move")
	}
}

// BenchmarkHandleDataForward measures the full receive hot path for a
// transit packet, exactly as the read loop runs it: decode the
// datagram, dispatch, pick the next hop, re-marshal, send.
func BenchmarkHandleDataForward(b *testing.B) {
	n := benchNode(b, benchKnown)
	raw, err := (&wire.Packet{
		Type: wire.TypeData, TTL: wire.DefaultTTL,
		Dst: ident.FromUint64(3500), Src: ident.FromUint64(77),
		Payload: make([]byte, 64),
	}).Marshal()
	if err != nil {
		b.Fatal(err)
	}
	var pkt wire.Packet
	a := getActs()
	defer putActs(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pkt.DecodeFromBytes(raw); err != nil {
			b.Fatal(err)
		}
		n.handle(&pkt, "peer:77", a)
	}
}

// BenchmarkHandleDataDeliver measures the receive hot path for a packet
// addressed to the local node: decode, dispatch, copy the payload to
// the application channel (drained by a cleanup-managed consumer).
func BenchmarkHandleDataDeliver(b *testing.B) {
	n := benchNode(b, benchKnown)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-n.Deliveries():
			case <-stop:
				return
			}
		}
	}()
	b.Cleanup(func() { close(stop) })
	raw, err := (&wire.Packet{
		Type: wire.TypeData, TTL: wire.DefaultTTL,
		Dst: ident.FromUint64(1000), Src: ident.FromUint64(77),
		Payload: make([]byte, 64),
	}).Marshal()
	if err != nil {
		b.Fatal(err)
	}
	var pkt wire.Packet
	a := getActs()
	defer putActs(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pkt.DecodeFromBytes(raw); err != nil {
			b.Fatal(err)
		}
		n.handle(&pkt, "peer:77", a)
	}
}

// BenchmarkStabilizeRound measures one stabilization round with a full
// known set: gossip sampling, probe selection, and two control sends.
func BenchmarkStabilizeRound(b *testing.B) {
	n := benchNode(b, benchKnown)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.stabilizeOnceRound()
	}
}

// BenchmarkLearnAtCapacity measures remembering a fresh peer into a
// full known set, where every learn must pick an eviction victim.
func BenchmarkLearnAtCapacity(b *testing.B) {
	n := benchNode(b, benchKnown)
	b.ReportAllocs()
	b.ResetTimer()
	n.mu.Lock()
	for i := 0; i < b.N; i++ {
		n.core.Learn(proto.Peer{ID: ident.FromUint64(1<<32 + uint64(i)), Addr: "peer:fresh"})
	}
	n.mu.Unlock()
}
