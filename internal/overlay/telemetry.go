package overlay

import (
	"rofl/internal/telemetry"
)

// Instruments bundles the telemetry handles the node updates as it
// runs. Handles are resolved once at wiring time (SetTelemetry) and
// updated with single atomic adds, so instrumentation costs the hot
// path no allocations and no map lookups; unset handles are nil and
// nil-safe. The struct is swapped in atomically, letting SetTelemetry
// race harmlessly with a running read loop.
type Instruments struct {
	// Data path.
	Forwards      *telemetry.Counter // data packets sent onward (originated or transit)
	NoRouteDrops  *telemetry.Counter // no pointer made greedy progress
	TTLDrops      *telemetry.Counter // hop budget exhausted in transit
	GateDrops     *telemetry.Counter // admission gate rejected delivery
	Delivered     *telemetry.Counter // data packets handed to the application
	DeliveryDrops *telemetry.Counter // application channel full (slow consumer)

	// Control path.
	Retransmits     *telemetry.Counter // control request retransmissions (attempts past the first)
	RequestTimeouts *telemetry.Counter // control requests that exhausted their retry budget
	StabilizeRounds *telemetry.Counter // stabilization rounds run
	JoinsServed     *telemetry.Counter // join requests this node answered as predecessor

	// Failure detection.
	SuccEvictions     *telemetry.Counter // successors declared dead (any detector)
	PredClears        *telemetry.Counter // predecessor pointers cleared as dead
	LivenessProbes    *telemetry.Counter // BFD-style probes transmitted
	LivenessFailovers *telemetry.Counter // evictions triggered by the liveness detector

	// Events is the structured event log; nil drops all events.
	Events *telemetry.EventLog
}

// The overlay's metric and event catalog: every series the node
// registers and every structured event type it emits, in one place
// (documented in DESIGN.md §9). Families with a reason/kind dimension
// share a name and split by label.
//
//rofllint:metrics
const (
	metricForward          = "rofl_overlay_forward_total"
	metricDropNoRoute      = `rofl_overlay_drop_total{reason="no_route"}`
	metricDropTTL          = `rofl_overlay_drop_total{reason="ttl"}`
	metricDropGate         = `rofl_overlay_drop_total{reason="gate"}`
	metricDropSlow         = `rofl_overlay_drop_total{reason="slow_consumer"}`
	metricDelivered        = "rofl_overlay_delivered_total"
	metricRetransmit       = "rofl_overlay_retransmit_total"
	metricReqTimeout       = "rofl_overlay_request_timeout_total"
	metricStabilizeRound   = "rofl_overlay_stabilize_round_total"
	metricJoinServed       = "rofl_overlay_join_served_total"
	metricEvictSucc        = `rofl_overlay_eviction_total{kind="successor"}`
	metricEvictPred        = `rofl_overlay_eviction_total{kind="predecessor"}`
	metricLivenessProbe    = "rofl_overlay_liveness_probe_total"
	metricLivenessFailover = "rofl_overlay_liveness_failover_total"

	// Structured event types (EventLog).
	eventPredCleared    = "pred_cleared"
	eventSuccEvicted    = "succ_evicted"
	eventRequestTimeout = "request_timeout"
	eventJoinServed     = "join_served"
)

// SetTelemetry wires the node's counters into reg and its structured
// events into log. Either may be nil (events-only or counters-only
// wiring). Safe to call while the node runs; per-packet updates switch
// to the new handles atomically.
func (n *Node) SetTelemetry(reg *telemetry.Registry, log *telemetry.EventLog) {
	ins := &Instruments{Events: log}
	if reg != nil {
		ins.Forwards = reg.Counter(metricForward)
		ins.NoRouteDrops = reg.Counter(metricDropNoRoute)
		ins.TTLDrops = reg.Counter(metricDropTTL)
		ins.GateDrops = reg.Counter(metricDropGate)
		ins.DeliveryDrops = reg.Counter(metricDropSlow)
		ins.Delivered = reg.Counter(metricDelivered)
		ins.Retransmits = reg.Counter(metricRetransmit)
		ins.RequestTimeouts = reg.Counter(metricReqTimeout)
		ins.StabilizeRounds = reg.Counter(metricStabilizeRound)
		ins.JoinsServed = reg.Counter(metricJoinServed)
		ins.SuccEvictions = reg.Counter(metricEvictSucc)
		ins.PredClears = reg.Counter(metricEvictPred)
		ins.LivenessProbes = reg.Counter(metricLivenessProbe)
		ins.LivenessFailovers = reg.Counter(metricLivenessFailover)
	}
	n.ins.Store(ins)
}

// Instruments returns the node's current telemetry handles (never nil;
// an unwired node carries a zero Instruments whose handles are all
// nil).
func (n *Node) Instruments() *Instruments { return n.ins.Load() }

// PeerStatus is one ring pointer in a Status snapshot.
type PeerStatus struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Status is the node's ring snapshot, shaped for the /ring endpoint:
// identity, pointers, and pointer-cache occupancy.
type Status struct {
	ID                string       `json:"id"`
	Addr              string       `json:"addr"`
	Predecessor       *PeerStatus  `json:"predecessor,omitempty"`
	Successors        []PeerStatus `json:"successors"`
	KnownPeers        int          `json:"known_peers"`
	DroppedDeliveries uint64       `json:"dropped_deliveries"`
}

// Status returns a consistent snapshot of the node's ring state.
func (n *Node) Status() Status {
	n.mu.Lock()
	st := Status{
		ID:         n.id.String(),
		Addr:       n.tr.LocalAddr(),
		KnownPeers: n.core.KnownPeers(),
	}
	if p, ok := n.core.Predecessor(); ok {
		st.Predecessor = &PeerStatus{ID: p.ID.String(), Addr: p.Addr}
	}
	succs := n.core.Successors()
	st.Successors = make([]PeerStatus, 0, len(succs))
	for _, s := range succs {
		st.Successors = append(st.Successors, PeerStatus{ID: s.ID.String(), Addr: s.Addr})
	}
	n.mu.Unlock()
	st.DroppedDeliveries = n.dropCount.Load()
	return st
}
