// Package linkstate models the OSPF-like protocol ROFL assumes
// underneath it (paper §2.1): a link-state protocol that gives every
// router a map of the physical network — not routes to hosts — detects
// link and node failures, and notifies the routing layer.
//
// In the simulator all routers share one converged map with per-query
// failure filters; that matches the paper's steady-state assumption
// ("link/router failures that do not trigger partitions [recover in
// times] comparable to OSPF recovery times", §6.2) while still charging
// the flooding cost of each LSA to the metrics sink.
package linkstate

import (
	"fmt"

	"rofl/internal/sim"
	"rofl/internal/topology"
)

// Map is the converged link-state view over a static topology plus a
// dynamic set of failed links and routers.
type Map struct {
	g       *topology.Graph
	metrics sim.Metrics

	failedLink map[[2]topology.NodeID]bool
	failedNode []bool
	version    uint64 // bumped on every topology change

	sptCache map[topology.NodeID]*cachedSPT

	linkDownFns []func(a, b topology.NodeID)
	nodeDownFns []func(n topology.NodeID)
}

type cachedSPT struct {
	version uint64
	spt     topology.SPT
}

// MsgLinkState is the metrics counter charged for LSA flooding.
const MsgLinkState = "linkstate-flood"

// New wraps g in a fully-up link-state map charging flood costs to m.
func New(g *topology.Graph, m sim.Metrics) *Map {
	return &Map{
		g:          g,
		metrics:    m,
		failedLink: make(map[[2]topology.NodeID]bool),
		failedNode: make([]bool, g.NumNodes()),
		sptCache:   make(map[topology.NodeID]*cachedSPT),
	}
}

// Graph returns the underlying static topology.
func (m *Map) Graph() *topology.Graph { return m.g }

// Version increases monotonically with every failure or repair; routing
// layers use it to invalidate derived state.
func (m *Map) Version() uint64 { return m.version }

// OnLinkDown registers a callback invoked when a link fails. The paper's
// routing layer uses this to tear down cached pointers whose source
// routes traverse the link (§3.2).
func (m *Map) OnLinkDown(fn func(a, b topology.NodeID)) {
	m.linkDownFns = append(m.linkDownFns, fn)
}

// OnNodeDown registers a callback invoked when a router fails.
func (m *Map) OnNodeDown(fn func(n topology.NodeID)) {
	m.nodeDownFns = append(m.nodeDownFns, fn)
}

func linkKey(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// Up reports whether the a–b link is usable: both endpoints alive and
// the link itself not failed. It is the LinkFilter all shortest-path
// queries run under.
func (m *Map) Up(a, b topology.NodeID) bool {
	if m.failedNode[a] || m.failedNode[b] {
		return false
	}
	return !m.failedLink[linkKey(a, b)]
}

// NodeUp reports whether router n is alive.
func (m *Map) NodeUp(n topology.NodeID) bool { return !m.failedNode[n] }

// floodCost charges one LSA flood: every live router re-floods the
// advertisement on each of its links once, so the cost is ~2·|E| hops.
func (m *Map) floodCost() {
	m.metrics.Count(MsgLinkState, int64(2*m.g.NumEdges()))
}

func (m *Map) bump() {
	m.version++
	// Drop the whole SPT cache; recomputation is lazy.
	for k := range m.sptCache {
		delete(m.sptCache, k)
	}
}

// FailLink marks the a–b link down, floods the LSA, and fires link-down
// callbacks.
func (m *Map) FailLink(a, b topology.NodeID) {
	k := linkKey(a, b)
	if m.failedLink[k] {
		return
	}
	m.failedLink[k] = true
	m.bump()
	m.floodCost()
	for _, fn := range m.linkDownFns {
		fn(a, b)
	}
}

// RestoreLink brings the a–b link back.
func (m *Map) RestoreLink(a, b topology.NodeID) {
	k := linkKey(a, b)
	if !m.failedLink[k] {
		return
	}
	delete(m.failedLink, k)
	m.bump()
	m.floodCost()
}

// FailNode marks router n down, floods, and fires node-down callbacks.
// Routers "monitor link-state advertisements and delete pointers to IDs
// residing at unreachable routers" (§3.2) via OnNodeDown.
func (m *Map) FailNode(n topology.NodeID) {
	if m.failedNode[n] {
		return
	}
	m.failedNode[n] = true
	m.bump()
	m.floodCost()
	for _, fn := range m.nodeDownFns {
		fn(n)
	}
}

// RestoreNode brings router n back.
func (m *Map) RestoreNode(n topology.NodeID) {
	if !m.failedNode[n] {
		return
	}
	m.failedNode[n] = false
	m.bump()
	m.floodCost()
}

func (m *Map) spt(src topology.NodeID) topology.SPT {
	if c, ok := m.sptCache[src]; ok && c.version == m.version {
		return c.spt
	}
	spt := m.g.Dijkstra(src, m.Up)
	m.sptCache[src] = &cachedSPT{version: m.version, spt: spt}
	return spt
}

// Reachable reports whether dst is reachable from src in the current
// failure state.
func (m *Map) Reachable(src, dst topology.NodeID) bool {
	if m.failedNode[src] || m.failedNode[dst] {
		return false
	}
	return m.spt(src).Reachable(dst)
}

// Path returns the current shortest src→dst router path (inclusive), or
// nil if unreachable.
func (m *Map) Path(src, dst topology.NodeID) []topology.NodeID {
	if m.failedNode[src] || m.failedNode[dst] {
		return nil
	}
	return m.spt(src).PathTo(dst)
}

// Hops returns the hop count of the current shortest src→dst path, or -1
// if unreachable.
func (m *Map) Hops(src, dst topology.NodeID) int {
	if m.failedNode[src] || m.failedNode[dst] {
		return -1
	}
	spt := m.spt(src)
	if !spt.Reachable(dst) {
		return -1
	}
	return spt.Hops[dst]
}

// Latency returns the weighted length of the shortest src→dst path in
// milliseconds, or -1 if unreachable.
func (m *Map) Latency(src, dst topology.NodeID) float64 {
	if m.failedNode[src] || m.failedNode[dst] {
		return -1
	}
	spt := m.spt(src)
	if !spt.Reachable(dst) {
		return -1
	}
	return spt.Dist[dst]
}

// NextHop returns the first router after src on the shortest path to
// dst, and whether one exists. Forwarding in Algorithm 2 resolves the
// chosen virtual-node pointer to a physical next hop through this.
func (m *Map) NextHop(src, dst topology.NodeID) (topology.NodeID, bool) {
	p := m.Path(src, dst)
	if len(p) < 2 {
		return 0, false
	}
	return p[1], true
}

// Component returns the set of routers reachable from start under the
// current failure state. Partition-repair (§3.2) is driven by
// per-component zero-node election.
func (m *Map) Component(start topology.NodeID) []topology.NodeID {
	if m.failedNode[start] {
		return nil
	}
	comp := m.g.Component(start, m.Up)
	out := comp[:0]
	for _, n := range comp {
		if !m.failedNode[n] {
			out = append(out, n)
		}
	}
	return out
}

// SamePartition reports whether a and b are currently in the same
// network-layer partition.
func (m *Map) SamePartition(a, b topology.NodeID) bool {
	return m.Reachable(a, b)
}

// PathOK reports whether every consecutive hop of a recorded source
// route is still usable — the validity check applied to cached pointers
// before forwarding over them.
func (m *Map) PathOK(path []topology.NodeID) bool {
	if len(path) == 0 {
		return false
	}
	if m.failedNode[path[0]] {
		return false
	}
	for i := 1; i < len(path); i++ {
		if m.failedNode[path[i]] || !m.Up(path[i-1], path[i]) {
			return false
		}
		if !m.g.HasEdge(path[i-1], path[i]) {
			return false
		}
	}
	return true
}

// String summarizes the map state.
func (m *Map) String() string {
	down := 0
	for _, f := range m.failedNode {
		if f {
			down++
		}
	}
	return fmt.Sprintf("linkstate{v=%d failedLinks=%d failedNodes=%d}", m.version, len(m.failedLink), down)
}
