package linkstate

import (
	"testing"

	"rofl/internal/sim"
	"rofl/internal/topology"
)

// ring4 builds 0-1-2-3-0 with unit weights.
func ring4() *topology.Graph {
	g := topology.NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	return g
}

func newMap(t *testing.T) (*Map, sim.Metrics) {
	t.Helper()
	m := sim.NewMetrics()
	return New(ring4(), m), m
}

func TestShortestPathsAllUp(t *testing.T) {
	ls, _ := newMap(t)
	if h := ls.Hops(0, 2); h != 2 {
		t.Fatalf("hops(0,2) = %d want 2", h)
	}
	if h := ls.Hops(0, 1); h != 1 {
		t.Fatalf("hops(0,1) = %d", h)
	}
	nh, ok := ls.NextHop(0, 1)
	if !ok || nh != 1 {
		t.Fatalf("next hop = %d ok=%v", nh, ok)
	}
	if lat := ls.Latency(0, 2); lat != 2 {
		t.Fatalf("latency = %v", lat)
	}
	if !ls.Reachable(0, 3) {
		t.Fatal("all up: everything reachable")
	}
}

func TestFailLinkReroutes(t *testing.T) {
	ls, m := newMap(t)
	before := ls.Hops(0, 1)
	ls.FailLink(0, 1)
	if ls.Up(0, 1) || ls.Up(1, 0) {
		t.Fatal("link must be down in both directions")
	}
	after := ls.Hops(0, 1)
	if before != 1 || after != 3 {
		t.Fatalf("hops before=%d after=%d want 1 then 3", before, after)
	}
	if m.Counter(MsgLinkState) == 0 {
		t.Fatal("LSA flood must be charged")
	}
	// Idempotent re-fail: no double flood.
	c := m.Counter(MsgLinkState)
	ls.FailLink(1, 0)
	if m.Counter(MsgLinkState) != c {
		t.Fatal("re-failing same link must be a no-op")
	}
	ls.RestoreLink(0, 1)
	if ls.Hops(0, 1) != 1 {
		t.Fatal("restore must reinstate direct path")
	}
	ls.RestoreLink(0, 1) // idempotent
}

func TestFailNode(t *testing.T) {
	ls, _ := newMap(t)
	ls.FailNode(1)
	if ls.NodeUp(1) {
		t.Fatal("node must be down")
	}
	if ls.Reachable(0, 1) || ls.Reachable(1, 0) {
		t.Fatal("failed node unreachable")
	}
	if h := ls.Hops(0, 2); h != 2 {
		t.Fatalf("0->2 must route around: %d", h)
	}
	if ls.Path(0, 1) != nil || ls.Hops(0, 1) != -1 || ls.Latency(0, 1) != -1 {
		t.Fatal("queries to failed node must fail cleanly")
	}
	ls.RestoreNode(1)
	if !ls.Reachable(0, 1) {
		t.Fatal("restored node reachable")
	}
}

func TestPartitionAndComponent(t *testing.T) {
	ls, _ := newMap(t)
	ls.FailLink(0, 1)
	ls.FailLink(2, 3)
	if ls.SamePartition(0, 2) {
		t.Fatal("0 and 2 must be partitioned")
	}
	if !ls.SamePartition(1, 2) || !ls.SamePartition(0, 3) {
		t.Fatal("halves must stay internally connected")
	}
	c0 := ls.Component(0)
	if len(c0) != 2 || c0[0] != 0 || c0[1] != 3 {
		t.Fatalf("component(0) = %v", c0)
	}
	ls.FailNode(0)
	if ls.Component(0) != nil {
		t.Fatal("component of failed node is nil")
	}
}

func TestCallbacks(t *testing.T) {
	ls, _ := newMap(t)
	var links [][2]topology.NodeID
	var nodes []topology.NodeID
	ls.OnLinkDown(func(a, b topology.NodeID) { links = append(links, [2]topology.NodeID{a, b}) })
	ls.OnNodeDown(func(n topology.NodeID) { nodes = append(nodes, n) })
	ls.FailLink(0, 1)
	ls.FailNode(2)
	if len(links) != 1 || links[0] != [2]topology.NodeID{0, 1} {
		t.Fatalf("link callbacks = %v", links)
	}
	if len(nodes) != 1 || nodes[0] != 2 {
		t.Fatalf("node callbacks = %v", nodes)
	}
}

func TestVersionBumpsAndCacheInvalidation(t *testing.T) {
	ls, _ := newMap(t)
	v0 := ls.Version()
	_ = ls.Hops(0, 2) // warm cache
	ls.FailLink(1, 2)
	if ls.Version() == v0 {
		t.Fatal("version must bump on failure")
	}
	if h := ls.Hops(0, 2); h != 2 {
		// still 2 via 3: 0-3-2
		t.Fatalf("post-failure hops = %d want 2", h)
	}
	if h := ls.Hops(1, 2); h != 3 {
		t.Fatalf("1->2 must detour: %d", h)
	}
}

func TestPathOK(t *testing.T) {
	ls, _ := newMap(t)
	good := []topology.NodeID{0, 1, 2}
	if !ls.PathOK(good) {
		t.Fatal("intact path must be OK")
	}
	ls.FailLink(1, 2)
	if ls.PathOK(good) {
		t.Fatal("path over failed link must be rejected")
	}
	ls.RestoreLink(1, 2)
	ls.FailNode(1)
	if ls.PathOK(good) {
		t.Fatal("path through failed node must be rejected")
	}
	if ls.PathOK(nil) {
		t.Fatal("empty path is not OK")
	}
	if ls.PathOK([]topology.NodeID{0, 2}) {
		t.Fatal("path over non-existent edge must be rejected")
	}
	if !ls.PathOK([]topology.NodeID{0}) {
		t.Fatal("single live node is a valid degenerate path")
	}
}

func TestNextHopUnreachable(t *testing.T) {
	ls, _ := newMap(t)
	ls.FailNode(1)
	ls.FailNode(3)
	if _, ok := ls.NextHop(0, 2); ok {
		t.Fatal("no next hop across partition")
	}
	if _, ok := ls.NextHop(0, 0); ok {
		t.Fatal("no next hop to self")
	}
}

func TestStringRenders(t *testing.T) {
	ls, _ := newMap(t)
	ls.FailLink(0, 1)
	ls.FailNode(2)
	if ls.String() == "" {
		t.Fatal("String must render")
	}
}
