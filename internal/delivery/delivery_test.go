package delivery

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
	"rofl/internal/vring"
)

func testNet(t *testing.T) (*vring.Network, *topology.ISP, sim.Metrics) {
	t.Helper()
	isp := topology.GenISP(topology.ISPConfig{
		Name: "t", Routers: 40, PoPs: 6, BackbonePerPoP: 2, PoPDegree: 2,
		IntraPoPDelay: 0.5, InterPoPDelay: 5, Hosts: 100, ZipfS: 1.2, Seed: 7,
	})
	m := sim.NewMetrics()
	n := vring.New(isp.Graph, m, vring.DefaultOptions())
	// Background hosts so the ring is non-trivial.
	for i := 0; i < 30; i++ {
		if _, err := n.JoinHost(ident.FromString(fmt.Sprintf("bg-%d", i)), isp.Access[i%len(isp.Access)]); err != nil {
			t.Fatal(err)
		}
	}
	return n, isp, m
}

func TestAnycastReachesSomeMember(t *testing.T) {
	n, isp, _ := testNet(t)
	g := ident.GroupFromString("dns")
	any := NewAnycast(n, g)
	memberRouters := map[vring.RouterID]bool{}
	for i := 0; i < 4; i++ {
		at := isp.Access[i*3]
		if _, err := any.AddMember(uint32(i+1), at); err != nil {
			t.Fatal(err)
		}
		memberRouters[at] = true
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		from := isp.Access[rng.Intn(len(isp.Access))]
		out, err := any.Send(from, rng)
		if err != nil {
			t.Fatalf("anycast send: %v", err)
		}
		if !memberRouters[out.Final] {
			t.Fatalf("delivered to non-member router %d", out.Final)
		}
		if !ident.SameGroup(out.VN.ID, g.Member(0)) {
			t.Fatal("delivered to a non-member virtual node")
		}
	}
}

func TestAnycastEmptyGroup(t *testing.T) {
	n, isp, _ := testNet(t)
	any := NewAnycast(n, ident.GroupFromString("empty"))
	rng := rand.New(rand.NewSource(2))
	if _, err := any.Send(isp.Access[0], rng); err == nil {
		t.Fatal("empty group must not deliver")
	}
}

func TestAnycastSendToSpecificSuffix(t *testing.T) {
	n, isp, _ := testNet(t)
	g := ident.GroupFromString("web")
	any := NewAnycast(n, g)
	at := isp.Access[4]
	if _, err := any.AddMember(7, at); err != nil {
		t.Fatal(err)
	}
	res, err := any.SendTo(isp.Backbone[0], 7)
	if err != nil || res.Final != at {
		t.Fatalf("SendTo: %+v %v", res, err)
	}
}

func TestMulticastTreeReachesAllMembers(t *testing.T) {
	n, isp, m := testNet(t)
	g := ident.GroupFromString("video")
	mc := NewMulticast(n, g, m)
	for i := 0; i < 6; i++ {
		if err := mc.Join(uint32(i+1), isp.Access[i*2]); err != nil {
			t.Fatalf("join member %d: %v", i, err)
		}
	}
	if mc.Members() != 6 {
		t.Fatalf("members = %d", mc.Members())
	}
	for i := 0; i < 6; i++ {
		reached, msgs, err := mc.Send(g.Member(uint32(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		if len(reached) != 6 {
			t.Fatalf("send from member %d reached %d/6", i+1, len(reached))
		}
		if msgs <= 0 {
			t.Fatal("multicast must cross links")
		}
		// Tree efficiency: messages bounded by tree size, not member
		// count × path length.
		if msgs >= mc.TreeRouters() {
			t.Fatalf("msgs %d >= tree routers %d (tree should be a tree)", msgs, mc.TreeRouters())
		}
	}
	if m.Counter(MsgPaint) == 0 {
		t.Fatal("painting must cost messages")
	}
}

func TestMulticastSingleMember(t *testing.T) {
	n, isp, m := testNet(t)
	mc := NewMulticast(n, ident.GroupFromString("solo"), m)
	if err := mc.Join(1, isp.Access[0]); err != nil {
		t.Fatal(err)
	}
	reached, msgs, err := mc.Send(mc.Group.Member(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 1 || msgs != 0 {
		t.Fatalf("solo send: reached=%d msgs=%d", len(reached), msgs)
	}
}

func TestMulticastNonMemberSend(t *testing.T) {
	n, _, m := testNet(t)
	mc := NewMulticast(n, ident.GroupFromString("x"), m)
	if _, _, err := mc.Send(ident.FromString("outsider")); !errors.Is(err, ErrNotMember) {
		t.Fatalf("want ErrNotMember, got %v", err)
	}
}

func TestMulticastLeaveAndPrune(t *testing.T) {
	n, isp, m := testNet(t)
	g := ident.GroupFromString("prune")
	mc := NewMulticast(n, g, m)
	for i := 0; i < 4; i++ {
		if err := mc.Join(uint32(i+1), isp.Access[i*4]); err != nil {
			t.Fatal(err)
		}
	}
	before := mc.TreeRouters()
	if err := mc.Leave(g.Member(4)); err != nil {
		t.Fatal(err)
	}
	if mc.Members() != 3 {
		t.Fatalf("members = %d", mc.Members())
	}
	if mc.TreeRouters() > before {
		t.Fatal("tree grew on leave")
	}
	// Remaining members still fully reachable.
	reached, _, err := mc.Send(g.Member(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 3 {
		t.Fatalf("reached %d/3 after prune", len(reached))
	}
	if err := mc.Leave(g.Member(4)); !errors.Is(err, ErrNotMember) {
		t.Fatalf("double leave: %v", err)
	}
}

func TestMulticastManyMembersEfficiency(t *testing.T) {
	// Tree flooding must cost far less than unicasting to every member
	// from the source.
	n, isp, m := testNet(t)
	g := ident.GroupFromString("big")
	mc := NewMulticast(n, g, m)
	for i := 0; i < 12; i++ {
		if err := mc.Join(uint32(i+1), isp.Access[(i*2+1)%len(isp.Access)]); err != nil {
			t.Fatal(err)
		}
	}
	reached, treeMsgs, err := mc.Send(g.Member(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 12 {
		t.Fatalf("reached %d/12", len(reached))
	}
	// Unicast comparison.
	srcRouter, _ := n.HostingRouter(g.Member(1))
	unicast := 0
	for i := 2; i <= 12; i++ {
		res, err := n.Route(srcRouter, g.Member(uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		unicast += res.Hops
	}
	t.Logf("tree=%d msgs vs unicast=%d msgs", treeMsgs, unicast)
	if treeMsgs >= unicast {
		t.Fatalf("tree (%d) should beat unicast fan-out (%d)", treeMsgs, unicast)
	}
}
