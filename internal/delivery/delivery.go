// Package delivery implements ROFL's enhanced delivery models (paper
// §5.2) on top of the intradomain virtual ring:
//
//   - Anycast: servers of group G join with identifiers (G, x); a sender
//     routes to (G, r) for an arbitrary suffix r, and greedy forwarding
//     delivers to the first member the packet encounters — no state or
//     control overhead beyond the members' ordinary joins.
//   - Multicast: a joining host anycasts toward a nearby member of G,
//     painting group pointers along the reverse path; the pointers form
//     a tree of bidirectional links over which data packets are flooded
//     (excluding the arrival link).
package delivery

import (
	"errors"
	"fmt"
	"math/rand"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/vring"
)

// Metrics counter names charged by this package.
const (
	MsgMulticast = "delivery-multicast"
	MsgPaint     = "delivery-paint"
)

// Errors returned by delivery operations.
var (
	ErrEmptyGroup = errors.New("delivery: group has no members")
	ErrNotMember  = errors.New("delivery: host is not a group member")
)

// Anycast wraps a group prefix for anycast sends over a ring network.
type Anycast struct {
	Net   *vring.Network
	Group ident.Group
}

// NewAnycast binds group to a network.
func NewAnycast(n *vring.Network, g ident.Group) *Anycast { return &Anycast{Net: n, Group: g} }

// AddMember joins a server into the group with the given suffix; it is
// an ordinary ring join of (G, x), which is the paper's point — anycast
// "requires no additional state or control message overhead beyond that
// of joining the network."
//
// A member's anycast catchment is the suffix interval from the previous
// member up to its own suffix, so spreading suffixes evenly over the
// 32-bit space balances load across members, and shifting them shifts
// load — the i3-style control the paper describes (§5.2).
func (a *Anycast) AddMember(suffix uint32, at vring.RouterID) (vring.JoinResult, error) {
	return a.Net.JoinHost(a.Group.Member(suffix), at)
}

// Send routes a packet to any member of the group: the destination
// carries a random suffix and delivery happens at the first router
// hosting any (G, *) identifier.
func (a *Anycast) Send(from vring.RouterID, rng *rand.Rand) (vring.Outcome, error) {
	dst := a.Group.RandomMember(rng)
	out, err := a.Net.RouteMatch(from, dst, func(r *vring.Router) (*vring.VirtualNode, bool) {
		for _, vn := range r.VNs {
			if !vn.Default && ident.SameGroup(vn.ID, dst) {
				return vn, true
			}
		}
		return nil, false
	})
	if err != nil {
		return out, err
	}
	if !out.Delivered {
		return out, fmt.Errorf("%w: %s", ErrEmptyGroup, a.Group.Member(0).Short())
	}
	return out, nil
}

// SendTo routes to a specific suffix — the paper's load-balancing knob
// ("hosts or intermediate routers may vary r and the suffixes to control
// the path", §5.1).
func (a *Anycast) SendTo(from vring.RouterID, suffix uint32) (vring.RouteResult, error) {
	return a.Net.Route(from, a.Group.Member(suffix))
}

// Multicast maintains one group's path-painted distribution tree.
type Multicast struct {
	Net     *vring.Network
	Group   ident.Group
	Metrics sim.Metrics

	// adj is the painted tree: bidirectional links between routers.
	adj map[vring.RouterID]map[vring.RouterID]bool
	// members maps member identifiers to their hosting routers.
	members map[ident.ID]vring.RouterID
	inTree  map[vring.RouterID]bool
}

// NewMulticast creates an empty tree for group g.
func NewMulticast(n *vring.Network, g ident.Group, m sim.Metrics) *Multicast {
	return &Multicast{
		Net: n, Group: g, Metrics: m,
		adj:     make(map[vring.RouterID]map[vring.RouterID]bool),
		members: make(map[ident.ID]vring.RouterID),
		inTree:  make(map[vring.RouterID]bool),
	}
}

// Join adds a member with the given suffix hosted at router `at`: the
// member joins the ring as (G, x), then anycasts toward the group,
// painting tree pointers back along the traversed path until the
// message intersects a router already in the tree (§5.2).
func (m *Multicast) Join(suffix uint32, at vring.RouterID) error {
	id := m.Group.Member(suffix)
	if _, err := m.Net.JoinHost(id, at); err != nil {
		return fmt.Errorf("delivery: joining member ring identity: %w", err)
	}
	m.members[id] = at
	if len(m.members) == 1 {
		// First member roots the tree.
		m.inTree[at] = true
		return nil
	}
	// Anycast toward the top of the group's suffix space (excluding
	// ourselves as a waypoint), stopping at the first router already on
	// the tree or hosting another member.
	accept := func(r *vring.Router) (*vring.VirtualNode, bool) {
		if m.inTree[r.Node] {
			// Any resident virtual node will do as the "delivery" point;
			// the router itself is what matters.
			for _, vn := range r.VNs {
				return vn, true
			}
		}
		for _, vn := range r.VNs {
			if !vn.Default && ident.SameGroup(vn.ID, id) && vn.ID != id {
				return vn, true
			}
		}
		return nil, false
	}
	probe := m.Group.Member(0xffffffff)
	out, err := m.Net.RouteMatch(at, probe, accept, id)
	if err != nil {
		return fmt.Errorf("delivery: painting toward group: %w", err)
	}
	if !out.Delivered {
		// The probe got stuck on a non-member between the group range and
		// the probe suffix; fall back to routing at a known member (the
		// group state the tree maintainer already has).
		var target ident.ID
		found := false
		for mid := range m.members {
			if mid == id {
				continue
			}
			//rofllint:ignore identcmp canonical minimum-ID member selection independent of map order; not a routing decision
			if !found || mid.Less(target) {
				target, found = mid, true
			}
		}
		if !found {
			return fmt.Errorf("delivery: no reachable member to paint toward")
		}
		out, err = m.Net.RouteMatch(at, target, accept, id)
		if err != nil {
			return fmt.Errorf("delivery: painting toward member: %w", err)
		}
		if !out.Delivered {
			return fmt.Errorf("delivery: painting failed to reach the tree")
		}
	}
	// Paint the reverse path up to (and including) the intersection.
	path := out.Path
	m.Metrics.Count(MsgPaint, int64(len(path)-1))
	for i := 1; i < len(path); i++ {
		m.link(path[i-1], path[i])
		if m.inTree[path[i]] && i < len(path)-1 {
			// Intersected the existing tree; later hops of the probe are
			// not painted.
			path = path[:i+1]
			break
		}
	}
	for _, r := range path {
		m.inTree[r] = true
	}
	return nil
}

func (m *Multicast) link(a, b vring.RouterID) {
	if a == b {
		return
	}
	if m.adj[a] == nil {
		m.adj[a] = make(map[vring.RouterID]bool)
	}
	if m.adj[b] == nil {
		m.adj[b] = make(map[vring.RouterID]bool)
	}
	m.adj[a][b] = true
	m.adj[b][a] = true
}

// Members returns the number of group members.
func (m *Multicast) Members() int { return len(m.members) }

// TreeRouters returns the number of routers on the tree.
func (m *Multicast) TreeRouters() int { return len(m.inTree) }

// Send floods a packet from the given member over the tree: each router
// forwards a copy out of every tree link except the one the packet
// arrived on (§5.2). It returns the set of member identifiers reached
// and the number of link crossings.
func (m *Multicast) Send(from ident.ID) (map[ident.ID]bool, int, error) {
	root, ok := m.members[from]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotMember, from.Short())
	}
	reachedRouters := map[vring.RouterID]bool{root: true}
	queue := []vring.RouterID{root}
	msgs := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := range m.adj[cur] {
			if reachedRouters[next] {
				continue
			}
			reachedRouters[next] = true
			msgs++
			queue = append(queue, next)
		}
	}
	m.Metrics.Count(MsgMulticast, int64(msgs))
	reached := make(map[ident.ID]bool)
	for id, r := range m.members {
		if reachedRouters[r] {
			reached[id] = true
		}
	}
	return reached, msgs, nil
}

// Leave removes a member; if its router no longer hosts any member and
// is a tree leaf, the dangling branch is pruned.
func (m *Multicast) Leave(id ident.ID) error {
	at, ok := m.members[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotMember, id.Short())
	}
	delete(m.members, id)
	if err := m.Net.LeaveHost(id); err != nil {
		return err
	}
	// Prune leaf branches that no longer lead to members.
	m.prune(at)
	return nil
}

func (m *Multicast) hostsMember(r vring.RouterID) bool {
	for _, at := range m.members {
		if at == r {
			return true
		}
	}
	return false
}

func (m *Multicast) prune(r vring.RouterID) {
	for {
		if m.hostsMember(r) || len(m.adj[r]) != 1 {
			return
		}
		var next vring.RouterID
		for n := range m.adj[r] {
			next = n
		}
		delete(m.adj[r], next)
		delete(m.adj[next], r)
		delete(m.adj, r)
		delete(m.inTree, r)
		r = next
	}
}
