package secure

import (
	"errors"
	"math/rand"
	"testing"

	"rofl/internal/ident"
)

type testRand struct{ r *rand.Rand }

func (t testRand) Read(p []byte) (int, error) { return t.r.Read(p) }

func newIdentity(t *testing.T, seed int64) *ident.Identity {
	t.Helper()
	id, err := ident.NewIdentity(testRand{rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestAuthenticatorAcceptsOwner(t *testing.T) {
	var a Authenticator
	host := newIdentity(t, 1)
	ch := a.Challenge(host.ID())
	if err := a.Verify(host.ID(), ch, host.Prove(ch)); err != nil {
		t.Fatalf("honest join rejected: %v", err)
	}
}

func TestAuthenticatorRejectsSpoof(t *testing.T) {
	var a Authenticator
	honest := newIdentity(t, 1)
	attacker := newIdentity(t, 2)
	ch := a.Challenge(honest.ID())
	if err := a.Verify(honest.ID(), ch, attacker.Prove(ch)); !errors.Is(err, ErrBadAuthProof) {
		t.Fatalf("spoof accepted: %v", err)
	}
}

func TestChallengesAreUnique(t *testing.T) {
	var a Authenticator
	host := newIdentity(t, 1)
	c1 := a.Challenge(host.ID())
	c2 := a.Challenge(host.ID())
	if string(c1) == string(c2) {
		t.Fatal("challenges must differ (replay protection)")
	}
}

func TestRegistryQuota(t *testing.T) {
	reg := NewRegistry(2)
	a, b, c := ident.FromString("a"), ident.FromString("b"), ident.FromString("c")
	if err := reg.Register(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(c, 1); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota not enforced: %v", err)
	}
	if err := reg.Register(c, 2); err != nil {
		t.Fatal(err)
	}
	if reg.Count(1) != 2 || reg.Count(2) != 1 {
		t.Fatalf("counts = %d %d", reg.Count(1), reg.Count(2))
	}
	// Re-register at a new router frees the old slot.
	if err := reg.Register(a, 2); err != nil {
		t.Fatal(err)
	}
	if reg.Count(1) != 1 {
		t.Fatalf("count = %d", reg.Count(1))
	}
	reg.Deregister(a)
	if reg.Registered(a) || reg.Count(2) != 1 {
		t.Fatal("deregister failed")
	}
	// Idempotent re-register at the same router.
	if err := reg.Register(b, 1); err != nil {
		t.Fatal(err)
	}
	if reg.Count(1) != 1 {
		t.Fatal("same-router re-register must not double count")
	}
}

func TestCapabilityLifecycle(t *testing.T) {
	dst := newIdentity(t, 3)
	src := ident.FromString("sender")
	cap := Grant(dst, src, 1000)
	if err := cap.Verify(src, dst.ID(), 500); err != nil {
		t.Fatalf("valid capability rejected: %v", err)
	}
	if err := cap.Verify(src, dst.ID(), 1001); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired capability accepted: %v", err)
	}
	other := ident.FromString("other")
	if err := cap.Verify(other, dst.ID(), 500); !errors.Is(err, ErrBadCapability) {
		t.Fatalf("wrong source accepted: %v", err)
	}
	if err := cap.Verify(src, other, 500); !errors.Is(err, ErrBadCapability) {
		t.Fatalf("wrong destination accepted: %v", err)
	}
}

func TestCapabilityForgery(t *testing.T) {
	dst := newIdentity(t, 3)
	attacker := newIdentity(t, 4)
	src := ident.FromString("sender")
	// Attacker signs a capability claiming dst's label.
	forged := Grant(attacker, src, 1000)
	forged.Dst = dst.ID()
	if err := forged.Verify(src, dst.ID(), 500); !errors.Is(err, ErrBadCapability) {
		t.Fatalf("forged capability accepted: %v", err)
	}
	// Tampered expiry breaks the signature.
	cap := Grant(dst, src, 1000)
	cap.Expiry = 1 << 60
	if err := cap.Verify(src, dst.ID(), 500); !errors.Is(err, ErrBadCapability) {
		t.Fatalf("tampered expiry accepted: %v", err)
	}
}

func TestCapabilityMarshalRoundTrip(t *testing.T) {
	dst := newIdentity(t, 5)
	cap := Grant(dst, ident.FromString("s"), 42)
	got, err := UnmarshalCapability(cap.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cap) {
		t.Fatal("round trip changed the capability")
	}
	if err := got.Verify(cap.Src, cap.Dst, 10); err != nil {
		t.Fatalf("unmarshaled capability invalid: %v", err)
	}
	if _, err := UnmarshalCapability(cap.Marshal()[:10]); !errors.Is(err, ErrBadCapability) {
		t.Fatalf("short token accepted: %v", err)
	}
}

func TestGateDefaultOff(t *testing.T) {
	reg := NewRegistry(0)
	gate := NewGate(reg)
	dst := newIdentity(t, 6)
	src := ident.FromString("src")

	// Unregistered destination: dropped even with a capability.
	cap := Grant(dst, src, 1000)
	if err := gate.Admit(src, dst.ID(), &cap, 10); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unregistered dst reachable: %v", err)
	}

	if err := reg.Register(dst.ID(), 1); err != nil {
		t.Fatal(err)
	}
	// Registered but no authorization: default off.
	if err := gate.Admit(src, dst.ID(), nil, 10); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("default-off not enforced: %v", err)
	}
	// Capability admits.
	if err := gate.Admit(src, dst.ID(), &cap, 10); err != nil {
		t.Fatalf("capability not honored: %v", err)
	}
	// Expired capability drops again.
	if err := gate.Admit(src, dst.ID(), &cap, 2000); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired capability admitted: %v", err)
	}
}

func TestGateStandingFilter(t *testing.T) {
	reg := NewRegistry(0)
	gate := NewGate(reg)
	dst := newIdentity(t, 7)
	src := ident.FromString("friend")
	if err := reg.Register(dst.ID(), 1); err != nil {
		t.Fatal(err)
	}
	// Filter installation requires a known owner.
	if err := gate.InstallFilter(dst, src); !errors.Is(err, ErrUnknownReceiver) {
		t.Fatalf("unknown owner accepted: %v", err)
	}
	gate.RegisterOwner(dst.ID(), dst.PublicKey())
	if err := gate.InstallFilter(dst, src); err != nil {
		t.Fatal(err)
	}
	if err := gate.Admit(src, dst.ID(), nil, 10); err != nil {
		t.Fatalf("standing filter not honored: %v", err)
	}
	gate.RemoveFilter(dst.ID(), src)
	if err := gate.Admit(src, dst.ID(), nil, 10); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("removed filter still admits: %v", err)
	}
}
