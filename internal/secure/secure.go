// Package secure implements ROFL's security extensions (paper §2.1 and
// §5.3): join-time authentication of self-certifying identifiers,
// provider registration with default-off reachability, cryptographic
// capabilities with lifetimes gating the data plane, and the per-router
// identifier quota that bounds Sybil footprints.
package secure

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"

	"rofl/internal/ident"
)

// Errors returned by the admission checks.
var (
	ErrNotRegistered   = errors.New("secure: destination not registered with its provider")
	ErrNotAuthorized   = errors.New("secure: source not authorized by destination filter")
	ErrBadCapability   = errors.New("secure: capability invalid")
	ErrExpired         = errors.New("secure: capability expired")
	ErrQuotaExceeded   = errors.New("secure: router identifier quota exceeded")
	ErrBadAuthProof    = errors.New("secure: join authentication failed")
	ErrUnknownReceiver = errors.New("secure: unknown receiver identity")
)

// Authenticator performs the join-time check of §2.1: "before its ID can
// become resident, the host must prove to the router cryptographically
// that it holds the appropriate private key."
type Authenticator struct {
	nonce uint64
}

// Challenge mints a fresh nonce for a claimed identifier.
func (a *Authenticator) Challenge(claimed ident.ID) []byte {
	a.nonce++
	buf := make([]byte, 0, len(claimed)+8)
	buf = append(buf, claimed[:]...)
	buf = binary.BigEndian.AppendUint64(buf, a.nonce)
	return buf
}

// Verify validates the host's proof over the challenge.
func (a *Authenticator) Verify(claimed ident.ID, challenge []byte, proof ident.Proof) error {
	if err := ident.VerifyProof(claimed, challenge, proof); err != nil {
		return fmt.Errorf("%w: %v", ErrBadAuthProof, err)
	}
	return nil
}

// Registry tracks which identifiers explicitly registered with their
// provider. "We require that hosts explicitly register with their
// providers and traffic to a host not registered with its provider be
// dropped" (§5.3). It also enforces the per-router identifier quota that
// damps Sybil attacks: "auditing mechanisms within an AS that limit the
// number of IDs hosted by a router" (§2.1).
type Registry struct {
	quota      int
	registered map[ident.ID]int // identifier -> hosting router
	perRouter  map[int]int      // router -> count
}

// NewRegistry creates a registry with a per-router identifier quota
// (0 means unlimited).
func NewRegistry(quota int) *Registry {
	return &Registry{
		quota:      quota,
		registered: make(map[ident.ID]int),
		perRouter:  make(map[int]int),
	}
}

// Register records that id is hosted at router r, enforcing the quota.
func (g *Registry) Register(id ident.ID, router int) error {
	if old, ok := g.registered[id]; ok {
		if old == router {
			return nil
		}
		g.perRouter[old]--
	}
	if g.quota > 0 && g.perRouter[router] >= g.quota {
		return fmt.Errorf("%w: router %d at %d identifiers", ErrQuotaExceeded, router, g.quota)
	}
	g.registered[id] = router
	g.perRouter[router]++
	return nil
}

// Deregister removes id.
func (g *Registry) Deregister(id ident.ID) {
	if r, ok := g.registered[id]; ok {
		g.perRouter[r]--
		delete(g.registered, id)
	}
}

// Registered reports whether id registered with its provider.
func (g *Registry) Registered(id ident.ID) bool {
	_, ok := g.registered[id]
	return ok
}

// Count returns the identifiers registered at a router.
func (g *Registry) Count(router int) int { return g.perRouter[router] }

// Capability is the paper's TVA-style token (§5.3): a destination grants
// a specific source the right to send to it until an expiry, signed with
// the destination's self-certifying key so any router (or the receiving
// host) can verify it against the destination identifier alone.
type Capability struct {
	Src, Dst ident.ID
	Expiry   uint64 // virtual-time milliseconds
	DstPub   ed25519.PublicKey
	Sig      []byte
}

func capabilityBody(src, dst ident.ID, expiry uint64) []byte {
	buf := make([]byte, 0, 2*ident.Size+8+4)
	buf = append(buf, []byte("cap:")...)
	buf = append(buf, src[:]...)
	buf = append(buf, dst[:]...)
	buf = binary.BigEndian.AppendUint64(buf, expiry)
	return buf
}

// Grant issues a capability from the destination's identity allowing src
// to send until expiry. "When a destination receives a route setup
// request, it grants access according to its own policies" (§5.3).
func Grant(dst *ident.Identity, src ident.ID, expiry uint64) Capability {
	body := capabilityBody(src, dst.ID(), expiry)
	return Capability{
		Src: src, Dst: dst.ID(), Expiry: expiry,
		DstPub: append(ed25519.PublicKey(nil), dst.PublicKey()...),
		Sig:    dst.Sign(body),
	}
}

// Verify checks a capability for a packet src→dst at virtual time now.
// The embedded public key must hash to the destination label (the
// self-certifying property), the signature must cover (src, dst,
// expiry), and the token must not be expired.
func (c Capability) Verify(src, dst ident.ID, now uint64) error {
	if c.Src != src || c.Dst != dst {
		return fmt.Errorf("%w: endpoints do not match", ErrBadCapability)
	}
	if now > c.Expiry {
		return fmt.Errorf("%w: at %d, expired %d", ErrExpired, now, c.Expiry)
	}
	if err := ident.VerifyProof(dst, capabilityBody(src, dst, c.Expiry), ident.Proof{Pub: c.DstPub, Sig: c.Sig}); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCapability, err)
	}
	return nil
}

// Marshal encodes the capability for in-packet transport (wire.Packet's
// Capability field).
func (c Capability) Marshal() []byte {
	buf := make([]byte, 0, 2*ident.Size+8+ed25519.PublicKeySize+ed25519.SignatureSize)
	buf = append(buf, c.Src[:]...)
	buf = append(buf, c.Dst[:]...)
	buf = binary.BigEndian.AppendUint64(buf, c.Expiry)
	buf = append(buf, c.DstPub...)
	buf = append(buf, c.Sig...)
	return buf
}

// UnmarshalCapability decodes a capability token.
func UnmarshalCapability(b []byte) (Capability, error) {
	want := 2*ident.Size + 8 + ed25519.PublicKeySize + ed25519.SignatureSize
	if len(b) != want {
		return Capability{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadCapability, len(b), want)
	}
	var c Capability
	copy(c.Src[:], b[:ident.Size])
	copy(c.Dst[:], b[ident.Size:2*ident.Size])
	c.Expiry = binary.BigEndian.Uint64(b[2*ident.Size:])
	off := 2*ident.Size + 8
	c.DstPub = append(ed25519.PublicKey(nil), b[off:off+ed25519.PublicKeySize]...)
	c.Sig = append([]byte(nil), b[off+ed25519.PublicKeySize:]...)
	return c, nil
}

// Equal reports deep equality (useful in tests).
func (c Capability) Equal(o Capability) bool {
	return c.Src == o.Src && c.Dst == o.Dst && c.Expiry == o.Expiry &&
		bytes.Equal(c.DstPub, o.DstPub) && bytes.Equal(c.Sig, o.Sig)
}

// Gate is the default-off admission filter of §5.3: traffic is admitted
// only to registered destinations, and only from sources the destination
// explicitly allowed — either by a standing filter entry or a valid
// capability. Filter installation itself is authenticated: "verifying
// that the request for installing a filter ... comes from the host
// owning that identifier."
type Gate struct {
	registry *Registry
	// allow[dst][src]: standing pinhole installed by dst.
	allow map[ident.ID]map[ident.ID]bool
	// identities known to the gate, for filter-installation auth.
	owners map[ident.ID]ed25519.PublicKey
}

// NewGate builds a default-off gate over a registry.
func NewGate(reg *Registry) *Gate {
	return &Gate{
		registry: reg,
		allow:    make(map[ident.ID]map[ident.ID]bool),
		owners:   make(map[ident.ID]ed25519.PublicKey),
	}
}

// RegisterOwner records the public key behind a label (learned at join
// authentication time).
func (g *Gate) RegisterOwner(id ident.ID, pub ed25519.PublicKey) {
	g.owners[id] = append(ed25519.PublicKey(nil), pub...)
}

// InstallFilter lets the owner of dst open a standing pinhole for src.
// The request must be signed by dst's key.
func (g *Gate) InstallFilter(dst *ident.Identity, src ident.ID) error {
	pub, ok := g.owners[dst.ID()]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReceiver, dst.ID().Short())
	}
	body := capabilityBody(src, dst.ID(), 0)
	sig := dst.Sign(body)
	if !ed25519.Verify(pub, body, sig) {
		return fmt.Errorf("%w: filter request signature", ErrBadCapability)
	}
	if g.allow[dst.ID()] == nil {
		g.allow[dst.ID()] = make(map[ident.ID]bool)
	}
	g.allow[dst.ID()][src] = true
	return nil
}

// RemoveFilter closes a pinhole.
func (g *Gate) RemoveFilter(dst, src ident.ID) {
	delete(g.allow[dst], src)
}

// Admit decides whether a packet src→dst may be delivered at time now:
// the destination must be registered (default-off), and the source must
// hold either a standing filter entry or a valid capability.
func (g *Gate) Admit(src, dst ident.ID, cap *Capability, now uint64) error {
	if !g.registry.Registered(dst) {
		return fmt.Errorf("%w: %s", ErrNotRegistered, dst.Short())
	}
	if g.allow[dst][src] {
		return nil
	}
	if cap == nil {
		return fmt.Errorf("%w: %s → %s", ErrNotAuthorized, src.Short(), dst.Short())
	}
	return cap.Verify(src, dst, now)
}
