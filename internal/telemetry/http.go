package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Server is one node's observability endpoint: an HTTP listener
// exposing
//
//	/metrics  the registry in Prometheus text exposition format
//	/ring     the node's ring snapshot as JSON (whatever the ring
//	          callback returns — the overlay hands back successors,
//	          predecessor, and pointer-cache occupancy)
//	/healthz  200 when the health callback returns nil, 503 otherwise
//
// Bind to host:0 to let the kernel allocate the port; Addr reports the
// bound address. The callbacks run per request and must be safe for
// concurrent use.
type Server struct {
	ln  net.Listener
	srv *http.Server

	// wg joins the Serve goroutine so Close does not return — and a
	// supervised node does not count itself stopped — while the acceptor
	// is still running.
	wg sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// NewServer starts the endpoint on addr. ring and health may be nil
// (the routes then serve an empty object and plain 200 respectively).
func NewServer(addr string, reg *Registry, ring func() any, health func() error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listening on %q: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/ring", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snapshot any = struct{}{}
		if ring != nil {
			snapshot = ring()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshot)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the endpoint's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and in-flight handlers, then waits for the
// acceptor goroutine to exit.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	s.wg.Wait()
	return s.closeErr
}
