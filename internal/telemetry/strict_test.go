package telemetry

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Strict mode is the runtime half of the metricname defense: after the
// namespace is closed, resolving a series name outside the catalog must
// panic instead of silently registering a dead series.
func TestRegistryStrictMode(t *testing.T) {
	reg := NewRegistry()
	pre := reg.Counter("rofl_test_pre_total") // registered before strict

	reg.SetStrict("rofl_test_allowed_total")

	// Catalog names and already-registered names stay resolvable.
	if got := reg.Counter("rofl_test_allowed_total"); got == nil {
		t.Fatal("catalog series must resolve in strict mode")
	}
	if got := reg.Counter("rofl_test_pre_total"); got != pre {
		t.Fatal("pre-registered series must keep resolving to the same handle")
	}

	// A name outside the closed namespace panics, for each kind.
	for _, resolve := range []func(){
		func() { reg.Counter("rofl_test_typo_total") },
		func() { reg.Gauge("rofl_test_typo_gauge") },
		func() { reg.Histogram("rofl_test_typo_seconds", nil) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("strict registry must panic on an unknown series name")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "strict registry resolved unknown series") {
					t.Fatalf("unexpected panic payload: %v", r)
				}
			}()
			resolve()
		}()
	}
}

// A non-strict registry must keep its get-or-create behavior: strict is
// opt-in, production wiring never panics.
func TestRegistryStrictModeIsOptIn(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("rofl_test_any_total") == nil {
		t.Fatal("non-strict registry must get-or-create freely")
	}
}

// Close must join the Serve goroutine: after Close returns, the
// acceptor must be gone. Regression test for the unjoined goroutine the
// golifetime analyzer surfaced — under the cluster supervisor a leaked
// acceptor per node incarnation is an unbounded leak.
func TestServerCloseJoinsServeGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		srv, err := NewServer("127.0.0.1:0", NewRegistry(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Close waits for Serve to return, so no acceptor goroutines can
	// accumulate. Allow brief scheduler noise before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across Server lifecycles: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
