package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Level orders event severities.
type Level uint8

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level the way the JSON lines spell it.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// EventLog emits structured events as JSON lines: one object per line
// with "ts", "level", "event", then the caller's key/value fields in
// call order (never map order — output is deterministic given a
// deterministic clock). Events below the minimum level are dropped
// before any formatting work.
//
// The clock is injectable so tests — and the rofllint determinism
// analyzer — can pin timestamps; operational deployments use
// NewEventLog, whose wall-clock default is the only wall-clock read in
// the package.
//
// All methods are safe on a nil receiver (no-ops), so instrumented code
// can emit unconditionally.
type EventLog struct {
	mu    sync.Mutex
	w     io.Writer
	min   Level
	clock func() time.Time
	buf   []byte // reused line buffer, guarded by mu
}

// NewEventLog writes events at or above min to w, stamped with the wall
// clock.
func NewEventLog(w io.Writer, min Level) *EventLog {
	//rofllint:ignore determinism operational event timestamps come from the wall clock by design; seeded tests inject a fixed clock via NewEventLogClock
	return NewEventLogClock(w, min, time.Now)
}

// NewEventLogClock is NewEventLog with an explicit time source.
func NewEventLogClock(w io.Writer, min Level, clock func() time.Time) *EventLog {
	return &EventLog{w: w, min: min, clock: clock}
}

// Enabled reports whether events at lvl would be written.
func (l *EventLog) Enabled(lvl Level) bool {
	return l != nil && l.w != nil && lvl >= l.min
}

// Emit writes one event with alternating key/value fields. A trailing
// key without a value is rendered with null.
func (l *EventLog) Emit(lvl Level, event string, kv ...any) {
	if !l.Enabled(lvl) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, `{"ts":"`...)
	b = l.clock().UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","level":"`...)
	b = append(b, lvl.String()...)
	b = append(b, `","event":`...)
	b = appendJSONString(b, event)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b = append(b, ',')
		b = appendJSONString(b, key)
		b = append(b, ':')
		if i+1 < len(kv) {
			b = appendJSONValue(b, kv[i+1])
		} else {
			b = append(b, "null"...)
		}
	}
	b = append(b, '}', '\n')
	l.buf = b
	_, _ = l.w.Write(b)
}

// Debug emits at LevelDebug.
func (l *EventLog) Debug(event string, kv ...any) { l.Emit(LevelDebug, event, kv...) }

// Info emits at LevelInfo.
func (l *EventLog) Info(event string, kv ...any) { l.Emit(LevelInfo, event, kv...) }

// Warn emits at LevelWarn.
func (l *EventLog) Warn(event string, kv ...any) { l.Emit(LevelWarn, event, kv...) }

// Error emits at LevelError.
func (l *EventLog) Error(event string, kv ...any) { l.Emit(LevelError, event, kv...) }

// appendJSONValue renders one field value. Strings, booleans, integers,
// floats, durations, errors, and Stringers are rendered natively;
// anything else falls back to fmt formatting inside a JSON string.
func appendJSONValue(b []byte, v any) []byte {
	switch v := v.(type) {
	case nil:
		return append(b, "null"...)
	case string:
		return appendJSONString(b, v)
	case bool:
		return strconv.AppendBool(b, v)
	case int:
		return strconv.AppendInt(b, int64(v), 10)
	case int64:
		return strconv.AppendInt(b, v, 10)
	case uint64:
		return strconv.AppendUint(b, v, 10)
	case uint:
		return strconv.AppendUint(b, uint64(v), 10)
	case float64:
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	case time.Duration:
		return appendJSONString(b, v.String())
	case error:
		return appendJSONString(b, v.Error())
	case fmt.Stringer:
		return appendJSONString(b, v.String())
	default:
		return appendJSONString(b, fmt.Sprint(v))
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes, and control bytes. Non-ASCII bytes pass through — the
// writer's encoding is the caller's business and event names are ASCII.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	return append(b, '"')
}
