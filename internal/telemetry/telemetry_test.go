package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rofl_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d want 5", got)
	}
	if r.Counter("rofl_test_total") != c {
		t.Fatal("same name must return the same counter handle")
	}
	g := r.Gauge("rofl_test_nodes")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d want 5", got)
	}
	h := r.Histogram("rofl_test_latency_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	if h.Count() != 3 {
		t.Fatalf("hist count = %d want 3", h.Count())
	}
	if h.Sum() < 5.05 || h.Sum() > 5.06 {
		t.Fatalf("hist sum = %v", h.Sum())
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *EventLog
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	l.Info("nothing happens")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil event log must be disabled")
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of order; rendering must sort.
	r.Counter("zzz_total").Add(2)
	r.Counter(`aaa_total{kind="x"}`).Add(1)
	r.Counter(`aaa_total{kind="y"}`).Add(3)
	r.Gauge("mmm_gauge").Set(-4)
	r.Histogram("hhh_seconds", []float64{0.5, 1}).Observe(0.7)

	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two scrapes of identical state must be byte-identical")
	}
	out := a.String()
	want := []string{
		"# TYPE aaa_total counter",
		`aaa_total{kind="x"} 1`,
		`aaa_total{kind="y"} 3`,
		"# TYPE hhh_seconds histogram",
		`hhh_seconds_bucket{le="0.5"} 0`,
		`hhh_seconds_bucket{le="1"} 1`,
		`hhh_seconds_bucket{le="+Inf"} 1`,
		"hhh_seconds_sum 0.7",
		"hhh_seconds_count 1",
		"# TYPE mmm_gauge gauge",
		"mmm_gauge -4",
		"# TYPE zzz_total counter",
		"zzz_total 2",
	}
	idx := -1
	for _, line := range want {
		at := strings.Index(out, line)
		if at < 0 {
			t.Fatalf("missing line %q in output:\n%s", line, out)
		}
		if at < idx {
			t.Fatalf("line %q out of order in output:\n%s", line, out)
		}
		idx = at
	}
	// One TYPE header per family, even with several labeled series.
	if strings.Count(out, "# TYPE aaa_total") != 1 {
		t.Fatalf("family header emitted more than once:\n%s", out)
	}
}

func TestEventLogJSONLines(t *testing.T) {
	var buf bytes.Buffer
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	l := NewEventLogClock(&buf, LevelInfo, func() time.Time { return fixed })
	l.Debug("below_threshold") // dropped
	l.Info("succ_evicted", "peer", "ab12…", "misses", 4, "reason", "stabilize-timeout")
	l.Error("weird \"quote\"", "err", fmt.Errorf("boom\nline2"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v\n%s", err, lines[0])
	}
	if first["event"] != "succ_evicted" || first["level"] != "info" {
		t.Fatalf("unexpected fields: %v", first)
	}
	if first["misses"] != float64(4) || first["peer"] != "ab12…" {
		t.Fatalf("unexpected values: %v", first)
	}
	if first["ts"] != "2026-08-08T12:00:00Z" {
		t.Fatalf("ts = %v", first["ts"])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 is not valid JSON: %v\n%s", err, lines[1])
	}
	if second["err"] != "boom\nline2" {
		t.Fatalf("err field = %q", second["err"])
	}
}

// TestRegistryConcurrentScrape hammers the registry from many
// goroutines — creating series, bumping counters, observing histograms —
// while the HTTP endpoint is scraped concurrently. Run under -race this
// is the memory-safety proof for the lock-free hot path.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	srv, err := NewServer("127.0.0.1:0", r, func() any {
		return map[string]string{"state": "test"}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := r.Counter(fmt.Sprintf("rofl_worker_total{worker=\"%d\"}", w))
			shared := r.Counter("rofl_shared_total")
			h := r.Histogram("rofl_shared_seconds", []float64{0.001, 0.01, 0.1})
			g := r.Gauge("rofl_shared_gauge")
			for i := 0; i < perWorker; i++ {
				own.Inc()
				shared.Inc()
				h.Observe(float64(i%100) / 1000)
				g.Set(int64(i))
			}
		}(w)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 50; i++ {
			resp, err := http.Get(srv.URL() + "/metrics")
			if err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()
	<-scrapeDone

	if got := r.Counter("rofl_shared_total").Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d want %d", got, workers*perWorker)
	}
	if got := r.Histogram("rofl_shared_seconds", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d want %d", got, workers*perWorker)
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("rofl_up_total").Inc()
	healthy := true
	var mu sync.Mutex
	srv, err := NewServer("127.0.0.1:0", r, func() any {
		return struct {
			ID    string   `json:"id"`
			Succs []string `json:"successors"`
		}{ID: "abcd", Succs: []string{"ef01", "2345"}}
	}, func() error {
		mu.Lock()
		defer mu.Unlock()
		if !healthy {
			return fmt.Errorf("draining")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "rofl_up_total 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body := get("/ring")
	if code != 200 {
		t.Fatalf("/ring status = %d", code)
	}
	var ring struct {
		ID    string   `json:"id"`
		Succs []string `json:"successors"`
	}
	if err := json.Unmarshal([]byte(body), &ring); err != nil {
		t.Fatalf("/ring not JSON: %v\n%s", err, body)
	}
	if ring.ID != "abcd" || len(ring.Succs) != 2 {
		t.Fatalf("/ring = %+v", ring)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d want 200", code)
	}
	mu.Lock()
	healthy = false
	mu.Unlock()
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("/healthz while draining = %d want 503", code)
	}
}
