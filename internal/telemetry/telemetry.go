// Package telemetry is the observability substrate of the live ROFL
// deployment: a dependency-free metrics registry (counters, gauges,
// histograms with lock-free hot-path updates), a structured JSON event
// log with an injectable clock, and a per-node HTTP endpoint exposing
// Prometheus-format metrics, a ring snapshot, and a health probe.
//
// The registry is built for the overlay's forwarding hot path: a metric
// handle is looked up (or created) once at wiring time and then updated
// with a single atomic add — no map access, no lock, and no allocation
// per operation. Handles are nil-safe: a nil *Counter ignores Inc/Add,
// so instrumented code needs no "is telemetry attached?" branches.
//
// Rendering is deterministic: the registry keeps its series in sorted
// order at registration time (never iterating a Go map), so two scrapes
// of identical state are byte-identical — the property the cluster
// supervisor's reproducibility tests lean on, and the reason the
// rofllint determinism analyzer runs over this package.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use; all methods are safe on a nil receiver so
// instrumented hot paths need no attachment checks.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//rofllint:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//rofllint:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric. Like Counter, the zero value works
// and a nil receiver ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//rofllint:hotpath
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrease).
//
//rofllint:hotpath
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed buckets with atomic
// updates: one atomic add for the bucket, one for the count, and a CAS
// loop folding the observation into the float64 sum. Bounds are upper
// bucket edges in ascending order; an implicit +Inf bucket catches the
// rest.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// newHistogram copies bounds (sorted ascending by the caller's
// contract; Registry.Histogram sorts defensively).
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample. Nil-safe and allocation-free.
//
//rofllint:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry holds named metric series. Series names follow the
// Prometheus convention and may carry a label suffix baked into the
// name, e.g. `rofl_overlay_drop_total{reason="ttl"}`; the text before
// the first '{' is the metric family the # TYPE header is emitted for.
//
// Lookup is get-or-create and returns the same handle for the same
// name, so two subsystems naming the same series share one counter.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// names holds every registered series key in sorted order, each
	// tagged with its kind — maintained at registration so rendering
	// never iterates a map (deterministic output, analyzer-clean).
	names []seriesRef
	// strict, when non-nil, is the closed set of series names this
	// registry may create. See SetStrict.
	strict map[string]bool
}

type seriesRef struct {
	key  string
	kind uint8 // 0 counter, 1 gauge, 2 histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetStrict closes the registry's namespace to the given catalog: any
// later attempt to create a series under a name not in the catalog
// panics. Strict mode is a test-only safety net — get-or-create lookup
// means a typo'd name silently registers a dead series in production,
// and strict tests are how that class of bug surfaces (the static
// metricname analyzer is the compile-time half of the same defense).
// Series already registered before the call remain valid. Passing no
// names closes the namespace to exactly the already-registered set.
func (r *Registry) SetStrict(catalog ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.strict = make(map[string]bool, len(catalog)+len(r.names))
	for _, ref := range r.names {
		r.strict[ref.key] = true
	}
	for _, name := range catalog {
		r.strict[name] = true
	}
}

// checkStrict panics when strict mode forbids creating name. Caller
// holds r.mu.
func (r *Registry) checkStrict(name string) {
	if r.strict != nil && !r.strict[name] {
		panic("telemetry: strict registry resolved unknown series " + strconv.Quote(name) + "; fix the name or add it to the catalog")
	}
}

// insertName records key in sorted order. Caller holds r.mu.
func (r *Registry) insertName(key string, kind uint8) {
	i := sort.Search(len(r.names), func(k int) bool { return r.names[k].key >= key })
	r.names = append(r.names, seriesRef{})
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = seriesRef{key: key, kind: kind}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkStrict(name)
	c = new(Counter)
	r.counters[name] = c
	r.insertName(name, 0)
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkStrict(name)
	g = new(Gauge)
	r.gauges[name] = g
	r.insertName(name, 1)
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls reuse
// the existing buckets regardless of bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkStrict(name)
	h = newHistogram(bounds)
	r.hists[name] = h
	r.insertName(name, 2)
	return h
}

// family splits a series key into its metric family (the # TYPE
// subject) and the label suffix, which may be empty.
func family(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// labeled splices an extra label (`le` for histogram buckets) into a
// series key that may or may not already carry labels.
func labeled(key, k, v string) string {
	base, labels := family(key)
	quoted := k + `="` + v + `"`
	if labels == "" {
		return base + "{" + quoted + "}"
	}
	return base + "{" + labels[1:len(labels)-1] + "," + quoted + "}"
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format, in sorted series order with one # TYPE line
// per metric family. Output for identical registry state is
// byte-identical across runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	refs := append([]seriesRef(nil), r.names...)
	r.mu.RUnlock()
	lastFamily := ""
	for _, ref := range refs {
		base, _ := family(ref.key)
		switch ref.kind {
		case 0:
			r.mu.RLock()
			c := r.counters[ref.key]
			r.mu.RUnlock()
			if base != lastFamily {
				if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
					return err
				}
				lastFamily = base
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", ref.key, c.Value()); err != nil {
				return err
			}
		case 1:
			r.mu.RLock()
			g := r.gauges[ref.key]
			r.mu.RUnlock()
			if base != lastFamily {
				if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", base); err != nil {
					return err
				}
				lastFamily = base
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", ref.key, g.Value()); err != nil {
				return err
			}
		case 2:
			r.mu.RLock()
			h := r.hists[ref.key]
			r.mu.RUnlock()
			if base != lastFamily {
				if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
					return err
				}
				lastFamily = base
			}
			labels := ref.key[len(base):]
			cum := uint64(0)
			for i := range h.buckets {
				cum += h.buckets[i].Load()
				bound := math.Inf(+1)
				if i < len(h.bounds) {
					bound = h.bounds[i]
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", labeled(base+"_bucket"+labels, "le", formatFloat(bound)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}
