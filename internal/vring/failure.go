package vring

import (
	"fmt"
	"sort"

	"rofl/internal/ident"
)

// This file implements §3.2 of the paper: host failure (directed-flood
// teardown plus successor-group repair), router failure (deterministic
// failover), link failure, and partition split/merge driven by zero-node
// advertisements, together with the ring-consistency checker the paper's
// simulator runs ("we perform consistency checks for misconverged rings
// in the simulator", §6.2).

// members returns all live stable (ring-member) virtual nodes, sorted by
// identifier. Ephemeral hosts never appear: they are not ring members.
func (n *Network) members() []Pointer {
	var out []Pointer
	for _, r := range n.Routers {
		if !n.LS.NodeUp(r.Node) {
			continue
		}
		for _, vn := range r.VNs {
			if vn.Ephemeral {
				continue
			}
			out = append(out, Pointer{ID: vn.ID, Router: r.Node})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// membersIn filters members to those hosted inside the given component.
func membersIn(ms []Pointer, comp map[RouterID]bool) []Pointer {
	out := ms[:0:0]
	for _, p := range ms {
		if comp[p.Router] {
			out = append(out, p)
		}
	}
	return out
}

// ringTargets computes the correct successor group and predecessor for
// index i of the sorted member list.
func ringTargets(ms []Pointer, i, group int) (succs []Pointer, pred Pointer) {
	nm := len(ms)
	if nm <= 1 {
		return nil, Pointer{}
	}
	for k := 1; k <= group && k < nm; k++ {
		succs = append(succs, ms[(i+k)%nm])
	}
	pred = ms[(i-1+nm)%nm]
	return succs, pred
}

// chargeProbe accounts for one repair/rejoin control exchange: a greedy
// route from the repairing router toward the target identifier over the
// (now consistent) ring, plus a direct acknowledgment back. This is how
// the paper's "rejoin the relevant ID" costs are measured.
func (n *Network) chargeProbe(from RouterID, target ident.ID, counter string) int {
	out, err := n.greedy(from, target, counter, nil, false)
	if err != nil {
		return 0
	}
	msgs := out.Msgs
	if h, _, ok := n.hop(out.Final, from, counter, nil, false); ok {
		msgs += h
	}
	return msgs
}

// directedFloodCost computes the paper's constrained teardown cost: the
// number of links in the union of shortest paths from origin to each
// router in targets — a source-routed flood that traverses only routers
// holding (or on the way to) pointers for the failed identifier (§3.2).
func (n *Network) directedFloodCost(origin RouterID, targets map[RouterID]bool) int {
	type link struct{ a, b RouterID }
	seen := map[link]bool{}
	for t := range targets {
		if t == origin {
			continue
		}
		path := n.LS.Path(origin, t)
		for i := 1; i < len(path); i++ {
			a, b := path[i-1], path[i]
			if a > b {
				a, b = b, a
			}
			seen[link{a, b}] = true
		}
	}
	return len(seen)
}

// pointerHolders returns the routers that currently hold any state
// referencing id: virtual-node ring pointers, parked entries, or cache
// entries.
func (n *Network) pointerHolders(id ident.ID) map[RouterID]bool {
	holders := map[RouterID]bool{}
	for _, r := range n.Routers {
		if !n.LS.NodeUp(r.Node) {
			continue
		}
		hold := false
		for _, vn := range r.VNs {
			if vn.Pred.ID == id {
				hold = true
			}
			for _, s := range vn.Succs {
				if s.ID == id {
					hold = true
				}
			}
			for _, p := range vn.Parked {
				if p.ID == id {
					hold = true
				}
			}
		}
		r.Cache.Each(func(p Pointer) bool {
			if p.ID == id {
				hold = true
				return false
			}
			return true
		})
		if hold {
			holders[r.Node] = true
		}
	}
	return holders
}

// scrubID removes every reference to id from ring pointers and caches,
// repairing successor groups by shift-down and rejoining (with charged
// probes) when a group empties. It is the state transition common to
// graceful leave and crash; the caller decides what teardown traffic to
// charge.
func (n *Network) scrubID(id ident.ID, counter string) {
	ms := n.members()
	for _, r := range n.Routers {
		if !n.LS.NodeUp(r.Node) {
			continue
		}
		r.Cache.Remove(id)
		for _, vn := range r.VNs {
			// Successor groups: shift down past the dead identifier.
			kept := vn.Succs[:0]
			had := false
			for _, s := range vn.Succs {
				if s.ID == id {
					had = true
					continue
				}
				kept = append(kept, s)
			}
			vn.Succs = kept
			if had {
				n.refillGroup(vn, ms, counter)
			}
			if vn.Pred.ID == id {
				// New predecessor is the dead node's predecessor.
				if i, ok := findMember(ms, vn.ID); ok {
					_, pred := ringTargets(ms, i, n.opts.SuccessorGroup)
					vn.Pred = pred
					if pred != (Pointer{}) {
						if h, _, ok := n.hop(pred.Router, r.Node, counter, nil, false); ok {
							_ = h
						}
					}
				} else {
					vn.Pred = Pointer{}
				}
			}
			// Parked ephemerals pointing at the dead identifier.
			keptP := vn.Parked[:0]
			for _, p := range vn.Parked {
				if p.ID == id {
					continue
				}
				keptP = append(keptP, p)
			}
			vn.Parked = keptP
		}
	}
}

// refillGroup tops a successor group back up to the configured size from
// the (oracle) member list, charging a repair probe when the group had
// fully emptied — the case where shift-down is impossible and the node
// must rejoin to find its successor (§3.2).
func (n *Network) refillGroup(vn *VirtualNode, ms []Pointer, counter string) {
	i, ok := findMember(ms, vn.ID)
	if !ok {
		return
	}
	succs, _ := ringTargets(ms, i, n.opts.SuccessorGroup)
	emptied := len(vn.Succs) == 0
	vn.Succs = succs
	if emptied && len(succs) > 0 {
		n.chargeProbe(vn.Router, succs[0].ID, counter)
	}
}

func findMember(ms []Pointer, id ident.ID) (int, bool) {
	i := sort.Search(len(ms), func(k int) bool { return !ms[k].ID.Less(id) })
	if i < len(ms) && ms[i].ID == id {
		return i, true
	}
	return 0, false
}

// LeaveHost gracefully removes a host: the hosting router notifies the
// ring neighbors, which splice around it; cached pointers elsewhere are
// torn down with a directed flood.
func (n *Network) LeaveHost(id ident.ID) error {
	return n.removeHost(id, MsgTeardown)
}

// FailHost crashes a host. The hosting router detects the failure
// through a session timeout and sends a directed (source-routed) flood
// of teardowns to the constrained set of routers allowed to hold
// pointers for the identifier (§3.2); ring neighbors repair via
// successor-group shift-down, rejoining when the group empties.
func (n *Network) FailHost(id ident.ID) error {
	return n.removeHost(id, MsgTeardown)
}

func (n *Network) removeHost(id ident.ID, counter string) error {
	host, ok := n.hostedAt[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownID, id.Short())
	}
	vn := n.Routers[host].VNs[id]
	if vn == nil {
		delete(n.hostedAt, id)
		return fmt.Errorf("%w: %s", ErrUnknownID, id.Short())
	}
	if vn.Default {
		return fmt.Errorf("vring: cannot remove default virtual node %s", id.Short())
	}
	// Directed teardown flood to every pointer holder.
	holders := n.pointerHolders(id)
	n.Metrics.Count(counter, int64(n.directedFloodCost(host, holders)))

	orphans := append([]Pointer(nil), vn.Parked...)
	delete(n.Routers[host].VNs, id)
	delete(n.hostedAt, id)
	n.scrubID(id, counter)
	n.reparkOrphans(orphans, counter)
	return nil
}

// reparkOrphans re-attaches still-alive ephemeral children to their
// current ring predecessor after their old parking spot disappeared.
func (n *Network) reparkOrphans(orphans []Pointer, counter string) {
	if len(orphans) == 0 {
		return
	}
	ms := n.members()
	if len(ms) == 0 {
		return
	}
	for _, e := range orphans {
		if _, alive := n.hostedAt[e.ID]; !alive {
			continue
		}
		pred := ms[predecessorIndex(ms, e.ID)]
		pvn := n.Routers[pred.Router].VNs[pred.ID]
		if pvn != nil && !hasParked(pvn, e.ID) {
			pvn.Parked = append(pvn.Parked, e)
			if h, _, ok := n.hop(e.Router, pred.Router, counter, nil, false); ok {
				_ = h
			}
		}
	}
}

// MoveHost models mobility: the identifier leaves its current hosting
// router and rejoins at another, with overhead "comparable to join
// overhead" (§6.2).
func (n *Network) MoveHost(id ident.ID, to RouterID) (JoinResult, error) {
	host, ok := n.hostedAt[id]
	if !ok {
		return JoinResult{}, fmt.Errorf("%w: %s", ErrUnknownID, id.Short())
	}
	eph := n.Routers[host].VNs[id].Ephemeral
	if err := n.removeHost(id, MsgTeardown); err != nil {
		return JoinResult{}, err
	}
	if eph {
		return n.JoinEphemeral(id, to)
	}
	return n.JoinHost(id, to)
}

// FailRouter crashes a physical router: the link-state layer floods the
// failure; every cache purges pointers at the dead router (driven by the
// LSA, so free); resident stable hosts rejoin deterministically at the
// next alive router on the pre-agreed failover list; ring state
// referencing the dead router's identifiers is repaired.
func (n *Network) FailRouter(node RouterID) error {
	if !n.LS.NodeUp(node) {
		return ErrRouterDown
	}
	r := n.Routers[node]
	// Collect resident identifiers before tearing anything down.
	type resident struct {
		id  ident.ID
		eph bool
	}
	var residents []resident
	for _, vn := range r.VNs {
		if vn.Default {
			continue
		}
		residents = append(residents, resident{vn.ID, vn.Ephemeral})
	}
	defaultID := r.ID

	n.LS.FailNode(node) // LSA flood charged by linkstate

	// LSA-driven cache purge at every surviving router.
	for _, other := range n.Routers {
		if other.Node != node && n.LS.NodeUp(other.Node) {
			other.Cache.RemoveRouter(node)
		}
	}

	// The dead router's state is gone; parked children of its virtual
	// nodes survive at their own routers and need a new parking spot.
	var orphans []Pointer
	for id, vn := range r.VNs {
		orphans = append(orphans, vn.Parked...)
		delete(n.hostedAt, id)
	}
	r.VNs = make(map[ident.ID]*VirtualNode)
	r.Cache = NewPointerCache(n.opts.CacheCapacity)

	// Ring neighbors repair around the dead identifiers (including the
	// default virtual node's router-ID).
	n.scrubID(defaultID, MsgRepair)
	for _, res := range residents {
		n.scrubID(res.id, MsgRepair)
	}

	n.reparkOrphans(orphans, MsgRepair)

	// Hosts fail over: the end host and remote routers deterministically
	// pick the next alive, reachable router on the pre-agreed list.
	for _, res := range residents {
		target, ok := n.failoverTarget(node)
		if !ok {
			continue // no alive router reachable; host stays down
		}
		var err error
		if res.eph {
			_, err = n.JoinEphemeral(res.id, target)
		} else {
			_, err = n.JoinHost(res.id, target)
		}
		if err != nil {
			return fmt.Errorf("failover rejoin of %s: %w", res.id.Short(), err)
		}
	}
	return nil
}

// failoverTarget returns the next alive router after `failed` on the
// pre-agreed order.
func (n *Network) failoverTarget(failed RouterID) (RouterID, bool) {
	idx := -1
	for i, r := range n.failover {
		if r == failed {
			idx = i
			break
		}
	}
	for k := 1; k <= len(n.failover); k++ {
		cand := n.failover[(idx+k)%len(n.failover)]
		if n.LS.NodeUp(cand) {
			return cand, true
		}
	}
	return 0, false
}

// FailLink fails a physical link. Pointer caches need no explicit
// invalidation: cached pointers name hosting routers, and next hops are
// re-resolved against the link-state map, which already routes around
// the failure ("the network map will find alternate paths", §3.2).
func (n *Network) FailLink(a, b RouterID) { n.LS.FailLink(a, b) }

// RestoreLink restores a physical link.
func (n *Network) RestoreLink(a, b RouterID) { n.LS.RestoreLink(a, b) }

// PartitionPoP fails every link between the given PoP's routers and the
// rest of the network, creating a network-layer partition — the Fig 7
// workload. It returns the failed links so the caller can restore them.
func (n *Network) PartitionPoP(pop int) [][2]RouterID {
	var cut [][2]RouterID
	g := n.LS.Graph()
	for i := 0; i < g.NumNodes(); i++ {
		node := RouterID(i)
		if g.PoP(node) != pop {
			continue
		}
		for _, e := range g.Neighbors(node) {
			if g.PoP(e.To) != pop && n.LS.Up(node, e.To) {
				n.FailLink(node, e.To)
				cut = append(cut, [2]RouterID{node, e.To})
			}
		}
	}
	return cut
}

// RepairPartitions runs the paper's partition split/merge protocol to
// convergence: in every network-layer component, invalid pointers are
// torn down, successor lists shift down locally, and the component's
// zero node (the router with the smallest router-ID, advertised to all
// neighbors piggybacked on link-state floods) anchors rejoins until the
// component's members form one consistent ring (§3.2). When previously
// separated components reconnect, the same mechanism merges their rings:
// the zero-ID's predecessor on the other ring learns about it, triggering
// repairs that propagate successor by successor.
//
// It returns the number of repair messages charged. After it returns,
// CheckRing always passes — the convergence guarantee the paper
// validates over 10 million partition events.
func (n *Network) RepairPartitions() int {
	before := n.Metrics.Counter(MsgRepair)
	ms := n.members()
	seen := map[RouterID]bool{}
	for _, r := range n.Routers {
		if !n.LS.NodeUp(r.Node) || seen[r.Node] {
			continue
		}
		compList := n.LS.Component(r.Node)
		comp := make(map[RouterID]bool, len(compList))
		for _, c := range compList {
			seen[c] = true
			comp[c] = true
		}
		n.repairComponent(comp, membersIn(ms, comp))
	}
	return int(n.Metrics.Counter(MsgRepair) - before)
}

// repairComponent re-establishes a single consistent ring over the
// stable members inside one component, charging a repair probe for each
// virtual node whose pointers changed. Ephemeral hosts are re-parked at
// their predecessor within the component.
func (n *Network) repairComponent(comp map[RouterID]bool, ms []Pointer) {
	// Zero-node advertisements ride on link-state floods: free.
	for i, p := range ms {
		vn := n.Routers[p.Router].VNs[p.ID]
		succs, pred := ringTargets(ms, i, n.opts.SuccessorGroup)
		// Only a wrong immediate successor or predecessor counts as ring
		// damage needing a charged repair join; deeper successor-group
		// entries refresh on the periodic stabilization probes that ride
		// on existing traffic.
		broken := vn.Pred != pred ||
			(len(succs) > 0 && (len(vn.Succs) == 0 || vn.Succs[0] != succs[0])) ||
			(len(succs) == 0 && len(vn.Succs) != 0)
		vn.Succs = succs
		vn.Pred = pred
		if broken && len(succs) > 0 {
			n.chargeProbe(vn.Router, succs[0].ID, MsgRepair)
		}
		// Drop parked entries that now live outside this component.
		kept := vn.Parked[:0]
		for _, q := range vn.Parked {
			if comp[q.Router] {
				kept = append(kept, q)
			}
		}
		vn.Parked = kept
	}
	// Cache entries pointing outside the component are detectably
	// unreachable via link state; purge them (free).
	for node := range comp {
		r := n.Routers[node]
		var purge []ident.ID
		r.Cache.Each(func(p Pointer) bool {
			if !comp[p.Router] {
				purge = append(purge, p.ID)
			}
			return true
		})
		for _, id := range purge {
			r.Cache.Remove(id)
		}
	}
	// Re-park every ephemeral hosted in this component at its correct
	// predecessor among the component's members.
	n.reparkEphemerals(comp, ms)
}

func (n *Network) reparkEphemerals(comp map[RouterID]bool, ms []Pointer) {
	if len(ms) == 0 {
		return
	}
	for node := range comp {
		for _, vn := range n.Routers[node].VNs {
			if !vn.Ephemeral {
				continue
			}
			predIdx := predecessorIndex(ms, vn.ID)
			pred := ms[predIdx]
			pvn := n.Routers[pred.Router].VNs[pred.ID]
			if !hasParked(pvn, vn.ID) {
				pvn.Parked = append(pvn.Parked, Pointer{ID: vn.ID, Router: vn.Router})
				n.chargeProbe(vn.Router, pred.ID, MsgRepair)
			}
			// Remove stale parkings at other members.
			for _, m := range ms {
				if m == pred {
					continue
				}
				mvn := n.Routers[m.Router].VNs[m.ID]
				removeParked(mvn, vn.ID)
			}
		}
	}
}

// predecessorIndex returns the index of the member that is id's ring
// predecessor: the largest member strictly less than id, circularly.
func predecessorIndex(ms []Pointer, id ident.ID) int {
	i := sort.Search(len(ms), func(k int) bool { return !ms[k].ID.Less(id) })
	return (i - 1 + len(ms)) % len(ms)
}

func hasParked(vn *VirtualNode, id ident.ID) bool {
	for _, p := range vn.Parked {
		if p.ID == id {
			return true
		}
	}
	return false
}

func removeParked(vn *VirtualNode, id ident.ID) {
	kept := vn.Parked[:0]
	for _, p := range vn.Parked {
		if p.ID != id {
			kept = append(kept, p)
		}
	}
	vn.Parked = kept
}

// CheckRing verifies the ring invariants the paper's simulator checks
// after every convergence event: within each network-layer component,
// the stable members sorted by identifier must form exactly one ring
// (successor[0] and predecessor of every member point to the adjacent
// member), and every ephemeral host must be parked at its ring
// predecessor. It returns nil iff all invariants hold.
func (n *Network) CheckRing() error {
	ms := n.members()
	seen := map[RouterID]bool{}
	for _, r := range n.Routers {
		if !n.LS.NodeUp(r.Node) || seen[r.Node] {
			continue
		}
		compList := n.LS.Component(r.Node)
		comp := make(map[RouterID]bool, len(compList))
		for _, c := range compList {
			seen[c] = true
			comp[c] = true
		}
		if err := n.checkComponent(comp, membersIn(ms, comp)); err != nil {
			return err
		}
	}
	return nil
}

func (n *Network) checkComponent(comp map[RouterID]bool, ms []Pointer) error {
	for i, p := range ms {
		vn := n.Routers[p.Router].VNs[p.ID]
		succs, pred := ringTargets(ms, i, n.opts.SuccessorGroup)
		if len(ms) > 1 {
			if len(vn.Succs) == 0 || len(succs) == 0 || vn.Succs[0] != succs[0] {
				return fmt.Errorf("%w: %s has successor %v, want %v",
					ErrRingCorrupted, vn.ID.Short(), vn.Succs, succs)
			}
			if vn.Pred != pred {
				return fmt.Errorf("%w: %s has predecessor %s, want %s",
					ErrRingCorrupted, vn.ID.Short(), vn.Pred.ID.Short(), pred.ID.Short())
			}
		}
	}
	// Every ephemeral host in the component must be parked at its
	// predecessor.
	for node := range comp {
		for _, vn := range n.Routers[node].VNs {
			if !vn.Ephemeral {
				continue
			}
			if len(ms) == 0 {
				continue
			}
			pred := ms[predecessorIndex(ms, vn.ID)]
			pvn := n.Routers[pred.Router].VNs[pred.ID]
			if !hasParked(pvn, vn.ID) {
				return fmt.Errorf("%w: ephemeral %s not parked at predecessor %s",
					ErrRingCorrupted, vn.ID.Short(), pred.ID.Short())
			}
		}
	}
	return nil
}
