package vring_test

import (
	"fmt"

	"rofl/internal/topology"
	"rofl/internal/vring"
)

// ExampleCompactRing converges a sharded 2,000-member ring and routes
// one probe. Results are byte-identical at any Shards value, so the
// output is stable even though the run is parallel.
func ExampleCompactRing() {
	cfg := topology.AS1221
	isp := topology.GenISP(cfg)

	rcfg := vring.DefaultCompactConfig()
	rcfg.Hosts = 2000
	rcfg.Shards = 4
	rcfg.Seed = 42
	r := vring.NewCompactRing(isp, rcfg)
	r.Run()

	res, err := r.Probe(0, r.IDOf(1))
	if err != nil {
		fmt.Println("probe:", err)
		return
	}
	f := r.Footprint()
	fmt.Printf("members=%d delivered=%v ring-bytes/member=%.0f\n",
		r.Members(), res.Delivered, f.RingBytesPerHost(r.Members()))
	// Output:
	// members=2000 delivered=true ring-bytes/member=22
}
