package vring

import (
	"fmt"
	"math/rand"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// TestChurnSoakMultiSeed is the long-form convergence soak: several
// independent seeds, hundreds of interleaved churn events each, with the
// ring checker run after every single event — the closest laptop-scale
// analogue of the paper's "10 million partitions, converged in every
// case" validation. Runs abbreviated under -short.
func TestChurnSoakMultiSeed(t *testing.T) {
	seeds := []int64{101, 202, 303, 404, 505}
	steps := 250
	if testing.Short() {
		seeds = seeds[:2]
		steps = 80
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			soakOneSeed(t, seed, steps)
		})
	}
}

func soakOneSeed(t *testing.T, seed int64, steps int) {
	isp := topology.GenISP(topology.ISPConfig{
		Name: fmt.Sprintf("soak-%d", seed), Routers: 36, PoPs: 6, BackbonePerPoP: 2,
		PoPDegree: 2, IntraPoPDelay: 0.5, InterPoPDelay: 4, Hosts: 80, ZipfS: 1.2, Seed: seed,
	})
	m := sim.NewMetrics()
	opts := DefaultOptions()
	opts.Seed = seed
	n := New(isp.Graph, m, opts)
	rng := rand.New(rand.NewSource(seed))

	alive := map[ident.ID]bool{}
	ephemeral := map[ident.ID]bool{}
	var list []ident.ID
	refresh := func() {
		list = list[:0]
		for id := range alive {
			list = append(list, id)
		}
	}
	next := 0
	check := func(step int, what string) {
		if err := n.CheckRing(); err != nil {
			t.Fatalf("seed %d step %d after %s: %v", seed, step, what, err)
		}
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(12); {
		case op < 4: // stable join
			id := ident.FromString(fmt.Sprintf("soak-%d-%d", seed, next))
			next++
			at := isp.Access[rng.Intn(len(isp.Access))]
			if !n.LS.NodeUp(at) {
				continue
			}
			if _, err := n.JoinHost(id, at); err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
			alive[id] = true
			check(step, "join")
		case op < 5: // ephemeral join
			id := ident.FromString(fmt.Sprintf("soak-eph-%d-%d", seed, next))
			next++
			at := isp.Access[rng.Intn(len(isp.Access))]
			if !n.LS.NodeUp(at) {
				continue
			}
			if _, err := n.JoinEphemeral(id, at); err != nil {
				t.Fatalf("step %d eph join: %v", step, err)
			}
			alive[id] = true
			ephemeral[id] = true
			check(step, "ephemeral join")
		case op < 8: // removal (leave or crash)
			refresh()
			if len(list) == 0 {
				continue
			}
			id := list[rng.Intn(len(list))]
			var err error
			if rng.Intn(2) == 0 {
				err = n.LeaveHost(id)
			} else {
				err = n.FailHost(id)
			}
			if err != nil {
				t.Fatalf("step %d remove: %v", step, err)
			}
			delete(alive, id)
			delete(ephemeral, id)
			check(step, "removal")
		case op < 9: // mobility
			refresh()
			if len(list) == 0 {
				continue
			}
			id := list[rng.Intn(len(list))]
			to := isp.Access[rng.Intn(len(isp.Access))]
			if !n.LS.NodeUp(to) {
				continue
			}
			if _, err := n.MoveHost(id, to); err != nil {
				t.Fatalf("step %d move: %v", step, err)
			}
			check(step, "move")
		case op < 10: // PoP partition + heal
			pop := rng.Intn(6)
			cut := n.PartitionPoP(pop)
			n.RepairPartitions()
			check(step, "partition split")
			for _, l := range cut {
				n.RestoreLink(l[0], l[1])
			}
			n.RepairPartitions()
			check(step, "partition merge")
		case op < 11: // link flap
			g := isp.Graph
			a := RouterID(rng.Intn(g.NumNodes()))
			if g.Degree(a) == 0 {
				continue
			}
			e := g.Neighbors(a)[rng.Intn(g.Degree(a))]
			n.FailLink(a, e.To)
			n.RepairPartitions()
			check(step, "link fail")
			n.RestoreLink(a, e.To)
			n.RepairPartitions()
			check(step, "link restore")
		default: // data-plane probe: everything alive and reachable routes
			refresh()
			if len(list) == 0 {
				continue
			}
			id := list[rng.Intn(len(list))]
			host, ok := n.HostingRouter(id)
			if !ok {
				t.Fatalf("step %d: %s lost from oracle", step, id.Short())
			}
			from := isp.Backbone[rng.Intn(len(isp.Backbone))]
			if !n.LS.NodeUp(from) || !n.LS.SamePartition(from, host) {
				continue
			}
			res, err := n.Route(from, id)
			if err != nil || !res.Delivered {
				t.Fatalf("step %d: route to %s: %+v %v", step, id.Short(), res, err)
			}
		}
	}
	// Final sweep: every survivor reachable.
	refresh()
	for _, id := range list {
		host, _ := n.HostingRouter(id)
		if !n.LS.SamePartition(isp.Backbone[0], host) {
			continue
		}
		if _, err := n.Route(isp.Backbone[0], id); err != nil {
			t.Fatalf("final route to %s: %v", id.Short(), err)
		}
	}
}
