package vring

import (
	"sort"

	"rofl/internal/ident"
	"rofl/internal/topology"
)

// Pointer is one entry of ROFL routing state: a flat label and the
// router currently hosting it. Forwarding resolves the router to a
// physical next hop through the link-state map (§3.3: "using the
// link-state database to return the next hop towards the router
// containing that ID").
type Pointer struct {
	ID     ident.ID
	Router RouterID
}

// RouterID aliases the topology node index of a router.
type RouterID = topology.NodeID

// bestMatch returns the index of the element of sorted (ascending by ID)
// that is closest to dst without overshooting it, given the packet's
// current ring position pos. It returns ok=false when no element makes
// greedy progress. The key identity: candidate ∈ (pos, dst] iff
// Distance(candidate, dst) < Distance(pos, dst), so checking the global
// distance minimizer suffices.
func bestMatch(pos, dst ident.ID, sorted []Pointer) (int, bool) {
	n := len(sorted)
	if n == 0 {
		return 0, false
	}
	// Largest ID <= dst in linear order; wraps to the last element when
	// dst precedes everything (circularly that element is closest).
	i := sort.Search(n, func(k int) bool { return dst.Less(sorted[k].ID) })
	idx := i - 1
	if idx < 0 {
		idx = n - 1
	}
	c := sorted[idx].ID
	if !ident.Progress(pos, dst, c) {
		return 0, false
	}
	return idx, true
}

// PointerCache is the bounded cache of overheard pointers each router
// keeps (§2.2 "the pointer-cache of routers is limited in size, and
// precedence is given to [ring pointers]"). Ring pointers (successors,
// predecessors) are *not* stored here — they live on virtual nodes and
// always win precedence; the cache only holds opportunistically learned
// shortcuts, evicted LRU when capacity is reached.
type PointerCache struct {
	cap     int
	entries []cacheEntry // ascending by ID
	clock   uint64
	hits    int64
	misses  int64
	// lru is a min-heap of (stamp, id) touch records with lazy
	// invalidation: every Insert/Lookup touch pushes a record, and
	// eviction pops until the top record still matches a live entry's
	// latest stamp. Stale records (superseded touches, removed entries)
	// are discarded on pop, and the heap is rebuilt from the live
	// entries when staleness accumulates, so a steady-state insert costs
	// O(log cap) amortized instead of the O(cap) scan it replaced.
	lru lruHeap
}

type cacheEntry struct {
	Pointer
	lastUsed uint64
}

type lruRecord struct {
	stamp uint64
	id    ident.ID
}

// lruHeap is a hand-rolled min-heap on stamp. container/heap would box
// every pushed lruRecord into an interface{}, costing one allocation
// per cache touch on the forwarding hot path; the monomorphic methods
// below keep Lookup and Insert allocation-free in steady state.
type lruHeap []lruRecord

func (h *lruHeap) push(r lruRecord) {
	*h = append(*h, r)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].stamp <= s[i].stamp {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *lruHeap) pop() lruRecord {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].stamp < s[min].stamp {
			min = l
		}
		if r < n && s[r].stamp < s[min].stamp {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// NewPointerCache returns a cache bounded to capacity entries;
// capacity <= 0 disables caching entirely.
func NewPointerCache(capacity int) *PointerCache {
	return &PointerCache{cap: capacity}
}

// Len returns the number of cached pointers.
func (c *PointerCache) Len() int { return len(c.entries) }

// Cap returns the configured capacity.
func (c *PointerCache) Cap() int { return c.cap }

// HitRate returns the fraction of Lookup calls that returned a pointer.
func (c *PointerCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

func (c *PointerCache) find(id ident.ID) (int, bool) {
	i := sort.Search(len(c.entries), func(k int) bool { return !c.entries[k].ID.Less(id) })
	if i < len(c.entries) && c.entries[i].ID == id {
		return i, true
	}
	return i, false
}

// Insert records a pointer, updating the router of an existing entry or
// evicting the least-recently-used one at capacity.
func (c *PointerCache) Insert(p Pointer) {
	if c.cap <= 0 {
		return
	}
	if i, ok := c.find(p.ID); ok {
		c.entries[i].Router = p.Router
		c.touch(i)
		return
	}
	if len(c.entries) >= c.cap {
		c.evictLRU()
	}
	i, _ := c.find(p.ID)
	c.entries = append(c.entries, cacheEntry{})
	copy(c.entries[i+1:], c.entries[i:])
	c.entries[i] = cacheEntry{Pointer: p}
	c.touch(i)
}

// touch stamps entries[i] as most recently used and records the touch in
// the LRU heap. Stamps are unique (the clock advances on every touch),
// so heap order — and therefore eviction order — is deterministic.
func (c *PointerCache) touch(i int) {
	c.clock++
	c.entries[i].lastUsed = c.clock
	c.lru.push(lruRecord{stamp: c.clock, id: c.entries[i].ID})
	if len(c.lru) > 4*c.cap+8 {
		c.rebuildLRU()
	}
}

// rebuildLRU compacts the heap to one record per live entry, bounding
// the staleness accumulated by superseded touches and removals.
func (c *PointerCache) rebuildLRU() {
	c.lru = c.lru[:0]
	for _, e := range c.entries {
		c.lru = append(c.lru, lruRecord{stamp: e.lastUsed, id: e.ID})
	}
	// Establish the heap invariant bottom-up (what heap.Init does).
	s := c.lru
	for i := len(s)/2 - 1; i >= 0; i-- {
		j := i
		for {
			l, r := 2*j+1, 2*j+2
			min := j
			if l < len(s) && s[l].stamp < s[min].stamp {
				min = l
			}
			if r < len(s) && s[r].stamp < s[min].stamp {
				min = r
			}
			if min == j {
				break
			}
			s[j], s[min] = s[min], s[j]
			j = min
		}
	}
}

func (c *PointerCache) evictLRU() {
	for len(c.lru) > 0 {
		top := c.lru.pop()
		if i, ok := c.find(top.id); ok && c.entries[i].lastUsed == top.stamp {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			return
		}
	}
	// Unreachable while every touch pushes a record (each live entry's
	// latest stamp is always in the heap); kept as a safety net.
	if len(c.entries) == 0 {
		return
	}
	victim := 0
	for i := 1; i < len(c.entries); i++ {
		if c.entries[i].lastUsed < c.entries[victim].lastUsed {
			victim = i
		}
	}
	c.entries = append(c.entries[:victim], c.entries[victim+1:]...)
}

// Remove drops the entry for id if present.
func (c *PointerCache) Remove(id ident.ID) {
	if i, ok := c.find(id); ok {
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
	}
}

// RemoveRouter drops every entry pointing at the given router — the
// reaction to a link-state advertisement reporting it unreachable
// (§3.2: "routers also monitor link-state advertisements and delete
// pointers to IDs residing at unreachable routers").
func (c *PointerCache) RemoveRouter(r RouterID) int {
	kept := c.entries[:0]
	removed := 0
	for _, e := range c.entries {
		if e.Router == r {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	c.entries = kept
	return removed
}

// Lookup returns the cached pointer closest to dst without overshooting,
// given current position pos, marking it recently used.
//
//rofllint:hotpath
func (c *PointerCache) Lookup(pos, dst ident.ID) (Pointer, bool) {
	// View the entries as pointers without copying: bestMatch needs IDs
	// in sorted order, which c.entries maintains.
	n := len(c.entries)
	if n == 0 {
		c.misses++
		return Pointer{}, false
	}
	i := sort.Search(n, func(k int) bool { return dst.Less(c.entries[k].ID) })
	idx := i - 1
	if idx < 0 {
		idx = n - 1
	}
	e := c.entries[idx]
	if !ident.Progress(pos, dst, e.ID) {
		c.misses++
		return Pointer{}, false
	}
	c.touch(idx)
	c.hits++
	return e.Pointer, true
}

// Each returns every cached pointer in ascending ID order (for memory
// accounting and invalidation sweeps). Callers must not mutate entries
// through it.
func (c *PointerCache) Each(fn func(Pointer) bool) {
	for _, e := range c.entries {
		if !fn(e.Pointer) {
			return
		}
	}
}
