package vring

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

func TestLeaveHostMaintainsRing(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 30)
	for i := 0; i < 10; i++ {
		if err := n.LeaveHost(ids[i]); err != nil {
			t.Fatalf("leave %d: %v", i, err)
		}
		if err := n.CheckRing(); err != nil {
			t.Fatalf("ring broken after leave %d: %v", i, err)
		}
	}
	// Remaining hosts still routable.
	for _, id := range ids[10:] {
		if _, err := n.Route(isp.Backbone[0], id); err != nil {
			t.Fatalf("route after leaves: %v", err)
		}
	}
	// Departed hosts are gone.
	if _, err := n.Route(isp.Backbone[0], ids[0]); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("departed host still routable: %v", err)
	}
}

func TestFailHostTeardownCharged(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 30)
	before := n.Metrics.Counter(MsgTeardown)
	if err := n.FailHost(ids[7]); err != nil {
		t.Fatal(err)
	}
	if n.Metrics.Counter(MsgTeardown) <= before {
		t.Fatal("teardown flood must be charged")
	}
	if err := n.CheckRing(); err != nil {
		t.Fatalf("ring broken: %v", err)
	}
}

func TestFailUnknownHost(t *testing.T) {
	n, _ := newTestNet(t, DefaultOptions())
	if err := n.FailHost(ident.FromString("ghost")); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("want ErrUnknownID, got %v", err)
	}
}

func TestCannotRemoveDefaultVN(t *testing.T) {
	n, _ := newTestNet(t, DefaultOptions())
	if err := n.LeaveHost(n.Routers[0].ID); err == nil {
		t.Fatal("default virtual node must be unremovable")
	}
}

func TestFailEphemeralHost(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 10)
	eph := ident.FromString("laptop")
	if _, err := n.JoinEphemeral(eph, isp.Access[1]); err != nil {
		t.Fatal(err)
	}
	if err := n.FailHost(eph); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckRing(); err != nil {
		t.Fatal(err)
	}
	// No vn anywhere should still park it.
	for _, r := range n.Routers {
		for _, vn := range r.VNs {
			if hasParked(vn, eph) {
				t.Fatal("stale parking survived teardown")
			}
		}
	}
}

func TestMoveHost(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 20)
	id := ids[3]
	to := isp.Access[9]
	if _, err := n.MoveHost(id, to); err != nil {
		t.Fatal(err)
	}
	if host, _ := n.HostingRouter(id); host != to {
		t.Fatalf("host at %d want %d", host, to)
	}
	if err := n.CheckRing(); err != nil {
		t.Fatal(err)
	}
	res, err := n.Route(isp.Backbone[0], id)
	if err != nil || res.Final != to {
		t.Fatalf("route after move: %+v %v", res, err)
	}
}

func TestFailRouterFailover(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 30)
	victim := isp.Access[0]
	// IDs resident at the victim before the crash.
	var resident []ident.ID
	for _, id := range ids {
		if h, _ := n.HostingRouter(id); h == victim {
			resident = append(resident, id)
		}
	}
	if len(resident) == 0 {
		t.Skip("no host landed on the victim in this seed")
	}
	if err := n.FailRouter(victim); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckRing(); err != nil {
		t.Fatalf("ring broken after router failure: %v", err)
	}
	// Every resident host failed over and is still routable.
	for _, id := range resident {
		h, ok := n.HostingRouter(id)
		if !ok {
			t.Fatalf("host %s lost", id.Short())
		}
		if h == victim {
			t.Fatal("host still at dead router")
		}
		if _, err := n.Route(isp.Backbone[1], id); err != nil {
			t.Fatalf("route to failed-over host: %v", err)
		}
	}
	// All other hosts unaffected.
	for _, id := range ids {
		if _, err := n.Route(isp.Backbone[2], id); err != nil {
			t.Fatalf("collateral damage on %s: %v", id.Short(), err)
		}
	}
}

func TestFailRouterTwiceErrors(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 5)
	if err := n.FailRouter(isp.Access[2]); err != nil {
		t.Fatal(err)
	}
	if err := n.FailRouter(isp.Access[2]); !errors.Is(err, ErrRouterDown) {
		t.Fatalf("want ErrRouterDown, got %v", err)
	}
}

func TestLinkFailureRoutesAround(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 30)
	// Fail one inter-PoP backbone link that does not partition.
	g := isp.Graph
	var a, b RouterID
	found := false
	for _, bb := range isp.Backbone {
		for _, e := range g.Neighbors(bb) {
			if g.PoP(e.To) != g.PoP(bb) {
				down := func(x, y topology.NodeID) bool {
					return !(x == bb && y == e.To) && !(x == e.To && y == bb)
				}
				if g.Connected(down) {
					a, b, found = bb, e.To, true
					break
				}
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no non-partitioning link found")
	}
	n.FailLink(a, b)
	for _, id := range ids {
		if _, err := n.Route(isp.Backbone[0], id); err != nil {
			t.Fatalf("route after link failure: %v", err)
		}
	}
	n.RestoreLink(a, b)
	if err := n.CheckRing(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSplitAndMerge(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 60)

	pop := 2
	cut := n.PartitionPoP(pop)
	if len(cut) == 0 {
		t.Fatal("PartitionPoP cut nothing")
	}
	// Network must now be partitioned.
	inPoP := func(r RouterID) bool { return isp.Graph.PoP(r) == pop }
	var inside, outside RouterID = -1, -1
	for i := 0; i < isp.Graph.NumNodes(); i++ {
		if inPoP(RouterID(i)) && inside == -1 {
			inside = RouterID(i)
		}
		if !inPoP(RouterID(i)) && outside == -1 {
			outside = RouterID(i)
		}
	}
	if n.LS.SamePartition(inside, outside) {
		t.Fatal("PoP still connected after cut")
	}

	msgs := n.RepairPartitions()
	if err := n.CheckRing(); err != nil {
		t.Fatalf("rings inconsistent after split repair: %v", err)
	}
	t.Logf("split repair: %d msgs", msgs)

	// Intra-partition routing works on both sides.
	for _, id := range ids {
		host, _ := n.HostingRouter(id)
		var from RouterID
		if inPoP(host) {
			from = inside
		} else {
			from = outside
		}
		if !n.LS.SamePartition(from, host) {
			continue
		}
		if _, err := n.Route(from, id); err != nil {
			t.Fatalf("intra-partition route to %s: %v", id.Short(), err)
		}
	}

	// Heal and merge.
	for _, l := range cut {
		n.RestoreLink(l[0], l[1])
	}
	mergeMsgs := n.RepairPartitions()
	if err := n.CheckRing(); err != nil {
		t.Fatalf("ring inconsistent after merge: %v", err)
	}
	t.Logf("merge repair: %d msgs", mergeMsgs)

	// Everything routable from everywhere again.
	for _, id := range ids {
		if _, err := n.Route(outside, id); err != nil {
			t.Fatalf("post-merge route to %s: %v", id.Short(), err)
		}
	}
}

func TestRepairIsIdempotent(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 20)
	if msgs := n.RepairPartitions(); msgs != 0 {
		t.Fatalf("repair on consistent ring charged %d msgs", msgs)
	}
}

func TestChurnConvergence(t *testing.T) {
	// Randomized churn: joins, leaves, crashes, router failures and
	// partitions interleaved; the ring checker must pass after every
	// repair — the paper's 10-million-partition consistency claim in
	// miniature.
	isp := testISP()
	m := sim.NewMetrics()
	opts := DefaultOptions()
	opts.Seed = 11
	n := New(isp.Graph, m, opts)
	rng := rand.New(rand.NewSource(11))

	alive := map[ident.ID]bool{}
	var aliveList []ident.ID
	next := 0
	refresh := func() {
		aliveList = aliveList[:0]
		for id, ok := range alive {
			if ok {
				aliveList = append(aliveList, id)
			}
		}
	}
	for step := 0; step < 120; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // join
			id := ident.FromString(fmt.Sprintf("churn-%d", next))
			next++
			at := isp.Access[rng.Intn(len(isp.Access))]
			if !n.LS.NodeUp(at) {
				continue
			}
			if _, err := n.JoinHost(id, at); err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
			alive[id] = true
		case op < 7: // leave or crash
			refresh()
			if len(aliveList) == 0 {
				continue
			}
			id := aliveList[rng.Intn(len(aliveList))]
			var err error
			if rng.Intn(2) == 0 {
				err = n.LeaveHost(id)
			} else {
				err = n.FailHost(id)
			}
			if err != nil {
				t.Fatalf("step %d remove: %v", step, err)
			}
			delete(alive, id)
		case op < 8: // partition + heal a PoP
			pop := rng.Intn(6)
			cut := n.PartitionPoP(pop)
			n.RepairPartitions()
			if err := n.CheckRing(); err != nil {
				t.Fatalf("step %d split: %v", step, err)
			}
			for _, l := range cut {
				n.RestoreLink(l[0], l[1])
			}
			n.RepairPartitions()
		default: // random link flap
			g := isp.Graph
			a := RouterID(rng.Intn(g.NumNodes()))
			if g.Degree(a) == 0 {
				continue
			}
			e := g.Neighbors(a)[rng.Intn(g.Degree(a))]
			n.FailLink(a, e.To)
			n.RepairPartitions()
			if err := n.CheckRing(); err != nil {
				t.Fatalf("step %d link fail: %v", step, err)
			}
			n.RestoreLink(a, e.To)
			n.RepairPartitions()
		}
		if err := n.CheckRing(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// Everything still alive must be routable.
	refresh()
	for _, id := range aliveList {
		host, _ := n.HostingRouter(id)
		if !n.LS.SamePartition(isp.Backbone[0], host) {
			continue
		}
		if _, err := n.Route(isp.Backbone[0], id); err != nil {
			t.Fatalf("final route to %s: %v", id.Short(), err)
		}
	}
}

func TestEphemeralSurvivesPartition(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 40)
	// Park ephemerals in several PoPs.
	var ephs []ident.ID
	for i := 0; i < 8; i++ {
		id := ident.FromString(fmt.Sprintf("eph-%d", i))
		if _, err := n.JoinEphemeral(id, isp.Access[i*3%len(isp.Access)]); err != nil {
			t.Fatal(err)
		}
		ephs = append(ephs, id)
	}
	pop := 1
	cut := n.PartitionPoP(pop)
	n.RepairPartitions()
	if err := n.CheckRing(); err != nil {
		t.Fatalf("split: %v", err)
	}
	for _, l := range cut {
		n.RestoreLink(l[0], l[1])
	}
	n.RepairPartitions()
	if err := n.CheckRing(); err != nil {
		t.Fatalf("merge: %v", err)
	}
	// Every ephemeral routable again after the merge.
	for _, id := range ephs {
		res, err := n.Route(isp.Backbone[0], id)
		if err != nil || !res.Delivered {
			t.Fatalf("ephemeral %s unroutable after merge: %v", id.Short(), err)
		}
	}
}

func TestMoveEphemeralHost(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 15)
	id := ident.FromString("roaming-laptop")
	if _, err := n.JoinEphemeral(id, isp.Access[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := n.MoveHost(id, isp.Access[5]); err != nil {
		t.Fatal(err)
	}
	host, ok := n.HostingRouter(id)
	if !ok || host != isp.Access[5] {
		t.Fatalf("moved to %d want %d", host, isp.Access[5])
	}
	// Still ephemeral after the move: never a ring member.
	vn := n.Routers[host].VNs[id]
	if !vn.Ephemeral {
		t.Fatal("ephemeral flag lost in move")
	}
	if err := n.CheckRing(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Route(isp.Backbone[1], id); err != nil {
		t.Fatalf("route after move: %v", err)
	}
}

func TestMoveUnknownHost(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	if _, err := n.MoveHost(ident.FromString("nope"), isp.Access[0]); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("want ErrUnknownID: %v", err)
	}
}
