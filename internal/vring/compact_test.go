package vring

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

func compactTestISP() *topology.ISP {
	cfg := topology.AS1221
	cfg.Routers, cfg.PoPs, cfg.BackbonePerPoP, cfg.PoPDegree = 40, 4, 2, 3
	return topology.GenISP(cfg)
}

func smallCompactConfig() CompactConfig {
	cfg := DefaultCompactConfig()
	cfg.Hosts = 400
	cfg.EphemeralEvery = 20
	cfg.CacheCapacity = 512
	cfg.Seed = 7
	return cfg
}

// compactState renders the complete post-run routing state of every
// member in handle order — successor groups, predecessor, stability —
// for byte-comparison across shard counts.
func compactState(r *CompactRing) string {
	var b strings.Builder
	for h := 0; h < r.Members(); h++ {
		fmt.Fprintf(&b, "%d:", h)
		for k := 0; k < r.NumSucc(ident.Handle(h)); k++ {
			fmt.Fprintf(&b, " s%d", r.Succ(ident.Handle(h), k))
		}
		fmt.Fprintf(&b, " p%d\n", r.Pred(ident.Handle(h)))
	}
	return b.String()
}

func compactMetricsTable(m sim.Metrics) string {
	var b strings.Builder
	for _, name := range m.CounterNames() {
		fmt.Fprintf(&b, "ctr %s %d\n", name, m.Counter(name))
	}
	for _, name := range m.SampleNames() {
		s := sim.Summarize(m.Samples(name))
		fmt.Fprintf(&b, "smp %s n=%d p50=%.6f p99=%.6f\n", name, s.N, s.P50, s.P99)
	}
	return b.String()
}

// TestCompactRingConverges checks the stabilized ring against the
// sorted-order oracle: every member's successor group must be exactly
// the next SuccessorGroup members clockwise, and every predecessor the
// true ring predecessor.
func TestCompactRingConverges(t *testing.T) {
	isp := compactTestISP()
	cfg := smallCompactConfig()
	cfg.Journal = true
	r := NewCompactRing(isp, cfg)
	end := r.Run()
	if end <= 0 {
		t.Fatal("run performed no virtual time")
	}

	m := r.Members()
	sorted := make([]ident.Handle, m)
	for i := range sorted {
		sorted[i] = ident.Handle(i)
	}
	sort.Slice(sorted, func(i, j int) bool {
		return r.IDOf(sorted[i]).Less(r.IDOf(sorted[j]))
	})
	rank := make(map[ident.Handle]int, m)
	for i, h := range sorted {
		rank[h] = i
	}
	for _, h := range sorted {
		i := rank[h]
		want := cfg.SuccessorGroup
		if want > m-1 {
			want = m - 1
		}
		if got := r.NumSucc(h); got != want {
			t.Fatalf("member %d has %d successors, want %d", h, got, want)
		}
		for k := 0; k < want; k++ {
			if got, w := r.Succ(h, k), sorted[(i+1+k)%m]; got != w {
				t.Fatalf("member %d successor[%d] = %d, want %d", h, k, got, w)
			}
		}
		if got, w := r.Pred(h), sorted[(i-1+m)%m]; got != w {
			t.Fatalf("member %d pred = %d, want %d", h, got, w)
		}
	}
	if r.Metrics().Counter(MsgCompactControl) == 0 {
		t.Fatal("convergence charged no control messages")
	}
	if !strings.Contains(r.JournalText(), "stable") {
		t.Fatal("journal records no stable transitions")
	}
}

// TestCompactShardInvariance is the PR-10 analogue of the cross-driver
// journal gate: at a fixed seed, the rendered journal, the merged
// metrics table, the complete final routing state, and the finish time
// must be byte-identical for 1, 2, and 8 shards.
func TestCompactShardInvariance(t *testing.T) {
	isp := compactTestISP()
	run := func(shards int) (string, string, string, sim.Time) {
		cfg := smallCompactConfig()
		cfg.Shards = shards
		cfg.Journal = true
		r := NewCompactRing(isp, cfg)
		end := r.Run()
		return r.JournalText(), compactMetricsTable(r.Metrics()), compactState(r), end
	}
	refJ, refM, refS, refEnd := run(1)
	if len(refJ) == 0 {
		t.Fatal("reference journal empty; invariance test is vacuous")
	}
	for _, shards := range []int{2, 8} {
		j, m, s, end := run(shards)
		if j != refJ {
			t.Errorf("journal diverged at %d shards (lens %d vs %d)", shards, len(j), len(refJ))
		}
		if m != refM {
			t.Errorf("metrics diverged at %d shards:\n%s\nvs\n%s", shards, m, refM)
		}
		if s != refS {
			t.Errorf("final state diverged at %d shards", shards)
		}
		if end != refEnd {
			t.Errorf("finish time diverged at %d shards: %v vs %v", shards, end, refEnd)
		}
	}
}

// TestCompactProbeDelivery routes probes between sampled member pairs
// on a converged ring and requires delivery with sane stretch; probes
// to ephemeral identifiers must deliver over their predecessor's parked
// source route.
func TestCompactProbeDelivery(t *testing.T) {
	isp := compactTestISP()
	cfg := smallCompactConfig()
	r := NewCompactRing(isp, cfg)
	r.Run()

	state := uint64(99)
	for i := 0; i < 500; i++ {
		from := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
		to := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
		res, err := r.Probe(from, r.IDOf(to))
		if err != nil {
			t.Fatalf("probe %d->%d: %v", from, to, err)
		}
		if !res.Delivered {
			t.Fatalf("probe %d->%d not delivered (stuck after %d steps)", from, to, res.RingSteps)
		}
		if res.Stretch < 1 {
			t.Fatalf("probe %d->%d stretch %.3f < 1", from, to, res.Stretch)
		}
	}
	if r.Ephemerals() == 0 {
		t.Fatal("config produced no ephemerals")
	}
	for i := 0; i < r.Ephemerals(); i++ {
		child := ident.Handle(r.Members() + i)
		from := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
		res, err := r.Probe(from, r.IDOf(child))
		if err != nil {
			t.Fatalf("ephemeral probe to %d: %v", child, err)
		}
		if !res.Delivered || !res.Parked {
			t.Fatalf("ephemeral probe to %d: delivered=%v parked=%v, want both", child, res.Delivered, res.Parked)
		}
	}
	pm := r.ProbeMetrics()
	if pm.Counter(CtrCompactCacheHit) == 0 {
		t.Error("probes never hit a pointer cache")
	}
	if len(pm.Samples(SampleCompactStretch)) == 0 {
		t.Error("no stretch samples recorded")
	}
}

// TestCompactProbeJoin measures splice cost on the converged ring and
// checks the walk leaves the ring unmodified.
func TestCompactProbeJoin(t *testing.T) {
	isp := compactTestISP()
	r := NewCompactRing(isp, smallCompactConfig())
	r.Run()
	before := compactState(r)
	state := uint64(5)
	for i := 0; i < 50; i++ {
		from := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
		j := ident.FromUint64(sim.SplitMix64(&state))
		msgs, err := r.ProbeJoin(from, j)
		if err != nil {
			t.Fatalf("join probe %d: %v", i, err)
		}
		if msgs <= 0 {
			t.Fatalf("join probe %d cost %d messages", i, msgs)
		}
	}
	if compactState(r) != before {
		t.Fatal("join probes mutated ring state")
	}
}

// TestCompactFootprintBudget pins per-host memory at N=100k: ring state
// must stay within a few dozen bytes per member (4-byte handles, not
// 16-byte IDs) and the fully-accounted total — intern table, caches,
// parked routes, RNG states — within a few hundred bytes per host. The
// total is dominated by the fixed cache budget (318 routers x 8192
// slots x 8 B ~ 208 B/host at this N), which warmCaches fills to
// capacity; it amortizes away as N grows (SCALING.md: 107 B/host at
// 1M). This is the budget the million-host run extrapolates from.
func TestCompactFootprintBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-host build in -short mode")
	}
	isp := topology.GenISP(topology.AS1221)
	cfg := DefaultCompactConfig()
	cfg.Hosts = 100000
	cfg.EphemeralEvery = 100
	cfg.Seed = 3
	r := NewCompactRing(isp, cfg)
	r.Run()

	f := r.Footprint()
	perMember := f.RingBytesPerHost(r.Members())
	// succs 3*4 + pred 4 + router 4 + nsucc 1 + stable 1 = 22 B/member.
	if perMember > 32 {
		t.Errorf("ring state %.1f B/member, budget 32", perMember)
	}
	totalPerHost := float64(f.Total()) / float64(f.Hosts)
	if totalPerHost > 350 {
		t.Errorf("total footprint %.1f B/host, budget 350", totalPerHost)
	}
	if f.Intern == 0 || f.Caches == 0 || f.RNG == 0 {
		t.Errorf("footprint accounting has zero subsystems: %+v", f)
	}

	// Spot-check convergence at this scale without the full oracle.
	state := uint64(11)
	for i := 0; i < 50; i++ {
		from := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
		to := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
		res, err := r.Probe(from, r.IDOf(to))
		if err != nil || !res.Delivered {
			t.Fatalf("probe %d->%d at 100k: delivered=%v err=%v", from, to, res.Delivered, err)
		}
	}
}

// TestCompactCacheEviction fills one router's cache past capacity and
// checks it stays bounded while remaining able to answer lookups.
func TestCompactCacheEviction(t *testing.T) {
	isp := compactTestISP()
	cfg := smallCompactConfig()
	cfg.Hosts = 2000
	cfg.CacheCapacity = 64
	r := NewCompactRing(isp, cfg)
	for h := 0; h < r.Members(); h++ {
		r.cacheInsert(0, ident.Handle(h))
	}
	c := &r.caches[0]
	budget := c.bucketCap * len(c.buckets)
	if c.size > budget {
		t.Fatalf("cache holds %d entries, budget %d", c.size, budget)
	}
	if c.size == 0 {
		t.Fatal("cache empty after inserts")
	}
	hits := 0
	state := uint64(17)
	for i := 0; i < 200; i++ {
		pos := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
		dst := ident.FromUint64(sim.SplitMix64(&state))
		if _, ok := r.cacheLookup(0, r.IDOf(pos), dst); ok {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no lookup ever found a cached candidate")
	}
}

// BenchmarkCompactConverge measures building and converging a compact
// sharded ring end to end — the cost `roflsim -fig scaling` pays per
// sweep point before probing.
func BenchmarkCompactConverge(b *testing.B) {
	isp := compactTestISP()
	cfg := smallCompactConfig()
	cfg.Hosts = 2000
	cfg.Shards = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewCompactRing(isp, cfg)
		r.Run()
	}
}

// BenchmarkCompactProbe measures one greedy data-plane walk over a
// converged compact ring with warm caches.
func BenchmarkCompactProbe(b *testing.B) {
	isp := compactTestISP()
	cfg := smallCompactConfig()
	cfg.Hosts = 2000
	r := NewCompactRing(isp, cfg)
	r.Run()
	state := uint64(99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
		to := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
		if _, err := r.Probe(from, r.IDOf(to)); err != nil {
			b.Fatal(err)
		}
	}
}
