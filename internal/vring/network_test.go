package vring

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// testISP is a small but non-trivial ISP: 6 PoPs, ~40 routers.
func testISP() *topology.ISP {
	return topology.GenISP(topology.ISPConfig{
		Name: "test", Routers: 40, PoPs: 6, BackbonePerPoP: 2, PoPDegree: 2,
		IntraPoPDelay: 0.5, InterPoPDelay: 5, Hosts: 100, ZipfS: 1.2, Seed: 7,
	})
}

func newTestNet(t *testing.T, opts Options) (*Network, *topology.ISP) {
	t.Helper()
	isp := testISP()
	m := sim.NewMetrics()
	return New(isp.Graph, m, opts), isp
}

// joinN joins n deterministic host IDs at round-robin access routers.
func joinN(t *testing.T, n *Network, isp *topology.ISP, count int) []ident.ID {
	t.Helper()
	ids := make([]ident.ID, 0, count)
	for i := 0; i < count; i++ {
		id := ident.FromString(fmt.Sprintf("host-%d", i))
		at := isp.Access[i%len(isp.Access)]
		if _, err := n.JoinHost(id, at); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestBootstrapRingConsistent(t *testing.T) {
	n, _ := newTestNet(t, DefaultOptions())
	if err := n.CheckRing(); err != nil {
		t.Fatalf("bootstrap ring inconsistent: %v", err)
	}
	if n.Metrics.Counter(MsgBootstrap) == 0 {
		t.Fatal("bootstrap flood not charged")
	}
	if n.NumHosts() != 0 {
		t.Fatalf("fresh network has %d hosts", n.NumHosts())
	}
}

func TestJoinMaintainsRing(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 50)
	if err := n.CheckRing(); err != nil {
		t.Fatalf("ring broken after joins: %v", err)
	}
	if n.NumHosts() != 50 {
		t.Fatalf("hosts = %d", n.NumHosts())
	}
}

func TestJoinDuplicateRejected(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	id := ident.FromString("dup")
	if _, err := n.JoinHost(id, isp.Access[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := n.JoinHost(id, isp.Access[1]); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("want ErrDuplicateID, got %v", err)
	}
}

func TestJoinOverheadBounded(t *testing.T) {
	// Paper §6.2: join overhead ≈ 4 messages × network diameter.
	n, isp := newTestNet(t, DefaultOptions())
	diam := isp.Graph.DiameterHops(0, nil)
	joinN(t, n, isp, 40)
	s := sim.Summarize(n.Metrics.Samples(SampleJoinMsgs))
	if s.Mean > float64(6*diam) {
		t.Fatalf("mean join overhead %.1f exceeds 6x diameter (%d)", s.Mean, diam)
	}
	if s.Max > float64(12*diam) {
		t.Fatalf("max join overhead %.0f exceeds 12x diameter (%d)", s.Max, diam)
	}
	if s.Mean <= 0 {
		t.Fatal("join overhead must be positive")
	}
}

func TestRouteDelivers(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 30)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		from := isp.Access[rng.Intn(len(isp.Access))]
		dst := ids[rng.Intn(len(ids))]
		res, err := n.Route(from, dst)
		if err != nil {
			t.Fatalf("route to %s: %v", dst.Short(), err)
		}
		if !res.Delivered {
			t.Fatal("not delivered")
		}
		host, _ := n.HostingRouter(dst)
		if res.Final != host {
			t.Fatalf("delivered to %d, hosted at %d", res.Final, host)
		}
		if res.Stretch < 1 && res.Hops > 0 {
			t.Fatalf("stretch %v < 1", res.Stretch)
		}
	}
}

func TestRouteToSelfHostedID(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	id := ident.FromString("local")
	at := isp.Access[0]
	if _, err := n.JoinHost(id, at); err != nil {
		t.Fatal(err)
	}
	res, err := n.Route(at, id)
	if err != nil || res.Hops != 0 || res.Stretch != 1 {
		t.Fatalf("self route: res=%+v err=%v", res, err)
	}
}

func TestRouteUnknownID(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 5)
	_, err := n.Route(isp.Access[0], ident.FromString("ghost"))
	if !errors.Is(err, ErrUnknownID) {
		t.Fatalf("want ErrUnknownID, got %v", err)
	}
}

func TestEphemeralJoinAndRoute(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 20)
	eph := ident.FromString("laptop")
	res, err := n.JoinEphemeral(eph, isp.Access[3])
	if err != nil {
		t.Fatal(err)
	}
	if err := n.CheckRing(); err != nil {
		t.Fatalf("ephemeral join broke ring: %v", err)
	}
	// Ephemeral joins are cheaper: they only contact the predecessor.
	stable := sim.Summarize(n.Metrics.Samples(SampleJoinMsgs))
	if float64(res.Msgs) > stable.Max {
		t.Logf("ephemeral join %d msgs vs stable max %.0f", res.Msgs, stable.Max)
	}
	// Routing to the ephemeral ID works from anywhere.
	for _, from := range []RouterID{isp.Access[0], isp.Backbone[0], isp.Access[7]} {
		r, err := n.Route(from, eph)
		if err != nil || !r.Delivered {
			t.Fatalf("route to ephemeral from %d: %+v %v", from, r, err)
		}
	}
}

func TestEphemeralNotASuccessor(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 10)
	eph := ident.FromString("laptop2")
	if _, err := n.JoinEphemeral(eph, isp.Access[0]); err != nil {
		t.Fatal(err)
	}
	for _, r := range n.Routers {
		for _, vn := range r.VNs {
			for _, s := range vn.Succs {
				if s.ID == eph {
					t.Fatal("ephemeral ID must not appear in successor lists")
				}
			}
			if vn.Pred.ID == eph {
				t.Fatal("ephemeral ID must not be a predecessor")
			}
		}
	}
}

func TestCachingReducesStretch(t *testing.T) {
	// Fig 6a shape: bigger pointer caches → lower stretch.
	run := func(capacity int) float64 {
		isp := testISP()
		m := sim.NewMetrics()
		opts := DefaultOptions()
		opts.CacheCapacity = capacity
		n := New(isp.Graph, m, opts)
		rng := rand.New(rand.NewSource(9))
		var ids []ident.ID
		for i := 0; i < 150; i++ {
			id := ident.FromString(fmt.Sprintf("h%d", i))
			if _, err := n.JoinHost(id, isp.Access[rng.Intn(len(isp.Access))]); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		var total float64
		const probes = 300
		for i := 0; i < probes; i++ {
			from := isp.Access[rng.Intn(len(isp.Access))]
			res, err := n.Route(from, ids[rng.Intn(len(ids))])
			if err != nil {
				t.Fatal(err)
			}
			total += res.Stretch
		}
		return total / probes
	}
	none := run(0)
	big := run(100000)
	if big >= none {
		t.Fatalf("caching should cut stretch: none=%.2f big=%.2f", none, big)
	}
	if big < 1 {
		t.Fatalf("stretch below 1 impossible: %v", big)
	}
}

func TestControlCachingDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.CacheControl = false
	n, isp := newTestNet(t, opts)
	joinN(t, n, isp, 20)
	for _, r := range n.Routers {
		if r.Cache.Len() != 0 {
			t.Fatal("caches must stay empty with CacheControl off")
		}
	}
}

func TestSnoopDataFillsCaches(t *testing.T) {
	opts := DefaultOptions()
	opts.CacheControl = false
	opts.SnoopData = true
	n, isp := newTestNet(t, opts)
	ids := joinN(t, n, isp, 20)
	// Route until some cache is non-empty.
	rng := rand.New(rand.NewSource(4))
	filled := false
	for i := 0; i < 50 && !filled; i++ {
		if _, err := n.Route(isp.Access[rng.Intn(len(isp.Access))], ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		for _, r := range n.Routers {
			if r.Cache.Len() > 0 {
				filled = true
				break
			}
		}
	}
	if !filled {
		t.Fatal("data snooping should fill caches")
	}
}

func TestMemoryAccounting(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 30)
	total := 0
	for _, r := range n.Routers {
		total += r.MemoryEntries()
		if r.ResidentIDs() < 1 {
			t.Fatal("every router hosts at least its default VN")
		}
	}
	if total == 0 {
		t.Fatal("memory accounting empty")
	}
}

func TestTraversalsCounted(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 20)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		if _, err := n.Route(isp.Access[rng.Intn(len(isp.Access))], ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	var sum int64
	for _, c := range n.Traversals() {
		sum += c
	}
	if sum == 0 {
		t.Fatal("traversals not counted")
	}
}

func TestJoinAtDownRouter(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	n.LS.FailNode(isp.Access[0])
	if _, err := n.JoinHost(ident.FromString("x"), isp.Access[0]); !errors.Is(err, ErrRouterDown) {
		t.Fatalf("want ErrRouterDown, got %v", err)
	}
}

func TestJoinLatencyPositive(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	joinN(t, n, isp, 20)
	lat := sim.Summarize(n.Metrics.Samples(SampleJoinLatency))
	if lat.Mean <= 0 {
		t.Fatal("join latency must be positive for non-local joins")
	}
	// Latency should be on the order of a few network crossings, not
	// hundreds of ms on this small topology.
	if lat.Max > 500 {
		t.Fatalf("latency implausible: %v", lat.Max)
	}
}

func TestLookupTerminatesAtPredecessor(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 20)
	// Lookup of an existing ID delivers at its hosting router.
	out, err := n.Lookup(isp.Backbone[0], ids[3])
	if err != nil || !out.Delivered {
		t.Fatalf("lookup existing: %+v %v", out, err)
	}
	// Lookup of an absent ID terminates stuck at its ring predecessor.
	absent := ident.FromString("absent-key")
	out, err = n.Lookup(isp.Backbone[0], absent)
	if err != nil {
		t.Fatal(err)
	}
	if out.Delivered || out.StuckVN == nil {
		t.Fatalf("lookup absent must stick at predecessor: %+v", out)
	}
	if !ident.BetweenOpen(absent, out.StuckVN.ID, mustSucc(t, out.StuckVN).ID) && mustSucc(t, out.StuckVN).ID != absent {
		t.Fatalf("stuck VN %s is not the predecessor of %s", out.StuckVN.ID.Short(), absent.Short())
	}
}

func mustSucc(t *testing.T, vn *VirtualNode) Pointer {
	t.Helper()
	s, ok := vn.Succ()
	if !ok {
		t.Fatal("virtual node has no successor")
	}
	return s
}

func TestOptionsAccessors(t *testing.T) {
	opts := DefaultOptions()
	n, _ := newTestNet(t, opts)
	if n.Options().CacheCapacity != opts.CacheCapacity {
		t.Fatal("Options() must round-trip")
	}
	if n.Routers[0].Cache.Cap() != opts.CacheCapacity {
		t.Fatal("cache capacity must match options")
	}
}

func TestGreedyPathRecorded(t *testing.T) {
	n, isp := newTestNet(t, DefaultOptions())
	ids := joinN(t, n, isp, 20)
	out, err := n.RouteMatch(isp.Backbone[0], ids[0], nil)
	if err != nil || !out.Delivered {
		t.Fatalf("route: %+v %v", out, err)
	}
	if len(out.Path) != out.Msgs+1 {
		t.Fatalf("path records %d routers for %d hops", len(out.Path), out.Msgs)
	}
	if out.Path[0] != isp.Backbone[0] || out.Path[len(out.Path)-1] != out.Final {
		t.Fatal("path endpoints wrong")
	}
	// Consecutive path entries must be physically adjacent.
	g := isp.Graph
	for i := 1; i < len(out.Path); i++ {
		if !g.HasEdge(out.Path[i-1], out.Path[i]) {
			t.Fatalf("path hop %d-%d not a physical link", out.Path[i-1], out.Path[i])
		}
	}
}

func TestAllPairsDeliveryAcrossSeeds(t *testing.T) {
	// Semi-exhaustive delivery check: on several independently generated
	// small networks, every (router, identifier) pair must deliver with
	// stretch >= 1 — the network-level corollary of the greedy-progress
	// property.
	for seed := int64(1); seed <= 5; seed++ {
		isp := topology.GenISP(topology.ISPConfig{
			Name: "prop", Routers: 24, PoPs: 4, BackbonePerPoP: 2, PoPDegree: 2,
			IntraPoPDelay: 0.5, InterPoPDelay: 3, Hosts: 50, ZipfS: 1.2, Seed: seed,
		})
		m := sim.NewMetrics()
		opts := DefaultOptions()
		opts.Seed = seed
		n := New(isp.Graph, m, opts)
		var ids []ident.ID
		for i := 0; i < 15; i++ {
			id := ident.FromString(fmt.Sprintf("prop-%d-%d", seed, i))
			if _, err := n.JoinHost(id, isp.Access[i%len(isp.Access)]); err != nil {
				t.Fatalf("seed %d join: %v", seed, err)
			}
			ids = append(ids, id)
		}
		if err := n.CheckRing(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for r := 0; r < isp.Graph.NumNodes(); r++ {
			for _, id := range ids {
				res, err := n.Route(RouterID(r), id)
				if err != nil || !res.Delivered {
					t.Fatalf("seed %d: route %d->%s: %+v %v", seed, r, id.Short(), res, err)
				}
				if res.Stretch < 1 {
					t.Fatalf("seed %d: stretch %v < 1", seed, res.Stretch)
				}
			}
		}
	}
}

func TestEdgeWeightHelper(t *testing.T) {
	g := topology.NewGraph(2)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 2.5)
	if w, ok := g.EdgeWeight(a, b); !ok || w != 2.5 {
		t.Fatalf("EdgeWeight = %v %v", w, ok)
	}
	if _, ok := g.EdgeWeight(a, a); ok {
		t.Fatal("absent edge must not resolve")
	}
}
