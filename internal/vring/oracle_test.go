package vring

import "testing"

// TestJoinPredecessorOracle runs the churn soak with the join-time
// oracle cross-check enabled: every join's greedy predecessor lookup is
// compared against the sorted member list and any mismatch panics with a
// full diagnostic. This is the regression harness that caught ephemeral
// residents being used as ring positions (see §2.2: ephemeral hosts
// "cannot serve as successor or predecessor to other IDs").
func TestJoinPredecessorOracle(t *testing.T) {
	debugJoin = true
	t.Cleanup(func() { debugJoin = false })
	soakOneSeed(t, 101, 250)
	soakOneSeed(t, 777, 250)
}
