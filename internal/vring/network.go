// Package vring implements ROFL's intradomain design (paper §3): every
// host identifier is resident at a hosting router as a virtual node;
// virtual nodes splice themselves into a circular namespace ring with
// successor-group and predecessor pointers; packets are forwarded
// greedily to the closest known identifier that does not overshoot the
// destination (Algorithm 2), consulting resident state first and a
// bounded pointer cache second; and failures — host, router, link,
// partition — are repaired with teardowns, failover and zero-node driven
// ring merging (§3.2).
//
// Two ring implementations share that design. Network (network.go) is
// the full-fidelity simulator behind the paper's figures: per-node heap
// objects, rich failure machinery, journaled repairs. CompactRing
// (compact.go) is the million-host variant: interned uint32 handles,
// struct-of-arrays state, slab-allocated events on sim.ShardedEngine —
// ~22 bytes of ring state per member, converging 1M hosts on one
// machine. SCALING.md documents the scaling study built on it.
package vring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"rofl/internal/ident"
	"rofl/internal/linkstate"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// debugJoin enables an oracle cross-check of every join's predecessor
// lookup (tests only).
var debugJoin = false

// Metrics counter names charged by this package. One control message
// traversing k physical links counts k (paper §6.1 methodology).
const (
	MsgBootstrap = "vring-bootstrap"
	MsgJoin      = "vring-join"
	MsgData      = "vring-data"
	MsgTeardown  = "vring-teardown"
	MsgRepair    = "vring-repair"
)

// Sample names recorded by this package.
const (
	SampleJoinMsgs    = "vring-join-msgs"
	SampleJoinLatency = "vring-join-latency-ms"
	SampleStretch     = "vring-stretch"
)

// Options tunes the protocol knobs the paper evaluates.
type Options struct {
	// SuccessorGroup is the number of successors each virtual node keeps
	// ("nodes can hold multiple successors ... successor-groups", §2.2).
	SuccessorGroup int
	// CacheCapacity bounds each router's pointer cache (Fig 6a sweeps
	// this); 0 disables caching.
	CacheCapacity int
	// CacheControl enables filling caches from control traffic — the
	// paper's default ("we fill pointer caches only with contents
	// available from control packets", §6.1).
	CacheControl bool
	// SnoopData additionally fills caches from delivered data packets —
	// off in the paper's runs; exposed for the ablation benches.
	SnoopData bool
	// TTL bounds forwarding hops per packet.
	TTL int
	// Seed feeds the deterministic RNG.
	Seed int64
}

// DefaultOptions mirrors the paper's simulation defaults.
func DefaultOptions() Options {
	return Options{
		SuccessorGroup: 3,
		CacheCapacity:  70000, // ≈9 Mbit of 128-bit IDs (§6.2)
		CacheControl:   true,
		SnoopData:      false,
		TTL:            1024,
		Seed:           1,
	}
}

// VirtualNode holds the routing state a hosting router maintains for one
// resident identifier (§3.1: "spawns a virtual node that will hold the
// routing state with respect to this host's identifier").
type VirtualNode struct {
	ID        ident.ID
	Router    RouterID
	Ephemeral bool
	Default   bool // the router's own default virtual node (§3.1)

	// Succs is the successor group: Succs[0] is the immediate internal
	// successor, the rest are fallbacks for failure resilience.
	Succs []Pointer
	// Pred is the predecessor pointer.
	Pred Pointer
	// Parked holds ephemeral identifiers whose predecessor this node is;
	// the node keeps a source route to each (§2.2 "Ephemeral hosts").
	Parked []Pointer
}

// Succ returns the immediate successor pointer and whether one exists.
func (v *VirtualNode) Succ() (Pointer, bool) {
	if len(v.Succs) == 0 {
		return Pointer{}, false
	}
	return v.Succs[0], true
}

// Router is one physical router: a set of resident virtual nodes plus a
// bounded pointer cache.
type Router struct {
	Node  RouterID
	ID    ident.ID // router-ID; doubles as the default virtual node's ID
	VNs   map[ident.ID]*VirtualNode
	Cache *PointerCache
}

// MemoryEntries counts the routing-state entries this router holds —
// the paper's Fig 6c metric: ring pointers and parked routes on resident
// virtual nodes, plus cached pointers.
func (r *Router) MemoryEntries() int {
	n := r.Cache.Len()
	for _, vn := range r.VNs {
		n += len(vn.Succs) + len(vn.Parked)
		if vn.Pred != (Pointer{}) {
			n++
		}
	}
	return n
}

// ResidentIDs counts identifiers resident at this router (including the
// default virtual node).
func (r *Router) ResidentIDs() int { return len(r.VNs) }

// Network is one AS running intradomain ROFL over a router topology.
type Network struct {
	LS      *linkstate.Map
	Metrics sim.Metrics
	Routers []*Router

	opts Options
	rng  *rand.Rand

	// hostedAt is the experimenter's oracle — used only to compute
	// stretch denominators and to verify invariants, never consulted by
	// the protocol itself.
	hostedAt map[ident.ID]RouterID

	// traversals counts data-packet transits per router (Fig 6b).
	traversals []int64

	// failover is the pre-agreed router order used when a hosting router
	// dies (§3.2: "routers in advance agree on a sorted list of routers
	// that will be failed over to").
	failover []RouterID
}

// Errors returned by Network operations.
var (
	ErrDuplicateID   = errors.New("vring: identifier already resident")
	ErrUnknownID     = errors.New("vring: identifier not resident anywhere")
	ErrRouterDown    = errors.New("vring: router is down")
	ErrNoRoute       = errors.New("vring: greedy routing could not deliver")
	ErrTTLExceeded   = errors.New("vring: TTL exceeded")
	ErrNotReachable  = errors.New("vring: destination not reachable in this partition")
	ErrRingCorrupted = errors.New("vring: ring invariant violated")
)

// New constructs a network over g: one router per topology node, each
// bootstrapping a default virtual node into a ring of router-IDs. The
// bootstrap flood each default virtual node performs (§3.1) is charged
// to the MsgBootstrap counter; the resulting ring is built directly
// since the paper treats construction as a one-time cost.
func New(g *topology.Graph, m sim.Metrics, opts Options) *Network {
	if opts.SuccessorGroup < 1 {
		opts.SuccessorGroup = 1
	}
	if opts.TTL <= 0 {
		opts.TTL = 1024
	}
	n := &Network{
		LS:         linkstate.New(g, m),
		Metrics:    m,
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		hostedAt:   make(map[ident.ID]RouterID),
		traversals: make([]int64, g.NumNodes()),
	}
	n.Routers = make([]*Router, g.NumNodes())
	for i := range n.Routers {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(i))
		rid := ident.FromBytes(append([]byte("router"), b[:]...))
		n.Routers[i] = &Router{
			Node:  RouterID(i),
			ID:    rid,
			VNs:   make(map[ident.ID]*VirtualNode),
			Cache: NewPointerCache(opts.CacheCapacity),
		}
	}
	// Default virtual nodes join by flooding (§3.1); charge one flood
	// per router and build the converged ring directly.
	m.Count(MsgBootstrap, int64(2*g.NumEdges()*g.NumNodes()))
	members := make([]Pointer, 0, len(n.Routers))
	for _, r := range n.Routers {
		vn := &VirtualNode{ID: r.ID, Router: r.Node, Default: true}
		r.VNs[r.ID] = vn
		n.hostedAt[r.ID] = r.Node
		members = append(members, Pointer{ID: r.ID, Router: r.Node})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].ID.Less(members[j].ID) })
	for i, p := range members {
		vn := n.Routers[p.Router].VNs[p.ID]
		for k := 1; k <= opts.SuccessorGroup && k < len(members); k++ {
			vn.Succs = append(vn.Succs, members[(i+k)%len(members)])
		}
		vn.Pred = members[(i-1+len(members))%len(members)]
	}
	// Failover order: routers sorted by router-ID (pre-agreed and
	// deterministic).
	n.failover = make([]RouterID, len(members))
	for i, p := range members {
		n.failover[i] = p.Router
	}
	return n
}

// Options returns the network's configuration.
func (n *Network) Options() Options { return n.opts }

// HostingRouter returns where id is resident (oracle; for verification
// and stretch denominators).
func (n *Network) HostingRouter(id ident.ID) (RouterID, bool) {
	r, ok := n.hostedAt[id]
	return r, ok
}

// Traversals returns per-router data-packet transit counts (Fig 6b).
func (n *Network) Traversals() []int64 { return n.traversals }

// NumHosts returns the number of non-default resident identifiers.
func (n *Network) NumHosts() int {
	return len(n.hostedAt) - len(n.Routers) // default VNs excluded
}

// --- Greedy forwarding (Algorithm 2) -------------------------------------

// hop moves a message from router a to router b over current shortest
// paths, charging counter and recording traversals / cache fills.
// Returns physical hop count and latency, or ok=false if unreachable.
func (n *Network) hop(a, b RouterID, counter string, learn []Pointer, countTraversals bool) (int, float64, bool) {
	if a == b {
		return 0, 0, true
	}
	path := n.LS.Path(a, b)
	if path == nil {
		return 0, 0, false
	}
	hops := len(path) - 1
	n.Metrics.Count(counter, int64(hops))
	lat := n.LS.Latency(a, b)
	for _, node := range path[1:] {
		if countTraversals {
			n.traversals[node]++
		}
		if learn != nil {
			for _, p := range learn {
				n.Routers[node].Cache.Insert(p)
			}
		}
	}
	return hops, lat, true
}

// Outcome reports where greedy routing ended up.
type Outcome struct {
	Delivered bool
	VN        *VirtualNode // delivered-to virtual node (nil if stuck)
	Final     RouterID     // router where routing ended
	FinalPos  ident.ID     // ring position at termination (the stuck VN's ID)
	StuckVN   *VirtualNode // the VN routing got stuck at (the dst's predecessor)
	Msgs      int
	Latency   float64
	// Path is the ordered sequence of physical routers the packet
	// traversed, inclusive of the origin — multicast path-painting (§5.2)
	// installs tree pointers along it.
	Path []RouterID
}

// Accept decides delivery at a router: it returns the virtual node the
// packet is delivered to, if any. The default accept matches the exact
// destination identifier (resident or parked); anycast supplies a
// group-membership predicate instead (§5.2).
type Accept func(r *Router) (*VirtualNode, bool)

// greedy routes a message from router `from` toward dst, implementing
// Algorithm 2: at each router pick the closest identifier to dst that
// does not overshoot it, among resident virtual nodes, their ring
// pointers, parked ephemerals and the pointer cache (ring state takes
// precedence on ties by being scanned first). The packet's current ring
// position advances monotonically toward dst, which with the
// no-overshoot rule makes forwarding loop-free.
func (n *Network) greedy(from RouterID, dst ident.ID, counter string, learn []Pointer, countTraversals bool, avoid ...ident.ID) (Outcome, error) {
	return n.greedyAccept(from, dst, counter, learn, countTraversals, nil, avoid...)
}

func (n *Network) greedyAccept(from RouterID, dst ident.ID, counter string, learn []Pointer, countTraversals bool, accept Accept, avoid ...ident.ID) (Outcome, error) {
	if !n.LS.NodeUp(from) {
		return Outcome{}, ErrRouterDown
	}
	out := Outcome{Final: from, Path: []RouterID{from}}
	cur := from
	pos := n.Routers[from].ID
	posRouter := from
	stale := map[ident.ID]bool{} // pointers observed broken this routing attempt
	// A join's lookup must not chase the cache pointers it plants for the
	// not-yet-resident joining identifier.
	for _, a := range avoid {
		stale[a] = true
	}
	// The pointer the packet is currently heading for; re-evaluated at
	// every transit router and replaced whenever a strictly closer
	// identifier is known locally.
	var target Pointer
	var targetVN *VirtualNode
	haveTarget := false
	for ttl := n.opts.TTL; ttl > 0; ttl-- {
		r := n.Routers[cur]
		if accept != nil {
			if vn, ok := accept(r); ok {
				out.Delivered, out.VN, out.Final, out.FinalPos = true, vn, cur, vn.ID
				return out, nil
			}
		}
		// Deliver: destination resident here, or parked here as an
		// ephemeral child of a resident node.
		if vn, ok := r.VNs[dst]; ok {
			out.Delivered, out.VN, out.Final, out.FinalPos = true, vn, cur, dst
			return out, nil
		}
		if p, ok := parkedAt(r, dst); ok {
			h, lat, up := n.hop(cur, p.Router, counter, learn, countTraversals)
			if up {
				out.Msgs += h
				out.Latency += lat
				out.Path = appendHopPath(out.Path, n.LS.Path(cur, p.Router))
				vn := n.Routers[p.Router].VNs[dst]
				out.Delivered, out.VN, out.Final, out.FinalPos = true, vn, p.Router, dst
				return out, nil
			}
			stale[dst] = true
		}

		// Re-run Algorithm 2's selection at *every* router the packet
		// transits — intermediate routers with richer caches re-aim the
		// packet toward strictly closer identifiers, which is what pulls
		// stretch toward 1 as caches grow (§3.3, Fig 6a).
		best, bestVN, ok := n.selectNextHop(r, pos, dst, stale)
		if ok && best.Router == cur {
			// Advance position locally at no cost — but only onto a ring
			// member: a cached pointer may name an ephemeral resident,
			// which has no onward ring state (§2.2) and must not become
			// the packet's position.
			if vnB := r.VNs[best.ID]; vnB != nil && !vnB.Ephemeral {
				pos = best.ID
				posRouter = cur
				continue
			}
			stale[best.ID] = true
			continue
		}
		if ok {
			if !haveTarget || best.ID.Distance(dst).Cmp(target.ID.Distance(dst)) < 0 {
				target, targetVN, haveTarget = best, bestVN, true
			}
		}
		if !haveTarget {
			// No local candidate progresses. The stuck verdict ("pos is
			// dst's predecessor") is only sound at pos's own router,
			// where pos's successor pointers live; if a stale pointer
			// left us elsewhere, backtrack to the position's router and
			// re-select there.
			if cur != posRouter {
				h, lat, up := n.hop(cur, posRouter, counter, learn, countTraversals)
				if up {
					out.Msgs += h
					out.Latency += lat
					out.Path = appendHopPath(out.Path, n.LS.Path(cur, posRouter))
					cur = posRouter
					out.Final = cur
					continue
				}
			}
			out.Final, out.FinalPos = cur, pos
			out.StuckVN = r.VNs[pos]
			return out, nil
		}
		if target.Router == cur {
			// Arrived at the target's router: confirm a ring-member
			// resident and advance the position; tolerate staleness
			// during churn. Ephemeral residents are delivery endpoints,
			// never positions (§2.2).
			if vnT, resident := r.VNs[target.ID]; resident && !vnT.Ephemeral {
				pos = target.ID
				posRouter = cur
			} else {
				stale[target.ID] = true
				if targetVN == nil {
					r.Cache.Remove(target.ID)
				}
			}
			haveTarget = false
			continue
		}
		next, okHop := n.LS.NextHop(cur, target.Router)
		if !okHop {
			// Target unreachable in the current failure state.
			stale[target.ID] = true
			r.Cache.Remove(target.ID)
			haveTarget = false
			continue
		}
		// Move one physical hop toward the current target.
		n.Metrics.Count(counter, 1)
		out.Msgs++
		if w, okW := n.LS.Graph().EdgeWeight(cur, next); okW {
			out.Latency += w
		}
		if countTraversals {
			n.traversals[next]++
		}
		for _, p := range learn {
			n.Routers[next].Cache.Insert(p)
		}
		out.Path = append(out.Path, next)
		cur = next
		out.Final = cur
	}
	return out, ErrTTLExceeded
}

// learnControl gates the pointers control messages deposit in caches
// along their path on the CacheControl option.
func (n *Network) learnControl(learn []Pointer) []Pointer {
	if !n.opts.CacheControl {
		return nil
	}
	return learn
}

// selectNextHop scans the router's state for the candidate closest to
// dst without overshooting pos→dst. Ring pointers are scanned before the
// cache so they win ties (pointer precedence, §2.2). Returns the chosen
// pointer and the resident VN it came from (nil if from the cache).
func (n *Network) selectNextHop(r *Router, pos, dst ident.ID, stale map[ident.ID]bool) (Pointer, *VirtualNode, bool) {
	var best Pointer
	var bestVN *VirtualNode
	var bestDist ident.ID
	found := false
	consider := func(p Pointer, vn *VirtualNode) {
		if stale[p.ID] || !ident.Progress(pos, dst, p.ID) {
			return
		}
		d := p.ID.Distance(dst)
		if !found || d.Cmp(bestDist) < 0 {
			best, bestVN, bestDist, found = p, vn, d, true
		}
	}
	for _, vn := range r.VNs {
		// Ephemeral hosts "cannot serve as successor or predecessor to
		// other IDs" (§2.2): they carry no ring pointers, so using one as
		// a greedy waypoint would strand the packet — and a join lookup
		// stuck at one would splice the ring at the wrong predecessor.
		// Exact-match delivery to them is handled before selection.
		if vn.Ephemeral {
			continue
		}
		consider(Pointer{ID: vn.ID, Router: r.Node}, vn)
		for _, s := range vn.Succs {
			consider(s, vn)
		}
		if vn.Pred != (Pointer{}) {
			consider(vn.Pred, vn)
		}
	}
	if p, ok := r.Cache.Lookup(pos, dst); ok {
		// Cache beats ring state only when strictly closer (precedence).
		if !stale[p.ID] {
			d := p.ID.Distance(dst)
			if !found || d.Cmp(bestDist) < 0 {
				best, bestVN, found = p, nil, true
			}
		}
	}
	return best, bestVN, found
}

func parkedAt(r *Router, id ident.ID) (Pointer, bool) {
	for _, vn := range r.VNs {
		for _, p := range vn.Parked {
			if p.ID == id {
				return p, true
			}
		}
	}
	return Pointer{}, false
}

// --- Joining (Algorithm 1) ------------------------------------------------

// JoinResult reports the cost of one host join — the quantities Figures
// 5a–5c are built from.
type JoinResult struct {
	VN      *VirtualNode
	Msgs    int
	Latency float64
}

// JoinHost makes id resident at router `at` as a stable host and splices
// it into the ring (join_internal, Algorithm 1): authenticate, locate
// the predecessor by greedy-routing a join request toward id, splice
// successor/predecessor pointers, and notify the successor. Control
// messages deposit pointers to the joining identifier in caches along
// their paths (§3.1 "intermediate routers may cache destination IDs
// contained in the message").
func (n *Network) JoinHost(id ident.ID, at RouterID) (JoinResult, error) {
	return n.join(id, at, false)
}

// JoinEphemeral makes id resident at `at` as an ephemeral host: it only
// establishes state at its ring predecessor (a parked backpointer) and
// never serves as anyone's successor or predecessor (§2.2), roughly
// halving join cost.
func (n *Network) JoinEphemeral(id ident.ID, at RouterID) (JoinResult, error) {
	return n.join(id, at, true)
}

func (n *Network) join(id ident.ID, at RouterID, ephemeral bool) (JoinResult, error) {
	if !n.LS.NodeUp(at) {
		return JoinResult{}, ErrRouterDown
	}
	if _, dup := n.hostedAt[id]; dup {
		return JoinResult{}, fmt.Errorf("%w: %s", ErrDuplicateID, id.Short())
	}
	// Authentication (§2.1): host proves key possession to the hosting
	// router over the local attachment link — no network-level messages.

	learn := n.learnControl([]Pointer{{ID: id, Router: at}})
	if ephemeral {
		// Ephemeral identifiers are reached through their predecessor's
		// parked state, never through cached waypoints; keep them out of
		// pointer caches entirely.
		learn = nil
	}
	out, err := n.greedy(at, id, MsgJoin, learn, false, id)
	if err != nil {
		return JoinResult{}, fmt.Errorf("locating predecessor of %s: %w", id.Short(), err)
	}
	if out.Delivered {
		return JoinResult{}, fmt.Errorf("%w: %s", ErrDuplicateID, id.Short())
	}
	pred := out.StuckVN
	if pred == nil {
		return JoinResult{}, fmt.Errorf("%w: no predecessor found for %s", ErrRingCorrupted, id.Short())
	}
	if debugJoin {
		ms := n.members()
		idx := predecessorIndex(ms, id)
		if ms[idx].ID != pred.ID {
			panic(fmt.Sprintf("WRONG SPLICE joining %s: stuck at %s (eph=%v def=%v router=%d) want %s@%d; pos=%s final=%d msgs=%d",
				id.Short(), pred.ID.Short(), pred.Ephemeral, pred.Default, pred.Router,
				ms[idx].ID.Short(), ms[idx].Router, out.FinalPos.Short(), out.Final, out.Msgs))
		}
	}
	msgs := out.Msgs
	latency := out.Latency

	// Predecessor replies to the gateway with the successor set.
	replyLearn := n.learnControl([]Pointer{{ID: pred.ID, Router: pred.Router}})
	h2, l2, up := n.hop(pred.Router, at, MsgJoin, replyLearn, false)
	if !up {
		return JoinResult{}, ErrNotReachable
	}
	msgs += h2

	vn := &VirtualNode{ID: id, Router: at, Ephemeral: ephemeral}
	self := Pointer{ID: id, Router: at}

	if ephemeral {
		// Ephemeral hosts only park a backpointer at the predecessor.
		pred.Parked = append(pred.Parked, self)
		n.Routers[at].VNs[id] = vn
		n.hostedAt[id] = at
		latency += l2
		res := JoinResult{VN: vn, Msgs: msgs, Latency: latency}
		n.Metrics.Sample(SampleJoinMsgs, float64(msgs))
		n.Metrics.Sample(SampleJoinLatency, latency)
		return res, nil
	}

	// Splice: the new node inherits the predecessor's successor group;
	// the predecessor's immediate successor becomes the new node.
	vn.Succs = append([]Pointer(nil), pred.Succs...)
	trimGroup(&vn.Succs, n.opts.SuccessorGroup)
	vn.Pred = Pointer{ID: pred.ID, Router: pred.Router}
	pred.Succs = prependGroup(pred.Succs, self, n.opts.SuccessorGroup)

	// Parked ephemerals in (id, oldSuccessor) now have the new node as
	// their ring predecessor; hand their parking over (§2.2 keeps
	// ephemeral state at the predecessor).
	keptParked := pred.Parked[:0]
	for _, e := range pred.Parked {
		if ident.BetweenOpen(e.ID, pred.ID, id) {
			keptParked = append(keptParked, e)
		} else {
			vn.Parked = append(vn.Parked, e)
		}
	}
	pred.Parked = keptParked

	n.Routers[at].VNs[id] = vn
	n.hostedAt[id] = at

	// Notify the successor to update its predecessor pointer; the
	// predecessor sends this in parallel with its reply to the gateway,
	// and the successor acks to the gateway (§6.2: joins complete in
	// about a network diameter because messages overlap).
	var l34 float64
	if s, ok := vn.Succ(); ok {
		if svn := n.vnAt(s); svn != nil {
			h3, l3, up3 := n.hop(pred.Router, s.Router, MsgJoin, learn, false)
			if up3 {
				msgs += h3
				svn.Pred = self
				h4, l4, up4 := n.hop(s.Router, at, MsgJoin, nil, false)
				if up4 {
					msgs += h4
				}
				l34 = l3 + l4
			}
		}
	}
	latency += maxf(l2, l34)

	n.Metrics.Sample(SampleJoinMsgs, float64(msgs))
	n.Metrics.Sample(SampleJoinLatency, latency)
	return JoinResult{VN: vn, Msgs: msgs, Latency: latency}, nil
}

func (n *Network) vnAt(p Pointer) *VirtualNode {
	if p.Router < 0 || int(p.Router) >= len(n.Routers) {
		return nil
	}
	return n.Routers[p.Router].VNs[p.ID]
}

func trimGroup(g *[]Pointer, max int) {
	if len(*g) > max {
		*g = (*g)[:max]
	}
}

func prependGroup(g []Pointer, p Pointer, max int) []Pointer {
	out := make([]Pointer, 0, max)
	out = append(out, p)
	for _, e := range g {
		if e.ID == p.ID {
			continue
		}
		if len(out) >= max {
			break
		}
		out = append(out, e)
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// --- Data routing ----------------------------------------------------------

// RouteResult reports one data packet's fate.
type RouteResult struct {
	Delivered bool
	Hops      int     // physical links traversed
	Shortest  int     // link-state shortest hop count to the hosting router
	Stretch   float64 // traversed latency / shortest-path latency (>= 1)
	Latency   float64
	Final     RouterID
}

// Route forwards a data packet from router `from` toward dst and reports
// the traversed path length and stretch relative to shortest-path
// routing — the paper's primary data-plane metric (§6.1).
func (n *Network) Route(from RouterID, dst ident.ID) (RouteResult, error) {
	host, known := n.hostedAt[dst]
	var learn []Pointer
	if n.opts.SnoopData && known {
		if vn := n.Routers[host].VNs[dst]; vn != nil && !vn.Ephemeral {
			learn = []Pointer{{ID: dst, Router: host}}
		}
	}
	out, err := n.greedy(from, dst, MsgData, learn, true)
	if err != nil {
		return RouteResult{}, err
	}
	if !out.Delivered {
		if !known {
			return RouteResult{}, fmt.Errorf("%w: %s", ErrUnknownID, dst.Short())
		}
		return RouteResult{}, fmt.Errorf("%w: %s stuck at router %d", ErrNoRoute, dst.Short(), out.Final)
	}
	res := RouteResult{
		Delivered: true,
		Hops:      out.Msgs,
		Latency:   out.Latency,
		Final:     out.Final,
	}
	if known {
		res.Shortest = n.LS.Hops(from, host)
		// Stretch compares weighted path lengths so that, by the triangle
		// inequality, it is always >= 1; hop-count ratios can dip below 1
		// when the latency-shortest path is hop-longer.
		direct := n.LS.Latency(from, host)
		if direct <= 0 || res.Latency <= direct {
			res.Stretch = 1
		} else {
			res.Stretch = res.Latency / direct
		}
		n.Metrics.Sample(SampleStretch, res.Stretch)
	}
	return res, nil
}

// Lookup performs a control-plane route toward dst without data-plane
// accounting, returning the router where greedy routing terminates. It
// is the primitive the interdomain layer builds on.
func (n *Network) Lookup(from RouterID, dst ident.ID) (Outcome, error) {
	return n.greedy(from, dst, MsgJoin, nil, false)
}

// RouteMatch forwards a packet greedily toward dst but delivers at the
// first router where accept matches — the primitive behind anycast
// ("the packet reaching the first server in G for which the packet
// encounters a route", §5.2) and multicast tree painting. Identifiers in
// avoid are never used as forwarding waypoints (a group member probing
// its own group must not terminate at itself).
func (n *Network) RouteMatch(from RouterID, dst ident.ID, accept Accept, avoid ...ident.ID) (Outcome, error) {
	return n.greedyAccept(from, dst, MsgData, nil, true, accept, avoid...)
}

// appendHopPath extends a traversal record with the intermediate routers
// of one forwarding leg (the leg's first router is already recorded).
func appendHopPath(path []RouterID, leg []topology.NodeID) []RouterID {
	if len(leg) > 1 {
		path = append(path, leg[1:]...)
	}
	return path
}
