package vring

import (
	"rofl/internal/ident"
	"rofl/internal/proto"
	"rofl/internal/sim"
	"rofl/internal/wire"
)

// ProtoRing is the simulation driver of the transport-agnostic protocol
// core: the same proto.Core state machine internal/overlay drives over
// real sockets, here stepped under the sim engine's virtual clock. Every
// emitted packet is marshaled to wire bytes and scheduled as a
// constant-latency event, every maintenance tick is fed in lockstep
// index order, and every transition's notes land in one shared journal —
// so a seeded run is a pure function of its schedule, byte-comparable
// against the same schedule driven through a netem fabric (the
// cross-driver equivalence test in internal/proto).
//
// The driver is single-threaded by construction: cores only transition
// inside engine events or the caller's own step methods, so no lock
// guards them.
type ProtoRing struct {
	eng     *sim.Engine
	latency sim.Time
	journal *proto.Journal
	intern  *ident.Intern
	slots   []*protoSlot
	// acts is the one Actions buffer every transition reuses; dispatch
	// drains it (marshaling sends into independent byte slices) before
	// the next transition runs.
	acts proto.Actions
}

// protoSlot is one node position. The identity is permanent across
// kill/restart cycles and its interned handle doubles as the slot index
// and the fabric address (proto.HandleAddr); the core is
// per-incarnation, nil while killed.
type protoSlot struct {
	index int
	id    ident.ID
	addr  string
	core  *proto.Core
}

// NewProtoRing builds an empty driver over eng. Packets arrive latency
// virtual milliseconds after they are sent; journal (optional) receives
// every transition's notes.
func NewProtoRing(eng *sim.Engine, latency sim.Time, journal *proto.Journal) *ProtoRing {
	if journal == nil {
		journal = &proto.Journal{}
	}
	return &ProtoRing{
		eng:     eng,
		latency: latency,
		journal: journal,
		intern:  ident.NewIntern(),
	}
}

// AddNode attaches a node with the given identity and returns its slot
// index — the identity's dense intern handle, which also derives the
// node's fabric address. Addresses never appear in the journal, so runs
// remain byte-comparable against drivers with transport-assigned
// addresses. The core's sampling seed derives from the identity,
// exactly as the overlay driver derives it. Adding the same identity
// twice panics: a slot's handle must stay unique.
func (r *ProtoRing) AddNode(id ident.ID) int {
	h := r.intern.Handle(id)
	if int(h) != len(r.slots) {
		panic("vring: ProtoRing.AddNode called twice with one identity")
	}
	addr := proto.HandleAddr(h)
	s := &protoSlot{
		index: int(h),
		id:    id,
		addr:  addr,
		core:  proto.New(proto.Config{ID: id, Addr: addr}),
	}
	r.slots = append(r.slots, s)
	return s.index
}

// Core exposes slot i's protocol state machine (nil while killed), for
// assertions.
func (r *ProtoRing) Core(i int) *proto.Core { return r.slots[i].core }

// Addr returns slot i's permanent fabric address.
func (r *ProtoRing) Addr(i int) string { return r.slots[i].addr }

// Alive reports whether slot i currently runs a core.
func (r *ProtoRing) Alive(i int) bool { return r.slots[i].core != nil }

// Journal returns the accumulated event journal.
func (r *ProtoRing) Journal() string { return r.journal.String() }

// Bootstrap founds the ring at slot i.
func (r *ProtoRing) Bootstrap(i int) {
	r.journal.Markf("bootstrap %d", i)
	r.slots[i].core.Bootstrap()
}

// Join splices slot i into the ring through slot via and runs the
// fabric to quiescence. With a lossless virtual fabric the first
// request round-trip completes the join, so no retry machinery runs.
func (r *ProtoRing) Join(i, via int) {
	s := r.slots[i]
	r.journal.Markf("join %d via %d", i, via)
	s.core.StartJoin(s.core.NextReqID(), r.slots[via].addr, &r.acts)
	r.dispatch(s)
	r.eng.Run()
}

// Kill crashes slot i: the core vanishes and packets in flight toward
// it are dropped on arrival, exactly like datagrams to a closed socket.
func (r *ProtoRing) Kill(i int) {
	r.journal.Markf("kill %d", i)
	r.slots[i].core = nil
}

// Restart brings slot i back — same identity, same address, a fresh
// core with the same derived seed — and rejoins it through slot via.
func (r *ProtoRing) Restart(i, via int) {
	s := r.slots[i]
	r.journal.Markf("restart %d", i)
	s.core = proto.New(proto.Config{ID: s.id, Addr: s.addr})
	r.Join(i, via)
}

// TickStabilize feeds one stabilization tick to every live slot in
// index order, then runs the fabric to quiescence — one lockstep
// maintenance round.
func (r *ProtoRing) TickStabilize() {
	for _, s := range r.slots {
		if s.core == nil {
			continue
		}
		r.journal.Markf("tick %d", s.index)
		s.core.TickStabilize(&r.acts)
		r.dispatch(s)
	}
	r.eng.Run()
}

// TickLiveness feeds one BFD liveness tick to every live slot in index
// order, then runs the fabric to quiescence.
func (r *ProtoRing) TickLiveness() {
	for _, s := range r.slots {
		if s.core == nil {
			continue
		}
		r.journal.Markf("bfd %d", s.index)
		s.core.TickLiveness(&r.acts)
		r.dispatch(s)
	}
	r.eng.Run()
}

// Send originates a data payload from slot i toward dst and runs the
// fabric to quiescence.
func (r *ProtoRing) Send(i int, dst ident.ID, payload []byte) {
	s := r.slots[i]
	r.journal.Markf("send %d", s.index)
	s.core.Originate(dst, payload, nil, &r.acts)
	r.dispatch(s)
	r.eng.Run()
}

// dispatch records one transition's notes and schedules its sends: each
// packet is marshaled now (the bytes in flight are independent of the
// sender's state, as on a real wire) and delivered after the constant
// fabric latency. The shared Actions buffer is drained for the next
// transition.
func (r *ProtoRing) dispatch(s *protoSlot) {
	r.journal.Record(&r.acts)
	for i := range r.acts.Sends {
		snd := r.acts.Sends[i]
		buf, err := snd.Pkt.Marshal()
		if err != nil {
			continue // malformed packets vanish, as a socket would reject them
		}
		to, from := snd.Addr, s.addr
		r.eng.Schedule(r.latency, func() { r.deliver(to, from, buf) })
	}
	r.acts.Reset()
}

// deliver decodes one arriving datagram into the destination core; the
// cascade of actions it triggers dispatches recursively through the
// engine.
func (r *ProtoRing) deliver(to, from string, buf []byte) {
	h, ok := proto.ParseHandleAddr(to)
	if !ok || int(h) >= len(r.slots) {
		return // unknown destination: dropped like UDP
	}
	dst := r.slots[h]
	if dst.core == nil {
		return // crashed destination: dropped like UDP
	}
	var pkt wire.Packet
	if err := pkt.DecodeFromBytes(buf); err != nil {
		return
	}
	dst.core.HandlePacket(&pkt, from, &r.acts)
	r.dispatch(dst)
}
