package vring

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"rofl/internal/ident"
	"rofl/internal/linkstate"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// This file is the million-host variant of the intradomain ring: the
// same protocol shape as Network (successor groups, predecessor
// pointers, parked ephemerals, per-router pointer caches, greedy
// forwarding) restructured so one machine can hold and converge a ring
// of 1M+ resident identifiers.
//
// Three changes carry the scale:
//
//  1. Interning. Node IDs live once in an ident.Intern table; every
//     piece of per-node routing state (successor slab, predecessor,
//     cache entries, parked children) stores 4-byte dense handles
//     instead of 16-byte labels, and all per-node state is
//     struct-of-arrays indexed by handle — no per-node heap objects.
//  2. Slab allocation. Events are value Msgs in the sharded engine's
//     reused heaps; parked ephemeral state and its packed source
//     routes are append-only slabs; caches are bucketed slot arrays.
//     Steady-state simulation performs no allocation on the event path
//     (guarded by the hotpath analyzer via (*CompactRing).HandleMsg).
//  3. Sharding. Convergence runs on sim.ShardedEngine with nodes
//     grouped by hosting router (affinity = router index), so each
//     router's pointer cache is owned by exactly one shard and the run
//     is byte-identical at any shard count (see the shard-invariance
//     test, the PR-10 analogue of the cross-driver journal gate).

// Metrics names charged by the compact ring. Control messages are
// charged by physical hops traversed, matching the §6.1 methodology.
const (
	MsgCompactControl = "cring-control"
	// CtrCompactCacheHit / Miss count pointer-cache consultations
	// during measurement probes.
	CtrCompactCacheHit  = "cring-cache-hit"
	CtrCompactCacheMiss = "cring-cache-miss"
)

// Sample names recorded by the compact ring's measurement probes.
const (
	SampleCompactStretch  = "cring-stretch"
	SampleCompactJoinMsgs = "cring-join-msgs"
)

// Protocol message kinds on the sharded engine.
const (
	cmTimer    uint16 = iota // self: run one stabilize round
	cmGetSucc                // ask the receiver for its successor list
	cmSuccList               // reply: Args carries up to 4 successor handles
)

// Journal kinds recorded during convergence (sharded-run invariance is
// proven over these).
const (
	CJPredAdopt uint16 = iota // Node adopted A as predecessor
	CJSuccAdopt               // Node's successor group changed after merging from A
	CJStable                  // Node reached a stable successor group of size A
)

// MaxCompactSuccessors is the successor-group ceiling: a group must fit
// one sim.Msg advertisement (len(Msg.Args)).
const MaxCompactSuccessors = 4

// CompactConfig sizes one compact-ring simulation.
type CompactConfig struct {
	// Hosts is the number of stable ring members.
	Hosts int
	// EphemeralEvery attaches one ephemeral host (parked at its ring
	// predecessor with a packed source route, §2.2) per this many
	// stable hosts; 0 disables ephemerals.
	EphemeralEvery int
	// SuccessorGroup is the per-node successor count (1..4).
	SuccessorGroup int
	// CacheCapacity bounds each router's pointer cache, in entries.
	CacheCapacity int
	// StabilizeEvery is the virtual time between a node's stabilize
	// rounds.
	StabilizeEvery sim.Time
	// Lookahead is the sharded engine's minimum inter-node delay and
	// barrier window; physical latencies below it are clamped up.
	Lookahead sim.Time
	// Shards is the shard count (1 reproduces the serial run; results
	// are byte-identical at any value).
	Shards int
	// Seed feeds ID generation, placement, and per-node jitter.
	Seed int64
	// Journal records convergence transitions (tests only: a 1M-host
	// run would journal tens of millions of entries).
	Journal bool
	// TTL bounds measurement-probe forwarding steps.
	TTL int
}

// DefaultCompactConfig mirrors the Network defaults at compact scale.
func DefaultCompactConfig() CompactConfig {
	return CompactConfig{
		Hosts:          10000,
		EphemeralEvery: 0,
		SuccessorGroup: 3,
		CacheCapacity:  8192,
		StabilizeEvery: 10,
		Lookahead:      1,
		Shards:         1,
		Seed:           1,
		TTL:            4096,
	}
}

// cacheSlot is one pointer-cache entry: an interned member handle plus
// an LRU stamp. 8 bytes, versus the 24-byte ID+router entry of
// PointerCache.
type cacheSlot struct {
	h     ident.Handle
	stamp uint32
}

// compactCache is a bucketed approximate-LRU pointer cache over
// interned handles. Entries hash into buckets by ID prefix (IDs are
// uniform, so buckets stay balanced); each bucket is a small ID-sorted
// slab, giving O(log bucket) lookup and O(bucket) insert instead of the
// O(capacity) memmove a single sorted slice would cost at 10^4–10^5
// entries. Eviction is LRU *within the insertion bucket* — a documented
// approximation of global LRU that keeps every operation bucket-local
// and deterministic.
type compactCache struct {
	buckets   [][]cacheSlot
	bucketCap int
	shift     uint // bucket = uint32(id[0:4]) >> shift
	clock     uint32
	size      int
}

const cacheBucketTarget = 16

func newCompactCache(capacity int) compactCache {
	if capacity <= 0 {
		return compactCache{}
	}
	nb := 1
	for nb*cacheBucketTarget < capacity {
		nb <<= 1
	}
	shift := uint(32)
	for b := nb; b > 1; b >>= 1 {
		shift--
	}
	bc := capacity / nb
	if bc < 4 {
		bc = 4
	}
	return compactCache{
		buckets:   make([][]cacheSlot, nb),
		bucketCap: bc,
		shift:     shift,
	}
}

// CompactRing is the struct-of-arrays ring. Build with NewCompactRing,
// converge with Run, then measure with Probe/ProbeJoin/Footprint.
type CompactRing struct {
	cfg     CompactConfig
	intern  *ident.Intern
	ids     []ident.ID // ids[h]; alias of the intern slab order
	members int        // handles [0, members) are ring members; the rest are ephemerals

	// Per-node protocol state, all handle-indexed slabs.
	router []uint32       // hosting router
	succs  []ident.Handle // stride cfg.SuccessorGroup, clockwise-nearest first
	nsucc  []uint8
	pred   []ident.Handle
	rngs   []uint64 // splitmix64 per-node jitter state
	stable []uint8  // consecutive no-change stabilize rounds

	// Parked ephemerals: per-member singly linked list in slabs, each
	// entry holding the child handle and a packed source route (router
	// indices) into routeSlab.
	parkedHead  []int32 // per member; -1 = none
	parkedNext  []int32
	parkedChild []ident.Handle
	routeOff    []uint32
	routeLen    []uint16
	routeLat    []float32
	routeSlab   []uint16

	// Physical substrate: dense all-pairs latency/hop matrices over the
	// ISP's routers (precomputed once; probes and control charging are
	// then pure array reads), plus the link-state view for router paths.
	nrouters int
	latM     []float32
	hopM     []uint16
	ls       *linkstate.Map

	caches []compactCache // per router

	eng     *sim.ShardedEngine
	msgs    sim.Metrics // merged engine metrics after Run
	probeMx sim.Metrics // measurement-phase sink (serial)
	ran     bool
}

// NewCompactRing builds a primed, unconverged ring of cfg.Hosts member
// identifiers (plus ephemerals) hosted uniformly across the ISP's
// access routers. Each member starts knowing only its immediate
// clockwise successor — the state a completed Algorithm-1 join leaves
// behind — and must discover its full successor group and predecessor
// by running stabilization to convergence (Run).
func NewCompactRing(isp *topology.ISP, cfg CompactConfig) *CompactRing {
	if cfg.Hosts < 1 {
		cfg.Hosts = 1
	}
	if cfg.SuccessorGroup < 1 {
		cfg.SuccessorGroup = 1
	}
	if cfg.SuccessorGroup > MaxCompactSuccessors {
		cfg.SuccessorGroup = MaxCompactSuccessors
	}
	if cfg.StabilizeEvery <= 0 {
		cfg.StabilizeEvery = 10
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = 1
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 4096
	}

	m := cfg.Hosts
	e := 0
	if cfg.EphemeralEvery > 0 {
		e = m / cfg.EphemeralEvery
	}
	n := m + e
	r := &CompactRing{
		cfg:     cfg,
		intern:  ident.NewInternSize(n),
		members: m,
		probeMx: sim.NewMetrics(),
	}

	// Mint and intern identities: members first (handles [0, m)), then
	// ephemerals. Handles are dense, so they index every slab below.
	var seedBuf [16]byte
	binary.BigEndian.PutUint64(seedBuf[:8], uint64(cfg.Seed))
	for i := 0; i < m; i++ {
		binary.BigEndian.PutUint64(seedBuf[8:], uint64(i))
		r.intern.Handle(ident.FromBytes(seedBuf[:]))
	}
	for i := 0; i < e; i++ {
		binary.BigEndian.PutUint64(seedBuf[8:], uint64(m+i))
		seedBuf[0] ^= 0xa5 // distinct stream for ephemerals
		r.intern.Handle(ident.FromBytes(seedBuf[:]))
		seedBuf[0] ^= 0xa5
	}
	r.ids = make([]ident.ID, n)
	for h := 0; h < n; h++ {
		r.ids[h] = r.intern.ID(ident.Handle(h))
	}

	// Placement: uniform over access routers, from a seeded stream.
	g := isp.Graph
	r.nrouters = g.NumNodes()
	r.router = make([]uint32, n)
	place := uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15
	for h := 0; h < n; h++ {
		r.router[h] = uint32(isp.Access[sim.SplitMix64(&place)%uint64(len(isp.Access))])
	}

	// All-pairs physical metric over the router graph: one cached-SPT
	// sweep per source, then dense float32/uint16 matrices.
	ls := linkstate.New(g, sim.NewMetrics())
	r.ls = ls
	r.latM = make([]float32, r.nrouters*r.nrouters)
	r.hopM = make([]uint16, r.nrouters*r.nrouters)
	for a := 0; a < r.nrouters; a++ {
		for b := 0; b < r.nrouters; b++ {
			r.latM[a*r.nrouters+b] = float32(ls.Latency(topology.NodeID(a), topology.NodeID(b)))
			r.hopM[a*r.nrouters+b] = uint16(ls.Hops(topology.NodeID(a), topology.NodeID(b)))
		}
	}

	// Ring wiring: sort member handles by ID; each starts with only its
	// immediate successor (nsucc = 1) and no predecessor.
	s := cfg.SuccessorGroup
	r.succs = make([]ident.Handle, m*s)
	for i := range r.succs {
		r.succs[i] = ident.NoHandle
	}
	r.nsucc = make([]uint8, m)
	r.pred = make([]ident.Handle, m)
	for i := range r.pred {
		r.pred[i] = ident.NoHandle
	}
	sorted := make([]ident.Handle, m)
	for i := range sorted {
		sorted[i] = ident.Handle(i)
	}
	sort.Slice(sorted, func(i, j int) bool { return r.ids[sorted[i]].Less(r.ids[sorted[j]]) })
	if m > 1 {
		for i, h := range sorted {
			r.succs[int(h)*s] = sorted[(i+1)%m]
			r.nsucc[h] = 1
		}
	}

	// Parked ephemerals: each ephemeral's ring predecessor parks the
	// child handle plus a packed source route (the router path from the
	// predecessor's router to the child's), exactly the state §2.2
	// leaves at the predecessor after an ephemeral join.
	r.parkedHead = make([]int32, m)
	for i := range r.parkedHead {
		r.parkedHead[i] = -1
	}
	if e > 0 {
		for i := 0; i < e; i++ {
			child := ident.Handle(m + i)
			cid := r.ids[child]
			rank := sort.Search(m, func(k int) bool { return cid.Less(r.ids[sorted[k]]) })
			p := sorted[(rank-1+m)%m]
			path := ls.Path(topology.NodeID(r.router[p]), topology.NodeID(r.router[child]))
			off := uint32(len(r.routeSlab))
			for _, node := range path {
				r.routeSlab = append(r.routeSlab, uint16(node))
			}
			idx := int32(len(r.parkedChild))
			r.parkedChild = append(r.parkedChild, child)
			r.routeOff = append(r.routeOff, off)
			r.routeLen = append(r.routeLen, uint16(len(path)))
			r.routeLat = append(r.routeLat, r.latM[int(r.router[p])*r.nrouters+int(r.router[child])])
			r.parkedNext = append(r.parkedNext, r.parkedHead[p])
			r.parkedHead[p] = idx
		}
	}

	// Per-router caches and per-node jitter streams.
	r.caches = make([]compactCache, r.nrouters)
	for i := range r.caches {
		r.caches[i] = newCompactCache(cfg.CacheCapacity)
	}
	r.rngs = make([]uint64, n)
	for h := 0; h < n; h++ {
		r.rngs[h] = uint64(cfg.Seed)<<32 ^ uint64(h) ^ 0xdeadbeefcafef00d
	}
	r.stable = make([]uint8, m)

	// Sharded engine: nodes grouped by hosting router so each router's
	// cache is shard-private; prime one jittered stabilize timer per
	// member.
	r.eng = sim.NewSharded(n, cfg.Shards, cfg.Lookahead, r.router, r)
	if cfg.Journal {
		r.eng.EnableJournal()
	}
	if m > 1 {
		for h := 0; h < m; h++ {
			jitter := sim.Time(sim.SplitMix64(&r.rngs[h])%1024) / 1024 * cfg.StabilizeEvery
			r.eng.Prime(jitter, sim.Msg{Src: uint32(h), Dst: uint32(h), Kind: cmTimer})
		}
	}
	return r
}

// Run drives stabilization to convergence (queue drain: every member
// has seen two consecutive no-change rounds) and returns the virtual
// time taken.
func (r *CompactRing) Run() sim.Time {
	t := r.eng.Run()
	r.msgs = r.eng.MergedMetrics()
	r.warmCaches()
	r.ran = true
	return t
}

// warmCaches applies the §3.1 on-path pointer deposits of one
// steady-state stabilize round: every router a control message
// transits learns the sender's pointer ("we fill pointer caches only
// with contents of control messages"). The sharded run itself deposits
// only at endpoint routers — transit routers belong to other shards,
// and depositing there would break the caches' shard privacy — so the
// on-path deposits are replayed here in one serial pass, in member
// handle order, which is deterministic and shard-count invariant.
// joinResidueDeposits approximates the transit-router count of one
// greedy join walk: the routers a random joiner's control traffic
// crossed, each of which cached the joiner's pointer.
const joinResidueDeposits = 32

func (r *CompactRing) warmCaches() {
	for u := 0; u < r.members; u++ {
		if r.nsucc[u] == 0 {
			continue
		}
		s0 := r.succs[u*r.cfg.SuccessorGroup]
		// One stabilize round-trip: u's cmGetSucc toward succ0, then the
		// cmSuccList reply — each deposits its sender along the path.
		r.depositAlong(r.router[u], r.router[s0], ident.Handle(u))
		r.depositAlong(r.router[s0], r.router[u], s0)
	}
	// Join-epoch residue. The ring is constructed already wired (each
	// member knows succ0), so the event run never replays the join walks
	// that, in Network, deposit every joiner's pointer across the
	// routers its greedy walk transits. A random joiner's transit set is
	// an essentially uniform router sample, so the residue is
	// reconstructed from a seeded stream: without it, caches hold only
	// ring-neighbor pointers and stretch collapses to successor
	// stepping. Serial, member order, shard-count invariant.
	for u := 0; u < r.members; u++ {
		st := uint64(r.cfg.Seed)<<20 ^ uint64(u)*0x9e3779b97f4a7c15
		for t := 0; t < joinResidueDeposits; t++ {
			r.cacheInsert(uint32(sim.SplitMix64(&st)%uint64(r.nrouters)), ident.Handle(u))
		}
	}
}

// depositAlong inserts h into the cache of every router the a→b
// shortest path transits (excluding the origin, matching Network.hop).
func (r *CompactRing) depositAlong(a, b uint32, h ident.Handle) {
	if a == b {
		return
	}
	path := r.ls.Path(topology.NodeID(a), topology.NodeID(b))
	for _, node := range path[1:] {
		r.cacheInsert(uint32(node), h)
	}
}

// HandleMsg dispatches one protocol event. It is the allocation-free
// event hot path of the compact ring: everything it reaches operates on
// pre-sized slabs and value messages.
//
//rofllint:hotpath
func (r *CompactRing) HandleMsg(sc *sim.ShardContext, m sim.Msg) {
	switch m.Kind {
	case cmTimer:
		r.onTimer(sc, m)
	case cmGetSucc:
		r.onGetSucc(sc, m)
	case cmSuccList:
		r.onSuccList(sc, m)
	}
}

// chargeControl counts one control message's physical hops and returns
// its one-way latency as the event delay.
func (r *CompactRing) chargeControl(sc *sim.ShardContext, from, to ident.Handle) sim.Time {
	a, b := int(r.router[from]), int(r.router[to])
	sc.Metrics.Count(MsgCompactControl, int64(r.hopM[a*r.nrouters+b]))
	return sim.Time(r.latM[a*r.nrouters+b])
}

// onTimer runs one stabilize round at node u: ask the immediate
// successor for its successor list.
func (r *CompactRing) onTimer(sc *sim.ShardContext, m sim.Msg) {
	u := ident.Handle(m.Dst)
	if r.nsucc[u] == 0 {
		return // singleton ring: nothing to stabilize
	}
	s0 := r.succs[int(u)*r.cfg.SuccessorGroup]
	d := r.chargeControl(sc, u, s0)
	sc.Send(d, sim.Msg{Src: uint32(u), Dst: uint32(s0), Kind: cmGetSucc})
}

// onGetSucc serves a successor-list request at node v: adopt the
// requester as predecessor if it is closer, fill the local router's
// cache with the sender pointer (control traffic fills caches, §3.1),
// and reply with the successor group.
func (r *CompactRing) onGetSucc(sc *sim.ShardContext, m sim.Msg) {
	v, u := ident.Handle(m.Dst), ident.Handle(m.Src)
	r.cacheInsert(r.router[v], u)
	p := r.pred[v]
	if p == ident.NoHandle || ident.BetweenOpen(r.ids[u], r.ids[p], r.ids[v]) {
		r.pred[v] = u
		sc.Journal(CJPredAdopt, uint32(v), uint32(u), 0)
	}
	reply := sim.Msg{Src: uint32(v), Dst: uint32(u), Kind: cmSuccList}
	base := int(v) * r.cfg.SuccessorGroup
	for k := 0; k < len(reply.Args); k++ {
		if k < int(r.nsucc[v]) {
			reply.Args[k] = uint32(r.succs[base+k])
		} else {
			reply.Args[k] = uint32(ident.NoHandle)
		}
	}
	d := r.chargeControl(sc, v, u)
	sc.Send(d, reply)
}

// onSuccList merges an advertised successor group into node u's own,
// updates the stability counter, and reschedules the stabilize timer
// until two consecutive rounds change nothing.
func (r *CompactRing) onSuccList(sc *sim.ShardContext, m sim.Msg) {
	u, v := ident.Handle(m.Dst), ident.Handle(m.Src)
	r.cacheInsert(r.router[u], v)

	// Candidate pool: current group, the replying successor, and its
	// advertised group — at most 4+1+4 handles, in fixed storage.
	var cand [2*MaxCompactSuccessors + 1]ident.Handle
	nc := 0
	base := int(u) * r.cfg.SuccessorGroup
	for k := 0; k < int(r.nsucc[u]); k++ {
		cand[nc] = r.succs[base+k]
		nc++
	}
	nc = r.addCandidate(cand[:], nc, u, v)
	for _, a := range m.Args {
		nc = r.addCandidate(cand[:], nc, u, ident.Handle(a))
	}

	// Selection-sort the pool by clockwise distance from u and keep the
	// nearest SuccessorGroup entries.
	uid := r.ids[u]
	for i := 0; i < nc-1; i++ {
		min := i
		for j := i + 1; j < nc; j++ {
			if uid.Distance(r.ids[cand[j]]).Cmp(uid.Distance(r.ids[cand[min]])) < 0 {
				min = j
			}
		}
		cand[i], cand[min] = cand[min], cand[i]
	}
	keep := nc
	if keep > r.cfg.SuccessorGroup {
		keep = r.cfg.SuccessorGroup
	}
	changed := keep != int(r.nsucc[u])
	for k := 0; k < keep; k++ {
		if r.succs[base+k] != cand[k] {
			changed = true
			r.succs[base+k] = cand[k]
		}
	}
	r.nsucc[u] = uint8(keep)

	if changed {
		r.stable[u] = 0
		sc.Journal(CJSuccAdopt, uint32(u), uint32(v), uint32(keep))
	} else if r.stable[u] < 2 {
		r.stable[u]++
	}
	if r.stable[u] < 2 {
		jitter := sim.Time(sim.SplitMix64(&r.rngs[u])%1024) / 1024 * r.cfg.StabilizeEvery
		sc.Send(r.cfg.StabilizeEvery+jitter, sim.Msg{Src: uint32(u), Dst: uint32(u), Kind: cmTimer})
	} else {
		sc.Journal(CJStable, uint32(u), uint32(keep), 0)
	}
}

// addCandidate appends c to the pool unless it is invalid, the owner
// itself, an ephemeral (ephemerals cannot serve as successors, §2.2),
// or already present. Returns the new pool size.
func (r *CompactRing) addCandidate(pool []ident.Handle, n int, owner, c ident.Handle) int {
	if c == ident.NoHandle || c == owner || int(c) >= r.members {
		return n
	}
	for i := 0; i < n; i++ {
		if pool[i] == c {
			return n
		}
	}
	pool[n] = c
	return n + 1
}

// --- pointer cache over handles -------------------------------------------

func (r *CompactRing) bucketOf(c *compactCache, id ident.ID) int {
	return int(binary.BigEndian.Uint32(id[:4]) >> c.shift)
}

// cacheInsert records a member pointer in a router's cache (refresh on
// duplicate, bucket-local LRU eviction at capacity). Insertion order at
// any one cache is the (At, Src, Seq) processing order of its owning
// shard, which is shard-count invariant — so cache contents are too.
func (r *CompactRing) cacheInsert(router uint32, h ident.Handle) {
	c := &r.caches[router]
	if c.buckets == nil {
		return
	}
	id := r.ids[h]
	b := r.bucketOf(c, id)
	bkt := c.buckets[b]
	i := sort.Search(len(bkt), func(k int) bool { return !r.ids[bkt[k].h].Less(id) })
	c.clock++
	if i < len(bkt) && bkt[i].h == h {
		bkt[i].stamp = c.clock
		return
	}
	if len(bkt) >= c.bucketCap {
		// Evict the oldest stamp in this bucket.
		victim := 0
		for k := 1; k < len(bkt); k++ {
			if bkt[k].stamp < bkt[victim].stamp {
				victim = k
			}
		}
		copy(bkt[victim:], bkt[victim+1:])
		bkt = bkt[:len(bkt)-1]
		c.size--
		if victim < i {
			i--
		}
	}
	bkt = append(bkt, cacheSlot{})
	copy(bkt[i+1:], bkt[i:])
	bkt[i] = cacheSlot{h: h, stamp: c.clock}
	c.buckets[b] = bkt
	c.size++
}

// cacheLookup returns the cached member closest to dst without
// overshooting the current position, scanning at most a few buckets
// counter-clockwise from dst's. Used by measurement probes (serial).
func (r *CompactRing) cacheLookup(router uint32, pos, dst ident.ID) (ident.Handle, bool) {
	c := &r.caches[router]
	if c.buckets == nil || c.size == 0 {
		return ident.NoHandle, false
	}
	nb := len(c.buckets)
	b := r.bucketOf(c, dst)
	const maxScan = 64
	for step := 0; step < maxScan && step < nb; step++ {
		bi := b - step
		if bi < 0 {
			bi += nb
		}
		bkt := c.buckets[bi]
		if len(bkt) == 0 {
			continue
		}
		var cand ident.Handle
		if step == 0 {
			// Largest cached ID <= dst within dst's own bucket; if the
			// whole bucket is above dst, keep walking down.
			i := sort.Search(len(bkt), func(k int) bool { return dst.Less(r.ids[bkt[k].h]) })
			if i == 0 {
				continue
			}
			cand = bkt[i-1].h
		} else {
			cand = bkt[len(bkt)-1].h
		}
		if !ident.Progress(pos, dst, r.ids[cand]) {
			return ident.NoHandle, false
		}
		return cand, true
	}
	// Nothing at or below dst within the scan budget: wrap to the
	// global maximum (circularly the closest candidate below dst).
	for bi := nb - 1; bi >= 0; bi-- {
		bkt := c.buckets[bi]
		if len(bkt) == 0 {
			continue
		}
		cand := bkt[len(bkt)-1].h
		if ident.Progress(pos, dst, r.ids[cand]) {
			return cand, true
		}
		return ident.NoHandle, false
	}
	return ident.NoHandle, false
}

// --- measurement probes (serial, post-convergence) ------------------------

// ProbeResult reports one greedy measurement walk.
type ProbeResult struct {
	Delivered bool
	Parked    bool // delivered over a parked source route (ephemeral)
	RingSteps int  // greedy waypoints taken
	PhysHops  int  // physical links traversed
	Latency   float64
	Stretch   float64 // traversed / direct latency (>= 1 when delivered)
}

// Probe greedily routes a data packet from member `from` toward dst —
// successor pointers and the transit routers' handle caches supply the
// candidates, exactly Algorithm 2 over compact state — and reports path
// cost and stretch. Ephemeral destinations deliver over their
// predecessor's packed source route.
func (r *CompactRing) Probe(from ident.Handle, dst ident.ID) (ProbeResult, error) {
	t, resident := r.intern.Lookup(dst)
	res := ProbeResult{}
	pos := from
	cur := r.router[from]
	for ttl := r.cfg.TTL; ttl > 0; ttl-- {
		if resident && int(t) < r.members && r.router[t] == cur {
			res.Delivered = true
			r.finishProbe(&res, from, t)
			return res, nil
		}
		best, ok := r.selectCompact(pos, cur, dst)
		if !ok {
			// Stuck: pos is dst's ring predecessor. An ephemeral
			// destination is parked here with a source route.
			if resident && int(t) >= r.members {
				for e := r.parkedHead[pos]; e >= 0; e = r.parkedNext[e] {
					if r.parkedChild[e] != t {
						continue
					}
					res.PhysHops += int(r.routeLen[e]) - 1
					res.Latency += float64(r.routeLat[e])
					res.Delivered, res.Parked = true, true
					r.finishProbe(&res, from, t)
					return res, nil
				}
			}
			return res, nil
		}
		nr := r.router[best]
		res.RingSteps++
		res.PhysHops += int(r.hopM[int(cur)*r.nrouters+int(nr)])
		res.Latency += float64(r.latM[int(cur)*r.nrouters+int(nr)])
		pos, cur = best, nr
	}
	return res, ErrTTLExceeded
}

// finishProbe computes stretch against the direct physical latency and
// samples it.
func (r *CompactRing) finishProbe(res *ProbeResult, from, to ident.Handle) {
	direct := float64(r.latM[int(r.router[from])*r.nrouters+int(r.router[to])])
	if direct <= 0 || res.Latency <= direct {
		res.Stretch = 1
	} else {
		res.Stretch = res.Latency / direct
	}
	r.probeMx.Sample(SampleCompactStretch, res.Stretch)
}

// selectCompact picks the known candidate closest to dst without
// overshooting: the position's successor group and predecessor, then
// the current router's cache (cache wins only when strictly closer —
// ring pointers are scanned first and ties keep the incumbent).
func (r *CompactRing) selectCompact(pos ident.Handle, cur uint32, dst ident.ID) (ident.Handle, bool) {
	posID := r.ids[pos]
	best := ident.NoHandle
	var bestDist ident.ID
	consider := func(c ident.Handle) {
		if c == ident.NoHandle || !ident.Progress(posID, dst, r.ids[c]) {
			return
		}
		d := r.ids[c].Distance(dst)
		if best == ident.NoHandle || d.Cmp(bestDist) < 0 {
			best, bestDist = c, d
		}
	}
	base := int(pos) * r.cfg.SuccessorGroup
	for k := 0; k < int(r.nsucc[pos]); k++ {
		consider(r.succs[base+k])
	}
	consider(r.pred[pos])
	if ch, ok := r.cacheLookup(cur, posID, dst); ok {
		r.probeMx.Count(CtrCompactCacheHit, 1)
		consider(ch)
	} else {
		r.probeMx.Count(CtrCompactCacheMiss, 1)
	}
	return best, best != ident.NoHandle
}

// ProbeJoin measures the control cost of splicing a fresh identifier
// into the converged ring from gateway member `from`, without mutating
// it: the predecessor walk plus the reply/notify/ack legs of Algorithm
// 1. Returns total physical messages.
func (r *CompactRing) ProbeJoin(from ident.Handle, joining ident.ID) (int, error) {
	pos := from
	cur := r.router[from]
	msgs := 0
	for ttl := r.cfg.TTL; ttl > 0; ttl-- {
		best, ok := r.selectCompact(pos, cur, joining)
		if !ok {
			// pos is the joining ID's predecessor; complete the splice
			// legs: reply to the gateway, notify pos's successor, ack.
			g := int(r.router[from])
			p := int(r.router[pos])
			msgs += int(r.hopM[p*r.nrouters+g])
			if r.nsucc[pos] > 0 {
				s0 := r.succs[int(pos)*r.cfg.SuccessorGroup]
				sr := int(r.router[s0])
				msgs += int(r.hopM[p*r.nrouters+sr])
				msgs += int(r.hopM[sr*r.nrouters+g])
			}
			r.probeMx.Sample(SampleCompactJoinMsgs, float64(msgs))
			return msgs, nil
		}
		nr := r.router[best]
		msgs += int(r.hopM[int(cur)*r.nrouters+int(nr)])
		pos, cur = best, nr
	}
	return msgs, ErrTTLExceeded
}

// --- accessors, accounting, journal ---------------------------------------

// Members returns the number of stable ring members.
func (r *CompactRing) Members() int { return r.members }

// Ephemerals returns the number of parked ephemeral hosts.
func (r *CompactRing) Ephemerals() int { return len(r.parkedChild) }

// IDOf resolves a handle to its identifier.
func (r *CompactRing) IDOf(h ident.Handle) ident.ID { return r.ids[h] }

// RouterOf returns the hosting router of a handle.
func (r *CompactRing) RouterOf(h ident.Handle) topology.NodeID {
	return topology.NodeID(r.router[h])
}

// Succ returns member h's k-th successor handle (NoHandle past nsucc).
func (r *CompactRing) Succ(h ident.Handle, k int) ident.Handle {
	if k >= int(r.nsucc[h]) {
		return ident.NoHandle
	}
	return r.succs[int(h)*r.cfg.SuccessorGroup+k]
}

// NumSucc returns the size of member h's successor group.
func (r *CompactRing) NumSucc(h ident.Handle) int { return int(r.nsucc[h]) }

// Pred returns member h's predecessor handle.
func (r *CompactRing) Pred(h ident.Handle) ident.Handle { return r.pred[h] }

// Metrics returns the merged convergence-phase metrics (valid after
// Run).
func (r *CompactRing) Metrics() sim.Metrics { return r.msgs }

// ProbeMetrics returns the measurement-phase sink (stretch samples,
// cache hit/miss counters, join-cost samples).
func (r *CompactRing) ProbeMetrics() sim.Metrics { return r.probeMx }

// Footprint itemizes resident memory by subsystem, in bytes. Slab
// capacities are charged (what the process actually holds), and the
// intern table is charged once — the whole point of storing 4-byte
// handles everywhere else.
type Footprint struct {
	Hosts      int // members + ephemerals
	RingState  int // successor/predecessor/router/flag slabs
	Parked     int // parked entries + packed source routes
	Caches     int // per-router bucketed caches (live slots)
	Intern     int // ID slab + reverse map
	RNG        int // per-node jitter states
	CacheSlots int // live cache entries across all routers
}

// Total sums every accounted subsystem.
func (f Footprint) Total() int {
	return f.RingState + f.Parked + f.Caches + f.Intern + f.RNG
}

// RingBytesPerHost is the per-member routing-state cost — the Fig 6c
// quantity the scaling study tracks against N.
func (f Footprint) RingBytesPerHost(members int) float64 {
	if members == 0 {
		return 0
	}
	return float64(f.RingState) / float64(members)
}

// Footprint measures the ring's current memory by subsystem.
func (r *CompactRing) Footprint() Footprint {
	f := Footprint{Hosts: len(r.ids)}
	f.RingState = cap(r.succs)*4 + cap(r.nsucc) + cap(r.pred)*4 + cap(r.router)*4 + cap(r.stable)
	f.Parked = cap(r.parkedHead)*4 + cap(r.parkedNext)*4 + cap(r.parkedChild)*4 +
		cap(r.routeOff)*4 + cap(r.routeLen)*2 + cap(r.routeLat)*4 + cap(r.routeSlab)*2
	for i := range r.caches {
		c := &r.caches[i]
		f.CacheSlots += c.size
		for _, b := range c.buckets {
			f.Caches += cap(b) * 8
		}
	}
	f.Intern = r.intern.Bytes()
	f.RNG = cap(r.rngs) * 8
	return f
}

// JournalText renders the convergence journal (enabled via
// CompactConfig.Journal) in global processing order. The
// shard-invariance test byte-compares this across shard counts.
func (r *CompactRing) JournalText() string {
	var b strings.Builder
	for _, e := range r.eng.Journal() {
		switch e.Kind {
		case CJPredAdopt:
			fmt.Fprintf(&b, "t=%.3f %s pred-adopt %s\n", float64(e.At), r.ids[e.Node].Short(), r.ids[e.A].Short())
		case CJSuccAdopt:
			fmt.Fprintf(&b, "t=%.3f %s succ-merge from=%s n=%d\n", float64(e.At), r.ids[e.Node].Short(), r.ids[e.A].Short(), e.B)
		case CJStable:
			fmt.Fprintf(&b, "t=%.3f %s stable n=%d\n", float64(e.At), r.ids[e.Node].Short(), e.A)
		}
	}
	return b.String()
}
