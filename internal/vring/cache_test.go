package vring

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rofl/internal/ident"
)

func id64(v uint64) ident.ID { return ident.FromUint64(v) }

func TestCacheInsertLookup(t *testing.T) {
	c := NewPointerCache(10)
	c.Insert(Pointer{ID: id64(50), Router: 5})
	c.Insert(Pointer{ID: id64(10), Router: 1})
	c.Insert(Pointer{ID: id64(90), Router: 9})
	// From pos 0 toward 60: best is 50.
	p, ok := c.Lookup(id64(0), id64(60))
	if !ok || p.ID != id64(50) {
		t.Fatalf("lookup = %v ok=%v", p, ok)
	}
	// From pos 55 toward 60: 50 would be regression; no hit.
	if _, ok := c.Lookup(id64(55), id64(60)); ok {
		t.Fatal("must not go backwards")
	}
	// Wrapping: from pos 95 toward 5, candidate 90 overshoots... 90 is
	// behind pos; no entry in (95, 5]; miss expected.
	if _, ok := c.Lookup(id64(95), id64(5)); ok {
		t.Fatal("no entry in wrapped interval")
	}
	// Exact destination hit.
	p, ok = c.Lookup(id64(0), id64(90))
	if !ok || p.ID != id64(90) {
		t.Fatal("exact match should hit")
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewPointerCache(10)
	c.Insert(Pointer{ID: id64(5), Router: 1})
	c.Insert(Pointer{ID: id64(5), Router: 2})
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	p, _ := c.Lookup(id64(0), id64(5))
	if p.Router != 2 {
		t.Fatal("router not updated")
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	c := NewPointerCache(3)
	c.Insert(Pointer{ID: id64(1), Router: 1})
	c.Insert(Pointer{ID: id64(2), Router: 2})
	c.Insert(Pointer{ID: id64(3), Router: 3})
	// Touch 1 so it is most recently used.
	c.Lookup(id64(0), id64(1))
	c.Insert(Pointer{ID: id64(4), Router: 4}) // evicts 2 (LRU)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Lookup(id64(1), id64(2)); ok {
		t.Fatal("2 should have been evicted")
	}
	if _, ok := c.Lookup(id64(0), id64(1)); !ok {
		t.Fatal("1 should survive")
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := NewPointerCache(0)
	c.Insert(Pointer{ID: id64(1), Router: 1})
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache must stay empty")
	}
	if _, ok := c.Lookup(id64(0), id64(5)); ok {
		t.Fatal("empty cache cannot hit")
	}
}

func TestCacheRemove(t *testing.T) {
	c := NewPointerCache(10)
	c.Insert(Pointer{ID: id64(1), Router: 1})
	c.Insert(Pointer{ID: id64(2), Router: 2})
	c.Remove(id64(1))
	c.Remove(id64(99)) // absent: no-op
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheRemoveRouter(t *testing.T) {
	c := NewPointerCache(10)
	c.Insert(Pointer{ID: id64(1), Router: 7})
	c.Insert(Pointer{ID: id64(2), Router: 8})
	c.Insert(Pointer{ID: id64(3), Router: 7})
	if got := c.RemoveRouter(7); got != 2 {
		t.Fatalf("removed = %d", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheEach(t *testing.T) {
	c := NewPointerCache(10)
	for i := uint64(1); i <= 5; i++ {
		c.Insert(Pointer{ID: id64(i * 10), Router: RouterID(i)})
	}
	var seen []ident.ID
	c.Each(func(p Pointer) bool {
		seen = append(seen, p.ID)
		return len(seen) < 3
	})
	if len(seen) != 3 {
		t.Fatalf("early stop failed: %d", len(seen))
	}
	// Ascending order.
	for i := 1; i < len(seen); i++ {
		if !seen[i-1].Less(seen[i]) {
			t.Fatal("Each must iterate ascending")
		}
	}
}

func TestBestMatch(t *testing.T) {
	sorted := []Pointer{
		{ID: id64(10)}, {ID: id64(20)}, {ID: id64(30)},
	}
	idx, ok := bestMatch(id64(5), id64(25), sorted)
	if !ok || sorted[idx].ID != id64(20) {
		t.Fatalf("idx=%d ok=%v", idx, ok)
	}
	// dst before all entries: wraps to last (30), which from pos 5 toward
	// 3 is progress (30 in (5, 3] circularly).
	idx, ok = bestMatch(id64(5), id64(3), sorted)
	if !ok || sorted[idx].ID != id64(30) {
		t.Fatalf("wrap: idx=%d ok=%v", idx, ok)
	}
	// No progress possible.
	if _, ok := bestMatch(id64(25), id64(27), sorted); ok {
		t.Fatal("nothing in (25,27]")
	}
	if _, ok := bestMatch(id64(0), id64(5), nil); ok {
		t.Fatal("empty set")
	}
}

// scanLRUCache reimplements the pre-heap eviction policy — a full
// linear scan for the minimum lastUsed stamp on every at-capacity
// insert — both as the reference model for the stress test below and as
// the baseline for BenchmarkCacheInsertAtCapacity*.
type scanLRUCache struct {
	cap     int
	entries []cacheEntry
	clock   uint64
}

func (c *scanLRUCache) find(id ident.ID) (int, bool) {
	i := sort.Search(len(c.entries), func(k int) bool { return !c.entries[k].ID.Less(id) })
	if i < len(c.entries) && c.entries[i].ID == id {
		return i, true
	}
	return i, false
}

func (c *scanLRUCache) Insert(p Pointer) {
	if c.cap <= 0 {
		return
	}
	c.clock++
	if i, ok := c.find(p.ID); ok {
		c.entries[i].Router = p.Router
		c.entries[i].lastUsed = c.clock
		return
	}
	if len(c.entries) >= c.cap {
		victim := 0
		for i := 1; i < len(c.entries); i++ {
			if c.entries[i].lastUsed < c.entries[victim].lastUsed {
				victim = i
			}
		}
		c.entries = append(c.entries[:victim], c.entries[victim+1:]...)
	}
	i, _ := c.find(p.ID)
	c.entries = append(c.entries, cacheEntry{})
	copy(c.entries[i+1:], c.entries[i:])
	c.entries[i] = cacheEntry{Pointer: p, lastUsed: c.clock}
}

// The heap-backed cache must evict exactly the entries the linear-scan
// policy would, under a workload mixing inserts, updates and removals.
func TestCacheEvictionMatchesLinearScanModel(t *testing.T) {
	const capacity = 24
	c := NewPointerCache(capacity)
	model := &scanLRUCache{cap: capacity}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 8000; step++ {
		switch rng.Intn(10) {
		case 0: // remove a random live entry from both
			if len(model.entries) > 0 {
				id := model.entries[rng.Intn(len(model.entries))].ID
				c.Remove(id)
				i, _ := model.find(id)
				model.entries = append(model.entries[:i], model.entries[i+1:]...)
			}
		default: // insert (small keyspace so updates and evictions mix)
			p := Pointer{ID: id64(uint64(rng.Intn(3 * capacity))), Router: RouterID(rng.Intn(50))}
			c.Insert(p)
			model.Insert(p)
		}
		if c.Len() != len(model.entries) {
			t.Fatalf("step %d: len %d != model %d", step, c.Len(), len(model.entries))
		}
		for i, e := range model.entries {
			if c.entries[i].ID != e.ID || c.entries[i].Router != e.Router {
				t.Fatalf("step %d: entry %d diverged: %v vs model %v", step, i, c.entries[i], e)
			}
		}
	}
}

func benchFillIDs(n int) []ident.ID {
	rng := rand.New(rand.NewSource(42))
	ids := make([]ident.ID, n)
	for i := range ids {
		ids[i] = ident.Random(rng)
	}
	return ids
}

// BenchmarkCacheInsertAtCapacity measures steady-state inserts into a
// full cache, where every insert evicts. The heap-backed LRU makes this
// O(log cap) amortized; the LinearScan variant below is the old O(cap)
// policy for comparison.
func BenchmarkCacheInsertAtCapacity(b *testing.B) {
	for _, capacity := range []int{1000, 70000} {
		b.Run(fmt.Sprintf("cap=%d", capacity), func(b *testing.B) {
			c := NewPointerCache(capacity)
			for _, id := range benchFillIDs(capacity) {
				c.Insert(Pointer{ID: id, Router: 1})
			}
			fresh := benchFillIDs(1 << 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := fresh[i&(1<<16-1)]
				id[0] = byte(i >> 16) // keep keys fresh so every insert evicts
				c.Insert(Pointer{ID: id, Router: 2})
			}
		})
	}
}

func BenchmarkCacheInsertAtCapacityLinearScan(b *testing.B) {
	for _, capacity := range []int{1000, 70000} {
		b.Run(fmt.Sprintf("cap=%d", capacity), func(b *testing.B) {
			c := &scanLRUCache{cap: capacity}
			for _, id := range benchFillIDs(capacity) {
				c.Insert(Pointer{ID: id, Router: 1})
			}
			fresh := benchFillIDs(1 << 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := fresh[i&(1<<16-1)]
				id[0] = byte(i >> 16)
				c.Insert(Pointer{ID: id, Router: 2})
			}
		})
	}
}

func TestCacheStressSortedInvariant(t *testing.T) {
	c := NewPointerCache(64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			c.Insert(Pointer{ID: ident.Random(rng), Router: RouterID(rng.Intn(100))})
		case 2:
			c.Lookup(ident.Random(rng), ident.Random(rng))
		}
		if c.Len() > 64 {
			t.Fatal("capacity exceeded")
		}
	}
	var prev ident.ID
	first := true
	c.Each(func(p Pointer) bool {
		if !first && !prev.Less(p.ID) {
			t.Fatal("entries out of order")
		}
		prev, first = p.ID, false
		return true
	})
}

// BenchmarkCacheLookupHit measures the forwarding-time cache probe at
// capacity: a binary search over the sorted entries plus the LRU touch.
func BenchmarkCacheLookupHit(b *testing.B) {
	const capacity = 1000
	c := NewPointerCache(capacity)
	ids := benchFillIDs(capacity)
	for _, id := range ids {
		c.Insert(Pointer{ID: id, Router: 1})
	}
	pos := ident.FromString("bench-pos")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Aim at a cached ID so the probe hits (self-distance is zero, so
		// a cached dst always satisfies Progress unless pos == dst).
		if _, ok := c.Lookup(pos, ids[i%capacity]); !ok {
			b.Fatal("expected hit")
		}
	}
}

// TestLookupSteadyStateAllocs pins the forwarding-time cache probe at
// zero allocations: after warmup the LRU heap's backing array has
// reached its high-water mark, and neither the binary search nor the
// touch may allocate again.
func TestLookupSteadyStateAllocs(t *testing.T) {
	const capacity = 512
	c := NewPointerCache(capacity)
	ids := benchFillIDs(capacity)
	for _, id := range ids {
		c.Insert(Pointer{ID: id, Router: 1})
	}
	pos := ident.FromString("alloc-pos")
	// Warm up past a full heap-rebuild cycle so slice capacities settle.
	for i := 0; i < 16*capacity; i++ {
		c.Lookup(pos, ids[i%capacity])
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		c.Lookup(pos, ids[i%capacity])
		i++
	})
	if avg != 0 {
		t.Fatalf("PointerCache.Lookup allocates %v per op in steady state; want 0", avg)
	}
}
