package vring

import (
	"math/rand"
	"testing"

	"rofl/internal/ident"
)

func id64(v uint64) ident.ID { return ident.FromUint64(v) }

func TestCacheInsertLookup(t *testing.T) {
	c := NewPointerCache(10)
	c.Insert(Pointer{ID: id64(50), Router: 5})
	c.Insert(Pointer{ID: id64(10), Router: 1})
	c.Insert(Pointer{ID: id64(90), Router: 9})
	// From pos 0 toward 60: best is 50.
	p, ok := c.Lookup(id64(0), id64(60))
	if !ok || p.ID != id64(50) {
		t.Fatalf("lookup = %v ok=%v", p, ok)
	}
	// From pos 55 toward 60: 50 would be regression; no hit.
	if _, ok := c.Lookup(id64(55), id64(60)); ok {
		t.Fatal("must not go backwards")
	}
	// Wrapping: from pos 95 toward 5, candidate 90 overshoots... 90 is
	// behind pos; no entry in (95, 5]; miss expected.
	if _, ok := c.Lookup(id64(95), id64(5)); ok {
		t.Fatal("no entry in wrapped interval")
	}
	// Exact destination hit.
	p, ok = c.Lookup(id64(0), id64(90))
	if !ok || p.ID != id64(90) {
		t.Fatal("exact match should hit")
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewPointerCache(10)
	c.Insert(Pointer{ID: id64(5), Router: 1})
	c.Insert(Pointer{ID: id64(5), Router: 2})
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	p, _ := c.Lookup(id64(0), id64(5))
	if p.Router != 2 {
		t.Fatal("router not updated")
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	c := NewPointerCache(3)
	c.Insert(Pointer{ID: id64(1), Router: 1})
	c.Insert(Pointer{ID: id64(2), Router: 2})
	c.Insert(Pointer{ID: id64(3), Router: 3})
	// Touch 1 so it is most recently used.
	c.Lookup(id64(0), id64(1))
	c.Insert(Pointer{ID: id64(4), Router: 4}) // evicts 2 (LRU)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Lookup(id64(1), id64(2)); ok {
		t.Fatal("2 should have been evicted")
	}
	if _, ok := c.Lookup(id64(0), id64(1)); !ok {
		t.Fatal("1 should survive")
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := NewPointerCache(0)
	c.Insert(Pointer{ID: id64(1), Router: 1})
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache must stay empty")
	}
	if _, ok := c.Lookup(id64(0), id64(5)); ok {
		t.Fatal("empty cache cannot hit")
	}
}

func TestCacheRemove(t *testing.T) {
	c := NewPointerCache(10)
	c.Insert(Pointer{ID: id64(1), Router: 1})
	c.Insert(Pointer{ID: id64(2), Router: 2})
	c.Remove(id64(1))
	c.Remove(id64(99)) // absent: no-op
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheRemoveRouter(t *testing.T) {
	c := NewPointerCache(10)
	c.Insert(Pointer{ID: id64(1), Router: 7})
	c.Insert(Pointer{ID: id64(2), Router: 8})
	c.Insert(Pointer{ID: id64(3), Router: 7})
	if got := c.RemoveRouter(7); got != 2 {
		t.Fatalf("removed = %d", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheEach(t *testing.T) {
	c := NewPointerCache(10)
	for i := uint64(1); i <= 5; i++ {
		c.Insert(Pointer{ID: id64(i * 10), Router: RouterID(i)})
	}
	var seen []ident.ID
	c.Each(func(p Pointer) bool {
		seen = append(seen, p.ID)
		return len(seen) < 3
	})
	if len(seen) != 3 {
		t.Fatalf("early stop failed: %d", len(seen))
	}
	// Ascending order.
	for i := 1; i < len(seen); i++ {
		if !seen[i-1].Less(seen[i]) {
			t.Fatal("Each must iterate ascending")
		}
	}
}

func TestBestMatch(t *testing.T) {
	sorted := []Pointer{
		{ID: id64(10)}, {ID: id64(20)}, {ID: id64(30)},
	}
	idx, ok := bestMatch(id64(5), id64(25), sorted)
	if !ok || sorted[idx].ID != id64(20) {
		t.Fatalf("idx=%d ok=%v", idx, ok)
	}
	// dst before all entries: wraps to last (30), which from pos 5 toward
	// 3 is progress (30 in (5, 3] circularly).
	idx, ok = bestMatch(id64(5), id64(3), sorted)
	if !ok || sorted[idx].ID != id64(30) {
		t.Fatalf("wrap: idx=%d ok=%v", idx, ok)
	}
	// No progress possible.
	if _, ok := bestMatch(id64(25), id64(27), sorted); ok {
		t.Fatal("nothing in (25,27]")
	}
	if _, ok := bestMatch(id64(0), id64(5), nil); ok {
		t.Fatal("empty set")
	}
}

func TestCacheStressSortedInvariant(t *testing.T) {
	c := NewPointerCache(64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			c.Insert(Pointer{ID: ident.Random(rng), Router: RouterID(rng.Intn(100))})
		case 2:
			c.Lookup(ident.Random(rng), ident.Random(rng))
		}
		if c.Len() > 64 {
			t.Fatal("capacity exceeded")
		}
	}
	var prev ident.ID
	first := true
	c.Each(func(p Pointer) bool {
		if !first && !prev.Less(p.ID) {
			t.Fatal("entries out of order")
		}
		prev, first = p.ID, false
		return true
	})
}
