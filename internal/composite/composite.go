// Package composite assembles ROFL's full two-level system exactly as
// Algorithm 1 of the paper integrates it: every AS runs the intradomain
// virtual-ring protocol (package vring) over its own router topology,
// designated border routers connect it to the Canon-merged interdomain
// layer (package canon), and a host join is one operation — the hosting
// router authenticates the host, joins the internal ring, then selects
// border routers and forwards join_external up the provider hierarchy
// (join_internal lines 8–13).
//
// Routing composes the same way: traffic between hosts of one AS never
// touches the interdomain layer (the isolation corollary, §2.3 "traffic
// internal to an AS stays internal"); cross-AS traffic travels
// intradomain to an egress border router, interdomain across the policy
// hierarchy, and intradomain again from the ingress border router to the
// destination's hosting router.
//
// Border routers "flood their existence internally" so interior routers
// can reach the next-hop AS (§4.1, Integrating EGP and IGP routing);
// that flood is charged at setup.
package composite

import (
	"errors"
	"fmt"
	"math/rand"

	"rofl/internal/canon"
	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
	"rofl/internal/vring"
)

// Metrics counter names charged by this package.
const (
	// MsgBorderFlood is the §4.1 internal flood announcing border
	// routers.
	MsgBorderFlood = "composite-border-flood"
)

// Errors returned by Global operations.
var (
	ErrUnknownAS   = errors.New("composite: AS not part of this system")
	ErrUnknownHost = errors.New("composite: host not joined")
	ErrNoBorder    = errors.New("composite: AS has no border routers")
)

// Options configures the composite system.
type Options struct {
	// Intra configures every AS's internal network.
	Intra vring.Options
	// Inter configures the interdomain layer.
	Inter canon.Options
	// BordersPerAS is how many backbone routers act as border routers in
	// each AS.
	BordersPerAS int
	// ISPTemplate shapes each AS's internal topology; Name and Seed are
	// overridden per AS.
	ISPTemplate topology.ISPConfig
	Seed        int64
}

// DefaultOptions returns a laptop-scale two-level configuration: small
// ISP topologies inside each AS.
func DefaultOptions() Options {
	return Options{
		Intra:        vring.DefaultOptions(),
		Inter:        canon.DefaultOptions(),
		BordersPerAS: 2,
		ISPTemplate: topology.ISPConfig{
			Routers: 24, PoPs: 4, BackbonePerPoP: 2, PoPDegree: 2,
			IntraPoPDelay: 0.5, InterPoPDelay: 4, Hosts: 50, ZipfS: 1.2,
		},
		Seed: 1,
	}
}

// Domain is one AS's intradomain slice of the composite system.
type Domain struct {
	ASN     topology.ASN
	ISP     *topology.ISP
	Net     *vring.Network
	Borders []vring.RouterID
}

// Global is the assembled two-level system.
type Global struct {
	ASGraph *topology.ASGraph
	Inter   *canon.Internet
	Metrics sim.Metrics

	domains map[topology.ASN]*Domain
	hostAS  map[ident.ID]topology.ASN
	rng     *rand.Rand
	opts    Options
}

// New builds the composite system over an annotated AS graph,
// instantiating an internal router topology, a virtual-ring network and
// border routers for every AS that hosts identifiers (plus every transit
// AS, which needs border routers to relay). The border-router existence
// flood inside each AS is charged to MsgBorderFlood.
func New(g *topology.ASGraph, m sim.Metrics, opts Options) *Global {
	if opts.BordersPerAS < 1 {
		opts.BordersPerAS = 1
	}
	gl := &Global{
		ASGraph: g,
		Inter:   canon.New(g, m, opts.Inter),
		Metrics: m,
		domains: make(map[topology.ASN]*Domain),
		hostAS:  make(map[ident.ID]topology.ASN),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		opts:    opts,
	}
	for a := 0; a < g.NumASes(); a++ {
		asn := topology.ASN(a)
		cfg := opts.ISPTemplate
		cfg.Name = fmt.Sprintf("AS%d", a)
		cfg.Seed = opts.Seed + int64(a)*7919
		isp := topology.GenISP(cfg)
		net := vring.New(isp.Graph, m, opts.Intra)
		d := &Domain{ASN: asn, ISP: isp, Net: net}
		// Border routers: the first backbone routers, deterministic.
		nb := opts.BordersPerAS
		if nb > len(isp.Backbone) {
			nb = len(isp.Backbone)
		}
		d.Borders = append(d.Borders, isp.Backbone[:nb]...)
		// §4.1: "we have border routers flood their existence
		// internally" — one flood per border router.
		m.Count(MsgBorderFlood, int64(2*isp.Graph.NumEdges()*nb))
		gl.domains[asn] = d
	}
	return gl
}

// Domain returns one AS's intradomain slice.
func (g *Global) Domain(a topology.ASN) (*Domain, bool) {
	d, ok := g.domains[a]
	return d, ok
}

// HostAS returns the AS a joined host lives in.
func (g *Global) HostAS(id ident.ID) (topology.ASN, bool) {
	a, ok := g.hostAS[id]
	return a, ok
}

// nearestBorder returns the border router closest (by hops) to `from`.
func (d *Domain) nearestBorder(from vring.RouterID) (vring.RouterID, int, error) {
	best := vring.RouterID(-1)
	bestH := -1
	for _, b := range d.Borders {
		h := d.Net.LS.Hops(from, b)
		if h < 0 {
			continue
		}
		if bestH == -1 || h < bestH {
			best, bestH = b, h
		}
	}
	if bestH == -1 {
		return 0, 0, ErrNoBorder
	}
	return best, bestH, nil
}

// JoinResult reports the two-level cost of one host join.
type JoinResult struct {
	IntraMsgs  int // internal-ring splice + border relay
	InterMsgs  int // Canon per-level joins
	Router     vring.RouterID
	BorderUsed vring.RouterID
}

// JoinHost performs the paper's complete join_internal (Algorithm 1):
// the host joins its AS's internal ring at the given access router, the
// hosting router relays the external join to a border router, and the
// border router runs join_external across the up-hierarchy with the
// chosen strategy.
func (g *Global) JoinHost(id ident.ID, as topology.ASN, at vring.RouterID, s canon.Strategy) (JoinResult, error) {
	d, ok := g.domains[as]
	if !ok {
		return JoinResult{}, fmt.Errorf("%w: %d", ErrUnknownAS, as)
	}
	intra, err := d.Net.JoinHost(id, at)
	if err != nil {
		return JoinResult{}, fmt.Errorf("composite: internal join: %w", err)
	}
	// Relay the external join to the nearest border router and back
	// (join_internal lines 8-13: locate_border_router + join_external).
	border, relay, err := d.nearestBorder(at)
	if err != nil {
		return JoinResult{}, err
	}
	inter, err := g.Inter.Join(id, as, s)
	if err != nil {
		// Roll back the internal join so the two layers stay consistent.
		_ = d.Net.LeaveHost(id)
		return JoinResult{}, fmt.Errorf("composite: external join: %w", err)
	}
	g.Metrics.Count(vring.MsgJoin, int64(2*relay))
	g.hostAS[id] = as
	return JoinResult{
		IntraMsgs:  intra.Msgs + 2*relay,
		InterMsgs:  inter.Msgs,
		Router:     at,
		BorderUsed: border,
	}, nil
}

// RouteResult reports a composite route: the intradomain legs in the
// source and destination ASes, the interdomain AS-level path, and
// whether the packet ever left the source AS.
type RouteResult struct {
	Delivered  bool
	IntraHops  int // source-AS + destination-AS router hops
	InterHops  int // AS-level hops
	ASPath     []topology.ASN
	StayedHome bool // intra-AS traffic never touched the interdomain layer
}

// Route forwards a packet from a router in the source host's AS to the
// destination identifier. Intra-AS destinations are resolved entirely by
// the internal ring — the isolation corollary; cross-AS destinations
// travel access-router → egress border → interdomain → ingress border →
// hosting router.
func (g *Global) Route(src ident.ID, dst ident.ID) (RouteResult, error) {
	srcAS, ok := g.hostAS[src]
	if !ok {
		return RouteResult{}, fmt.Errorf("%w: %s", ErrUnknownHost, src.Short())
	}
	dstAS, ok := g.hostAS[dst]
	if !ok {
		return RouteResult{}, fmt.Errorf("%w: %s", ErrUnknownHost, dst.Short())
	}
	sd := g.domains[srcAS]
	srcRouter, _ := sd.Net.HostingRouter(src)

	if srcAS == dstAS {
		res, err := sd.Net.Route(srcRouter, dst)
		if err != nil {
			return RouteResult{}, err
		}
		return RouteResult{
			Delivered:  res.Delivered,
			IntraHops:  res.Hops,
			ASPath:     []topology.ASN{srcAS},
			StayedHome: true,
		}, nil
	}

	// Egress: intradomain to the nearest border router.
	_, egressHops, err := sd.nearestBorder(srcRouter)
	if err != nil {
		return RouteResult{}, err
	}

	// Interdomain: greedy over the Canon rings.
	inter, err := g.Inter.Route(src, dst)
	if err != nil {
		return RouteResult{}, fmt.Errorf("composite: interdomain leg: %w", err)
	}

	// Ingress: from a border router of the destination AS to the hosting
	// router, over the destination AS's internal ring.
	dd := g.domains[dstAS]
	if len(dd.Borders) == 0 {
		return RouteResult{}, ErrNoBorder
	}
	last, err := dd.Net.Route(dd.Borders[0], dst)
	if err != nil {
		return RouteResult{}, fmt.Errorf("composite: ingress leg: %w", err)
	}
	return RouteResult{
		Delivered: last.Delivered,
		IntraHops: egressHops + last.Hops,
		InterHops: inter.ASHops,
		ASPath:    inter.Traversed,
	}, nil
}

// CheckAll verifies every layer's invariants: each AS's internal ring
// and the interdomain rings plus state-level isolation.
func (g *Global) CheckAll() error {
	for a, d := range g.domains {
		if err := d.Net.CheckRing(); err != nil {
			return fmt.Errorf("composite: AS %d internal ring: %w", a, err)
		}
	}
	if err := g.Inter.CheckRings(); err != nil {
		return err
	}
	return g.Inter.CheckIsolationState()
}

// NumHosts returns the number of joined hosts across all ASes.
func (g *Global) NumHosts() int { return len(g.hostAS) }
