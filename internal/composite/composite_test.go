package composite

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rofl/internal/canon"
	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// smallWorld builds a 10-AS hierarchy: 2 tier-1s peered, 3 tier-2s, 5
// stubs.
func smallWorld(t *testing.T) (*Global, *topology.ASGraph) {
	t.Helper()
	g := topology.GenAS(topology.ASGenConfig{
		Tier1: 2, Tier2: 3, Stubs: 5,
		Hosts: 500, ZipfS: 1.1, PeerProb: 0.3, BackupProb: 0.2, Seed: 7,
	})
	return New(g, sim.NewMetrics(), DefaultOptions()), g
}

// joinAcross joins n hosts spread over the stub ASes' access routers.
func joinAcross(t *testing.T, gl *Global, g *topology.ASGraph, n int) []ident.ID {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	stubs := g.Stubs()
	var ids []ident.ID
	for i := 0; i < n; i++ {
		id := ident.FromString(fmt.Sprintf("comp-%d", i))
		as := stubs[rng.Intn(len(stubs))]
		d, _ := gl.Domain(as)
		at := d.ISP.Access[rng.Intn(len(d.ISP.Access))]
		if _, err := gl.JoinHost(id, as, at, canon.Multihomed); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestCompositeJoinChargesBothLayers(t *testing.T) {
	gl, g := smallWorld(t)
	stubs := g.Stubs()
	d, _ := gl.Domain(stubs[0])
	res, err := gl.JoinHost(ident.FromString("first"), stubs[0], d.ISP.Access[0], canon.Multihomed)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntraMsgs <= 0 {
		t.Fatalf("intra msgs = %d", res.IntraMsgs)
	}
	// The very first interdomain join has an empty ring, so InterMsgs may
	// be zero; a second host from a different AS must pay interdomain.
	d2, _ := gl.Domain(stubs[1])
	res2, err := gl.JoinHost(ident.FromString("second"), stubs[1], d2.ISP.Access[0], canon.Multihomed)
	if err != nil {
		t.Fatal(err)
	}
	if res2.InterMsgs <= 0 {
		t.Fatalf("second join inter msgs = %d", res2.InterMsgs)
	}
	if gl.Metrics.Counter(MsgBorderFlood) == 0 {
		t.Fatal("border flood not charged")
	}
	if gl.NumHosts() != 2 {
		t.Fatalf("hosts = %d", gl.NumHosts())
	}
}

func TestCompositeIntraASStaysHome(t *testing.T) {
	gl, g := smallWorld(t)
	stub := g.Stubs()[0]
	d, _ := gl.Domain(stub)
	a := ident.FromString("local-a")
	b := ident.FromString("local-b")
	if _, err := gl.JoinHost(a, stub, d.ISP.Access[0], canon.Multihomed); err != nil {
		t.Fatal(err)
	}
	if _, err := gl.JoinHost(b, stub, d.ISP.Access[5], canon.Multihomed); err != nil {
		t.Fatal(err)
	}
	res, err := gl.Route(a, b)
	if err != nil || !res.Delivered {
		t.Fatalf("route: %+v %v", res, err)
	}
	if !res.StayedHome || res.InterHops != 0 || len(res.ASPath) != 1 {
		t.Fatalf("intra-AS traffic left home: %+v", res)
	}
}

func TestCompositeCrossASRouting(t *testing.T) {
	gl, g := smallWorld(t)
	ids := joinAcross(t, gl, g, 40)
	if err := gl.CheckAll(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	crossSeen := false
	for i := 0; i < 60; i++ {
		src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if src == dst {
			continue
		}
		res, err := gl.Route(src, dst)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		if !res.Delivered {
			t.Fatal("not delivered")
		}
		srcAS, _ := gl.HostAS(src)
		dstAS, _ := gl.HostAS(dst)
		if srcAS != dstAS {
			crossSeen = true
			if res.InterHops <= 0 {
				t.Fatalf("cross-AS route with no AS hops: %+v", res)
			}
			if res.IntraHops < 0 {
				t.Fatalf("negative intra hops: %+v", res)
			}
			if res.ASPath[0] != srcAS || res.ASPath[len(res.ASPath)-1] != dstAS {
				t.Fatalf("AS path endpoints wrong: %v (src %d dst %d)", res.ASPath, srcAS, dstAS)
			}
		}
	}
	if !crossSeen {
		t.Fatal("workload produced no cross-AS pairs")
	}
}

func TestCompositeErrors(t *testing.T) {
	gl, g := smallWorld(t)
	if _, err := gl.JoinHost(ident.FromString("x"), topology.ASN(g.NumASes()+5), 0, canon.Multihomed); !errors.Is(err, ErrUnknownAS) {
		t.Fatalf("unknown AS: %v", err)
	}
	if _, err := gl.Route(ident.FromString("ghost"), ident.FromString("ghost2")); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("unknown host: %v", err)
	}
}

func TestCompositeRollbackOnDuplicateExternal(t *testing.T) {
	gl, g := smallWorld(t)
	stubs := g.Stubs()
	id := ident.FromString("dup")
	d0, _ := gl.Domain(stubs[0])
	if _, err := gl.JoinHost(id, stubs[0], d0.ISP.Access[0], canon.Multihomed); err != nil {
		t.Fatal(err)
	}
	// Same identifier joining from another AS: the external join must
	// fail and the internal join must be rolled back.
	d1, _ := gl.Domain(stubs[1])
	if _, err := gl.JoinHost(id, stubs[1], d1.ISP.Access[0], canon.Multihomed); err == nil {
		t.Fatal("duplicate external join must fail")
	}
	if err := d1.Net.CheckRing(); err != nil {
		t.Fatalf("rollback left AS %d ring broken: %v", stubs[1], err)
	}
	if _, ok := d1.Net.HostingRouter(id); ok {
		t.Fatal("rollback left the identifier resident")
	}
	if err := gl.CheckAll(); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeDeterministic(t *testing.T) {
	run := func() int {
		g := topology.GenAS(topology.ASGenConfig{
			Tier1: 2, Tier2: 3, Stubs: 5,
			Hosts: 500, ZipfS: 1.1, PeerProb: 0.3, BackupProb: 0.2, Seed: 7,
		})
		gl := New(g, sim.NewMetrics(), DefaultOptions())
		total := 0
		rng := rand.New(rand.NewSource(3))
		stubs := g.Stubs()
		for i := 0; i < 15; i++ {
			id := ident.FromString(fmt.Sprintf("det-%d", i))
			as := stubs[rng.Intn(len(stubs))]
			d, _ := gl.Domain(as)
			at := d.ISP.Access[rng.Intn(len(d.ISP.Access))]
			res, err := gl.JoinHost(id, as, at, canon.Multihomed)
			if err != nil {
				t.Fatal(err)
			}
			total += res.IntraMsgs + res.InterMsgs
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("composite joins not deterministic: %d vs %d", a, b)
	}
}
