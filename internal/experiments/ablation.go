package experiments

import (
	"fmt"
	"math/rand"

	"rofl/internal/baseline/bgppolicy"
	"rofl/internal/canon"
	"rofl/internal/sim"
	"rofl/internal/topology"
	"rofl/internal/vring"
)

// Ablations exercises the design choices DESIGN.md calls out, one
// sub-table per knob:
//
//   - successor-group size: join cost vs resilience to host failure;
//   - cache-fill policy: control-only (the paper's default) vs off vs
//     data snooping;
//   - proximity fingers vs random fingers (interdomain);
//   - directed teardown floods vs whole-network floods on host failure.
func Ablations(cfg Config) Table {
	t := Table{
		ID:      "ablation",
		Title:   "Design-choice ablations",
		Columns: []string{"knob", "setting", "metric", "value"},
	}
	ablSuccessorGroup(cfg, &t)
	ablCachePolicy(cfg, &t)
	ablFingerSelection(cfg, &t)
	ablDirectedFlood(cfg, &t)
	return t
}

func ablSuccessorGroup(cfg Config, t *Table) {
	ic := topology.AS3967
	if ic.Hosts > cfg.HostsPerISP {
		ic.Hosts = cfg.HostsPerISP
	}
	for _, group := range []int{1, 2, 4, 8} {
		isp := topology.GenISP(ic)
		m := sim.NewMetrics()
		opts := vring.DefaultOptions()
		opts.SuccessorGroup = group
		n := vring.New(isp.Graph, m, opts)
		rng := rand.New(rand.NewSource(cfg.Seed))
		ids, err := joinHosts(n, isp, ic.Hosts, rng)
		if err != nil {
			panic(err)
		}
		joinAvg := avg(m.Samples(vring.SampleJoinMsgs))
		// Fail a batch of hosts; with a larger group more repairs resolve
		// by shift-down instead of rejoin probes.
		before := m.Counter(vring.MsgTeardown) + m.Counter(vring.MsgRepair)
		fails := len(ids) / 10
		for i := 0; i < fails; i++ {
			if err := n.FailHost(ids[i]); err != nil {
				panic(err)
			}
		}
		repair := m.Counter(vring.MsgTeardown) + m.Counter(vring.MsgRepair) - before
		t.AddRow("succ-group", group, "join-msgs-avg", joinAvg)
		t.AddRow("succ-group", group, "fail-repair-msgs/host", float64(repair)/float64(fails))
	}
}

func ablCachePolicy(cfg Config, t *Table) {
	ic := topology.AS3257
	if ic.Hosts > cfg.HostsPerISP {
		ic.Hosts = cfg.HostsPerISP
	}
	type setting struct {
		name           string
		control, snoop bool
	}
	for _, s := range []setting{
		{"off", false, false},
		{"control-only", true, false}, // the paper's configuration
		{"control+snoop", true, true},
	} {
		isp := topology.GenISP(ic)
		m := sim.NewMetrics()
		opts := vring.DefaultOptions()
		opts.CacheControl = s.control
		opts.SnoopData = s.snoop
		n := vring.New(isp.Graph, m, opts)
		rng := rand.New(rand.NewSource(cfg.Seed))
		ids, err := joinHosts(n, isp, ic.Hosts, rng)
		if err != nil {
			panic(err)
		}
		picker := newHostPicker(isp)
		var total float64
		count := 0
		// Two passes so snooped entries pay off on the repeat traffic.
		for pass := 0; pass < 2; pass++ {
			r2 := rand.New(rand.NewSource(cfg.Seed + 7))
			total, count = 0, 0
			for p := 0; p < cfg.Pairs/2; p++ {
				res, err := n.Route(picker.pick(r2), ids[r2.Intn(len(ids))])
				if err != nil {
					continue
				}
				total += res.Stretch
				count++
			}
		}
		t.AddRow("cache-fill", s.name, "stretch-mean", total/float64(count))
	}
}

func ablFingerSelection(cfg Config, t *Table) {
	for _, random := range []bool{false, true} {
		g := genASGraph(cfg)
		opts := canon.DefaultOptions()
		opts.FingerBudget = 160
		opts.RandomFingers = random
		in := canon.New(g, sim.NewMetrics(), opts)
		ids, err := joinInter(in, g, cfg.InterHosts/4, canon.Multihomed, cfg.Seed, fmt.Sprintf("abl-f-%v", random))
		if err != nil {
			panic(err)
		}
		bgp := bgppolicy.New(g)
		rng := rand.New(rand.NewSource(cfg.Seed + 8))
		var sum float64
		var count int
		for p := 0; p < cfg.Pairs; p++ {
			src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if src == dst {
				continue
			}
			res, err := in.Route(src, dst)
			if err != nil {
				continue
			}
			srcAS, _ := in.HostingAS(src)
			dstAS, _ := in.HostingAS(dst)
			base := bgp.Hops(srcAS, dstAS, nil)
			if base <= 0 {
				continue
			}
			sum += float64(res.ASHops) / float64(base)
			count++
		}
		name := "proximity"
		if random {
			name = "random"
		}
		t.AddRow("finger-selection", name, "stretch-mean@160f", sum/float64(count))
	}
}

func ablDirectedFlood(cfg Config, t *Table) {
	ic := topology.AS3967
	if ic.Hosts > cfg.HostsPerISP {
		ic.Hosts = cfg.HostsPerISP
	}
	isp := topology.GenISP(ic)
	m := sim.NewMetrics()
	n := vring.New(isp.Graph, m, vring.DefaultOptions())
	rng := rand.New(rand.NewSource(cfg.Seed))
	ids, err := joinHosts(n, isp, ic.Hosts, rng)
	if err != nil {
		panic(err)
	}
	fullFlood := 2 * isp.Graph.NumEdges()
	before := m.Counter(vring.MsgTeardown)
	fails := len(ids) / 10
	for i := 0; i < fails; i++ {
		if err := n.FailHost(ids[i]); err != nil {
			panic(err)
		}
	}
	directed := float64(m.Counter(vring.MsgTeardown)-before) / float64(fails)
	t.AddRow("teardown-flood", "directed (paper)", "msgs/failure", directed)
	t.AddRow("teardown-flood", "whole-network", "msgs/failure", fullFlood)
	t.Note("directed teardown floods cost %.1fx less than flooding every router (paper §3.2 rejects whole-network floods as inefficient)",
		float64(fullFlood)/directed)
}

func avg(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
