package experiments

import (
	"fmt"
	"math/rand"

	"rofl/internal/baseline/bgppolicy"
	"rofl/internal/canon"
	"rofl/internal/sim"
	"rofl/internal/topology"
	"rofl/internal/vring"
)

// Ablations exercises the design choices DESIGN.md calls out, one
// sub-table per knob:
//
//   - successor-group size: join cost vs resilience to host failure;
//   - cache-fill policy: control-only (the paper's default) vs off vs
//     data snooping;
//   - proximity fingers vs random fingers (interdomain);
//   - directed teardown floods vs whole-network floods on host failure.
//
// Each knob's arms run as parallel trials; arms of the same knob share
// that knob's trial-group seed (groups 0-3 in the order above) so every
// comparison stays paired.
func Ablations(cfg Config) Table {
	t := Table{
		ID:      "ablation",
		Title:   "Design-choice ablations",
		Columns: []string{"knob", "setting", "metric", "value"},
	}
	ablSuccessorGroup(cfg, &t)
	ablCachePolicy(cfg, &t)
	ablFingerSelection(cfg, &t)
	ablDirectedFlood(cfg, &t)
	return t
}

func ablSuccessorGroup(cfg Config, t *Table) {
	ic := topology.AS3967
	if ic.Hosts > cfg.HostsPerISP {
		ic.Hosts = cfg.HostsPerISP
	}
	groups := []int{1, 2, 4, 8}
	joinAvgs := make([]float64, len(groups))
	repairs := make([]float64, len(groups))
	forTrials(cfg, len(groups), func(trial int) {
		isp := topology.GenISP(ic)
		m := sim.NewMetrics()
		opts := vring.DefaultOptions()
		opts.SuccessorGroup = groups[trial]
		n := vring.New(isp.Graph, m, opts)
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 0)))
		ids, err := joinHosts(n, isp, ic.Hosts, rng)
		if err != nil {
			panic(err)
		}
		joinAvgs[trial] = avg(m.Samples(vring.SampleJoinMsgs))
		// Fail a batch of hosts; with a larger group more repairs resolve
		// by shift-down instead of rejoin probes.
		before := m.Counter(vring.MsgTeardown) + m.Counter(vring.MsgRepair)
		fails := len(ids) / 10
		for i := 0; i < fails; i++ {
			if err := n.FailHost(ids[i]); err != nil {
				panic(err)
			}
		}
		repair := m.Counter(vring.MsgTeardown) + m.Counter(vring.MsgRepair) - before
		repairs[trial] = float64(repair) / float64(fails)
	})
	for i, group := range groups {
		t.AddRow("succ-group", group, "join-msgs-avg", joinAvgs[i])
		t.AddRow("succ-group", group, "fail-repair-msgs/host", repairs[i])
	}
}

func ablCachePolicy(cfg Config, t *Table) {
	ic := topology.AS3257
	if ic.Hosts > cfg.HostsPerISP {
		ic.Hosts = cfg.HostsPerISP
	}
	type setting struct {
		name           string
		control, snoop bool
	}
	settings := []setting{
		{"off", false, false},
		{"control-only", true, false}, // the paper's configuration
		{"control+snoop", true, true},
	}
	stretch := make([]float64, len(settings))
	forTrials(cfg, len(settings), func(trial int) {
		s := settings[trial]
		isp := topology.GenISP(ic)
		m := sim.NewMetrics()
		opts := vring.DefaultOptions()
		opts.CacheControl = s.control
		opts.SnoopData = s.snoop
		n := vring.New(isp.Graph, m, opts)
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 1)))
		ids, err := joinHosts(n, isp, ic.Hosts, rng)
		if err != nil {
			panic(err)
		}
		picker := newHostPicker(isp)
		var total float64
		count := 0
		// Two passes so snooped entries pay off on the repeat traffic.
		for pass := 0; pass < 2; pass++ {
			r2 := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 1) + 7))
			total, count = 0, 0
			for p := 0; p < cfg.Pairs/2; p++ {
				res, err := n.Route(picker.pick(r2), ids[r2.Intn(len(ids))])
				if err != nil {
					continue
				}
				total += res.Stretch
				count++
			}
		}
		stretch[trial] = total / float64(count)
	})
	for i, s := range settings {
		t.AddRow("cache-fill", s.name, "stretch-mean", stretch[i])
	}
}

func ablFingerSelection(cfg Config, t *Table) {
	stretch := make([]float64, 2)
	forTrials(cfg, 2, func(trial int) {
		random := trial == 1
		g := genASGraph(cfg)
		opts := canon.DefaultOptions()
		opts.FingerBudget = 160
		opts.RandomFingers = random
		in := canon.New(g, sim.NewMetrics(), opts)
		ids, err := joinInter(in, g, cfg.InterHosts/4, canon.Multihomed, sim.TrialSeed(cfg.Seed, 2), fmt.Sprintf("abl-f-%v", random))
		if err != nil {
			panic(err)
		}
		bgp := bgppolicy.New(g)
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 2) + 8))
		var sum float64
		var count int
		for p := 0; p < cfg.Pairs; p++ {
			src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if src == dst {
				continue
			}
			res, err := in.Route(src, dst)
			if err != nil {
				continue
			}
			srcAS, _ := in.HostingAS(src)
			dstAS, _ := in.HostingAS(dst)
			base := bgp.Hops(srcAS, dstAS, nil)
			if base <= 0 {
				continue
			}
			sum += float64(res.ASHops) / float64(base)
			count++
		}
		stretch[trial] = sum / float64(count)
	})
	t.AddRow("finger-selection", "proximity", "stretch-mean@160f", stretch[0])
	t.AddRow("finger-selection", "random", "stretch-mean@160f", stretch[1])
}

func ablDirectedFlood(cfg Config, t *Table) {
	ic := topology.AS3967
	if ic.Hosts > cfg.HostsPerISP {
		ic.Hosts = cfg.HostsPerISP
	}
	isp := topology.GenISP(ic)
	m := sim.NewMetrics()
	n := vring.New(isp.Graph, m, vring.DefaultOptions())
	rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 3)))
	ids, err := joinHosts(n, isp, ic.Hosts, rng)
	if err != nil {
		panic(err)
	}
	fullFlood := 2 * isp.Graph.NumEdges()
	before := m.Counter(vring.MsgTeardown)
	fails := len(ids) / 10
	for i := 0; i < fails; i++ {
		if err := n.FailHost(ids[i]); err != nil {
			panic(err)
		}
	}
	directed := float64(m.Counter(vring.MsgTeardown)-before) / float64(fails)
	t.AddRow("teardown-flood", "directed (paper)", "msgs/failure", directed)
	t.AddRow("teardown-flood", "whole-network", "msgs/failure", fullFlood)
	t.Note("directed teardown floods cost %.1fx less than flooding every router (paper §3.2 rejects whole-network floods as inefficient)",
		float64(fullFlood)/directed)
}

func avg(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
