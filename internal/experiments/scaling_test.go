package experiments

import "testing"

// TestScalingShape checks the headline claims of the scaling study at
// CI size: per-host ring state is flat (O(1)) across the sweep and
// within the compact budget, stretch is sane, and the cache hit rate is
// a valid ratio.
func TestScalingShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Pairs = 100
	tab := Scaling(cfg)
	if len(tab.Rows) != len(cfg.ScaleSweep) {
		t.Fatalf("%d rows for %d sweep points", len(tab.Rows), len(cfg.ScaleSweep))
	}
	first := cell(t, tab, 0, 4)
	for i := range tab.Rows {
		ring := cell(t, tab, i, 4)
		if ring != first {
			t.Errorf("row %d ring_B/host %.1f != %.1f: per-host state not O(1)", i, ring, first)
		}
		if ring <= 0 || ring > 32 {
			t.Errorf("row %d ring_B/host %.1f outside (0, 32]", i, ring)
		}
		if p50 := cell(t, tab, i, 6); p50 < 1 {
			t.Errorf("row %d stretch p50 %.2f < 1", i, p50)
		}
		if hit := cell(t, tab, i, 8); hit < 0 || hit > 1 {
			t.Errorf("row %d cache hit rate %.2f outside [0,1]", i, hit)
		}
	}
}

// TestScalingShardInvariance: the Shards knob, like Workers, must be
// unobservable in the table.
func TestScalingShardInvariance(t *testing.T) {
	base := QuickConfig()
	base.Pairs = 60
	one := base
	one.Shards = 1
	eight := base
	eight.Shards = 8
	// The shard count is a table column; mask it before comparing.
	render := func(cfg Config) string {
		tab := Scaling(cfg)
		for i := range tab.Rows {
			tab.Rows[i][1] = "-"
		}
		return tab.String()
	}
	if got, want := render(eight), render(one); got != want {
		t.Fatalf("table differs between Shards=1 and Shards=8:\n%s\nvs\n%s", got, want)
	}
}
