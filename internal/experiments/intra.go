package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"rofl/internal/baseline/flatether"
	"rofl/internal/baseline/ospfhost"
	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
	"rofl/internal/vring"
)

// evalISPs returns the paper's four topologies with host counts capped
// by the config.
func evalISPs(cfg Config) []topology.ISPConfig {
	out := topology.EvalISPs()
	for i := range out {
		if out[i].Hosts > cfg.HostsPerISP {
			out[i].Hosts = cfg.HostsPerISP
		}
	}
	return out
}

// hostPicker samples access routers weighted by the ISP's Zipf host
// placement.
type hostPicker struct {
	isp *topology.ISP
	cum []int
	tot int
}

func newHostPicker(isp *topology.ISP) *hostPicker {
	p := &hostPicker{isp: isp}
	for _, h := range isp.HostsAt {
		w := h
		if w == 0 {
			w = 1 // every access router stays sample-able
		}
		p.tot += w
		p.cum = append(p.cum, p.tot)
	}
	return p
}

func (p *hostPicker) pick(rng *rand.Rand) topology.NodeID {
	x := rng.Intn(p.tot)
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p.isp.Access[lo]
}

// joinHosts joins count deterministic identifiers, Zipf-spread over the
// ISP's access routers, and returns them.
func joinHosts(n *vring.Network, isp *topology.ISP, count int, rng *rand.Rand) ([]ident.ID, error) {
	picker := newHostPicker(isp)
	ids := make([]ident.ID, 0, count)
	for i := 0; i < count; i++ {
		id := ident.FromString(fmt.Sprintf("%s-host-%d", isp.Name, i))
		if _, err := n.JoinHost(id, picker.pick(rng)); err != nil {
			return nil, fmt.Errorf("joining host %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func sweepPoints(max int) []int {
	pts := []int{1, 10, 100, 1000, 10000}
	out := pts[:0]
	for _, p := range pts {
		if p <= max {
			out = append(out, p)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Fig5a reproduces "Cumulative overhead to construct the network":
// total join messages as a function of the number of IDs joined, per
// ISP, with the CMU-ETHERNET flood-everything baseline alongside. The
// paper's claims: ROFL scales linearly, and CMU-ETHERNET needs 37–181×
// more messages.
func Fig5a(cfg Config) Table {
	t := Table{
		ID:      "fig5a",
		Title:   "Intradomain total join overhead [messages] vs IDs per AS",
		Columns: []string{"ids"},
	}
	isps := evalISPs(cfg)
	for _, ic := range isps {
		t.Columns = append(t.Columns, ic.Name+"-rofl", ic.Name+"-ether")
	}
	points := sweepPoints(cfg.HostsPerISP)
	// Trial 2i joins the ROFL ring of ISP i, trial 2i+1 the CMU-ETHERNET
	// baseline on the same topology. Both arms derive their RNG from the
	// ISP's trial index, so the paired comparison sees identical host
	// placements no matter which worker runs which arm.
	counts := make([][]int64, 2*len(isps))
	forTrials(cfg, 2*len(isps), func(trial int) {
		ic := isps[trial/2]
		isp := topology.GenISP(ic)
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, trial/2)))
		picker := newHostPicker(isp)
		m := sim.NewMetrics()
		var join func(ident.ID, topology.NodeID) error
		counter := vring.MsgJoin
		if trial%2 == 1 {
			ether := flatether.New(isp.Graph, m)
			join = func(id ident.ID, at topology.NodeID) error {
				_, err := ether.JoinHost(id, at)
				return err
			}
			counter = flatether.MsgJoin
		} else {
			n := vring.New(isp.Graph, m, vring.DefaultOptions())
			join = func(id ident.ID, at topology.NodeID) error {
				_, err := n.JoinHost(id, at)
				return err
			}
		}
		joined := 0
		out := make([]int64, 0, len(points))
		for _, p := range points {
			for joined < p {
				id := ident.FromString(fmt.Sprintf("%s-h%d", ic.Name, joined))
				if err := join(id, picker.pick(rng)); err != nil {
					panic(err)
				}
				joined++
			}
			out = append(out, m.Counter(counter))
		}
		counts[trial] = out
	})
	var minRatio, maxRatio float64
	for i, p := range points {
		row := []string{fmt.Sprint(p)}
		for ispIdx := range isps {
			rofl := counts[2*ispIdx][i]
			eth := counts[2*ispIdx+1][i]
			row = append(row, fmt.Sprint(rofl), fmt.Sprint(eth))
			ratio := float64(eth) / float64(rofl)
			if minRatio == 0 || ratio < minRatio {
				minRatio = ratio
			}
			if ratio > maxRatio {
				maxRatio = ratio
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note("CMU-ETHERNET/ROFL join-message ratio spans %.0fx–%.0fx (paper: 37x–181x)", minRatio, maxRatio)
	return t
}

// cdfRows appends P10..P100 rows for a set of per-ISP sample vectors.
func cdfRows(t *Table, samples map[string][]float64, order []string) {
	for pct := 10; pct <= 100; pct += 10 {
		row := []string{fmt.Sprintf("p%d", pct)}
		for _, name := range order {
			row = append(row, fmt.Sprintf("%.1f", quantileOf(samples[name], float64(pct)/100)))
		}
		t.Rows = append(t.Rows, row)
	}
}

func quantileOf(vs []float64, q float64) float64 {
	s := append([]float64(nil), vs...)
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	return sim.Quantile(s, q)
}

// runJoinSamples joins the workload on each ISP in parallel and returns
// the per-join message and latency samples. Each trial records into its
// own Metrics sink, re-keyed by ISP name; the sinks are folded together
// with Metrics.Merge in trial order, so the result is independent of the
// worker count.
func runJoinSamples(cfg Config) (msgs, lat map[string][]float64, order []string) {
	isps := evalISPs(cfg)
	sinks := make([]sim.Metrics, len(isps))
	forTrials(cfg, len(isps), func(i int) {
		ic := isps[i]
		isp := topology.GenISP(ic)
		m := sim.NewMetrics()
		n := vring.New(isp.Graph, m, vring.DefaultOptions())
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, i)))
		if _, err := joinHosts(n, isp, ic.Hosts, rng); err != nil {
			panic(err)
		}
		sink := sim.NewMetrics()
		for _, v := range m.Samples(vring.SampleJoinMsgs) {
			sink.Sample(ic.Name+"/join-msgs", v)
		}
		for _, v := range m.Samples(vring.SampleJoinLatency) {
			sink.Sample(ic.Name+"/join-latency", v)
		}
		sinks[i] = sink
	})
	merged := sim.NewMetrics()
	for _, s := range sinks {
		merged.Merge(s)
	}
	msgs = map[string][]float64{}
	lat = map[string][]float64{}
	for _, ic := range isps {
		msgs[ic.Name] = merged.Samples(ic.Name + "/join-msgs")
		lat[ic.Name] = merged.Samples(ic.Name + "/join-latency")
		order = append(order, ic.Name)
	}
	return msgs, lat, order
}

// Fig5b reproduces the per-host join overhead CDF (paper: under ~45
// messages per join, roughly 4× the network diameter).
func Fig5b(cfg Config) Table {
	t := Table{
		ID:      "fig5b",
		Title:   "CDF of per-host join overhead [messages]",
		Columns: []string{"percentile"},
	}
	msgs, _, order := runJoinSamples(cfg)
	t.Columns = append(t.Columns, order...)
	cdfRows(&t, msgs, order)
	worst := 0.0
	for _, name := range order {
		if v := quantileOf(msgs[name], 1); v > worst {
			worst = v
		}
	}
	t.Note("median per-join overhead %.0f messages; the tail above the paper's ~45 is the cold-cache transient, invisible at the paper's millions of hosts", quantileOf(msgs[order[0]], 0.5))
	t.Note("max per-join overhead %.0f messages", worst)
	return t
}

// Fig5c reproduces the join latency CDF (paper: typically <40 ms, on the
// order of the network diameter because control messages overlap).
func Fig5c(cfg Config) Table {
	t := Table{
		ID:      "fig5c",
		Title:   "CDF of join latency [ms]",
		Columns: []string{"percentile"},
	}
	_, lat, order := runJoinSamples(cfg)
	t.Columns = append(t.Columns, order...)
	cdfRows(&t, lat, order)
	worst := 0.0
	for _, name := range order {
		if v := quantileOf(lat[name], 1); v > worst {
			worst = v
		}
	}
	t.Note("median join latency %.1f ms (paper: <40 ms); the tail is the cold-cache transient", quantileOf(lat[order[0]], 0.5))
	t.Note("max join latency %.1f ms", worst)
	return t
}

// Fig6a reproduces "Effect of pointer cache size on stretch": average
// data-plane stretch as the per-router pointer cache grows. The paper's
// knee: caches of ~70k entries (9 Mbit of 128-bit IDs) bring stretch
// down to ~1.2–2.
func Fig6a(cfg Config) Table {
	t := Table{
		ID:      "fig6a",
		Title:   "Stretch vs per-router pointer-cache size [entries]",
		Columns: []string{"cache"},
	}
	isps := evalISPs(cfg)
	for _, ic := range isps {
		t.Columns = append(t.Columns, ic.Name)
	}
	sizes := []int{0, 10, 100, 1000, 10000, 70000}
	// One trial per (ISP, cache size); all sizes of an ISP share the
	// ISP's derived seed so the sweep varies only the cache.
	stretch := make([]float64, len(isps)*len(sizes))
	forTrials(cfg, len(stretch), func(trial int) {
		ic := isps[trial/len(sizes)]
		sz := sizes[trial%len(sizes)]
		isp := topology.GenISP(ic)
		m := sim.NewMetrics()
		opts := vring.DefaultOptions()
		opts.CacheCapacity = sz
		n := vring.New(isp.Graph, m, opts)
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, trial/len(sizes))))
		ids, err := joinHosts(n, isp, ic.Hosts, rng)
		if err != nil {
			panic(err)
		}
		picker := newHostPicker(isp)
		var total float64
		count := 0
		for p := 0; p < cfg.Pairs; p++ {
			res, err := n.Route(picker.pick(rng), ids[rng.Intn(len(ids))])
			if err != nil {
				continue
			}
			total += res.Stretch
			count++
		}
		stretch[trial] = total / float64(count)
	})
	rows := make([][]string, len(sizes))
	for i, sz := range sizes {
		rows[i] = []string{fmt.Sprint(sz)}
		for ispIdx := range isps {
			rows[i] = append(rows[i], fmt.Sprintf("%.2f", stretch[ispIdx*len(sizes)+i]))
		}
	}
	first, last := stretch[0], stretch[len(sizes)-1]
	t.Rows = rows
	t.Note("%s stretch falls from %.2f (no cache) to %.2f (70k entries); paper: high → ~2", isps[0].Name, first, last)
	return t
}

// Fig6b reproduces the load-balance comparison: fraction of data
// messages traversing each router, ranked by OSPF load, for ROFL and
// OSPF. The paper finds "the difference from OSPF is fairly slight."
//
// This driver is a single trial — every probe pair mutates the same
// network's caches and traversal counters — so it runs serially at any
// Workers setting.
func Fig6b(cfg Config) Table {
	t := Table{
		ID:      "fig6b",
		Title:   "Load balance: fraction of messages per router (ranked by OSPF load)",
		Columns: []string{"router-rank", "ospf-frac", "rofl-frac"},
	}
	ic := evalISPs(cfg)[0] // AS1221, as in the paper's figure
	isp := topology.GenISP(ic)
	m := sim.NewMetrics()
	n := vring.New(isp.Graph, m, vring.DefaultOptions())
	om := sim.NewMetrics()
	ospf := ospfhost.New(isp.Graph, om)
	rng := rand.New(rand.NewSource(cfg.Seed))
	ids, err := joinHosts(n, isp, ic.Hosts, rng)
	if err != nil {
		panic(err)
	}
	for i, id := range ids {
		host, _ := n.HostingRouter(id)
		_ = i
		ospf.Attach(id, host)
	}
	picker := newHostPicker(isp)
	for p := 0; p < cfg.Pairs; p++ {
		from := picker.pick(rng)
		dst := ids[rng.Intn(len(ids))]
		if _, err := n.Route(from, dst); err != nil {
			continue
		}
		if _, err := ospf.Route(from, dst); err != nil {
			continue
		}
	}
	var roflTotal, ospfTotal float64
	roflT := n.Traversals()
	ospfT := ospf.Traversals()
	for i := range roflT {
		roflTotal += float64(roflT[i])
		ospfTotal += float64(ospfT[i])
	}
	rank := ospf.RankByLoad()
	maxRatio := 0.0
	for i, r := range rank {
		of := float64(ospfT[r]) / ospfTotal
		rf := float64(roflT[r]) / roflTotal
		if i < 20 || i%20 == 0 {
			t.AddRow(i+1, fmt.Sprintf("%.4f", of), fmt.Sprintf("%.4f", rf))
		}
		if of > 0 && rf/of > maxRatio {
			maxRatio = rf / of
		}
	}
	t.Note("worst ROFL/OSPF per-router load ratio %.1fx (paper: 'fairly slight' difference, no new hot-spots)", maxRatio)
	return t
}

// Fig6c reproduces per-router memory vs resident IDs, with the
// CMU-ETHERNET everyone-stores-everything baseline (paper: 34–1200×
// more memory than ROFL). Two ROFL columns are reported: the mandatory
// ring state (successor groups, predecessors, parked routes — what must
// exist for correctness and what the paper's ratios compare against) and
// the total including opportunistic cache fill, which is budget-bounded
// rather than required.
func Fig6c(cfg Config) Table {
	t := Table{
		ID:      "fig6c",
		Title:   "Average per-router memory [entries] vs IDs",
		Columns: []string{"ids"},
	}
	isps := evalISPs(cfg)
	for _, ic := range isps {
		t.Columns = append(t.Columns, ic.Name+"-ring", ic.Name+"-total")
	}
	t.Columns = append(t.Columns, "ether")
	points := sweepPoints(cfg.HostsPerISP)
	// One trial per ISP, each sweeping its own join sequence.
	type memSeries struct {
		ring, total []float64
	}
	series := make([]memSeries, len(isps))
	forTrials(cfg, len(isps), func(trial int) {
		ic := isps[trial]
		isp := topology.GenISP(ic)
		m := sim.NewMetrics()
		n := vring.New(isp.Graph, m, vring.DefaultOptions())
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, trial)))
		picker := newHostPicker(isp)
		joined := 0
		var s memSeries
		for _, p := range points {
			for joined < p {
				id := ident.FromString(fmt.Sprintf("%s-h%d", ic.Name, joined))
				if _, err := n.JoinHost(id, picker.pick(rng)); err != nil {
					panic(err)
				}
				joined++
			}
			total, cache := 0, 0
			for _, r := range n.Routers {
				total += r.MemoryEntries()
				cache += r.Cache.Len()
			}
			nr := float64(len(n.Routers))
			s.ring = append(s.ring, float64(total-cache)/nr)
			s.total = append(s.total, float64(total)/nr)
		}
		series[trial] = s
	})
	var minRatio, maxRatio float64
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{fmt.Sprint(p)}
		for ispIdx := range isps {
			ring := series[ispIdx].ring[i]
			rows[i] = append(rows[i], fmt.Sprintf("%.1f", ring), fmt.Sprintf("%.1f", series[ispIdx].total[i]))
			// The paper's 34x-1200x ratios are taken where hosts dominate
			// router bootstrap state; compare at the final sweep point.
			if i == len(points)-1 && ring > 0 {
				ratio := float64(p) / ring
				if minRatio == 0 || ratio < minRatio {
					minRatio = ratio
				}
				if ratio > maxRatio {
					maxRatio = ratio
				}
			}
		}
		rows[i] = append(rows[i], fmt.Sprint(p)) // ether: one entry per host per router
	}
	t.Rows = rows
	t.Note("at the final sweep point CMU-ETHERNET stores %.0fx–%.0fx more than ROFL's ring state across the ISPs (paper: 34x–1200x)", minRatio, maxRatio)
	return t
}

// Fig7 reproduces the partition-repair experiment: disconnect a PoP,
// let both sides reconverge, reconnect, and measure total repair
// overhead as IDs per PoP grow. The paper: repair is "roughly on the
// same order of magnitude of rejoining all the hosts in the PoP", and
// the ring always reconverges (consistency-checked).
func Fig7(cfg Config) Table {
	t := Table{
		ID:      "fig7",
		Title:   "Partition repair overhead [messages] vs IDs per PoP",
		Columns: []string{"ids-per-pop"},
	}
	isps := evalISPs(cfg)
	for _, ic := range isps {
		t.Columns = append(t.Columns, ic.Name)
	}
	perPoP := []int{1, 5, 25}
	// One trial per (ISP, IDs-per-PoP) point; each partitions and heals
	// its own private network.
	repairs := make([]int64, len(isps)*len(perPoP))
	forTrials(cfg, len(repairs), func(trial int) {
		ic := isps[trial/len(perPoP)]
		ids := perPoP[trial%len(perPoP)]
		isp := topology.GenISP(ic)
		m := sim.NewMetrics()
		n := vring.New(isp.Graph, m, vring.DefaultOptions())
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, trial)))
		// ids hosts per PoP, spread evenly.
		members := isp.Graph.PoPMembers()
		for pop := 0; pop < ic.PoPs; pop++ {
			nodes := members[pop]
			for k := 0; k < ids; k++ {
				id := ident.FromString(fmt.Sprintf("%s-p%d-%d", ic.Name, pop, k))
				at := nodes[k%len(nodes)]
				if _, err := n.JoinHost(id, at); err != nil {
					panic(err)
				}
			}
		}
		pop := rng.Intn(ic.PoPs)
		before := m.Counter(vring.MsgRepair)
		cut := n.PartitionPoP(pop)
		n.RepairPartitions()
		if err := n.CheckRing(); err != nil {
			panic(fmt.Sprintf("fig7 split check: %v", err))
		}
		for _, l := range cut {
			n.RestoreLink(l[0], l[1])
		}
		n.RepairPartitions()
		if err := n.CheckRing(); err != nil {
			panic(fmt.Sprintf("fig7 merge check: %v", err))
		}
		repairs[trial] = m.Counter(vring.MsgRepair) - before
	})
	rows := make([][]string, len(perPoP))
	for i, p := range perPoP {
		rows[i] = []string{fmt.Sprint(p)}
		for ispIdx := range isps {
			rows[i] = append(rows[i], fmt.Sprint(repairs[ispIdx*len(perPoP)+i]))
		}
	}
	t.Rows = rows
	t.Note("every run reconverged to a single consistent ring (checker enforced); overhead grows with PoP population as in the paper")
	return t
}
