package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestAllRunnersProduceTables(t *testing.T) {
	cfg := QuickConfig()
	cfg.HostsPerISP = 60
	cfg.Pairs = 60
	cfg.InterHosts = 120
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab := r.Run(cfg)
			if tab.ID != r.ID {
				t.Fatalf("table id %q != runner id %q", tab.ID, r.ID)
			}
			if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row width %d != %d columns: %v", len(row), len(tab.Columns), row)
				}
			}
			if !strings.Contains(tab.String(), tab.Title) {
				t.Fatal("String() must include the title")
			}
			if !strings.Contains(tab.CSV(), tab.Columns[0]) {
				t.Fatal("CSV() must include the header")
			}
		})
	}
}

// TestWorkerCountInvariance is the tentpole determinism guarantee:
// every registered experiment must emit a byte-identical table whether
// its trials run serially or fan out across a pool. Trial seeds derive
// from the trial index (sim.TrialSeed), results land in index-addressed
// slots, and merged sinks are folded in trial order, so worker count
// and scheduling must be unobservable in the output.
func TestWorkerCountInvariance(t *testing.T) {
	base := QuickConfig()
	base.HostsPerISP = 60
	base.Pairs = 60
	base.InterHosts = 120
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			serial := base
			serial.Workers = 1
			pooled := base
			pooled.Workers = 8
			want := r.Run(serial).String()
			got := r.Run(pooled).String()
			if got != want {
				t.Fatalf("table differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- 8 workers ---\n%s", want, got)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig5a"); !ok {
		t.Fatal("fig5a must exist")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

func TestFig5aShape(t *testing.T) {
	cfg := QuickConfig()
	tab := Fig5a(cfg)
	// Ether must dominate ROFL at the final sweep point for every ISP,
	// by a large factor (paper: 37x-181x).
	last := len(tab.Rows) - 1
	// At quick scale the cache warm-up transient dominates ROFL's mean
	// join cost, so the gap is smaller than the paper's full-scale
	// 37x-181x; it must still be decisive.
	for c := 1; c < len(tab.Columns); c += 2 {
		rofl := cell(t, tab, last, c)
		ether := cell(t, tab, last, c+1)
		if ether < 4*rofl {
			t.Fatalf("%s: ether %.0f not >> rofl %.0f", tab.Columns[c], ether, rofl)
		}
	}
	// Cumulative overhead must be nondecreasing in IDs.
	for c := 1; c < len(tab.Columns); c++ {
		for r := 1; r < len(tab.Rows); r++ {
			if cell(t, tab, r, c) < cell(t, tab, r-1, c) {
				t.Fatalf("column %s decreases at row %d", tab.Columns[c], r)
			}
		}
	}
}

func TestFig5bMonotoneCDF(t *testing.T) {
	tab := Fig5b(QuickConfig())
	for c := 1; c < len(tab.Columns); c++ {
		for r := 1; r < len(tab.Rows); r++ {
			if cell(t, tab, r, c) < cell(t, tab, r-1, c) {
				t.Fatalf("CDF column %s not monotone", tab.Columns[c])
			}
		}
	}
}

func TestFig6aCachingHelps(t *testing.T) {
	cfg := QuickConfig()
	tab := Fig6a(cfg)
	first, last := 0, len(tab.Rows)-1
	for c := 1; c < len(tab.Columns); c++ {
		noCache := cell(t, tab, first, c)
		bigCache := cell(t, tab, last, c)
		if bigCache >= noCache {
			t.Fatalf("%s: cache did not help (%.2f -> %.2f)", tab.Columns[c], noCache, bigCache)
		}
		if bigCache < 1 {
			t.Fatalf("%s: stretch < 1 impossible", tab.Columns[c])
		}
	}
}

func TestFig6cEtherDominates(t *testing.T) {
	tab := Fig6c(QuickConfig())
	last := len(tab.Rows) - 1
	etherCol := len(tab.Columns) - 1
	ether := cell(t, tab, last, etherCol)
	for c := 1; c < etherCol; c++ {
		if rofl := cell(t, tab, last, c); rofl >= ether {
			t.Fatalf("%s: rofl memory %.1f not < ether %.1f", tab.Columns[c], rofl, ether)
		}
	}
}

func TestFig7GrowsWithPoPPopulation(t *testing.T) {
	cfg := QuickConfig()
	tab := Fig7(cfg)
	// Repair cost at the largest IDs-per-PoP must exceed the smallest.
	first, last := 0, len(tab.Rows)-1
	grew := false
	for c := 1; c < len(tab.Columns); c++ {
		if cell(t, tab, last, c) > cell(t, tab, first, c) {
			grew = true
		}
	}
	if !grew {
		t.Fatal("repair overhead should grow with PoP population on at least one ISP")
	}
}

func TestFig8aOrdering(t *testing.T) {
	cfg := QuickConfig()
	tab := Fig8a(cfg)
	last := len(tab.Rows) - 1
	eph := cell(t, tab, last, 1)
	single := cell(t, tab, last, 2)
	multi := cell(t, tab, last, 3)
	peering := cell(t, tab, last, 4)
	if !(eph < single) {
		t.Fatalf("ephemeral %.0f !< single %.0f", eph, single)
	}
	if !(peering > multi) {
		t.Fatalf("peering %.0f !> multihomed %.0f", peering, multi)
	}
	if multi < single*0.5 {
		t.Fatalf("multihomed %.0f implausibly below single-homed %.0f", multi, single)
	}
}

func TestFig8bFingersReduceStretch(t *testing.T) {
	cfg := QuickConfig()
	tab := Fig8b(cfg)
	// Median row (p50 is the 5th row: p10..p50).
	var p50 int
	for i, row := range tab.Rows {
		if row[0] == "p50" {
			p50 = i
		}
	}
	none := cell(t, tab, p50, 1)
	many := cell(t, tab, p50, 4)
	if !(many <= none) {
		t.Fatalf("280 fingers (%.2f) should not exceed 0 fingers (%.2f) at p50", many, none)
	}
}

func TestFig8cCachingHelps(t *testing.T) {
	cfg := QuickConfig()
	tab := Fig8c(cfg)
	first := cell(t, tab, 0, 1)
	last := cell(t, tab, len(tab.Rows)-1, 1)
	if !(last < first) {
		t.Fatalf("per-AS caching should cut stretch: %.2f -> %.2f", first, last)
	}
}

func TestStubFailMostPathsUnaffected(t *testing.T) {
	cfg := QuickConfig()
	tab := StubFail(cfg)
	for r := range tab.Rows {
		frac := cell(t, tab, r, 3)
		if frac > 0.15 {
			t.Fatalf("trial %d: %.0f%% of paths affected — stub failures must be contained", r, frac*100)
		}
	}
}

func TestBloomPeeringCheaperJoins(t *testing.T) {
	cfg := QuickConfig()
	tab := BloomPeering(cfg)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	virtual := cell(t, tab, 0, 1)
	bloomed := cell(t, tab, 1, 1)
	if !(bloomed < virtual) {
		t.Fatalf("bloom joins (%.0f) should undercut virtual-AS joins (%.0f)", bloomed, virtual)
	}
}

func TestExtensionsShape(t *testing.T) {
	cfg := QuickConfig()
	tab := Extensions(cfg)
	vals := map[string]map[string]string{}
	for _, row := range tab.Rows {
		if vals[row[0]] == nil {
			vals[row[0]] = map[string]string{}
		}
		vals[row[0]][row[1]] = row[2]
	}
	if _, ok := vals["anycast"]; !ok {
		t.Fatal("anycast rows missing")
	}
	if got := vals["multicast"]["members-reached"]; got != "10/10" {
		t.Fatalf("multicast reached %s", got)
	}
	first, _ := strconv.ParseFloat(vals["negotiation"]["first-packet-hops-avg"], 64)
	next, _ := strconv.ParseFloat(vals["negotiation"]["negotiated-hops-avg"], 64)
	if !(next <= first) {
		t.Fatalf("negotiated routing (%.2f) must not exceed first-packet greedy (%.2f)", next, first)
	}
}

func TestChurnShape(t *testing.T) {
	cfg := QuickConfig()
	tab := Churn(cfg)
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		vals[row[0]] = v
	}
	if !(vals["ephemeral-join"] < vals["stable-join"]) {
		t.Fatalf("ephemeral join (%.1f) must undercut stable join (%.1f)", vals["ephemeral-join"], vals["stable-join"])
	}
	// Failure and mobility comparable to join overhead (§6.2): within an
	// order of magnitude, not orders.
	for _, ev := range []string{"host-crash", "mobility", "graceful-leave"} {
		if vals[ev] > 10*vals["stable-join"] {
			t.Fatalf("%s (%.1f) far beyond join overhead (%.1f)", ev, vals[ev], vals["stable-join"])
		}
	}
}

func TestMsgSizesShape(t *testing.T) {
	tab := MsgSizes(QuickConfig())
	var at256 float64
	prev := -1.0
	for _, row := range tab.Rows {
		b := mustF(t, row[1])
		if b <= prev {
			t.Fatalf("sizes must grow with fingers: %v", tab.Rows)
		}
		prev = b
		if row[0] == "256" {
			at256 = b
		}
	}
	// Paper: 1638 bytes at 256 fingers; our wire format carries the same
	// entries within 4x of that.
	if at256 < 1638/2 || at256 > 1638*4 {
		t.Fatalf("256-finger join = %.0f bytes, implausibly far from the paper's 1638", at256)
	}
}

func mustF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCompositeShape(t *testing.T) {
	cfg := QuickConfig()
	tab := Composite(cfg)
	vals := map[string]string{}
	for _, row := range tab.Rows {
		vals[row[0]] = row[1]
	}
	if vals["intra-AS packets that left their AS"] != "0" {
		t.Fatal("isolation corollary violated")
	}
	if v := mustF(t, vals["cross-AS AS-level hops avg"]); v <= 0 {
		t.Fatalf("cross-AS hops = %v", v)
	}
	if v := mustF(t, vals["join inter msgs avg (per-level Canon joins)"]); v <= 0 {
		t.Fatalf("inter join msgs = %v", v)
	}
}

func TestAblationsCover(t *testing.T) {
	cfg := QuickConfig()
	cfg.HostsPerISP = 80
	cfg.Pairs = 80
	cfg.InterHosts = 160
	tab := Ablations(cfg)
	knobs := map[string]bool{}
	for _, row := range tab.Rows {
		knobs[row[0]] = true
	}
	for _, want := range []string{"succ-group", "cache-fill", "finger-selection", "teardown-flood"} {
		if !knobs[want] {
			t.Fatalf("ablation %q missing", want)
		}
	}
}
