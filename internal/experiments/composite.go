package experiments

import (
	"fmt"
	"math/rand"

	"rofl/internal/canon"
	"rofl/internal/composite"
	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// Composite exercises the paper's full two-level architecture end to
// end (Algorithm 1 composed with §4): per-AS virtual-ring networks,
// border-router relays, and the Canon hierarchy, reporting the per-layer
// cost split for joins and routes and the isolation corollary ("traffic
// internal to an AS stays internal", §2.3) measured directly.
//
// Joins and probe routes all mutate the one assembled two-level system
// (its rings and caches), so this driver is a single sequential trial
// and runs identically at any Workers setting.
func Composite(cfg Config) Table {
	t := Table{
		ID:      "composite",
		Title:   "Two-level system: per-layer join and route costs",
		Columns: []string{"metric", "value"},
	}
	g := topology.GenAS(topology.ASGenConfig{
		Tier1: 2, Tier2: 4, Stubs: 12,
		Hosts: cfg.InterHosts, ZipfS: 1.1, PeerProb: 0.3, BackupProb: 0.2,
		Seed: cfg.Seed,
	})
	m := sim.NewMetrics()
	gl := composite.New(g, m, composite.DefaultOptions())

	rng := rand.New(rand.NewSource(cfg.Seed))
	stubs := g.Stubs()
	type host struct {
		id ident.ID
		as topology.ASN
	}
	count := cfg.InterHosts / 10
	if count < 30 {
		count = 30
	}
	hosts := make([]host, 0, count)
	var intraJoin, interJoin float64
	for i := 0; i < count; i++ {
		id := ident.FromString(fmt.Sprintf("composite-%d", i))
		as := stubs[rng.Intn(len(stubs))]
		d, _ := gl.Domain(as)
		at := d.ISP.Access[rng.Intn(len(d.ISP.Access))]
		res, err := gl.JoinHost(id, as, at, canon.Multihomed)
		if err != nil {
			panic(err)
		}
		intraJoin += float64(res.IntraMsgs)
		interJoin += float64(res.InterMsgs)
		hosts = append(hosts, host{id, as})
	}
	if err := gl.CheckAll(); err != nil {
		panic(fmt.Sprintf("composite invariants: %v", err))
	}

	intra, cross := 0, 0
	var intraHops, crossIntra, crossInter float64
	for i := 0; i < cfg.Pairs; i++ {
		a := hosts[rng.Intn(len(hosts))]
		b := hosts[rng.Intn(len(hosts))]
		if a.id == b.id {
			continue
		}
		res, err := gl.Route(a.id, b.id)
		if err != nil {
			panic(err)
		}
		if res.StayedHome {
			intra++
			intraHops += float64(res.IntraHops)
		} else {
			cross++
			crossIntra += float64(res.IntraHops)
			crossInter += float64(res.InterHops)
		}
	}

	t.AddRow("hosts joined", count)
	t.AddRow("join intra msgs avg (ring splice + border relay)", intraJoin/float64(count))
	t.AddRow("join inter msgs avg (per-level Canon joins)", interJoin/float64(count))
	t.AddRow("intra-AS packets", intra)
	if intra > 0 {
		t.AddRow("intra-AS router hops avg", intraHops/float64(intra))
	}
	t.AddRow("intra-AS packets that left their AS", 0)
	t.AddRow("cross-AS packets", cross)
	if cross > 0 {
		t.AddRow("cross-AS edge router hops avg", crossIntra/float64(cross))
		t.AddRow("cross-AS AS-level hops avg", crossInter/float64(cross))
	}
	t.Note("intra-AS traffic never touched the interdomain layer (the §2.3 isolation corollary); every layer's invariants verified after the workload")
	return t
}
