package experiments

import (
	"fmt"
	"math/rand"

	"rofl/internal/baseline/bgppolicy"
	"rofl/internal/canon"
	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// genASGraph builds the interdomain topology scaled to the config.
func genASGraph(cfg Config) *topology.ASGraph {
	gen := topology.DefaultASGen()
	gen.Hosts = cfg.InterHosts
	gen.Seed = cfg.Seed
	return topology.GenAS(gen)
}

// hostASes returns the host-populated ASes, repeated in proportion to
// their host counts, as a sampling pool.
func hostASes(g *topology.ASGraph) []topology.ASN {
	var pool []topology.ASN
	for a := 0; a < g.NumASes(); a++ {
		asn := topology.ASN(a)
		// Sample with weight ~ sqrt(hosts) so the head does not dominate
		// every draw while the skew stays visible.
		w := 0
		for h := g.Hosts(asn); (w+1)*(w+1) <= h; w++ {
		}
		for k := 0; k < w; k++ {
			pool = append(pool, asn)
		}
	}
	return pool
}

// joinInter joins count identifiers with the given strategy, spread over
// the host-populated ASes.
func joinInter(in *canon.Internet, g *topology.ASGraph, count int, s canon.Strategy, seed int64, tag string) ([]ident.ID, error) {
	rng := rand.New(rand.NewSource(seed))
	pool := hostASes(g)
	ids := make([]ident.ID, 0, count)
	for i := 0; i < count; i++ {
		id := ident.FromString(fmt.Sprintf("%s-%d", tag, i))
		at := pool[rng.Intn(len(pool))]
		if _, err := in.Join(id, at, s); err != nil {
			return nil, fmt.Errorf("join %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Fig8a reproduces the join-strategy comparison: moving-average join
// overhead as identifiers accumulate, for ephemeral, single-homed,
// recursively multihomed and peering joins. Paper shape: ephemeral ≪
// single-homed ≈ multihomed < peering, with the multihomed join "not
// significantly larger than single-homed" thanks to redundant-lookup
// elimination.
func Fig8a(cfg Config) Table {
	t := Table{
		ID:      "fig8a",
		Title:   "Interdomain join overhead [messages] by strategy (moving average)",
		Columns: []string{"ids", "ephemeral", "single-homed", "rec-multihomed", "peering"},
	}
	points := sweepPoints(cfg.InterHosts / 4)
	strategies := []canon.Strategy{canon.Ephemeral, canon.SingleHomed, canon.Multihomed, canon.Peering}
	// One trial per strategy. All four arms share trial group 0's
	// derived seed so every strategy races over the identical workload
	// (same AS placement sequence), keeping the comparison paired.
	series := make([][]float64, len(strategies))
	forTrials(cfg, len(strategies), func(trial int) {
		s := strategies[trial]
		g := genASGraph(cfg)
		in := canon.New(g, sim.NewMetrics(), canon.DefaultOptions())
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 0)))
		pool := hostASes(g)
		var window []float64
		joined := 0
		for _, p := range points {
			for joined < p {
				id := ident.FromString(fmt.Sprintf("f8a-%v-%d", s, joined))
				res, err := in.Join(id, pool[rng.Intn(len(pool))], s)
				if err != nil {
					panic(err)
				}
				window = append(window, float64(res.Msgs))
				if len(window) > 200 {
					window = window[1:]
				}
				joined++
			}
			var sum float64
			for _, v := range window {
				sum += v
			}
			series[trial] = append(series[trial], sum/float64(len(window)))
		}
		if err := in.CheckRings(); err != nil {
			panic(err)
		}
	})
	for i, p := range points {
		t.AddRow(p, series[0][i], series[1][i], series[2][i], series[3][i])
	}
	last := len(points) - 1
	t.Note("final averages: eph %.0f / single %.0f / multi %.0f / peering %.0f (paper extrapolation: ~14 / ~80 / ~100 / ~300+)",
		series[0][last], series[1][last], series[2][last], series[3][last])
	return t
}

// shortestASHops is the policy-free hop count — the denominator of the
// paper's BGP-policy stretch curve.
func shortestASHops(g *topology.ASGraph, src, dst topology.ASN) int {
	if src == dst {
		return 0
	}
	dist := map[topology.ASN]int{src: 0}
	queue := []topology.ASN{src}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, b := range g.Neighbors(a) {
			if _, ok := dist[b]; ok {
				continue
			}
			dist[b] = dist[a] + 1
			if b == dst {
				return dist[b]
			}
			queue = append(queue, b)
		}
	}
	return -1
}

// Fig8b reproduces the interdomain stretch comparison: ROFL stretch
// (vs the BGP path, the paper's definition) for several proximity-finger
// budgets, plus the stretch BGP policies themselves impose relative to
// policy-free shortest paths. Paper shape: stretch ~2.8 with 60 fingers
// falling to ~2.3 with 160+.
func Fig8b(cfg Config) Table {
	t := Table{
		ID:      "fig8b",
		Title:   "Interdomain stretch CDF (ROFL vs BGP path; BGP-policy vs shortest)",
		Columns: []string{"percentile", "rofl-0f", "rofl-60f", "rofl-160f", "rofl-280f", "bgp-policy"},
	}
	budgets := []int{0, 60, 160, 280}
	order := []string{"rofl-0f", "rofl-60f", "rofl-160f", "rofl-280f", "bgp-policy"}
	// One trial per finger budget, all arms on trial group 0's workload.
	// Each trial samples its stretch series into a private Metrics sink
	// under its own series name; the sinks merge in budget order below.
	sinks := make([]sim.Metrics, len(budgets))
	means := make([]float64, len(budgets))
	forTrials(cfg, len(budgets), func(bi int) {
		budget := budgets[bi]
		g := genASGraph(cfg)
		opts := canon.DefaultOptions()
		opts.FingerBudget = budget
		in := canon.New(g, sim.NewMetrics(), opts)
		ids, err := joinInter(in, g, cfg.InterHosts/4, canon.Multihomed, sim.TrialSeed(cfg.Seed, 0), fmt.Sprintf("f8b-%d", budget))
		if err != nil {
			panic(err)
		}
		bgp := bgppolicy.New(g)
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 0) + 1))
		sink := sim.NewMetrics()
		name := order[bi]
		var total float64
		var count int
		for p := 0; p < cfg.Pairs; p++ {
			src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if src == dst {
				continue
			}
			res, err := in.Route(src, dst)
			if err != nil {
				continue
			}
			srcAS, _ := in.HostingAS(src)
			dstAS, _ := in.HostingAS(dst)
			base := bgp.Hops(srcAS, dstAS, nil)
			if base <= 0 {
				continue
			}
			s := float64(res.ASHops) / float64(base)
			sink.Sample(name, s)
			total += s
			count++
			if bi == 0 {
				// BGP-policy curve measured once.
				free := shortestASHops(g, srcAS, dstAS)
				if free > 0 {
					sink.Sample("bgp-policy", float64(base)/float64(free))
				}
			}
		}
		means[bi] = total / float64(count)
		sinks[bi] = sink
	})
	merged := sim.NewMetrics()
	for _, s := range sinks {
		merged.Merge(s)
	}
	samples := make(map[string][]float64)
	for _, name := range order {
		samples[name] = merged.Samples(name)
	}
	cdfRows(&t, samples, order)
	t.Note("mean ROFL stretch: %.2f (0 fingers) → %.2f (60) → %.2f (160) → %.2f (280); paper: 2.8 @60 → 2.3 @160",
		means[0], means[1], means[2], means[3])
	return t
}

// Fig8c reproduces "Effect of pointer caching": mean interdomain stretch
// as per-AS pointer caches grow, with caches warmed by a first traffic
// pass. Paper: 20M entries/AS pull stretch from 2 to 1.33.
func Fig8c(cfg Config) Table {
	t := Table{
		ID:      "fig8c",
		Title:   "Interdomain stretch vs per-AS pointer-cache size [entries]",
		Columns: []string{"cache-entries", "mean-stretch", "p90-stretch", "total-cached"},
	}
	sizes := []int{0, 200, 1000, 5000}
	// One trial per cache size, all arms on trial group 0's workload.
	type f8cRow struct {
		mean, p90 float64
		cached    int
	}
	results := make([]f8cRow, len(sizes))
	forTrials(cfg, len(sizes), func(trial int) {
		sz := sizes[trial]
		g := genASGraph(cfg)
		opts := canon.DefaultOptions()
		opts.CacheCapacity = sz
		opts.FingerBudget = 60
		in := canon.New(g, sim.NewMetrics(), opts)
		ids, err := joinInter(in, g, cfg.InterHosts/4, canon.Multihomed, sim.TrialSeed(cfg.Seed, 0), fmt.Sprintf("f8c-%d", sz))
		if err != nil {
			panic(err)
		}
		bgp := bgppolicy.New(g)
		var vals []float64
		// Two passes over the same pair sequence: the second hits warm
		// caches (the paper's caches hold "frequently accessed routes").
		for pass := 0; pass < 2; pass++ {
			rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 0) + 2))
			vals = vals[:0]
			for p := 0; p < cfg.Pairs; p++ {
				src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
				if src == dst {
					continue
				}
				res, err := in.Route(src, dst)
				if err != nil {
					continue
				}
				srcAS, _ := in.HostingAS(src)
				dstAS, _ := in.HostingAS(dst)
				base := bgp.Hops(srcAS, dstAS, nil)
				if base <= 0 {
					continue
				}
				vals = append(vals, float64(res.ASHops)/float64(base))
			}
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		cached := 0
		for a := 0; a < g.NumASes(); a++ {
			cached += in.AS(topology.ASN(a)).Cache.Len()
		}
		results[trial] = f8cRow{mean: sum / float64(len(vals)), p90: quantileOf(vals, 0.9), cached: cached}
	})
	for i, sz := range sizes {
		t.AddRow(sz, results[i].mean, results[i].p90, results[i].cached)
	}
	first, last := results[0].mean, results[len(sizes)-1].mean
	t.Note("caching pulls mean stretch %.2f → %.2f (paper: 2 → 1.33 with 20M entries/AS)", first, last)
	return t
}

// StubFail reproduces the §6.3 failure experiment: fail random stub
// ASes; measure the fraction of paths affected (paper: 99.998%%
// unaffected) and the repair cost (paper: ≈ the number of identifiers
// the stub hosted).
//
// The five failure trials accumulate on one shared Internet (each
// trial's population is what the previous failures left alive), so this
// driver is inherently sequential and runs as a single trial at any
// Workers setting.
func StubFail(cfg Config) Table {
	t := Table{
		ID:      "stubfail",
		Title:   "Stub-AS failure: affected paths and repair cost",
		Columns: []string{"trial", "ids-hosted", "repair-msgs", "affected-frac"},
	}
	g := genASGraph(cfg)
	in := canon.New(g, sim.NewMetrics(), canon.DefaultOptions())
	ids, err := joinInter(in, g, cfg.InterHosts/4, canon.Multihomed, cfg.Seed, "sf")
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	stubs := g.Stubs()
	var totalAffected, totalPairs float64
	for trial := 0; trial < 5; trial++ {
		// At Internet scale every stub hosts a negligible share of all
		// identifiers; at our reduced scale the Zipf head can hold tens
		// of percent, so mirror the paper's regime by sampling stubs
		// below a 5%% population share.
		var victim topology.ASN = -1
		for tries := 0; tries < 400; tries++ {
			c := stubs[rng.Intn(len(stubs))]
			hosted := len(in.AS(c).VNs)
			if hosted > 0 && hosted*20 <= in.NumJoined() {
				victim = c
				break
			}
		}
		if victim == -1 {
			continue
		}
		// Snapshot the identifiers alive before this trial's failure, so
		// each trial measures its own failure's blast radius (the paper's
		// per-failure metric), not the accumulation of earlier trials.
		alive := ids[:0:0]
		for _, id := range ids {
			if _, ok := in.HostingAS(id); ok {
				alive = append(alive, id)
			}
		}
		before := in.Metrics.Counter(canon.MsgRepair)
		dead := in.FailAS(victim)
		repair := in.Metrics.Counter(canon.MsgRepair) - before
		if err := in.CheckRings(); err != nil {
			panic(fmt.Sprintf("stubfail check: %v", err))
		}
		// Affected fraction over sampled pairs: a pair is affected iff an
		// endpoint died with the stub or can no longer be routed to.
		affected, pairs := 0, 0
		for p := 0; p < cfg.Pairs; p++ {
			src, dst := alive[rng.Intn(len(alive))], alive[rng.Intn(len(alive))]
			if src == dst {
				continue
			}
			pairs++
			_, okS := in.HostingAS(src)
			_, okD := in.HostingAS(dst)
			if !okS || !okD {
				affected++
				continue
			}
			if _, err := in.Route(src, dst); err != nil {
				affected++
			}
		}
		frac := float64(affected) / float64(pairs)
		totalAffected += float64(affected)
		totalPairs += float64(pairs)
		t.AddRow(trial+1, dead, repair, fmt.Sprintf("%.4f", frac))
	}
	t.Note("%.2f%% of sampled paths unaffected (paper: 99.998%% at Internet scale); repair scales with identifiers hosted",
		100*(1-totalAffected/totalPairs))
	return t
}

// BloomPeering reproduces the §6.4 comparison of the two peering
// mechanisms: virtual-AS joins (option 1) vs Bloom filters with
// backtracking (option 2) — join overhead, filter state, stretch, and
// backtrack rate.
func BloomPeering(cfg Config) Table {
	t := Table{
		ID:      "bloompeering",
		Title:   "Peering via virtual ASes vs Bloom filters",
		Columns: []string{"mechanism", "avg-join-msgs", "bloom-bits/AS", "mean-stretch", "backtracks/1k-routes"},
	}
	// One trial per peering mechanism, both on the same derived workload.
	type bpRow struct {
		name       string
		joinAvg    float64
		bloomBits  int64
		stretch    float64
		backtracks float64
	}
	results := make([]bpRow, 2)
	forTrials(cfg, 2, func(trial int) {
		bloom := trial == 1
		g := genASGraph(cfg)
		opts := canon.DefaultOptions()
		opts.BloomPeering = bloom
		opts.FingerBudget = 60
		in := canon.New(g, sim.NewMetrics(), opts)
		ids, err := joinInter(in, g, cfg.InterHosts/4, canon.Peering, sim.TrialSeed(cfg.Seed, 0), fmt.Sprintf("bp-%v", bloom))
		if err != nil {
			panic(err)
		}
		joinAvg := 0.0
		for _, v := range in.Metrics.Samples(canon.SampleJoinMsgs) {
			joinAvg += v
		}
		joinAvg /= float64(len(in.Metrics.Samples(canon.SampleJoinMsgs)))

		bgp := bgppolicy.New(g)
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 0) + 4))
		var stretchSum float64
		var count int
		for p := 0; p < cfg.Pairs; p++ {
			src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if src == dst {
				continue
			}
			res, err := in.Route(src, dst)
			if err != nil {
				continue
			}
			srcAS, _ := in.HostingAS(src)
			dstAS, _ := in.HostingAS(dst)
			base := bgp.Hops(srcAS, dstAS, nil)
			if base <= 0 {
				continue
			}
			stretchSum += float64(res.ASHops) / float64(base)
			count++
		}
		bloomBits := int64(0)
		if bloom {
			for a := 0; a < g.NumASes(); a++ {
				if f := in.AS(topology.ASN(a)).Bloom; f != nil {
					bloomBits += int64(f.SizeBits())
				}
			}
			bloomBits /= int64(g.NumASes())
		}
		name := "virtual-AS"
		if bloom {
			name = "bloom-filter"
		}
		results[trial] = bpRow{
			name:       name,
			joinAvg:    joinAvg,
			bloomBits:  bloomBits,
			stretch:    stretchSum / float64(count),
			backtracks: float64(in.Metrics.Counter(canon.CtrBloomBacktracks)) / float64(count) * 1000,
		}
	})
	for _, r := range results {
		t.AddRow(r.name, r.joinAvg, r.bloomBits, r.stretch, fmt.Sprintf("%.1f", r.backtracks))
	}
	t.Note("blooms cut peering join cost to ~multihomed level at the price of per-AS filter state and occasional backtracks (paper §6.4)")
	return t
}
