package experiments

import (
	"fmt"
	"math/rand"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
	"rofl/internal/vring"
	"rofl/internal/wire"
)

// Churn quantifies §6.2's churn claims: "join overhead is a one-time
// cost in the absence of churn", "the overhead triggered by host failure
// and mobility [is] comparable to join overhead", and ephemeral joins
// cost less than stable joins. The driver runs a sustained churn
// workload (joins, graceful leaves, crashes, moves, ephemeral joins) and
// reports per-event control costs side by side.
//
// The whole point is one network mutating through an interleaved event
// sequence, so this driver is inherently a single sequential trial and
// runs identically at any Workers setting.
func Churn(cfg Config) Table {
	t := Table{
		ID:      "churn",
		Title:   "Per-event control cost under sustained churn [messages]",
		Columns: []string{"event", "count", "avg-msgs", "vs-stable-join"},
	}
	ic := topology.AS3967
	if ic.Hosts > cfg.HostsPerISP {
		ic.Hosts = cfg.HostsPerISP
	}
	isp := topology.GenISP(ic)
	m := sim.NewMetrics()
	n := vring.New(isp.Graph, m, vring.DefaultOptions())
	rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 0)))

	// Baseline population.
	ids, err := joinHosts(n, isp, ic.Hosts, rng)
	if err != nil {
		panic(err)
	}
	picker := newHostPicker(isp)
	baselineJoin := avg(m.Samples(vring.SampleJoinMsgs))

	type bucket struct {
		count int
		msgs  int64
	}
	events := map[string]*bucket{}
	charge := func(name string, fn func() error) {
		before := m.Counter(vring.MsgJoin) + m.Counter(vring.MsgTeardown) + m.Counter(vring.MsgRepair)
		if err := fn(); err != nil {
			panic(fmt.Sprintf("churn %s: %v", name, err))
		}
		after := m.Counter(vring.MsgJoin) + m.Counter(vring.MsgTeardown) + m.Counter(vring.MsgRepair)
		b := events[name]
		if b == nil {
			b = &bucket{}
			events[name] = b
		}
		b.count++
		b.msgs += after - before
	}

	next := len(ids)
	newID := func() ident.ID {
		id := ident.FromString(fmt.Sprintf("churn-%d", next))
		next++
		return id
	}
	const rounds = 60
	for i := 0; i < rounds; i++ {
		// Stable join.
		sid := newID()
		charge("stable-join", func() error {
			_, err := n.JoinHost(sid, picker.pick(rng))
			if err == nil {
				ids = append(ids, sid)
			}
			return err
		})
		// Ephemeral join + crash.
		eid := newID()
		charge("ephemeral-join", func() error {
			_, err := n.JoinEphemeral(eid, picker.pick(rng))
			return err
		})
		charge("ephemeral-crash", func() error { return n.FailHost(eid) })
		// Mobility.
		mid := ids[rng.Intn(len(ids))]
		charge("mobility", func() error {
			_, err := n.MoveHost(mid, picker.pick(rng))
			return err
		})
		// Crash of a stable host.
		victimIdx := rng.Intn(len(ids))
		victim := ids[victimIdx]
		charge("host-crash", func() error { return n.FailHost(victim) })
		ids = append(ids[:victimIdx], ids[victimIdx+1:]...)
		// Graceful leave.
		leaveIdx := rng.Intn(len(ids))
		leaver := ids[leaveIdx]
		charge("graceful-leave", func() error { return n.LeaveHost(leaver) })
		ids = append(ids[:leaveIdx], ids[leaveIdx+1:]...)
	}
	if err := n.CheckRing(); err != nil {
		panic(fmt.Sprintf("churn left the ring broken: %v", err))
	}

	for _, name := range []string{"stable-join", "ephemeral-join", "ephemeral-crash", "mobility", "host-crash", "graceful-leave"} {
		b := events[name]
		a := float64(b.msgs) / float64(b.count)
		t.AddRow(name, b.count, a, fmt.Sprintf("%.2fx", a/baselineJoin))
	}
	t.Note("baseline stable join over the warm network: %.1f msgs; failure and mobility land within a small factor of it (§6.2), and the ring stayed consistent through all %d events", baselineJoin, 6*rounds)
	return t
}

// MsgSizes reproduces the paper's control-message size analysis (§6.3):
// "with 256 fingers the message size increases to 1638 bytes. If we
// assume an MTU of 1500 bytes, a 256-finger single-homed join requires
// 258 IP packets" [sic — the paper's fragment accounting]. We build the
// actual join messages with the wire format and measure them.
func MsgSizes(cfg Config) Table {
	t := Table{
		ID:      "msgsizes",
		Title:   "Join-message sizes vs finger count (wire format)",
		Columns: []string{"fingers", "bytes", "mtu-1500-fragments"},
	}
	counts := []int{0, 60, 128, 160, 256, 340}
	// One trial per finger count; each builds and marshals its own join
	// reply from its trial-derived RNG.
	type msgRow struct{ bytes, frags int }
	results := make([]msgRow, len(counts))
	forTrials(cfg, len(counts), func(trial int) {
		fingers := counts[trial]
		rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, trial)))
		// A finger-carrying join reply: header + one (ID, AS) entry per
		// finger in the payload (16 + 4 bytes each, the same density the
		// paper's 1638-byte figure implies for 256 entries).
		payload := make([]byte, 0, fingers*20)
		for i := 0; i < fingers; i++ {
			id := ident.Random(rng)
			payload = append(payload, id[:]...)
			payload = append(payload, byte(i), byte(i>>8), 0, 0)
		}
		pkt := &wire.Packet{
			Type: wire.TypeJoinReply, TTL: wire.DefaultTTL,
			Dst: ident.Random(rng), Src: ident.Random(rng),
			ASRoute: []uint32{1, 2, 3, 4}, Payload: payload,
		}
		buf, err := pkt.Marshal()
		if err != nil {
			panic(err)
		}
		results[trial] = msgRow{bytes: len(buf), frags: (len(buf) + 1499) / 1500}
	})
	for i, fingers := range counts {
		t.AddRow(fingers, results[i].bytes, results[i].frags)
	}
	t.Note("the paper reports 1638 bytes at 256 fingers (≈6 B/finger, a compressed encoding); this wire format carries full 128-bit IDs plus hosting ASes at 20 B/finger — same order, same conclusion: finger-heavy joins fragment past one MTU")
	return t
}
