// Package experiments regenerates every table and figure of the paper's
// evaluation section (§6) from the simulators in this repository. Each
// driver is a pure function of its Config (topology scale, workload
// sizes, seed) returning a Table whose rows mirror the series the paper
// plots; cmd/roflsim prints them and bench_test.go wraps each one in a
// testing.B benchmark.
//
// Absolute values are not expected to match the paper — its substrate
// was Rocketfuel/Routeviews traces at up to 600M extrapolated hosts,
// ours is the generator of package topology at laptop scale — but the
// qualitative shape is asserted by tests: who wins, by what rough
// factor, and where the knees fall.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"rofl/internal/sim"
)

// Config scales every driver. The zero value is unusable; start from
// DefaultConfig (full evaluation) or QuickConfig (CI-sized).
type Config struct {
	// HostsPerISP caps the intradomain workload per ISP.
	HostsPerISP int
	// Pairs is the number of random source/destination probes per
	// data-plane measurement.
	Pairs int
	// InterHosts is the interdomain workload size.
	InterHosts int
	// Seed feeds all deterministic RNGs. Multi-trial drivers derive one
	// seed per independent trial from it (sim.TrialSeed), so every table
	// is a pure function of the config regardless of Workers.
	Seed int64
	// Workers bounds how many goroutines a driver fans its independent
	// trials (per-topology runs, parameter-sweep points, baseline arms)
	// across. 0 means runtime.NumCPU(); 1 runs every trial serially on
	// the calling goroutine, reproducing single-threaded execution bit
	// for bit. Results are identical at any value — only wall-clock time
	// changes.
	Workers int
	// ScaleSweep is the host-count sweep of the scaling experiment;
	// empty means {10k, 100k, 1M}.
	ScaleSweep []int
	// Shards is the shard count of the scaling experiment's sharded
	// single-network runs. 0 means 4. Like Workers, it changes only
	// wall-clock time: sharded runs are byte-identical at any value, and
	// it is deliberately never derived from the core count so tables
	// stay machine-independent.
	Shards int
}

// WorkerCount resolves the Workers knob: 0 defaults to runtime.NumCPU().
func (c Config) WorkerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// forTrials fans n independent trials across the configured worker pool.
// Each trial must derive its randomness from sim.TrialSeed(cfg.Seed, i)
// (or the trial index of its comparison group, when arms share a
// workload) and write results into its own index-addressed slot.
func forTrials(cfg Config, n int, fn func(trial int)) {
	sim.ForEach(cfg.WorkerCount(), n, fn)
}

// DefaultConfig sizes the full evaluation (~minutes).
func DefaultConfig() Config {
	return Config{
		HostsPerISP: 1200, Pairs: 1500, InterHosts: 2500, Seed: 2006,
		ScaleSweep: []int{10000, 100000, 1000000},
	}
}

// QuickConfig sizes a smoke-test run (~seconds).
func QuickConfig() Config {
	return Config{
		HostsPerISP: 150, Pairs: 200, InterHosts: 300, Seed: 2006,
		ScaleSweep: []int{1000, 5000},
	}
}

// Table is one reproduced figure or table: a title, column headers, and
// formatted rows.
type Table struct {
	ID      string // e.g. "fig5a"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records observations the paper calls out in prose (ratios,
	// crossover points) computed from this run.
	Notes []string
}

// AddRow appends a row formatted with %v semantics.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends an observation line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is a named experiment driver.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) Table
}

// All lists every reproduced figure in paper order plus the ablations.
func All() []Runner {
	return []Runner{
		{"fig5a", "Intradomain cumulative join overhead vs IDs (+CMU-ETHERNET)", Fig5a},
		{"fig5b", "Intradomain per-join overhead CDF", Fig5b},
		{"fig5c", "Intradomain join latency CDF", Fig5c},
		{"fig6a", "Intradomain stretch vs pointer-cache size", Fig6a},
		{"fig6b", "Intradomain load balance vs OSPF", Fig6b},
		{"fig6c", "Intradomain per-router memory vs IDs (+CMU-ETHERNET)", Fig6c},
		{"fig7", "Partition repair overhead vs IDs per PoP", Fig7},
		{"fig8a", "Interdomain join overhead by strategy", Fig8a},
		{"fig8b", "Interdomain stretch by finger budget (+BGP baseline)", Fig8b},
		{"fig8c", "Interdomain stretch vs per-AS pointer cache", Fig8c},
		{"stubfail", "Stub-AS failure impact and repair (§6.3)", StubFail},
		{"bloompeering", "Bloom-filter peering vs virtual-AS peering (§6.4)", BloomPeering},
		{"extensions", "§5 extensions: anycast, multicast, path negotiation", Extensions},
		{"churn", "Per-event control cost under sustained churn (§6.2)", Churn},
		{"msgsizes", "Join-message sizes vs finger count (§6.3)", MsgSizes},
		{"composite", "Two-level system end to end (Alg. 1 + §4)", Composite},
		{"ablation", "Design-choice ablations (successor groups, caching, fingers)", Ablations},
		{"scaling", "Routing state, stretch, and cache hits vs N (compact sharded ring)", Scaling},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
