package experiments

import (
	"math"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
	"rofl/internal/vring"
)

// Scaling sweeps ring population N over Config.ScaleSweep on one fixed
// AS1221-like router fabric and reports how routing state, stretch, and
// pointer-cache effectiveness move with N — the question the
// compact-routing literature (PAPERS.md: Krioukov et al.) says decides
// whether a flat-label design survives Internet scale. The paper stops
// at a few thousand hosts (Fig 5/6); this driver runs the same ring at
// up to a million hosts on one machine, using the compact sharded
// simulation (vring.CompactRing over sim.ShardedEngine).
//
// Shard count is a fixed config knob, never derived from Workers or
// core count: sharded runs are byte-identical at any shard count, and
// tables must be byte-identical at any Workers value, so neither may
// leak into the output. Probes run serially after convergence.
func Scaling(cfg Config) Table {
	sweep := cfg.ScaleSweep
	if len(sweep) == 0 {
		sweep = []int{10000, 100000, 1000000}
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 4
	}
	tab := Table{
		ID:    "scaling",
		Title: "Routing state, stretch, and cache hits vs N (compact sharded ring)",
		Columns: []string{
			"hosts", "shards", "converge_vms", "ctl_msgs/host",
			"ring_B/host", "total_B/host", "stretch_p50", "stretch_p99",
			"cache_hit", "join_msgs_p50",
		},
	}
	isp := topology.GenISP(topology.AS1221)

	type point struct {
		ringPerHost, totalPerHost, p50, p99 float64
	}
	var pts []point
	for i, n := range sweep {
		rcfg := vring.DefaultCompactConfig()
		rcfg.Hosts = n
		rcfg.EphemeralEvery = 100
		rcfg.Shards = shards
		rcfg.Seed = sim.TrialSeed(cfg.Seed, i)
		r := vring.NewCompactRing(isp, rcfg)
		end := r.Run()

		// Serial measurement phase: data probes between seeded member
		// pairs, then join probes for fresh identifiers.
		pairs := cfg.Pairs
		if pairs <= 0 {
			pairs = 200
		}
		state := uint64(rcfg.Seed) ^ 0x5ca1ab1e
		for p := 0; p < pairs; p++ {
			from := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
			to := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
			if _, err := r.Probe(from, r.IDOf(to)); err != nil {
				tab.Note("probe error at N=%d: %v", n, err)
			}
		}
		joins := pairs / 4
		if joins < 1 {
			joins = 1
		}
		for p := 0; p < joins; p++ {
			from := ident.Handle(sim.SplitMix64(&state) % uint64(r.Members()))
			if _, err := r.ProbeJoin(from, ident.FromUint64(sim.SplitMix64(&state))); err != nil {
				tab.Note("join probe error at N=%d: %v", n, err)
			}
		}

		f := r.Footprint()
		pm := r.ProbeMetrics()
		stretch := sim.Summarize(pm.Samples(vring.SampleCompactStretch))
		join := sim.Summarize(pm.Samples(vring.SampleCompactJoinMsgs))
		hit := pm.Counter(vring.CtrCompactCacheHit)
		miss := pm.Counter(vring.CtrCompactCacheMiss)
		hitRate := 0.0
		if hit+miss > 0 {
			hitRate = float64(hit) / float64(hit+miss)
		}
		ringPerHost := f.RingBytesPerHost(r.Members())
		totalPerHost := float64(f.Total()) / float64(f.Hosts)
		tab.AddRow(
			n, shards, float64(end),
			float64(r.Metrics().Counter(vring.MsgCompactControl))/float64(n),
			ringPerHost, totalPerHost,
			stretch.P50, stretch.P99, hitRate, join.P50,
		)
		pts = append(pts, point{ringPerHost, totalPerHost, stretch.P50, stretch.P99})
	}

	if len(pts) >= 2 {
		first, last := pts[0], pts[len(pts)-1]
		nRatio := float64(sweep[len(sweep)-1]) / float64(sweep[0])
		tab.Note("ring state %.1f -> %.1f B/host over a %.0fx host sweep: O(1) per-host state, vs the O(sqrt n) lower bound (~%.0f entries at N=%d) compact routing pays for stretch<3",
			first.ringPerHost, last.ringPerHost, nRatio,
			math.Sqrt(float64(sweep[len(sweep)-1])), sweep[len(sweep)-1])
		tab.Note("stretch p50 %.2f -> %.2f and p99 %.2f -> %.2f across the sweep; ROFL buys O(1) state with unbounded worst-case stretch, the Fig 6a trade at scale",
			first.p50, last.p50, first.p99, last.p99)
	}
	return tab
}
