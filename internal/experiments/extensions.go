package experiments

import (
	"fmt"
	"math/rand"

	"rofl/internal/canon"
	"rofl/internal/delivery"
	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
	"rofl/internal/vring"
)

// Extensions quantifies the §5 extensions the paper describes
// qualitatively: anycast delivery without extra state, multicast tree
// efficiency vs unicast fan-out, and endpoint path negotiation cutting
// post-first-packet stretch to ~1 (§5.1/§5.2/§6.3 "stretch for remaining
// packets can be reduced to one").
func Extensions(cfg Config) Table {
	t := Table{
		ID:      "extensions",
		Title:   "§5 extensions: anycast, multicast, path negotiation",
		Columns: []string{"mechanism", "metric", "value"},
	}
	// The three mechanisms are independent trials (each builds its own
	// network); their sub-tables assemble in mechanism order.
	subs := []func(Config, *Table){extAnycast, extMulticast, extNegotiation}
	parts := make([]Table, len(subs))
	forTrials(cfg, len(subs), func(trial int) {
		subs[trial](cfg, &parts[trial])
	})
	for _, p := range parts {
		t.Rows = append(t.Rows, p.Rows...)
		t.Notes = append(t.Notes, p.Notes...)
	}
	return t
}

func extAnycast(cfg Config, t *Table) {
	ic := topology.AS3967
	if ic.Hosts > cfg.HostsPerISP {
		ic.Hosts = cfg.HostsPerISP
	}
	isp := topology.GenISP(ic)
	m := sim.NewMetrics()
	n := vring.New(isp.Graph, m, vring.DefaultOptions())
	rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 0)))
	if _, err := joinHosts(n, isp, ic.Hosts/2, rng); err != nil {
		panic(err)
	}
	g := ident.GroupFromString("ext-anycast")
	any := delivery.NewAnycast(n, g)
	joinBefore := m.Counter(vring.MsgJoin)
	const members = 6
	for i := 0; i < members; i++ {
		// Suffixes spread uniformly over the 32-bit space: each member's
		// anycast catchment is the interval between suffixes, so even
		// spacing is the i3-style load-balancing knob §5.2 alludes to.
		suffix := uint32(i) * (1 << 31 / members * 2)
		if _, err := any.AddMember(suffix, isp.Access[(i*11)%len(isp.Access)]); err != nil {
			panic(err)
		}
	}
	extraState := m.Counter(vring.MsgJoin) - joinBefore
	picker := newHostPicker(isp)
	var hops float64
	served := map[vring.RouterID]int{}
	const sends = 300
	for i := 0; i < sends; i++ {
		out, err := any.Send(picker.pick(rng), rng)
		if err != nil {
			panic(err)
		}
		hops += float64(out.Msgs)
		served[out.Final]++
	}
	// Spread: fraction served by the busiest replica (1/members = even).
	max := 0
	for _, c := range served {
		if c > max {
			max = c
		}
	}
	t.AddRow("anycast", "members", members)
	t.AddRow("anycast", "join-msgs-total (== ordinary joins)", extraState)
	t.AddRow("anycast", "avg-hops-to-nearest", hops/sends)
	t.AddRow("anycast", "busiest-replica-share", float64(max)/sends)
}

func extMulticast(cfg Config, t *Table) {
	ic := topology.AS3967
	if ic.Hosts > cfg.HostsPerISP {
		ic.Hosts = cfg.HostsPerISP
	}
	isp := topology.GenISP(ic)
	m := sim.NewMetrics()
	n := vring.New(isp.Graph, m, vring.DefaultOptions())
	rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 1)))
	if _, err := joinHosts(n, isp, ic.Hosts/2, rng); err != nil {
		panic(err)
	}
	g := ident.GroupFromString("ext-multicast")
	mc := delivery.NewMulticast(n, g, m)
	const members = 10
	for i := 0; i < members; i++ {
		if err := mc.Join(uint32(i+1), isp.Access[(i*7+3)%len(isp.Access)]); err != nil {
			panic(err)
		}
	}
	reached, treeMsgs, err := mc.Send(g.Member(1))
	if err != nil {
		panic(err)
	}
	src, _ := n.HostingRouter(g.Member(1))
	unicast := 0
	for i := 2; i <= members; i++ {
		res, err := n.Route(src, g.Member(uint32(i)))
		if err != nil {
			panic(err)
		}
		unicast += res.Hops
	}
	t.AddRow("multicast", "members-reached", fmt.Sprintf("%d/%d", len(reached), members))
	t.AddRow("multicast", "tree-send-msgs", treeMsgs)
	t.AddRow("multicast", "unicast-fanout-msgs", unicast)
	t.AddRow("multicast", "tree-savings", fmt.Sprintf("%.1fx", float64(unicast)/float64(treeMsgs)))
}

func extNegotiation(cfg Config, t *Table) {
	g := genASGraph(cfg)
	in := canon.New(g, sim.NewMetrics(), canon.DefaultOptions())
	ids, err := joinInter(in, g, cfg.InterHosts/4, canon.Multihomed, sim.TrialSeed(cfg.Seed, 2), "ext-neg")
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(sim.TrialSeed(cfg.Seed, 2) + 9))
	var firstHops, nextHops, setSize float64
	var count int
	for i := 0; i < cfg.Pairs/4; i++ {
		src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if src == dst {
			continue
		}
		neg, err := in.Negotiate(src, dst, nil)
		if err != nil {
			continue
		}
		path, err := in.RouteNegotiated(neg)
		if err != nil {
			continue
		}
		firstHops += float64(neg.FirstPacket.ASHops)
		nextHops += float64(len(path) - 1)
		setSize += float64(len(neg.Allowed))
		count++
	}
	fc := float64(count)
	t.AddRow("negotiation", "sessions", count)
	t.AddRow("negotiation", "first-packet-hops-avg", firstHops/fc)
	t.AddRow("negotiation", "negotiated-hops-avg", nextHops/fc)
	t.AddRow("negotiation", "negotiated-set-ASes-avg", setSize/fc)
	t.Note("after the first packet, negotiated sessions route at policy-path cost — the paper's 'stretch for remaining packets can be reduced to one' (§6.3)")
}
