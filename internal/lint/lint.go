// Package lint is ROFL's project-specific static-analysis suite. It
// enforces invariants no stock linter knows about — the properties the
// reproduction's correctness arguments lean on:
//
//   - determinism: the simulation, experiment, and netem fault-schedule
//     paths must be pure functions of their seeds (no wall clock, no
//     global math/rand, no map-iteration order leaking into output, no
//     select races);
//   - lockorder: overlay and vring code must never perform a blocking
//     operation (transport send/recv, channel op, sleep) while holding a
//     mutex;
//   - wirecomplete: every field of a wire message struct must be written
//     by its encoder and read by its decoder, and wire types must not be
//     constructed with unkeyed composite literals;
//   - identcmp: flat labels are points on a circle; linear byte-order
//     comparisons of ident.ID outside the ident package are forbidden
//     unless they are documented tie-breaks or sorted-storage probes;
//   - hotpath: functions annotated //rofllint:hotpath and everything
//     statically reachable from them must be allocation-free — the
//     static, whole-graph version of the AllocsPerRun spot checks;
//   - metricname: metric handles are nil-safe, so a typo'd series name
//     silently no-ops; every Registry resolution and EventLog event
//     type must be a constant from the package's //rofllint:metrics
//     catalog, cross-checked against DESIGN.md §9;
//   - atomicmix: a field ever touched via sync/atomic must never be
//     read or written plainly;
//   - golifetime: every go statement in the runtime packages must be
//     provably joined (deferred WaitGroup.Done or stop-channel select).
//
// The framework is a deliberately small, dependency-free subset of
// golang.org/x/tools/go/analysis (the container builds offline), sharing
// its shape: an Analyzer runs over a type-checked package via a Pass and
// reports Diagnostics. cmd/rofllint is the multichecker driver; each
// analyzer ships an analysistest-style golden corpus under testdata/.
//
// Findings can be suppressed, one site at a time, with an audited
// directive placed on the offending line or the line above:
//
//	//rofllint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory: a suppression without a justification is
// itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is the one-line invariant the analyzer enforces.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ImportPath is the package's import path (the corpus package name
	// under analysistest).
	ImportPath string
	// Prog is the whole loaded program: every package the driver
	// loaded, indexed into the conservative call graph. Intraprocedural
	// analyzers ignore it; the callgraph-aware ones (hotpath,
	// golifetime, metricname) resolve cross-package facts through it.
	Prog *Program

	diags []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders a diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// --- Ignore directives ----------------------------------------------------

var directiveRe = regexp.MustCompile(`^//rofllint:ignore\s+(\S+)(?:\s+(.*))?$`)

// ignoreDirective is one parsed //rofllint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool
	reason    string
}

// parseDirectives extracts ignore directives from a file's comments.
// Malformed directives (missing reason) are returned separately as
// diagnostics so suppressions stay audited.
func parseDirectives(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(m[2])
				if reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "rofllint",
						Message:  "ignore directive without a reason: every suppression must say why the invariant holds anyway",
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(n)] = true
				}
				dirs = append(dirs, ignoreDirective{pos: pos, analyzers: names, reason: reason})
			}
		}
	}
	return dirs, bad
}

// suppressed reports whether d is covered by a directive on its own line
// or on the line immediately above (the standalone-comment form).
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// RunAnalyzer applies a to pkg and returns the surviving diagnostics:
// findings not covered by an ignore directive, plus one diagnostic per
// malformed directive. prog is the whole loaded program (the call graph
// spanning every package the driver loaded); pass it even when running
// a single analyzer over a single package so the callgraph-aware
// analyzers can resolve cross-package reachability.
func RunAnalyzer(a *Analyzer, prog *Program, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		ImportPath: pkg.ImportPath,
		Prog:       prog,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	dirs, bad := parseDirectives(pkg.Fset, pkg.Files)
	out := append([]Diagnostic(nil), bad...)
	for _, d := range pass.diags {
		if !suppressed(d, dirs) {
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// --- Suite ----------------------------------------------------------------

// ScopedAnalyzer pairs an analyzer with the predicate deciding which
// packages it applies to, keyed by import path.
type ScopedAnalyzer struct {
	Analyzer *Analyzer
	// Applies reports whether the analyzer runs on the package with the
	// given import path.
	Applies func(importPath string) bool
}

// Suite returns rofllint's analyzers with their package scopes:
//
//   - determinism runs on the seeded-RNG packages (sim, experiments,
//     netem, proto) and the observability/supervision packages
//     (telemetry, cluster), whose outputs must be pure functions of
//     their seeds — metric scrapes, churn schedules, and journals are
//     compared byte-for-byte across runs; the proto core in particular
//     promises identical transitions across drivers, so any ambient
//     clock or RNG in it is a bug by contract;
//   - lockorder runs on the concurrent protocol packages (overlay,
//     vring) and on telemetry and cluster, which hold locks around
//     registry and supervisor state;
//   - wirecomplete and identcmp run everywhere (identcmp excludes the
//     ident package itself, which implements the comparison helpers);
//   - hotpath and atomicmix run everywhere: hot-path reachability
//     crosses package boundaries (wire, vring, ident, telemetry are all
//     reachable from the overlay's read loop), and atomic discipline is
//     a property of any field anywhere;
//   - metricname runs on the packages that resolve telemetry series and
//     emit events (overlay, cluster, netem);
//   - golifetime runs on the goroutine-spawning runtime packages
//     (overlay, cluster, telemetry), where the supervisor restarts
//     nodes across incarnations and a leaked goroutine per churn event
//     would be an unbounded leak, and on proto, whose purity contract
//     forbids spawning goroutines at all.
func Suite() []ScopedAnalyzer {
	return []ScopedAnalyzer{
		{DeterminismAnalyzer, pathIsAny("rofl/internal/sim", "rofl/internal/experiments", "rofl/internal/netem", "rofl/internal/telemetry", "rofl/internal/cluster", "rofl/internal/proto")},
		{LockOrderAnalyzer, pathIsAny("rofl/internal/overlay", "rofl/internal/vring", "rofl/internal/telemetry", "rofl/internal/cluster")},
		{WireCompleteAnalyzer, func(string) bool { return true }},
		{IdentCmpAnalyzer, func(p string) bool { return p != "rofl/internal/ident" }},
		{HotPathAnalyzer, func(string) bool { return true }},
		{MetricNameAnalyzer, pathIsAny("rofl/internal/overlay", "rofl/internal/cluster", "rofl/internal/netem")},
		{AtomicMixAnalyzer, func(string) bool { return true }},
		{GoLifetimeAnalyzer, pathIsAny("rofl/internal/overlay", "rofl/internal/cluster", "rofl/internal/telemetry", "rofl/internal/proto")},
	}
}

func pathIsAny(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, want := range paths {
			if p == want || strings.HasPrefix(p, want+"/") {
				return true
			}
		}
		return false
	}
}
