package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotPathAnalyzer statically proves the forwarding fast path
// allocation-free. Functions annotated //rofllint:hotpath are roots;
// they and everything statically reachable from them (stopping at
// //rofllint:coldpath boundaries) must not allocate. The analyzer flags
// the allocation *sites* the Go compiler would lower to heap
// operations:
//
//   - address-of composite literals and slice/map composite literals;
//   - make, new, and append to a fresh (nil or literal) slice;
//   - string concatenation and string<->[]byte conversions;
//   - fmt calls (interface boxing plus formatting buffers);
//   - closures stored beyond the enclosing call (returned, sent on a
//     channel, or assigned to a field);
//   - go statements (a goroutine per packet is an allocation per
//     packet);
//   - calls the graph cannot follow: interface method calls, calls
//     through function values, and calls into stdlib packages outside a
//     small allocation-free allowlist.
//
// Allocations performed only while constructing a returned error are
// exempt: error paths leave the steady state by definition, and the
// zero-alloc benchmarks never see them.
//
// The analyzer also pins the annotation set itself: the hot-path roots
// named in requiredHotRoots must carry //rofllint:hotpath, so deleting
// an annotation — silently shrinking the checked graph — is itself a
// finding.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "functions reachable from //rofllint:hotpath roots must be allocation-free",
	Run:  runHotPath,
}

// requiredHotRoots pins the annotation set: per import path, the
// methods (Type.Name or (*Type).Name) that must carry the
// //rofllint:hotpath annotation. Removing an annotation from any of
// these makes the analyzer fail rather than silently shrinking the
// checked graph.
var requiredHotRoots = map[string][]string{
	"rofl/internal/overlay": {"(*Node).readLoop", "(*Node).handle"},
	"rofl/internal/proto":   {"(*Core).HandlePacket", "(*peerSet).bestProgress"},
	"rofl/internal/wire":    {"(*Packet).Marshal", "(*Packet).DecodeFromBytes"},
	"rofl/internal/vring":   {"(*PointerCache).Lookup", "(*CompactRing).HandleMsg"},
	"rofl/internal/sim": {
		"(*ShardContext).Send",
		"(*ShardedEngine).ownerOf",
		"(*msgHeap).push", "(*msgHeap).pop",
		"SplitMix64",
	},
	"rofl/internal/telemetry": {
		"(*Counter).Inc", "(*Counter).Add",
		"(*Gauge).Set", "(*Gauge).Add",
		"(*Histogram).Observe",
	},
}

// allocFreePkgs are stdlib packages whose hot-path-relevant entry
// points do not allocate: synchronization primitives, atomics, pure
// math, in-place sorting/searching, and fixed-width binary encoding.
var allocFreePkgs = map[string]bool{
	"sync":            true,
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"sort":            true,
	"encoding/binary": true,
}

// allocFreeFuncs allowlists individual stdlib functions from packages
// that are not allocation-free as a whole (bytes.Clone allocates;
// bytes.Compare does not). Keys are funcKey strings.
var allocFreeFuncs = map[string]bool{
	"bytes.Compare":     true,
	"bytes.Equal":       true,
	"bytes.IndexByte":   true,
	"strings.IndexByte": true,
}

func runHotPath(pass *Pass) error {
	if pass.Prog == nil {
		return errNoProgram
	}
	hot := pass.Prog.HotSet()

	// Annotation hygiene for this package's declarations.
	var funcs []*FuncInfo
	for _, fi := range pass.Prog.Funcs {
		if fi.Pkg.ImportPath != pass.ImportPath {
			continue
		}
		funcs = append(funcs, fi)
		if fi.BadCold {
			pass.Reportf(fi.Decl.Pos(), "coldpath annotation without a reason: say why %s is off the steady-state path", fi.Fn.Name())
		}
		if fi.Hot && fi.Cold {
			pass.Reportf(fi.Decl.Pos(), "%s is annotated both hotpath and coldpath; pick one", fi.Fn.Name())
		}
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Decl.Pos() < funcs[j].Decl.Pos() })

	// The pinned roots must still be annotated.
	prefix := pass.ImportPath + "."
	for _, name := range requiredHotRoots[pass.ImportPath] {
		fi := pass.Prog.Funcs[prefix+name]
		switch {
		case fi == nil:
			if len(pass.Files) > 0 {
				pass.Reportf(pass.Files[0].Name.Pos(), "required hot-path root %s.%s not found; update requiredHotRoots if it was renamed", pass.ImportPath, name)
			}
		case !fi.Hot:
			pass.Reportf(fi.Decl.Pos(), "%s is a required hot-path root and must carry //rofllint:hotpath", name)
		}
	}

	for _, fi := range funcs {
		if hot[fi.Key] {
			scanHotFunc(pass, fi)
		}
	}
	return nil
}

// scanHotFunc flags every allocation site in one hot function's body.
func scanHotFunc(pass *Pass, fi *FuncInfo) {
	body := fi.Decl.Body
	var exempt []ast.Node
	if sig, ok := fi.Fn.Type().(*types.Signature); ok {
		errorReturnRanges(pass, body, sig, &exempt)
	}
	inExempt := func(n ast.Node) bool {
		for _, r := range exempt {
			if enclosesPos(r, n) {
				return true
			}
		}
		return false
	}
	escaping := escapingFuncLits(body)
	local := localFuncLits(pass, body)
	reported := map[ast.Node]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inExempt(n) {
			// Allocations while constructing a returned error are off
			// the steady-state path; skip the whole return statement.
			return false
		}
		switch nn := n.(type) {
		case *ast.UnaryExpr:
			if lit, ok := nn.X.(*ast.CompositeLit); ok && nn.Op == token.AND {
				pass.Reportf(nn.Pos(), "address of composite literal escapes to the heap in hot function %s", fi.Fn.Name())
				reported[lit] = true
			}
		case *ast.CompositeLit:
			if reported[nn] {
				return true
			}
			switch pass.TypeOf(nn).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(nn.Pos(), "slice literal allocates a new backing array in hot function %s", fi.Fn.Name())
			case *types.Map:
				pass.Reportf(nn.Pos(), "map literal allocates in hot function %s", fi.Fn.Name())
			}
		case *ast.CallExpr:
			checkHotCall(pass, fi, nn, local)
		case *ast.BinaryExpr:
			if nn.Op == token.ADD && isStringType(pass.TypeOf(nn)) {
				pass.Reportf(nn.Pos(), "string concatenation allocates in hot function %s", fi.Fn.Name())
			}
		case *ast.GoStmt:
			pass.Reportf(nn.Pos(), "go statement in hot function %s allocates a goroutine per call", fi.Fn.Name())
		case *ast.FuncLit:
			if escaping[nn] {
				pass.Reportf(nn.Pos(), "closure stored beyond the call allocates in hot function %s", fi.Fn.Name())
			}
		}
		return true
	})
}

// checkHotCall classifies one call expression inside a hot function.
// local holds variables bound to function literals inside the same body,
// whose call sites are covered by the enclosing scan.
func checkHotCall(pass *Pass, fi *FuncInfo, call *ast.CallExpr, local map[types.Object]bool) {
	// Type conversions: only string<->[]byte/[]rune copy.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && allocatingConversion(pass.TypeOf(call.Args[0]), pass.TypeOf(call)) {
			pass.Reportf(call.Pos(), "conversion between string and byte slice copies and allocates in hot function %s", fi.Fn.Name())
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hot function %s", fi.Fn.Name())
			case "new":
				pass.Reportf(call.Pos(), "new allocates in hot function %s", fi.Fn.Name())
			case "append":
				if len(call.Args) > 0 && freshSliceExpr(pass, call.Args[0]) {
					pass.Reportf(call.Pos(), "append to a fresh slice allocates a new backing array in hot function %s; reuse a buffer", fi.Fn.Name())
				}
			}
			return
		}
		// A call through a variable bound to a function literal in this
		// same body: the literal's body is inside the scan already.
		if obj := pass.Info.Uses[id]; obj != nil && local[obj] {
			return
		}
	}
	// An immediately-invoked literal's body is inside the scan already.
	if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
		return
	}
	callee := calleeOf(pass.Info, call)
	if callee == nil {
		pass.Reportf(call.Pos(), "dynamic call through a function value in hot function %s cannot be proven allocation-free", fi.Fn.Name())
		return
	}
	key := funcKey(callee)
	if _, inModule := pass.Prog.Funcs[key]; inModule {
		// Module function: it is in the hot set itself (and scanned in
		// its own package's pass) unless pruned by //rofllint:coldpath.
		return
	}
	if isInterfaceMethod(callee) {
		pass.Reportf(call.Pos(), "interface method call %s in hot function %s dispatches dynamically and cannot be proven allocation-free", callee.Name(), fi.Fn.Name())
		return
	}
	pkg := callee.Pkg()
	if pkg == nil || allocFreePkgs[pkg.Path()] || allocFreeFuncs[key] {
		return
	}
	if pkg.Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s formats through interfaces and allocates in hot function %s", callee.Name(), fi.Fn.Name())
		return
	}
	pass.Reportf(call.Pos(), "call into %s.%s in hot function %s is outside the allocation-free allowlist", pkg.Path(), callee.Name(), fi.Fn.Name())
}

// localFuncLits collects variables defined (:=) directly as function
// literals inside body. Calls through them are covered by the body scan
// itself, so checkHotCall treats them as transparent.
func localFuncLits(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, rhs := range as.Rhs {
			if _, isLit := rhs.(*ast.FuncLit); !isLit || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// errorReturnRanges collects return statements that construct a non-nil
// error, recursing into function literals with their own signatures.
func errorReturnRanges(pass *Pass, body *ast.BlockStmt, sig *types.Signature, out *[]ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			if s, ok := pass.TypeOf(nn).(*types.Signature); ok {
				errorReturnRanges(pass, nn.Body, s, out)
			}
			return false
		case *ast.ReturnStmt:
			if returnsNonNilError(pass, nn, sig) {
				*out = append(*out, nn)
			}
		}
		return true
	})
}

// returnsNonNilError reports whether ret returns a non-nil value in an
// error-typed result position.
func returnsNonNilError(pass *Pass, ret *ast.ReturnStmt, sig *types.Signature) bool {
	if sig == nil || sig.Results() == nil || len(ret.Results) == 0 {
		return false
	}
	res := sig.Results()
	// f() returning (T, error) forwarded as a single call expression.
	if len(ret.Results) == 1 && res.Len() > 1 {
		return isErrorType(res.At(res.Len() - 1).Type())
	}
	for i, e := range ret.Results {
		if i >= res.Len() || !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		return true
	}
	return false
}

// escapingFuncLits marks closures stored beyond their enclosing call:
// returned, sent on a channel, placed in a composite literal, or
// assigned through a selector/index. Closures passed as call arguments
// or bound to plain local variables are left to the callee/body scan.
func escapingFuncLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	esc := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range nn.Results {
				if fl, ok := e.(*ast.FuncLit); ok {
					esc[fl] = true
				}
			}
		case *ast.SendStmt:
			if fl, ok := nn.Value.(*ast.FuncLit); ok {
				esc[fl] = true
			}
		case *ast.CompositeLit:
			for _, e := range nn.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if fl, ok := e.(*ast.FuncLit); ok {
					esc[fl] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range nn.Rhs {
				fl, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(nn.Lhs) {
					continue
				}
				if _, plain := nn.Lhs[i].(*ast.Ident); !plain {
					esc[fl] = true
				}
			}
		}
		return true
	})
	return esc
}

// freshSliceExpr reports whether e denotes a slice with no existing
// backing array: nil, a nil conversion like []byte(nil), or a composite
// literal.
func freshSliceExpr(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	if _, ok := e.(*ast.CompositeLit); ok {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return freshSliceExpr(pass, call.Args[0])
		}
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// allocatingConversion reports whether converting from into to copies
// through a fresh allocation (string <-> []byte/[]rune).
func allocatingConversion(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	return (isStringType(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isStringType(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
