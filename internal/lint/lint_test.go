package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T)  { RunTest(t, DeterminismAnalyzer) }
func TestLockOrder(t *testing.T)    { RunTest(t, LockOrderAnalyzer) }
func TestWireComplete(t *testing.T) { RunTest(t, WireCompleteAnalyzer) }
func TestIdentCmp(t *testing.T)     { RunTest(t, IdentCmpAnalyzer) }

// A suppression without a reason is itself a diagnostic: suppressions
// stay audited.
func TestDirectiveRequiresReason(t *testing.T) {
	src := `package p

func f() {
	//rofllint:ignore determinism
	_ = 1
	//rofllint:ignore determinism,lockorder the schedule is wall-clock by design
	_ = 2
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs, bad := parseDirectives(fset, []*ast.File{f})
	if len(bad) != 1 {
		t.Fatalf("want 1 malformed-directive diagnostic, got %d: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, "without a reason") {
		t.Errorf("unexpected message: %s", bad[0].Message)
	}
	if len(dirs) != 1 {
		t.Fatalf("want 1 well-formed directive, got %d", len(dirs))
	}
	if !dirs[0].analyzers["determinism"] || !dirs[0].analyzers["lockorder"] {
		t.Errorf("directive should cover both analyzers: %v", dirs[0].analyzers)
	}
}

// The suite's scopes must route each analyzer to its packages.
func TestSuiteScopes(t *testing.T) {
	byName := map[string]ScopedAnalyzer{}
	for _, sa := range Suite() {
		byName[sa.Analyzer.Name] = sa
	}
	cases := []struct {
		analyzer string
		path     string
		want     bool
	}{
		{"determinism", "rofl/internal/sim", true},
		{"determinism", "rofl/internal/netem", true},
		{"determinism", "rofl/internal/overlay", false},
		{"lockorder", "rofl/internal/overlay", true},
		{"lockorder", "rofl/internal/vring", true},
		{"lockorder", "rofl/internal/sim", false},
		{"wirecomplete", "rofl/internal/wire", true},
		{"wirecomplete", "rofl/internal/canon", true},
		{"identcmp", "rofl/internal/ident", false},
		{"identcmp", "rofl/internal/canon", true},
	}
	for _, c := range cases {
		sa, ok := byName[c.analyzer]
		if !ok {
			t.Fatalf("suite is missing analyzer %s", c.analyzer)
		}
		if got := sa.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}
