package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestDeterminism(t *testing.T)  { RunTest(t, DeterminismAnalyzer) }
func TestLockOrder(t *testing.T)    { RunTest(t, LockOrderAnalyzer) }
func TestWireComplete(t *testing.T) { RunTest(t, WireCompleteAnalyzer) }
func TestIdentCmp(t *testing.T)     { RunTest(t, IdentCmpAnalyzer) }
func TestHotPath(t *testing.T)      { RunTest(t, HotPathAnalyzer) }
func TestMetricName(t *testing.T)   { RunTest(t, MetricNameAnalyzer) }
func TestAtomicMix(t *testing.T)    { RunTest(t, AtomicMixAnalyzer) }
func TestGoLifetime(t *testing.T)   { RunTest(t, GoLifetimeAnalyzer) }

// checkSource type-checks one import-free source file into a Package
// for tests that need a program smaller than a corpus.
func checkSource(t *testing.T, importPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, importPath+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := (&types.Config{}).Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: importPath, Dir: ".", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// Deleting a //rofllint:hotpath annotation from a pinned root must be a
// finding: the checked graph must not silently shrink.
func TestHotPathRequiredRoots(t *testing.T) {
	old := requiredHotRoots
	requiredHotRoots = map[string][]string{
		"roots": {"(*T).Fast", "(*T).Gone", "(*T).Missing"},
	}
	defer func() { requiredHotRoots = old }()

	pkg := checkSource(t, "roots", `package roots

type T struct{}

//rofllint:hotpath
func (t *T) Fast() {}

func (t *T) Gone() {}
`)
	diags, err := RunAnalyzer(HotPathAnalyzer, NewProgram([]*Package{pkg}), pkg)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "(*T).Gone is a required hot-path root and must carry //rofllint:hotpath") {
		t.Errorf("missing un-annotated-root finding in:\n%s", joined)
	}
	if !strings.Contains(joined, "required hot-path root roots.(*T).Missing not found") {
		t.Errorf("missing missing-root finding in:\n%s", joined)
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 findings, got %d:\n%s", len(diags), joined)
	}
}

// loadRepo loads and indexes the real module once for the tests that
// assert whole-repo properties.
var loadRepo = sync.OnceValues(func() (*Program, error) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		return nil, err
	}
	return NewProgram(pkgs), nil
})

// The committed repository must be lint-clean: the full suite over the
// full module yields zero findings. This is the same run CI performs
// via cmd/rofllint, kept as a test so `go test ./...` catches
// regressions without a separate driver invocation.
func TestModuleLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	prog, err := loadRepo()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Packages {
		for _, sa := range Suite() {
			if !sa.Applies(pkg.ImportPath) {
				continue
			}
			diags, err := RunAnalyzer(sa.Analyzer, prog, pkg)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		}
	}
}

// Every catalog constant must be documented in DESIGN.md §9.
func TestCrossCheckDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	prog, err := loadRepo()
	if err != nil {
		t.Fatal(err)
	}
	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Catalogs()) == 0 {
		t.Fatal("no //rofllint:metrics catalogs found in the module; the overlay and netem instrument catalogs should be annotated")
	}
	for _, d := range CrossCheckDesign(prog, design) {
		t.Errorf("%s", d)
	}
}

// The suppression surface is budgeted: per-analyzer ignore counts must
// match the committed golden file, so growing the budget is a reviewed
// diff, not drift.
func TestIgnoreBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	prog, err := loadRepo()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../../lint.budget")
	if err != nil {
		t.Fatal(err)
	}
	counts := CountIgnores(prog)
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, counts[k])
	}
	if got, want := b.String(), string(golden); got != want {
		t.Errorf("ignore budget drifted from lint.budget; if the new suppressions are justified, update the golden file\ngot:\n%swant:\n%s", got, want)
	}
}

// A suppression without a reason is itself a diagnostic: suppressions
// stay audited.
func TestDirectiveRequiresReason(t *testing.T) {
	src := `package p

func f() {
	//rofllint:ignore determinism
	_ = 1
	//rofllint:ignore determinism,lockorder the schedule is wall-clock by design
	_ = 2
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs, bad := parseDirectives(fset, []*ast.File{f})
	if len(bad) != 1 {
		t.Fatalf("want 1 malformed-directive diagnostic, got %d: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, "without a reason") {
		t.Errorf("unexpected message: %s", bad[0].Message)
	}
	if len(dirs) != 1 {
		t.Fatalf("want 1 well-formed directive, got %d", len(dirs))
	}
	if !dirs[0].analyzers["determinism"] || !dirs[0].analyzers["lockorder"] {
		t.Errorf("directive should cover both analyzers: %v", dirs[0].analyzers)
	}
}

// The suite's scopes must route each analyzer to its packages.
func TestSuiteScopes(t *testing.T) {
	byName := map[string]ScopedAnalyzer{}
	for _, sa := range Suite() {
		byName[sa.Analyzer.Name] = sa
	}
	cases := []struct {
		analyzer string
		path     string
		want     bool
	}{
		{"determinism", "rofl/internal/sim", true},
		{"determinism", "rofl/internal/netem", true},
		{"determinism", "rofl/internal/overlay", false},
		{"lockorder", "rofl/internal/overlay", true},
		{"lockorder", "rofl/internal/vring", true},
		{"lockorder", "rofl/internal/sim", false},
		{"wirecomplete", "rofl/internal/wire", true},
		{"wirecomplete", "rofl/internal/canon", true},
		{"identcmp", "rofl/internal/ident", false},
		{"identcmp", "rofl/internal/canon", true},
	}
	for _, c := range cases {
		sa, ok := byName[c.analyzer]
		if !ok {
			t.Fatalf("suite is missing analyzer %s", c.analyzer)
		}
		if got := sa.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}
