package lint

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MetricNameAnalyzer guards the telemetry namespace. Registry handles
// are nil-safe and get-or-create, so a typo'd series name silently
// registers a fresh series nobody reads while the intended one never
// moves — the worst observability failure, because nothing errors. The
// analyzer therefore requires every series resolution
// (Registry.Counter/Gauge/Histogram) and every structured event type
// (EventLog.Emit/Debug/Info/Warn/Error) to be a named constant declared
// in the package's single metric catalog: a const block annotated
//
//	//rofllint:metrics
//
// Inline literals, non-constant names, and constants declared outside
// the catalog are findings. The catalog is additionally cross-checked
// against DESIGN.md §9 by CrossCheckDesign (run by cmd/rofllint and the
// lint tests), closing the loop between code and the documented metric
// namespace.
var MetricNameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc:  "telemetry series and event names must be constants from the package's //rofllint:metrics catalog",
	Run:  runMetricName,
}

// metricsDirective is the catalog annotation on a const block.
const metricsDirective = "//rofllint:metrics"

// catalogConst is one constant declared inside a //rofllint:metrics
// catalog block.
type catalogConst struct {
	Name  string
	Value string // the constant's string value
	Pos   token.Pos
	Pkg   *Package
}

// catalogIndex is one package's catalog: the annotated const blocks and
// the constants they declare.
type catalogIndex struct {
	decls  []*ast.GenDecl
	consts []catalogConst
}

// Catalogs indexes every //rofllint:metrics const block in the program,
// keyed by import path. Computed once per Program.
func (prog *Program) Catalogs() map[string]*catalogIndex {
	prog.catOnce.Do(func() {
		prog.catalogs = make(map[string]*catalogIndex)
		for _, pkg := range prog.Packages {
			idx := &catalogIndex{}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok || gd.Tok != token.CONST || gd.Doc == nil {
						continue
					}
					annotated := false
					for _, c := range gd.Doc.List {
						if strings.HasPrefix(c.Text, metricsDirective) {
							annotated = true
							break
						}
					}
					if !annotated {
						continue
					}
					idx.decls = append(idx.decls, gd)
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							cn, ok := pkg.Info.Defs[name].(*types.Const)
							if !ok || cn.Val() == nil || cn.Val().Kind() != constant.String {
								continue
							}
							idx.consts = append(idx.consts, catalogConst{
								Name:  name.Name,
								Value: constant.StringVal(cn.Val()),
								Pos:   name.Pos(),
								Pkg:   pkg,
							})
						}
					}
				}
			}
			if len(idx.decls) > 0 {
				prog.catalogs[pkg.ImportPath] = idx
			}
		}
	})
	return prog.catalogs
}

func runMetricName(pass *Pass) error {
	if pass.Prog == nil {
		return errNoProgram
	}
	catalogs := pass.Prog.Catalogs()

	// Single-catalog rule: one annotated block per package, reported in
	// the owning package's pass.
	if idx := catalogs[pass.ImportPath]; idx != nil {
		for _, extra := range idx.decls[1:] {
			pass.Reportf(extra.Pos(), "package %s declares more than one //rofllint:metrics catalog; merge them into a single const block", pass.ImportPath)
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg, kind, ok := telemetryNameArg(pass, call)
			if !ok {
				return true
			}
			checkMetricName(pass, catalogs, arg, kind)
			return true
		})
	}
	return nil
}

// telemetryNameArg recognizes a telemetry resolution or emission and
// returns the expression carrying the series/event name plus a label
// for diagnostics.
func telemetryNameArg(pass *Pass, call *ast.CallExpr) (ast.Expr, string, bool) {
	recv, name, ok := methodCall(pass, call)
	if !ok {
		return nil, "", false
	}
	nt := namedType(pass.TypeOf(recv))
	if nt == nil || nt.Obj().Pkg() == nil || nt.Obj().Pkg().Name() != "telemetry" {
		return nil, "", false
	}
	switch nt.Obj().Name() {
	case "Registry":
		switch name {
		case "Counter", "Gauge", "Histogram":
			if len(call.Args) >= 1 {
				return call.Args[0], "metric series name", true
			}
		}
	case "EventLog":
		switch name {
		case "Emit":
			if len(call.Args) >= 2 {
				return call.Args[1], "event type", true
			}
		case "Debug", "Info", "Warn", "Error":
			if len(call.Args) >= 1 {
				return call.Args[0], "event type", true
			}
		}
	}
	return nil, "", false
}

// checkMetricName enforces the constant-from-catalog rule on one name
// expression.
func checkMetricName(pass *Pass, catalogs map[string]*catalogIndex, arg ast.Expr, kind string) {
	arg = ast.Unparen(arg)
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil {
		pass.Reportf(arg.Pos(), "%s is not a compile-time constant; a typo here silently no-ops forever — use a constant from the //rofllint:metrics catalog", kind)
		return
	}
	// Resolve the referenced constant object.
	var id *ast.Ident
	switch e := arg.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		pass.Reportf(arg.Pos(), "%s is an inline literal; declare it in the //rofllint:metrics catalog so the namespace has one source of truth", kind)
		return
	}
	cn, ok := pass.Info.Uses[id].(*types.Const)
	if !ok || cn.Pkg() == nil {
		pass.Reportf(arg.Pos(), "%s does not resolve to a declared constant; use a constant from the //rofllint:metrics catalog", kind)
		return
	}
	declPkg := pass.Prog.PackageByPath(cn.Pkg().Path())
	if declPkg == nil {
		pass.Reportf(arg.Pos(), "%s constant %s is declared outside the analyzed program; move it into a //rofllint:metrics catalog", kind, id.Name)
		return
	}
	idx := catalogs[declPkg.ImportPath]
	if idx != nil {
		for _, gd := range idx.decls {
			if gd.Pos() <= cn.Pos() && cn.Pos() <= gd.End() {
				return // declared inside the catalog: the sanctioned path
			}
		}
	}
	pass.Reportf(arg.Pos(), "%s constant %s is not declared in the //rofllint:metrics catalog of %s", kind, id.Name, declPkg.ImportPath)
}

// CrossCheckDesign verifies the catalog against the documentation:
// every constant declared in a //rofllint:metrics block must appear in
// the §9 (operations & observability) section of DESIGN.md — metric
// constants by their family (the text before '{'), event constants
// verbatim. A catalog entry missing from the design doc is either an
// undocumented series or a typo on one side; both deserve a finding.
// design is the raw DESIGN.md text; diagnostics carry the "metricname"
// analyzer name so //rofllint:ignore works uniformly.
func CrossCheckDesign(prog *Program, design []byte) []Diagnostic {
	sec := designSection9(design)
	var out []Diagnostic
	for _, path := range sortedCatalogPaths(prog) {
		idx := prog.Catalogs()[path]
		for _, cc := range idx.consts {
			family := cc.Value
			if i := strings.IndexByte(family, '{'); i >= 0 {
				family = family[:i]
			}
			if family == "" || bytes.Contains(sec, []byte(family)) {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      cc.Pkg.Fset.Position(cc.Pos),
				Analyzer: "metricname",
				Message:  "catalog constant " + cc.Name + " (" + family + ") is not documented in DESIGN.md §9; document the series or fix the name",
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// designSection9 slices the §9 section out of DESIGN.md; when the
// heading is missing the whole document is searched.
func designSection9(design []byte) []byte {
	start := bytes.Index(design, []byte("\n## 9."))
	if start < 0 {
		return design
	}
	rest := design[start+1:]
	if end := bytes.Index(rest[3:], []byte("\n## ")); end >= 0 {
		return rest[:3+end]
	}
	return rest
}

func sortedCatalogPaths(prog *Program) []string {
	cats := prog.Catalogs()
	paths := make([]string, 0, len(cats))
	for p := range cats {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}
