package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMixAnalyzer enforces atomic-access discipline: a struct field
// that is ever operated on through the function-style sync/atomic API
// (atomic.AddInt64(&x.f, …), atomic.LoadUint32(&x.f), …) must never be
// read or written plainly anywhere in the program. Mixing the two is a
// data race even when it happens to survive the race detector's
// schedules: the plain access can be torn, cached, or reordered. The
// typed atomics (atomic.Int64 et al.) make this mistake unrepresentable
// — which is why the production code prefers them — but the function
// style keeps showing up in ports and benchmarks, so the invariant is
// checked program-wide: the fact "field F is atomic" is collected
// across every loaded package, then every plain selector access to F is
// flagged.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field ever accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicMix,
}

// AtomicFields returns the set of field keys (pkgpath.Type.Field) whose
// address is passed to a function-style sync/atomic call anywhere in
// the program. Computed once per Program.
func (prog *Program) AtomicFields() map[string]bool {
	prog.atomicOnce.Do(func() {
		prog.atomicFields = make(map[string]bool)
		for _, pkg := range prog.Packages {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, sel := range atomicFieldArgs(pkg.Info, call) {
						if key := fieldSelKey(pkg.Info, sel); key != "" {
							prog.atomicFields[key] = true
						}
					}
					return true
				})
			}
		}
	})
	return prog.atomicFields
}

// atomicFieldArgs returns the field selectors whose address call passes
// to a function-style sync/atomic operation; nil when call is not one.
func atomicFieldArgs(info *types.Info, call *ast.CallExpr) []*ast.SelectorExpr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if sig, isSig := fn.Type().(*types.Signature); !isSig || sig.Recv() != nil {
		return nil // typed-atomic method, not the function-style API
	}
	var out []*ast.SelectorExpr
	for _, arg := range call.Args {
		ue, isAddr := ast.Unparen(arg).(*ast.UnaryExpr)
		if !isAddr || ue.Op != token.AND {
			continue
		}
		if fieldSel, isSel := ast.Unparen(ue.X).(*ast.SelectorExpr); isSel {
			out = append(out, fieldSel)
		}
	}
	return out
}

// fieldSelKey renders a stable identity for a field selection,
// "pkgpath.Type.Field", or "" when sel is not a struct-field access.
// The key intentionally ignores which instance is accessed: the
// invariant is a property of the field declaration, not of one value.
func fieldSelKey(info *types.Info, sel *ast.SelectorExpr) string {
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return ""
	}
	field := selection.Obj()
	if field.Pkg() == nil {
		return ""
	}
	typeName := "?"
	if nt := namedType(selection.Recv()); nt != nil {
		typeName = nt.Obj().Name()
	}
	var b strings.Builder
	b.WriteString(field.Pkg().Path())
	b.WriteByte('.')
	b.WriteString(typeName)
	b.WriteByte('.')
	b.WriteString(field.Name())
	return b.String()
}

func runAtomicMix(pass *Pass) error {
	if pass.Prog == nil {
		return errNoProgram
	}
	atomicFields := pass.Prog.AtomicFields()
	if len(atomicFields) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		// First mark the sanctioned accesses: selectors whose address is
		// a direct argument of a sync/atomic call.
		sanctioned := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				for _, sel := range atomicFieldArgs(pass.Info, call) {
					sanctioned[sel] = true
				}
			}
			return true
		})
		// Then every other access to an atomic field is a plain — racy —
		// access.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			key := fieldSelKey(pass.Info, sel)
			if key == "" || !atomicFields[key] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races with those operations — use the atomic API here too, or migrate the field to a typed atomic", key)
			return true
		})
	}
	return nil
}
