package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrderAnalyzer flags blocking operations performed while a mutex is
// held in the concurrent protocol packages (overlay, vring). The overlay
// convention — shared by every handler — is: lock, read or mutate ring
// state, unlock, then perform I/O. Holding n.mu across a transport send,
// a channel operation, or a sleep couples every other handler's latency
// to the slow path and can deadlock against the read loop feeding the
// same node.
//
// Blocking operations are: channel send/receive outside a select with a
// default clause, select without a default clause, time.Sleep,
// sync.WaitGroup.Wait / sync.Cond.Wait, Send/Recv calls on
// interface-typed receivers (the netem.Transport surface), and calls to
// same-package functions that (transitively) do any of the above.
//
// The analysis is per function body; each function literal is scanned as
// its own unit with no locks held (a closure runs on its own schedule).
// Defers are skipped: `defer mu.Unlock()` releases at return and must
// not be mistaken for an early release.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "forbid blocking operations (transport I/O, channel ops, sleeps) while a mutex is held",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	blocking := blockingFuncs(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				scanLockRegions(pass, fd.Body, blocking)
			}
		}
	}
	return nil
}

// --- Blocking-function inference -----------------------------------------

// blockingFuncs computes the set of same-package functions that may
// block, to a fixed point: a function blocks if its body contains a
// blocking primitive or a call to another blocking function.
func blockingFuncs(pass *Pass) map[*types.Func]bool {
	bodies := map[*types.Func]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[obj] = fd.Body
			}
		}
	}
	blocking := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, body := range bodies {
			if blocking[fn] {
				continue
			}
			if bodyBlocks(pass, body, blocking) {
				blocking[fn] = true
				changed = true
			}
		}
	}
	return blocking
}

// bodyBlocks reports whether body contains a blocking primitive or a
// call to a known-blocking function, ignoring nested function literals
// (they run on their own goroutine or schedule, not inline).
func bodyBlocks(pass *Pass, body *ast.BlockStmt, blocking map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !hasDefaultClause(n) {
				found = true
			}
			return true // a select with default is non-blocking as a unit
		case *ast.SendStmt:
			if !insideNonblockingSelect(pass, body, n) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !insideNonblockingSelect(pass, body, n) {
				found = true
			}
		case *ast.CallExpr:
			if _, reason := blockingCall(pass, n, blocking); reason != "" {
				found = true
			}
		}
		return !found
	})
	return found
}

// blockingCall classifies a call expression, returning a human-readable
// description of why it blocks (empty if it does not).
func blockingCall(pass *Pass, call *ast.CallExpr, blocking map[*types.Func]bool) (ast.Node, string) {
	if name, ok := pkgFuncCall(pass, call, "time"); ok && name == "Sleep" {
		return call, "time.Sleep"
	}
	if recv, name, ok := methodCall(pass, call); ok {
		rt := pass.TypeOf(recv)
		if rt != nil {
			if name == "Wait" && isSyncWaiter(rt) {
				return call, "sync " + typeShort(rt) + ".Wait"
			}
			// Transport I/O: Send/Recv on an interface value. Concrete
			// same-package methods are covered by the call graph below.
			if _, isIface := rt.Underlying().(*types.Interface); isIface && (name == "Send" || name == "Recv") {
				return call, "interface method " + name + " (transport I/O)"
			}
		}
	}
	// Same-package call to a function known to block.
	if callee := staticCallee(pass, call); callee != nil && callee.Pkg() == pass.Pkg && blocking[callee] {
		return call, "call to blocking " + callee.Name()
	}
	return nil, ""
}

// staticCallee resolves a call to its *types.Func when the callee is a
// statically known function or method, else nil.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.ObjectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isSyncWaiter(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "WaitGroup" || n.Obj().Name() == "Cond"
}

func typeShort(t types.Type) string {
	if n := namedType(t); n != nil {
		return n.Obj().Name()
	}
	return t.String()
}

// hasDefaultClause reports whether a select has a default branch (making
// it a non-blocking poll).
func hasDefaultClause(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// insideNonblockingSelect reports whether node sits in the comm clause
// of a select that has a default branch, within root.
func insideNonblockingSelect(pass *Pass, root ast.Node, node ast.Node) bool {
	inside := false
	ast.Inspect(root, func(n ast.Node) bool {
		if inside {
			return false
		}
		if sel, ok := n.(*ast.SelectStmt); ok && hasDefaultClause(sel) {
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if enclosesPos(cc.Comm, node) {
					inside = true
					return false
				}
			}
		}
		return true
	})
	return inside
}

// --- Held-region tracking -------------------------------------------------

// lockSet is the set of mutexes held at a program point, keyed by the
// source rendering of the lock expression ("n.mu").
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s lockSet) any() string {
	for k := range s {
		return k
	}
	return ""
}

// scanLockRegions walks a function body tracking which mutexes are held
// and reporting blocking operations inside held regions. Nested function
// literals are scanned as independent units.
func scanLockRegions(pass *Pass, body *ast.BlockStmt, blocking map[*types.Func]bool) {
	walkStmts(pass, body.List, lockSet{}, blocking)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			walkStmts(pass, lit.Body.List, lockSet{}, blocking)
			return false
		}
		return true
	})
}

// walkStmts interprets a statement list, returning the lock set at fall-
// through and whether the list always terminates (returns/branches).
func walkStmts(pass *Pass, stmts []ast.Stmt, held lockSet, blocking map[*types.Func]bool) (lockSet, bool) {
	held = held.clone()
	for _, stmt := range stmts {
		var terminated bool
		held, terminated = walkStmt(pass, stmt, held, blocking)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func walkStmt(pass *Pass, stmt ast.Stmt, held lockSet, blocking map[*types.Func]bool) (lockSet, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if lock, op, ok := lockOp(pass, s.X); ok {
			switch op {
			case "Lock", "RLock":
				held = held.clone()
				held[lock] = true
			case "Unlock", "RUnlock":
				held = held.clone()
				delete(held, lock)
			}
			return held, false
		}
		reportIfBlocking(pass, s.X, held, blocking)
		return held, false
	case *ast.DeferStmt:
		// Deferred unlocks release at return; deferred bodies run after
		// the region of interest. Skip both.
		return held, false
	case *ast.GoStmt:
		return held, false
	case *ast.ReturnStmt:
		checkExprs(pass, held, blocking, s.Results...)
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.AssignStmt:
		checkExprs(pass, held, blocking, s.Rhs...)
		checkExprs(pass, held, blocking, s.Lhs...)
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					checkExprs(pass, held, blocking, vs.Values...)
				}
			}
		}
		return held, false
	case *ast.SendStmt:
		if len(held) > 0 {
			pass.Reportf(s.Pos(), "channel send while holding %s; release the lock before communicating", held.any())
		}
		return held, false
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = walkStmt(pass, s.Init, held, blocking)
		}
		checkExprs(pass, held, blocking, s.Cond)
		thenOut, thenTerm := walkStmts(pass, s.Body.List, held, blocking)
		elseOut, elseTerm := held, false
		if s.Else != nil {
			elseOut, elseTerm = walkStmt(pass, s.Else, held, blocking)
		}
		return mergeBranches(thenOut, thenTerm, elseOut, elseTerm)
	case *ast.BlockStmt:
		return walkStmts(pass, s.List, held, blocking)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = walkStmt(pass, s.Init, held, blocking)
		}
		if s.Cond != nil {
			checkExprs(pass, held, blocking, s.Cond)
		}
		walkStmts(pass, s.Body.List, held, blocking)
		return held, false
	case *ast.RangeStmt:
		checkExprs(pass, held, blocking, s.X)
		walkStmts(pass, s.Body.List, held, blocking)
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = walkStmt(pass, s.Init, held, blocking)
		}
		if s.Tag != nil {
			checkExprs(pass, held, blocking, s.Tag)
		}
		walkCaseClauses(pass, s.Body, held, blocking)
		return held, false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = walkStmt(pass, s.Init, held, blocking)
		}
		walkCaseClauses(pass, s.Body, held, blocking)
		return held, false
	case *ast.SelectStmt:
		if !hasDefaultClause(s) && len(held) > 0 {
			pass.Reportf(s.Pos(), "blocking select while holding %s; release the lock before waiting", held.any())
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkStmts(pass, cc.Body, held, blocking)
			}
		}
		return held, false
	case *ast.LabeledStmt:
		return walkStmt(pass, s.Stmt, held, blocking)
	default:
		return held, false
	}
}

// walkCaseClauses scans every case body of a switch from the same entry
// lock set; switches are used for dispatch, not lock management, so the
// fall-through state is the entry state.
func walkCaseClauses(pass *Pass, body *ast.BlockStmt, held lockSet, blocking map[*types.Func]bool) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			checkExprs(pass, held, blocking, cc.List...)
			walkStmts(pass, cc.Body, held, blocking)
		}
	}
}

// mergeBranches joins the lock sets of an if/else: a branch that always
// terminates contributes nothing to fall-through state.
func mergeBranches(a lockSet, aTerm bool, b lockSet, bTerm bool) (lockSet, bool) {
	switch {
	case aTerm && bTerm:
		return a, true
	case aTerm:
		return b, false
	case bTerm:
		return a, false
	default:
		out := a.clone()
		for k := range b {
			out[k] = true
		}
		return out, false
	}
}

// checkExprs reports blocking operations appearing inside expressions
// (receives, blocking calls) while locks are held.
func checkExprs(pass *Pass, held lockSet, blocking map[*types.Func]bool, exprs ...ast.Expr) {
	if len(held) == 0 {
		return
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		reportIfBlocking(pass, e, held, blocking)
	}
}

func reportIfBlocking(pass *Pass, e ast.Expr, held lockSet, blocking map[*types.Func]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while holding %s; release the lock before waiting", held.any())
			}
		case *ast.CallExpr:
			if _, reason := blockingCall(pass, n, blocking); reason != "" {
				pass.Reportf(n.Pos(), "%s while holding %s; release the lock before blocking", reason, held.any())
			}
		}
		return true
	})
}

// lockOp recognizes mu.Lock()/Unlock()/RLock()/RUnlock() calls on
// sync.Mutex or sync.RWMutex values, returning the lock's source
// rendering and the operation.
func lockOp(pass *Pass, e ast.Expr) (lock, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	recv, name, isMethod := methodCall(pass, call)
	if !isMethod {
		return "", "", false
	}
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	rt := pass.TypeOf(recv)
	n := namedType(rt)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(recv), name, true
}
