package lint

import (
	"errors"
	"go/ast"
	"go/types"
)

// errNoProgram is returned by callgraph-aware analyzers invoked without
// a Program (RunAnalyzer always supplies one; a nil Program means a
// driver bug, not a finding).
var errNoProgram = errors.New("analyzer needs a Program; run it through RunAnalyzer with NewProgram(pkgs)")

// pkgFuncCall reports whether call invokes a package-level function of
// the package with the given import path, returning the function name.
// It resolves through the file's import aliases via the type checker.
func pkgFuncCall(pass *Pass, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// methodCall unpacks a method-call expression into its receiver
// expression and method name. Package-qualified calls (pkg.Func) are
// excluded.
func methodCall(pass *Pass, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return nil, "", false
	}
	if id, isIdent := sel.X.(*ast.Ident); isIdent {
		if _, isPkg := pass.ObjectOf(id).(*types.PkgName); isPkg {
			return nil, "", false
		}
	}
	return sel.X, sel.Sel.Name, true
}

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isIdentID reports whether t is the flat-label type ident.ID (matched
// by type and package name so analyzer test corpora can exercise the
// real type).
func isIdentID(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "ID" && n.Obj().Pkg().Name() == "ident"
}

// enclosesPos reports whether node's source range contains pos.
func enclosesPos(node ast.Node, pos ast.Node) bool {
	return node.Pos() <= pos.Pos() && pos.End() <= node.End()
}
