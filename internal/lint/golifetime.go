package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLifetimeAnalyzer proves that goroutines are joined. The supervisor
// restarts nodes across incarnations, so an unjoined goroutine is not a
// one-off leak but a leak *per churn event*: a thousand-node run with
// ten restarts each quietly accumulates ten thousand parked goroutines
// and their stacks. The analyzer accepts two join disciplines for each
// go statement:
//
//   - WaitGroup: the goroutine body defers a sync.WaitGroup Done, and a
//     matching Add on the same WaitGroup field precedes the go
//     statement in the spawning function;
//   - stop channel: the goroutine body selects on a channel receive
//     whose case returns, so closing the channel retires it.
//
// Spawns whose target cannot be resolved statically (function values,
// interface methods) are flagged at the go statement: if the target is
// dynamic, its lifetime is unauditable.
var GoLifetimeAnalyzer = &Analyzer{
	Name: "golifetime",
	Doc:  "every go statement must be provably joined via WaitGroup or stop-channel select",
	Run:  runGoLifetime,
}

func runGoLifetime(pass *Pass) error {
	if pass.Prog == nil {
		return errNoProgram
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkGoStmts(fd.Body, fd.Body, func(g *ast.GoStmt, encl *ast.BlockStmt) {
				checkGoStmt(pass, g, encl)
			})
		}
	}
	return nil
}

// walkGoStmts visits every go statement under n, tracking the body of
// the innermost enclosing function (the scope searched for a preceding
// WaitGroup.Add).
func walkGoStmts(n ast.Node, encl *ast.BlockStmt, visit func(*ast.GoStmt, *ast.BlockStmt)) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch nn := node.(type) {
		case *ast.GoStmt:
			visit(nn, encl)
			// The spawned literal's own body is a new enclosing scope
			// for any nested spawns.
			if lit, ok := nn.Call.Fun.(*ast.FuncLit); ok {
				walkGoStmts(lit.Body, lit.Body, visit)
			}
			return false
		case *ast.FuncLit:
			if nn != n {
				walkGoStmts(nn.Body, nn.Body, visit)
				return false
			}
		}
		return true
	})
}

// checkGoStmt resolves one go statement's target and verifies a join
// discipline.
func checkGoStmt(pass *Pass, g *ast.GoStmt, encl *ast.BlockStmt) {
	var (
		body     *ast.BlockStmt
		bodyInfo *types.Info
	)
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body, bodyInfo = lit.Body, pass.Info
	} else {
		fn := calleeOf(pass.Info, g.Call)
		if fn == nil {
			pass.Reportf(g.Pos(), "go statement spawns through a function value; the target cannot be audited for joining — spawn a function literal or a named function")
			return
		}
		if isInterfaceMethod(fn) {
			pass.Reportf(g.Pos(), "go statement spawns an interface method; the dynamic target cannot be audited for joining — spawn through a concrete function")
			return
		}
		fi := pass.Prog.Funcs[funcKey(fn)]
		if fi == nil {
			pass.Reportf(g.Pos(), "go statement spawns %s, which is outside the analyzed program and cannot be proven to join", funcKey(fn))
			return
		}
		body, bodyInfo = fi.Decl.Body, fi.Pkg.Info
	}

	wgName, hasDone := deferredWaitGroupDone(bodyInfo, body)
	if hasDone {
		if !waitGroupAddBefore(pass.Info, encl, g, wgName) {
			pass.Reportf(g.Pos(), "goroutine defers %s.Done but no matching %s.Add(…) precedes the go statement; Add must happen-before the spawn or Wait can return early", wgName, wgName)
		}
		return
	}
	if hasStopSelect(body) {
		return
	}
	pass.Reportf(g.Pos(), "go statement is not provably joined: the goroutine body has neither a deferred sync.WaitGroup Done nor a stop-channel select that returns; under supervised restarts this leaks one goroutine per incarnation")
}

// isWaitGroup reports whether t (possibly behind a pointer) is
// sync.WaitGroup, matched by name so corpora importing the real sync
// package and export-data-loaded packages agree.
func isWaitGroup(t types.Type) bool {
	nt := namedType(t)
	if nt == nil || nt.Obj().Pkg() == nil {
		return false
	}
	return nt.Obj().Name() == "WaitGroup" && nt.Obj().Pkg().Path() == "sync"
}

// exprLastName returns the final identifier of a receiver expression —
// "wg" for both n.wg and s.node.wg — which is how a Done in the
// goroutine body is matched to an Add in the spawning function even
// when the two name the receiver differently.
func exprLastName(e ast.Expr) string {
	switch ee := ast.Unparen(e).(type) {
	case *ast.Ident:
		return ee.Name
	case *ast.SelectorExpr:
		return ee.Sel.Name
	}
	return ""
}

// deferredWaitGroupDone reports whether the goroutine body (not nested
// literals, whose defers do not join this goroutine) defers a Done on a
// sync.WaitGroup, returning the WaitGroup expression's last name.
func deferredWaitGroupDone(info *types.Info, body *ast.BlockStmt) (string, bool) {
	name, found := "", false
	inspectShallow(body, func(n ast.Node) {
		ds, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return
		}
		sel, ok := ast.Unparen(ds.Call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return
		}
		if isWaitGroup(info.TypeOf(sel.X)) {
			name, found = exprLastName(sel.X), true
		}
	})
	return name, found
}

// waitGroupAddBefore reports whether the enclosing function body calls
// Add on a WaitGroup with the given last name at a position before the
// go statement.
func waitGroupAddBefore(info *types.Info, encl *ast.BlockStmt, g *ast.GoStmt, wgName string) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if isWaitGroup(info.TypeOf(sel.X)) && exprLastName(sel.X) == wgName {
			found = true
		}
		return true
	})
	return found
}

// hasStopSelect reports whether the goroutine body (not nested
// literals) contains a select with a channel-receive case that returns
// — the stop-channel discipline.
func hasStopSelect(body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || found {
			return
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil || !isReceiveComm(cc.Comm) {
				continue
			}
			for _, stmt := range cc.Body {
				if returnsOrBreaksLoop(stmt) {
					found = true
					return
				}
			}
		}
	})
	return found
}

// isReceiveComm reports whether a select comm clause is a channel
// receive (`<-ch`, `v := <-ch`, `v, ok := <-ch`).
func isReceiveComm(s ast.Stmt) bool {
	var expr ast.Expr
	switch ss := s.(type) {
	case *ast.ExprStmt:
		expr = ss.X
	case *ast.AssignStmt:
		if len(ss.Rhs) == 1 {
			expr = ss.Rhs[0]
		}
	}
	if expr == nil {
		return false
	}
	ue, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	return ok && ue.Op == token.ARROW
}

// returnsOrBreaksLoop reports whether stmt terminates the goroutine's
// loop: a return, or a statement list ending in return.
func returnsOrBreaksLoop(stmt ast.Stmt) bool {
	switch ss := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		for _, s := range ss.List {
			if returnsOrBreaksLoop(s) {
				return true
			}
		}
	}
	return false
}

// inspectShallow walks n without descending into nested function
// literals: evidence inside a nested goroutine does not join the outer
// one.
func inspectShallow(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit && node != n {
			return false
		}
		if node != nil {
			visit(node)
		}
		return true
	})
}
