package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over patterns in dir and
// decodes the package stream. Building export data needs no network:
// the module has no external dependencies, so everything resolves to
// the standard library and local packages.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the compiler export data files
// `go list -export` reported, so type-checking a package from source
// never needs its dependencies' sources (and never touches the network).
type exportImporter struct {
	exports map[string]string // import path → export data file
	imp     types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, pkgs []*listedPackage) *exportImporter {
	e := &exportImporter{exports: make(map[string]string, len(pkgs))}
	for _, p := range pkgs {
		if p.Export != "" {
			e.exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := e.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	e.imp = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.imp.ImportFrom(path, "", 0)
}

// Load type-checks the packages matching patterns (relative to dir; an
// empty dir means the current directory) and returns them ready for
// analysis. Only non-test Go files are analyzed: the invariants guard
// production code, and tests legitimately use wall clocks and raw
// ordering.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, listed)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkPackage parses and type-checks one package from source files.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
