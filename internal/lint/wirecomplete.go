package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// WireCompleteAnalyzer enforces round-trip completeness of the wire
// format: every field of a wire message struct must be written by its
// encoder and read by its decoder. A field added to wire.Packet but
// forgotten in AppendTo silently truncates the protocol; forgotten in
// DecodeFromBytes it silently reads as the zero value on one side of
// every exchange — exactly the bug class a fuzzer only finds when the
// missing field happens to matter.
//
// A struct is a wire message if it is declared in a package named "wire"
// or carries both an encoder method (AppendTo, SerializeTo, Marshal,
// MarshalBinary, Encode) and a decoder method (DecodeFromBytes,
// UnmarshalBinary, Decode). Field coverage is the union over all
// encoder (resp. decoder) bodies, so Marshal delegating to AppendTo is
// fine.
//
// The analyzer also forbids unkeyed composite literals of wire types
// anywhere in the tree: positional literals silently reshuffle field
// meanings when the message layout evolves.
var WireCompleteAnalyzer = &Analyzer{
	Name: "wirecomplete",
	Doc:  "wire message structs must round-trip every field, and must not be built with unkeyed literals",
	Run:  runWireComplete,
}

var encoderNames = map[string]bool{
	"AppendTo": true, "SerializeTo": true, "Marshal": true,
	"MarshalBinary": true, "Encode": true, "EncodeTo": true,
}

var decoderNames = map[string]bool{
	"DecodeFromBytes": true, "UnmarshalBinary": true,
	"Decode": true, "DecodeFrom": true,
}

func runWireComplete(pass *Pass) error {
	checkRoundTrip(pass)
	checkUnkeyedLiterals(pass)
	return nil
}

// --- Round-trip completeness ----------------------------------------------

// methodsByType groups this package's method declarations by receiver
// base type name.
func methodsByType(pass *Pass) map[string][]*ast.FuncDecl {
	out := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			name := receiverTypeName(fd.Recv.List[0].Type)
			if name != "" {
				out[name] = append(out[name], fd)
			}
		}
	}
	return out
}

func receiverTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(t.X)
	}
	return ""
}

func checkRoundTrip(pass *Pass) {
	methods := methodsByType(pass)
	for typeName, decls := range methods {
		var encoders, decoders []*ast.FuncDecl
		for _, fd := range decls {
			if encoderNames[fd.Name.Name] {
				encoders = append(encoders, fd)
			}
			if decoderNames[fd.Name.Name] {
				decoders = append(decoders, fd)
			}
		}
		if len(encoders) == 0 || len(decoders) == 0 {
			continue
		}
		obj, ok := pass.Pkg.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		encoded := fieldsMentioned(pass, encoders)
		decoded := fieldsMentioned(pass, decoders)
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !encoded[field.Name()] {
				pass.Reportf(field.Pos(), "wire message %s: field %s is never written by encoder %s; the wire format silently drops it",
					typeName, field.Name(), methodNameList(encoders))
			}
			if !decoded[field.Name()] {
				pass.Reportf(field.Pos(), "wire message %s: field %s is never read back by decoder %s; it decodes as the zero value",
					typeName, field.Name(), methodNameList(decoders))
			}
		}
	}
}

// fieldsMentioned collects the receiver field names referenced anywhere
// in the given method bodies (union).
func fieldsMentioned(pass *Pass, decls []*ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	for _, fd := range decls {
		recvIdent := receiverIdent(fd)
		if recvIdent == nil {
			continue
		}
		recvObj := pass.Info.Defs[recvIdent]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok || pass.ObjectOf(base) != recvObj {
				return true
			}
			// Only count struct fields, not method calls on the receiver.
			if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				out[sel.Sel.Name] = true
			}
			return true
		})
	}
	return out
}

func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	names := fd.Recv.List[0].Names
	if len(names) != 1 {
		return nil
	}
	return names[0]
}

func methodNameList(decls []*ast.FuncDecl) string {
	names := make([]string, 0, len(decls))
	for _, fd := range decls {
		names = append(names, fd.Name.Name)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "/"
		}
		out += n
	}
	return out
}

// --- Unkeyed composite literals -------------------------------------------

func checkUnkeyedLiterals(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
				return true
			}
			named := namedType(pass.TypeOf(lit))
			if named == nil {
				return true
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				return true
			}
			if isWireMessageType(named) {
				pass.Reportf(lit.Pos(), "unkeyed composite literal of wire type %s; positional fields silently reshuffle when the message layout evolves",
					named.Obj().Name())
			}
			return true
		})
	}
}

// isWireMessageType reports whether named is a wire message: declared in
// a package named "wire", or carrying both encoder and decoder methods.
func isWireMessageType(named *types.Named) bool {
	if pkg := named.Obj().Pkg(); pkg != nil && pkg.Name() == "wire" {
		return true
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	hasEnc, hasDec := false, false
	for i := 0; i < ms.Len(); i++ {
		name := ms.At(i).Obj().Name()
		if encoderNames[name] {
			hasEnc = true
		}
		if decoderNames[name] {
			hasDec = true
		}
	}
	return hasEnc && hasDec
}
