package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// IdentCmpAnalyzer guards the paper's Algorithm 2: flat labels live on a
// circular namespace, and greedy forwarding must compare clockwise
// distances (ident.Distance / Between / Progress), never raw byte
// order. A raw linear comparison looks right in every test whose IDs
// happen not to straddle the zero point, then misroutes the first
// packet whose destination wraps — the classic flat-label bug.
//
// Outside the ident package the analyzer forbids:
//
//   - bytes.Compare / bytes.Equal over ident.ID bytes (use Distance /
//     Between for routing, == for equality);
//   - relational operators over string/byte conversions of IDs;
//   - ID.Cmp / ID.Less calls, unless (a) both operands are clockwise
//     distances (results of ident.ID.Distance, tracked through local
//     assignments), or (b) the call sits in a function literal passed
//     to sort.Search / sort.Slice and friends — the documented
//     sorted-storage and tie-breaking uses.
//
// Anything else needs an audited //rofllint:ignore with the reason the
// linear order is sound at that site (canonical minimum selection,
// sortedness assertions).
var IdentCmpAnalyzer = &Analyzer{
	Name: "identcmp",
	Doc:  "forbid raw byte-order comparison of ident.ID outside ident; routing must use circular Distance/Between",
	Run:  runIdentCmp,
}

func runIdentCmp(pass *Pass) error {
	if pass.Pkg.Name() == "ident" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncIdentCmp(pass, fd)
		}
		checkRawByteCmp(pass, f)
	}
	return nil
}

// checkRawByteCmp flags bytes.Compare/bytes.Equal over ID bytes and
// relational operators over converted IDs anywhere in the file.
func checkRawByteCmp(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			name, ok := pkgFuncCall(pass, n, "bytes")
			if !ok || (name != "Compare" && name != "Equal") {
				return true
			}
			for _, arg := range n.Args {
				if exprIsIdentIDBytes(pass, arg) {
					if name == "Equal" {
						pass.Reportf(n.Pos(), "bytes.Equal over ident.ID bytes; ident.ID is comparable — use ==")
					} else {
						pass.Reportf(n.Pos(), "bytes.Compare over ident.ID bytes imposes linear order on the circular namespace; use Distance/Between (or ID.Cmp for sorted storage)")
					}
					break
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				if exprIsIdentIDBytes(pass, n.X) || exprIsIdentIDBytes(pass, n.Y) {
					pass.Reportf(n.Pos(), "relational %s over converted ident.ID bytes imposes linear order on the circular namespace; use Distance/Between", n.Op)
				}
			}
		}
		return true
	})
}

// exprIsIdentIDBytes reports whether e exposes an ident.ID's raw bytes:
// id[:], []byte(id[:]), or string(id[:]).
func exprIsIdentIDBytes(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return isIdentID(pass.TypeOf(e.X))
	case *ast.CallExpr: // conversions []byte(...) / string(...)
		if len(e.Args) != 1 {
			return false
		}
		if tv, ok := pass.Info.Types[e.Fun]; !ok || !tv.IsType() {
			return false
		}
		return exprIsIdentIDBytes(pass, e.Args[0])
	case *ast.ParenExpr:
		return exprIsIdentIDBytes(pass, e.X)
	}
	return false
}

// checkFuncIdentCmp flags Cmp/Less calls on ident.ID within one function
// (closures included — they share the function's locals).
func checkFuncIdentCmp(pass *Pass, fd *ast.FuncDecl) {
	distVars := distanceVars(pass, fd.Body)
	sorted := sortedContexts(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := methodCall(pass, call)
		if !ok || (name != "Cmp" && name != "Less") {
			return true
		}
		if !isIdentID(pass.TypeOf(recv)) {
			return true
		}
		if inRanges(call, sorted) {
			return true
		}
		if len(call.Args) == 1 && isDistanceExpr(pass, recv, distVars) && isDistanceExpr(pass, call.Args[0], distVars) {
			return true // comparing clockwise distances is the metric itself
		}
		pass.Reportf(call.Pos(), "linear %s on ident.ID ignores the circular namespace; compare clockwise distances (Distance/Between, Algorithm 2), move into a sort callback, or annotate a documented tie-break", name)
		return true
	})
}

// sortedContexts returns the source ranges of function literals passed
// to sort/slices ordering helpers, where linear comparison is the
// documented sorted-storage use.
func sortedContexts(pass *Pass, body *ast.BlockStmt) []ast.Node {
	var out []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isSortCall := false
		for _, pkg := range []string{"sort", "slices"} {
			if _, ok := pkgFuncCall(pass, call, pkg); ok {
				isSortCall = true
				break
			}
		}
		if !isSortCall {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, lit)
			}
		}
		return true
	})
	return out
}

func inRanges(node ast.Node, ranges []ast.Node) bool {
	for _, r := range ranges {
		if enclosesPos(r, node) {
			return true
		}
	}
	return false
}

// distanceVars computes, to a fixed point, the local variables holding
// clockwise distances: assigned from ident.ID.Distance calls or from
// other distance variables (tuple assignments pair element-wise).
func distanceVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	dist := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				if !isDistanceExpr(pass, rhs, dist) {
					continue
				}
				lhs, ok := assign.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.ObjectOf(lhs)
				if obj != nil && !dist[obj] {
					dist[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return dist
}

// isDistanceExpr reports whether e is a clockwise distance: a direct
// X.Distance(Y) call on ident.ID, or a variable tracked as holding one.
func isDistanceExpr(pass *Pass, e ast.Expr, dist map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return isDistanceExpr(pass, e.X, dist)
	case *ast.CallExpr:
		recv, name, ok := methodCall(pass, e)
		return ok && name == "Distance" && isIdentID(pass.TypeOf(recv))
	case *ast.Ident:
		obj := pass.ObjectOf(e)
		return obj != nil && dist[obj]
	}
	return false
}
