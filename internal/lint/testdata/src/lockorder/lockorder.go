// Package lockorder is the golden corpus for the lockorder analyzer:
// no blocking operation while a mutex is held.
package lockorder

import (
	"sync"
	"time"
)

type transport interface {
	Send(b []byte) error
	Recv() ([]byte, error)
}

type node struct {
	mu    sync.Mutex
	state int
	tr    transport
	ch    chan int
}

// --- Blocking while locked ------------------------------------------------

func (n *node) sleepHeld() {
	n.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding n.mu"
	n.mu.Unlock()
}

func (n *node) sendHeld() {
	n.mu.Lock()
	n.ch <- n.state // want "channel send while holding n.mu"
	n.mu.Unlock()
}

func (n *node) recvHeld() int {
	n.mu.Lock()
	v := <-n.ch // want "channel receive while holding n.mu"
	n.mu.Unlock()
	return v
}

func (n *node) transportHeld() {
	n.mu.Lock()
	n.tr.Send(nil) // want "interface method Send .transport I/O. while holding n.mu"
	n.mu.Unlock()
}

func (n *node) selectHeld() {
	n.mu.Lock()
	select { // want "blocking select while holding n.mu"
	case <-n.ch:
	}
	n.mu.Unlock()
}

func blocksTransitively(d time.Duration) {
	time.Sleep(d)
}

func (n *node) transitiveHeld() {
	n.mu.Lock()
	blocksTransitively(0) // want "call to blocking blocksTransitively while holding n.mu"
	n.mu.Unlock()
}

func (n *node) waitGroupHeld(wg *sync.WaitGroup) {
	n.mu.Lock()
	wg.Wait() // want "sync WaitGroup.Wait while holding n.mu"
	n.mu.Unlock()
}

// --- The sanctioned pattern: lock, compute, unlock, then I/O --------------

func (n *node) computeThenSend() {
	n.mu.Lock()
	v := n.state
	n.state++
	n.mu.Unlock()
	n.ch <- v
	n.tr.Send(nil)
}

// A non-blocking poll (select with default) is fine under the lock.
func (n *node) pollHeld() {
	n.mu.Lock()
	select {
	case n.ch <- n.state:
	default:
	}
	n.mu.Unlock()
}

// Spawning a goroutine that blocks is fine: the closure runs on its own
// schedule with no lock held.
func (n *node) spawnHeld() {
	n.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond)
		n.ch <- 1
	}()
	n.mu.Unlock()
}

// A branch that unlocks and returns must not leak its lock state into
// the fall-through path.
func (n *node) earlyExit(bad bool) {
	n.mu.Lock()
	if bad {
		n.mu.Unlock()
		return
	}
	n.state++
	n.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// Deferred unlock holds the lock to return: non-blocking bodies only.
func (n *node) deferred() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}
