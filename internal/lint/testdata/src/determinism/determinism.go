// Package determinism is the golden corpus for the determinism
// analyzer: seeded packages must be pure functions of their seeds.
package determinism

import (
	"fmt"
	"math/rand"
	"time"
)

// --- Wall clock -----------------------------------------------------------

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func pause() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

// A suppressed wall-clock read: the directive carries a reason, so no
// diagnostic survives.
func suppressedStamp() int64 {
	//rofllint:ignore determinism wall clock feeds only the progress log, never a seeded decision
	return time.Now().UnixNano()
}

// Virtual time arithmetic is fine: no clock read.
func virtual(now time.Duration, d time.Duration) time.Duration {
	return now + d
}

// --- Global math/rand -----------------------------------------------------

func draw() int {
	return rand.Intn(10) // want "rand.Intn draws from the global math/rand generator"
}

func jitter() float64 {
	return rand.Float64() // want "rand.Float64 draws from the global math/rand generator"
}

// Building a seeded generator is the sanctioned path.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// --- Map iteration feeding ordered output ---------------------------------

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

func publish(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

type metrics struct{}

func (metrics) Count(name string, n int)       {}
func (metrics) Sample(name string, v float64)  {}
func (metrics) Observe(name string, v float64) {}

func charge(m map[string]int, mx metrics) {
	for k, v := range m {
		mx.Count(k, v) // want "metrics Count inside map iteration"
	}
}

func report(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "fmt.Println inside map iteration"
	}
}

// Order-independent map loops pass: sums, deletes, local appends.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

func localPerKey(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// --- Select races ---------------------------------------------------------

func race(a, b chan int) int {
	select { // want "select over 2 channels resolves by runtime coin flip"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// A single wake source is deterministic.
func wait(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}
