// Corpus for the hotpath analyzer: allocation sites reachable from
// //rofllint:hotpath roots, coldpath pruning, annotation hygiene, and
// the audited-ignore path.
package hotpath

import (
	"fmt"
	"sort"
	"strconv"
)

type buf struct{ b []byte }

type holder struct{ fn func() }

type sink interface{ Write([]byte) (int, error) }

// root is a hot-path root: everything it reaches is scanned.
//
//rofllint:hotpath
func root(dst []byte, vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	helper(dst) // reachable: helper is scanned even without an annotation
	control(dst)
	return total
}

// helper has no annotation of its own but is reachable from root.
func helper(dst []byte) {
	_ = make([]byte, 16) // want "make allocates in hot function helper"
	dst = dst[:0]
	_ = dst
}

// control is dispatched off the steady-state path, so reachability is
// pruned here and its allocations are fine.
//
//rofllint:coldpath control-plane handling dispatched once per join, not per packet
func control(dst []byte) {
	_ = make([]byte, 1<<10)
	_ = fmt.Sprintf("%d", len(dst))
}

//rofllint:hotpath
func allocSites(s string) {
	_ = &buf{}           // want "address of composite literal escapes to the heap in hot function allocSites"
	_ = []int{1, 2, 3}   // want "slice literal allocates a new backing array in hot function allocSites"
	_ = map[string]int{} // want "map literal allocates in hot function allocSites"
	_ = new(buf)         // want "new allocates in hot function allocSites"
	_ = append([]byte(nil), s...) // want "append to a fresh slice allocates a new backing array in hot function allocSites"
	x := s + "!" // want "string concatenation allocates in hot function allocSites"
	_ = x
	fmt.Println(s) // want "fmt.Println formats through interfaces and allocates in hot function allocSites"
	b := []byte(s) // want "conversion between string and byte slice copies and allocates in hot function allocSites"
	_ = b
	_ = strconv.Itoa(3) // want "call into strconv.Itoa in hot function allocSites is outside the allocation-free allowlist"
}

//rofllint:hotpath
func reuseOK(dst []byte, xs []int) []byte {
	// Appending to an existing buffer and in-place sort/search are the
	// sanctioned steady-state idioms.
	dst = append(dst, 0x01)
	i := sort.SearchInts(xs, 3)
	_ = i
	return dst
}

//rofllint:hotpath
func spawn() {
	go leak() // want "go statement in hot function spawn allocates a goroutine per call"
}

func leak() {}

//rofllint:hotpath
func ifaceCall(s sink, b []byte) {
	s.Write(b) // want "interface method call Write in hot function ifaceCall dispatches dynamically and cannot be proven allocation-free"
}

//rofllint:hotpath
func dynCall(f func()) {
	f() // want "dynamic call through a function value in hot function dynCall cannot be proven allocation-free"
}

//rofllint:hotpath
func localLit(vals []int) int {
	best := 0
	consider := func(v int) {
		if v > best {
			best = v
		}
	}
	for _, v := range vals {
		consider(v) // fine: the literal's body is scanned inline
	}
	return best
}

//rofllint:hotpath
func escapes(h *holder) {
	h.fn = func() {} // want "closure stored beyond the call allocates in hot function escapes"
}

// errExempt allocates only while constructing a returned error, which
// is off the steady-state path by definition.
//
//rofllint:hotpath
func errExempt(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}

//rofllint:hotpath
func audited() {
	buf := make([]byte, 64) //rofllint:ignore hotpath one-time setup buffer, reused across loop iterations
	_ = buf
}

//rofllint:coldpath
func badCold() {} // want "coldpath annotation without a reason: say why badCold is off the steady-state path"

//rofllint:hotpath
//rofllint:coldpath hot in tests, cold in production
func conflicted() {} // want "conflicted is annotated both hotpath and coldpath; pick one"
