// Corpus for the metricname analyzer: series and event names must be
// constants declared in the package's single //rofllint:metrics
// catalog.
package metricname

import "rofl/internal/telemetry"

// The package's metric catalog: the single source of truth for series
// and event names.
//
//rofllint:metrics
const (
	metricGood = "rofl_test_packets_total"
	eventGood  = "test_event"
)

// stray is a constant, but not a catalog constant.
const stray = "rofl_stray_total"

func resolve(reg *telemetry.Registry, log *telemetry.EventLog, dyn string) {
	reg.Counter(metricGood) // fine: catalog constant
	c := reg.Counter(metricGood)
	c.Inc() // handle methods take no names; nothing to check

	reg.Gauge("rofl_inline_total") // want "metric series name is an inline literal"
	reg.Histogram(stray, nil)      // want "metric series name constant stray is not declared in the //rofllint:metrics catalog of metricname"
	reg.Counter(dyn)               // want "metric series name is not a compile-time constant"

	log.Info(eventGood) // fine: catalog constant
	log.Emit(telemetry.LevelInfo, "oops")  // want "event type is an inline literal"
	log.Warn(stray)                        // want "event type constant stray is not declared in the //rofllint:metrics catalog of metricname"
	log.Error(eventGood, "detail", dyn)    // fine: kv values are unconstrained
	log.Emit(telemetry.LevelDebug, eventGood, "k", 1) // fine

	reg.Counter("rofl_migration_total") //rofllint:ignore metricname migration shim until the series moves into the catalog
}

// A second annotated block splits the namespace's source of truth.
//
//rofllint:metrics
const ( // want "package metricname declares more than one //rofllint:metrics catalog"
	eventDup = "dup_event"
)

func useDup(log *telemetry.EventLog) {
	log.Info(eventDup) // fine: still a catalog constant, the block itself is the finding
}
