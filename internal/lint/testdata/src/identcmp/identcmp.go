// Package identcmp is the golden corpus for the identcmp analyzer:
// flat labels live on a circle, so raw linear comparison is forbidden
// outside documented tie-breaks and sorted storage.
package identcmp

import (
	"bytes"
	"sort"

	"rofl/internal/ident"
)

// --- Raw byte-order comparison --------------------------------------------

func rawCompare(a, b ident.ID) bool {
	return bytes.Compare(a[:], b[:]) < 0 // want "bytes.Compare over ident.ID bytes"
}

func rawEqual(a, b ident.ID) bool {
	return bytes.Equal(a[:], b[:]) // want "bytes.Equal over ident.ID bytes"
}

func stringOrder(a, b ident.ID) bool {
	return string(a[:]) < string(b[:]) // want "relational < over converted ident.ID bytes"
}

func bareLess(a, b ident.ID) bool {
	return a.Less(b) // want "linear Less on ident.ID ignores the circular namespace"
}

func bareCmp(a, b ident.ID) int {
	return a.Cmp(b) // want "linear Cmp on ident.ID ignores the circular namespace"
}

// --- Legal forms ----------------------------------------------------------

// Comparing clockwise distances is the routing metric itself; the
// dataflow tracks distances through local assignments.
func improves(cur, cand, target ident.ID) bool {
	best := cur.Distance(target)
	d := cand.Distance(target)
	return d.Less(best)
}

// Direct distance-call comparison, no intermediate variables.
func improvesInline(cur, cand, target ident.ID) bool {
	return cand.Distance(target).Less(cur.Distance(target))
}

// Sorted storage: linear order inside a sort callback is the documented
// use.
func sortIDs(ids []ident.ID) {
	sort.Slice(ids, func(i, j int) bool {
		return ids[i].Less(ids[j])
	})
}

func searchIDs(ids []ident.ID, want ident.ID) int {
	return sort.Search(len(ids), func(i int) bool {
		return !ids[i].Less(want)
	})
}

// Equality is direction-free and always legal.
func same(a, b ident.ID) bool {
	return a == b
}

// An audited tie-break survives with a reasoned directive.
func minMember(a, b ident.ID) ident.ID {
	//rofllint:ignore identcmp canonical minimum-ID selection; any total order works and both sides use this one
	if a.Less(b) {
		return a
	}
	return b
}
