// Package wirecomplete is the golden corpus for the wirecomplete
// analyzer: wire message structs must round-trip every field, and must
// not be built with unkeyed literals.
package wirecomplete

// Msg forgets fields on both sides of the round trip.
type Msg struct {
	A byte
	B byte // want "field B is never read back by decoder DecodeFromBytes"
	C byte // want "field C is never written by encoder AppendTo"
}

func (m *Msg) AppendTo(b []byte) []byte {
	return append(b, m.A, m.B)
}

func (m *Msg) DecodeFromBytes(b []byte) error {
	m.A = b[0]
	m.C = b[1]
	return nil
}

// Good round-trips every field; Marshal may delegate without mentioning
// any field because coverage is the union over all encoder bodies.
type Good struct {
	X uint16
	Y []byte
}

func (g *Good) AppendTo(b []byte) []byte {
	b = append(b, byte(g.X>>8), byte(g.X))
	return append(b, g.Y...)
}

func (g *Good) Marshal() []byte {
	return g.AppendTo(nil)
}

func (g *Good) DecodeFromBytes(b []byte) error {
	g.X = uint16(b[0])<<8 | uint16(b[1])
	g.Y = append(g.Y[:0], b[2:]...)
	return nil
}

// --- Composite literals ---------------------------------------------------

func build() Good {
	return Good{1, nil} // want "unkeyed composite literal of wire type Good"
}

func buildKeyed() Good {
	return Good{X: 1}
}

// point is not a wire message; positional literals are allowed.
type point struct{ x, y int }

func origin() point {
	return point{0, 0}
}
