// Corpus for the atomicmix analyzer: a field ever touched through the
// function-style sync/atomic API must never be accessed plainly.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	total int64 // never touched atomically: plain access is fine
	ready atomic.Bool
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1) // fine: the sanctioned access
}

func (c *counters) load() int64 {
	return atomic.LoadInt64(&c.hits) // fine
}

func (c *counters) plainRead() int64 {
	return c.hits // want "field atomicmix.counters.hits is accessed with sync/atomic elsewhere"
}

func (c *counters) plainWrite() {
	c.hits = 0 // want "field atomicmix.counters.hits is accessed with sync/atomic elsewhere"
	c.total++  // fine: total has no atomic history
}

func (c *counters) alias() *int64 {
	return &c.hits // want "field atomicmix.counters.hits is accessed with sync/atomic elsewhere"
}

func (c *counters) typedOK() bool {
	// Typed atomics make mixing unrepresentable; their methods are not
	// the function-style API and create no mixed-access exposure.
	return c.ready.Load()
}

func (c *counters) audited() int64 {
	//rofllint:ignore atomicmix read happens in the constructor before any goroutine can observe c
	return c.hits
}
