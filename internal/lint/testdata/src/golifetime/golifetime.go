// Corpus for the golifetime analyzer: every go statement must be
// provably joined via a WaitGroup or a stop-channel select.
package golifetime

import "sync"

type worker struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

func work() {}

func (w *worker) startJoined() {
	w.wg.Add(1)
	go func() { // fine: Add before spawn, deferred Done inside
		defer w.wg.Done()
		work()
	}()
}

func (w *worker) startStopChannel() {
	go func() { // fine: stop-channel select with a returning case
		for {
			select {
			case <-w.stop:
				return
			default:
				work()
			}
		}
	}()
}

func (w *worker) startMethod() {
	w.wg.Add(1)
	go w.loop() // fine: loop defers w.wg.Done
}

func (w *worker) loop() {
	defer w.wg.Done()
	work()
}

func (w *worker) startNaked() {
	go work() // want "go statement is not provably joined"
}

func (w *worker) startNoAdd() {
	go func() { // want "goroutine defers wg.Done but no matching wg.Add"
		defer w.wg.Done()
		work()
	}()
}

func startDynamic(f func()) {
	go f() // want "go statement spawns through a function value"
}

type runner interface{ Run() }

func startIface(r runner) {
	go r.Run() // want "go statement spawns an interface method"
}

func startExternal(m *sync.Mutex) {
	go m.Unlock() // want "outside the analyzed program and cannot be proven to join"
}

func startAudited() {
	//rofllint:ignore golifetime fire-and-forget flush, bounded by process exit in tests only
	go work()
}

func (w *worker) nested() {
	w.wg.Add(1)
	go func() { // fine: joined
		defer w.wg.Done()
		go work() // want "go statement is not provably joined"
	}()
}
