package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file is rofllint's stand-in for golang.org/x/tools'
// go/analysis/analysistest: RunTest applies an analyzer to a testdata
// package and checks its diagnostics against `// want "regexp"`
// comments, so each analyzer carries a golden corpus of positive and
// negative cases.

// RunTest type-checks the package in testdata/src/<a.Name> and verifies
// that a's diagnostics exactly match the corpus's want comments.
func RunTest(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing corpus: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			importSet[path] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("corpus %s has no Go files", dir)
	}
	// Collect export data for everything the corpus imports. The test's
	// working directory is internal/lint, which is inside the module, so
	// module-path patterns resolve without touching the network.
	patterns := make([]string, 0, len(importSet)+1)
	patterns = append(patterns, "rofl/...")
	for p := range importSet {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	listed, err := goList(".", patterns...)
	if err != nil {
		t.Fatalf("building export data: %v", err)
	}
	imp := newExportImporter(fset, listed)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(a.Name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking corpus: %v", err)
	}
	pkg := &Package{ImportPath: a.Name, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
	// The corpus package is its own whole program: hot-path roots,
	// atomic fields, and catalogs are all declared inside it.
	prog := NewProgram([]*Package{pkg})
	got, err := RunAnalyzer(a, prog, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, fset, files, got)
}

// wantKey addresses one source line.
type wantKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the expected-diagnostic regexps per line.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// splitQuoted splits `"a" "b c"` into its double-quoted segments,
// keeping the quotes so strconv.Unquote can process escapes.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		end := start + 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[start:end+1])
		s = s[end+1:]
	}
}

// checkWants matches diagnostics against want comments on the same line
// and reports both unexpected and missing diagnostics.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, got []Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range got {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
		if len(wants[key]) == 0 {
			delete(wants, key)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
		}
	}
}
