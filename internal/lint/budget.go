package lint

// CountIgnores tallies the program's suppression surface: how many
// //rofllint:ignore directives exist per analyzer, plus the number of
// //rofllint:coldpath reachability prunes (under the key "coldpath").
// CI diffs the output against a committed golden file so that growing
// the suppression count is a reviewed decision, not drift.
func CountIgnores(prog *Program) map[string]int {
	counts := map[string]int{}
	for _, pkg := range prog.Packages {
		dirs, bad := parseDirectives(pkg.Fset, pkg.Files)
		for _, dir := range dirs {
			for name := range dir.analyzers {
				counts[name]++
			}
		}
		// Malformed directives count against the analyzer namespace too:
		// they are suppression attempts, and the budget should not shrink
		// just because one lost its reason.
		counts["malformed"] += len(bad)
		if counts["malformed"] == 0 {
			delete(counts, "malformed")
		}
	}
	for _, fi := range prog.Funcs {
		if fi.Cold {
			counts["coldpath"]++
		}
	}
	return counts
}
