package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"sync"
)

// This file is the conservative call-graph/reachability layer the
// whole-program analyzers (hotpath, golifetime, metricname) build on.
// A Program indexes every function declared in the loaded packages and
// the module-internal functions each one references, keyed by a
// package-path-qualified name so that the same function is recognized
// whether it was type-checked from source or resolved through compiler
// export data (each package is checked independently, so *types.Func
// pointer identity does not hold across packages).
//
// Two annotations drive reachability:
//
//	//rofllint:hotpath
//	    marks a function as a hot-path root: it and everything
//	    statically reachable from it must be allocation-free.
//
//	//rofllint:coldpath <reason>
//	    prunes reachability at a callee that is only reached off the
//	    steady-state path (e.g. control-message handlers dispatched
//	    from the packet handler). The reason is mandatory.
//
// The graph is conservative by construction: an edge is added for every
// *reference* to a module function (calls, method values, functions
// passed as callbacks), not just direct call expressions. What it
// cannot see — and what the hotpath analyzer therefore flags at the
// call site instead — are dynamic dispatch targets: interface method
// calls and calls through function values.

// FuncInfo is one declared function or method in the loaded program.
type FuncInfo struct {
	Key  string         // funcKey of the declared function
	Fn   *types.Func    // the declaring package's object
	Decl *ast.FuncDecl  // declaration, always with a body
	Pkg  *Package       // the package that declares it

	// Hot and Cold record the //rofllint:hotpath and
	// //rofllint:coldpath annotations on the declaration.
	Hot  bool
	Cold bool
	// ColdReason is the justification after //rofllint:coldpath;
	// BadCold marks a coldpath annotation with no reason (still pruned,
	// but reported so suppressions stay audited).
	ColdReason string
	BadCold    bool

	// Calls holds the funcKeys of every function referenced in the
	// declaration, in source order, deduplicated.
	Calls []string
}

// Program is the whole loaded module: every package plus the function
// index and call graph shared by the callgraph-aware analyzers.
type Program struct {
	Packages []*Package
	// Funcs maps funcKey to the function's declaration info.
	Funcs map[string]*FuncInfo

	byPath map[string]*Package

	hotOnce sync.Once
	hotSet  map[string]bool

	catOnce  sync.Once
	catalogs map[string]*catalogIndex

	atomicOnce   sync.Once
	atomicFields map[string]bool
}

// NewProgram indexes pkgs into a function registry and conservative
// call graph.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Packages: pkgs,
		Funcs:    make(map[string]*FuncInfo),
		byPath:   make(map[string]*Package, len(pkgs)),
	}
	for _, pkg := range pkgs {
		prog.byPath[pkg.ImportPath] = pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Key: funcKey(fn), Fn: fn, Decl: fd, Pkg: pkg}
				parseFuncAnnotations(fi)
				fi.Calls = referencedFuncs(pkg.Info, fd)
				prog.Funcs[fi.Key] = fi
			}
		}
	}
	return prog
}

// PackageByPath returns the loaded package with the given import path,
// or nil if it was not part of this Program.
func (prog *Program) PackageByPath(path string) *Package { return prog.byPath[path] }

// HotSet returns the keys of every function statically reachable from a
// //rofllint:hotpath root, stopping at //rofllint:coldpath boundaries.
// Computed once per Program.
func (prog *Program) HotSet() map[string]bool {
	prog.hotOnce.Do(func() {
		prog.hotSet = make(map[string]bool)
		var queue []string
		for key, fi := range prog.Funcs {
			if fi.Hot {
				queue = append(queue, key)
			}
		}
		for len(queue) > 0 {
			key := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if prog.hotSet[key] {
				continue
			}
			prog.hotSet[key] = true
			fi := prog.Funcs[key]
			if fi == nil {
				continue
			}
			for _, callee := range fi.Calls {
				cf := prog.Funcs[callee]
				if cf == nil || cf.Cold || prog.hotSet[callee] {
					continue
				}
				queue = append(queue, callee)
			}
		}
	})
	return prog.hotSet
}

// parseFuncAnnotations reads hotpath/coldpath directives from the
// declaration's doc comment group.
func parseFuncAnnotations(fi *FuncInfo) {
	if fi.Decl.Doc == nil {
		return
	}
	for _, c := range fi.Decl.Doc.List {
		switch {
		case c.Text == "//rofllint:hotpath":
			fi.Hot = true
		case strings.HasPrefix(c.Text, "//rofllint:coldpath"):
			fi.Cold = true
			reason := strings.TrimSpace(strings.TrimPrefix(c.Text, "//rofllint:coldpath"))
			if reason == "" {
				fi.BadCold = true
			}
			fi.ColdReason = reason
		}
	}
}

// referencedFuncs collects the funcKeys of every function object the
// declaration mentions — direct calls, method calls, and bare function
// references passed as values — deduplicated, in source order.
func referencedFuncs(info *types.Info, fd *ast.FuncDecl) []string {
	var out []string
	seen := map[string]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		key := funcKey(fn)
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
		return true
	})
	return out
}

// funcKey renders a package-path-qualified name for a function or
// method, e.g. "rofl/internal/wire.(*Packet).Marshal". The key is
// stable across independent type-checks of the same function, which is
// what lets call edges cross package boundaries.
func funcKey(fn *types.Func) string {
	var b strings.Builder
	if fn.Pkg() != nil {
		b.WriteString(fn.Pkg().Path())
		b.WriteByte('.')
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := false
		if p, isPtr := rt.(*types.Pointer); isPtr {
			ptr = true
			rt = p.Elem()
		}
		name := "?"
		if n := namedType(rt); n != nil {
			name = n.Obj().Name()
		}
		if ptr {
			b.WriteString("(*")
			b.WriteString(name)
			b.WriteString(").")
		} else {
			b.WriteString(name)
			b.WriteByte('.')
		}
	}
	b.WriteString(fn.Name())
	return b.String()
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes (package function, method, or method expression), or nil for
// dynamic calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isInterfaceMethod reports whether fn is declared on an interface —
// i.e. a call to it dispatches dynamically.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	_, isIface := rt.Underlying().(*types.Interface)
	return isIface
}
