package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces that the simulation, experiment, and
// netem fault-schedule packages stay pure functions of their seeds:
// experiment tables must be byte-identical for a given seed at any
// worker count, and the netem fault schedule must be a pure function of
// the network seed plus the per-link send order. Four nondeterminism
// channels are forbidden:
//
//   - wall-clock reads (time.Now / Since / Until / Sleep / After /
//     Tick): virtual time comes from the event heap, never the kernel;
//   - the global math/rand generator (rand.Intn, rand.Float64, ...):
//     every draw must come from a *rand.Rand seeded from the experiment
//     or link seed (rand.New / rand.NewSource stay legal — they build
//     such generators);
//   - map iteration feeding order-sensitive output (appending to an
//     outer slice, sending on a channel, charging Metrics.Count/Sample,
//     printing): Go randomizes map order per run, so iterate a sorted
//     key slice instead;
//   - select over multiple ready channels, which the runtime resolves
//     by coin flip.
//
// Wall-clock scheduling that feeds no seeded decision (netem's delivery
// dispatcher) is suppressed site by site with an audited
// //rofllint:ignore directive.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clock, global math/rand, map-order-dependent output, and select races in seeded packages",
	Run:  runDeterminism,
}

// forbiddenTimeFuncs read or depend on the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
}

// allowedRandFuncs construct seeded generators rather than drawing from
// the global one.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := pkgFuncCall(pass, n, "time"); ok && forbiddenTimeFuncs[name] {
					pass.Reportf(n.Pos(), "time.%s reads the wall clock in a seed-deterministic package; derive timing from the seeded schedule", name)
				}
				for _, randPath := range []string{"math/rand", "math/rand/v2"} {
					if name, ok := pkgFuncCall(pass, n, randPath); ok && !allowedRandFuncs[name] {
						pass.Reportf(n.Pos(), "rand.%s draws from the global math/rand generator; use a *rand.Rand seeded from the experiment or link seed", name)
					}
				}
			case *ast.SelectStmt:
				if commCount(n) >= 2 {
					pass.Reportf(n.Pos(), "select over %d channels resolves by runtime coin flip; a seed-deterministic path must have a single wake source", commCount(n))
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// commCount counts a select statement's communication clauses (the
// default clause excluded).
func commCount(s *ast.SelectStmt) int {
	n := 0
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			n++
		}
	}
	return n
}

// checkMapRange flags iteration over a map whose body feeds an
// order-sensitive sink. Order-independent map loops (summing counters,
// deleting every key, stopping all timers) pass untouched.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration publishes values in randomized map order; iterate a sorted key slice")
		case *ast.AssignStmt:
			if sink, ok := appendsToOuter(pass, n, rs); ok {
				pass.Reportf(n.Pos(), "append to %s inside map iteration records values in randomized map order; iterate a sorted key slice or sort afterwards", sink)
			}
		case *ast.CallExpr:
			if _, name, ok := methodCall(pass, n); ok && (name == "Count" || name == "Sample") {
				pass.Reportf(n.Pos(), "metrics %s inside map iteration charges observations in randomized map order; iterate a sorted key slice", name)
			}
			if name, ok := pkgFuncCall(pass, n, "fmt"); ok && printsOutput(name) {
				pass.Reportf(n.Pos(), "fmt.%s inside map iteration emits lines in randomized map order; iterate a sorted key slice", name)
			}
		}
		return true
	})
}

func printsOutput(name string) bool {
	switch name {
	case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
		return true
	}
	return false
}

// appendsToOuter reports whether assign grows a slice declared outside
// the range statement via append, returning the slice's name.
func appendsToOuter(pass *Pass, assign *ast.AssignStmt, rs *ast.RangeStmt) (string, bool) {
	for i, rhs := range assign.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.ObjectOf(fn).(*types.Builtin); !isBuiltin {
			continue
		}
		if i >= len(assign.Lhs) {
			continue
		}
		lhs, ok := assign.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.ObjectOf(lhs)
		if obj == nil {
			continue
		}
		// Declared outside the loop: the iteration order becomes the
		// slice's element order.
		if obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
			return lhs.Name, true
		}
	}
	return "", false
}
