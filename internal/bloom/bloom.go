// Package bloom implements the Bloom filters ROFL's interdomain design
// uses at border routers: an AS summarizes the set of host identifiers
// joined below it in the hierarchy so that (a) peering links can be used
// only for traffic actually destined to a peer's customer, with
// backtracking on false positives, and (b) pointer caches can be
// consulted without violating the isolation property (paper §4.1–4.2).
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
)

// Filter is a classic Bloom filter over byte-slice keys. It uses
// Kirsch–Mitzenmacher double hashing over two FNV-1a digests, which keeps
// insertion and lookup allocation-free after construction.
type Filter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     uint   // number of hash functions
	count int    // inserted keys (for stats; not a multiset count)
}

// New creates a filter with m bits and k hash functions. m is rounded up
// to a multiple of 64; m and k must be positive.
func New(m uint64, k uint) *Filter {
	if m == 0 || k == 0 {
		panic("bloom: m and k must be positive")
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewForCapacity sizes a filter for n expected keys at the target false
// positive rate p, using the standard m = -n·ln(p)/ln(2)² and
// k = (m/n)·ln(2) formulas. The paper trades filter size against false
// positive (backtracking) rate the same way (§2.3: "the size of bloom
// filters can be traded off against the false positive rate").
func NewForCapacity(n int, p float64) *Filter {
	if n <= 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("bloom: false-positive rate %v out of (0,1)", p))
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := uint(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

func (f *Filter) hashes(key []byte) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write(key)
	a := h1.Sum64()
	h2 := fnv.New64a()
	var salt [8]byte
	binary.BigEndian.PutUint64(salt[:], a)
	h2.Write(salt[:])
	h2.Write(key)
	b := h2.Sum64()
	if b == 0 {
		b = 0x9e3779b97f4a7c15 // avoid a degenerate stride
	}
	return a, b
}

// Add inserts key.
func (f *Filter) Add(key []byte) {
	a, b := f.hashes(key)
	for i := uint(0); i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.count++
}

// Contains reports whether key may have been inserted (false positives
// possible, false negatives not).
func (f *Filter) Contains(key []byte) bool {
	a, b := f.hashes(key)
	for i := uint(0); i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Union merges other into f. Both filters must have identical geometry.
// Border routers aggregate their customers' filters this way when
// summarizing a subtree.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: geometry mismatch (%d/%d vs %d/%d)", f.m, f.k, other.m, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.count += other.count
	return nil
}

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

// SizeBits returns the filter's size in bits — the per-AS state the
// paper reports (e.g. "74 Mbits of bloom filter state per AS", §6.4).
func (f *Filter) SizeBits() uint64 { return f.m }

// Count returns how many Add calls the filter absorbed.
func (f *Filter) Count() int { return f.count }

// FillRatio returns the fraction of set bits, a cheap estimator of the
// realized false-positive rate (fp ≈ fill^k).
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFalsePositiveRate returns fill^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}
