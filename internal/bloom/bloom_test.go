package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewForCapacity(1000, 0.01)
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %s", k)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := New(1<<12, 4)
	fn := func(key []byte) bool {
		f.Add(key)
		return f.Contains(key)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 5000
	target := 0.01
	f := NewForCapacity(n, target)
	for i := 0; i < n; i++ {
		f.Add([]byte(fmt.Sprintf("member-%d", i)))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains([]byte(fmt.Sprintf("non-member-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > target*3 {
		t.Fatalf("false positive rate %.4f far above target %.4f", rate, target)
	}
	if est := f.EstimatedFalsePositiveRate(); est > target*3 {
		t.Fatalf("estimated fp rate %.4f too high", est)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(1024, 3)
	if f.Contains([]byte("anything")) {
		t.Fatal("empty filter must be empty")
	}
	if f.Count() != 0 || f.FillRatio() != 0 {
		t.Fatal("empty filter stats wrong")
	}
}

func TestUnion(t *testing.T) {
	a := New(1024, 3)
	b := New(1024, 3)
	a.Add([]byte("in-a"))
	b.Add([]byte("in-b"))
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains([]byte("in-a")) || !a.Contains([]byte("in-b")) {
		t.Fatal("union must contain both sets")
	}
	if a.Count() != 2 {
		t.Fatalf("count = %d", a.Count())
	}
}

func TestUnionGeometryMismatch(t *testing.T) {
	a := New(1024, 3)
	b := New(2048, 3)
	if err := a.Union(b); err == nil {
		t.Fatal("mismatched geometry must error")
	}
	c := New(1024, 4)
	if err := a.Union(c); err == nil {
		t.Fatal("mismatched k must error")
	}
}

func TestReset(t *testing.T) {
	f := New(1024, 3)
	f.Add([]byte("x"))
	f.Reset()
	if f.Contains([]byte("x")) || f.Count() != 0 {
		t.Fatal("reset must clear the filter")
	}
}

func TestSizeBitsRoundedUp(t *testing.T) {
	f := New(100, 2)
	if f.SizeBits()%64 != 0 || f.SizeBits() < 100 {
		t.Fatalf("size = %d", f.SizeBits())
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 3) },
		func() { New(100, 0) },
		func() { NewForCapacity(10, 0) },
		func() { NewForCapacity(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid construction should panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewForCapacityDegenerate(t *testing.T) {
	f := NewForCapacity(0, 0.01) // clamps n to 1
	f.Add([]byte("x"))
	if !f.Contains([]byte("x")) {
		t.Fatal("degenerate filter still works")
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewForCapacity(100000, 0.01)
	rng := rand.New(rand.NewSource(1))
	key := make([]byte, 16)
	rng.Read(key)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		f.Add(key)
	}
}

func BenchmarkContains(b *testing.B) {
	f := NewForCapacity(100000, 0.01)
	key := make([]byte, 16)
	for i := 0; i < 100000; i++ {
		key[0], key[1] = byte(i), byte(i>>8)
		f.Add(key)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		f.Contains(key)
	}
}
