package canon

import (
	"fmt"
	"sort"

	"rofl/internal/ident"
	"rofl/internal/topology"
)

// This file implements interdomain failure handling (§2.3, §4.1): AS
// link failures shift traffic to surviving access links automatically
// (pointer source routes are recomputed against the live policy graph),
// and stub-AS failures tear down the dead identifiers and repair every
// ring level they had joined — the §6.3 failure experiment.

// FailASLink fails the adjacency between a and b. Multihomed ASes keep
// routing through their other providers; backup links activate when all
// primary links are down.
func (in *Internet) FailASLink(a, b topology.ASN) {
	in.failedLink[linkKey(a, b)] = true
}

// RestoreASLink restores a failed adjacency.
func (in *Internet) RestoreASLink(a, b topology.ASN) {
	delete(in.failedLink, linkKey(a, b))
}

// LinkFailed reports whether the adjacency is currently failed.
func (in *Internet) LinkFailed(a, b topology.ASN) bool {
	return in.failedLink[linkKey(a, b)]
}

// HostVirtual arranges for a provider AS to stand by as a virtual host
// for an identifier (§4.1): if the identifier's own AS fails, the
// provider takes over hosting and the identifier stays reachable. The
// standby AS must be in the identifier's current up-hierarchy.
func (in *Internet) HostVirtual(id ident.ID, provider topology.ASN) error {
	at, ok := in.hostedAt[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownID, id.Short())
	}
	if !in.G.InUpHierarchy(at, provider, true) {
		return fmt.Errorf("canon: AS %d is not a provider of %s's AS %d", provider, id.Short(), at)
	}
	in.virtualHosts[id] = provider
	return nil
}

// FailAS crashes an AS: every identifier it hosted leaves all its rings,
// with ring neighbors repaired level by level. The repair cost — charged
// to MsgRepair — "roughly corresponds to the number of identifiers
// hosted in the failed stub" (§6.3). Identifiers with a virtual-server
// arrangement (§4.1, HostVirtual) migrate to their standby provider and
// stay reachable; the rest are torn down. Returns the number of
// identifiers removed.
func (in *Internet) FailAS(a topology.ASN) int {
	if in.failedAS[a] {
		return 0
	}
	in.failedAS[a] = true
	dead := in.ases[a].VNs
	in.ases[a].VNs = make(map[ident.ID]*VNode)
	ids := make([]ident.ID, 0, len(dead))
	for id := range dead {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	var migrate []*VNode
	for _, id := range ids {
		delete(in.hostedAt, id)
		in.unlink(dead[id], MsgRepair)
		if standby, ok := in.virtualHosts[id]; ok && !in.failedAS[standby] {
			vn := dead[id]
			vn.AS = standby
			migrate = append(migrate, vn)
		}
	}
	// Caches everywhere purge pointers at the dead AS (driven by
	// reachability change).
	for _, as := range in.ases {
		if as.Cache != nil {
			as.Cache.RemoveAS(int(a))
		}
	}
	// Fingers pointing at dead identifiers are dropped lazily at use;
	// sweep them here to keep state tidy.
	in.sweepFingers(a)
	// Standby providers re-join the migrated identifiers from their own
	// position in the hierarchy.
	removed := len(ids) - len(migrate)
	for _, vn := range migrate {
		if _, err := in.Join(vn.ID, vn.AS, vn.Strategy); err != nil {
			removed++ // migration failed; the identifier is gone after all
		}
	}
	return removed
}

// Leave removes one identifier gracefully from every ring it joined.
func (in *Internet) Leave(id ident.ID) error {
	a, ok := in.hostedAt[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownID, id.Short())
	}
	vn := in.ases[a].VNs[id]
	delete(in.ases[a].VNs, id)
	delete(in.hostedAt, id)
	in.unlink(vn, MsgTeardown)
	for _, as := range in.ases {
		if as.Cache != nil {
			as.Cache.Remove(id)
		}
	}
	in.sweepFingerID(id)
	delete(in.virtualHosts, id)
	return nil
}

// sweepFingerID drops finger entries pointing at one departed
// identifier.
func (in *Internet) sweepFingerID(id ident.ID) {
	for _, as := range in.ases {
		for _, vn := range as.VNs {
			kept := vn.Fingers[:0]
			for _, f := range vn.Fingers {
				if f.ID == id {
					continue
				}
				kept = append(kept, f)
			}
			vn.Fingers = kept
		}
	}
}

// unlink removes vn from every ring it joined, splicing the ring's
// *current* neighbors together (not vn's possibly stale pointers — when
// several co-hosted identifiers die together, an already-removed
// neighbor's pointers would otherwise poison the splice) and charging
// the per-level notification cost.
func (in *Internet) unlink(vn *VNode, counter string) {
	self := Ptr{ID: vn.ID, AS: vn.AS}
	for root := range vn.SuccAt {
		ring := in.rings[root]
		i := sort.Search(len(ring), func(k int) bool { return !ring[k].ID.Less(vn.ID) })
		if !(i < len(ring) && ring[i] == self) {
			continue
		}
		ring = append(ring[:i], ring[i+1:]...)
		in.rings[root] = ring
		if len(ring) == 0 {
			continue
		}
		n := len(ring)
		pred := ring[(i-1+n)%n]
		succ := ring[i%n]
		if pvn := in.vnOf(pred.ID); pvn != nil {
			pvn.SuccAt[root] = succ
		}
		if svn := in.vnOf(succ.ID); svn != nil {
			svn.PredAt[root] = pred
		}
		if h := in.hopsWithin(root, pred.AS, succ.AS); h > 0 {
			in.Metrics.Count(counter, int64(h))
		} else {
			in.Metrics.Count(counter, 1)
		}
	}
}

// sweepFingers drops finger entries pointing at identifiers hosted in a
// dead AS.
func (in *Internet) sweepFingers(deadAS topology.ASN) {
	for _, as := range in.ases {
		for _, vn := range as.VNs {
			kept := vn.Fingers[:0]
			for _, f := range vn.Fingers {
				if f.AS == deadAS {
					continue
				}
				kept = append(kept, f)
			}
			vn.Fingers = kept
		}
	}
}

// CheckRings verifies every ring level: members sorted by identifier
// must each point at the adjacent member with SuccAt/PredAt, all members
// must be alive, hosted where the oracle says, and inside the level's
// subtree. This is the interdomain analogue of the paper's simulator
// consistency checks.
func (in *Internet) CheckRings() error {
	for root, ring := range in.rings {
		for i, p := range ring {
			if in.failedAS[p.AS] {
				return fmt.Errorf("%w: dead AS %d still in ring %v", ErrRingBroken, p.AS, root)
			}
			if host, ok := in.hostedAt[p.ID]; !ok || host != p.AS {
				return fmt.Errorf("%w: ring %v member %s not hosted at AS %d", ErrRingBroken, root, p.ID.Short(), p.AS)
			}
			if !in.inSubtree(root, p.AS) {
				return fmt.Errorf("%w: ring %v member %s outside subtree", ErrRingBroken, root, p.ID.Short())
			}
			vn := in.ases[p.AS].VNs[p.ID]
			if vn == nil {
				return fmt.Errorf("%w: ring %v member %s missing VNode", ErrRingBroken, root, p.ID.Short())
			}
			wantSucc := ring[(i+1)%len(ring)]
			wantPred := ring[(i-1+len(ring))%len(ring)]
			if got := vn.SuccAt[root]; got != wantSucc {
				return fmt.Errorf("%w: ring %v: %s succ = %s want %s",
					ErrRingBroken, root, p.ID.Short(), got.ID.Short(), wantSucc.ID.Short())
			}
			if got := vn.PredAt[root]; got != wantPred {
				return fmt.Errorf("%w: ring %v: %s pred = %s want %s",
					ErrRingBroken, root, p.ID.Short(), got.ID.Short(), wantPred.ID.Short())
			}
		}
		// Sortedness of the ring storage itself.
		for i := 1; i < len(ring); i++ {
			//rofllint:ignore identcmp asserting sorted storage, the documented Less use; the check verifies linear order on purpose
			if !ring[i-1].ID.Less(ring[i].ID) {
				return fmt.Errorf("%w: ring %v not sorted at %d", ErrRingBroken, root, i)
			}
		}
	}
	return nil
}

// RingSize returns the membership count of a level (0 when absent).
func (in *Internet) RingSize(r Root) int { return len(in.rings[r]) }

// CheckIsolationState verifies the paper's isolation invariant on the
// routing state itself (§4.1: "if this table is correctly maintained,
// the isolation property is preserved"): every ring pointer at level R
// must connect two ASes inside subtree(R), and every finger must carry a
// root whose subtree contains both its owner and its target. Packets
// only ever follow such pointers along policy paths confined to the
// pointer's subtree, so state-level isolation is what bounds where
// traffic can go.
func (in *Internet) CheckIsolationState() error {
	for _, as := range in.ases {
		for _, vn := range as.VNs {
			for root, p := range vn.SuccAt {
				if !in.inSubtree(root, vn.AS) || !in.inSubtree(root, p.AS) {
					return fmt.Errorf("%w: succ pointer %s→%s escapes subtree %v",
						ErrRingBroken, vn.ID.Short(), p.ID.Short(), root)
				}
			}
			for root, p := range vn.PredAt {
				if !in.inSubtree(root, vn.AS) || !in.inSubtree(root, p.AS) {
					return fmt.Errorf("%w: pred pointer %s→%s escapes subtree %v",
						ErrRingBroken, vn.ID.Short(), p.ID.Short(), root)
				}
			}
			for _, f := range vn.Fingers {
				if !in.inSubtree(f.Root, vn.AS) || !in.inSubtree(f.Root, f.AS) {
					return fmt.Errorf("%w: finger %s→%s escapes subtree %v",
						ErrRingBroken, vn.ID.Short(), f.ID.Short(), f.Root)
				}
			}
		}
	}
	return nil
}
