package canon

import (
	"errors"
	"fmt"
	"sort"

	"rofl/internal/ident"
	"rofl/internal/topology"
)

// Errors returned by Internet operations.
var (
	ErrDuplicateID = errors.New("canon: identifier already joined")
	ErrUnknownID   = errors.New("canon: identifier not joined")
	ErrASDown      = errors.New("canon: AS is down")
	ErrNoRoute     = errors.New("canon: no policy-compliant route")
	ErrTTL         = errors.New("canon: TTL exceeded")
	ErrRingBroken  = errors.New("canon: ring invariant violated")
)

// JoinResult reports the cost of one interdomain join — the Fig 8a
// metric.
type JoinResult struct {
	VN     *VNode
	Msgs   int
	Levels int // ring levels actually joined
}

// rootsFor computes the ring levels a join covers under the given
// strategy (§4.2). Ephemeral hosts join only the global ring; a
// single-homed join walks one provider chain; a recursively multihomed
// join covers every AS in the up-hierarchy; a peering join additionally
// joins the virtual AS of every peering link adjacent to the
// up-hierarchy — unless Bloom peering is enabled, which replaces those
// joins with data-path filter checks ("using the bloom filter
// optimization reduced the overhead of the peering join to be equal to
// the overhead of the recursively multihomed join", §6.3).
func (in *Internet) rootsFor(x topology.ASN, s Strategy) []Root {
	switch s {
	case Ephemeral:
		return []Root{Top}
	case SingleHomed:
		roots := []Root{asRoot(x)}
		cur := x
		for in.G.Tier(cur) != 1 {
			provs := in.activeProviders(cur)
			if len(provs) == 0 {
				break
			}
			cur = provs[0]
			roots = append(roots, asRoot(cur))
		}
		return append(roots, Top)
	case Multihomed, Peering:
		up := in.G.UpHierarchyLevels(x, false)
		var roots []Root
		seen := map[Root]bool{}
		for _, level := range up {
			for _, a := range level {
				r := asRoot(a)
				if !seen[r] {
					seen[r] = true
					roots = append(roots, r)
				}
			}
		}
		if s == Peering && !in.opts.BloomPeering {
			// Virtual ASes for peering links adjacent to the
			// up-hierarchy (Fig 4a). The tier-1 clique is covered by the
			// single Top virtual AS, so only lower peerings get their
			// own.
			for _, level := range up {
				for _, a := range level {
					if in.G.Tier(a) == 1 {
						continue
					}
					for _, q := range in.G.Peers(a) {
						if in.G.Tier(q) == 1 {
							continue
						}
						r := peerRoot(a, q)
						if !seen[r] {
							seen[r] = true
							roots = append(roots, r)
						}
					}
				}
			}
		}
		return append(roots, Top)
	default:
		return []Root{Top}
	}
}

// Join splices id into the rings selected by the strategy, discovering a
// predecessor and successor at each level (join_external, Algorithm 3),
// acquires proximity fingers up to the configured budget, and updates
// the Bloom filters of every ancestor. Redundant per-level lookups that
// resolve to an already-discovered successor are collapsed to a single
// confirmation message — the optimization the paper uses to keep
// multihomed joins close to single-homed cost (§6.3).
func (in *Internet) Join(id ident.ID, at topology.ASN, s Strategy) (JoinResult, error) {
	if in.failedAS[at] {
		return JoinResult{}, ErrASDown
	}
	if _, dup := in.hostedAt[id]; dup {
		return JoinResult{}, fmt.Errorf("%w: %s", ErrDuplicateID, id.Short())
	}
	vn := &VNode{
		ID: id, AS: at, Strategy: s,
		SuccAt: make(map[Root]Ptr),
		PredAt: make(map[Root]Ptr),
	}
	msgs := 0
	levels := 0
	seenSuccs := map[ident.ID]bool{}
	roots := in.rootsFor(at, s)
	// Join lowest levels first, as the recursive bottom-up merge does.
	sort.Slice(roots, func(i, j int) bool {
		si, sj := in.subtreeSize(roots[i]), in.subtreeSize(roots[j])
		if si != sj {
			return si < sj
		}
		return rootLess(roots[i], roots[j])
	})
	self := Ptr{ID: id, AS: at}
	for _, root := range roots {
		ring := in.rings[root]
		i := sort.Search(len(ring), func(k int) bool { return !ring[k].ID.Less(id) })
		var pred, succ Ptr
		haveNbrs := len(ring) > 0
		if haveNbrs {
			pred = ring[(i-1+len(ring))%len(ring)]
			succ = ring[i%len(ring)]
		}
		// Message accounting: route to the predecessor within this
		// level's subtree and back, then notify the successor and get an
		// ack. A lookup resolving to an already-seen successor is
		// eliminated after a single confirmation (2 messages).
		if haveNbrs {
			if seenSuccs[succ.ID] {
				msgs += 2
			} else {
				if h := in.hopsWithin(root, at, pred.AS); h > 0 {
					msgs += 2 * h
					in.cacheAlong(in.pathWithin(root, at, pred.AS), self)
				}
				if h := in.hopsWithin(root, at, succ.AS); h > 0 {
					msgs += 2 * h
					in.cacheAlong(in.pathWithin(root, at, succ.AS), self)
				}
				seenSuccs[succ.ID] = true
			}
		}
		// Splice the ring state.
		if haveNbrs {
			vn.PredAt[root] = pred
			vn.SuccAt[root] = succ
			if pvn := in.vnOf(pred.ID); pvn != nil {
				pvn.SuccAt[root] = self
			}
			if svn := in.vnOf(succ.ID); svn != nil {
				svn.PredAt[root] = self
			}
		} else {
			// First member of this level: self-ring.
			vn.PredAt[root] = self
			vn.SuccAt[root] = self
		}
		// Insert into the sorted ring.
		ring = append(ring, Ptr{})
		copy(ring[i+1:], ring[i:])
		ring[i] = self
		in.rings[root] = ring
		levels++
	}

	in.ases[at].VNs[id] = vn
	in.hostedAt[id] = at

	// Ancestor Bloom filters learn the new identifier (§4.1: "these
	// bloom filters are also updated during the join process").
	if in.ases[at].Bloom != nil {
		for a := range in.G.UpHierarchy(at, false) {
			if f := in.ases[a].Bloom; f != nil {
				f.Add(id[:])
			}
		}
	}

	// Proximity fingers (§4.1): one acquisition message per entry, which
	// reproduces the paper's join-overhead-vs-finger-count tradeoff
	// (~445 messages for 340 fingers, §6.4).
	if in.opts.FingerBudget > 0 {
		vn.Fingers = in.acquireFingers(vn, in.opts.FingerBudget)
		msgs += len(vn.Fingers)
		// The join "also record[s] a list of IDs that need to insert J"
		// and multicasts the new identifier to them (§4.1): existing
		// nodes adopt the newcomer where it fills or improves a slot.
		msgs += in.backInsertFinger(vn)
	}

	in.Metrics.Count(MsgJoin, int64(msgs))
	in.Metrics.Sample(SampleJoinMsgs, float64(msgs))
	return JoinResult{VN: vn, Msgs: msgs, Levels: levels}, nil
}

// cacheAlong deposits a pointer in the caches of every AS a control
// message traverses.
func (in *Internet) cacheAlong(path []topology.ASN, p Ptr) {
	if in.opts.CacheCapacity <= 0 {
		return
	}
	for _, a := range path {
		if a != p.AS {
			in.ases[a].Cache.Insert(p)
		}
	}
}

// vnOf resolves a joined identifier to its VNode.
func (in *Internet) vnOf(id ident.ID) *VNode {
	a, ok := in.hostedAt[id]
	if !ok {
		return nil
	}
	return in.ases[a].VNs[id]
}

// acquireFingers fills a Pastry-style prefix table: slot (row, col)
// wants an identifier sharing `row` leading digits with vn.ID and having
// digit `col` next. Among matching identifiers the entry "resides in the
// lower-most level of the hierarchy (relative to X)" — we pick the
// candidate whose lowest joined root containing vn's AS has the smallest
// subtree, breaking ties by policy-path proximity (§4.1). Rows are
// filled in order until the budget runs out.
func (in *Internet) acquireFingers(vn *VNode, budget int) []Finger {
	type slot struct{ row, col int }
	best := make(map[slot]Finger)
	bestKey := make(map[slot][2]int) // (subtree size, path hops)
	for id, hostAS := range in.hostedAt {
		if id == vn.ID {
			continue
		}
		row := ident.CommonPrefixLen(vn.ID, id) / ident.DigitBits
		if row >= ident.Digits {
			continue
		}
		col := id.Digit(row)
		k := slot{row, col}
		other := in.vnOf(id)
		if other == nil {
			continue
		}
		root, ok := in.lowestCommonRoot(other, vn.AS)
		if !ok {
			continue
		}
		hops := in.hopsWithin(root, vn.AS, hostAS)
		if hops < 0 {
			continue
		}
		key := [2]int{in.subtreeSize(root), hops}
		if in.opts.RandomFingers {
			// Ablation: ignore proximity and level, keep the smallest
			// identifier per slot (deterministic but arbitrary).
			key = [2]int{0, 0}
		}
		cur, exists := bestKey[k]
		// Ties break on identifier so the result is independent of map
		// iteration order.
		better := !exists || key[0] < cur[0] ||
			(key[0] == cur[0] && key[1] < cur[1]) ||
			//rofllint:ignore identcmp documented tie-break: any total order works, both sides of the protocol use this one
			(key == cur && id.Less(best[k].ID))
		if better {
			bestKey[k] = key
			best[k] = Finger{Ptr: Ptr{ID: id, AS: hostAS}, Root: root}
		}
	}
	// Fill row-major until the budget is exhausted.
	keys := make([]slot, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].row != keys[j].row {
			return keys[i].row < keys[j].row
		}
		return keys[i].col < keys[j].col
	})
	out := make([]Finger, 0, budget)
	for _, k := range keys {
		if len(out) >= budget {
			break
		}
		out = append(out, best[k])
	}
	return out
}

// backInsertFinger offers a newly joined identifier to every existing
// node's finger table, filling empty slots and replacing entries the
// newcomer beats on (level, proximity). Returns the number of insertion
// messages charged (one per table updated).
func (in *Internet) backInsertFinger(newVN *VNode) int {
	budget := in.opts.FingerBudget
	maxRows := (budget + 14) / 15 // 15 foreign columns per 4-bit digit row
	msgs := 0
	for _, as := range in.ases {
		for _, vn := range as.VNs {
			if vn == newVN || len(vn.Fingers) == 0 && budget == 0 {
				continue
			}
			row := ident.CommonPrefixLen(vn.ID, newVN.ID) / ident.DigitBits
			if row >= ident.Digits || row >= maxRows {
				continue
			}
			col := newVN.ID.Digit(row)
			root, ok := in.lowestCommonRoot(newVN, vn.AS)
			if !ok {
				continue
			}
			hops := in.hopsWithin(root, vn.AS, newVN.AS)
			if hops < 0 {
				continue
			}
			// Find the existing entry in the same slot, if any.
			slotIdx := -1
			for i, f := range vn.Fingers {
				r := ident.CommonPrefixLen(vn.ID, f.ID) / ident.DigitBits
				if r == row && f.ID.Digit(r) == col {
					slotIdx = i
					break
				}
			}
			cand := Finger{Ptr: Ptr{ID: newVN.ID, AS: newVN.AS}, Root: root}
			switch {
			case slotIdx == -1 && len(vn.Fingers) < budget:
				vn.Fingers = append(vn.Fingers, cand)
				msgs++
			case slotIdx >= 0:
				old := vn.Fingers[slotIdx]
				oldSize := int(^uint(0) >> 1)
				oldHops := oldSize
				if ovn := in.vnOf(old.ID); ovn != nil {
					if oldRoot, okOld := in.lowestCommonRoot(ovn, vn.AS); okOld {
						oldSize = in.subtreeSize(oldRoot)
						if h := in.hopsWithin(oldRoot, vn.AS, old.AS); h >= 0 {
							oldHops = h
						}
					}
				}
				newSize := in.subtreeSize(root)
				if newSize < oldSize || (newSize == oldSize && hops < oldHops) {
					vn.Fingers[slotIdx] = cand
					msgs++
				}
			}
		}
	}
	return msgs
}

// lowestCommonRoot returns the smallest-subtree root that `other` joined
// and whose subtree contains fromAS — the level a pointer to `other` is
// usable at without violating isolation.
func (in *Internet) lowestCommonRoot(other *VNode, fromAS topology.ASN) (Root, bool) {
	if other == nil {
		return Root{}, false
	}
	var best Root
	bestSize := -1
	for r := range other.SuccAt {
		if !in.inSubtree(r, fromAS) {
			continue
		}
		s := in.subtreeSize(r)
		if bestSize == -1 || s < bestSize || (s == bestSize && rootLess(r, best)) {
			best, bestSize = r, s
		}
	}
	return best, bestSize != -1
}
