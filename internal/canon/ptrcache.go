package canon

import (
	"sort"

	"rofl/internal/ident"
)

// ptrCache is the AS-granularity pointer cache of §4.1 ("Exploiting
// reference locality"): a bounded LRU of overheard (identifier → AS)
// pointers kept in identifier order for closest-without-overshoot
// lookups. Its use on the data path is guarded by the AS's Bloom filter
// so shortcuts never violate the isolation property.
type ptrCache struct {
	cap     int
	entries []ptrEntry
	clock   uint64
}

type ptrEntry struct {
	Ptr
	lastUsed uint64
}

func newPtrCache(capacity int) *ptrCache { return &ptrCache{cap: capacity} }

func (c *ptrCache) Len() int { return len(c.entries) }

func (c *ptrCache) find(id ident.ID) (int, bool) {
	i := sort.Search(len(c.entries), func(k int) bool { return !c.entries[k].ID.Less(id) })
	if i < len(c.entries) && c.entries[i].ID == id {
		return i, true
	}
	return i, false
}

func (c *ptrCache) Insert(p Ptr) {
	if c.cap <= 0 {
		return
	}
	c.clock++
	if i, ok := c.find(p.ID); ok {
		c.entries[i].AS = p.AS
		c.entries[i].lastUsed = c.clock
		return
	}
	if len(c.entries) >= c.cap {
		victim := 0
		for i := 1; i < len(c.entries); i++ {
			if c.entries[i].lastUsed < c.entries[victim].lastUsed {
				victim = i
			}
		}
		c.entries = append(c.entries[:victim], c.entries[victim+1:]...)
	}
	i, _ := c.find(p.ID)
	c.entries = append(c.entries, ptrEntry{})
	copy(c.entries[i+1:], c.entries[i:])
	c.entries[i] = ptrEntry{Ptr: p, lastUsed: c.clock}
}

func (c *ptrCache) Remove(id ident.ID) {
	if i, ok := c.find(id); ok {
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
	}
}

// RemoveAS drops every entry pointing at a dead AS.
func (c *ptrCache) RemoveAS(a int) int {
	kept := c.entries[:0]
	removed := 0
	for _, e := range c.entries {
		if int(e.AS) == a {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	c.entries = kept
	return removed
}

// Lookup returns the cached pointer closest to dst without overshooting
// from pos.
func (c *ptrCache) Lookup(pos, dst ident.ID) (Ptr, bool) {
	n := len(c.entries)
	if n == 0 {
		return Ptr{}, false
	}
	i := sort.Search(n, func(k int) bool { return dst.Less(c.entries[k].ID) })
	idx := i - 1
	if idx < 0 {
		idx = n - 1
	}
	e := c.entries[idx]
	if !ident.Progress(pos, dst, e.ID) {
		return Ptr{}, false
	}
	c.clock++
	c.entries[idx].lastUsed = c.clock
	return e.Ptr, true
}
