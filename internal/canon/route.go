package canon

import (
	"fmt"

	"rofl/internal/ident"
	"rofl/internal/topology"
)

// RouteResult reports one interdomain packet's fate.
type RouteResult struct {
	Delivered bool
	// ASHops is the number of AS-level links traversed.
	ASHops int
	// Traversed is the AS-level path, source AS first.
	Traversed []topology.ASN
	// StrictlyIsolated reports that the path stayed within the lowest
	// common subtree the destination's join strategy makes achievable.
	// On tree-shaped hierarchies this always holds (the paper's provable
	// case); on DAGs with multihoming a source cannot locally tell which
	// of its provider cones contains the destination, so this is a
	// diagnostic rate, not an invariant — the invariant ROFL maintains is
	// state-level isolation, verified by CheckIsolationState.
	StrictlyIsolated bool
	// Backtracks counts Bloom-filter false positives that bounced off a
	// peering link.
	Backtracks int
	// FinalAS is where the packet was delivered.
	FinalAS topology.ASN
}

const routeTTL = 4096

// staleKey marks one pointer unusable at one specific ring level during
// a single routing attempt.
type staleKey struct {
	Ptr  Ptr
	Root Root
}

// Route forwards a packet from the joined identifier src toward dst,
// using augmented greedy routing (§2.3): at each AS, among the resident
// virtual nodes' ring pointers and fingers, pick the identifier closest
// to dst without overshooting — always preferring the lowest hierarchy
// level at which progress is possible, which is exactly what preserves
// the isolation property. AS-granularity pointer caches may shortcut
// when the local Bloom filter proves the destination is not in the
// local customer cone; Bloom peering crosses a peering link when a
// peer's filter claims the destination, backtracking on false positives.
func (in *Internet) Route(src, dst ident.ID) (RouteResult, error) {
	srcAS, ok := in.hostedAt[src]
	if !ok {
		return RouteResult{}, fmt.Errorf("%w: source %s", ErrUnknownID, src.Short())
	}
	return in.route(srcAS, src, dst)
}

// RouteFromAS forwards a packet injected at an arbitrary AS, using any
// resident virtual node as the starting ring position.
func (in *Internet) RouteFromAS(from topology.ASN, dst ident.ID) (RouteResult, error) {
	var pos ident.ID
	found := false
	for id := range in.ases[from].VNs {
		//rofllint:ignore identcmp canonical minimum-ID selection to pick a start position deterministically; not a routing decision
		if !found || id.Less(pos) {
			pos, found = id, true
		}
	}
	if !found {
		return RouteResult{}, fmt.Errorf("%w: AS %d hosts no identifiers to route from", ErrUnknownID, from)
	}
	return in.route(from, pos, dst)
}

func (in *Internet) route(srcAS topology.ASN, pos, dst ident.ID) (RouteResult, error) {
	if in.failedAS[srcAS] {
		return RouteResult{}, ErrASDown
	}
	res := RouteResult{Traversed: []topology.ASN{srcAS}}
	cur := srcAS
	// Staleness is per (pointer, level): a pointer can be unreachable
	// within one level's subtree (its policy path is down) while the same
	// target is perfectly reachable at a higher level.
	stale := map[staleKey]bool{}
	checkedPeer := map[topology.ASN]bool{}
	var peerCrossings []Root
	// The pointer the packet is heading for, re-evaluated at every AS it
	// transits: border routers with richer state re-aim the packet toward
	// strictly closer identifiers (the augmented greedy of §2.3).
	var target Ptr
	var targetRoot Root
	haveTarget := false

	deliver := func(at topology.ASN) (RouteResult, error) {
		res.Delivered = true
		res.FinalAS = at
		res.StrictlyIsolated = in.isolationOK(srcAS, dst, res.Traversed, peerCrossings)
		if !res.StrictlyIsolated {
			in.Metrics.Count(CtrIsolationViolations, 1)
		}
		in.fillCachesOnDelivery(res.Traversed, Ptr{ID: dst, AS: at})
		return res, nil
	}

	for ttl := routeTTL; ttl > 0; ttl-- {
		as := in.ases[cur]
		if _, here := as.VNs[dst]; here {
			return deliver(cur)
		}

		// Free local advance: hop to the resident virtual node closest to
		// dst without overshooting.
		for id := range as.VNs {
			if ident.Progress(pos, dst, id) && id.Distance(dst).Cmp(pos.Distance(dst)) < 0 {
				pos = id
			}
		}

		sel, selRoot, ok := in.selectPointer(as, pos, dst, stale)
		if ok && sel.AS == cur {
			pos = sel.ID
			haveTarget = false
			continue
		}
		if ok && (!haveTarget || sel.ID.Distance(dst).Cmp(target.ID.Distance(dst)) < 0) {
			target, targetRoot, haveTarget = sel, selRoot, true
		}

		// Bloom peering (§4.2 option 2): before escalating to the global
		// ring, ask each peer's filter whether the destination is in its
		// customer cone; cross the peering link on a hit.
		if in.opts.BloomPeering && (!haveTarget || targetRoot == Top) {
			_, delivered := in.tryBloomPeering(cur, dst, checkedPeer, &res)
			if delivered {
				return deliver(res.FinalAS)
			}
		}

		if !haveTarget {
			return res, fmt.Errorf("%w: stuck at AS %d (predecessor of %s)", ErrNoRoute, cur, dst.Short())
		}
		if target.AS == cur {
			// Arrived: confirm the target still hosts the identifier.
			if _, resident := as.VNs[target.ID]; resident {
				pos = target.ID
			} else {
				stale[staleKey{target, targetRoot}] = true
			}
			haveTarget = false
			continue
		}
		path := in.pathWithin(targetRoot, cur, target.AS)
		if len(path) < 2 {
			stale[staleKey{target, targetRoot}] = true
			haveTarget = false
			continue
		}
		// One AS-level hop toward the target.
		next := path[1]
		res.ASHops++
		in.Metrics.Count(MsgData, 1)
		res.Traversed = append(res.Traversed, next)
		if targetRoot.Kind == RootPeer &&
			((cur == targetRoot.A && next == targetRoot.B) || (cur == targetRoot.B && next == targetRoot.A)) {
			peerCrossings = append(peerCrossings, targetRoot)
		}
		cur = next
	}
	return res, ErrTTL
}

// selectPointer implements the level-disciplined candidate choice: scan
// ring levels from the smallest subtree upward and return the closest
// progressing pointer at the first level that has one. Fingers
// participate at their annotated level; the pointer cache may override
// the choice when its entry is strictly closer and the local Bloom
// filter confirms the destination is not in the local customer cone
// (§4.1's isolation guard for caches).
func (in *Internet) selectPointer(as *AS, pos, dst ident.ID, stale map[staleKey]bool) (Ptr, Root, bool) {
	var best Ptr
	var bestRoot Root
	bestSize := -1
	var bestDist ident.ID
	consider := func(p Ptr, r Root) {
		if stale[staleKey{p, r}] || !ident.Progress(pos, dst, p.ID) {
			return
		}
		size := in.subtreeSize(r)
		d := p.ID.Distance(dst)
		if bestSize == -1 ||
			size < bestSize ||
			(size == bestSize && d.Cmp(bestDist) < 0) {
			best, bestRoot, bestSize, bestDist = p, r, size, d
		}
	}
	for _, vn := range as.VNs {
		for r, p := range vn.SuccAt {
			consider(p, r)
		}
		for r, p := range vn.PredAt {
			consider(p, r)
		}
		for _, f := range vn.Fingers {
			consider(f.Ptr, f.Root)
		}
	}
	found := bestSize != -1

	// Cache shortcut, Bloom-guarded.
	if as.Cache != nil && as.Cache.Len() > 0 {
		dstBelowUs := as.Bloom != nil && as.Bloom.Contains(dst[:])
		if !dstBelowUs {
			if c, ok := as.Cache.Lookup(pos, dst); ok && !stale[staleKey{c, Top}] {
				if !found || c.ID.Distance(dst).Cmp(bestDist) < 0 {
					return c, Top, true
				}
			}
		}
	}
	return best, bestRoot, found
}

// tryBloomPeering checks each unexamined peer's filter for dst. On a
// true hit the packet crosses the link and descends the peer's customer
// cone to the destination; on a false positive it crosses, discovers the
// miss, and is "returned via the peering link" (§2.3) — two wasted hops
// and a backtrack. Returns (attempted, delivered).
func (in *Internet) tryBloomPeering(cur topology.ASN, dst ident.ID, checked map[topology.ASN]bool, res *RouteResult) (bool, bool) {
	dstAS, joined := in.hostedAt[dst]
	attempted := false
	for _, q := range in.G.Peers(cur) {
		if checked[q] || !in.linkUp(cur, q) {
			continue
		}
		f := in.ases[q].Bloom
		if f == nil || !f.Contains(dst[:]) {
			checked[q] = true
			continue
		}
		checked[q] = true
		attempted = true
		// Cross the peering link.
		res.ASHops++
		in.Metrics.Count(MsgData, 1)
		res.Traversed = append(res.Traversed, q)
		if joined && in.below[q][dstAS] {
			// Descend q's customer cone to the destination.
			down := in.pathWithin(asRoot(q), q, dstAS)
			if down != nil {
				res.ASHops += len(down) - 1
				in.Metrics.Count(MsgData, int64(len(down)-1))
				res.Traversed = append(res.Traversed, down[1:]...)
				res.Delivered = true
				res.FinalAS = dstAS
				return true, true
			}
		}
		// False positive (or unreachable): bounce back.
		res.ASHops++
		in.Metrics.Count(MsgData, 1)
		in.Metrics.Count(CtrBloomBacktracks, 1)
		res.Backtracks++
		res.Traversed = append(res.Traversed, cur)
	}
	return attempted, false
}

// isolationOK verifies the isolation property for a delivered packet:
// the traversed ASes must all lie within the subtree of the smallest
// root the destination joined that also contains the source AS,
// optionally unioned with the peer subtrees of any peering links the
// packet legitimately crossed (virtual-AS or Bloom crossings).
func (in *Internet) isolationOK(srcAS topology.ASN, dst ident.ID, traversed []topology.ASN, peerCrossings []Root) bool {
	dvn := in.vnOf(dst)
	if dvn == nil {
		return false
	}
	root, ok := in.lowestCommonRoot(dvn, srcAS)
	if !ok {
		return false
	}
	allowed := func(a topology.ASN) bool {
		if in.inSubtree(root, a) {
			return true
		}
		for _, pr := range peerCrossings {
			if in.inSubtree(pr, a) {
				return true
			}
		}
		// Bloom crossings: any peer of a traversed AS whose cone we
		// entered is recorded in traversed itself; accept descent inside
		// any peer cone adjacent to the source's up-hierarchy.
		return false
	}
	for _, a := range traversed {
		if !allowed(a) {
			// Bloom-mode crossings do not carry explicit peer roots;
			// tolerate ASes reachable by one peer step from the allowed
			// subtree when Bloom peering is enabled.
			if in.opts.BloomPeering && in.nearAllowedPeer(root, a) {
				continue
			}
			return false
		}
	}
	return true
}

// nearAllowedPeer reports whether AS a is inside the customer cone of a
// peer of some AS in root's subtree — the region Bloom peering may
// legitimately enter.
func (in *Internet) nearAllowedPeer(root Root, a topology.ASN) bool {
	for p := 0; p < in.G.NumASes(); p++ {
		pa := topology.ASN(p)
		if !in.below[pa][a] {
			continue
		}
		for _, q := range in.G.Peers(pa) {
			if in.inSubtree(root, q) {
				return true
			}
		}
	}
	return false
}

// fillCachesOnDelivery deposits the destination pointer in the caches of
// every AS the packet traversed — "routers maintain caches in fast
// memory which contain frequently accessed routes" (§4.1).
func (in *Internet) fillCachesOnDelivery(traversed []topology.ASN, p Ptr) {
	if in.opts.CacheCapacity <= 0 {
		return
	}
	for _, a := range traversed {
		if a != p.AS {
			in.ases[a].Cache.Insert(p)
		}
	}
}
