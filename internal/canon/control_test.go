package canon

import (
	"errors"
	"math/rand"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

func TestNegotiateAndRouteDirect(t *testing.T) {
	in, g := genInternet(t, DefaultOptions())
	ids := joinMany(t, in, g, 150, Multihomed, 21)
	rng := rand.New(rand.NewSource(22))
	negotiated := 0
	for i := 0; i < 60; i++ {
		src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if src == dst {
			continue
		}
		n, err := in.Negotiate(src, dst, nil)
		if err != nil {
			t.Fatalf("negotiate: %v", err)
		}
		if !n.FirstPacket.Delivered {
			t.Fatal("first packet must deliver")
		}
		// The negotiated set is small: bounded by the two up-hierarchies.
		if len(n.Allowed) > g.NumASes()/2 {
			t.Fatalf("negotiated set too large: %d", len(n.Allowed))
		}
		path, err := in.RouteNegotiated(n)
		if err != nil {
			continue // negotiated set may lack a path for odd pairs
		}
		negotiated++
		// Subsequent packets: direct policy path, at most the greedy cost
		// and usually far less ("stretch ... reduced to one").
		if len(path)-1 > n.FirstPacket.ASHops {
			t.Fatalf("negotiated path (%d hops) worse than greedy (%d)", len(path)-1, n.FirstPacket.ASHops)
		}
		// Path confined to the negotiated set.
		for _, a := range path {
			if !n.Allowed[a] {
				t.Fatalf("negotiated path escaped the allowed set: %v", path)
			}
		}
	}
	if negotiated == 0 {
		t.Fatal("no pair could route over its negotiated set")
	}
}

func TestNegotiateWithPruning(t *testing.T) {
	in := newSmall(t, DefaultOptions())
	a := ident.FromString("src4")
	b := ident.FromString("dst5")
	if _, err := in.Join(a, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Join(b, 5, Multihomed); err != nil {
		t.Fatal(err)
	}
	// Destination refuses to reveal AS 1 (its tier-1 ancestor).
	n, err := in.Negotiate(a, b, func(as topology.ASN) bool { return as != 1 })
	if err != nil {
		t.Fatal(err)
	}
	// AS 1 is still in the set via the SOURCE's own up-hierarchy (the
	// source always knows its own ancestors); prune a different branch.
	path, err := in.RouteNegotiated(n)
	if err != nil {
		t.Fatal(err)
	}
	// 4 and 5 share AS 2, so the direct path is 4-2-5.
	if len(path) != 3 || path[1] != 2 {
		t.Fatalf("path = %v want [4 2 5]", path)
	}
}

func TestJoinGroupTEPinsProviders(t *testing.T) {
	// Stub 4 multihomed to providers 2 and 3.
	g := topology.NewASGraph(5)
	g.SetRelation(2, 1, topology.RelProvider)
	g.SetRelation(3, 1, topology.RelProvider)
	g.SetRelation(4, 2, topology.RelProvider)
	g.SetRelation(4, 3, topology.RelProvider)
	g.SetTier(1, 1)
	g.SetTier(2, 2)
	g.SetTier(3, 2)
	g.SetTier(4, 3)
	in := New(g, sim.NewMetrics(), DefaultOptions())

	grp := ident.GroupFromString("te-service")
	res, err := in.JoinGroupTE(grp, []uint32{1, 2, 3, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 4 {
		t.Fatalf("members = %d", len(res.Members))
	}
	// Suffixes alternate between the two providers.
	seen := map[topology.ASN]int{}
	for _, p := range res.ProviderOf {
		seen[p]++
	}
	if seen[2] != 2 || seen[3] != 2 {
		t.Fatalf("provider pinning = %v, want 2 each", seen)
	}
	if err := in.CheckRings(); err != nil {
		t.Fatal(err)
	}

	// Inbound traffic for a suffix pinned to provider 2 enters via 2.
	sender := ident.FromString("sender-in-3")
	if _, err := in.Join(sender, 3, Multihomed); err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Members {
		rr, err := in.Route(sender, id)
		if err != nil || !rr.Delivered {
			t.Fatalf("route to member: %+v %v", rr, err)
		}
		// Last hop into AS 4 must be the pinned provider when traffic
		// originates outside it... at minimum it must deliver to AS 4.
		if rr.FinalAS != 4 {
			t.Fatalf("delivered to AS %d", rr.FinalAS)
		}
	}
}

func TestJoinGroupTENoProviders(t *testing.T) {
	g := topology.NewASGraph(2)
	g.SetTier(0, 1)
	g.SetTier(1, 1)
	in := New(g, sim.NewMetrics(), DefaultOptions())
	if _, err := in.JoinGroupTE(ident.GroupFromString("x"), []uint32{1}, 0); err == nil {
		t.Fatal("providerless AS must fail the TE join")
	}
}

func TestRouteAnycastInterdomain(t *testing.T) {
	in, g := genInternet(t, DefaultOptions())
	ids := joinMany(t, in, g, 100, Multihomed, 23)
	grp := ident.GroupFromString("anycast-dns")
	memberASes := map[topology.ASN]bool{}
	stubs := g.Stubs()
	for i := 0; i < 4; i++ {
		at := stubs[i*13%len(stubs)]
		if _, err := in.Join(grp.Member(uint32(i+1)), at, Multihomed); err != nil {
			t.Fatal(err)
		}
		memberASes[at] = true
	}
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 50; i++ {
		src := ids[rng.Intn(len(ids))]
		res, member, err := in.RouteAnycast(src, grp, rng)
		if err != nil {
			t.Fatalf("anycast: %v", err)
		}
		if !res.Delivered || !memberASes[res.FinalAS] {
			t.Fatalf("delivered to non-member AS %d", res.FinalAS)
		}
		if !ident.SameGroup(member, grp.Member(0)) {
			t.Fatal("returned member outside the group")
		}
	}
	// Unknown source errors.
	if _, _, err := in.RouteAnycast(ident.FromString("nobody"), grp, rng); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown source: %v", err)
	}
}
