// Package canon implements ROFL's interdomain design (paper §4): a
// Canon-style hierarchical merge of per-AS rings. Every AS runs its own
// ring; a joining identifier additionally discovers an external successor
// at each level of its up-hierarchy (join_external, Algorithm 3), so that
// the union of all levels forms one global ring whose routing respects
// the *isolation property* — traffic between two hosts never leaves the
// subtree rooted at their earliest common ancestor that both joined.
//
// Policies are supported with the paper's two conversion rules (Fig 4):
// peering links become *virtual ASes* that act as a provider of both
// endpoints, and multihoming is handled by repeating the join across each
// provider; backup links are used only when primary links fail.
// Alternatively, per-AS Bloom filters summarize the hosts below each AS
// so packets can cross peering links without peering joins, with
// backtracking on false positives (§4.2). Proximity prefix fingers and
// AS-granularity pointer caches reduce stretch (§4.1, Fig 8b/8c).
//
// Following the paper's methodology, "we model each AS as a single node"
// (§6.1); message costs are AS-level hops along policy-compliant paths.
package canon

import (
	"fmt"
	"math/rand"
	"sort"

	"rofl/internal/bloom"
	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// Metrics counter names charged by this package.
const (
	MsgJoin     = "canon-join"
	MsgData     = "canon-data"
	MsgRepair   = "canon-repair"
	MsgTeardown = "canon-teardown"
	// CtrIsolationViolations counts delivered packets whose path escaped
	// the lowest joined common subtree. Zero on tree hierarchies; on
	// multihomed DAGs a diagnostic rate (see RouteResult.StrictlyIsolated).
	CtrIsolationViolations = "canon-strict-isolation-miss"
	// CtrBloomBacktracks counts peering-link crossings that had to be
	// returned because the Bloom filter false-positived.
	CtrBloomBacktracks = "canon-bloom-backtracks"
)

// Sample names recorded by this package.
const (
	SampleJoinMsgs = "canon-join-msgs"
	SampleStretch  = "canon-stretch"
	SampleBGPHops  = "canon-bgp-hops"
	SampleROFLHops = "canon-rofl-hops"
)

// Strategy selects how much of the up-hierarchy a join covers — the four
// modes compared in Fig 8a.
type Strategy uint8

const (
	// Ephemeral joins only at the global (top-level) ring.
	Ephemeral Strategy = iota
	// SingleHomed joins along one provider chain toward the core.
	SingleHomed
	// Multihomed joins recursively via every AS in the up-hierarchy.
	Multihomed
	// Peering joins, in addition, across every peering link adjacent to
	// the up-hierarchy (via virtual ASes) — the strongest isolation.
	Peering
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Ephemeral:
		return "ephemeral"
	case SingleHomed:
		return "single-homed"
	case Multihomed:
		return "rec-multihomed"
	case Peering:
		return "peering"
	default:
		return "unknown"
	}
}

// RootKind discriminates ring levels.
type RootKind uint8

const (
	// RootAS is the sub-hierarchy rooted at one AS.
	RootAS RootKind = iota
	// RootPeer is the virtual AS covering one peering link (Fig 4a).
	RootPeer
	// RootTop is the single virtual AS covering the tier-1 clique — and
	// therefore the whole Internet ("if several ASes are all peered
	// together in a clique, we only need a single virtual AS", §4.2).
	RootTop
)

// Root identifies one ring level: an AS sub-hierarchy, a peering virtual
// AS (A < B), or the global top.
type Root struct {
	Kind RootKind
	A, B topology.ASN
}

// String renders a root for logs: "AS7", "peer(3,9)" or "top".
func (r Root) String() string {
	switch r.Kind {
	case RootAS:
		return fmt.Sprintf("AS%d", r.A)
	case RootPeer:
		return fmt.Sprintf("peer(%d,%d)", r.A, r.B)
	case RootTop:
		return "top"
	default:
		return "root(?)"
	}
}

// Top is the global ring's root.
var Top = Root{Kind: RootTop}

// asRoot builds an AS-subtree root.
func asRoot(a topology.ASN) Root { return Root{Kind: RootAS, A: a} }

// peerRoot builds the virtual AS for a peering link, normalizing order.
func peerRoot(a, b topology.ASN) Root {
	if b < a {
		a, b = b, a
	}
	return Root{Kind: RootPeer, A: a, B: b}
}

// Ptr is one interdomain routing-state entry: a flat label and the AS
// hosting it. AS-level source routes are recomputed against the live
// policy graph at use time, which is what gives automatic failover when
// a multihomed AS loses an access link (§2.3).
type Ptr struct {
	ID ident.ID
	AS topology.ASN
}

// VNode is the interdomain routing state for one joined identifier.
type VNode struct {
	ID       ident.ID
	AS       topology.ASN
	Strategy Strategy

	// SuccAt / PredAt hold the ring neighbors at every joined level.
	SuccAt map[Root]Ptr
	PredAt map[Root]Ptr

	// Fingers are proximity-based prefix-table entries, each annotated
	// with the lowest root whose subtree contains both endpoints (the
	// constraint that keeps finger shortcuts isolation-preserving, §4.1).
	Fingers []Finger
}

// Roots lists the levels this node joined, lowest (smallest subtree)
// first.
func (v *VNode) Roots(in *Internet) []Root {
	out := make([]Root, 0, len(v.SuccAt))
	for r := range v.SuccAt {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := in.subtreeSize(out[i]), in.subtreeSize(out[j])
		if si != sj {
			return si < sj
		}
		return rootLess(out[i], out[j])
	})
	return out
}

func rootLess(a, b Root) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// Finger is one prefix-table entry.
type Finger struct {
	Ptr
	Root Root // lowest level containing both the owner and the target
}

// AS is one autonomous system in the simulation.
type AS struct {
	ASN   topology.ASN
	VNs   map[ident.ID]*VNode
	Cache *ptrCache
	// Bloom summarizes all identifiers joined in this AS's
	// down-hierarchy; maintained when the Options enable Bloom peering or
	// caching (both need the isolation guard).
	Bloom *bloom.Filter
}

// Options tunes the interdomain knobs the paper sweeps.
type Options struct {
	// FingerBudget bounds proximity fingers per node (Fig 8b sweeps 60,
	// 160, 280).
	FingerBudget int
	// CacheCapacity bounds each AS's pointer cache in entries; 0
	// disables, the paper's default ("we assume no ISPs use interdomain
	// pointer caches", §4.1).
	CacheCapacity int
	// BloomPeering switches peering support from virtual-AS joins
	// (option 1) to Bloom filters with backtracking (option 2, §4.2).
	BloomPeering bool
	// BloomFPRate is the per-filter false-positive target.
	BloomFPRate float64
	// RandomFingers disables proximity-aware finger selection (ablation:
	// each slot takes an arbitrary matching identifier instead of the
	// lowest-level, nearest one).
	RandomFingers bool
	// Seed feeds the deterministic RNG.
	Seed int64
}

// DefaultOptions mirrors the paper's baseline configuration.
func DefaultOptions() Options {
	return Options{
		FingerBudget:  0,
		CacheCapacity: 0,
		BloomPeering:  false,
		BloomFPRate:   0.01,
		Seed:          1,
	}
}

// Internet is the interdomain simulation state.
type Internet struct {
	G       *topology.ASGraph
	Metrics sim.Metrics

	opts Options
	rng  *rand.Rand
	ases []*AS

	// rings holds, per level, the sorted list of members that joined it.
	rings map[Root][]Ptr

	// hostedAt is the oracle mapping identifiers to hosting ASes, used
	// for verification and stretch denominators only.
	hostedAt map[ident.ID]topology.ASN

	// below[a] is the customer-cone membership bitset of AS a.
	below [][]bool
	// subtreeSizes memoizes subtree cardinalities per root.
	subtreeSizes map[Root]int

	// failedLink marks failed AS adjacencies (A < B normalized).
	failedLink map[[2]topology.ASN]bool
	failedAS   []bool

	// virtualHosts maps identifiers to the provider AS that agreed to
	// host a virtual server for them during their own AS's outages
	// (§4.1: "an ISP may host virtual servers on behalf of a customer
	// ISP, which it can maintain during that customer's outages").
	virtualHosts map[ident.ID]topology.ASN
}

// New builds an Internet over the annotated AS graph.
func New(g *topology.ASGraph, m sim.Metrics, opts Options) *Internet {
	if opts.BloomFPRate <= 0 || opts.BloomFPRate >= 1 {
		opts.BloomFPRate = 0.01
	}
	in := &Internet{
		G:            g,
		Metrics:      m,
		opts:         opts,
		rng:          rand.New(rand.NewSource(opts.Seed)),
		rings:        make(map[Root][]Ptr),
		hostedAt:     make(map[ident.ID]topology.ASN),
		subtreeSizes: make(map[Root]int),
		failedLink:   make(map[[2]topology.ASN]bool),
		failedAS:     make([]bool, g.NumASes()),
		virtualHosts: make(map[ident.ID]topology.ASN),
	}
	in.ases = make([]*AS, g.NumASes())
	for i := range in.ases {
		a := &AS{
			ASN:   topology.ASN(i),
			VNs:   make(map[ident.ID]*VNode),
			Cache: newPtrCache(opts.CacheCapacity),
		}
		in.ases[i] = a
	}
	// Customer-cone bitsets, over primary links only: joins exclude
	// backup links, so subtree membership must too, or the isolation
	// bookkeeping would expect rings that were never joined.
	in.below = make([][]bool, g.NumASes())
	for i := 0; i < g.NumASes(); i++ {
		set := make([]bool, g.NumASes())
		for _, d := range g.DownHierarchyPrimary(topology.ASN(i)) {
			set[d] = true
		}
		in.below[i] = set
	}
	// Bloom filters sized to each AS's expected customer-cone host count.
	if opts.BloomPeering || opts.CacheCapacity > 0 {
		for i := range in.ases {
			expect := 0
			for _, d := range g.DownHierarchyPrimary(topology.ASN(i)) {
				expect += g.Hosts(d)
			}
			if expect < 16 {
				expect = 16
			}
			in.ases[i].Bloom = bloom.NewForCapacity(expect, opts.BloomFPRate)
		}
	}
	return in
}

// Options returns the configuration.
func (in *Internet) Options() Options { return in.opts }

// AS returns the simulation state of one AS.
func (in *Internet) AS(a topology.ASN) *AS { return in.ases[a] }

// HostingAS returns where id is joined (oracle).
func (in *Internet) HostingAS(id ident.ID) (topology.ASN, bool) {
	a, ok := in.hostedAt[id]
	return a, ok
}

// NumJoined returns the number of joined identifiers.
func (in *Internet) NumJoined() int { return len(in.hostedAt) }

// inSubtree reports whether AS a lies inside root r's subtree.
func (in *Internet) inSubtree(r Root, a topology.ASN) bool {
	switch r.Kind {
	case RootTop:
		return true
	case RootAS:
		return in.below[r.A][a]
	case RootPeer:
		return in.below[r.A][a] || in.below[r.B][a]
	default:
		return false
	}
}

// subtreeSize returns the number of ASes in root r's subtree, memoized.
func (in *Internet) subtreeSize(r Root) int {
	if s, ok := in.subtreeSizes[r]; ok {
		return s
	}
	var s int
	switch r.Kind {
	case RootTop:
		s = in.G.NumASes()
	default:
		for a := 0; a < in.G.NumASes(); a++ {
			if in.inSubtree(r, topology.ASN(a)) {
				s++
			}
		}
	}
	in.subtreeSizes[r] = s
	return s
}

// --- Policy-compliant AS paths -------------------------------------------

func linkKey(a, b topology.ASN) [2]topology.ASN {
	if b < a {
		a, b = b, a
	}
	return [2]topology.ASN{a, b}
}

// linkUp reports whether the a–b adjacency is usable.
func (in *Internet) linkUp(a, b topology.ASN) bool {
	if in.failedAS[a] || in.failedAS[b] {
		return false
	}
	return !in.failedLink[linkKey(a, b)]
}

// activeProviders returns a's usable upstream links: primary providers
// first; backup links only when every primary link is down (§4.2
// "backup links ... an AS joins ... through one of its providers, and
// uses the other providers as backup, in case the primary provider
// fails").
func (in *Internet) activeProviders(a topology.ASN) []topology.ASN {
	var primary []topology.ASN
	for _, p := range in.G.PrimaryProviders(a) {
		if in.linkUp(a, p) {
			primary = append(primary, p)
		}
	}
	if len(primary) > 0 {
		return primary
	}
	var backup []topology.ASN
	for _, p := range in.G.Providers(a) {
		if in.G.Relation(a, p) == topology.RelBackup && in.linkUp(a, p) {
			backup = append(backup, p)
		}
	}
	return backup
}

// pathWithin returns the shortest policy-compliant AS path from `from`
// to `to` that never leaves root's subtree: ascend provider links,
// optionally cross the root's own peering link (RootPeer) or one tier-1
// peering link (RootTop), then descend customer links. Returns nil when
// no such path exists — e.g. across a partition.
func (in *Internet) pathWithin(root Root, from, to topology.ASN) []topology.ASN {
	if from == to {
		return []topology.ASN{from}
	}
	if !in.inSubtree(root, from) || !in.inSubtree(root, to) {
		return nil
	}
	if in.failedAS[from] || in.failedAS[to] {
		return nil
	}
	n := in.G.NumASes()
	const phases = 2 // 0 ascending, 1 descending
	visited := make([]bool, n*phases)
	parent := make([]int32, n*phases)
	for i := range parent {
		parent[i] = -1
	}
	idx := func(a topology.ASN, ph int) int { return int(a)*phases + ph }
	start := idx(from, 0)
	visited[start] = true
	queue := []int{start}
	goal := -1
	for len(queue) > 0 && goal == -1 {
		cur := queue[0]
		queue = queue[1:]
		a := topology.ASN(cur / phases)
		ph := cur % phases
		push := func(b topology.ASN, nph int) {
			if in.failedAS[b] || !in.inSubtree(root, b) {
				return
			}
			i := idx(b, nph)
			if visited[i] {
				return
			}
			visited[i] = true
			parent[i] = int32(cur)
			if b == to {
				goal = i
				return
			}
			queue = append(queue, i)
		}
		if ph == 0 {
			for _, p := range in.activeProviders(a) {
				push(p, 0)
				if goal != -1 {
					break
				}
			}
			if goal == -1 {
				// Peer crossings permitted by the root.
				for _, q := range in.G.Peers(a) {
					if !in.linkUp(a, q) {
						continue
					}
					allowed := false
					switch root.Kind {
					case RootPeer:
						allowed = (a == root.A && q == root.B) || (a == root.B && q == root.A)
					case RootTop:
						allowed = in.G.Tier(a) == 1 && in.G.Tier(q) == 1
					}
					if allowed {
						push(q, 1)
						if goal != -1 {
							break
						}
					}
				}
			}
		}
		if goal == -1 {
			for _, c := range in.G.Customers(a) {
				if !in.linkUp(a, c) {
					continue
				}
				// A backup customer link carries traffic only while the
				// customer's primary access links are all down (§4.2).
				if in.G.Relation(c, a) == topology.RelBackup && in.hasPrimaryUp(c) {
					continue
				}
				push(c, 1)
				if goal != -1 {
					break
				}
			}
		}
	}
	if goal == -1 {
		return nil
	}
	var rev []topology.ASN
	for i := goal; i != -1; i = int(parent[i]) {
		rev = append(rev, topology.ASN(i/phases))
	}
	out := make([]topology.ASN, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		if len(out) == 0 || out[len(out)-1] != rev[i] {
			out = append(out, rev[i])
		}
	}
	return out
}

// hasPrimaryUp reports whether AS c still has a usable primary provider
// link.
func (in *Internet) hasPrimaryUp(c topology.ASN) bool {
	for _, p := range in.G.PrimaryProviders(c) {
		if in.linkUp(c, p) {
			return true
		}
	}
	return false
}

// hopsWithin is pathWithin's hop count, or -1.
func (in *Internet) hopsWithin(root Root, from, to topology.ASN) int {
	p := in.pathWithin(root, from, to)
	if p == nil {
		return -1
	}
	return len(p) - 1
}
