package canon

import (
	"fmt"
	"math/rand"

	"rofl/internal/ident"
	"rofl/internal/topology"
)

// This file implements the paper's §5.1 routing-control extensions:
//
//   - endpoint-based path negotiation: "all paths that can be used to
//     reach AS X from AS Y traverse ASes in the intersection of X's and
//     Y's up-hierarchies ... we allow the source and destination to
//     negotiate a subset of ASes in this set";
//   - first-packet-only stretch: "stretch for remaining packets can be
//     reduced to one by exchanging the list of ASes above the destination
//     in the hierarchy";
//   - inbound traffic engineering by multi-suffix joins: a multihomed AS
//     "sends a join out on each of its AS's p providers with IDs with
//     variable suffixes (G, x_k)";
//   - interdomain anycast (§5.2): members join as (G, x); senders route
//     to (G, r) and deliver at the first member encountered.

// Negotiation is the outcome of an endpoint path negotiation: the AS set
// both endpoints agreed subsequent packets may traverse.
type Negotiation struct {
	Src, Dst ident.ID
	// Allowed is the negotiated AS set (the intersection of the two
	// up-hierarchies, possibly pruned by the destination's policy).
	Allowed map[topology.ASN]bool
	// FirstPacket is the cost of the greedy first packet that carried
	// the negotiation request.
	FirstPacket RouteResult
}

// Negotiate routes a first packet from src to dst greedily (paying the
// ROFL stretch once) and returns the negotiated AS set: the union of the
// two endpoints' up-hierarchies restricted to their intersection-closure
// — small enough to be "represented in just a few hundred bytes" (§5.1).
// keep, if non-nil, lets the destination prune which of its ancestors it
// reveals ("the destination selects a subset of ASes above it").
func (in *Internet) Negotiate(src, dst ident.ID, keep func(topology.ASN) bool) (Negotiation, error) {
	first, err := in.Route(src, dst)
	if err != nil {
		return Negotiation{}, fmt.Errorf("canon: negotiation first packet: %w", err)
	}
	srcAS := in.hostedAt[src]
	dstAS := in.hostedAt[dst]
	allowed := map[topology.ASN]bool{srcAS: true, dstAS: true}
	for a := range in.G.UpHierarchy(srcAS, false) {
		allowed[a] = true
	}
	for a := range in.G.UpHierarchy(dstAS, false) {
		if keep == nil || keep(a) || a == dstAS {
			allowed[a] = true
		}
	}
	return Negotiation{Src: src, Dst: dst, Allowed: allowed, FirstPacket: first}, nil
}

// RouteNegotiated forwards a subsequent packet of a negotiated session:
// a direct valley-free path constrained to the negotiated AS set, so
// stretch collapses to that of the policy path itself. Returns the AS
// path, or an error when the negotiated set no longer contains a working
// path (the session must re-negotiate).
func (in *Internet) RouteNegotiated(n Negotiation) ([]topology.ASN, error) {
	srcAS, ok := in.hostedAt[n.Src]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownID, n.Src.Short())
	}
	dstAS, ok := in.hostedAt[n.Dst]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownID, n.Dst.Short())
	}
	path := in.pathNegotiated(srcAS, dstAS, n.Allowed)
	if path == nil {
		return nil, fmt.Errorf("%w: negotiated set has no working path", ErrNoRoute)
	}
	in.Metrics.Count(MsgData, int64(len(path)-1))
	return path, nil
}

// pathNegotiated is a valley-free BFS restricted to the allowed AS set,
// permitting one peering crossing anywhere inside the set.
func (in *Internet) pathNegotiated(from, to topology.ASN, allowed map[topology.ASN]bool) []topology.ASN {
	if from == to {
		return []topology.ASN{from}
	}
	type state struct {
		as topology.ASN
		ph int // 0 ascending, 1 descending
	}
	visited := map[state]bool{}
	parent := map[state]state{}
	start := state{from, 0}
	visited[start] = true
	queue := []state{start}
	var goal state
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		push := func(b topology.ASN, ph int) {
			if !allowed[b] || in.failedAS[b] {
				return
			}
			st := state{b, ph}
			if visited[st] {
				return
			}
			visited[st] = true
			parent[st] = cur
			if b == to {
				goal, found = st, true
				return
			}
			queue = append(queue, st)
		}
		if cur.ph == 0 {
			for _, p := range in.activeProviders(cur.as) {
				push(p, 0)
				if found {
					break
				}
			}
			if !found {
				for _, q := range in.G.Peers(cur.as) {
					if in.linkUp(cur.as, q) {
						push(q, 1)
						if found {
							break
						}
					}
				}
			}
		}
		if !found {
			for _, c := range in.G.Customers(cur.as) {
				if in.linkUp(cur.as, c) {
					push(c, 1)
					if found {
						break
					}
				}
			}
		}
	}
	if !found {
		return nil
	}
	var rev []topology.ASN
	for st := goal; ; st = parent[st] {
		rev = append(rev, st.as)
		if st == start {
			break
		}
	}
	out := make([]topology.ASN, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		if len(out) == 0 || out[len(out)-1] != rev[i] {
			out = append(out, rev[i])
		}
	}
	return out
}

// SuffixJoin is the result of a traffic-engineering multi-suffix join.
type SuffixJoin struct {
	Members []ident.ID
	// ProviderOf records which access provider each suffix was pinned
	// to, giving the multihomed AS "some degree of control over incoming
	// traffic on their access links" (§2.3, §5.1).
	ProviderOf map[ident.ID]topology.ASN
	Msgs       int
}

// JoinGroupTE performs the §5.1 inbound traffic-engineering join for a
// multihomed AS: one member identifier (G, x_k) per suffix, each joined
// single-homed through a distinct provider (round-robin over the AS's
// active providers). Inbound traffic for suffix x_k enters over the
// provider its join pinned, so shifting suffixes shifts load between
// access links.
func (in *Internet) JoinGroupTE(g ident.Group, suffixes []uint32, at topology.ASN) (SuffixJoin, error) {
	provs := in.activeProviders(at)
	if len(provs) == 0 {
		return SuffixJoin{}, fmt.Errorf("canon: AS %d has no active providers", at)
	}
	out := SuffixJoin{ProviderOf: make(map[ident.ID]topology.ASN)}
	for k, x := range suffixes {
		id := g.Member(x)
		prov := provs[k%len(provs)]
		res, err := in.joinVia(id, at, prov)
		if err != nil {
			return out, fmt.Errorf("canon: TE join suffix %d: %w", x, err)
		}
		out.Members = append(out.Members, id)
		out.ProviderOf[id] = prov
		out.Msgs += res.Msgs
	}
	return out, nil
}

// joinVia performs a single-homed join whose provider chain starts at
// the given provider.
func (in *Internet) joinVia(id ident.ID, at, provider topology.ASN) (JoinResult, error) {
	// Temporarily fail every other provider link so the single-homed
	// chain deterministically ascends via `provider`, then restore.
	var masked [][2]topology.ASN
	for _, p := range in.G.Providers(at) {
		if p != provider && in.linkUp(at, p) {
			in.FailASLink(at, p)
			masked = append(masked, [2]topology.ASN{at, p})
		}
	}
	res, err := in.Join(id, at, SingleHomed)
	for _, l := range masked {
		in.RestoreASLink(l[0], l[1])
	}
	return res, err
}

// RouteAnycast routes from src toward group member (G, r) with a random
// suffix, delivering at the first AS hosting any member of the group —
// §5.2's anycast: "intermediate routers forward the packet towards G,
// treating all suffixes equally."
func (in *Internet) RouteAnycast(src ident.ID, g ident.Group, rng *rand.Rand) (RouteResult, ident.ID, error) {
	srcAS, ok := in.hostedAt[src]
	if !ok {
		return RouteResult{}, ident.ID{}, fmt.Errorf("%w: %s", ErrUnknownID, src.Short())
	}
	probe := g.RandomMember(rng)
	res := RouteResult{Traversed: []topology.ASN{srcAS}}
	cur := srcAS
	pos := src
	stale := map[staleKey]bool{}
	var target Ptr
	var targetRoot Root
	haveTarget := false
	for ttl := routeTTL; ttl > 0; ttl-- {
		as := in.ases[cur]
		// Deliver at the first AS hosting any group member.
		for id := range as.VNs {
			if ident.SameGroup(id, probe) {
				res.Delivered = true
				res.FinalAS = cur
				return res, id, nil
			}
		}
		for id := range as.VNs {
			if ident.Progress(pos, probe, id) && id.Distance(probe).Cmp(pos.Distance(probe)) < 0 {
				pos = id
			}
		}
		sel, selRoot, ok := in.selectPointer(as, pos, probe, stale)
		if ok && sel.AS == cur {
			pos = sel.ID
			haveTarget = false
			continue
		}
		if ok && (!haveTarget || sel.ID.Distance(probe).Cmp(target.ID.Distance(probe)) < 0) {
			target, targetRoot, haveTarget = sel, selRoot, true
		}
		if !haveTarget {
			return res, ident.ID{}, fmt.Errorf("%w: no member of the group is reachable", ErrNoRoute)
		}
		if target.AS == cur {
			if _, resident := as.VNs[target.ID]; resident {
				pos = target.ID
			} else {
				stale[staleKey{target, targetRoot}] = true
			}
			haveTarget = false
			continue
		}
		path := in.pathWithin(targetRoot, cur, target.AS)
		if len(path) < 2 {
			stale[staleKey{target, targetRoot}] = true
			haveTarget = false
			continue
		}
		next := path[1]
		res.ASHops++
		in.Metrics.Count(MsgData, 1)
		res.Traversed = append(res.Traversed, next)
		cur = next
	}
	return res, ident.ID{}, ErrTTL
}
