package canon

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rofl/internal/baseline/bgppolicy"
	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// smallAS is the paper's Figure 3 hierarchy plus tiers:
//
//	    1        (tier 1)
//	   / \
//	  2   3      (tier 2)
//	 / \
//	4   5        (stubs)
func smallAS() *topology.ASGraph {
	g := topology.NewASGraph(6)
	g.SetRelation(2, 1, topology.RelProvider)
	g.SetRelation(3, 1, topology.RelProvider)
	g.SetRelation(4, 2, topology.RelProvider)
	g.SetRelation(5, 2, topology.RelProvider)
	g.SetTier(1, 1)
	g.SetTier(2, 2)
	g.SetTier(3, 2)
	g.SetTier(4, 3)
	g.SetTier(5, 3)
	return g
}

func newSmall(t *testing.T, opts Options) *Internet {
	t.Helper()
	return New(smallAS(), sim.NewMetrics(), opts)
}

// genInternet builds a reduced Internet-like AS graph for heavier tests.
func genInternet(t *testing.T, opts Options) (*Internet, *topology.ASGraph) {
	t.Helper()
	g := topology.GenAS(topology.ASGenConfig{
		Tier1: 4, Tier2: 15, Stubs: 60,
		Hosts: 2000, ZipfS: 1.1,
		PeerProb: 0.2, BackupProb: 0.3, Seed: 42,
	})
	return New(g, sim.NewMetrics(), opts), g
}

func TestJoinFigure3Successors(t *testing.T) {
	// Reproduce the paper's Figure 3: identifiers 8 (AS 4), 20 (AS 4's
	// sibling space), 16 (AS 5), 14 (AS 3). After joining, node 8's
	// successor at level AS4 is 20, at level AS2 is 16, at level AS1
	// (here: Top) is 14... per the figure, successor ordering follows the
	// circular namespace within each subtree.
	in := newSmall(t, DefaultOptions())
	id8 := ident.FromUint64(8)
	id20 := ident.FromUint64(20)
	id16 := ident.FromUint64(16)
	id14 := ident.FromUint64(14)
	mustJoin := func(id ident.ID, at topology.ASN) {
		if _, err := in.Join(id, at, Multihomed); err != nil {
			t.Fatal(err)
		}
	}
	mustJoin(id8, 4)
	mustJoin(id20, 4)
	mustJoin(id16, 5)
	mustJoin(id14, 3)

	vn8 := in.vnOf(id8)
	if vn8 == nil {
		t.Fatal("8 not joined")
	}
	if got := vn8.SuccAt[asRoot(4)]; got.ID != id20 {
		t.Fatalf("succ at AS4 = %s want 20", got.ID.Short())
	}
	if got := vn8.SuccAt[asRoot(2)]; got.ID != id16 {
		t.Fatalf("succ at AS2 = %s want 16", got.ID.Short())
	}
	// At the global level the first ID clockwise of 8 overall is 14
	// (hosted in AS 3).
	if got := vn8.SuccAt[Top]; got.ID != id14 {
		t.Fatalf("succ at Top = %s want 14", got.ID.Short())
	}
	if err := in.CheckRings(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinStrategiesLevelCounts(t *testing.T) {
	in := newSmall(t, DefaultOptions())
	cases := []struct {
		s         Strategy
		minLevels int
	}{
		{Ephemeral, 1},
		{SingleHomed, 4}, // AS4, AS2, AS1, Top
		{Multihomed, 4},
	}
	for i, c := range cases {
		id := ident.FromString(fmt.Sprintf("strat-%d", i))
		res, err := in.Join(id, 4, c.s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Levels < c.minLevels {
			t.Fatalf("%v: levels = %d want >= %d", c.s, res.Levels, c.minLevels)
		}
		if c.s == Ephemeral && res.Levels != 1 {
			t.Fatalf("ephemeral joined %d levels", res.Levels)
		}
	}
}

func TestJoinDuplicateRejected(t *testing.T) {
	in := newSmall(t, DefaultOptions())
	id := ident.FromString("dup")
	if _, err := in.Join(id, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Join(id, 5, Multihomed); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("want ErrDuplicateID, got %v", err)
	}
}

func TestJoinOverheadOrdering(t *testing.T) {
	// Fig 8a: ephemeral < single-homed <= rec. multihomed <= peering.
	in, g := genInternet(t, DefaultOptions())
	rng := rand.New(rand.NewSource(1))
	stubs := g.Stubs()
	cost := map[Strategy]float64{}
	for _, s := range []Strategy{Ephemeral, SingleHomed, Multihomed, Peering} {
		total := 0
		const trials = 40
		for i := 0; i < trials; i++ {
			id := ident.FromString(fmt.Sprintf("%v-%d", s, i))
			at := stubs[rng.Intn(len(stubs))]
			res, err := in.Join(id, at, s)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Msgs
		}
		cost[s] = float64(total) / trials
	}
	t.Logf("join costs: eph=%.1f single=%.1f multi=%.1f peering=%.1f",
		cost[Ephemeral], cost[SingleHomed], cost[Multihomed], cost[Peering])
	if !(cost[Ephemeral] < cost[SingleHomed]) {
		t.Fatalf("ephemeral (%.1f) should be cheapest (single %.1f)", cost[Ephemeral], cost[SingleHomed])
	}
	if cost[Multihomed] < cost[SingleHomed]*0.8 {
		t.Fatalf("multihomed (%.1f) should not undercut single-homed (%.1f)", cost[Multihomed], cost[SingleHomed])
	}
	if !(cost[Peering] > cost[Multihomed]) {
		t.Fatalf("peering (%.1f) should exceed multihomed (%.1f)", cost[Peering], cost[Multihomed])
	}
	if err := in.CheckRings(); err != nil {
		t.Fatal(err)
	}
}

func TestBloomPeeringReducesJoinCost(t *testing.T) {
	// §6.3: "using the bloom filter optimization reduced the overhead of
	// the peering join to be equal to the overhead of the recursively
	// multihomed join".
	run := func(bloomOn bool) float64 {
		opts := DefaultOptions()
		opts.BloomPeering = bloomOn
		in, g := genInternet(t, opts)
		rng := rand.New(rand.NewSource(2))
		stubs := g.Stubs()
		total := 0
		const trials = 40
		for i := 0; i < trials; i++ {
			id := ident.FromString(fmt.Sprintf("bp-%d", i))
			res, err := in.Join(id, stubs[rng.Intn(len(stubs))], Peering)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Msgs
		}
		return float64(total) / trials
	}
	virtual := run(false)
	bloomed := run(true)
	if !(bloomed < virtual) {
		t.Fatalf("bloom peering join (%.1f) should undercut virtual-AS join (%.1f)", bloomed, virtual)
	}
}

func joinMany(t *testing.T, in *Internet, g *topology.ASGraph, count int, s Strategy, seed int64) []ident.ID {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Join at ASes weighted by their host counts.
	var pool []topology.ASN
	for a := 0; a < g.NumASes(); a++ {
		if g.Hosts(topology.ASN(a)) > 0 {
			pool = append(pool, topology.ASN(a))
		}
	}
	ids := make([]ident.ID, 0, count)
	for i := 0; i < count; i++ {
		id := ident.FromString(fmt.Sprintf("host-%d-%d", seed, i))
		at := pool[rng.Intn(len(pool))]
		if _, err := in.Join(id, at, s); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestRouteDeliversAndIsolates(t *testing.T) {
	in, g := genInternet(t, DefaultOptions())
	ids := joinMany(t, in, g, 200, Multihomed, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		src := ids[rng.Intn(len(ids))]
		dst := ids[rng.Intn(len(ids))]
		if src == dst {
			continue
		}
		res, err := in.Route(src, dst)
		if err != nil {
			t.Fatalf("route %s->%s: %v", src.Short(), dst.Short(), err)
		}
		if !res.Delivered {
			t.Fatal("not delivered")
		}
		dstAS, _ := in.HostingAS(dst)
		if res.FinalAS != dstAS {
			t.Fatalf("delivered to AS %d, hosted at %d", res.FinalAS, dstAS)
		}
	}
	// State-level isolation — the invariant the paper's simulator checks
	// — must hold exactly.
	if err := in.CheckIsolationState(); err != nil {
		t.Fatal(err)
	}
	// Per-packet minimal-subtree isolation is a diagnostic on DAGs; it
	// must at least hold for a majority of pairs here.
	miss := in.Metrics.Counter(CtrIsolationViolations)
	t.Logf("strict per-packet isolation misses: %d", miss)
}

func TestRouteIntraASIsFree(t *testing.T) {
	in := newSmall(t, DefaultOptions())
	a := ident.FromString("a")
	b := ident.FromString("b")
	if _, err := in.Join(a, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Join(b, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	res, err := in.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.ASHops != 0 {
		t.Fatalf("intra-AS route took %d AS hops; isolation demands 0", res.ASHops)
	}
}

func TestIsolationSiblingSubtree(t *testing.T) {
	// Hosts in AS 4 and AS 5 share provider AS 2: their traffic must stay
	// within subtree(2) and never touch AS 1 or AS 3.
	in := newSmall(t, DefaultOptions())
	a := ident.FromString("in-4")
	b := ident.FromString("in-5")
	other := ident.FromString("in-3")
	for _, j := range []struct {
		id ident.ID
		as topology.ASN
	}{{a, 4}, {b, 5}, {other, 3}} {
		if _, err := in.Join(j.id, j.as, Multihomed); err != nil {
			t.Fatal(err)
		}
	}
	res, err := in.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, as := range res.Traversed {
		if as == 1 || as == 3 {
			t.Fatalf("packet escaped subtree(2): %v", res.Traversed)
		}
	}
	if !res.StrictlyIsolated {
		t.Fatal("isolation flag wrong")
	}
}

func TestFingersReduceStretch(t *testing.T) {
	// Fig 8b: more fingers → lower stretch vs the BGP baseline.
	stretch := func(budget int) float64 {
		opts := DefaultOptions()
		opts.FingerBudget = budget
		in, g := genInternet(t, opts)
		ids := joinMany(t, in, g, 250, Multihomed, 5)
		bgp := bgppolicy.New(g)
		rng := rand.New(rand.NewSource(6))
		var total float64
		var n int
		for i := 0; i < 250; i++ {
			src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if src == dst {
				continue
			}
			res, err := in.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			srcAS, _ := in.HostingAS(src)
			dstAS, _ := in.HostingAS(dst)
			base := bgp.Hops(srcAS, dstAS, nil)
			if base <= 0 {
				continue
			}
			total += float64(res.ASHops) / float64(base)
			n++
		}
		return total / float64(n)
	}
	none := stretch(0)
	many := stretch(160)
	t.Logf("stretch: fingers=0 %.2f, fingers=160 %.2f", none, many)
	if !(many < none) {
		t.Fatalf("fingers should reduce stretch: %v vs %v", many, none)
	}
	if many < 1.0 {
		// Mean stretch can dip slightly under 1 only if ROFL beat BGP,
		// which the level discipline makes impossible on average.
		t.Fatalf("stretch %.2f implausibly low", many)
	}
}

func TestCachingReducesStretch(t *testing.T) {
	// Fig 8c: AS pointer caches cut stretch further.
	stretch := func(capacity int) float64 {
		opts := DefaultOptions()
		opts.CacheCapacity = capacity
		in, g := genInternet(t, opts)
		ids := joinMany(t, in, g, 200, Multihomed, 7)
		bgp := bgppolicy.New(g)
		rng := rand.New(rand.NewSource(8))
		var total float64
		var n int
		// Two passes so the second pass hits warm caches.
		for pass := 0; pass < 2; pass++ {
			rng = rand.New(rand.NewSource(8))
			total, n = 0, 0
			for i := 0; i < 200; i++ {
				src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
				if src == dst {
					continue
				}
				res, err := in.Route(src, dst)
				if err != nil {
					t.Fatal(err)
				}
				srcAS, _ := in.HostingAS(src)
				dstAS, _ := in.HostingAS(dst)
				base := bgp.Hops(srcAS, dstAS, nil)
				if base <= 0 {
					continue
				}
				total += float64(res.ASHops) / float64(base)
				n++
			}
		}
		return total / float64(n)
	}
	cold := stretch(0)
	warm := stretch(5000)
	t.Logf("stretch: cache=0 %.2f, cache=5000 %.2f", cold, warm)
	if !(warm < cold) {
		t.Fatalf("caching should reduce stretch: %v vs %v", warm, cold)
	}
}

func TestBloomPeeringRoutes(t *testing.T) {
	opts := DefaultOptions()
	opts.BloomPeering = true
	in, g := genInternet(t, opts)
	ids := joinMany(t, in, g, 200, Peering, 9)
	rng := rand.New(rand.NewSource(10))
	delivered := 0
	for i := 0; i < 150; i++ {
		src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if src == dst {
			continue
		}
		res, err := in.Route(src, dst)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		if res.Delivered {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("nothing delivered under bloom peering")
	}
}

func TestStubFailureRepair(t *testing.T) {
	// §6.3: failing a stub AS tears down its identifiers with repair cost
	// on the order of the number of identifiers hosted, and leaves the
	// rings consistent.
	in, g := genInternet(t, DefaultOptions())
	ids := joinMany(t, in, g, 300, Multihomed, 11)
	// Find a stub hosting at least one identifier.
	var victim topology.ASN = -1
	for _, s := range g.Stubs() {
		if len(in.AS(s).VNs) > 0 {
			victim = s
			break
		}
	}
	if victim == -1 {
		t.Skip("no populated stub")
	}
	before := in.Metrics.Counter(MsgRepair)
	dead := in.FailAS(victim)
	if dead == 0 {
		t.Fatal("no identifiers torn down")
	}
	repair := in.Metrics.Counter(MsgRepair) - before
	if repair == 0 {
		t.Fatal("repair must cost messages")
	}
	// Same order of magnitude as #identifiers × levels (loose bound).
	if repair > int64(dead*400) {
		t.Fatalf("repair cost %d way beyond %d identifiers", repair, dead)
	}
	if err := in.CheckRings(); err != nil {
		t.Fatalf("rings broken after stub failure: %v", err)
	}
	// Routing between surviving identifiers still works.
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if src == dst {
			continue
		}
		if _, okSrc := in.HostingAS(src); !okSrc {
			continue
		}
		if _, okDst := in.HostingAS(dst); !okDst {
			continue
		}
		if _, err := in.Route(src, dst); err != nil {
			t.Fatalf("route after failure: %v", err)
		}
	}
	if in.FailAS(victim) != 0 {
		t.Fatal("double failure should be a no-op")
	}
}

func TestLeave(t *testing.T) {
	in, g := genInternet(t, DefaultOptions())
	ids := joinMany(t, in, g, 50, Multihomed, 13)
	for _, id := range ids[:10] {
		if err := in.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.CheckRings(); err != nil {
		t.Fatalf("rings broken after leaves: %v", err)
	}
	if err := in.Leave(ids[0]); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double leave: %v", err)
	}
	for i := 10; i < 30; i++ {
		if _, err := in.Route(ids[i], ids[i+1]); err != nil {
			t.Fatalf("route after leaves: %v", err)
		}
	}
}

func TestMultihomingFailover(t *testing.T) {
	// §2.3: "where one access link of a multi-homed AS goes down,
	// incoming and outgoing traffic will be automatically shifted to the
	// other access links."
	g := topology.NewASGraph(5)
	// Stub 4 multihomed to providers 2 and 3, both customers of core 1.
	g.SetRelation(2, 1, topology.RelProvider)
	g.SetRelation(3, 1, topology.RelProvider)
	g.SetRelation(4, 2, topology.RelProvider)
	g.SetRelation(4, 3, topology.RelProvider)
	g.SetTier(1, 1)
	g.SetTier(2, 2)
	g.SetTier(3, 2)
	g.SetTier(4, 3)
	in := New(g, sim.NewMetrics(), DefaultOptions())
	a := ident.FromString("multihomed-host")
	b := ident.FromString("remote-host")
	if _, err := in.Join(a, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Join(b, 3, Multihomed); err != nil {
		t.Fatal(err)
	}
	res1, err := in.Route(b, a)
	if err != nil || !res1.Delivered {
		t.Fatalf("baseline route: %+v %v", res1, err)
	}
	// Kill the 4–2 access link; traffic must shift to 4–3.
	in.FailASLink(4, 2)
	res2, err := in.Route(b, a)
	if err != nil || !res2.Delivered {
		t.Fatalf("route after access-link failure: %+v %v", res2, err)
	}
	for i := 1; i < len(res2.Traversed); i++ {
		x, y := res2.Traversed[i-1], res2.Traversed[i]
		if (x == 4 && y == 2) || (x == 2 && y == 4) {
			t.Fatalf("path still uses failed link: %v", res2.Traversed)
		}
	}
	in.RestoreASLink(4, 2)
	if in.LinkFailed(4, 2) {
		t.Fatal("restore failed")
	}
}

func TestBackupLinkActivatesOnlyOnFailure(t *testing.T) {
	g := topology.NewASGraph(5)
	g.SetRelation(2, 1, topology.RelProvider)
	g.SetRelation(3, 1, topology.RelProvider)
	g.SetRelation(4, 2, topology.RelProvider)
	g.SetRelation(4, 3, topology.RelBackup) // backup provider
	g.SetTier(1, 1)
	g.SetTier(2, 2)
	g.SetTier(3, 2)
	g.SetTier(4, 3)
	in := New(g, sim.NewMetrics(), DefaultOptions())
	// With the primary up, upward paths go via 2.
	p := in.pathWithin(Top, 4, 3)
	if p == nil {
		t.Fatal("no path 4->3")
	}
	if p[1] != 2 {
		t.Fatalf("primary path should ascend via 2: %v", p)
	}
	// Fail the primary: backup 4–3 activates.
	in.FailASLink(4, 2)
	p = in.pathWithin(Top, 4, 3)
	if p == nil {
		t.Fatal("backup path missing")
	}
	if p[1] != 3 {
		t.Fatalf("backup path should ascend via 3: %v", p)
	}
}

func TestRouteFromAS(t *testing.T) {
	in := newSmall(t, DefaultOptions())
	a := ident.FromString("a")
	if _, err := in.Join(a, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	b := ident.FromString("b")
	if _, err := in.Join(b, 5, Multihomed); err != nil {
		t.Fatal(err)
	}
	res, err := in.RouteFromAS(4, b)
	if err != nil || !res.Delivered {
		t.Fatalf("RouteFromAS: %+v %v", res, err)
	}
	if _, err := in.RouteFromAS(3, b); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("empty AS should fail: %v", err)
	}
}

func TestRouteUnknownSource(t *testing.T) {
	in := newSmall(t, DefaultOptions())
	if _, err := in.Route(ident.FromString("nope"), ident.FromString("x")); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("want ErrUnknownID, got %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{Ephemeral, SingleHomed, Multihomed, Peering, Strategy(99)} {
		if s.String() == "" {
			t.Fatal("strategy must render")
		}
	}
}

func TestDeterministicJoins(t *testing.T) {
	run := func() int {
		in, g := genInternet(t, DefaultOptions())
		total := 0
		rng := rand.New(rand.NewSource(14))
		stubs := g.Stubs()
		for i := 0; i < 30; i++ {
			id := ident.FromString(fmt.Sprintf("det-%d", i))
			res, err := in.Join(id, stubs[rng.Intn(len(stubs))], Multihomed)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Msgs
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("joins not deterministic: %d vs %d", a, b)
	}
}

func TestTreeHierarchyStrictIsolationAlwaysHolds(t *testing.T) {
	// On a pure tree (every AS single-parent), the paper's per-packet
	// isolation guarantee is provable: every delivered packet stays
	// within the subtree of the earliest common ancestor. Build a
	// three-level tree and route all pairs.
	g := topology.NewASGraph(13)
	g.SetTier(0, 1)
	// Tier 2: 1..3 under 0; tier 3: 4..12 under them.
	for i := 1; i <= 3; i++ {
		g.SetRelation(topology.ASN(i), 0, topology.RelProvider)
		g.SetTier(topology.ASN(i), 2)
	}
	for i := 4; i <= 12; i++ {
		parent := topology.ASN((i-4)/3 + 1)
		g.SetRelation(topology.ASN(i), parent, topology.RelProvider)
		g.SetTier(topology.ASN(i), 3)
	}
	in := New(g, sim.NewMetrics(), DefaultOptions())
	var ids []ident.ID
	for i := 4; i <= 12; i++ {
		for j := 0; j < 4; j++ {
			id := ident.FromString(fmt.Sprintf("tree-%d-%d", i, j))
			if _, err := in.Join(id, topology.ASN(i), Multihomed); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	for _, src := range ids {
		for _, dst := range ids {
			if src == dst {
				continue
			}
			res, err := in.Route(src, dst)
			if err != nil {
				t.Fatalf("route: %v", err)
			}
			if !res.StrictlyIsolated {
				srcAS, _ := in.HostingAS(src)
				dstAS, _ := in.HostingAS(dst)
				t.Fatalf("tree isolation broken: %d->%d path %v", srcAS, dstAS, res.Traversed)
			}
		}
	}
	if in.Metrics.Counter(CtrIsolationViolations) != 0 {
		t.Fatal("tree hierarchies must never violate per-packet isolation")
	}
	if err := in.CheckIsolationState(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckIsolationStateCatchesCorruption(t *testing.T) {
	in := newSmall(t, DefaultOptions())
	a := ident.FromString("a")
	b := ident.FromString("b")
	if _, err := in.Join(a, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Join(b, 3, Multihomed); err != nil {
		t.Fatal(err)
	}
	if err := in.CheckIsolationState(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	// Corrupt: point a's AS4-level successor at the node in AS 3 —
	// outside subtree(4).
	vn := in.vnOf(a)
	vn.SuccAt[asRoot(4)] = Ptr{ID: b, AS: 3}
	if err := in.CheckIsolationState(); err == nil {
		t.Fatal("corrupted pointer not caught")
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	in := newSmall(t, DefaultOptions())
	if in.Options().BloomFPRate != 0.01 {
		t.Fatal("Options round trip")
	}
	a := ident.FromString("acc")
	if _, err := in.Join(a, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	if in.NumJoined() != 1 {
		t.Fatalf("NumJoined = %d", in.NumJoined())
	}
	if in.RingSize(Top) != 1 {
		t.Fatalf("RingSize(Top) = %d", in.RingSize(Top))
	}
	vn := in.vnOf(a)
	roots := vn.Roots(in)
	if len(roots) == 0 || roots[len(roots)-1] != Top {
		t.Fatalf("Roots = %v (Top must sort last)", roots)
	}
	for _, r := range []Root{asRoot(7), peerRoot(9, 3), Top, {Kind: RootKind(9)}} {
		if r.String() == "" {
			t.Fatal("Root.String must render")
		}
	}
	if peerRoot(9, 3) != peerRoot(3, 9) {
		t.Fatal("peerRoot must normalize order")
	}
}

func TestFingerBackInsertion(t *testing.T) {
	// An early joiner must learn about later joiners through the §4.1
	// back-insertion multicast.
	opts := DefaultOptions()
	opts.FingerBudget = 60
	in, g := genInternet(t, opts)
	first := ident.FromString("early-bird")
	stubs := g.Stubs()
	if _, err := in.Join(first, stubs[0], Multihomed); err != nil {
		t.Fatal(err)
	}
	if len(in.vnOf(first).Fingers) != 0 {
		t.Fatal("sole node cannot have fingers yet")
	}
	joinMany(t, in, g, 60, Multihomed, 31)
	if len(in.vnOf(first).Fingers) == 0 {
		t.Fatal("back-insertion must populate the early joiner's table")
	}
	// All fingers respect the isolation constraint.
	if err := in.CheckIsolationState(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepFingersOnASFailure(t *testing.T) {
	opts := DefaultOptions()
	opts.FingerBudget = 60
	in, g := genInternet(t, opts)
	ids := joinMany(t, in, g, 120, Multihomed, 32)
	_ = ids
	// Find a stub with members and fail it; no surviving finger may
	// point there.
	var victim topology.ASN = -1
	for _, s := range g.Stubs() {
		if len(in.AS(s).VNs) > 0 {
			victim = s
			break
		}
	}
	if victim == -1 {
		t.Skip("no populated stub")
	}
	in.FailAS(victim)
	for a := 0; a < g.NumASes(); a++ {
		for _, vn := range in.AS(topology.ASN(a)).VNs {
			for _, f := range vn.Fingers {
				if f.AS == victim {
					t.Fatalf("finger still points at dead AS %d", victim)
				}
			}
		}
	}
}

func TestVirtualServerSurvivesOutage(t *testing.T) {
	// §4.1: "an ISP may host virtual servers on behalf of a customer ISP,
	// which it can maintain during that customer's outages."
	in := newSmall(t, DefaultOptions())
	srv := ident.FromString("virtual-hosted")
	other := ident.FromString("client-elsewhere")
	if _, err := in.Join(srv, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Join(other, 3, Multihomed); err != nil {
		t.Fatal(err)
	}
	// Provider AS 2 stands by for srv.
	if err := in.HostVirtual(srv, 2); err != nil {
		t.Fatal(err)
	}
	// A non-provider cannot stand by.
	if err := in.HostVirtual(srv, 3); err == nil {
		t.Fatal("AS 3 is not in srv's up-hierarchy")
	}
	if err := in.HostVirtual(ident.FromString("ghost"), 2); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown id: %v", err)
	}

	removed := in.FailAS(4)
	if removed != 0 {
		t.Fatalf("removed = %d, want 0 (migrated)", removed)
	}
	if as, ok := in.HostingAS(srv); !ok || as != 2 {
		t.Fatalf("srv hosted at %d, want provider 2", as)
	}
	if err := in.CheckRings(); err != nil {
		t.Fatal(err)
	}
	// Still reachable from the other side of the hierarchy.
	res, err := in.Route(other, srv)
	if err != nil || !res.Delivered || res.FinalAS != 2 {
		t.Fatalf("route to migrated server: %+v %v", res, err)
	}
}

func TestFailASWithoutStandbyStillRemoves(t *testing.T) {
	in := newSmall(t, DefaultOptions())
	srv := ident.FromString("no-standby")
	if _, err := in.Join(srv, 4, Multihomed); err != nil {
		t.Fatal(err)
	}
	if removed := in.FailAS(4); removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	if _, ok := in.HostingAS(srv); ok {
		t.Fatal("identifier should be gone")
	}
}
