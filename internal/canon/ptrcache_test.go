package canon

import (
	"testing"

	"rofl/internal/ident"
)

func id64(v uint64) ident.ID { return ident.FromUint64(v) }

func TestPtrCacheInsertLookupEvict(t *testing.T) {
	c := newPtrCache(3)
	c.Insert(Ptr{ID: id64(10), AS: 1})
	c.Insert(Ptr{ID: id64(20), AS: 2})
	c.Insert(Ptr{ID: id64(30), AS: 3})
	// Update in place.
	c.Insert(Ptr{ID: id64(10), AS: 9})
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	p, ok := c.Lookup(id64(0), id64(15))
	if !ok || p.ID != id64(10) || p.AS != 9 {
		t.Fatalf("lookup = %+v ok=%v", p, ok)
	}
	// Insert at capacity evicts the LRU (20: untouched longest).
	c.Insert(Ptr{ID: id64(40), AS: 4})
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Lookup(id64(15), id64(25)); ok {
		t.Fatal("20 should have been evicted")
	}
}

func TestPtrCacheNoProgressMiss(t *testing.T) {
	c := newPtrCache(4)
	c.Insert(Ptr{ID: id64(10), AS: 1})
	if _, ok := c.Lookup(id64(15), id64(20)); ok {
		t.Fatal("entry behind the position must not hit")
	}
	if _, ok := newPtrCache(4).Lookup(id64(0), id64(5)); ok {
		t.Fatal("empty cache cannot hit")
	}
}

func TestPtrCacheRemove(t *testing.T) {
	c := newPtrCache(4)
	c.Insert(Ptr{ID: id64(10), AS: 1})
	c.Insert(Ptr{ID: id64(20), AS: 2})
	c.Remove(id64(10))
	c.Remove(id64(99)) // absent
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if got := c.RemoveAS(2); got != 1 {
		t.Fatalf("RemoveAS = %d", got)
	}
	if c.Len() != 0 {
		t.Fatal("cache should be empty")
	}
}

func TestPtrCacheZeroCapacity(t *testing.T) {
	c := newPtrCache(0)
	c.Insert(Ptr{ID: id64(1), AS: 1})
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache must stay empty")
	}
}
