package canon

import (
	"fmt"
	"math/rand"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// TestInterdomainChurnSoak interleaves joins (all strategies), graceful
// leaves, AS-link flaps and stub-AS failures, verifying ring and
// isolation-state invariants after every event.
func TestInterdomainChurnSoak(t *testing.T) {
	seeds := []int64{11, 22, 33}
	steps := 150
	if testing.Short() {
		seeds = seeds[:1]
		steps = 60
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			interSoak(t, seed, steps)
		})
	}
}

func interSoak(t *testing.T, seed int64, steps int) {
	g := topology.GenAS(topology.ASGenConfig{
		Tier1: 3, Tier2: 10, Stubs: 40,
		Hosts: 1000, ZipfS: 1.1, PeerProb: 0.2, BackupProb: 0.3, Seed: seed,
	})
	opts := DefaultOptions()
	opts.FingerBudget = 30
	opts.Seed = seed
	in := New(g, sim.NewMetrics(), opts)
	rng := rand.New(rand.NewSource(seed))
	stubs := g.Stubs()
	strategies := []Strategy{Ephemeral, SingleHomed, Multihomed, Peering}

	alive := map[ident.ID]bool{}
	var list []ident.ID
	refresh := func() {
		list = list[:0]
		for id := range alive {
			list = append(list, id)
		}
	}
	next := 0
	check := func(step int, what string) {
		if err := in.CheckRings(); err != nil {
			t.Fatalf("seed %d step %d after %s: %v", seed, step, what, err)
		}
		if err := in.CheckIsolationState(); err != nil {
			t.Fatalf("seed %d step %d after %s: %v", seed, step, what, err)
		}
	}
	failedASes := map[topology.ASN]bool{}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // join with a random strategy
			id := ident.FromString(fmt.Sprintf("isoak-%d-%d", seed, next))
			next++
			as := stubs[rng.Intn(len(stubs))]
			if failedASes[as] {
				continue
			}
			if _, err := in.Join(id, as, strategies[rng.Intn(len(strategies))]); err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
			alive[id] = true
			check(step, "join")
		case op < 7: // graceful leave
			refresh()
			if len(list) == 0 {
				continue
			}
			id := list[rng.Intn(len(list))]
			if _, ok := in.HostingAS(id); !ok {
				delete(alive, id)
				continue
			}
			if err := in.Leave(id); err != nil {
				t.Fatalf("step %d leave: %v", step, err)
			}
			delete(alive, id)
			check(step, "leave")
		case op < 8: // AS-link flap
			a := stubs[rng.Intn(len(stubs))]
			provs := g.Providers(a)
			if len(provs) < 2 {
				continue
			}
			p := provs[rng.Intn(len(provs))]
			in.FailASLink(a, p)
			check(step, "link fail")
			in.RestoreASLink(a, p)
		default: // stub failure
			var victim topology.ASN = -1
			for tries := 0; tries < 50; tries++ {
				c := stubs[rng.Intn(len(stubs))]
				if !failedASes[c] {
					victim = c
					break
				}
			}
			if victim == -1 {
				continue
			}
			in.FailAS(victim)
			failedASes[victim] = true
			for id := range alive {
				if _, ok := in.HostingAS(id); !ok {
					delete(alive, id)
				}
			}
			check(step, "stub failure")
		}
	}
	// Final sweep: every survivor routable from every other.
	refresh()
	probes := 0
	for i := 0; i < len(list) && probes < 100; i++ {
		for j := 0; j < len(list) && probes < 100; j++ {
			if i == j {
				continue
			}
			probes++
			if _, err := in.Route(list[i], list[j]); err != nil {
				t.Fatalf("final route %s->%s: %v", list[i].Short(), list[j].Short(), err)
			}
		}
	}
}
