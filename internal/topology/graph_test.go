package topology

import (
	"math"
	"math/rand"
	"testing"
)

// line builds 0-1-2-...-(n-1) with unit weights.
func line(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	return g
}

func TestAddEdgeMergesParallel(t *testing.T) {
	g := NewGraph(2)
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(a, b, 5)
	g.AddEdge(a, b, 3) // lighter wins
	g.AddEdge(a, b, 9) // heavier ignored
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d want 1 (merged)", g.NumEdges())
	}
	if w := g.Neighbors(a)[0].Weight; w != 3 {
		t.Fatalf("weight = %v want 3", w)
	}
	if w := g.Neighbors(b)[0].Weight; w != 3 {
		t.Fatalf("reverse weight = %v want 3", w)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	g := NewGraph(1)
	a := g.AddNode()
	defer func() {
		if recover() == nil {
			t.Fatal("self loop should panic")
		}
	}()
	g.AddEdge(a, a, 1)
}

func TestDijkstraLine(t *testing.T) {
	g := line(5)
	spt := g.Dijkstra(0, nil)
	for i := 0; i < 5; i++ {
		if spt.Dist[i] != float64(i) || spt.Hops[i] != i {
			t.Fatalf("node %d: dist=%v hops=%d", i, spt.Dist[i], spt.Hops[i])
		}
	}
	path := spt.PathTo(4)
	if len(path) != 5 || path[0] != 0 || path[4] != 4 {
		t.Fatalf("path = %v", path)
	}
}

func TestDijkstraPrefersLighterPath(t *testing.T) {
	// 0-1-2 weight 1 each vs direct 0-2 weight 3: tie broken by hops.
	g := NewGraph(3)
	n0, n1, n2 := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(n0, n1, 1)
	g.AddEdge(n1, n2, 1)
	g.AddEdge(n0, n2, 3)
	spt := g.Dijkstra(n0, nil)
	if spt.Dist[n2] != 2 {
		t.Fatalf("dist = %v want 2 (two-hop path is lighter)", spt.Dist[n2])
	}
	// Now make them equal weight; fewer hops should win the tie.
	g2 := NewGraph(3)
	m0, m1, m2 := g2.AddNode(), g2.AddNode(), g2.AddNode()
	g2.AddEdge(m0, m1, 1)
	g2.AddEdge(m1, m2, 1)
	g2.AddEdge(m0, m2, 2)
	spt2 := g2.Dijkstra(m0, nil)
	if spt2.Hops[m2] != 1 {
		t.Fatalf("equal-cost tie should prefer fewer hops, got %d", spt2.Hops[m2])
	}
}

func TestDijkstraWithFilter(t *testing.T) {
	g := line(4)
	down := func(a, b NodeID) bool {
		return !(a == 1 && b == 2) && !(a == 2 && b == 1)
	}
	spt := g.Dijkstra(0, down)
	if spt.Reachable(3) {
		t.Fatal("cutting 1-2 must disconnect 3")
	}
	if spt.PathTo(3) != nil {
		t.Fatal("unreachable path must be nil")
	}
	if !spt.Reachable(1) {
		t.Fatal("1 still reachable")
	}
	if !math.IsInf(spt.Dist[3], 1) {
		t.Fatal("unreachable dist must be +Inf")
	}
}

func TestComponentAndConnected(t *testing.T) {
	g := line(4)
	if !g.Connected(nil) {
		t.Fatal("line is connected")
	}
	cut := func(a, b NodeID) bool {
		return !(a == 1 && b == 2) && !(a == 2 && b == 1)
	}
	if g.Connected(cut) {
		t.Fatal("cut line is disconnected")
	}
	comp := g.Component(0, cut)
	if len(comp) != 2 || comp[0] != 0 || comp[1] != 1 {
		t.Fatalf("component = %v", comp)
	}
	comp2 := g.Component(3, cut)
	if len(comp2) != 2 || comp2[0] != 2 {
		t.Fatalf("component = %v", comp2)
	}
}

func TestEmptyGraphConnected(t *testing.T) {
	if !NewGraph(0).Connected(nil) {
		t.Fatal("empty graph is vacuously connected")
	}
}

func TestPoPAssignment(t *testing.T) {
	g := line(4)
	g.SetPoP(0, 7)
	g.SetPoP(1, 7)
	g.SetPoP(2, 9)
	if g.PoP(3) != -1 {
		t.Fatal("unassigned PoP should be -1")
	}
	members := g.PoPMembers()
	if len(members[7]) != 2 || len(members[9]) != 1 {
		t.Fatalf("members = %v", members)
	}
}

func TestDiameterHops(t *testing.T) {
	g := line(6)
	if d := g.DiameterHops(0, nil); d != 5 {
		t.Fatalf("diameter = %d want 5", d)
	}
	rng := rand.New(rand.NewSource(1))
	if d := g.DiameterHops(3, rng); d < 1 || d > 5 {
		t.Fatalf("sampled diameter = %d out of range", d)
	}
}

func TestGenISPShape(t *testing.T) {
	for _, cfg := range EvalISPs() {
		isp := GenISP(cfg)
		g := isp.Graph
		if g.NumNodes() != cfg.Routers {
			t.Fatalf("%s: routers = %d want %d", cfg.Name, g.NumNodes(), cfg.Routers)
		}
		if !g.Connected(nil) {
			t.Fatalf("%s: generated ISP must be connected", cfg.Name)
		}
		if len(isp.Backbone)+len(isp.Access) != cfg.Routers {
			t.Fatalf("%s: backbone+access != routers", cfg.Name)
		}
		// Every access router hangs off its PoP's backbone.
		for _, a := range isp.Access {
			if g.Degree(a) < 1 {
				t.Fatalf("%s: access router %d disconnected", cfg.Name, a)
			}
		}
		// Hosts sum exactly.
		total := 0
		for _, h := range isp.HostsAt {
			total += h
		}
		if total != cfg.Hosts {
			t.Fatalf("%s: hosts = %d want %d", cfg.Name, total, cfg.Hosts)
		}
		// Diameter in a Rocketfuel-plausible range (paper joins complete
		// in ~4x diameter messages; these ISPs have diameter ~10).
		d := g.DiameterHops(20, rand.New(rand.NewSource(9)))
		if d < 3 || d > 40 {
			t.Fatalf("%s: diameter %d implausible", cfg.Name, d)
		}
	}
}

func TestGenISPDeterministic(t *testing.T) {
	a := GenISP(AS3967)
	b := GenISP(AS3967)
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed must generate identical topology")
	}
	for i := range a.HostsAt {
		if a.HostsAt[i] != b.HostsAt[i] {
			t.Fatal("host spread must be deterministic")
		}
	}
}

func TestGenISPInfeasiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible config should panic")
		}
	}()
	GenISP(ISPConfig{Name: "bad", Routers: 3, PoPs: 4, BackbonePerPoP: 1})
}

func TestZipfSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	out := ZipfSpread(1000, 10, 1.2, rng)
	sum := 0
	max := 0
	for _, v := range out {
		if v < 0 {
			t.Fatal("negative bin")
		}
		sum += v
		if v > max {
			max = v
		}
	}
	if sum != 1000 {
		t.Fatalf("sum = %d want 1000", sum)
	}
	if max < 200 {
		t.Fatalf("Zipf head too light: max=%d", max)
	}
	if ZipfSpread(10, 0, 1.2, rng) != nil {
		t.Fatal("zero bins should return nil")
	}
}

func BenchmarkDijkstraAS1239(b *testing.B) {
	isp := GenISP(AS1239)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		isp.Graph.Dijkstra(NodeID(i%isp.Graph.NumNodes()), nil)
	}
}
