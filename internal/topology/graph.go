// Package topology provides the network substrates under ROFL: weighted
// router-level graphs with shortest-path machinery, a Rocketfuel-like ISP
// generator sized to the four ASes the paper simulates, and an
// Internet-like AS-level graph generator with customer-provider, peering
// and backup relationships (the paper's Routeviews + Subramanian-et-al
// substitute; see DESIGN.md §5 for the substitution rationale).
package topology

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NodeID indexes a router in a Graph.
type NodeID int

// Edge is one directed half of an undirected link.
type Edge struct {
	To     NodeID
	Weight float64 // one-way latency, milliseconds
}

// Graph is an undirected weighted multigraph of routers. The zero value
// is an empty graph ready for AddNode/AddEdge.
type Graph struct {
	adj   [][]Edge
	popOf []int // PoP index per node, -1 when unassigned
	edges int
}

// NewGraph returns an empty graph with capacity hints for n nodes.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]Edge, 0, n), popOf: make([]int, 0, n)}
}

// AddNode appends a router and returns its id.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	g.popOf = append(g.popOf, -1)
	return NodeID(len(g.adj) - 1)
}

// AddEdge installs an undirected link of the given weight. Self-loops are
// rejected; parallel links are merged by keeping the lighter weight.
func (g *Graph) AddEdge(a, b NodeID, w float64) {
	if a == b {
		panic("topology: self-loop")
	}
	if g.updateWeight(a, b, w) {
		g.updateWeight(b, a, w)
		return
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Weight: w})
	g.adj[b] = append(g.adj[b], Edge{To: a, Weight: w})
	g.edges++
}

func (g *Graph) updateWeight(a, b NodeID, w float64) bool {
	for i := range g.adj[a] {
		if g.adj[a][i].To == b {
			if w < g.adj[a][i].Weight {
				g.adj[a][i].Weight = w
			}
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of the direct a–b link, if one exists.
func (g *Graph) EdgeWeight(a, b NodeID) (float64, bool) {
	for _, e := range g.adj[a] {
		if e.To == b {
			return e.Weight, true
		}
	}
	return 0, false
}

// HasEdge reports whether an a–b link exists.
func (g *Graph) HasEdge(a, b NodeID) bool {
	for _, e := range g.adj[a] {
		if e.To == b {
			return true
		}
	}
	return false
}

// NumNodes returns the number of routers.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected links.
func (g *Graph) NumEdges() int { return g.edges }

// Neighbors returns the adjacency list of n. Callers must not mutate it.
func (g *Graph) Neighbors(n NodeID) []Edge { return g.adj[n] }

// Degree returns the number of links at n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// SetPoP assigns node n to PoP p (paper Fig. 7 groups routers by
// Rocketfuel Point of Presence).
func (g *Graph) SetPoP(n NodeID, p int) { g.popOf[n] = p }

// PoP returns the PoP index of n, or -1.
func (g *Graph) PoP(n NodeID) int { return g.popOf[n] }

// PoPMembers returns the nodes of each PoP, indexed by PoP id.
func (g *Graph) PoPMembers() map[int][]NodeID {
	m := make(map[int][]NodeID)
	for n, p := range g.popOf {
		if p >= 0 {
			m[p] = append(m[p], NodeID(n))
		}
	}
	return m
}

// LinkFilter reports whether the link a→b is usable. A nil LinkFilter
// means all links are up.
type LinkFilter func(a, b NodeID) bool

// Dijkstra computes single-source shortest paths from src over links
// accepted by up (nil = all). Unreachable nodes get Dist = +Inf and
// Parent = -1.
func (g *Graph) Dijkstra(src NodeID, up LinkFilter) SPT {
	n := g.NumNodes()
	t := SPT{
		Src:    src,
		Dist:   make([]float64, n),
		Hops:   make([]int, n),
		Parent: make([]NodeID, n),
	}
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.Parent[i] = -1
		t.Hops[i] = -1
	}
	t.Dist[src] = 0
	t.Hops[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	done := make([]bool, n)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			if up != nil && !up(u, e.To) {
				continue
			}
			nd := t.Dist[u] + e.Weight
			if nd < t.Dist[e.To] ||
				(nd == t.Dist[e.To] && t.Hops[u]+1 < t.Hops[e.To]) {
				t.Dist[e.To] = nd
				t.Hops[e.To] = t.Hops[u] + 1
				t.Parent[e.To] = u
				heap.Push(pq, distItem{node: e.To, dist: nd})
			}
		}
	}
	return t
}

// SPT is a shortest-path tree rooted at Src.
type SPT struct {
	Src    NodeID
	Dist   []float64
	Hops   []int
	Parent []NodeID
}

// PathTo reconstructs the src→dst node sequence, inclusive of both
// endpoints, or nil if dst is unreachable.
func (t SPT) PathTo(dst NodeID) []NodeID {
	if math.IsInf(t.Dist[dst], 1) {
		return nil
	}
	var rev []NodeID
	for n := dst; n != -1; n = t.Parent[n] {
		rev = append(rev, n)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Reachable reports whether dst has a path from the tree's source.
func (t SPT) Reachable(dst NodeID) bool { return !math.IsInf(t.Dist[dst], 1) }

type distItem struct {
	node NodeID
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Connected reports whether every node is reachable from node 0 over
// links accepted by up.
func (g *Graph) Connected(up LinkFilter) bool {
	if g.NumNodes() == 0 {
		return true
	}
	return len(g.Component(0, up)) == g.NumNodes()
}

// Component returns the set of nodes reachable from start over links
// accepted by up, as a sorted slice.
func (g *Graph) Component(start NodeID, up LinkFilter) []NodeID {
	seen := make([]bool, g.NumNodes())
	seen[start] = true
	queue := []NodeID{start}
	out := []NodeID{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if up != nil && !up(u, e.To) {
				continue
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
				out = append(out, e.To)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DiameterHops returns the maximum over sampled sources of the eccentric
// hop count — an estimate of the hop diameter used to sanity-check
// generated topologies against Rocketfuel's (join overhead in the paper
// scales with diameter). samples <= 0 means use every node.
func (g *Graph) DiameterHops(samples int, rng *rand.Rand) int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	srcs := make([]NodeID, 0, n)
	if samples <= 0 || samples >= n {
		for i := 0; i < n; i++ {
			srcs = append(srcs, NodeID(i))
		}
	} else {
		for i := 0; i < samples; i++ {
			srcs = append(srcs, NodeID(rng.Intn(n)))
		}
	}
	max := 0
	for _, s := range srcs {
		t := g.Dijkstra(s, nil)
		for _, h := range t.Hops {
			if h > max {
				max = h
			}
		}
	}
	return max
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes=%d links=%d}", g.NumNodes(), g.NumEdges())
}
