package topology

import (
	"testing"
)

// smallAS builds the 5-AS hierarchy of the paper's Figure 3:
//
//	    1
//	   / \
//	  2   3
//	 / \
//	4   5
func smallAS() *ASGraph {
	g := NewASGraph(6) // index 0 unused so AS numbers match the figure
	g.SetRelation(2, 1, RelProvider)
	g.SetRelation(3, 1, RelProvider)
	g.SetRelation(4, 2, RelProvider)
	g.SetRelation(5, 2, RelProvider)
	g.SetTier(1, 1)
	g.SetTier(2, 2)
	g.SetTier(3, 3)
	g.SetTier(4, 3)
	g.SetTier(5, 3)
	return g
}

func TestRelationInverse(t *testing.T) {
	g := smallAS()
	if g.Relation(4, 2) != RelProvider {
		t.Fatal("4 sees 2 as provider")
	}
	if g.Relation(2, 4) != RelCustomer {
		t.Fatal("2 sees 4 as customer")
	}
	g2 := NewASGraph(2)
	g2.SetRelation(0, 1, RelPeer)
	if g2.Relation(1, 0) != RelPeer {
		t.Fatal("peer is symmetric")
	}
	g3 := NewASGraph(2)
	g3.SetRelation(0, 1, RelBackup)
	if g3.Relation(1, 0) != RelCustomer {
		t.Fatal("backup provider sees a customer")
	}
}

func TestProvidersCustomersPeers(t *testing.T) {
	g := smallAS()
	if got := g.Providers(4); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Providers(4) = %v", got)
	}
	if got := g.Customers(2); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("Customers(2) = %v", got)
	}
	if got := g.Customers(1); len(got) != 2 {
		t.Fatalf("Customers(1) = %v", got)
	}
	if got := g.Peers(1); len(got) != 0 {
		t.Fatalf("Peers(1) = %v", got)
	}
	if got := g.Neighbors(2); len(got) != 3 {
		t.Fatalf("Neighbors(2) = %v", got)
	}
}

func TestBackupOrderedLast(t *testing.T) {
	g := NewASGraph(4)
	g.SetRelation(0, 1, RelBackup)
	g.SetRelation(0, 2, RelProvider)
	g.SetRelation(0, 3, RelProvider)
	provs := g.Providers(0)
	if len(provs) != 3 || provs[2] != 1 {
		t.Fatalf("backup should sort last: %v", provs)
	}
	if got := g.PrimaryProviders(0); len(got) != 2 {
		t.Fatalf("primary providers = %v", got)
	}
}

func TestUpHierarchy(t *testing.T) {
	g := smallAS()
	up := g.UpHierarchy(4, false)
	for _, want := range []ASN{4, 2, 1} {
		if _, ok := up[want]; !ok {
			t.Fatalf("up-hierarchy of 4 missing %d: %v", want, up)
		}
	}
	if _, ok := up[3]; ok {
		t.Fatal("3 is not above 4")
	}
	if _, ok := up[5]; ok {
		t.Fatal("5 is not above 4")
	}
	if !g.InUpHierarchy(4, 1, false) || g.InUpHierarchy(4, 3, false) {
		t.Fatal("InUpHierarchy wrong")
	}
}

func TestUpHierarchyLevels(t *testing.T) {
	g := smallAS()
	levels := g.UpHierarchyLevels(4, false)
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	if levels[0][0] != 4 || levels[1][0] != 2 || levels[2][0] != 1 {
		t.Fatalf("levels = %v", levels)
	}
	// Root AS has a single level.
	if lv := g.UpHierarchyLevels(1, false); len(lv) != 1 {
		t.Fatalf("root levels = %v", lv)
	}
}

func TestUpHierarchyBackupInclusion(t *testing.T) {
	g := NewASGraph(3)
	g.SetRelation(0, 1, RelProvider)
	g.SetRelation(0, 2, RelBackup)
	without := g.UpHierarchy(0, false)
	if _, ok := without[2]; ok {
		t.Fatal("backup provider excluded by default")
	}
	with := g.UpHierarchy(0, true)
	if _, ok := with[2]; !ok {
		t.Fatal("backup provider included on request")
	}
}

func TestDownHierarchy(t *testing.T) {
	g := smallAS()
	down := g.DownHierarchy(2)
	if len(down) != 3 { // 2, 4, 5
		t.Fatalf("down = %v", down)
	}
	whole := g.DownHierarchy(1)
	if len(whole) != 5 {
		t.Fatalf("down(1) = %v", whole)
	}
	leaf := g.DownHierarchy(4)
	if len(leaf) != 1 || leaf[0] != 4 {
		t.Fatalf("down(leaf) = %v", leaf)
	}
}

func TestGenASShape(t *testing.T) {
	cfg := DefaultASGen()
	g := GenAS(cfg)
	if g.NumASes() != cfg.Tier1+cfg.Tier2+cfg.Stubs {
		t.Fatalf("AS count = %d", g.NumASes())
	}
	// Tier-1 clique: all peers of each other.
	for i := 0; i < cfg.Tier1; i++ {
		if got := len(g.Peers(ASN(i))); got < cfg.Tier1-1 {
			t.Fatalf("tier1 %d peers = %d", i, got)
		}
	}
	// Every non-tier-1 AS has at least one provider; every stub's
	// up-hierarchy reaches tier 1 (no orphans).
	totalHosts := 0
	for a := 0; a < g.NumASes(); a++ {
		asn := ASN(a)
		totalHosts += g.Hosts(asn)
		if g.Tier(asn) == 1 {
			if g.Hosts(asn) != 0 {
				t.Fatalf("tier-1 %d should host nothing", a)
			}
			continue
		}
		if len(g.Providers(asn)) == 0 {
			t.Fatalf("AS %d (tier %d) has no provider", a, g.Tier(asn))
		}
		up := g.UpHierarchy(asn, true)
		reachedCore := false
		for m := range up {
			if g.Tier(m) == 1 {
				reachedCore = true
				break
			}
		}
		if !reachedCore {
			t.Fatalf("AS %d cannot reach tier 1", a)
		}
	}
	if totalHosts != cfg.Hosts {
		t.Fatalf("hosts = %d want %d", totalHosts, cfg.Hosts)
	}
	if len(g.Stubs()) != cfg.Stubs {
		t.Fatalf("stubs = %d", len(g.Stubs()))
	}
}

func TestGenASDeterministic(t *testing.T) {
	a, b := GenAS(DefaultASGen()), GenAS(DefaultASGen())
	for i := 0; i < a.NumASes(); i++ {
		na, nb := a.Neighbors(ASN(i)), b.Neighbors(ASN(i))
		if len(na) != len(nb) {
			t.Fatal("same seed must generate identical AS graph")
		}
		if a.Hosts(ASN(i)) != b.Hosts(ASN(i)) {
			t.Fatal("host counts must match")
		}
	}
}

func TestUpHierarchySizeIsSmall(t *testing.T) {
	// Paper §5.1: "up-hierarchies are typically fairly small" (~75-100
	// ASes at Internet scale). At our reduced scale they should be well
	// under the total AS count.
	g := GenAS(DefaultASGen())
	for _, s := range g.Stubs()[:50] {
		up := g.UpHierarchy(s, true)
		if len(up) > g.NumASes()/3 {
			t.Fatalf("up-hierarchy of %d has %d members — too large", s, len(up))
		}
		if len(up) < 2 {
			t.Fatalf("up-hierarchy of %d trivial", s)
		}
	}
}

func TestRelationString(t *testing.T) {
	for r, want := range map[Relation]string{
		RelNone: "none", RelProvider: "provider", RelCustomer: "customer",
		RelPeer: "peer", RelBackup: "backup",
	} {
		if r.String() != want {
			t.Fatalf("Relation(%d).String() = %q", r, r.String())
		}
	}
}

func TestASSelfAdjacencyPanics(t *testing.T) {
	g := NewASGraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("self adjacency should panic")
		}
	}()
	g.SetRelation(1, 1, RelPeer)
}
