package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// ASN identifies an autonomous system in an ASGraph.
type ASN int

// Relation labels one direction of an inter-AS adjacency, following the
// Gao/Subramanian taxonomy the paper relies on (§4.2): the Internet's
// policies "can be modeled as arising out of a simple hierarchical AS
// graph".
type Relation int8

const (
	// RelNone marks absent adjacency.
	RelNone Relation = iota
	// RelProvider: the neighbor is my provider (I am its customer).
	RelProvider
	// RelCustomer: the neighbor is my customer.
	RelCustomer
	// RelPeer: settlement-free peering.
	RelPeer
	// RelBackup: a provider link used only on failure of primary links
	// (paper §4.2 "backup links ... only if there is a failure").
	RelBackup
)

// String renders the relation for logs.
func (r Relation) String() string {
	switch r {
	case RelProvider:
		return "provider"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelBackup:
		return "backup"
	default:
		return "none"
	}
}

// ASGraph is an annotated AS-level topology. The paper models "each AS as
// a single node" interdomain (§6.1); we do the same.
type ASGraph struct {
	n     int
	rel   []map[ASN]Relation // rel[a][b] = relation of b as seen from a
	hosts []int              // skitter-substitute host counts
	tier  []int              // 1 = core clique, 2 = transit, 3 = stub
}

// NewASGraph returns an empty AS graph with n ASes and no adjacencies.
func NewASGraph(n int) *ASGraph {
	g := &ASGraph{
		n:     n,
		rel:   make([]map[ASN]Relation, n),
		hosts: make([]int, n),
		tier:  make([]int, n),
	}
	for i := range g.rel {
		g.rel[i] = make(map[ASN]Relation)
	}
	return g
}

// NumASes returns the number of ASes.
func (g *ASGraph) NumASes() int { return g.n }

// SetRelation installs a directed pair: as seen from a, b is rel; the
// reverse direction is set to the inverse relation automatically.
func (g *ASGraph) SetRelation(a, b ASN, rel Relation) {
	if a == b {
		panic("topology: AS self-adjacency")
	}
	g.rel[a][b] = rel
	g.rel[b][a] = inverse(rel)
}

func inverse(r Relation) Relation {
	switch r {
	case RelProvider:
		return RelCustomer
	case RelCustomer:
		return RelProvider
	case RelBackup:
		// From the provider's side a backup customer link still carries
		// customer traffic when active.
		return RelCustomer
	default:
		return r
	}
}

// Relation returns how a sees b.
func (g *ASGraph) Relation(a, b ASN) Relation { return g.rel[a][b] }

// Providers returns a's providers (including backup providers last),
// sorted for determinism.
func (g *ASGraph) Providers(a ASN) []ASN {
	var primary, backup []ASN
	for b, r := range g.rel[a] {
		switch r {
		case RelProvider:
			primary = append(primary, b)
		case RelBackup:
			backup = append(backup, b)
		}
	}
	sortASNs(primary)
	sortASNs(backup)
	return append(primary, backup...)
}

// PrimaryProviders returns a's non-backup providers.
func (g *ASGraph) PrimaryProviders(a ASN) []ASN {
	var out []ASN
	for b, r := range g.rel[a] {
		if r == RelProvider {
			out = append(out, b)
		}
	}
	sortASNs(out)
	return out
}

// Customers returns a's customers, sorted.
func (g *ASGraph) Customers(a ASN) []ASN {
	var out []ASN
	for b, r := range g.rel[a] {
		if r == RelCustomer {
			out = append(out, b)
		}
	}
	sortASNs(out)
	return out
}

// PrimaryCustomers returns a's customers attached over primary (non
// backup) links, sorted. Customer cones built from these are what join
// strategies cover, since backup links are excluded from joins (§4.2).
func (g *ASGraph) PrimaryCustomers(a ASN) []ASN {
	var out []ASN
	for b, r := range g.rel[a] {
		if r == RelCustomer && g.rel[b][a] == RelProvider {
			out = append(out, b)
		}
	}
	sortASNs(out)
	return out
}

// Peers returns a's peers, sorted.
func (g *ASGraph) Peers(a ASN) []ASN {
	var out []ASN
	for b, r := range g.rel[a] {
		if r == RelPeer {
			out = append(out, b)
		}
	}
	sortASNs(out)
	return out
}

// Neighbors returns every adjacent AS regardless of relation, sorted.
func (g *ASGraph) Neighbors(a ASN) []ASN {
	out := make([]ASN, 0, len(g.rel[a]))
	for b := range g.rel[a] {
		out = append(out, b)
	}
	sortASNs(out)
	return out
}

func sortASNs(s []ASN) { sort.Slice(s, func(i, j int) bool { return s[i] < s[j] }) }

// SetHosts records the (skitter-substitute) host count of an AS.
func (g *ASGraph) SetHosts(a ASN, n int) { g.hosts[a] = n }

// Hosts returns the host count of an AS.
func (g *ASGraph) Hosts(a ASN) int { return g.hosts[a] }

// SetTier records the hierarchy tier (1 core, 2 transit, 3 stub).
func (g *ASGraph) SetTier(a ASN, t int) { g.tier[a] = t }

// Tier returns the hierarchy tier of a.
func (g *ASGraph) Tier(a ASN) int { return g.tier[a] }

// Stubs returns all tier-3 ASes, sorted. "Stub ASes (ASes near the
// network edge) are believed to be significantly more unstable" (§6.3) —
// the failure experiment samples from this set.
func (g *ASGraph) Stubs() []ASN {
	var out []ASN
	for a := 0; a < g.n; a++ {
		if g.tier[a] == 3 {
			out = append(out, ASN(a))
		}
	}
	return out
}

// UpHierarchy computes G_X: the DAG of all ASes "above" x — its
// providers, their providers, and so on (§2.3). Backup links are
// included only when includeBackup is set (the join treats them as
// standby paths). The result is a map from member AS to its providers
// within the sub-hierarchy, always containing x itself.
func (g *ASGraph) UpHierarchy(x ASN, includeBackup bool) map[ASN][]ASN {
	out := map[ASN][]ASN{x: nil}
	queue := []ASN{x}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		provs := g.PrimaryProviders(a)
		if includeBackup {
			provs = g.Providers(a)
		}
		for _, p := range provs {
			out[a] = append(out[a], p)
			if _, seen := out[p]; !seen {
				out[p] = nil
				queue = append(queue, p)
			}
		}
	}
	return out
}

// UpHierarchyLevels returns x's up-hierarchy flattened into levels:
// level 0 is {x}, level i+1 is the providers of level i not yet seen.
// Join requests discover one external successor per level (§2.3).
func (g *ASGraph) UpHierarchyLevels(x ASN, includeBackup bool) [][]ASN {
	seen := map[ASN]bool{x: true}
	levels := [][]ASN{{x}}
	cur := []ASN{x}
	for len(cur) > 0 {
		var next []ASN
		for _, a := range cur {
			provs := g.PrimaryProviders(a)
			if includeBackup {
				provs = g.Providers(a)
			}
			for _, p := range provs {
				if !seen[p] {
					seen[p] = true
					next = append(next, p)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		sortASNs(next)
		levels = append(levels, next)
		cur = next
	}
	return levels
}

// InUpHierarchy reports whether y is in x's up-hierarchy (x included).
func (g *ASGraph) InUpHierarchy(x, y ASN, includeBackup bool) bool {
	_, ok := g.UpHierarchy(x, includeBackup)[y]
	return ok
}

// DownHierarchy returns the set of ASes at or below root via customer
// links (root included) — the subtree whose hosts a Bloom filter at root
// summarizes (§4.2).
func (g *ASGraph) DownHierarchy(root ASN) []ASN {
	return g.downHierarchy(root, g.Customers)
}

// DownHierarchyPrimary is DownHierarchy restricted to primary customer
// links — the customer cone joins actually cover, since backup links are
// excluded from joins.
func (g *ASGraph) DownHierarchyPrimary(root ASN) []ASN {
	return g.downHierarchy(root, g.PrimaryCustomers)
}

func (g *ASGraph) downHierarchy(root ASN, customers func(ASN) []ASN) []ASN {
	seen := map[ASN]bool{root: true}
	out := []ASN{root}
	queue := []ASN{root}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, c := range customers(a) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
				queue = append(queue, c)
			}
		}
	}
	sortASNs(out)
	return out
}

// String summarizes the graph.
func (g *ASGraph) String() string {
	links := 0
	for a := 0; a < g.n; a++ {
		links += len(g.rel[a])
	}
	return fmt.Sprintf("asgraph{ases=%d links=%d}", g.n, links/2)
}

// ASGenConfig parameterizes the Internet-like AS topology generator.
type ASGenConfig struct {
	Tier1      int // core ASes, fully meshed with peering
	Tier2      int // transit ASes
	Stubs      int // edge ASes
	Hosts      int // total hosts, Zipf across stubs and transits
	ZipfS      float64
	PeerProb   float64 // probability of a tier-2 peering link
	BackupProb float64 // probability a multihomed stub's extra link is backup-only
	Seed       int64
}

// DefaultASGen mirrors the qualitative shape of the 2006 Routeviews graph
// at reduced scale: a small tier-1 clique, an order of magnitude more
// transits, and a long tail of stubs with 1–3 providers each.
func DefaultASGen() ASGenConfig {
	return ASGenConfig{
		Tier1: 8, Tier2: 60, Stubs: 400,
		Hosts: 30000, ZipfS: 1.1,
		PeerProb: 0.15, BackupProb: 0.3,
		Seed: 2006,
	}
}

// GenAS builds a deterministic Internet-like AS graph:
//
//   - tier-1 ASes form a full peering clique (the paper notes a clique of
//     Tier 1 ISPs needs only a single virtual AS, §4.2);
//   - each tier-2 AS buys transit from 1–3 tier-1s and peers with other
//     tier-2s with probability PeerProb;
//   - each stub buys transit from 1–3 tier-2s, with extra links demoted
//     to backup with probability BackupProb.
//
// Host counts follow a Zipf spread over stubs and tier-2s, reproducing
// the "highly uneven distribution of hosts across ASes" (§6.3).
func GenAS(cfg ASGenConfig) *ASGraph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Tier1 + cfg.Tier2 + cfg.Stubs
	g := NewASGraph(n)

	t1 := make([]ASN, cfg.Tier1)
	for i := range t1 {
		t1[i] = ASN(i)
		g.SetTier(t1[i], 1)
	}
	for i := 0; i < len(t1); i++ {
		for j := i + 1; j < len(t1); j++ {
			g.SetRelation(t1[i], t1[j], RelPeer)
		}
	}

	t2 := make([]ASN, cfg.Tier2)
	for i := range t2 {
		a := ASN(cfg.Tier1 + i)
		t2[i] = a
		g.SetTier(a, 2)
		for _, p := range pickDistinct(t1, 1+rng.Intn(3), rng) {
			g.SetRelation(a, p, RelProvider)
		}
	}
	for i := 0; i < len(t2); i++ {
		for j := i + 1; j < len(t2); j++ {
			if rng.Float64() < cfg.PeerProb {
				g.SetRelation(t2[i], t2[j], RelPeer)
			}
		}
	}

	for i := 0; i < cfg.Stubs; i++ {
		a := ASN(cfg.Tier1 + cfg.Tier2 + i)
		g.SetTier(a, 3)
		provs := pickDistinct(t2, 1+rng.Intn(3), rng)
		for k, p := range provs {
			rel := RelProvider
			if k > 0 && rng.Float64() < cfg.BackupProb {
				rel = RelBackup
			}
			g.SetRelation(a, p, rel)
		}
	}

	// Hosts: tier-2s and stubs get Zipf shares; tier-1s host none (pure
	// transit), matching how the paper seeds identifiers at edges.
	edges := make([]ASN, 0, cfg.Tier2+cfg.Stubs)
	edges = append(edges, t2...)
	for i := 0; i < cfg.Stubs; i++ {
		edges = append(edges, ASN(cfg.Tier1+cfg.Tier2+i))
	}
	for i, c := range ZipfSpread(cfg.Hosts, len(edges), cfg.ZipfS, rng) {
		g.SetHosts(edges[i], c)
	}
	return g
}

func pickDistinct(pool []ASN, k int, rng *rand.Rand) []ASN {
	if k > len(pool) {
		k = len(pool)
	}
	perm := rng.Perm(len(pool))
	out := make([]ASN, k)
	for i := 0; i < k; i++ {
		out[i] = pool[perm[i]]
	}
	sortASNs(out)
	return out
}
