package topology

import (
	"strings"
	"testing"
)

// sampleCCH is a miniature Rocketfuel .cch map: a 2-router backbone with
// three access routers, plus a comment, an external line and decorations
// the parser must tolerate.
const sampleCCH = `
# Rocketfuel-style sample
1 @city1 + bb (3) &1 -> <2> <3> <4> =r1.city1 r0
2 @city1 bb (3) -> <1> <5> =r2.city1 r1
3 @city2 (1) -> <1> =r3.city2 r2
4 @city2 (1) -> <1> =r4.city2 r3
5 @city3 (1) -> <2> =r5.city3 r4
-1000 @external (1) -> <1>
`

func TestParseRocketfuel(t *testing.T) {
	isp, err := ParseRocketfuel(strings.NewReader(sampleCCH), "sample", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	g := isp.Graph
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d want 5 (external line skipped)", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d want 4", g.NumEdges())
	}
	if len(isp.Backbone) != 2 {
		t.Fatalf("backbone = %d want 2 (bb flags)", len(isp.Backbone))
	}
	if len(isp.Access) != 3 {
		t.Fatalf("access = %d", len(isp.Access))
	}
	if !g.Connected(nil) {
		t.Fatal("sample map must be connected")
	}
	if w, ok := g.EdgeWeight(isp.Backbone[0], isp.Backbone[1]); !ok || w != 2.0 {
		t.Fatalf("weight = %v ok=%v", w, ok)
	}
	if len(isp.HostsAt) != len(isp.Access) {
		t.Fatal("HostsAt must align with Access")
	}
}

func TestParseRocketfuelNoBackboneFlags(t *testing.T) {
	// Without bb flags the parser promotes high-degree routers.
	const cch = `
1 @x (2) -> <2> <3> =a r0
2 @x (1) -> <1> =b r1
3 @x (1) -> <1> =c r2
`
	isp, err := ParseRocketfuel(strings.NewReader(cch), "nobb", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(isp.Backbone) == 0 {
		t.Fatal("degree-based backbone promotion failed")
	}
}

func TestParseRocketfuelErrors(t *testing.T) {
	if _, err := ParseRocketfuel(strings.NewReader(""), "empty", 1); err == nil {
		t.Fatal("empty map must fail")
	}
	if _, err := ParseRocketfuel(strings.NewReader("x @y -> <1>"), "bad", 1); err == nil {
		t.Fatal("bad uid must fail")
	}
	if _, err := ParseRocketfuel(strings.NewReader("1 @y -> <z>"), "badn", 1); err == nil {
		t.Fatal("bad neighbor must fail")
	}
}

func TestParseRocketfuelUsableByVring(t *testing.T) {
	// The parsed ISP must slot straight into the evaluation machinery:
	// hosts join, routing works.
	isp, err := ParseRocketfuel(strings.NewReader(sampleCCH), "sample", 1)
	if err != nil {
		t.Fatal(err)
	}
	// (Integration with vring happens in that package; here we just check
	// the structural contract.)
	for _, a := range isp.Access {
		if isp.Graph.Degree(a) == 0 {
			t.Fatal("access router disconnected")
		}
	}
}

const sampleRel = `
# CAIDA serial-1 style
# provider|customer|-1, peer|peer|0
10|20|-1
10|30|-1
20|40|-1
30|40|-1
20|30|0
`

func TestParseASRelationships(t *testing.T) {
	g, index, err := ParseASRelationships(strings.NewReader(sampleRel))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumASes() != 4 {
		t.Fatalf("ases = %d", g.NumASes())
	}
	a10, a20, a30, a40 := index[10], index[20], index[30], index[40]
	if g.Relation(a20, a10) != RelProvider {
		t.Fatal("20 must see 10 as provider")
	}
	if g.Relation(a10, a20) != RelCustomer {
		t.Fatal("10 must see 20 as customer")
	}
	if g.Relation(a20, a30) != RelPeer {
		t.Fatal("20-30 must peer")
	}
	// Tier inference: 10 has no providers (tier 1); 40 no customers
	// (tier 3); 20 and 30 both (tier 2).
	if g.Tier(a10) != 1 || g.Tier(a40) != 3 || g.Tier(a20) != 2 || g.Tier(a30) != 2 {
		t.Fatalf("tiers = %d %d %d %d", g.Tier(a10), g.Tier(a20), g.Tier(a30), g.Tier(a40))
	}
	// Up-hierarchy of the stub reaches the top.
	if !g.InUpHierarchy(a40, a10, false) {
		t.Fatal("40's up-hierarchy must reach 10")
	}
}

func TestParseASRelationshipsErrors(t *testing.T) {
	if _, _, err := ParseASRelationships(strings.NewReader("")); err == nil {
		t.Fatal("empty must fail")
	}
	if _, _, err := ParseASRelationships(strings.NewReader("1|2")); err == nil {
		t.Fatal("short line must fail")
	}
	if _, _, err := ParseASRelationships(strings.NewReader("1|2|7")); err == nil {
		t.Fatal("unknown relationship must fail")
	}
	if _, _, err := ParseASRelationships(strings.NewReader("a|2|0")); err == nil {
		t.Fatal("bad number must fail")
	}
}
