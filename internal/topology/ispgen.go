package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// ISPConfig parameterizes the Rocketfuel-like ISP generator. The paper
// simulates four ISPs mapped from Rocketfuel traces (§6.1); we cannot
// ship those traces, so the generator reproduces the structural
// properties the results depend on — router count, PoP structure
// (backbone + access routers), backbone meshiness, and hop diameter in
// the Rocketfuel range — per the substitution table in DESIGN.md.
type ISPConfig struct {
	Name           string
	Routers        int     // total routers (transit + access)
	PoPs           int     // number of Points of Presence
	BackbonePerPoP int     // backbone routers in each PoP
	PoPDegree      int     // inter-PoP links per PoP (>=1 keeps it connected)
	IntraPoPDelay  float64 // ms, access<->backbone
	InterPoPDelay  float64 // ms mean, backbone<->backbone across PoPs
	Hosts          int     // total hosts attached, Zipf across access routers
	ZipfS          float64 // Zipf skew for host placement (>1)
	Seed           int64
}

// The four evaluation ISPs, sized to the Rocketfuel router counts in
// §6.1. Host counts are scaled down ~1000x from the paper's skitter
// estimates (2.6M, 10M, 0.5M, 2.1M) to keep laptop-scale runs fast; the
// paper's per-host metrics (join overhead, stretch) are intensive
// quantities unaffected by the scale-down, and Fig 5a's extensive series
// is swept explicitly by the experiment driver.
var (
	AS1221 = ISPConfig{Name: "AS1221", Routers: 318, PoPs: 28, BackbonePerPoP: 2, PoPDegree: 5, IntraPoPDelay: 0.5, InterPoPDelay: 6, Hosts: 2600, ZipfS: 1.2, Seed: 1221}
	AS1239 = ISPConfig{Name: "AS1239", Routers: 604, PoPs: 43, BackbonePerPoP: 3, PoPDegree: 7, IntraPoPDelay: 0.4, InterPoPDelay: 8, Hosts: 10000, ZipfS: 1.2, Seed: 1239}
	AS3257 = ISPConfig{Name: "AS3257", Routers: 240, PoPs: 24, BackbonePerPoP: 2, PoPDegree: 5, IntraPoPDelay: 0.5, InterPoPDelay: 7, Hosts: 500, ZipfS: 1.2, Seed: 3257}
	AS3967 = ISPConfig{Name: "AS3967", Routers: 201, PoPs: 21, BackbonePerPoP: 2, PoPDegree: 5, IntraPoPDelay: 0.5, InterPoPDelay: 6, Hosts: 2100, ZipfS: 1.2, Seed: 3967}
)

// EvalISPs returns the paper's four evaluation topologies in figure
// order.
func EvalISPs() []ISPConfig { return []ISPConfig{AS1221, AS1239, AS3257, AS3967} }

// ISP is a generated intradomain topology: the router graph plus the
// access routers hosts attach to and the host spread across them.
type ISP struct {
	Name     string
	Graph    *Graph
	Backbone []NodeID // transit routers (paper: where resident IDs live)
	Access   []NodeID // edge routers hosts attach to
	// HostsAt[i] is the number of hosts assigned to Access[i] by the
	// Zipf placement; experiment drivers use it as a sampling weight.
	HostsAt []int
}

// GenISP builds a deterministic ISP-like topology from cfg.
//
// Structure: cfg.PoPs PoPs, each with BackbonePerPoP backbone routers
// (full mesh inside the PoP) and an even share of the remaining routers
// as access routers, each homed to one or two backbone routers in its
// PoP. PoPs are linked in a ring (guaranteeing connectivity) plus
// PoPDegree-1 random chords, mirroring Rocketfuel's observed
// backbone-ring-with-shortcuts shape.
func GenISP(cfg ISPConfig) *ISP {
	if cfg.PoPs < 1 || cfg.Routers < cfg.PoPs*(cfg.BackbonePerPoP+1) {
		panic(fmt.Sprintf("topology: ISP config %q infeasible: %d routers for %d PoPs", cfg.Name, cfg.Routers, cfg.PoPs))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph(cfg.Routers)
	isp := &ISP{Name: cfg.Name, Graph: g}

	backboneOf := make([][]NodeID, cfg.PoPs)
	nBackbone := cfg.PoPs * cfg.BackbonePerPoP
	for p := 0; p < cfg.PoPs; p++ {
		for i := 0; i < cfg.BackbonePerPoP; i++ {
			n := g.AddNode()
			g.SetPoP(n, p)
			backboneOf[p] = append(backboneOf[p], n)
			isp.Backbone = append(isp.Backbone, n)
		}
		// Full mesh among the PoP's backbone routers.
		for i := 0; i < len(backboneOf[p]); i++ {
			for j := i + 1; j < len(backboneOf[p]); j++ {
				g.AddEdge(backboneOf[p][i], backboneOf[p][j], cfg.IntraPoPDelay)
			}
		}
	}

	// Inter-PoP ring plus random chords.
	interDelay := func() float64 { return cfg.InterPoPDelay * (0.5 + rng.Float64()) }
	link := func(p, q int) {
		a := backboneOf[p][rng.Intn(len(backboneOf[p]))]
		b := backboneOf[q][rng.Intn(len(backboneOf[q]))]
		if !g.HasEdge(a, b) {
			g.AddEdge(a, b, interDelay())
		}
	}
	for p := 0; p < cfg.PoPs; p++ {
		link(p, (p+1)%cfg.PoPs)
	}
	for p := 0; p < cfg.PoPs; p++ {
		for k := 1; k < cfg.PoPDegree; k++ {
			q := rng.Intn(cfg.PoPs)
			if q != p {
				link(p, q)
			}
		}
	}

	// Access routers, spread round-robin across PoPs. Rocketfuel access
	// routers are overwhelmingly dual-homed to their PoP's backbone; the
	// resulting average degree (~4-7) is what gives the generated maps
	// Rocketfuel-like link counts.
	nAccess := cfg.Routers - nBackbone
	for i := 0; i < nAccess; i++ {
		p := i % cfg.PoPs
		n := g.AddNode()
		g.SetPoP(n, p)
		home := backboneOf[p][rng.Intn(len(backboneOf[p]))]
		g.AddEdge(n, home, cfg.IntraPoPDelay)
		for _, other := range backboneOf[p] {
			if other != home {
				g.AddEdge(n, other, cfg.IntraPoPDelay)
			}
		}
		isp.Access = append(isp.Access, n)
	}

	isp.HostsAt = ZipfSpread(cfg.Hosts, len(isp.Access), cfg.ZipfS, rng)
	return isp
}

// ZipfSpread distributes total units over n bins with Zipf(s) weights in
// a random bin order, modeling skitter's "highly uneven distribution of
// hosts" (§6.3). The counts sum exactly to total.
func ZipfSpread(total, n int, s float64, rng *rand.Rand) []int {
	if n <= 0 {
		return nil
	}
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		sum += weights[i]
	}
	// Shuffle which bin gets which rank so heavy bins aren't always the
	// low indexes.
	perm := rng.Perm(n)
	out := make([]int, n)
	assigned := 0
	for rank, w := range weights {
		c := int(float64(total) * w / sum)
		out[perm[rank]] = c
		assigned += c
	}
	// Distribute the rounding remainder one unit at a time.
	for i := 0; assigned < total; i++ {
		out[perm[i%n]]++
		assigned++
	}
	return out
}
