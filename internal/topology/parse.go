package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file parses the two public dataset formats the paper's evaluation
// was built from, so that anyone holding the actual files can run this
// repository's experiments on them instead of the generated substitutes:
//
//   - Rocketfuel router-level maps (the ".cch" format of Spring,
//     Mahajan, Wetherall: "Measuring ISP topologies with Rocketfuel"),
//     one router per line:
//
//       uid @loc [+] [bb] (num_neigh) [&ext] -> <nuid-1> ... =name rn
//
//   - CAIDA/Routeviews AS-relationship files (the serial-1 format used
//     with the Subramanian-style inference the paper cites):
//
//       as1|as2|rel        with rel -1 = as1 is provider of as2,
//                               rel  0 = peers
//
// Lines starting with '#' are comments in both formats.

// ParseRocketfuel reads a Rocketfuel .cch router-level map into an ISP.
// Backbone routers are those flagged "bb"; every other router is access.
// Link weights default to weight (ms) since .cch files carry no
// latencies; hosts are spread over access routers with ZipfSpread-like
// proportionality left to the caller (HostsAt is zeroed).
func ParseRocketfuel(r io.Reader, name string, weight float64) (*ISP, error) {
	if weight <= 0 {
		weight = 1
	}
	type rawRouter struct {
		uid       int
		backbone  bool
		neighbors []int
	}
	var routers []rawRouter
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// External-address lines in .cch start with a negative uid;
		// they represent links to other ASes and are skipped for the
		// intradomain map.
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("topology: %s:%d: short line", name, lineNo)
		}
		uid, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topology: %s:%d: bad uid %q", name, lineNo, fields[0])
		}
		if uid < 0 {
			continue
		}
		rr := rawRouter{uid: uid}
		for _, f := range fields[1:] {
			switch {
			case f == "bb":
				rr.backbone = true
			case strings.HasPrefix(f, "<") && strings.HasSuffix(f, ">"):
				n, err := strconv.Atoi(f[1 : len(f)-1])
				if err != nil {
					return nil, fmt.Errorf("topology: %s:%d: bad neighbor %q", name, lineNo, f)
				}
				rr.neighbors = append(rr.neighbors, n)
			}
		}
		routers = append(routers, rr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading %s: %w", name, err)
	}
	if len(routers) == 0 {
		return nil, fmt.Errorf("topology: %s: no routers", name)
	}

	g := NewGraph(len(routers))
	nodeOf := make(map[int]NodeID, len(routers))
	isp := &ISP{Name: name, Graph: g}
	for _, rr := range routers {
		n := g.AddNode()
		nodeOf[rr.uid] = n
		if rr.backbone {
			isp.Backbone = append(isp.Backbone, n)
		} else {
			isp.Access = append(isp.Access, n)
		}
	}
	for _, rr := range routers {
		from := nodeOf[rr.uid]
		for _, nb := range rr.neighbors {
			to, ok := nodeOf[nb]
			if !ok {
				continue // neighbor outside the parsed map (external)
			}
			if from != to && !g.HasEdge(from, to) {
				g.AddEdge(from, to, weight)
			}
		}
	}
	// Degenerate maps with no "bb" flags: treat the highest-degree decile
	// as backbone so the ISP is still usable.
	if len(isp.Backbone) == 0 {
		isp.Backbone, isp.Access = splitByDegree(g, isp.Access)
	}
	isp.HostsAt = make([]int, len(isp.Access))
	return isp, nil
}

func splitByDegree(g *Graph, all []NodeID) (backbone, access []NodeID) {
	max := 0
	for _, n := range all {
		if g.Degree(n) > max {
			max = g.Degree(n)
		}
	}
	threshold := max / 2
	if threshold < 1 {
		threshold = 1
	}
	for _, n := range all {
		if g.Degree(n) >= threshold {
			backbone = append(backbone, n)
		} else {
			access = append(access, n)
		}
	}
	if len(backbone) == 0 {
		backbone = all[:1]
		access = all[1:]
	}
	return backbone, access
}

// ParseASRelationships reads a CAIDA serial-1 AS-relationship file into
// an ASGraph. AS numbers are remapped to dense indices; Index reports
// the mapping. Tiers are inferred: ASes with no providers are tier 1,
// ASes with no customers are tier 3 (stubs), the rest tier 2 — the same
// coarse hierarchy the paper's experiments rely on.
func ParseASRelationships(r io.Reader) (*ASGraph, map[int]ASN, error) {
	type rel struct {
		a, b, kind int
	}
	var rels []rel
	index := map[int]ASN{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	intern := func(asn int) {
		if _, ok := index[asn]; !ok {
			index[asn] = ASN(len(index))
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) < 3 {
			return nil, nil, fmt.Errorf("topology: line %d: want as1|as2|rel", lineNo)
		}
		a, err1 := strconv.Atoi(parts[0])
		b, err2 := strconv.Atoi(parts[1])
		k, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("topology: line %d: bad numbers", lineNo)
		}
		if k != -1 && k != 0 {
			return nil, nil, fmt.Errorf("topology: line %d: unknown relationship %d", lineNo, k)
		}
		intern(a)
		intern(b)
		rels = append(rels, rel{a, b, k})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("topology: reading relationships: %w", err)
	}
	if len(index) == 0 {
		return nil, nil, fmt.Errorf("topology: no relationships")
	}
	g := NewASGraph(len(index))
	for _, rl := range rels {
		a, b := index[rl.a], index[rl.b]
		if a == b {
			continue
		}
		if rl.kind == 0 {
			g.SetRelation(a, b, RelPeer)
		} else {
			// a is provider of b ⇒ from b's view a is its provider.
			g.SetRelation(b, a, RelProvider)
		}
	}
	// Infer tiers.
	for _, dense := range index {
		switch {
		case len(g.PrimaryProviders(dense)) == 0:
			g.SetTier(dense, 1)
		case len(g.Customers(dense)) == 0:
			g.SetTier(dense, 3)
		default:
			g.SetTier(dense, 2)
		}
	}
	return g, index, nil
}
