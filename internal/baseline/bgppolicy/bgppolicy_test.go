package bgppolicy

import (
	"testing"

	"rofl/internal/topology"
)

// diamond builds:
//
//	0  (tier1) --- peer --- 1 (tier1)
//	|                       |
//	2  (tier2)              3 (tier2)
//	|                       |
//	4  (stub)               5 (stub)
func diamond() *topology.ASGraph {
	g := topology.NewASGraph(6)
	g.SetRelation(0, 1, topology.RelPeer)
	g.SetRelation(2, 0, topology.RelProvider)
	g.SetRelation(3, 1, topology.RelProvider)
	g.SetRelation(4, 2, topology.RelProvider)
	g.SetRelation(5, 3, topology.RelProvider)
	return g
}

func TestPathAcrossPeering(t *testing.T) {
	tbl := New(diamond())
	p := tbl.Path(4, 5, nil)
	want := []topology.ASN{4, 2, 0, 1, 3, 5}
	if len(p) != len(want) {
		t.Fatalf("path = %v want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v want %v", p, want)
		}
	}
	if tbl.Hops(4, 5, nil) != 5 {
		t.Fatalf("hops = %d", tbl.Hops(4, 5, nil))
	}
}

func TestPathToSelf(t *testing.T) {
	tbl := New(diamond())
	if p := tbl.Path(4, 4, nil); len(p) != 1 || p[0] != 4 {
		t.Fatalf("self path = %v", p)
	}
	if tbl.Hops(4, 4, nil) != 0 {
		t.Fatal("self hops must be 0")
	}
}

func TestValleyFreeRejected(t *testing.T) {
	// 0 and 1 are both providers of 2; 3 is a customer of 1 only. A path
	// 0 -> 2 -> 1 -> 3 would be a valley (down then up); the only legal
	// route from a customer of 0 to 3 is via the 0-1 peering if present.
	g := topology.NewASGraph(4)
	g.SetRelation(2, 0, topology.RelProvider)
	g.SetRelation(2, 1, topology.RelProvider)
	g.SetRelation(3, 1, topology.RelProvider)
	tbl := New(g)
	// From 0 to 3: descending to 2 then ascending to 1 is a valley. With
	// no peering between 0 and 1, there must be no path.
	if p := tbl.Path(0, 3, nil); p != nil {
		t.Fatalf("valley path accepted: %v", p)
	}
	// Multihomed customer 2 can still reach 3 by ascending via 1.
	p := tbl.Path(2, 3, nil)
	if len(p) != 3 || p[1] != 1 {
		t.Fatalf("path = %v", p)
	}
}

func TestSinglePeerCrossing(t *testing.T) {
	// Two peer links in sequence must not be usable: 0 -peer- 1 -peer- 2.
	g := topology.NewASGraph(4)
	g.SetRelation(0, 1, topology.RelPeer)
	g.SetRelation(1, 2, topology.RelPeer)
	g.SetRelation(3, 0, topology.RelProvider)
	tbl := New(g)
	if p := tbl.Path(3, 2, nil); p != nil {
		t.Fatalf("double-peer path accepted: %v", p)
	}
	if p := tbl.Path(3, 1, nil); p == nil {
		t.Fatal("single-peer path should work")
	}
}

func TestLinkFilter(t *testing.T) {
	tbl := New(diamond())
	down := func(a, b topology.ASN) bool {
		return !(a == 0 && b == 1) && !(a == 1 && b == 0)
	}
	if p := tbl.Path(4, 5, down); p != nil {
		t.Fatalf("path should vanish when the peering link fails: %v", p)
	}
}

func TestBackupLinksAscend(t *testing.T) {
	g := topology.NewASGraph(3)
	g.SetRelation(1, 0, topology.RelBackup)
	g.SetRelation(2, 0, topology.RelProvider)
	tbl := New(g)
	// BGP-level baseline treats an (active) backup link like a provider
	// link for reachability purposes.
	if p := tbl.Path(1, 2, nil); p == nil {
		t.Fatal("backup ascent should be usable in the baseline")
	}
}

func TestShortestPreferred(t *testing.T) {
	// Two ascents: via provider chain of length 2 or direct provider.
	g := topology.NewASGraph(4)
	g.SetRelation(3, 2, topology.RelProvider) // 3 -> 2
	g.SetRelation(2, 0, topology.RelProvider) // 2 -> 0
	g.SetRelation(3, 0, topology.RelProvider) // 3 -> 0 direct
	g.SetRelation(1, 0, topology.RelProvider) // 1 -> 0
	tbl := New(g)
	p := tbl.Path(3, 1, nil)
	if len(p) != 3 { // 3 -> 0 -> 1
		t.Fatalf("path = %v, want direct ascent", p)
	}
}

func TestGeneratedGraphMostlyConnected(t *testing.T) {
	g := topology.GenAS(topology.DefaultASGen())
	tbl := New(g)
	stubs := g.Stubs()
	missing := 0
	const probes = 200
	for i := 0; i < probes; i++ {
		a := stubs[i%len(stubs)]
		b := stubs[(i*7+3)%len(stubs)]
		if a == b {
			continue
		}
		if tbl.Hops(a, b, nil) < 0 {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d stub pairs unroutable under policy", missing)
	}
}

func BenchmarkBGPPath(b *testing.B) {
	g := topology.GenAS(topology.DefaultASGen())
	tbl := New(g)
	stubs := g.Stubs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Path(stubs[i%len(stubs)], stubs[(i*13+7)%len(stubs)], nil)
	}
}
