// Package bgppolicy implements the paper's interdomain comparison
// baseline: Gao–Rexford policy routing over an annotated AS graph. The
// paper defines interdomain stretch as "the ratio of the traversed path
// to the path BGP would select" (§6.1) and plots the BGP-policy
// distribution itself in Fig 8b; this package computes those BGP paths.
//
// Path legality is the classic valley-free rule: a path ascends
// customer→provider links, crosses at most one peering link, then
// descends provider→customer links. Among legal paths we select the
// shortest (hop count), which is the standard abstraction of BGP's
// local-pref + AS-path-length decision process on inferred topologies.
package bgppolicy

import (
	"rofl/internal/topology"
)

// Table computes valley-free shortest paths over an AS graph. It is
// stateless with respect to failures; pass a LinkFilter to exclude
// failed adjacencies.
type Table struct {
	g *topology.ASGraph
}

// New returns a path oracle for g.
func New(g *topology.ASGraph) *Table { return &Table{g: g} }

// LinkFilter reports whether the AS adjacency a–b is usable.
type LinkFilter func(a, b topology.ASN) bool

// phase encodes valley-free progress: ascending (customer→provider
// moves still allowed) or descending (only provider→customer moves
// remain). Crossing a peering link forces the descent.
type phase uint8

const (
	ascending phase = iota
	descending
	numPhases
)

// Path returns the shortest valley-free AS path from src to dst
// (inclusive of both), or nil when policy permits no path. A nil filter
// means all adjacencies are up.
func (t *Table) Path(src, dst topology.ASN, up LinkFilter) []topology.ASN {
	if src == dst {
		return []topology.ASN{src}
	}
	n := t.g.NumASes()
	// parent[as][ph] records the predecessor state for reconstruction.
	visited := make([]bool, n*int(numPhases))
	parent := make([]state, n*int(numPhases))
	idx := func(s state) int { return int(s.as)*int(numPhases) + int(s.ph) }

	start := state{as: src, ph: ascending}
	visited[idx(start)] = true
	parent[idx(start)] = state{as: -1}
	queue := []state{start}

	var goal state
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range t.moves(cur.as, cur.ph, up) {
			i := idx(next)
			if visited[i] {
				continue
			}
			visited[i] = true
			parent[i] = cur
			if next.as == dst {
				goal, found = next, true
				break
			}
			queue = append(queue, next)
		}
	}
	if !found {
		return nil
	}
	var rev []topology.ASN
	for s := goal; s.as != -1; s = parent[idx(s)] {
		rev = append(rev, s.as)
	}
	out := make([]topology.ASN, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		// Collapse the duplicate AS that appears when only the phase
		// changed (cannot happen with the current move set, but keep the
		// reconstruction robust).
		if len(out) == 0 || out[len(out)-1] != rev[i] {
			out = append(out, rev[i])
		}
	}
	return out
}

func (t *Table) moves(a topology.ASN, ph phase, up LinkFilter) []state {
	var out []state
	for _, b := range t.g.Neighbors(a) {
		if up != nil && !up(a, b) {
			continue
		}
		switch t.g.Relation(a, b) {
		case topology.RelProvider, topology.RelBackup:
			// Ascending only.
			if ph == ascending {
				out = append(out, state{as: b, ph: ascending})
			}
		case topology.RelPeer:
			// One peer crossing, at the top of the path.
			if ph == ascending {
				out = append(out, state{as: b, ph: descending})
			}
		case topology.RelCustomer:
			// Descending is always allowed and is terminal-phase.
			out = append(out, state{as: b, ph: descending})
		}
	}
	return out
}

// state is one BFS node: an AS plus the valley-free phase reached there.
type state struct {
	as topology.ASN
	ph phase
}

// Hops returns the AS-hop length of the BGP path (len-1), or -1 when no
// policy-compliant path exists.
func (t *Table) Hops(src, dst topology.ASN, up LinkFilter) int {
	p := t.Path(src, dst, up)
	if p == nil {
		return -1
	}
	return len(p) - 1
}
