// Package ospfhost is the paper's intradomain load-balance baseline
// (Fig 6b): plain shortest-path (OSPF) routing of host traffic. For each
// source/destination pair the packet follows the link-state shortest
// path; per-router traversal counts are recorded so ROFL's load can be
// ranked against them ("we plot the load at the ith most congested
// router in an OSPF network, and the load under ROFL for that same
// router", §6.2).
package ospfhost

import (
	"errors"
	"fmt"
	"sort"

	"rofl/internal/ident"
	"rofl/internal/linkstate"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// MsgData is the metrics counter charged per physical hop.
const MsgData = "ospfhost-data"

// ErrUnknownID reports a destination with no attachment point.
var ErrUnknownID = errors.New("ospfhost: identifier unknown")

// Network routes host traffic over shortest paths.
type Network struct {
	LS      *linkstate.Map
	Metrics sim.Metrics

	hostAt     map[ident.ID]topology.NodeID
	traversals []int64
}

// New wraps a router graph.
func New(g *topology.Graph, m sim.Metrics) *Network {
	return &Network{
		LS:         linkstate.New(g, m),
		Metrics:    m,
		hostAt:     make(map[ident.ID]topology.NodeID),
		traversals: make([]int64, g.NumNodes()),
	}
}

// Attach registers a host at a router (no protocol cost is modeled —
// OSPF does not carry host routes; this is the idealized baseline).
func (n *Network) Attach(id ident.ID, at topology.NodeID) {
	n.hostAt[id] = at
}

// Route forwards from router `from` to dst's attachment router over the
// shortest path, recording per-router traversals.
func (n *Network) Route(from topology.NodeID, dst ident.ID) (int, error) {
	at, ok := n.hostAt[dst]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownID, dst.Short())
	}
	path := n.LS.Path(from, at)
	if path == nil {
		return 0, fmt.Errorf("ospfhost: %s unreachable", dst.Short())
	}
	for _, node := range path[1:] {
		n.traversals[node]++
	}
	h := len(path) - 1
	n.Metrics.Count(MsgData, int64(h))
	return h, nil
}

// Traversals returns per-router transit counts.
func (n *Network) Traversals() []int64 { return n.traversals }

// RankByLoad returns router ids sorted by descending traversal count —
// the x-axis ordering of Fig 6b.
func (n *Network) RankByLoad() []topology.NodeID {
	order := make([]topology.NodeID, len(n.traversals))
	for i := range order {
		order[i] = topology.NodeID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return n.traversals[order[a]] > n.traversals[order[b]]
	})
	return order
}
