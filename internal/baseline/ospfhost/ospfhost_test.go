package ospfhost

import (
	"errors"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

func testNet(t *testing.T) (*Network, *topology.ISP) {
	t.Helper()
	isp := topology.GenISP(topology.ISPConfig{
		Name: "t", Routers: 40, PoPs: 6, BackbonePerPoP: 2, PoPDegree: 2,
		IntraPoPDelay: 0.5, InterPoPDelay: 5, Hosts: 100, ZipfS: 1.2, Seed: 7,
	})
	return New(isp.Graph, sim.NewMetrics()), isp
}

func TestRouteAndTraversals(t *testing.T) {
	n, isp := testNet(t)
	id := ident.FromString("h")
	n.Attach(id, isp.Access[3])
	h, err := n.Route(isp.Backbone[0], id)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 {
		t.Fatalf("hops = %d", h)
	}
	var sum int64
	for _, c := range n.Traversals() {
		sum += c
	}
	if sum != int64(h) {
		t.Fatalf("traversals = %d want %d", sum, h)
	}
	if n.Metrics.Counter(MsgData) != int64(h) {
		t.Fatal("data counter mismatch")
	}
}

func TestRouteUnknown(t *testing.T) {
	n, isp := testNet(t)
	if _, err := n.Route(isp.Access[0], ident.FromString("ghost")); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("want ErrUnknownID, got %v", err)
	}
}

func TestRankByLoad(t *testing.T) {
	n, isp := testNet(t)
	for i := 0; i < 20; i++ {
		id := ident.FromUint64(uint64(i + 1))
		n.Attach(id, isp.Access[i%len(isp.Access)])
		if _, err := n.Route(isp.Access[(i+7)%len(isp.Access)], id); err != nil {
			t.Fatal(err)
		}
	}
	rank := n.RankByLoad()
	if len(rank) != isp.Graph.NumNodes() {
		t.Fatalf("rank covers %d routers", len(rank))
	}
	tr := n.Traversals()
	for i := 1; i < len(rank); i++ {
		if tr[rank[i-1]] < tr[rank[i]] {
			t.Fatal("rank not descending")
		}
	}
}
